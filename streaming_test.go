package v6lab

// Byte-identity of the streaming analysis path: a lab that never buffers
// a capture — every frame parsed exactly once at switch-delivery time by
// the streaming Observer, with DNS/SNI attribution deferred to Finalize —
// must render exactly the FullReport the buffered two-source path does,
// on the serial engine and on the worker pool alike. Together with
// TestParallelStudyByteIdentity (which pins the buffered report to its
// recorded hash) this transitively pins the streaming report to the same
// recorded bytes.

import (
	"strings"
	"testing"
)

func TestStreamingEqualsBuffered(t *testing.T) {
	buffered := sharedLab(t).FullReport()
	for _, workers := range []int{1, 8} {
		lab := New(WithCapture(CaptureNone), WithWorkers(workers))
		if err := lab.Run(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for _, res := range lab.Study.Results {
			if res.Capture != nil {
				t.Fatalf("workers=%d: %s materialized a capture under CaptureNone", workers, res.Config.ID)
			}
			if res.Observed == nil {
				t.Fatalf("workers=%d: %s has no streaming observer", workers, res.Config.ID)
			}
			if got, want := res.Frames(), res.FramesDelivered; got != want {
				t.Errorf("workers=%d: %s observed %d frames, delivered %d", workers, res.Config.ID, got, want)
			}
		}
		if got := lab.FullReport(); got != buffered {
			t.Errorf("workers=%d: streaming report differs from buffered report (%d vs %d bytes)", workers, len(got), len(buffered))
		}
		if err := lab.SavePcaps(t.TempDir()); err == nil {
			t.Errorf("workers=%d: SavePcaps succeeded without captures", workers)
		} else if !strings.Contains(err.Error(), "CaptureNone") {
			t.Errorf("workers=%d: SavePcaps error %q does not name the capture policy", workers, err)
		}
	}
}

// TestStreamingFleetEqualsBuffered pins the fleet's default streaming path
// against a buffered fleet run: same seed, same homes, byte-identical
// aggregate artifact, same per-home frame counts.
func TestStreamingFleetEqualsBuffered(t *testing.T) {
	run := func(p CapturePolicy) *Lab {
		lab := New(WithWorkers(2))
		if err := lab.Run(Fleet(8, Seed(1), Capture(p))); err != nil {
			t.Fatal(err)
		}
		return lab
	}
	stream := run(CaptureNone)
	full := run(CaptureFull)
	a, b := stream.Report(FleetStudy), full.Report(FleetStudy)
	if a != b {
		t.Fatalf("fleet reports differ between CaptureNone and CaptureFull:\n--- streaming ---\n%s\n--- buffered ---\n%s", a, b)
	}
	for i, hr := range stream.FleetPop.Homes {
		if want := full.FleetPop.Homes[i].FramesCaptured; hr.FramesCaptured != want {
			t.Errorf("home %d: streamed %d frames, buffered %d", i, hr.FramesCaptured, want)
		}
	}
}
