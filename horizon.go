package v6lab

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ErrInvalidHorizon is returned (wrapped) for zero or negative horizons:
// by New when WithHorizon was given one, by ParseHorizon/NewHorizon at
// construction, and by the Timeline part when no valid horizon reaches it.
// The lab never panics over a bad horizon mid-run — the error surfaces at
// the API boundary.
var ErrInvalidHorizon = errors.New("v6lab: horizon must be a positive simulated duration")

// Horizon is a typed simulated duration for long-horizon timeline runs.
// The type exists so day- and week-scale simulated time reads as what it
// is (Days(3), Weeks(1)) instead of raw time.Duration arithmetic, and so
// validity is checked where a horizon enters the API rather than deep in
// an engine. The zero Horizon means "unset" — parts fall back to the
// lab's WithHorizon.
type Horizon struct{ d time.Duration }

// Days returns an n-day simulated horizon.
func Days(n int) Horizon { return Horizon{time.Duration(n) * 24 * time.Hour} }

// Weeks returns an n-week simulated horizon.
func Weeks(n int) Horizon { return Horizon{time.Duration(n) * 7 * 24 * time.Hour} }

// NewHorizon wraps an arbitrary duration, rejecting zero and negative
// values with ErrInvalidHorizon.
func NewHorizon(d time.Duration) (Horizon, error) {
	h := Horizon{d}
	if err := h.validate(); err != nil {
		return Horizon{}, err
	}
	return h, nil
}

// ParseHorizon parses a horizon flag value: "3d" and "2w" for days and
// weeks, or any positive time.ParseDuration form ("36h", "90m").
func ParseHorizon(s string) (Horizon, error) {
	if n, ok := suffixed(s, "d"); ok {
		return NewHorizon(time.Duration(n) * 24 * time.Hour)
	}
	if n, ok := suffixed(s, "w"); ok {
		return NewHorizon(time.Duration(n) * 7 * 24 * time.Hour)
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return Horizon{}, fmt.Errorf("%w: %q is not a duration (want e.g. 7d, 2w, 36h)", ErrInvalidHorizon, s)
	}
	return NewHorizon(d)
}

// suffixed matches "<integer><unit>" forms like "7d".
func suffixed(s, unit string) (int, bool) {
	body, ok := strings.CutSuffix(s, unit)
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(body)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Duration returns the horizon as simulated time.
func (h Horizon) Duration() time.Duration { return h.d }

// IsZero reports whether the horizon is unset.
func (h Horizon) IsZero() bool { return h.d == 0 }

// String renders day-scale horizons as days ("7d") and anything shorter
// as a plain duration.
func (h Horizon) String() string {
	if h.d > 0 && h.d%(24*time.Hour) == 0 {
		return fmt.Sprintf("%dd", h.d/(24*time.Hour))
	}
	return h.d.String()
}

func (h Horizon) validate() error {
	if h.d <= 0 {
		return fmt.Errorf("%w (got %v)", ErrInvalidHorizon, h.d)
	}
	return nil
}
