package v6lab

import (
	"v6lab/internal/analysis"
)

// Options selects counterfactual mitigations for ablation studies — the
// remediations the paper recommends (§6): if every stack used RFC 8981
// privacy extensions, or probed every address per RFC 4862, how would the
// privacy findings change?
type Options struct {
	// ForcePrivacyExtensions makes every device use randomized interface
	// identifiers, eliminating EUI-64 addresses.
	ForcePrivacyExtensions bool
	// ForceDAD makes every device probe every address before use.
	ForceDAD bool
	// AAAAEverywhere publishes AAAA records for every destination domain,
	// modelling a fully v6-ready Internet (the paper's §5.1.3 root cause
	// removed).
	AAAAEverywhere bool
}

// NewWithOptions builds a lab with the given mitigations applied to every
// device profile (and, for AAAAEverywhere, to the simulated Internet).
// Functional options (WithDevices, WithFaultProfile, ...) compose with the
// ablations.
func NewWithOptions(opts Options, extra ...Option) *Lab {
	if opts.ForcePrivacyExtensions || opts.ForceDAD || opts.AAAAEverywhere {
		// An active ablation mutates profiles, plans, and the cloud registry
		// below — all world state. It must never touch a shared Env's world,
		// so the lab builds a private one.
		extra = append(extra, func(o *options) { o.env = nil })
	}
	l := New(extra...)
	st := l.Study
	for _, p := range st.Profiles {
		if opts.ForcePrivacyExtensions {
			p.EUI64 = false
			p.EUI64GUA = false
			p.EUI64ForDNS = false
			p.EUI64ForData = false
			p.EUI64Probe = false
			p.EUI64ForNTP = false
		}
		if opts.ForceDAD {
			p.SkipDADGUA = false
			p.SkipDADULA = false
			p.SkipDADLLA = false
		}
	}
	if opts.AAAAEverywhere {
		for name := range st.Cloud.Domains() {
			st.Cloud.EnsureAAAA(name)
		}
		for _, pl := range st.Plans {
			for i := range pl.Specs {
				pl.Specs[i].HasAAAA = true
			}
		}
	}
	return l
}

// EUI64Exposure is a convenience accessor for ablation comparisons.
func (l *Lab) EUI64Exposure() analysis.EUI64Report {
	l.ensure()
	return l.Data.EUI64Exposure()
}

// DADAudit is a convenience accessor for ablation comparisons.
func (l *Lab) DADAudit() analysis.DADReport {
	l.ensure()
	return l.Data.DADAudit()
}
