package v6lab

// One benchmark per table and figure of the paper's evaluation: each bench
// regenerates its artifact from the captured packets and prints the same
// rows/series the paper reports (once, on first run). BenchmarkFullStudy
// measures the end-to-end pipeline: six connectivity experiments, active
// DNS, port scans, and packet-level re-analysis.

import (
	"fmt"
	"sync"
	"testing"

	"v6lab/internal/analysis"
	"v6lab/internal/experiment"
)

var (
	benchOnce sync.Once
	benchLab  *Lab
	benchErr  error
	printed   sync.Map
)

func benchSetup(b *testing.B) *Lab {
	b.Helper()
	benchOnce.Do(func() {
		benchLab = New()
		benchErr = benchLab.Run()
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchLab
}

// benchArtifact times the derivation+rendering of one artifact and prints
// it once so the bench run doubles as the paper-regeneration harness.
func benchArtifact(b *testing.B, a Artifact) {
	lab := benchSetup(b)
	if _, done := printed.LoadOrStore(a, true); !done {
		fmt.Printf("\n%s\n", lab.Report(a))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = lab.Report(a)
	}
}

// BenchmarkFullStudy measures the complete reproduction: building the
// testbed, running all six Table 2 experiments plus the active
// measurements, and re-analyzing every capture.
func BenchmarkFullStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := New()
		if err := lab.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStudyParallel measures the full study on the parallel engine
// at several worker counts, each over a shared Env with a warm environment
// pool — the steady state a study server or fleet reaches after its first
// run. workers=1 is the serial engine; the work per iteration is identical
// — and byte-identical — at every count. The warm-up run before the timer
// builds the pool's environments once, so the measured rows show what
// pooling saves: allocs/op must not grow with the worker count.
func BenchmarkStudyParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 6} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			env := NewEnv()
			warm := New(WithEnv(env), WithWorkers(workers))
			if err := warm.Run(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lab := New(WithEnv(env), WithWorkers(workers))
				if err := lab.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTable3_IPv6OnlyFunnel(b *testing.B)   { benchArtifact(b, Table3) }
func BenchmarkFigure2_Rings(b *testing.B)           { benchArtifact(b, Figure2) }
func BenchmarkTable4_DualStackDelta(b *testing.B)   { benchArtifact(b, Table4) }
func BenchmarkTable5_FeatureSupport(b *testing.B)   { benchArtifact(b, Table5) }
func BenchmarkTable6_Counts(b *testing.B)           { benchArtifact(b, Table6) }
func BenchmarkTable7_AAAAReadiness(b *testing.B)    { benchArtifact(b, Table7) }
func BenchmarkTable8_ByManufacturer(b *testing.B)   { benchArtifact(b, Table8) }
func BenchmarkTable9_Switching(b *testing.B)        { benchArtifact(b, Table9) }
func BenchmarkTable10_DeviceInventory(b *testing.B) { benchArtifact(b, Table10) }
func BenchmarkTable12_ByYear(b *testing.B)          { benchArtifact(b, Table12) }
func BenchmarkTable13_CountsByGroup(b *testing.B)   { benchArtifact(b, Table13) }
func BenchmarkFigure3_CDFs(b *testing.B)            { benchArtifact(b, Figure3) }
func BenchmarkFigure4_VolumeFractions(b *testing.B) { benchArtifact(b, Figure4) }
func BenchmarkFigure5_EUI64Exposure(b *testing.B)   { benchArtifact(b, Figure5) }
func BenchmarkDADAudit(b *testing.B)                { benchArtifact(b, DADAudit) }
func BenchmarkPortScan(b *testing.B)                { benchArtifact(b, Ports) }
func BenchmarkTrackingDomains(b *testing.B)         { benchArtifact(b, Tracking) }

// BenchmarkResilience measures the impairment grid end to end on a small
// streaming-heavy population: four fault profiles, six connectivity
// experiments each, with the retry/PMTUD machinery active. The grid is
// deterministic, so the work per iteration is fixed.
func BenchmarkResilience(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := New(WithDevices("TiVo Stream", "Apple TV", "Google Home Mini", "Nest Hub", "Wyze Cam"))
		if err := lab.Run(Resilience()); err != nil {
			b.Fatal(err)
		}
	}
}

// benchBiggestCapture returns the largest experiment capture of the
// shared bench lab — the analysis benches' common input.
func benchBiggestCapture(b *testing.B) (*Lab, *experiment.RunResult) {
	lab := benchSetup(b)
	biggest := lab.Study.Results[0]
	for _, r := range lab.Study.Results {
		if r.Capture.Len() > biggest.Capture.Len() {
			biggest = r
		}
	}
	return lab, biggest
}

// BenchmarkObserveBuffered isolates the batch analysis path: re-extracting
// the per-device observations from the largest experiment capture (the
// frames were already buffered; this replays them through the extraction
// core).
func BenchmarkObserveBuffered(b *testing.B) {
	lab, biggest := benchBiggestCapture(b)
	b.SetBytes(int64(biggest.Capture.Bytes()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.Observe(biggest.Config.ID, biggest.Config.Mode, biggest.Capture,
			lab.Study.MACToDevice, biggest.Functional)
	}
}

// BenchmarkObserveStreaming measures the same extraction fed frame by
// frame through the streaming Observer — the per-frame delivery-tap cost a
// CaptureNone run pays instead of buffering. Same frames, same resulting
// observations (TestStreamingEqualsBuffered), so the delta against
// ObserveBuffered is pure path overhead.
func BenchmarkObserveStreaming(b *testing.B) {
	lab, biggest := benchBiggestCapture(b)
	b.SetBytes(int64(biggest.Capture.Bytes()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := analysis.NewObserver(biggest.Config.ID, biggest.Config.Mode, lab.Study.MACToDevice)
		for _, rec := range biggest.Capture.Records {
			o.Add(rec.Time, rec.Data)
		}
		o.Finalize(biggest.Functional)
	}
}
