package v6lab

import (
	"fmt"

	"v6lab/internal/adversary"
	"v6lab/internal/experiment"
	"v6lab/internal/faults"
	"v6lab/internal/fleet"
	"v6lab/internal/timeline"
)

// PartOption tunes one composable part without touching the lab's global
// options: Fleet(64, Capture(CaptureNone), Seed(7)) reads as one
// population with its own capture policy and seed. Every part resolves
// its settings the same way — an explicit PartOption wins over a config
// struct passed via FleetConfig/AdversaryConfig/TimelineConfig, which
// wins over the lab's WithWorkers/WithCapture/WithSeed defaults. This
// replaces the ad-hoc plumbing where Fleet, FleetWith, AdversaryWith, and
// Resilience each inherited a different subset of the lab's options.
type PartOption func(*partConfig)

// partConfig accumulates the shared per-part settings.
type partConfig struct {
	capture     CapturePolicy
	captureSet  bool
	seed        uint64
	seedSet     bool
	workers     int
	workersSet  bool
	impairments []faults.Profile
	fleetCfg    *fleet.Config
	advCfg      *adversary.Config
	tlCfg       *timeline.Config
}

func applyParts(opts []PartOption) partConfig {
	var pc partConfig
	for _, o := range opts {
		o(&pc)
	}
	return pc
}

// Capture sets the part's frame-capture policy (the timeline part always
// streams via CaptureNone and ignores it).
func Capture(p CapturePolicy) PartOption {
	return func(pc *partConfig) { pc.capture = p; pc.captureSet = true }
}

// Seed sets the part's derivation seed, independent of the lab's
// WithSeed.
func Seed(seed uint64) PartOption {
	return func(pc *partConfig) { pc.seed = seed; pc.seedSet = true }
}

// Workers bounds the part's worker pool, independent of the lab's
// WithWorkers. Output is byte-identical for every value.
func Workers(n int) PartOption {
	return func(pc *partConfig) { pc.workers = n; pc.workersSet = true }
}

// Impairments runs the part under the given fault profiles: the grid for
// Resilience, a single long-horizon profile for Timeline (which uses the
// first). Profiles without an explicit seed inherit the part's.
func Impairments(profiles ...faults.Profile) PartOption {
	return func(pc *partConfig) { pc.impairments = append(pc.impairments, profiles...) }
}

// FleetConfig supplies a full population config to Fleet (or to the fleet
// an Adversary or Timeline part builds). Individual PartOptions still
// override its fields.
func FleetConfig(cfg fleet.Config) PartOption {
	return func(pc *partConfig) { pc.fleetCfg = &cfg }
}

// AdversaryConfig supplies a full attack config to Adversary.
func AdversaryConfig(cfg adversary.Config) PartOption {
	return func(pc *partConfig) { pc.advCfg = &cfg }
}

// TimelineConfig supplies a full long-horizon config to Timeline.
func TimelineConfig(cfg timeline.Config) PartOption {
	return func(pc *partConfig) { pc.tlCfg = &cfg }
}

// Fleet simulates a population of n independent homes. With no options it
// is the default fleet configuration (household-size distribution,
// connectivity and firewall-policy mixes); PartOptions and FleetConfig
// refine it. n <= 0 keeps the config's (or default) population size.
// Results land in FleetPop and the FleetStudy artifact. It is independent
// of Connectivity: either may run first, or alone.
func Fleet(n int, opts ...PartOption) RunPart {
	pc := applyParts(opts)
	return func(l *Lab) error {
		var cfg fleet.Config
		if pc.fleetCfg != nil {
			cfg = *pc.fleetCfg
		}
		if n > 0 {
			cfg.Homes = n
		}
		l.resolveFleet(&cfg, &pc)
		pop, err := fleet.RunContext(l.runCtx(), cfg)
		if err != nil {
			return err
		}
		l.FleetPop = pop
		return nil
	}
}

// resolveFleet applies the part-option precedence to a fleet config.
func (l *Lab) resolveFleet(cfg *fleet.Config, pc *partConfig) {
	if pc.seedSet {
		cfg.Seed = pc.seed
	}
	if pc.workersSet {
		cfg.Workers = pc.workers
	} else if cfg.Workers == 0 {
		cfg.Workers = l.opts.workers
	}
	if pc.captureSet {
		cfg.Capture = pc.capture
	} else if cfg.Capture == experiment.CaptureDefault {
		// Inherit an explicit WithCapture choice; a still-default policy
		// resolves to CaptureNone in the fleet (aggregates only, frames
		// streamed — never buffered).
		cfg.Capture = l.opts.capture
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = l.opts.telemetry
	}
	if cfg.Progress == nil {
		cfg.Progress = l.opts.progress
	}
}

// Adversary simulates an Internet-scale attacker against a population of
// n homes: address discovery against every home's /64, a campaign sweep
// through each home's firewall policy, and worm propagation across the
// discovered population. PartOptions and AdversaryConfig refine the
// attack. Results land in Adv and the AdversaryStudy artifact.
func Adversary(n int, opts ...PartOption) RunPart {
	pc := applyParts(opts)
	return func(l *Lab) error {
		var cfg adversary.Config
		if pc.advCfg != nil {
			cfg = *pc.advCfg
		}
		if pc.fleetCfg != nil {
			cfg.Fleet = *pc.fleetCfg
		}
		if n > 0 {
			cfg.Fleet.Homes = n
		}
		if pc.seedSet {
			cfg.Fleet.Seed = pc.seed
			if cfg.CampaignSeed == 0 {
				cfg.CampaignSeed = pc.seed
			}
		}
		if pc.workersSet {
			cfg.Fleet.Workers = pc.workers
		} else if cfg.Fleet.Workers == 0 {
			cfg.Fleet.Workers = l.opts.workers
		}
		if cfg.Telemetry == nil {
			cfg.Telemetry = l.opts.telemetry
		}
		if cfg.Progress == nil {
			cfg.Progress = l.opts.progress
		}
		rep, err := adversary.RunContext(l.runCtx(), cfg)
		if err != nil {
			return err
		}
		l.Adv = rep
		return nil
	}
}

// Resilience re-runs the Table 2 grid under each impairment profile —
// Impairments(...) to choose them, faults.Grid() (clean, lossy-wifi,
// clamped-tunnel, flaky-dnsmasq) when none are given — building a fresh
// isolated study per profile from the lab's options. Profiles without an
// explicit seed inherit Seed(...) or WithSeed. Results land in Resil and
// the ResilienceStudy artifact.
func Resilience(opts ...PartOption) RunPart {
	pc := applyParts(opts)
	return func(l *Lab) error {
		profiles := pc.impairments
		if len(profiles) == 0 {
			profiles = faults.Grid()
		}
		seed := l.opts.seed
		if pc.seedSet {
			seed = pc.seed
		}
		seeded := make([]faults.Profile, len(profiles))
		for i, p := range profiles {
			if p.Seed == 0 {
				p.Seed = seed
			}
			seeded[i] = p
		}
		so := l.studyOptions()
		if pc.workersSet {
			so.Workers = pc.workers
		}
		if pc.captureSet {
			so.Capture = pc.capture
		}
		// The grid reads stack and router aggregates, never frames: no
		// observer, and (unless the capture options say otherwise) no
		// capture.
		so.Observe = nil
		rep, err := experiment.RunResilienceContext(l.runCtx(), so, seeded...)
		if err != nil {
			return err
		}
		l.Resil = rep
		return nil
	}
}

// Timeline runs the long-horizon event-scheduled engine: a population of
// homes simulated over h of simulated time (days to weeks), with diurnal
// workload bursts, DHCP lease renewals, RA lifetime expiries, sleep/wake
// and power-cycle churn, and periodic ISP prefix rotations. A zero h
// falls back to the lab's WithHorizon; having neither is an
// ErrInvalidHorizon. The part always streams (CaptureNone): a week of
// simulated time never buffers a week of frames. Results land in TL and
// the TimelineStudy artifact.
func Timeline(h Horizon, opts ...PartOption) RunPart {
	pc := applyParts(opts)
	return func(l *Lab) error {
		var cfg timeline.Config
		if pc.tlCfg != nil {
			cfg = *pc.tlCfg
		}
		if pc.fleetCfg != nil {
			cfg.Fleet = *pc.fleetCfg
			// The timeline's own Homes/Seed govern its fleet; a FleetConfig
			// that sets them flows through unless the timeline config did.
			if cfg.Homes == 0 {
				cfg.Homes = pc.fleetCfg.Homes
			}
			if cfg.Seed == 0 {
				cfg.Seed = pc.fleetCfg.Seed
			}
		}
		if !h.IsZero() {
			cfg.Horizon = h.Duration()
		}
		if cfg.Horizon == 0 && !l.opts.horizon.IsZero() {
			cfg.Horizon = l.opts.horizon.Duration()
		}
		if cfg.Horizon <= 0 {
			return fmt.Errorf("%w: Timeline needs a horizon (e.g. v6lab.Weeks(1) or WithHorizon)", ErrInvalidHorizon)
		}
		if pc.seedSet {
			cfg.Seed = pc.seed
		} else if cfg.Seed == 0 {
			cfg.Seed = l.opts.seed
		}
		if pc.workersSet {
			cfg.Workers = pc.workers
		} else if cfg.Workers == 0 {
			cfg.Workers = l.opts.workers
		}
		if cfg.Impairments == nil {
			if len(pc.impairments) > 0 {
				cfg.Impairments = &pc.impairments[0]
			} else if l.opts.fault != nil {
				cfg.Impairments = l.opts.fault
			}
		}
		if cfg.Telemetry == nil {
			cfg.Telemetry = l.opts.telemetry
		}
		if cfg.Progress == nil {
			cfg.Progress = l.opts.progress
		}
		rep, err := timeline.RunContext(l.runCtx(), cfg)
		if err != nil {
			return err
		}
		l.TL = rep
		return nil
	}
}

// FleetWith is the pre-PartOption form of a fully-configured fleet.
//
// Deprecated: use Fleet(0, FleetConfig(cfg)) — or Fleet(n, opts...) with
// individual options.
func FleetWith(cfg fleet.Config) RunPart { return Fleet(0, FleetConfig(cfg)) }

// AdversaryWith is the pre-PartOption form of a fully-configured attack.
//
// Deprecated: use Adversary(0, AdversaryConfig(cfg)).
func AdversaryWith(cfg adversary.Config) RunPart { return Adversary(0, AdversaryConfig(cfg)) }

// ResilienceWith is the pre-PartOption form of Resilience, taking
// profiles positionally.
//
// Deprecated: use Resilience(Impairments(profiles...)).
func ResilienceWith(profiles ...faults.Profile) RunPart {
	return Resilience(Impairments(profiles...))
}
