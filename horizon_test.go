package v6lab

import (
	"errors"
	"strings"
	"testing"
	"time"

	"v6lab/internal/fleet"
	"v6lab/internal/timeline"
)

func TestHorizonConstructorsAndParse(t *testing.T) {
	if got := Days(7).Duration(); got != 7*24*time.Hour {
		t.Errorf("Days(7) = %v", got)
	}
	if got := Weeks(2).Duration(); got != 14*24*time.Hour {
		t.Errorf("Weeks(2) = %v", got)
	}
	for in, want := range map[string]Horizon{
		"7d":  Days(7),
		"2w":  Weeks(2),
		"36h": {d: 36 * time.Hour},
	} {
		h, err := ParseHorizon(in)
		if err != nil {
			t.Errorf("ParseHorizon(%q): %v", in, err)
		} else if h != want {
			t.Errorf("ParseHorizon(%q) = %v, want %v", in, h, want)
		}
	}
	if got := Days(7).String(); got != "7d" {
		t.Errorf("Days(7).String() = %q", got)
	}
	if got := Weeks(1).String(); got != "7d" {
		t.Errorf("Weeks(1).String() = %q, want the same form as Days(7)", got)
	}
	for _, bad := range []string{"", "junk", "0d", "-1d", "-3h", "0s"} {
		if _, err := ParseHorizon(bad); !errors.Is(err, ErrInvalidHorizon) {
			t.Errorf("ParseHorizon(%q) err = %v, want ErrInvalidHorizon", bad, err)
		}
	}
	if _, err := NewHorizon(-time.Hour); !errors.Is(err, ErrInvalidHorizon) {
		t.Errorf("NewHorizon(-1h) err = %v, want ErrInvalidHorizon", err)
	}
}

// TestWithHorizonRejectedAtNew: an invalid WithHorizon is caught when the
// lab is built and surfaces as a typed error from the first Run — never a
// mid-run panic.
func TestWithHorizonRejectedAtNew(t *testing.T) {
	lab := New(WithDevices("TiVo Stream"), WithHorizon(Days(0)))
	err := lab.Run()
	if !errors.Is(err, ErrInvalidHorizon) {
		t.Fatalf("Run err = %v, want ErrInvalidHorizon", err)
	}
	if err := lab.RunContext(t.Context()); !errors.Is(err, ErrInvalidHorizon) {
		t.Fatalf("RunContext err = %v, want ErrInvalidHorizon", err)
	}
}

func TestTimelinePartNeedsAHorizon(t *testing.T) {
	lab := New(WithDevices("TiVo Stream"))
	if err := lab.Run(Timeline(Horizon{})); !errors.Is(err, ErrInvalidHorizon) {
		t.Fatalf("Run(Timeline(zero)) err = %v, want ErrInvalidHorizon", err)
	}
}

// TestTimelinePartAndArtifact: Run(Timeline(h)) fills TL and Results.
// Timeline, the artifact renders, and a zero part horizon falls back to
// WithHorizon.
func TestTimelinePartAndArtifact(t *testing.T) {
	lab := New(WithHorizon(Days(1)))
	// Rotate every 8h so even a one-day horizon exercises renumbering.
	part := Timeline(Horizon{},
		FleetConfig(fleet.Config{Homes: 4, Seed: 3}),
		TimelineConfig(timeline.Config{RotationEvery: 8 * time.Hour}),
		Workers(2))
	if err := lab.Run(part); err != nil {
		t.Fatal(err)
	}
	if lab.TL == nil {
		t.Fatal("Run(Timeline) left TL nil")
	}
	if got := lab.TL.Cfg.Horizon; got != 24*time.Hour {
		t.Fatalf("timeline horizon = %v, want WithHorizon's 24h", got)
	}
	res, err := lab.Results()
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeline != lab.TL {
		t.Fatal("Results.Timeline does not expose the timeline report")
	}
	out, err := lab.ReportErr(TimelineStudy)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Timeline — 4 homes", "Lease-renewal funnel", "prefix rotations"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline artifact missing %q:\n%s", want, out)
		}
	}
}

// TestDeprecatedWrappersMatchNewForms: the thin deprecated wrappers are
// exactly the new PartOption spellings.
func TestDeprecatedWrappersMatchNewForms(t *testing.T) {
	render := func(part RunPart) string {
		lab := New()
		if err := lab.Run(part); err != nil {
			t.Fatal(err)
		}
		return lab.Report(FleetStudy)
	}
	oldForm := render(FleetWith(fleet.Config{Homes: 6, Seed: 2}))
	newForm := render(Fleet(6, Seed(2)))
	if oldForm != newForm {
		t.Errorf("FleetWith and Fleet(n, Seed(...)) diverge:\n--- old ---\n%s\n--- new ---\n%s", oldForm, newForm)
	}
}
