// Packetlab tours the protocol substrates directly: craft a router
// advertisement, SLAAC an address from it, exchange a DNS query with the
// simulated resolver, and round-trip everything through a pcap file —
// the building blocks the study's testbed is made of.
package main

import (
	"fmt"
	"log"
	"net/netip"
	"os"
	"time"

	"v6lab/internal/addr"
	"v6lab/internal/cloud"
	"v6lab/internal/dnsmsg"
	"v6lab/internal/ndp"
	"v6lab/internal/packet"
	"v6lab/internal/pcapio"
)

func main() {
	// 1. Craft a router advertisement like the testbed router's.
	ra := &ndp.RouterAdvert{
		HopLimit:       64,
		OtherConfig:    true,
		RouterLifetime: 1800 * time.Second,
		Prefixes: []ndp.PrefixInfo{{
			Prefix: netip.MustParsePrefix("2001:db8:cafe::/64"),
			OnLink: true, AutonomousFlag: true,
			ValidLifetime: 86400 * time.Second, PreferredLifetime: 14400 * time.Second,
		}},
		RDNSS: []ndp.RDNSS{{Lifetime: 1800 * time.Second, Servers: []netip.Addr{cloud.DNSv6}}},
	}
	routerLLA := netip.MustParseAddr("fe80::1")
	frame, err := packet.Serialize(
		&packet.Ethernet{Dst: addr.MulticastMAC(addr.AllNodesMulticast), Src: packet.MAC{2, 0, 0, 0, 0, 1}, Type: packet.EtherTypeIPv6},
		&packet.IPv6{NextHeader: packet.IPProtocolICMPv6, HopLimit: 255, Src: routerLLA, Dst: addr.AllNodesMulticast},
		&packet.ICMPv6{Type: packet.ICMPv6TypeRouterAdvert, Body: ra.MarshalBody(), Src: routerLLA, Dst: addr.AllNodesMulticast},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RA frame: %d bytes on the wire\n", len(frame))

	// 2. A device parses it and SLAACs two addresses: the trackable EUI-64
	//    form and an RFC 8981 privacy address.
	parsed := packet.Parse(frame)
	got, err := ndp.ParseRouterAdvert(parsed.ICMPv6.Body)
	if err != nil {
		log.Fatal(err)
	}
	mac := packet.MAC{0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde}
	eui := addr.EUI64Addr(got.Prefixes[0].Prefix, mac)
	fmt.Printf("SLAAC EUI-64 address:  %v (embeds MAC %v: %v)\n", eui, mac, addr.EUI64MatchesMAC(eui, mac))

	// 3. Resolve a name against the simulated resolver.
	cl := cloud.New()
	cl.AddDomain("api.vendor.example", cloud.PartyFirst, true, false)
	answers, rcode := cl.Resolve("api.vendor.example", dnsmsg.TypeAAAA)
	fmt.Printf("AAAA api.vendor.example -> %v (%v)\n", answers[0].Addr, rcode)

	// 4. Round-trip the frame through a pcap file.
	path := "ra.pcap"
	if err := pcapio.WriteFile(path, []pcapio.Record{{Time: time.Now(), Data: frame}}); err != nil {
		log.Fatal(err)
	}
	recs, err := pcapio.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pcap round trip: %d record(s), %d bytes (try: tcpdump -r %s)\n", len(recs), len(recs[0].Data), path)
	os.Remove(path)
}
