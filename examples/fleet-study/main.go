// Fleet study: scale the single-home testbed to a population. Simulates
// N independent smart homes — each with its own device subset, Table 2
// connectivity config, and inbound-IPv6 firewall policy — on a bounded
// worker pool, then renders the population-level prevalence results.
// The aggregate is byte-identical for any worker count.
//
// Usage: fleet-study [homes] [workers]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"v6lab"
)

func main() {
	homes, workers := 40, 0 // 0 workers = GOMAXPROCS
	if len(os.Args) > 1 {
		homes = atoi(os.Args[1])
	}
	if len(os.Args) > 2 {
		workers = atoi(os.Args[2])
	}

	lab := v6lab.New()
	if err := lab.Run(v6lab.Fleet(homes, v6lab.Workers(workers))); err != nil {
		log.Fatal(err)
	}
	fmt.Print(lab.Report(v6lab.FleetStudy))

	// The per-home results stay addressable: show the worst-off home.
	worst, bricked := -1, 0
	for i, hr := range lab.FleetPop.Homes {
		if b := hr.Devices - hr.Functional; b > bricked {
			worst, bricked = i, b
		}
	}
	if worst >= 0 {
		hr := lab.FleetPop.Homes[worst]
		fmt.Printf("\nworst-off home: #%d (%s), %d of %d devices bricked\n",
			hr.Spec.Index, hr.Spec.ConfigID, bricked, hr.Devices)
	}
}

func atoi(s string) int {
	n, err := strconv.Atoi(s)
	if err != nil {
		log.Fatalf("want a number, got %q", s)
	}
	return n
}
