// Dual-stack comparison: the paper's RQ3 analysis — how destinations and
// traffic volume shift between IPv4 and IPv6 when both are available
// (Tables 4 and 9, Figure 4), plus the per-experiment pcaps for external
// tooling.
package main

import (
	"fmt"
	"log"
	"os"

	"v6lab"
)

func main() {
	lab := v6lab.New()
	if err := lab.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Print(lab.Report(v6lab.Table4))
	fmt.Println()
	fmt.Print(lab.Report(v6lab.Table9))
	fmt.Println()
	fmt.Print(lab.Report(v6lab.Figure4))

	dir := "captures"
	if len(os.Args) > 1 {
		dir = os.Args[1]
	}
	if err := lab.SavePcaps(dir); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nper-experiment pcaps written to %s/ (readable with tcpdump/wireshark)\n", dir)
}
