// Resilience walkthrough: the Table 2 connectivity grid re-run under
// deterministic impairment profiles — lossy Wi-Fi (frame loss,
// duplication, reordering on the LAN), a clamped IPv6 tunnel (reduced
// path MTU, so flows must honor ICMPv6 Packet-Too-Big or stall), and a
// flaky dnsmasq (dropped RAs, DHCPv6 replies, and AAAA answers).
//
// Everything is seeded: the same seed and profile reproduce the grid
// byte for byte, so a "this device bricks behind a tunnel" result is a
// repeatable artifact, not an anecdote.
//
// Usage: resilience [seed]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"v6lab"
	"v6lab/internal/faults"
)

func main() {
	seed := uint64(1)
	if len(os.Args) > 1 {
		n, err := strconv.ParseUint(os.Args[1], 10, 64)
		if err != nil {
			log.Fatalf("bad seed %q: %v", os.Args[1], err)
		}
		seed = n
	}

	// A small streaming-heavy population keeps the walkthrough fast and
	// still shows every failure mode; drop WithDevices to run the full
	// 93-device registry.
	lab := v6lab.New(
		v6lab.WithDevices("TiVo Stream", "Apple TV", "Google Home Mini", "Nest Hub", "Wyze Cam"),
		v6lab.WithSeed(seed),
	)

	// Resilience() with no arguments runs the whole faults.Grid(); name
	// profiles explicitly to subset or reorder it.
	if err := lab.Run(v6lab.Resilience()); err != nil {
		log.Fatal(err)
	}
	fmt.Print(lab.Report(v6lab.ResilienceStudy))

	// The report object stays addressable for custom analysis: pull one
	// grid cell and show why its devices failed.
	if c := lab.Resil.Config(faults.ClampedTunnel().Name, "ipv6-only"); c != nil && len(c.FailedDevices) > 0 {
		fmt.Printf("\nclamped-tunnel/ipv6-only bricked: %v (failure modes %v)\n",
			c.FailedDevices, c.Failures)
	}
}
