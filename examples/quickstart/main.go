// Quickstart: run the full study and print the headline results — the
// IPv6-only readiness funnel (Table 3 / Figure 2) that the paper's
// abstract summarizes.
package main

import (
	"fmt"
	"log"

	"v6lab"
)

func main() {
	lab := v6lab.New()
	if err := lab.Run(); err != nil {
		log.Fatal(err)
	}

	f := lab.Data.Table3()
	fmt.Printf("Of 93 devices in an IPv6-only network:\n")
	fmt.Printf("  %5.1f%% generate IPv6 (NDP) traffic\n", pct(f.NDP.Total()))
	fmt.Printf("  %5.1f%% assign at least one IPv6 address\n", pct(f.Addr.Total()))
	fmt.Printf("  %5.1f%% initiate AAAA DNS queries in IPv6\n", pct(f.DNSAAAAReq.Total()))
	fmt.Printf("  %5.1f%% transmit data to Internet IPv6 destinations\n", pct(f.InternetData.Total()))
	fmt.Printf("  %5.1f%% remain functional\n\n", pct(f.Functional.Total()))
	fmt.Print(lab.Report(v6lab.Table3))
}

func pct(n int) float64 { return 100 * float64(n) / 93 }
