// Privacy audit: the paper's RQ4 pipeline — which devices expose their MAC
// address through EUI-64 global IPv6 addresses (Figure 5), which skip
// duplicate address detection (§5.2.1), and which expose different service
// ports over IPv6 than over IPv4 (§5.4.2).
package main

import (
	"fmt"
	"log"

	"v6lab"
)

func main() {
	lab := v6lab.New()
	if err := lab.Run(); err != nil {
		log.Fatal(err)
	}

	exposure := lab.Data.EUI64Exposure()
	fmt.Printf("EUI-64 privacy exposure: %d devices use trackable global addresses\n", exposure.Use)
	fmt.Printf("  exposing their MAC to DNS resolvers:   %v\n", append(exposure.DNSOnlyDevices, exposure.DataDevices...))
	fmt.Printf("  exposing their MAC to Internet servers: %v\n\n", exposure.DataDevices)
	fmt.Print(lab.Report(v6lab.Figure5))
	fmt.Println()
	fmt.Print(lab.Report(v6lab.DADAudit))
	fmt.Println()
	fmt.Print(lab.Report(v6lab.Ports))
	fmt.Println()
	fmt.Print(lab.Report(v6lab.Tracking))
}
