package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBadFlagExitsUsage(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errw, nil, nil); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

func TestPositionalArgRejected(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"serve"}, &out, &errw, nil, nil); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "unknown argument") {
		t.Errorf("stderr missing diagnosis: %q", errw.String())
	}
}

func TestInvalidSizesRejected(t *testing.T) {
	for _, args := range [][]string{
		{"-workers", "-1"},
		{"-queue", "0"},
		{"-cache", "0"},
		{"-drain", "0s"},
	} {
		var out, errw bytes.Buffer
		if code := run(args, &out, &errw, nil, nil); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
}

func TestUnlistenableAddrFails(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-addr", "203.0.113.1:1"}, &out, &errw, nil, nil); code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", 0, errw.String())
	}
}

// TestServeSubmitDrain is the end-to-end path: boot on an ephemeral
// port, submit a job over real HTTP, resubmit it for a cache hit, then
// stop and assert a clean drain.
func TestServeSubmitDrain(t *testing.T) {
	ready := make(chan string, 1)
	stop := make(chan struct{})
	var out, errw syncBuffer
	code := make(chan int, 1)
	go func() {
		code <- run([]string{"-addr", "127.0.0.1:0", "-workers", "1", "-drain", "30s"}, &out, &errw, ready, stop)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	spec := `{"kind":"study","devices":["Wyze Cam","Apple TV"]}`
	id := submitAndWait(t, base, spec)
	dup := postJSON(t, base+"/v1/jobs", spec)
	if dup["cached"] != true {
		t.Errorf("resubmission not cached: %v", dup)
	}
	if id == "" {
		t.Fatal("no job id")
	}

	close(stop)
	select {
	case c := <-code:
		if c != 0 {
			t.Fatalf("run exited %d; stderr:\n%s", c, errw.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatal("server did not stop")
	}
	if !strings.Contains(errw.String(), "drained cleanly") {
		t.Errorf("stderr missing clean-drain note:\n%s", errw.String())
	}
}

func submitAndWait(t *testing.T, base, spec string) string {
	t.Helper()
	sub := postJSON(t, base+"/v1/jobs", spec)
	id, _ := sub["id"].(string)
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st map[string]any
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch st["state"] {
		case "done":
			return id
		case "failed", "cancelled":
			t.Fatalf("job %s ended %v: %v", id, st["state"], st["error"])
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return ""
}

func postJSON(t *testing.T, url, body string) map[string]any {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST %s = %d: %s", url, resp.StatusCode, blob)
	}
	var m map[string]any
	if err := json.Unmarshal(blob, &m); err != nil {
		t.Fatal(err)
	}
	return m
}

// syncBuffer guards a bytes.Buffer: the server goroutine writes logs
// while the test reads them.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
