// Command v6labd is the long-lived multi-tenant study server: an
// HTTP/JSON API that accepts study, firewall-comparison, fleet, and
// resilience job specs, runs them on a shared bounded worker pool, and
// serves identical requests instantly from a deterministic result cache
// keyed by (seed, options-hash).
//
// Usage:
//
//	v6labd [-addr :8080] [-workers 0] [-queue 64] [-cache 64]
//	       [-drain 30s] [-quiet]
//
// Endpoints:
//
//	POST /v1/jobs                       submit a job spec, returns {id, cached}
//	GET  /v1/jobs/{id}                  job status + artifact names
//	GET  /v1/jobs/{id}/events           live progress (SSE line stream)
//	GET  /v1/jobs/{id}/artifacts/{name} fullreport, per-config pcaps, CSV, telemetry
//	GET  /metrics                       Prometheus text (server-level counters)
//	GET  /healthz                       liveness
//
// SIGINT/SIGTERM drains gracefully: in-flight jobs finish (up to -drain),
// queued jobs are cancelled, and no partial artifacts leak.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"v6lab/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil, nil))
}

// run is the testable entry point. ready, when non-nil, receives the
// bound listen address once the server is accepting connections; stop,
// when non-nil, triggers the same graceful drain as SIGINT/SIGTERM.
// It returns the process exit code (0 ok, 1 runtime failure, 2 usage
// error).
func run(args []string, stdout, stderr io.Writer, ready chan<- string, stop <-chan struct{}) int {
	fs := flag.NewFlagSet("v6labd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "job worker-pool size; 0 = GOMAXPROCS")
	queue := fs.Int("queue", 64, "max queued jobs before submissions are rejected with 503")
	cacheN := fs.Int("cache", 64, "result-cache capacity, in completed studies")
	drain := fs.Duration("drain", 30*time.Second, "graceful-shutdown deadline for in-flight jobs")
	quiet := fs.Bool("quiet", false, "suppress per-job log lines")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "v6labd: unknown argument %q (the command takes no subcommands)\n", fs.Arg(0))
		fs.Usage()
		return 2
	}
	if *workers < 0 || *queue < 1 || *cacheN < 1 || *drain <= 0 {
		fmt.Fprintln(stderr, "v6labd: -workers wants >= 0, -queue and -cache >= 1, -drain > 0")
		return 2
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "v6labd:", err)
		return 1
	}

	var logw io.Writer
	if !*quiet {
		logw = stderr
	}
	srv := server.New(server.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheEntries: *cacheN,
		Log:          logw,
	})
	httpSrv := &http.Server{Handler: srv.Handler()}

	fmt.Fprintf(stderr, "v6labd listening on %s (workers %d, queue %d, cache %d)\n",
		ln.Addr(), *workers, *queue, *cacheN)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sigCtx, cancelSig := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancelSig()
	if stop == nil {
		stop = make(chan struct{}) // never fires; signals drive shutdown
	}
	select {
	case err := <-serveErr:
		fmt.Fprintln(stderr, "v6labd:", err)
		return 1
	case <-sigCtx.Done():
		fmt.Fprintln(stderr, "v6labd: signal received, draining...")
	case <-stop:
		fmt.Fprintln(stderr, "v6labd: stop requested, draining...")
	}

	// Drain jobs first — the API stays up so clients can watch their
	// in-flight jobs finish — then close the listener.
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drain)
	defer cancelDrain()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(stderr, "v6labd: drain deadline exceeded, in-flight jobs cancelled (%v)\n", err)
	} else {
		fmt.Fprintln(stderr, "v6labd: drained cleanly")
	}
	closeCtx, cancelClose := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelClose()
	httpSrv.Shutdown(closeCtx)
	return 0
}
