// Command benchjson converts `go test -bench` output into a
// machine-readable JSON file so the perf trajectory is tracked across
// PRs, and optionally gates on allocation regressions against a committed
// baseline.
//
// Usage:
//
//	go test -bench 'StudyParallel|FramePath|WriteRecord' -benchmem . ./internal/... |
//	    go run ./cmd/benchjson -out BENCH_study.json
//
//	go run ./cmd/benchjson -in bench.txt -out BENCH_study.json \
//	    -baseline BENCH_study.json -max-alloc-regress 20
//
// Only allocs/op is compared against the baseline: it is the one metric
// that is stable across machines (ns/op and MB/s depend on the host, so
// they are recorded but never gated on).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Bench is one parsed benchmark result line.
type Bench struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped
	// ("StudyParallel/workers=4"), so baselines compare across machines.
	Name string `json:"name"`
	// Procs is the stripped GOMAXPROCS suffix (0 if none).
	Procs int `json:"procs,omitempty"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is wall clock per operation (machine-dependent).
	NsPerOp float64 `json:"ns_per_op"`
	// MBPerS is throughput when the bench sets bytes (machine-dependent).
	MBPerS float64 `json:"mb_per_s,omitempty"`
	// BytesPerOp and AllocsPerOp are present with -benchmem. AllocsPerOp
	// is the regression-gated metric.
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// File is the BENCH_study.json schema.
type File struct {
	Benchmarks []Bench `json:"benchmarks"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "read bench output from this file instead of stdin")
	out := fs.String("out", "", "write the JSON result here (empty = stdout)")
	baseline := fs.String("baseline", "", "compare allocs/op against this previously emitted JSON file")
	maxRegress := fs.Float64("max-alloc-regress", 20, "fail when allocs/op regresses more than this percentage over the baseline")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "benchjson: unexpected argument %q\n", fs.Arg(0))
		return 2
	}

	src := stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(stderr, "benchjson:", err)
			return 1
		}
		defer f.Close()
		src = f
	}
	benches, err := ParseBenchOutput(src)
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	if len(benches) == 0 {
		fmt.Fprintln(stderr, "benchjson: no benchmark lines found in input")
		return 1
	}

	blob, err := json.MarshalIndent(File{Benchmarks: benches}, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	blob = append(blob, '\n')
	if *out == "" {
		stdout.Write(blob)
	} else if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}

	if *baseline != "" {
		regressions, err := CompareAllocs(*baseline, benches, *maxRegress)
		if err != nil {
			fmt.Fprintln(stderr, "benchjson:", err)
			return 1
		}
		if len(regressions) > 0 {
			for _, r := range regressions {
				fmt.Fprintln(stderr, "benchjson: ALLOC REGRESSION:", r)
			}
			return 1
		}
		fmt.Fprintf(stderr, "benchjson: allocs/op within %.0f%% of baseline for all %d benchmarks\n",
			*maxRegress, len(benches))
	}
	return 0
}

// ParseBenchOutput extracts benchmark result lines from go test output.
// A result line looks like:
//
//	BenchmarkFramePath-8  1000000  1234 ns/op  210.55 MB/s  12 B/op  0 allocs/op
func ParseBenchOutput(r io.Reader) ([]Bench, error) {
	var out []Bench
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		b := Bench{Name: strings.TrimPrefix(fields[0], "Benchmark")}
		if i := strings.LastIndex(b.Name, "-"); i > 0 {
			if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
				b.Name, b.Procs = b.Name[:i], procs
			}
		}
		var err error
		if b.Iterations, err = strconv.ParseInt(fields[1], 10, 64); err != nil {
			continue
		}
		if b.NsPerOp, err = strconv.ParseFloat(fields[2], 64); err != nil {
			continue
		}
		// Optional unit-tagged pairs after ns/op.
		for i := 4; i+1 < len(fields); i += 2 {
			val, unit := fields[i], fields[i+1]
			switch unit {
			case "MB/s":
				b.MBPerS, _ = strconv.ParseFloat(val, 64)
			case "B/op":
				b.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
			case "allocs/op":
				b.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
			}
		}
		out = append(out, b)
	}
	return out, sc.Err()
}

// CompareAllocs checks current allocs/op against a baseline JSON file and
// returns a description of every benchmark that regressed more than
// maxPct percent. Benchmarks absent from either side are skipped (new
// benches should not fail the gate; renamed ones get a fresh baseline).
func CompareAllocs(baselinePath string, current []Bench, maxPct float64) ([]string, error) {
	blob, err := os.ReadFile(baselinePath)
	if err != nil {
		return nil, err
	}
	var base File
	if err := json.Unmarshal(blob, &base); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
	}
	baseBy := map[string]Bench{}
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	var regressions []string
	for _, cur := range current {
		old, ok := baseBy[cur.Name]
		if !ok {
			continue
		}
		limit := float64(old.AllocsPerOp) * (1 + maxPct/100)
		if float64(cur.AllocsPerOp) > limit {
			regressions = append(regressions,
				fmt.Sprintf("%s: %d allocs/op vs baseline %d (limit %.0f, +%.0f%%)",
					cur.Name, cur.AllocsPerOp, old.AllocsPerOp, limit, maxPct))
		}
	}
	sort.Strings(regressions)
	return regressions, nil
}
