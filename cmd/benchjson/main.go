// Command benchjson converts `go test -bench` output into a
// machine-readable JSON file so the perf trajectory is tracked across
// PRs, and optionally gates on allocation regressions against a committed
// baseline.
//
// Usage:
//
//	go test -bench 'StudyParallel|FramePath|WriteRecord' -benchmem . ./internal/... |
//	    go run ./cmd/benchjson -out BENCH_study.json
//
//	go run ./cmd/benchjson -in bench.txt -out BENCH_study.json \
//	    -baseline BENCH_study.json -max-alloc-regress 20 \
//	    -monotonic StudyParallel -max-ns-regress 50 -ns-gate '^StudyParallel/'
//
// allocs/op is the primary gated metric: it is the one metric that is
// stable across machines. Two further gates are opt-in: -monotonic FAMILY
// asserts allocs/op does not grow with the worker count across a family's
// workers=N sub-benchmarks (within -monotonic-slack percent — worker
// scheduling shuffles which environment warms up on which experiment, so
// exact equality is noise), and -max-ns-regress gates ns/op against the
// baseline for benchmarks matching -ns-gate. The ns gate needs a generous
// percentage: wall clock depends on the host, so it catches only
// order-of-magnitude scaling regressions, not percent-level drift.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Bench is one parsed benchmark result line.
type Bench struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped
	// ("StudyParallel/workers=4"), so baselines compare across machines.
	Name string `json:"name"`
	// Procs is the stripped GOMAXPROCS suffix (0 if none).
	Procs int `json:"procs,omitempty"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is wall clock per operation (machine-dependent).
	NsPerOp float64 `json:"ns_per_op"`
	// MBPerS is throughput when the bench sets bytes (machine-dependent).
	MBPerS float64 `json:"mb_per_s,omitempty"`
	// BytesPerOp and AllocsPerOp are present with -benchmem. AllocsPerOp
	// is the regression-gated metric.
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// File is the BENCH_study.json schema.
type File struct {
	Benchmarks []Bench `json:"benchmarks"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "read bench output from this file instead of stdin")
	out := fs.String("out", "", "write the JSON result here (empty = stdout)")
	baseline := fs.String("baseline", "", "compare allocs/op against this previously emitted JSON file")
	maxRegress := fs.Float64("max-alloc-regress", 20, "fail when allocs/op regresses more than this percentage over the baseline")
	monotonic := fs.String("monotonic", "", "assert allocs/op is non-increasing across this benchmark family's workers=N sub-benchmarks")
	monoSlack := fs.Float64("monotonic-slack", 0.5, "percentage by which a higher worker count may exceed a lower one before -monotonic fails")
	maxNsRegress := fs.Float64("max-ns-regress", 0, "when > 0, fail when ns/op regresses more than this percentage over the baseline for benchmarks matching -ns-gate")
	nsGate := fs.String("ns-gate", "^StudyParallel/", "regexp selecting the benchmarks gated on ns/op (with -max-ns-regress)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "benchjson: unexpected argument %q\n", fs.Arg(0))
		return 2
	}

	src := stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(stderr, "benchjson:", err)
			return 1
		}
		defer f.Close()
		src = f
	}
	benches, err := ParseBenchOutput(src)
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	if len(benches) == 0 {
		fmt.Fprintln(stderr, "benchjson: no benchmark lines found in input")
		return 1
	}

	blob, err := json.MarshalIndent(File{Benchmarks: benches}, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	blob = append(blob, '\n')
	if *out == "" {
		stdout.Write(blob)
	} else if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}

	if *baseline != "" {
		regressions, err := CompareAllocs(*baseline, benches, *maxRegress)
		if err != nil {
			fmt.Fprintln(stderr, "benchjson:", err)
			return 1
		}
		if len(regressions) > 0 {
			for _, r := range regressions {
				fmt.Fprintln(stderr, "benchjson: ALLOC REGRESSION:", r)
			}
			return 1
		}
		fmt.Fprintf(stderr, "benchjson: allocs/op within %.0f%% of baseline for all %d benchmarks\n",
			*maxRegress, len(benches))
	}
	if *baseline != "" && *maxNsRegress > 0 {
		re, err := regexp.Compile(*nsGate)
		if err != nil {
			fmt.Fprintln(stderr, "benchjson: -ns-gate:", err)
			return 2
		}
		regressions, err := CompareNs(*baseline, benches, re, *maxNsRegress)
		if err != nil {
			fmt.Fprintln(stderr, "benchjson:", err)
			return 1
		}
		if len(regressions) > 0 {
			for _, r := range regressions {
				fmt.Fprintln(stderr, "benchjson: NS/OP REGRESSION:", r)
			}
			return 1
		}
		fmt.Fprintf(stderr, "benchjson: ns/op within %.0f%% of baseline for benchmarks matching %s\n",
			*maxNsRegress, *nsGate)
	}
	if *monotonic != "" {
		violations, err := CheckWorkersMonotonic(*monotonic, benches, *monoSlack)
		if err != nil {
			fmt.Fprintln(stderr, "benchjson:", err)
			return 1
		}
		if len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintln(stderr, "benchjson: ALLOCS NOT MONOTONIC:", v)
			}
			return 1
		}
		fmt.Fprintf(stderr, "benchjson: %s allocs/op non-increasing in workers (slack %.1f%%)\n",
			*monotonic, *monoSlack)
	}
	return 0
}

// ParseBenchOutput extracts benchmark result lines from go test output.
// A result line looks like:
//
//	BenchmarkFramePath-8  1000000  1234 ns/op  210.55 MB/s  12 B/op  0 allocs/op
func ParseBenchOutput(r io.Reader) ([]Bench, error) {
	var out []Bench
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		b := Bench{Name: strings.TrimPrefix(fields[0], "Benchmark")}
		if i := strings.LastIndex(b.Name, "-"); i > 0 {
			if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
				b.Name, b.Procs = b.Name[:i], procs
			}
		}
		var err error
		if b.Iterations, err = strconv.ParseInt(fields[1], 10, 64); err != nil {
			continue
		}
		if b.NsPerOp, err = strconv.ParseFloat(fields[2], 64); err != nil {
			continue
		}
		// Optional unit-tagged pairs after ns/op.
		for i := 4; i+1 < len(fields); i += 2 {
			val, unit := fields[i], fields[i+1]
			switch unit {
			case "MB/s":
				b.MBPerS, _ = strconv.ParseFloat(val, 64)
			case "B/op":
				b.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
			case "allocs/op":
				b.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
			}
		}
		out = append(out, b)
	}
	return out, sc.Err()
}

// CompareAllocs checks current allocs/op against a baseline JSON file and
// returns a description of every benchmark that regressed more than
// maxPct percent. Benchmarks absent from either side are skipped (new
// benches should not fail the gate; renamed ones get a fresh baseline).
func CompareAllocs(baselinePath string, current []Bench, maxPct float64) ([]string, error) {
	baseBy, err := loadBaseline(baselinePath)
	if err != nil {
		return nil, err
	}
	var regressions []string
	for _, cur := range current {
		old, ok := baseBy[cur.Name]
		if !ok {
			continue
		}
		limit := float64(old.AllocsPerOp) * (1 + maxPct/100)
		if float64(cur.AllocsPerOp) > limit {
			regressions = append(regressions,
				fmt.Sprintf("%s: %d allocs/op vs baseline %d (limit %.0f, +%.0f%%)",
					cur.Name, cur.AllocsPerOp, old.AllocsPerOp, limit, maxPct))
		}
	}
	sort.Strings(regressions)
	return regressions, nil
}

// CompareNs checks current ns/op against the baseline for benchmarks whose
// name matches the gate pattern, returning a description of every one that
// regressed more than maxPct percent. Unlike allocs/op this is a wall-clock
// metric, so callers pass a generous percentage: the gate exists to catch
// scaling regressions (a parallel engine gone quadratic), not host noise.
func CompareNs(baselinePath string, current []Bench, gate *regexp.Regexp, maxPct float64) ([]string, error) {
	base, err := loadBaseline(baselinePath)
	if err != nil {
		return nil, err
	}
	var regressions []string
	for _, cur := range current {
		if !gate.MatchString(cur.Name) {
			continue
		}
		old, ok := base[cur.Name]
		if !ok {
			continue
		}
		limit := old.NsPerOp * (1 + maxPct/100)
		if cur.NsPerOp > limit {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (limit %.0f, +%.0f%%)",
					cur.Name, cur.NsPerOp, old.NsPerOp, limit, maxPct))
		}
	}
	sort.Strings(regressions)
	return regressions, nil
}

// CheckWorkersMonotonic asserts that allocs/op does not grow with the
// worker count across a family's workers=N sub-benchmarks: every higher
// count must stay within slackPct percent of the minimum seen at any lower
// count. The slack absorbs scheduling noise (which environment warms up on
// which experiment varies run to run); a worker-scaled allocation leak —
// e.g. environments rebuilt instead of pooled — exceeds it. Fewer than two
// workers= rows is an error: the gate would otherwise pass vacuously when
// the benchmark is misspelled or filtered out.
func CheckWorkersMonotonic(family string, benches []Bench, slackPct float64) ([]string, error) {
	type row struct {
		workers int
		allocs  int64
	}
	prefix := family + "/workers="
	var rows []row
	for _, b := range benches {
		n, err := strconv.Atoi(strings.TrimPrefix(b.Name, prefix))
		if strings.HasPrefix(b.Name, prefix) && err == nil {
			rows = append(rows, row{n, b.AllocsPerOp})
		}
	}
	if len(rows) < 2 {
		return nil, fmt.Errorf("-monotonic %s: found %d workers= sub-benchmarks, need at least 2", family, len(rows))
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].workers < rows[j].workers })
	var violations []string
	min := rows[0]
	for _, r := range rows[1:] {
		limit := float64(min.allocs) * (1 + slackPct/100)
		if float64(r.allocs) > limit {
			violations = append(violations,
				fmt.Sprintf("%s/workers=%d: %d allocs/op vs %d at workers=%d (limit %.0f, +%.1f%%)",
					family, r.workers, r.allocs, min.allocs, min.workers, limit, slackPct))
		}
		if r.allocs < min.allocs {
			min = r
		}
	}
	return violations, nil
}

// loadBaseline reads a previously emitted JSON file into a by-name map.
func loadBaseline(path string) (map[string]Bench, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var base File
	if err := json.Unmarshal(blob, &base); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	by := map[string]Bench{}
	for _, b := range base.Benchmarks {
		by[b.Name] = b
	}
	return by, nil
}
