package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: v6lab
BenchmarkStudyParallel/workers=1-8         	       1	1500000000 ns/op	900000000 B/op	 5000000 allocs/op
BenchmarkStudyParallel/workers=4-8         	       2	 600000000 ns/op	910000000 B/op	 5100000 allocs/op
BenchmarkFramePath-8                       	 5000000	       250 ns/op	 856.00 MB/s	      12 B/op	       0 allocs/op
BenchmarkWriteRecord                       	 3000000	       400 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	v6lab	12.3s
`

func TestParseBenchOutput(t *testing.T) {
	benches, err := ParseBenchOutput(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(benches))
	}
	b := benches[0]
	if b.Name != "StudyParallel/workers=1" || b.Procs != 8 {
		t.Errorf("first bench = %q procs %d", b.Name, b.Procs)
	}
	if b.Iterations != 1 || b.NsPerOp != 1.5e9 || b.AllocsPerOp != 5000000 {
		t.Errorf("first bench values: %+v", b)
	}
	fp := benches[2]
	if fp.Name != "FramePath" || fp.MBPerS != 856 || fp.BytesPerOp != 12 || fp.AllocsPerOp != 0 {
		t.Errorf("FramePath values: %+v", fp)
	}
	// A bench without the -procs suffix keeps its bare name.
	if benches[3].Name != "WriteRecord" || benches[3].Procs != 0 {
		t.Errorf("WriteRecord parsed as %+v", benches[3])
	}
}

func writeBaseline(t *testing.T, benches []Bench) string {
	t.Helper()
	blob, err := json.Marshal(File{Benchmarks: benches})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareAllocs(t *testing.T) {
	base := writeBaseline(t, []Bench{
		{Name: "FramePath", AllocsPerOp: 100},
		{Name: "Retired", AllocsPerOp: 1},
	})
	// Within the 20% budget: no regression.
	regs, err := CompareAllocs(base, []Bench{{Name: "FramePath", AllocsPerOp: 119}}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Errorf("within-budget run flagged: %v", regs)
	}
	// Past the budget: flagged.
	regs, err = CompareAllocs(base, []Bench{{Name: "FramePath", AllocsPerOp: 121}}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || !strings.Contains(regs[0], "FramePath") {
		t.Errorf("over-budget run not flagged: %v", regs)
	}
	// New benchmarks (absent from the baseline) never fail the gate.
	regs, err = CompareAllocs(base, []Bench{{Name: "Brand/New", AllocsPerOp: 1 << 30}}, 20)
	if err != nil || len(regs) != 0 {
		t.Errorf("new bench flagged: %v %v", regs, err)
	}
}

func TestCompareNs(t *testing.T) {
	base := writeBaseline(t, []Bench{
		{Name: "StudyParallel/workers=1", NsPerOp: 1e9},
		{Name: "FramePath", NsPerOp: 250},
	})
	gate := regexp.MustCompile(`^StudyParallel/`)
	// Within the 50% budget: no regression.
	regs, err := CompareNs(base, []Bench{{Name: "StudyParallel/workers=1", NsPerOp: 1.4e9}}, gate, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Errorf("within-budget run flagged: %v", regs)
	}
	// Past the budget: flagged.
	regs, err = CompareNs(base, []Bench{{Name: "StudyParallel/workers=1", NsPerOp: 1.6e9}}, gate, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || !strings.Contains(regs[0], "StudyParallel/workers=1") {
		t.Errorf("over-budget run not flagged: %v", regs)
	}
	// Benchmarks outside the gate pattern are never flagged on ns/op.
	regs, err = CompareNs(base, []Bench{{Name: "FramePath", NsPerOp: 1e6}}, gate, 50)
	if err != nil || len(regs) != 0 {
		t.Errorf("ungated bench flagged: %v %v", regs, err)
	}
}

func TestCheckWorkersMonotonic(t *testing.T) {
	// Non-increasing (within slack): passes.
	rows := []Bench{
		{Name: "StudyParallel/workers=1", AllocsPerOp: 952000},
		{Name: "StudyParallel/workers=2", AllocsPerOp: 946900},
		{Name: "StudyParallel/workers=4", AllocsPerOp: 948400},
		{Name: "StudyParallel/workers=6", AllocsPerOp: 949300},
	}
	viol, err := CheckWorkersMonotonic("StudyParallel", rows, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(viol) != 0 {
		t.Errorf("noise-level wobble flagged: %v", viol)
	}
	// A worker-scaled leak (environments rebuilt per worker): flagged.
	leak := append([]Bench(nil), rows...)
	leak[3].AllocsPerOp = 958000
	viol, err = CheckWorkersMonotonic("StudyParallel", leak, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(viol) != 1 || !strings.Contains(viol[0], "workers=6") {
		t.Errorf("leak not flagged: %v", viol)
	}
	// A single row cannot prove monotonicity: error, not a vacuous pass.
	if _, err := CheckWorkersMonotonic("StudyParallel", rows[:1], 0.5); err == nil {
		t.Error("single-row family passed the monotonic gate")
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_study.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-out", out}, strings.NewReader(sampleOutput), &stdout, &stderr); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, stderr.String())
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(blob, &f); err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 4 {
		t.Fatalf("emitted %d benchmarks, want 4", len(f.Benchmarks))
	}

	// Gate against itself: identical numbers pass...
	stderr.Reset()
	if code := run([]string{"-baseline", out}, strings.NewReader(sampleOutput), &stdout, &stderr); code != 0 {
		t.Fatalf("self-comparison failed (%d): %s", code, stderr.String())
	}
	// ...and a >20% alloc inflation fails.
	inflated := strings.Replace(sampleOutput, " 5000000 allocs/op", " 9000000 allocs/op", 1)
	stderr.Reset()
	if code := run([]string{"-baseline", out}, strings.NewReader(inflated), &stdout, &stderr); code != 1 {
		t.Fatalf("inflated run passed the gate (%d): %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "ALLOC REGRESSION") {
		t.Errorf("regression message missing: %s", stderr.String())
	}

	// Empty input is an error, not an empty file.
	if code := run([]string{}, strings.NewReader("no benches here\n"), &stdout, &stderr); code != 1 {
		t.Errorf("empty input returned %d, want 1", code)
	}
}
