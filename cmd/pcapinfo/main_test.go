package main

import (
	"bytes"
	"net/netip"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"v6lab/internal/dnsmsg"
	"v6lab/internal/packet"
	"v6lab/internal/pcapio"
)

var (
	macA = packet.MAC{0x02, 0x11, 0x22, 0x33, 0x44, 0x55}
	macB = packet.MAC{0x02, 0xaa, 0xbb, 0xcc, 0xdd, 0xee}
	ip4A = netip.MustParseAddr("192.168.1.10")
	ip4B = netip.MustParseAddr("192.168.1.1")
	ip6A = netip.MustParseAddr("2001:db8::10")
	ip6B = netip.MustParseAddr("2001:db8::1")
)

// writeTestCapture builds a five-frame pcap: one ARP request, one ICMPv6
// neighbor solicitation, two DNS queries (same name twice), and one IPv6
// TCP segment.
func writeTestCapture(t *testing.T, path string) {
	t.Helper()
	serialize := func(layers ...packet.SerializableLayer) []byte {
		raw, err := packet.Serialize(layers...)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	arp := serialize(
		&packet.Ethernet{Dst: packet.BroadcastMAC, Src: macA, Type: packet.EtherTypeARP},
		&packet.ARP{Op: packet.ARPRequest, SenderMAC: macA, SenderIP: ip4A, TargetIP: ip4B},
	)
	ns := serialize(
		&packet.Ethernet{Dst: macB, Src: macA, Type: packet.EtherTypeIPv6},
		&packet.IPv6{NextHeader: packet.IPProtocolICMPv6, HopLimit: 255, Src: ip6A, Dst: ip6B},
		&packet.ICMPv6{Type: 135, Body: make([]byte, 20), Src: ip6A, Dst: ip6B},
	)
	query, err := dnsmsg.NewQuery(7, "cloud.example.com", dnsmsg.TypeAAAA).Pack()
	if err != nil {
		t.Fatal(err)
	}
	dns := serialize(
		&packet.Ethernet{Dst: macB, Src: macA, Type: packet.EtherTypeIPv4},
		&packet.IPv4{Protocol: packet.IPProtocolUDP, TTL: 64, Src: ip4A, Dst: ip4B},
		&packet.UDP{SrcPort: 5000, DstPort: 53, Src: ip4A, Dst: ip4B},
		packet.Raw(query),
	)
	tcp := serialize(
		&packet.Ethernet{Dst: macB, Src: macA, Type: packet.EtherTypeIPv6},
		&packet.IPv6{NextHeader: packet.IPProtocolTCP, HopLimit: 64, Src: ip6A, Dst: ip6B},
		&packet.TCP{SrcPort: 40000, DstPort: 443, Flags: packet.TCPFlagSYN, Src: ip6A, Dst: ip6B},
	)

	start := time.Date(2024, 4, 5, 9, 0, 0, 0, time.UTC)
	var recs []pcapio.Record
	for i, data := range [][]byte{arp, ns, dns, dns, tcp} {
		recs = append(recs, pcapio.Record{Time: start.Add(time.Duration(i) * time.Millisecond), Data: data})
	}
	if err := pcapio.WriteFile(path, recs); err != nil {
		t.Fatal(err)
	}
}

func TestRunSummary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tiny.pcap")
	writeTestCapture(t, path)

	var stdout, stderr bytes.Buffer
	if code := run([]string{path}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, line := range []string{
		": 5 frames, ",
		"arp                 1",
		"dns                 2",
		"icmpv6/135          1",
		"tcp                 1",
		"distinct talkers: 1, distinct query names: 1",
	} {
		if !strings.Contains(out, line) {
			t.Errorf("summary missing %q:\n%s", line, out)
		}
	}
	if stderr.Len() != 0 {
		t.Errorf("unexpected stderr: %s", stderr.String())
	}
}

func TestRunVerbose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tiny.pcap")
	writeTestCapture(t, path)

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-v", path}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	lines := strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n")
	var frameLines int
	for _, l := range lines {
		if strings.Contains(l, " -> ") && strings.Contains(l, "len=") {
			frameLines++
		}
	}
	if frameLines != 5 {
		t.Errorf("verbose mode printed %d frame lines, want 5:\n%s", frameLines, stdout.String())
	}
	if !strings.Contains(stdout.String(), "2001:db8::10 -> 2001:db8::1") {
		t.Errorf("verbose lines missing IPv6 addresses:\n%s", stdout.String())
	}
}

func TestRunErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "usage:") {
		t.Errorf("no usage message: %s", stderr.String())
	}

	stderr.Reset()
	if code := run([]string{"-nope"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}

	stderr.Reset()
	if code := run([]string{filepath.Join(t.TempDir(), "missing.pcap")}, &stdout, &stderr); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "error:") {
		t.Errorf("missing error message: %s", stderr.String())
	}
}
