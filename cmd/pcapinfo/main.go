// Command pcapinfo summarizes a pcap file produced by the testbed (or by
// tcpdump): per-protocol frame counts, top talkers, and DNS query names.
//
// Usage:
//
//	pcapinfo [-v] file.pcap
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"v6lab/internal/dnsmsg"
	"v6lab/internal/packet"
	"v6lab/internal/pcapio"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pcapinfo", flag.ContinueOnError)
	fs.SetOutput(stderr)
	verbose := fs.Bool("v", false, "print one line per frame")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: pcapinfo [-v] file.pcap")
		return 2
	}
	recs, err := pcapio.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "error:", err)
		return 1
	}

	proto := map[string]int{}
	talkers := map[string]int{}
	queries := map[string]int{}
	bytes := 0
	for _, rec := range recs {
		bytes += len(rec.Data)
		p := packet.Parse(rec.Data)
		if p.Ethernet == nil {
			proto["malformed"]++
			continue
		}
		talkers[p.Ethernet.Src.String()]++
		switch {
		case p.ARP != nil:
			proto["arp"]++
		case p.ICMPv6 != nil:
			proto[fmt.Sprintf("icmpv6/%d", p.ICMPv6.Type)]++
		case p.ICMPv4 != nil:
			proto["icmpv4"]++
		case p.UDP != nil && (p.UDP.DstPort == 53 || p.UDP.SrcPort == 53):
			proto["dns"]++
			if m, err := dnsmsg.Unpack(p.UDP.PayloadData); err == nil && !m.Response && len(m.Questions) > 0 {
				queries[m.Questions[0].Name]++
			}
		case p.UDP != nil:
			proto["udp"]++
		case p.TCP != nil:
			proto["tcp"]++
		default:
			proto["other"]++
		}
		if *verbose {
			fmt.Fprintf(stdout, "%s %s -> %s", rec.Time.Format("15:04:05.000000"), p.Ethernet.Src, p.Ethernet.Dst)
			if ip := p.SrcIP(); ip.IsValid() {
				fmt.Fprintf(stdout, "  %s -> %s", ip, p.DstIP())
			}
			fmt.Fprintf(stdout, "  len=%d\n", len(rec.Data))
		}
	}

	fmt.Fprintf(stdout, "%s: %d frames, %d bytes\n", fs.Arg(0), len(recs), bytes)
	for _, k := range sortedKeys(proto) {
		fmt.Fprintf(stdout, "  %-14s %6d\n", k, proto[k])
	}
	fmt.Fprintf(stdout, "distinct talkers: %d, distinct query names: %d\n", len(talkers), len(queries))
	return 0
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
