package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCmd invokes run with captured output streams.
func runCmd(args ...string) (code int, stdout, stderr string) {
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestBadFlagExitsUsage(t *testing.T) {
	code, _, stderr := runCmd("-no-such-flag")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr, "flag provided but not defined") {
		t.Errorf("stderr missing flag error: %q", stderr)
	}
}

func TestPositionalArgRejected(t *testing.T) {
	code, _, stderr := runCmd("table3")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr, "unknown argument") {
		t.Errorf("stderr missing diagnosis: %q", stderr)
	}
}

func TestUnknownArtifactListsKnownOnes(t *testing.T) {
	code, _, stderr := runCmd("-artifact", "table99")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	for _, want := range []string{"unknown artifact", "table3", "resilience"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("stderr missing %q: %q", want, stderr)
		}
	}
}

func TestUnknownFaultProfileRejected(t *testing.T) {
	code, _, stderr := runCmd("-fault", "solar-flare")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr, "solar-flare") {
		t.Errorf("stderr missing profile name: %q", stderr)
	}
}

func TestUnknownDeviceRejected(t *testing.T) {
	code, _, stderr := runCmd("-devices", "Quantum Toaster")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr, "Quantum Toaster") {
		t.Errorf("stderr missing device name: %q", stderr)
	}
}

func TestNegativeFleetRejected(t *testing.T) {
	if code, _, _ := runCmd("-fleet", "-3"); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

func TestWorkersAppliesToEveryEngine(t *testing.T) {
	code, stdout, _ := runCmd("-workers", "4", "-artifact", "table3")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	_, serial, _ := runCmd("-artifact", "table3")
	if stdout != serial {
		t.Fatalf("-workers 4 changed the table3 artifact")
	}
}

func TestConflictingWorkersAliasRejected(t *testing.T) {
	code, _, stderr := runCmd("-workers", "4", "-parallel", "2")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr, "deprecated alias") {
		t.Fatalf("stderr = %q, want deprecated-alias message", stderr)
	}
}

func TestListIncludesEveryArtifact(t *testing.T) {
	code, stdout, _ := runCmd("-list")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, want := range []string{"table3", "fleet", "firewall", "resilience", "adversary"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("-list missing %q:\n%s", want, stdout)
		}
	}
}

func TestNegativeAdversaryRejected(t *testing.T) {
	if code, _, _ := runCmd("-adversary", "-5"); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

func TestCampaignSeedWithoutAdversaryRejected(t *testing.T) {
	code, _, stderr := runCmd("-campaign-seed", "7")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr, "-campaign-seed only applies") {
		t.Errorf("stderr missing diagnosis: %q", stderr)
	}
}

// TestAdversaryFlag runs the attack end to end on a small population:
// the command exits 0 and prints only the adversary report.
func TestAdversaryFlag(t *testing.T) {
	code, stdout, stderr := runCmd("-adversary", "6", "-campaign-seed", "3", "-workers", "4")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr: %s)", code, stderr)
	}
	for _, want := range []string{"Adversary — 6 homes", "campaign seed 3", "Address discovery", "Worm propagation"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("adversary report missing %q:\n%s", want, stdout)
		}
	}
	if strings.Contains(stdout, "Table 3") {
		t.Errorf("-adversary alone must not render the connectivity artifacts")
	}
}

// TestResilienceFlag runs the impairment grid end to end on a small
// population and checks the artifact shape: the command exits 0, prints
// only the resilience report, and the clamped tunnel shows up in it.
func TestResilienceFlag(t *testing.T) {
	code, stdout, stderr := runCmd("-resilience", "-devices", "TiVo Stream,Apple TV,Wyze Cam")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr: %s)", code, stderr)
	}
	for _, want := range []string{"Resilience", "clamped-tunnel", "lossy-wifi", "ipv6-only"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("resilience report missing %q:\n%s", want, stdout)
		}
	}
	if strings.Contains(stdout, "Table 3") {
		t.Errorf("-resilience alone must not render the connectivity artifacts")
	}
}

// TestResilienceArtifactSelection: -artifact resilience with -resilience
// renders the grid, and asking for it without running reports not-run.
func TestResilienceArtifactSelection(t *testing.T) {
	code, stdout, _ := runCmd("-resilience", "-artifact", "resilience", "-devices", "Wyze Cam")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	if !strings.Contains(stdout, "Functional devices per configuration") {
		t.Errorf("missing grid table:\n%s", stdout)
	}
}

// TestMetricsAndProgressOnFleetPath: the fleet-only early return still
// writes the -metrics snapshot, and -progress streams one line per home.
func TestMetricsAndProgressOnFleetPath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	code, _, stderr := runCmd("-fleet", "3", "-artifact", "fleet", "-metrics", path, "-progress")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr: %s)", code, stderr)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("metrics file not written on the fleet-only path: %v", err)
	}
	for _, want := range []string{`"sim_time"`, "fleet_homes_completed_total", "device_functional_tests_total"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("metrics snapshot missing %q", want)
		}
	}
	if got := strings.Count(stderr, "[fleet]"); got != 3 {
		t.Errorf("progress stream has %d fleet lines, want 3\n%s", got, stderr)
	}
	if !strings.Contains(stderr, "metrics snapshot written to") {
		t.Errorf("stderr missing the metrics confirmation: %q", stderr)
	}
}

// TestMetricsCreatesParentDirs: -metrics pointing into a directory that
// does not exist yet creates it instead of failing the export.
func TestMetricsCreatesParentDirs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out", "run-1", "metrics.json")
	code, _, stderr := runCmd("-fleet", "2", "-artifact", "fleet", "-metrics", path)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr: %s)", code, stderr)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("metrics file not written under a fresh directory: %v", err)
	}
	if !strings.Contains(string(data), `"sim_time"`) {
		t.Errorf("metrics snapshot missing the sim_time header:\n%s", data)
	}
}

// TestMetricsPrometheusFormat: a .prom suffix selects the text format,
// on the resilience-only early return.
func TestMetricsPrometheusFormat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.prom")
	code, _, stderr := runCmd("-resilience", "-devices", "Wyze Cam", "-metrics", path)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr: %s)", code, stderr)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("metrics file not written on the resilience-only path: %v", err)
	}
	for _, want := range []string{"# TYPE v6lab_experiment_runs_total counter", "v6lab_device_failure_stages_total{stage="} {
		if !strings.Contains(string(data), want) {
			t.Errorf("Prometheus snapshot missing %q", want)
		}
	}
}

// TestInvalidChoiceFlagsListValidChoices: every enumerated flag rejects an
// unknown value with an error that lists the valid choices — -fault used
// to relay a bare library error while -firewall enumerated its options.
func TestInvalidChoiceFlagsListValidChoices(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want []string
	}{
		{
			name: "fault",
			args: []string{"-fault", "solar-flare"},
			want: []string{"solar-flare", "clean|lossy-wifi|clamped-tunnel|flaky-dnsmasq"},
		},
		{
			name: "firewall",
			args: []string{"-firewall", "moat"},
			want: []string{"moat", "open|stateful|pinhole|compare"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCmd(tc.args...)
			if code != 2 {
				t.Fatalf("exit code = %d, want 2", code)
			}
			for _, want := range tc.want {
				if !strings.Contains(stderr, want) {
					t.Errorf("stderr missing %q: %q", want, stderr)
				}
			}
		})
	}
}

func TestInvalidHorizonRejected(t *testing.T) {
	for _, bad := range []string{"nope", "0d", "-3d"} {
		code, _, stderr := runCmd("-horizon", bad)
		if code != 2 {
			t.Fatalf("-horizon %s: exit code = %d, want 2", bad, code)
		}
		if !strings.Contains(stderr, "horizon") {
			t.Errorf("-horizon %s: stderr missing diagnosis: %q", bad, stderr)
		}
	}
}

// TestHorizonFlag: -horizon runs the long-horizon timeline over the -fleet
// population and renders only the timeline artifact.
func TestHorizonFlag(t *testing.T) {
	code, stdout, stderr := runCmd("-horizon", "24h", "-fleet", "4", "-workers", "2")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr:\n%s", code, stderr)
	}
	for _, want := range []string{"Timeline — 4 homes over 1.0 simulated days", "Lease-renewal funnel"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout)
		}
	}
	if strings.Contains(stdout, "Fleet —") {
		t.Errorf("-horizon with -fleet ran a separate fleet study:\n%s", stdout)
	}
}
