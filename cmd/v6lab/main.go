// Command v6lab runs the full reproduction of "IoT Bricks Over v6"
// (IMC 2024) and prints the regenerated tables and figures.
//
// Usage:
//
//	v6lab [-artifact table3] [-pcap-dir captures/] [-firewall compare]
//	      [-fleet 100 -fleet-seed 1] [-resilience] [-fault lossy-wifi]
//	      [-adversary 200 -campaign-seed 3] [-horizon 7d]
//	      [-capture full|none] [-seed 1] [-workers 6]
//	      [-metrics metrics.json] [-progress]
//	      [-cpuprofile cpu.pprof] [-memprofile mem.pprof] [-list]
//
// -workers sizes every engine's worker pool (connectivity experiments,
// analysis extraction, fleet homes, adversary campaign, resilience
// profiles); output is byte-identical for any value. -parallel remains as
// a deprecated alias.
//
// Without -artifact, every artifact is printed in report order. The
// command takes no positional arguments; unknown flags or arguments exit
// non-zero with a usage message.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"v6lab"
	"v6lab/internal/adversary"
	"v6lab/internal/device"
	"v6lab/internal/faults"
	"v6lab/internal/fleet"
	"v6lab/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, runs the requested
// studies, and writes reports to stdout and progress/diagnostics to
// stderr, returning the process exit code (0 ok, 1 runtime failure,
// 2 usage error).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("v6lab", flag.ContinueOnError)
	fs.SetOutput(stderr)
	artifact := fs.String("artifact", "", "render a single artifact (e.g. table3, figure5); empty = all")
	pcapDir := fs.String("pcap-dir", "", "write one pcap file per connectivity experiment into this directory")
	csvDir := fs.String("csv-dir", "", "write plot-ready CSV series into this directory")
	list := fs.Bool("list", false, "list artifact names and exit")
	privacyExt := fs.Bool("privacy-ext", false, "ablation: force RFC 8981 privacy extensions on every device")
	forceDAD := fs.Bool("force-dad", false, "ablation: force RFC 4862 DAD compliance on every device")
	aaaaEverywhere := fs.Bool("aaaa-everywhere", false, "ablation: publish AAAA records for every destination")
	fwPolicy := fs.String("firewall", "", "re-run the §5.4.2 scan from a WAN vantage under an inbound-IPv6 policy: open|stateful|pinhole, or compare for all three")
	fleetN := fs.Int("fleet", 0, "simulate a population of N independent homes and render the fleet artifact")
	workers := fs.Int("workers", 0, "worker-pool size for every engine (connectivity, analysis, fleet, adversary, resilience); 0 = engine default; output is byte-identical for any value")
	fleetSeed := fs.Uint64("fleet-seed", 1, "fleet population seed; identical seeds reproduce the population exactly")
	adversaryN := fs.Int("adversary", 0, "attack a population of N homes: address discovery, campaign sweep, worm propagation; renders the adversary artifact")
	campaignSeed := fs.Uint64("campaign-seed", 1, "adversary campaign seed; identical seeds reproduce the attack exactly")
	resilience := fs.Bool("resilience", false, "re-run the connectivity grid under the impairment profiles and render the resilience artifact")
	horizonStr := fs.String("horizon", "", "run the long-horizon timeline over this much simulated time (e.g. 7d, 2w, 36h) and render the timeline artifact; -fleet N sizes the population (default 100)")
	faultName := fs.String("fault", "", "run the whole lab under one impairment profile: clean|lossy-wifi|clamped-tunnel|flaky-dnsmasq")
	capture := fs.String("capture", "", "frame-capture policy: full buffers every frame (default for the single-home study; required by -pcap-dir), none streams frames through the analysis observer without buffering (reports are byte-identical, memory stays flat)")
	seed := fs.Uint64("seed", 1, "impairment seed for -fault and -resilience; identical seeds reproduce runs byte-for-byte")
	devices := fs.String("devices", "", "comma-separated device names restricting the testbed (default: the full registry)")
	parallel := fs.Int("parallel", 0, "deprecated alias for -workers")
	metricsPath := fs.String("metrics", "", "write the deterministic telemetry snapshot to this file after the run (.prom/.txt = Prometheus text format, otherwise JSON)")
	progress := fs.Bool("progress", false, "stream one line per completed experiment, fleet home, firewall policy, and resilience profile to stderr")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile (after the run) to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "v6lab: unknown argument %q (the command takes no subcommands)\n", fs.Arg(0))
		fs.Usage()
		return 2
	}

	if *list {
		for _, a := range v6lab.Artifacts {
			fmt.Fprintln(stdout, a)
		}
		return 0
	}

	if *artifact != "" && !knownArtifact(*artifact) {
		fmt.Fprintf(stderr, "v6lab: unknown artifact %q; known artifacts:\n", *artifact)
		for _, a := range v6lab.Artifacts {
			fmt.Fprintf(stderr, "  %s\n", a)
		}
		return 2
	}

	var fwPolicies []string
	switch strings.ToLower(*fwPolicy) {
	case "":
		// No firewall comparison.
	case "compare", "all":
		// Empty list = all default policies.
	case "open", "stateful", "pinhole":
		fwPolicies = []string{*fwPolicy}
	default:
		fmt.Fprintf(stderr, "v6lab: unknown firewall policy %q (want open|stateful|pinhole|compare)\n", *fwPolicy)
		return 2
	}

	if *fleetN < 0 {
		fmt.Fprintf(stderr, "v6lab: -fleet wants a positive home count, got %d\n", *fleetN)
		return 2
	}
	if *fleetSeed != 1 && *fleetN == 0 && *adversaryN == 0 && *horizonStr == "" {
		fmt.Fprintln(stderr, "v6lab: -fleet-seed only applies together with -fleet N, -adversary N, or -horizon")
		return 2
	}
	var horizon v6lab.Horizon
	if *horizonStr != "" {
		h, err := v6lab.ParseHorizon(*horizonStr)
		if err != nil {
			fmt.Fprintf(stderr, "v6lab: -horizon: %s\n", strings.TrimPrefix(err.Error(), "v6lab: "))
			return 2
		}
		horizon = h
	}
	if *adversaryN < 0 {
		fmt.Fprintf(stderr, "v6lab: -adversary wants a positive home count, got %d\n", *adversaryN)
		return 2
	}
	if *campaignSeed != 1 && *adversaryN == 0 {
		fmt.Fprintln(stderr, "v6lab: -campaign-seed only applies together with -adversary N")
		return 2
	}

	var labOpts []v6lab.Option
	if *devices != "" {
		var names []string
		for _, n := range strings.Split(*devices, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			if device.Find(device.Registry(), n) == nil {
				fmt.Fprintf(stderr, "v6lab: unknown device %q (see the registry for names)\n", n)
				return 2
			}
			names = append(names, n)
		}
		labOpts = append(labOpts, v6lab.WithDevices(names...))
	}
	if *seed != 1 {
		labOpts = append(labOpts, v6lab.WithSeed(*seed))
	}
	if *faultName != "" {
		p, err := faults.ByName(*faultName)
		if err != nil {
			var names []string
			for _, fp := range faults.Grid() {
				names = append(names, fp.Name)
			}
			fmt.Fprintf(stderr, "v6lab: unknown fault profile %q (want %s)\n",
				*faultName, strings.Join(names, "|"))
			return 2
		}
		labOpts = append(labOpts, v6lab.WithFaultProfile(p))
	}
	switch strings.ToLower(*capture) {
	case "", "full":
		// Default: buffered captures (pcap artifacts stay available).
	case "none":
		if *pcapDir != "" {
			fmt.Fprintln(stderr, "v6lab: -capture none retains no frames; it cannot be combined with -pcap-dir")
			return 2
		}
		labOpts = append(labOpts, v6lab.WithCapture(v6lab.CaptureNone))
	default:
		fmt.Fprintf(stderr, "v6lab: unknown capture policy %q (want full|none)\n", *capture)
		return 2
	}
	if *workers < 0 || *parallel < 0 {
		fmt.Fprintf(stderr, "v6lab: -workers wants a non-negative worker count\n")
		return 2
	}
	if *workers != 0 && *parallel != 0 && *workers != *parallel {
		fmt.Fprintln(stderr, "v6lab: -parallel is a deprecated alias for -workers; do not set both to different values")
		return 2
	}
	// One worker knob for everything: WithWorkers sizes the connectivity
	// engine and flows into the fleet/adversary parts below.
	nWorkers := *workers
	if nWorkers == 0 {
		nWorkers = *parallel
	}
	if nWorkers > 0 {
		labOpts = append(labOpts, v6lab.WithWorkers(nWorkers))
	}
	if *metricsPath != "" {
		labOpts = append(labOpts, v6lab.WithTelemetry(telemetry.NewRegistry()))
	}
	if *progress {
		labOpts = append(labOpts, v6lab.WithProgress(telemetry.NewWriterSink(stderr)))
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Fprintf(stderr, "CPU profile written to %s\n", *cpuprofile)
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(stderr, "error:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "error:", err)
				return
			}
			fmt.Fprintf(stderr, "heap profile written to %s\n", *memprofile)
		}()
	}

	lab := v6lab.NewWithOptions(v6lab.Options{
		ForcePrivacyExtensions: *privacyExt,
		ForceDAD:               *forceDAD,
		AAAAEverywhere:         *aaaaEverywhere,
	}, labOpts...)

	// writeMetrics exports the telemetry snapshot; it runs on every exit
	// path that follows a completed study, including the fleet-only and
	// resilience-only early returns.
	writeMetrics := func() int {
		if *metricsPath == "" {
			return 0
		}
		snap, ok := lab.TelemetrySnapshot()
		if !ok {
			return 0
		}
		var data []byte
		var err error
		if strings.HasSuffix(*metricsPath, ".prom") || strings.HasSuffix(*metricsPath, ".txt") {
			data = snap.Prometheus()
		} else {
			data, err = snap.JSON()
		}
		// The snapshot path may point into a directory that does not exist
		// yet (e.g. out/run-3/metrics.json on a fresh checkout).
		if err == nil {
			if dir := filepath.Dir(*metricsPath); dir != "." {
				err = os.MkdirAll(dir, 0o755)
			}
		}
		if err == nil {
			err = os.WriteFile(*metricsPath, data, 0o644)
		}
		if err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		fmt.Fprintf(stderr, "metrics snapshot written to %s\n", *metricsPath)
		return 0
	}

	if *horizonStr != "" {
		homes := *fleetN
		if homes == 0 {
			homes = 100
		}
		fmt.Fprintf(stderr, "simulating %d homes over a %s horizon (seed %d, workers %d)...\n",
			homes, horizon, *fleetSeed, nWorkers)
		part := v6lab.Timeline(horizon,
			v6lab.FleetConfig(fleet.Config{Homes: homes, Seed: *fleetSeed}))
		if err := lab.Run(part); err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		// Like the fleet artifact, the timeline needs no single-home study:
		// with nothing else requested, render it and exit.
		if (*artifact == "" || *artifact == string(v6lab.TimelineStudy)) &&
			*pcapDir == "" && *csvDir == "" && *fwPolicy == "" && !*resilience && *adversaryN == 0 {
			if code := writeMetrics(); code != 0 {
				return code
			}
			return render(lab, v6lab.TimelineStudy, stdout, stderr)
		}
	}

	if *fleetN > 0 && *horizonStr == "" {
		fmt.Fprintf(stderr, "simulating a fleet of %d homes (seed %d, workers %d)...\n",
			*fleetN, *fleetSeed, nWorkers)
		if err := lab.Run(v6lab.Fleet(*fleetN, v6lab.Seed(*fleetSeed))); err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		// The fleet artifact needs no single-home study: render and exit.
		if *artifact == string(v6lab.FleetStudy) && *pcapDir == "" && *csvDir == "" && *fwPolicy == "" && !*resilience && *adversaryN == 0 {
			if code := writeMetrics(); code != 0 {
				return code
			}
			return render(lab, v6lab.FleetStudy, stdout, stderr)
		}
	}

	if *adversaryN > 0 {
		fmt.Fprintf(stderr, "attacking a fleet of %d homes (fleet seed %d, campaign seed %d, workers %d)...\n",
			*adversaryN, *fleetSeed, *campaignSeed, nWorkers)
		err := lab.Run(v6lab.Adversary(*adversaryN,
			v6lab.Seed(*fleetSeed),
			v6lab.AdversaryConfig(adversary.Config{CampaignSeed: *campaignSeed})))
		if err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		// Like the fleet artifact, the attack needs no single-home study:
		// with nothing else requested, render it and exit.
		if (*artifact == "" || *artifact == string(v6lab.AdversaryStudy)) &&
			*pcapDir == "" && *csvDir == "" && *fwPolicy == "" && *fleetN == 0 && !*resilience && *horizonStr == "" {
			if code := writeMetrics(); code != 0 {
				return code
			}
			return render(lab, v6lab.AdversaryStudy, stdout, stderr)
		}
	}

	if *resilience {
		fmt.Fprintln(stderr, "running the resilience impairment grid (profiles x connectivity configurations)...")
		if err := lab.Run(v6lab.Resilience()); err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		// Like the fleet artifact, the grid needs no single-home study:
		// with nothing else requested, render it and exit.
		if (*artifact == "" || *artifact == string(v6lab.ResilienceStudy)) &&
			*pcapDir == "" && *csvDir == "" && *fwPolicy == "" && *fleetN == 0 && *adversaryN == 0 && *horizonStr == "" {
			if code := writeMetrics(); code != 0 {
				return code
			}
			return render(lab, v6lab.ResilienceStudy, stdout, stderr)
		}
	}

	fmt.Fprintln(stderr, "running the six connectivity experiments, active DNS queries, and port scans...")
	if err := lab.Run(); err != nil {
		fmt.Fprintln(stderr, "error:", err)
		return 1
	}
	for _, res := range lab.Study.Results {
		fmt.Fprintf(stderr, "  %-22s %6d frames captured\n", res.Config.ID, res.Frames())
	}
	if *fwPolicy != "" {
		fmt.Fprintln(stderr, "running the WAN-vantage firewall policy comparison...")
		if err := lab.Run(v6lab.FirewallComparison(fwPolicies...)); err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
	}

	if *pcapDir != "" {
		if err := lab.SavePcaps(*pcapDir); err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		fmt.Fprintf(stderr, "pcaps written to %s\n", *pcapDir)
	}
	if *csvDir != "" {
		if err := lab.ExportCSV(*csvDir); err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		fmt.Fprintf(stderr, "CSV series written to %s\n", *csvDir)
	}

	if code := writeMetrics(); code != 0 {
		return code
	}
	if *artifact != "" {
		return render(lab, v6lab.Artifact(*artifact), stdout, stderr)
	}
	fmt.Fprint(stdout, lab.FullReport())
	return 0
}

// render writes one artifact through the error-aware report API; an
// unknown artifact (possible only when the up-front check is bypassed)
// exits non-zero instead of printing a placeholder.
func render(lab *v6lab.Lab, a v6lab.Artifact, stdout, stderr io.Writer) int {
	out, err := lab.ReportErr(a)
	if err != nil {
		code := 1
		if errors.Is(err, v6lab.ErrUnknownArtifact) {
			code = 2
		}
		fmt.Fprintf(stderr, "v6lab: %v\n", err)
		return code
	}
	fmt.Fprint(stdout, out)
	return 0
}

func knownArtifact(name string) bool {
	for _, a := range v6lab.Artifacts {
		if string(a) == name {
			return true
		}
	}
	return false
}
