// Command v6lab runs the full reproduction of "IoT Bricks Over v6"
// (IMC 2024) and prints the regenerated tables and figures.
//
// Usage:
//
//	v6lab [-artifact table3] [-pcap-dir captures/] [-firewall compare]
//	      [-fleet 100 -workers 8 -fleet-seed 1] [-list]
//
// Without -artifact, every artifact is printed in report order. The
// command takes no positional arguments; unknown flags or arguments exit
// non-zero with a usage message.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"v6lab"
	"v6lab/internal/fleet"
)

func main() {
	os.Exit(run())
}

func run() int {
	artifact := flag.String("artifact", "", "render a single artifact (e.g. table3, figure5); empty = all")
	pcapDir := flag.String("pcap-dir", "", "write one pcap file per connectivity experiment into this directory")
	csvDir := flag.String("csv-dir", "", "write plot-ready CSV series into this directory")
	list := flag.Bool("list", false, "list artifact names and exit")
	privacyExt := flag.Bool("privacy-ext", false, "ablation: force RFC 8981 privacy extensions on every device")
	forceDAD := flag.Bool("force-dad", false, "ablation: force RFC 4862 DAD compliance on every device")
	aaaaEverywhere := flag.Bool("aaaa-everywhere", false, "ablation: publish AAAA records for every destination")
	fwPolicy := flag.String("firewall", "", "re-run the §5.4.2 scan from a WAN vantage under an inbound-IPv6 policy: open|stateful|pinhole, or compare for all three")
	fleetN := flag.Int("fleet", 0, "simulate a population of N independent homes and render the fleet artifact")
	workers := flag.Int("workers", 0, "fleet worker-pool size; 0 = GOMAXPROCS (aggregates are identical for any value)")
	fleetSeed := flag.Uint64("fleet-seed", 1, "fleet population seed; identical seeds reproduce the population exactly")
	flag.Parse()

	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "v6lab: unknown argument %q (the command takes no subcommands)\n", flag.Arg(0))
		flag.Usage()
		return 2
	}

	if *list {
		for _, a := range v6lab.Artifacts {
			fmt.Println(a)
		}
		return 0
	}

	if *artifact != "" && !knownArtifact(*artifact) {
		fmt.Fprintf(os.Stderr, "v6lab: unknown artifact %q; known artifacts:\n", *artifact)
		for _, a := range v6lab.Artifacts {
			fmt.Fprintf(os.Stderr, "  %s\n", a)
		}
		return 2
	}

	var fwPolicies []string
	switch strings.ToLower(*fwPolicy) {
	case "":
		// No firewall comparison.
	case "compare", "all":
		// Empty list = all default policies.
	case "open", "stateful", "pinhole":
		fwPolicies = []string{*fwPolicy}
	default:
		fmt.Fprintf(os.Stderr, "v6lab: unknown firewall policy %q (want open|stateful|pinhole|compare)\n", *fwPolicy)
		return 2
	}

	if *fleetN < 0 {
		fmt.Fprintf(os.Stderr, "v6lab: -fleet wants a positive home count, got %d\n", *fleetN)
		return 2
	}
	if (*workers != 0 || *fleetSeed != 1) && *fleetN == 0 {
		fmt.Fprintln(os.Stderr, "v6lab: -workers and -fleet-seed only apply together with -fleet N")
		return 2
	}

	lab := v6lab.NewWithOptions(v6lab.Options{
		ForcePrivacyExtensions: *privacyExt,
		ForceDAD:               *forceDAD,
		AAAAEverywhere:         *aaaaEverywhere,
	})

	if *fleetN > 0 {
		fmt.Fprintf(os.Stderr, "simulating a fleet of %d homes (seed %d, workers %d)...\n",
			*fleetN, *fleetSeed, *workers)
		if err := lab.RunFleetWith(fleet.Config{Homes: *fleetN, Workers: *workers, Seed: *fleetSeed}); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
		// The fleet artifact needs no single-home study: render and exit.
		if *artifact == string(v6lab.FleetStudy) && *pcapDir == "" && *csvDir == "" && *fwPolicy == "" {
			fmt.Print(lab.Report(v6lab.FleetStudy))
			return 0
		}
	}

	fmt.Fprintln(os.Stderr, "running the six connectivity experiments, active DNS queries, and port scans...")
	if err := lab.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return 1
	}
	for _, res := range lab.Study.Results {
		fmt.Fprintf(os.Stderr, "  %-22s %6d frames captured\n", res.Config.ID, res.Capture.Len())
	}
	if *fwPolicy != "" {
		fmt.Fprintln(os.Stderr, "running the WAN-vantage firewall policy comparison...")
		if err := lab.RunFirewallComparison(fwPolicies...); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
	}

	if *pcapDir != "" {
		if err := lab.SavePcaps(*pcapDir); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "pcaps written to %s\n", *pcapDir)
	}
	if *csvDir != "" {
		if err := lab.ExportCSV(*csvDir); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "CSV series written to %s\n", *csvDir)
	}

	if *artifact != "" {
		fmt.Print(lab.Report(v6lab.Artifact(*artifact)))
		return 0
	}
	fmt.Print(lab.FullReport())
	return 0
}

func knownArtifact(name string) bool {
	for _, a := range v6lab.Artifacts {
		if string(a) == name {
			return true
		}
	}
	return false
}
