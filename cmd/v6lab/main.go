// Command v6lab runs the full reproduction of "IoT Bricks Over v6"
// (IMC 2024) and prints the regenerated tables and figures.
//
// Usage:
//
//	v6lab [-artifact table3] [-pcap-dir captures/] [-list]
//
// Without -artifact, every artifact is printed in report order.
package main

import (
	"flag"
	"fmt"
	"os"

	"v6lab"
)

func main() {
	artifact := flag.String("artifact", "", "render a single artifact (e.g. table3, figure5); empty = all")
	pcapDir := flag.String("pcap-dir", "", "write one pcap file per connectivity experiment into this directory")
	csvDir := flag.String("csv-dir", "", "write plot-ready CSV series into this directory")
	list := flag.Bool("list", false, "list artifact names and exit")
	privacyExt := flag.Bool("privacy-ext", false, "ablation: force RFC 8981 privacy extensions on every device")
	forceDAD := flag.Bool("force-dad", false, "ablation: force RFC 4862 DAD compliance on every device")
	aaaaEverywhere := flag.Bool("aaaa-everywhere", false, "ablation: publish AAAA records for every destination")
	flag.Parse()

	if *list {
		for _, a := range v6lab.Artifacts {
			fmt.Println(a)
		}
		return
	}

	lab := v6lab.NewWithOptions(v6lab.Options{
		ForcePrivacyExtensions: *privacyExt,
		ForceDAD:               *forceDAD,
		AAAAEverywhere:         *aaaaEverywhere,
	})
	fmt.Fprintln(os.Stderr, "running the six connectivity experiments, active DNS queries, and port scans...")
	if err := lab.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	for _, res := range lab.Study.Results {
		fmt.Fprintf(os.Stderr, "  %-22s %6d frames captured\n", res.Config.ID, res.Capture.Len())
	}

	if *pcapDir != "" {
		if err := lab.SavePcaps(*pcapDir); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pcaps written to %s\n", *pcapDir)
	}
	if *csvDir != "" {
		if err := lab.ExportCSV(*csvDir); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "CSV series written to %s\n", *csvDir)
	}

	if *artifact != "" {
		fmt.Print(lab.Report(v6lab.Artifact(*artifact)))
		return
	}
	fmt.Print(lab.FullReport())
}
