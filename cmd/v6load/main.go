// Command v6load is the load-generator client for v6labd: it fires N
// concurrent tenants at the server, each submitting a stream of study
// jobs with a configurable duplicate-request ratio, then reports
// throughput, latency, and cache behavior. With -verify it also fetches
// the fullreport artifact of every job sharing a cache key and asserts
// the bytes are identical — the live check that determinism makes the
// cache sound.
//
// Usage:
//
//	v6load -addr localhost:8080 [-tenants 4] [-requests 8] [-dup 50]
//	       [-kind study] [-devices "Wyze Cam,Apple TV"] [-fault lossy-wifi]
//	       [-fleet-homes 0] [-campaign-seed 0] [-load-seed 1] [-verify]
//	       [-expect-cache-hits -1]
//
// The duplicate ratio is a percentage: -dup 50 makes roughly half the
// requests reuse one shared spec (eligible for the result cache), the
// rest get unique seeds (forced cache misses). Request streams are
// derived from -load-seed, so a run is reproducible.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jobOutcome records one request's journey for the final report.
type jobOutcome struct {
	Tenant    int
	JobID     string
	Key       string
	State     string
	Cached    bool
	Coalesced bool
	Latency   time.Duration
	Err       error
}

// submitResponse mirrors the server's POST /v1/jobs wire format.
type submitResponse struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Cached    bool   `json:"cached"`
	Coalesced bool   `json:"coalesced"`
	Key       struct {
		Seed uint64 `json:"seed"`
		Hash string `json:"options_hash"`
	} `json:"key"`
}

// jobStatus mirrors GET /v1/jobs/{id}.
type jobStatus struct {
	State string `json:"state"`
	Error string `json:"error"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("v6load", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "", "server address (host:port or URL); required")
	tenants := fs.Int("tenants", 1, "concurrent tenants")
	requests := fs.Int("requests", 1, "requests per tenant")
	dup := fs.Int("dup", 0, "percentage of requests reusing the shared base spec (0-100)")
	kind := fs.String("kind", "study", "job kind: study|firewall-comparison|fleet|resilience|adversary")
	devices := fs.String("devices", "", "comma-separated device names for the spec (empty = full registry)")
	fault := fs.String("fault", "", "impairment profile for the spec")
	fleetHomes := fs.Int("fleet-homes", 0, "population size for fleet and adversary jobs")
	campaignSeed := fs.Uint64("campaign-seed", 0, "campaign seed for adversary jobs (0 = omit; the server defaults it to 1)")
	loadSeed := fs.Uint64("load-seed", 1, "derives the per-tenant request streams; identical seeds reproduce the run")
	pollEvery := fs.Duration("poll", 5*time.Millisecond, "status poll interval")
	timeout := fs.Duration("timeout", 2*time.Minute, "per-job completion deadline")
	verify := fs.Bool("verify", false, "fetch the fullreport of every job sharing a cache key and assert byte identity")
	expectHits := fs.Int("expect-cache-hits", -1, "fail unless at least this many submissions were served from cache (-1 disables)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "v6load: unknown argument %q\n", fs.Arg(0))
		fs.Usage()
		return 2
	}
	if *addr == "" {
		fmt.Fprintln(stderr, "v6load: -addr is required")
		return 2
	}
	if *tenants < 1 || *requests < 1 || *dup < 0 || *dup > 100 {
		fmt.Fprintln(stderr, "v6load: -tenants and -requests want >= 1, -dup wants 0-100")
		return 2
	}
	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimSuffix(base, "/")

	specFor := func(seed uint64) string {
		spec := map[string]any{"kind": *kind, "seed": seed}
		if *devices != "" {
			var names []string
			for _, n := range strings.Split(*devices, ",") {
				if n = strings.TrimSpace(n); n != "" {
					names = append(names, n)
				}
			}
			spec["devices"] = names
		}
		if *fault != "" {
			spec["fault"] = *fault
		}
		if *fleetHomes > 0 {
			spec["fleet_homes"] = *fleetHomes
		}
		if *campaignSeed > 0 {
			spec["campaign_seed"] = *campaignSeed
		}
		blob, err := json.Marshal(spec)
		if err != nil {
			panic(err)
		}
		return string(blob)
	}

	// The shared base spec uses the load seed itself; unique specs draw
	// from a disjoint seed range.
	baseSpec := specFor(*loadSeed)
	var uniqueSeed atomic.Uint64
	uniqueSeed.Store(*loadSeed + 1_000_000)

	outcomes := make([]jobOutcome, *tenants**requests)
	start := time.Now()
	var wg sync.WaitGroup
	for t := 0; t < *tenants; t++ {
		wg.Add(1)
		go func(tenant int) {
			defer wg.Done()
			rng := splitmix{state: *loadSeed*1_000_003 + uint64(tenant)}
			for i := 0; i < *requests; i++ {
				spec := baseSpec
				if int(rng.next()%100) >= *dup {
					spec = specFor(uniqueSeed.Add(1))
				}
				outcomes[tenant**requests+i] = oneJob(base, tenant, spec, *pollEvery, *timeout)
			}
		}(t)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Aggregate.
	var done, failed, hits, coalesced int
	var totalLatency, maxLatency time.Duration
	byKey := map[string][]jobOutcome{}
	for _, oc := range outcomes {
		if oc.Err != nil || oc.State != "done" {
			failed++
			fmt.Fprintf(stderr, "v6load: tenant %d job %s: state %q err %v\n", oc.Tenant, oc.JobID, oc.State, oc.Err)
			continue
		}
		done++
		if oc.Cached {
			hits++
		}
		if oc.Coalesced {
			coalesced++
		}
		totalLatency += oc.Latency
		if oc.Latency > maxLatency {
			maxLatency = oc.Latency
		}
		byKey[oc.Key] = append(byKey[oc.Key], oc)
	}

	fmt.Fprintf(stdout, "v6load: %d tenants x %d requests against %s in %v\n", *tenants, *requests, base, elapsed.Round(time.Millisecond))
	fmt.Fprintf(stdout, "  completed: %d  failed: %d  cache hits: %d  coalesced: %d\n", done, failed, hits, coalesced)
	if done > 0 {
		fmt.Fprintf(stdout, "  throughput: %.1f studies/sec  mean latency: %v  max: %v\n",
			float64(done)/elapsed.Seconds(), (totalLatency / time.Duration(done)).Round(time.Microsecond), maxLatency.Round(time.Microsecond))
	}

	code := 0
	if failed > 0 {
		code = 1
	}
	if *verify {
		mismatches, checked := verifyIdentity(base, byKey, stderr)
		fmt.Fprintf(stdout, "  verify: %d duplicate-key groups byte-compared, %d mismatches\n", checked, mismatches)
		if mismatches > 0 {
			code = 1
		}
	}
	if *expectHits >= 0 && hits < *expectHits {
		fmt.Fprintf(stderr, "v6load: expected at least %d cache hits, saw %d\n", *expectHits, hits)
		code = 1
	}
	return code
}

// verifyIdentity byte-compares the fullreport artifact of every group of
// distinct jobs sharing a cache key. Determinism promises identity; a
// mismatch means the cache served bytes a fresh run would not have
// produced.
func verifyIdentity(base string, byKey map[string][]jobOutcome, stderr io.Writer) (mismatches, checked int) {
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		group := byKey[key]
		ids := map[string]bool{}
		for _, oc := range group {
			ids[oc.JobID] = true
		}
		if len(ids) < 2 {
			continue
		}
		checked++
		var want []byte
		var wantID string
		ok := true
		for id := range ids {
			blob, err := fetchArtifact(base, id, "fullreport")
			if err != nil {
				fmt.Fprintf(stderr, "v6load: verify key %s: %v\n", key, err)
				ok = false
				break
			}
			if want == nil {
				want, wantID = blob, id
				continue
			}
			if !bytes.Equal(want, blob) {
				fmt.Fprintf(stderr, "v6load: verify key %s: fullreport of %s (%d bytes) differs from %s (%d bytes)\n",
					key, id, len(blob), wantID, len(want))
				ok = false
			}
		}
		if !ok {
			mismatches++
		}
	}
	return mismatches, checked
}

// oneJob submits a spec and follows it to a terminal state.
func oneJob(base string, tenant int, spec string, poll, timeout time.Duration) jobOutcome {
	oc := jobOutcome{Tenant: tenant}
	start := time.Now()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		oc.Err = err
		return oc
	}
	blob, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		oc.Err = err
		return oc
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		oc.Err = fmt.Errorf("POST /v1/jobs: %d: %s", resp.StatusCode, strings.TrimSpace(string(blob)))
		return oc
	}
	var sub submitResponse
	if err := json.Unmarshal(blob, &sub); err != nil {
		oc.Err = err
		return oc
	}
	oc.JobID = sub.ID
	oc.Cached = sub.Cached
	oc.Coalesced = sub.Coalesced
	oc.Key = fmt.Sprintf("%d/%s", sub.Key.Seed, sub.Key.Hash)
	oc.State = sub.State

	deadline := time.Now().Add(timeout)
	for oc.State != "done" && oc.State != "failed" && oc.State != "cancelled" {
		if time.Now().After(deadline) {
			oc.Err = fmt.Errorf("job %s did not finish within %v", sub.ID, timeout)
			return oc
		}
		time.Sleep(poll)
		st, err := fetchStatus(base, sub.ID)
		if err != nil {
			oc.Err = err
			return oc
		}
		oc.State = st.State
		if st.Error != "" {
			oc.Err = fmt.Errorf("job %s: %s", sub.ID, st.Error)
		}
	}
	oc.Latency = time.Since(start)
	return oc
}

func fetchStatus(base, id string) (jobStatus, error) {
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		return jobStatus{}, err
	}
	defer resp.Body.Close()
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return jobStatus{}, err
	}
	return st, nil
}

func fetchArtifact(base, id, name string) ([]byte, error) {
	resp, err := http.Get(base + "/v1/jobs/" + id + "/artifacts/" + name)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET artifact %s of %s: %d", name, id, resp.StatusCode)
	}
	return blob, nil
}

// splitmix is the same tiny deterministic generator the faults package
// uses: identical on every platform, no math/rand version skew.
type splitmix struct{ state uint64 }

func (r *splitmix) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
