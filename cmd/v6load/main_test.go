package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"v6lab/internal/server"
)

func runCmd(args ...string) (code int, stdout, stderr string) {
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-no-such-flag"},
		{"extra-arg"},
		{}, // missing -addr
		{"-addr", "x", "-dup", "150"},
		{"-addr", "x", "-tenants", "0"},
	}
	for _, args := range cases {
		if code, _, _ := runCmd(args...); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
}

func TestUnreachableServerFails(t *testing.T) {
	// A closed port: submissions error, the run reports failure.
	code, _, stderr := runCmd("-addr", "127.0.0.1:1", "-requests", "1")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr)
	}
}

// testServer boots the real study server for the client to hit.
func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	s := server.New(server.Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		s.Shutdown(ctx)
		ts.Close()
	})
	return ts
}

// TestDuplicateRatioHitsCacheAndVerifies: with -dup 100 every request
// reuses the base spec, so the second submission is a cache hit and the
// verify pass byte-compares the two fullreports.
func TestDuplicateRatioHitsCacheAndVerifies(t *testing.T) {
	ts := testServer(t)
	code, stdout, stderr := runCmd(
		"-addr", ts.URL,
		"-tenants", "1", "-requests", "2", "-dup", "100",
		"-devices", "Wyze Cam,Apple TV",
		"-verify", "-expect-cache-hits", "1",
	)
	if code != 0 {
		t.Fatalf("exit code = %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	for _, want := range []string{"completed: 2", "cache hits: 1", "1 duplicate-key groups byte-compared, 0 mismatches"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout)
		}
	}
}

// TestUniqueRequestsMissCache: with -dup 0 every spec is unique; the
// cache-hit expectation fails loudly.
func TestUniqueRequestsMissCache(t *testing.T) {
	ts := testServer(t)
	code, stdout, stderr := runCmd(
		"-addr", ts.URL,
		"-tenants", "1", "-requests", "2", "-dup", "0",
		"-devices", "Wyze Cam,Apple TV",
		"-expect-cache-hits", "1",
	)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (unique requests cannot hit the cache)\nstdout:\n%s", code, stdout)
	}
	if !strings.Contains(stderr, "expected at least 1 cache hits, saw 0") {
		t.Errorf("stderr missing the cache-hit diagnosis:\n%s", stderr)
	}
	if !strings.Contains(stdout, "completed: 2") {
		t.Errorf("stdout missing completion count:\n%s", stdout)
	}
}

// TestConcurrentTenantsAgainstOneServer: several tenants with a mixed
// duplicate ratio all complete; nothing fails or deadlocks.
func TestConcurrentTenantsAgainstOneServer(t *testing.T) {
	ts := testServer(t)
	code, stdout, stderr := runCmd(
		"-addr", ts.URL,
		"-tenants", "3", "-requests", "2", "-dup", "50",
		"-devices", "Wyze Cam,Apple TV",
		"-verify",
	)
	if code != 0 {
		t.Fatalf("exit code = %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "completed: 6  failed: 0") {
		t.Errorf("stdout missing full completion:\n%s", stdout)
	}
}
