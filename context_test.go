package v6lab

import (
	"context"
	"errors"
	"sync"
	"testing"

	"v6lab/internal/telemetry"
)

// TestRunContextCancelledBeforeStart: a context that is already cancelled
// stops RunContext before any part runs.
func TestRunContextCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	lab := New(WithDevices("Wyze Cam"))
	err := lab.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if lab.Data != nil {
		t.Error("cancelled run must not populate Data")
	}
}

// TestRunContextCancelMidFleet cancels from the progress sink after the
// first home completes: the run must return a clean context.Canceled and
// leave no partial Population on the lab.
func TestRunContextCancelMidFleet(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	sink := telemetry.FuncSink(func(telemetry.Event) { once.Do(cancel) })
	lab := New(WithProgress(sink))
	err := lab.RunContext(ctx, Fleet(12, Workers(1), Seed(3)))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if lab.FleetPop != nil {
		t.Error("cancelled fleet run must not leave a partial Population")
	}
}

// TestRunContextCancelBetweenParts: a part that cancels during its run
// stops the next part from starting.
func TestRunContextCancelBetweenParts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ranSecond := false
	first := RunPart(func(l *Lab) error { cancel(); return nil })
	second := RunPart(func(l *Lab) error { ranSecond = true; return nil })
	err := New(WithDevices("Wyze Cam")).RunContext(ctx, first, second)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ranSecond {
		t.Error("second part ran after cancellation")
	}
}

// TestRunContextCancelMidResilience cancels after the first profile's
// progress event; the grid must abort cleanly with Resil left nil.
func TestRunContextCancelMidResilience(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	sink := telemetry.FuncSink(func(ev telemetry.Event) {
		if ev.Scope == "resilience" {
			once.Do(cancel)
		}
	})
	lab := New(WithDevices("Wyze Cam"), WithProgress(sink))
	err := lab.RunContext(ctx, Resilience())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if lab.Resil != nil {
		t.Error("cancelled resilience run must not populate Resil")
	}
}
