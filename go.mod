module v6lab

go 1.22
