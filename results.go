package v6lab

import (
	"errors"
	"fmt"

	"v6lab/internal/adversary"
	"v6lab/internal/analysis"
	"v6lab/internal/experiment"
	"v6lab/internal/fleet"
	"v6lab/internal/report"
	"v6lab/internal/telemetry"
	"v6lab/internal/timeline"
)

// ErrNotRun is returned by Results on a lab that has not run any part
// yet.
var ErrNotRun = errors.New("v6lab: no part has run; call Run first")

// Results is the typed view of everything a lab has produced. It exposes
// the structured study, fleet, resilience, and firewall data directly so
// callers consume values rather than parse rendered report text;
// Report/ReportErr are thin renderers over the same view. Fields for
// parts that have not run are nil.
type Results struct {
	// Study is the configured single-home study (always present).
	Study *experiment.Study
	// Data is the analysis dataset, set once Connectivity has run.
	Data *analysis.Dataset
	// Firewall holds the policy comparison from FirewallComparison.
	Firewall *experiment.FirewallReport
	// Fleet holds the population results from Fleet/FleetWith.
	Fleet *fleet.Population
	// Resilience holds the impairment grid from Resilience.
	Resilience *experiment.ResilienceReport
	// Adversary holds the attacker's-view results from Adversary.
	Adversary *adversary.Report
	// Timeline holds the long-horizon results from Timeline.
	Timeline *timeline.Report
	// Telemetry is the deterministic metric snapshot, present when the
	// lab was built WithTelemetry.
	Telemetry *telemetry.Snapshot
}

// resultsView assembles the typed view without the telemetry snapshot
// (renderers never need it, and taking one walks the registry).
func (l *Lab) resultsView() Results {
	return Results{
		Study:      l.Study,
		Data:       l.Data,
		Firewall:   l.FirewallCmp,
		Fleet:      l.FleetPop,
		Resilience: l.Resil,
		Adversary:  l.Adv,
		Timeline:   l.TL,
	}
}

// Results returns the typed view of everything the lab has produced, or
// ErrNotRun when no part has run yet.
func (l *Lab) Results() (Results, error) {
	r := l.resultsView()
	if r.Data == nil && r.Firewall == nil && r.Fleet == nil && r.Resilience == nil && r.Adversary == nil && r.Timeline == nil {
		return Results{}, ErrNotRun
	}
	if snap, ok := l.TelemetrySnapshot(); ok {
		r.Telemetry = &snap
	}
	return r, nil
}

// TelemetrySnapshot captures the lab's metric registry at the current
// simulated time. The second return is false when the lab was built
// without WithTelemetry. The snapshot is deterministic: every metric
// update is an atomic addition timestamped off the simulated clock, so
// the same options and parts produce byte-identical JSON and Prometheus
// encodings at any worker count.
func (l *Lab) TelemetrySnapshot() (telemetry.Snapshot, bool) {
	if l.opts.telemetry == nil {
		return telemetry.Snapshot{}, false
	}
	return l.opts.telemetry.Snapshot(l.Study.Clock.Now()), true
}

// renderArtifact renders one artifact from the typed view. The caller
// has already vetted the name against Artifacts.
func renderArtifact(res Results, a Artifact) (string, error) {
	// The fleet, resilience, and adversary artifacts derive from their
	// own runs, not from the single-home dataset, so they render without
	// Run.
	switch a {
	case FleetStudy:
		if res.Fleet == nil {
			return "Fleet population study: not run (pass -fleet N or call Lab.RunFleet)\n", nil
		}
		return report.Fleet(res.Fleet), nil
	case ResilienceStudy:
		if res.Resilience == nil {
			return "Resilience impairment grid: not run (pass -resilience or call Lab.Run(v6lab.Resilience()))\n", nil
		}
		return report.Resilience(res.Resilience), nil
	case AdversaryStudy:
		if res.Adversary == nil {
			return "Adversary study: not run (pass -adversary N or call Lab.Run(v6lab.Adversary(n)))\n", nil
		}
		return report.Adversary(res.Adversary), nil
	case TimelineStudy:
		if res.Timeline == nil {
			return "Timeline study: not run (pass -horizon 7d or call Lab.Run(v6lab.Timeline(v6lab.Weeks(1))))\n", nil
		}
		return report.Timeline(res.Timeline), nil
	}
	if res.Data == nil {
		panic("v6lab: call Run before Report")
	}
	ds := res.Data
	switch a {
	case Table3:
		return report.Table3(ds.Table3()), nil
	case Figure2:
		return report.Figure2(ds.Table3()), nil
	case Table4:
		return report.Table4(ds.Table4()), nil
	case Table5:
		return report.Table5(ds.Table5()), nil
	case Table6:
		return report.Table6(ds.Table6()), nil
	case Table7:
		f, n, mf, mn := ds.Table7(3)
		return report.Table7(f, n, mf, mn), nil
	case Table8:
		out := report.Groups("Table 8 — feature support by manufacturer (>=3 devices)", ds.GroupBy("manufacturer", 3))
		return out + report.Groups("Table 8 (cont.) — by OS (>=2 devices)", ds.GroupBy("os", 2)), nil
	case Table9:
		return report.Table9(ds.Table9()), nil
	case Table10:
		return report.Table10(ds), nil
	case Table12:
		return report.Groups("Table 12 — feature support by purchase year", ds.GroupBy("year", 1)), nil
	case Table13:
		return report.Table13(ds.GroupBy("manufacturer", 3)), nil
	case Figure3:
		return report.Figure3(ds.Figure3()), nil
	case Figure4:
		return report.Figure4(ds.Figure4()), nil
	case Figure5:
		return report.Figure5(ds.EUI64Exposure()), nil
	case DADAudit:
		return report.DAD(ds.DADAudit()), nil
	case Ports:
		return report.PortScan(res.Study.Scan), nil
	case Tracking:
		return report.Tracking(ds.Tracking()), nil
	case Firewall:
		if res.Firewall == nil {
			return "Firewall policy comparison: not run (pass -firewall=compare or a policy name)\n", nil
		}
		return report.FirewallExposure(res.Firewall), nil
	case FuncMatrix:
		var names []string
		for _, p := range ds.Profiles {
			names = append(names, p.Name)
		}
		return report.FunctionalMatrix(ds.Exps, names), nil
	}
	return "", fmt.Errorf("%w %q", ErrUnknownArtifact, a)
}
