package v6lab

// Byte-identity of the shared environment: two labs with the same seed
// over one Env — the second drawing warm environments from the pool the
// first parked — must both reproduce the recorded cold-run hashes for the
// full report and all six pcaps. This is the pool's Reset contract under
// test: clock rewind, DHCPv4 XID seeding, stack and switch recycling, and
// query-counter swaps must leave no byte of residue from the prior study.

import "testing"

func TestWarmEnvPoolByteIdentity(t *testing.T) {
	env := NewEnv()

	cold := New(WithEnv(env), WithWorkers(6))
	if err := cold.Run(); err != nil {
		t.Fatal(err)
	}
	coldHashes := labHashes(t, cold)
	for key, want := range studyHashes {
		if coldHashes[key] != want {
			t.Errorf("cold %s = %s, recorded baseline %s", key, coldHashes[key], want)
		}
	}
	if env.IdleEnvs() == 0 {
		t.Fatal("pool holds no environments after the first parallel run")
	}

	warm := New(WithEnv(env), WithWorkers(6))
	if err := warm.Run(); err != nil {
		t.Fatal(err)
	}
	warmHashes := labHashes(t, warm)
	for key, want := range studyHashes {
		if warmHashes[key] != want {
			t.Errorf("warm %s = %s, recorded baseline %s", key, warmHashes[key], want)
		}
	}
	if len(warmHashes) != len(studyHashes) {
		t.Errorf("warm study produced %d outputs, want %d", len(warmHashes), len(studyHashes))
	}
}

// TestAblationKeepsPrivateWorld pins the guard that keeps ablations off a
// shared Env: mutating every profile through NewWithOptions must leave the
// Env's world untouched for the next lab.
func TestAblationKeepsPrivateWorld(t *testing.T) {
	env := NewEnv()
	abl := NewWithOptions(Options{ForcePrivacyExtensions: true}, WithEnv(env))
	plain := New(WithEnv(env))
	if abl.Study.World == plain.Study.World {
		t.Fatal("ablation lab shares the Env world it mutates")
	}
	eui64 := false
	for _, p := range plain.Study.Profiles {
		if p.EUI64 {
			eui64 = true
			break
		}
	}
	if !eui64 {
		t.Fatal("shared world lost its EUI-64 profiles to an ablation lab")
	}
}
