package v6lab

import (
	"errors"
	"strings"
	"testing"

	"v6lab/internal/device"
	"v6lab/internal/faults"
)

func TestZeroOptionNewMatchesFullRegistry(t *testing.T) {
	lab := New()
	if got, want := len(lab.Study.Profiles), len(device.Registry()); got != want {
		t.Errorf("zero-option lab has %d devices, want the full registry (%d)", got, want)
	}
	if lab.Study.MaxFramesPerRun != 3_000_000 {
		t.Errorf("MaxFramesPerRun = %d, want the 3M default", lab.Study.MaxFramesPerRun)
	}
}

func TestWithDevicesRestrictsAndOrders(t *testing.T) {
	// Names given out of registry order; the testbed keeps registry order.
	lab := New(WithDevices("Wyze Cam", "Apple TV"))
	if len(lab.Study.Profiles) != 2 {
		t.Fatalf("got %d devices, want 2", len(lab.Study.Profiles))
	}
	var names []string
	for _, p := range lab.Study.Profiles {
		names = append(names, p.Name)
	}
	idx := map[string]int{}
	for i, p := range device.Registry() {
		idx[p.Name] = i
	}
	if idx[names[0]] > idx[names[1]] {
		t.Errorf("devices %v not in registry order", names)
	}
}

func TestWithDevicesUnknownNamePanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("want panic")
		}
		if !strings.Contains(r.(string), "Quantum Toaster") {
			t.Errorf("panic message missing the offending name: %v", r)
		}
	}()
	New(WithDevices("Quantum Toaster"))
}

func TestWithMaxFramesPerRun(t *testing.T) {
	if got := New(WithMaxFramesPerRun(12345)).Study.MaxFramesPerRun; got != 12345 {
		t.Errorf("MaxFramesPerRun = %d, want 12345", got)
	}
}

func TestReportErrUnknownArtifact(t *testing.T) {
	lab := New()
	_, err := lab.ReportErr(Artifact("table99"))
	if !errors.Is(err, ErrUnknownArtifact) {
		t.Fatalf("err = %v, want ErrUnknownArtifact", err)
	}
	if !strings.Contains(err.Error(), "table99") {
		t.Errorf("error %q does not name the artifact", err)
	}
	// The legacy Report keeps its one-line placeholder.
	if got := lab.Report(Artifact("table99")); got != "unknown artifact \"table99\"\n" {
		t.Errorf("Report placeholder = %q", got)
	}
}

func TestResilienceArtifactBeforeRun(t *testing.T) {
	// Resilience (like fleet) renders without the single-home study.
	out, err := New().ReportErr(ResilienceStudy)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "not run") {
		t.Errorf("want a not-run note, got %q", out)
	}
}

// TestResiliencePartAndSeedDeterminism: Run(Resilience(...)) fills Resil,
// the artifact renders the grid, and the same seed reproduces the report
// byte for byte.
func TestResiliencePartAndSeedDeterminism(t *testing.T) {
	run := func() string {
		lab := New(WithDevices("TiVo Stream", "Apple TV"), WithSeed(7))
		if err := lab.Run(Resilience(Impairments(faults.Clean(), faults.ClampedTunnel()))); err != nil {
			t.Fatal(err)
		}
		if lab.Resil == nil {
			t.Fatal("Run(Resilience()) left Resil nil")
		}
		out, err := lab.ReportErr(ResilienceStudy)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), b2(t, run)
	if a != b {
		t.Error("same seed and profiles produced different resilience reports")
	}
	for _, want := range []string{"clamped-tunnel", "ipv6-only", "TiVo Stream"} {
		if !strings.Contains(a, want) {
			t.Errorf("resilience report missing %q:\n%s", want, a)
		}
	}
}

// b2 exists only to keep the double-run readable above.
func b2(t *testing.T, run func() string) string {
	t.Helper()
	return run()
}

// TestRunPartsAccumulateAndReproduce: a single Run(...) with several
// parts fills every corresponding result field, and a second lab running
// the same parts renders byte-identical artifacts.
func TestRunPartsAccumulateAndReproduce(t *testing.T) {
	a := New(WithDevices("Wyze Cam"))
	if err := a.Run(Connectivity(), FirewallComparison("stateful"), Fleet(2)); err != nil {
		t.Fatal(err)
	}
	if a.FirewallCmp == nil {
		t.Fatal("Run(FirewallComparison(...)) left FirewallCmp nil")
	}
	if a.FleetPop == nil {
		t.Fatal("Run(Fleet(...)) left FleetPop nil")
	}

	b := New(WithDevices("Wyze Cam"))
	if err := b.Run(Connectivity(), FirewallComparison("stateful"), Fleet(2)); err != nil {
		t.Fatal(err)
	}
	if got, want := a.Report(Firewall), b.Report(Firewall); got != want {
		t.Errorf("repeat runs produced different firewall artifacts:\n%s\nvs\n%s", got, want)
	}
	if got, want := a.Report(FleetStudy), b.Report(FleetStudy); got != want {
		t.Errorf("repeat runs produced different fleet artifacts")
	}
}

// TestFaultProfileChangesOutputCleanDoesNot: WithFaultProfile(clean) keeps
// the default byte-identical path (no impairment installed), an active
// profile flips the study into the impaired path.
func TestFaultProfileChangesOutputCleanDoesNot(t *testing.T) {
	if New(WithFaultProfile(faults.Clean())).Study.Faults != nil {
		t.Error("a clean profile must not install impairment")
	}
	lab := New(WithFaultProfile(faults.LossyWiFi()))
	if lab.Study.Faults == nil {
		t.Fatal("an active profile must reach the study")
	}
	if lab.Study.Faults.Seed != 1 {
		t.Errorf("profile seed = %d, want 1", lab.Study.Faults.Seed)
	}
	// A profile without its own seed inherits WithSeed.
	seedless := faults.Profile{Name: "seedless-loss", LossPermille: 30}
	if got := New(WithSeed(9), WithFaultProfile(seedless)).Study.Faults.Seed; got != 9 {
		t.Errorf("seedless profile got seed %d, want WithSeed's 9", got)
	}
}
