package adversary

import (
	"sort"
	"time"

	"v6lab/internal/fleet"
)

// This file is the propagation phase: an epidemic model seeded by the
// campaign's inbound-reachable devices. A compromised device scans its
// own LAN from *inside* the firewall — the "Where Have All the Firewalls
// Gone?" escalation: one inbound-reachable device converts a whole home's
// locally-open services into worm territory — and scans the WAN using the
// campaign's shared hitlist of reachable devices. The model is pure
// computation on the simulated clock (no packet simulation): bots act in
// sorted identity order with per-bot seeded draws, so the curve is fully
// deterministic.

// WormConfig parameterizes propagation.
type WormConfig struct {
	// ProbesPerTick is each bot's scan rate. Zero means 6.
	ProbesPerTick int
	// MaxTicks bounds the simulation. Zero means 360.
	MaxTicks int
	// Tick is the simulated duration of one round. Zero means a minute.
	Tick time.Duration
}

func (c WormConfig) withDefaults() WormConfig {
	if c.ProbesPerTick == 0 {
		c.ProbesPerTick = 6
	}
	if c.MaxTicks == 0 {
		c.MaxTicks = 360
	}
	if c.Tick == 0 {
		c.Tick = time.Minute
	}
	return c
}

// PolicyWorm is the per-firewall-policy time-to-compromise row. Tick
// fields are tick indexes; -1 means never reached within MaxTicks.
type PolicyWorm struct {
	Policy  string
	Homes   int
	Devices int
	// Entry counts WAN-reachable devices (the campaign's findings): the
	// worm's ways in under this policy.
	Entry int
	// Susceptible counts devices the worm can ever take: entry devices
	// plus locally-open devices sharing a home with at least one entry.
	Susceptible int
	// Compromised is the count at the end of the run.
	Compromised int
	// TFirst/T50/T90/TAll are the ticks at which the first device, 50%
	// and 90% of the susceptible set, and the whole susceptible set fell.
	TFirst, T50, T90, TAll int
}

// WormReport is the population-wide propagation outcome.
type WormReport struct {
	ProbesPerTick int
	Tick          time.Duration
	// Ticks is how many rounds actually ran (early exit when the
	// susceptible set is exhausted).
	Ticks      int
	ProbesSent int

	Devices, Entry, Susceptible, Compromised int

	// PerPolicy rows sorted by policy name.
	PerPolicy []PolicyWorm
	// Curve is the cumulative compromised count at each tick, starting at
	// tick 0 (patient zero).
	Curve []int
}

type wormNode struct {
	home       int
	policy     string
	device     string
	lanOpen    bool // has any TCPv6 service: LAN-compromisable
	wanEntry   bool // campaign found it inbound-reachable
	infected   bool
	infectedAt int
	rng        *campaignRNG
}

// runWorm seeds patient zero on the first WAN-reachable device and runs
// the epidemic to exhaustion or MaxTicks.
func runWorm(cfg Config, pop *fleet.Population, camp *CampaignReport) WormReport {
	wc := cfg.Worm
	rep := WormReport{ProbesPerTick: wc.ProbesPerTick, Tick: wc.Tick, PerPolicy: []PolicyWorm{}}

	// Build the node universe in (home, inventory-device) order; the
	// index is the bot identity every deterministic iteration uses.
	reachable := map[int]map[string]bool{}
	for _, hc := range camp.Homes {
		for _, rd := range hc.Reachable {
			if reachable[rd.Home] == nil {
				reachable[rd.Home] = map[string]bool{}
			}
			reachable[rd.Home][rd.Device] = true
		}
	}
	var nodes []*wormNode
	homeNodes := map[int][]int{}
	for _, hr := range pop.Homes {
		inv := hr.Inventory
		if !inv.V6 {
			continue
		}
		for _, d := range inv.Devices {
			// Inside the firewall both families are attack surface: the
			// NAT that shielded the v4 services is behind the bot now.
			n := &wormNode{
				home:     inv.Index,
				policy:   inv.Policy,
				device:   d.Name,
				lanOpen:  len(d.OpenTCPv6) > 0 || len(d.OpenTCPv4) > 0,
				wanEntry: reachable[inv.Index][d.Name],
			}
			homeNodes[inv.Index] = append(homeNodes[inv.Index], len(nodes))
			nodes = append(nodes, n)
		}
	}
	rep.Devices = len(nodes)

	// The worm's WAN hitlist: every entry device, in identity order —
	// exactly what the campaign handed the botnet.
	var wanTargets []int
	entryHome := map[int]bool{}
	for id, n := range nodes {
		if n.wanEntry {
			rep.Entry++
			wanTargets = append(wanTargets, id)
			entryHome[n.home] = true
		}
	}
	for _, n := range nodes {
		if n.wanEntry || (n.lanOpen && entryHome[n.home]) {
			rep.Susceptible++
		}
	}

	wormSeed := cfg.CampaignSeed*0xd1342543de82ef95 + 0x2545f4914f6cdd1d
	infect := func(id, tick int) {
		n := nodes[id]
		n.infected = true
		n.infectedAt = tick
		n.rng = &campaignRNG{s: wormSeed ^ (uint64(id)+1)*0x9e3779b97f4a7c15}
	}

	if len(wanTargets) > 0 {
		infect(wanTargets[0], 0)
		rep.Compromised = 1
	}
	rep.Curve = append(rep.Curve, rep.Compromised)

	for tick := 1; tick <= wc.MaxTicks && rep.Compromised < rep.Susceptible; tick++ {
		rep.Ticks = tick
		// Snapshot: devices infected this tick start scanning next tick.
		var bots []int
		for id, n := range nodes {
			if n.infected && n.infectedAt < tick {
				bots = append(bots, id)
			}
		}
		for _, id := range bots {
			b := nodes[id]
			budget := wc.ProbesPerTick
			// LAN first: inside the firewall every locally-open housemate
			// is one probe away.
			for _, hid := range homeNodes[b.home] {
				if budget == 0 {
					break
				}
				h := nodes[hid]
				if h.infected || !h.lanOpen {
					continue
				}
				budget--
				rep.ProbesSent++
				infect(hid, tick)
				rep.Compromised++
			}
			// Remaining budget goes to random draws from the shared WAN
			// hitlist; hitting an already-infected device wastes the probe
			// (the classic random-scanning epidemic slowdown).
			for ; budget > 0 && len(wanTargets) > 0; budget-- {
				rep.ProbesSent++
				tid := wanTargets[b.rng.intn(len(wanTargets))]
				if !nodes[tid].infected {
					infect(tid, tick)
					rep.Compromised++
				}
			}
		}
		rep.Curve = append(rep.Curve, rep.Compromised)
	}

	// Per-policy time-to-compromise table.
	perPolicy := map[string]*PolicyWorm{}
	polHomes := map[string]map[int]bool{}
	for _, n := range nodes {
		pw := perPolicy[n.policy]
		if pw == nil {
			pw = &PolicyWorm{Policy: n.policy, TFirst: -1, T50: -1, T90: -1, TAll: -1}
			perPolicy[n.policy] = pw
			polHomes[n.policy] = map[int]bool{}
		}
		polHomes[n.policy][n.home] = true
		pw.Devices++
		if n.wanEntry {
			pw.Entry++
		}
		if n.wanEntry || (n.lanOpen && entryHome[n.home]) {
			pw.Susceptible++
		}
		if n.infected {
			pw.Compromised++
		}
	}
	for _, pw := range perPolicy {
		pw.Homes = len(polHomes[pw.Policy])
		if pw.Susceptible == 0 {
			continue
		}
		// Walk infection times for this policy's devices in tick order.
		var times []int
		for _, n := range nodes {
			if n.policy == pw.Policy && n.infected {
				times = append(times, n.infectedAt)
			}
		}
		sort.Ints(times)
		at := func(frac float64) int {
			need := int(frac*float64(pw.Susceptible) + 0.999999)
			if need < 1 {
				need = 1
			}
			if len(times) < need {
				return -1
			}
			return times[need-1]
		}
		if len(times) > 0 {
			pw.TFirst = times[0]
		}
		pw.T50 = at(0.5)
		pw.T90 = at(0.9)
		if len(times) >= pw.Susceptible {
			pw.TAll = times[pw.Susceptible-1]
		}
	}
	names := make([]string, 0, len(perPolicy))
	for name := range perPolicy {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rep.PerPolicy = append(rep.PerPolicy, *perPolicy[name])
	}
	return rep
}
