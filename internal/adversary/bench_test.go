package adversary

import (
	"testing"

	"v6lab/internal/fleet"
)

// BenchmarkCampaign times the full adversary pipeline — fleet ground
// truth, hitlist discovery, campaign sweep, worm — on a 16-home
// population. Recorded into BENCH_study.json by cmd/benchjson; CI gates
// allocs/op against the baseline.
func BenchmarkCampaign(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := Run(Config{Fleet: fleet.Config{Homes: 16, Workers: 4, Seed: 1}})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Homes != 16 {
			b.Fatalf("got %d homes", rep.Homes)
		}
	}
}
