// Package adversary simulates the WAN-side attacker's view of a fleet of
// smart homes. The paper's §5.4.2 exposure scan assumes the attacker
// already knows every device address; in the real v6 Internet the
// attacker must *find* targets first. This package models that pipeline
// in three layers, each grounded in the measurement literature:
//
//  1. Address discovery ("Unconsidered Installations"): a deterministic
//     hitlist generator expands vendor MAC blocks into EUI-64 candidates,
//     sweeps low-byte identifiers, and harvests addresses the homes
//     themselves leaked (EUI-64 source addresses in DNS/data/NTP,
//     tracker-visible privacy addresses). Candidates are scored against
//     each home's ground-truth inventory: predictable identifiers are
//     found, RFC 8981 privacy identifiers are not.
//  2. Campaign scanning: a seeded scheduler sweeps the discovered
//     population through the firewall of each home on the simulated
//     clock, with per-home probe budgets. Results merge in home-index
//     order, so campaign reports are byte-identical at any worker count —
//     the same discipline internal/fleet uses.
//  3. Worm propagation ("Where Have All the Firewalls Gone?"): an
//     epidemic model where each compromised inbound-reachable device
//     scans its own LAN from inside the firewall and the WAN across
//     homes, producing a time-to-compromise curve per firewall policy.
package adversary

import (
	"context"
	"fmt"
	"net/netip"
	"time"

	"v6lab/internal/fleet"
	"v6lab/internal/router"
	"v6lab/internal/telemetry"
)

// ISPBase is the simulated ISP's /48: every home receives one /64 out of
// it, assigned sequentially by home index (subnet id = index+1), the
// dense allocation pattern that makes prefix sweeps viable for real ISPs.
var ISPBase = netip.MustParsePrefix("2001:db8:4400::/48")

// Vantage is the attacker's scanning host, outside every home prefix.
var Vantage = netip.MustParseAddr("2001:db8:4400:ffff::bad1")

// HomePrefix returns home i's WAN-visible /64 within ISPBase.
func HomePrefix(i int) netip.Prefix {
	b := ISPBase.Addr().As16()
	n := uint16(i + 1)
	b[6] = byte(n >> 8)
	b[7] = byte(n)
	return netip.PrefixFrom(netip.AddrFrom16(b), 64)
}

// wanFromLAN maps a home-internal address (in router.GUAPrefix) to its
// WAN-visible equivalent in home i's prefix: the interface identifier is
// what the home announces; the /64 is what the ISP routed to it.
func wanFromLAN(i int, lan netip.Addr) netip.Addr {
	b := HomePrefix(i).Addr().As16()
	l := lan.As16()
	copy(b[8:], l[8:])
	return netip.AddrFrom16(b)
}

// lanFromWAN reverses wanFromLAN for probing: the campaign injects at the
// home router, which speaks the testbed's internal /64.
func lanFromWAN(wan netip.Addr) netip.Addr {
	b := router.GUAPrefix.Addr().As16()
	w := wan.As16()
	copy(b[8:], w[8:])
	return netip.AddrFrom16(b)
}

// Config parameterizes a full adversary run.
type Config struct {
	// Fleet is the population under attack. SkipExposure is forced on:
	// the campaign provides its own WAN-vantage scan.
	Fleet fleet.Config

	// CampaignSeed seeds the attacker's scheduler: per-home probe-order
	// shuffling and the worm's target-selection draws. Zero means 1.
	CampaignSeed uint64

	// ProbeBudget caps SYN probes per home campaign; hitlist entries that
	// do not fit are dropped from the shuffled tail. Zero means no cap.
	ProbeBudget int

	// LowByteSweep is how many prefix::N identifiers the generator tries
	// per home (the "low-byte" hitlist). Zero means 256.
	LowByteSweep int

	// Worm parameterizes the propagation phase; zero values take the
	// defaults documented on WormConfig.
	Worm WormConfig

	// Telemetry, when non-nil, receives adversary counters. All folds
	// happen on the single deterministic path after each worker pool
	// drains, in home-index order.
	Telemetry *telemetry.Registry
	// Progress, when non-nil, receives one event per campaign home.
	Progress telemetry.Sink
}

func (c Config) withDefaults() Config {
	if c.CampaignSeed == 0 {
		c.CampaignSeed = 1
	}
	if c.LowByteSweep == 0 {
		c.LowByteSweep = 256
	}
	c.Worm = c.Worm.withDefaults()
	// The fleet's own per-home exposure scan would duplicate the campaign
	// at twice the cost; the campaign is the WAN scan here.
	c.Fleet.SkipExposure = true
	// The campaign rebuilds every v6 home byte-identically; retained
	// worlds let it reuse each home's plans and primed cloud registry
	// instead of re-deriving them from the spec.
	c.Fleet.RetainWorlds = true
	c.Fleet.Telemetry = c.Telemetry
	c.Fleet.Progress = c.Progress
	return c
}

// Report is a completed adversary run.
type Report struct {
	Homes        int
	CampaignSeed uint64
	ProbeBudget  int

	Discovery DiscoveryReport
	Campaign  CampaignReport
	Worm      WormReport

	// Elapsed is total simulated home time consumed by the underlying
	// fleet run plus the campaign scans.
	Elapsed time.Duration
}

// Run executes the full pipeline: fleet ground truth, discovery,
// campaign, worm.
func Run(cfg Config) (*Report, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation. The fleet and campaign phases
// check ctx per home; a cancelled run returns ctx.Err() and no Report.
func RunContext(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	pop, err := fleet.RunContext(ctx, cfg.Fleet)
	if err != nil {
		return nil, fmt.Errorf("adversary: fleet: %w", err)
	}
	rep := &Report{
		Homes:        len(pop.Homes),
		CampaignSeed: cfg.CampaignSeed,
		ProbeBudget:  cfg.ProbeBudget,
	}
	for _, hr := range pop.Homes {
		rep.Elapsed += hr.Elapsed
	}

	discoveries := discoverPopulation(pop, cfg.LowByteSweep)
	rep.Discovery = summarizeDiscovery(discoveries)

	camp, err := runCampaign(ctx, cfg, pop, discoveries)
	if err != nil {
		return nil, err
	}
	rep.Campaign = *camp
	rep.Elapsed += camp.Elapsed

	rep.Worm = runWorm(cfg, pop, camp)

	if cfg.Telemetry != nil {
		foldMetrics(cfg.Telemetry, rep)
	}
	return rep, nil
}
