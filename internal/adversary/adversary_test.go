package adversary

import (
	"context"
	"strings"
	"testing"
	"time"

	"v6lab/internal/addr"
	"v6lab/internal/fleet"
	"v6lab/internal/telemetry"
)

// smallCfg is the cheap pipeline configuration most tests share.
func smallCfg(workers int) Config {
	return Config{Fleet: fleet.Config{Homes: 24, Workers: workers, Seed: 7}}
}

// TestDiscoveryScoring is the subsystem's core contract: the generator
// finds EUI-64 and low-byte addresses (they are hitlist-predictable) and
// never finds a privacy address except through the leak harvest.
func TestDiscoveryScoring(t *testing.T) {
	cfg := smallCfg(4)
	cfg.Fleet.SkipExposure = true
	pop, err := fleet.RunContext(context.Background(), cfg.Fleet)
	if err != nil {
		t.Fatal(err)
	}
	ds := discoverPopulation(pop, 256)

	// Ground-truth tally to compare the generator against.
	var wantEUI64, wantLowByte, privacy int
	for _, hr := range pop.Homes {
		for _, d := range hr.Inventory.Devices {
			for _, r := range d.Addrs {
				switch r.Class {
				case addr.IIDEUI64:
					wantEUI64++
				case addr.IIDLowByte:
					wantLowByte++
				default:
					privacy++
				}
			}
		}
	}
	if wantEUI64 == 0 {
		t.Fatal("population holds no EUI-64 addresses; fleet seed no longer exercises discovery")
	}

	var gotEUI64, gotLowByte int
	for _, hd := range ds {
		for _, f := range hd.Found {
			switch {
			case f.Class == addr.IIDEUI64 && f.Source == SourceEUI64:
				gotEUI64++
			case f.Class == addr.IIDLowByte && f.Source == SourceLowByte:
				gotLowByte++
			case f.Class == addr.IIDRandom && f.Source != SourceLeak:
				t.Errorf("privacy address %v discovered by %v; generation must never reach it", f.LAN, f.Source)
			}
		}
	}
	// Every predictable address must fall to generation: EUI-64 to the
	// vendor expansion, low-byte to the sweep. (Leak-harvested EUI-64
	// addresses were already found by expansion, which runs first.)
	if gotEUI64 != wantEUI64 {
		t.Errorf("EUI-64 expansion found %d of %d EUI-64 addresses", gotEUI64, wantEUI64)
	}
	if gotLowByte != wantLowByte {
		t.Errorf("low-byte sweep found %d of %d low-byte addresses", gotLowByte, wantLowByte)
	}
	if privacy == 0 {
		t.Error("population holds no privacy addresses; the miss case is untested")
	}
	rep := summarizeDiscovery(ds)
	if rep.MissedRandom == 0 {
		t.Error("no privacy address was missed; RFC 8981 addresses should defeat generation")
	}
	if rep.Found+rep.Missed != rep.AddrsTotal {
		t.Errorf("found %d + missed %d != total %d", rep.Found, rep.Missed, rep.AddrsTotal)
	}
}

// TestCampaignRespectsFirewall checks the sweep goes through each home's
// policy: stateful default-deny homes must yield no reachable devices,
// and probe counts must line up with targets × ports.
func TestCampaignRespectsFirewall(t *testing.T) {
	rep, err := Run(smallCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, pc := range rep.Campaign.PerPolicy {
		if pc.Policy == "stateful" && pc.DevicesReachable != 0 {
			t.Errorf("stateful default-deny let %d devices through", pc.DevicesReachable)
		}
	}
	wantProbes := rep.Campaign.TargetsProbed * len(rep.Campaign.Ports)
	if rep.Campaign.ProbesSent != wantProbes {
		t.Errorf("ProbesSent = %d, want targets×ports = %d", rep.Campaign.ProbesSent, wantProbes)
	}
	for _, pw := range rep.Worm.PerPolicy {
		if pw.Policy == "stateful" && pw.Compromised != 0 {
			t.Errorf("worm compromised %d devices behind stateful default-deny", pw.Compromised)
		}
	}
}

// TestProbeBudgetTruncates caps the campaign and checks the budget holds
// per home and the truncation is flagged.
func TestProbeBudgetTruncates(t *testing.T) {
	cfg := smallCfg(4)
	cfg.ProbeBudget = len(CampaignPorts()) // budget for exactly one target per home
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	truncated := false
	for _, hc := range rep.Campaign.Homes {
		if hc.Skipped {
			continue
		}
		if hc.ProbesSent > cfg.ProbeBudget {
			t.Errorf("home %d sent %d probes over budget %d", hc.Index, hc.ProbesSent, cfg.ProbeBudget)
		}
		if hc.Truncated {
			truncated = true
		}
	}
	if !truncated {
		t.Error("no home was truncated; budget too generous for the test to bite")
	}
}

// TestRunDeterministic reruns the same configuration and requires every
// population-visible number to repeat exactly: the whole pipeline is a
// pure function of (fleet seed, campaign seed).
func TestRunDeterministic(t *testing.T) {
	a, err := Run(smallCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	if a.Discovery != b.Discovery {
		t.Errorf("discovery differs across reruns:\n%+v\n%+v", a.Discovery, b.Discovery)
	}
	if a.Campaign.ProbesSent != b.Campaign.ProbesSent ||
		a.Campaign.DevicesReachable != b.Campaign.DevicesReachable {
		t.Errorf("campaign differs across reruns: %+v vs %+v", a.Campaign, b.Campaign)
	}
	if a.Worm.Compromised != b.Worm.Compromised || a.Worm.ProbesSent != b.Worm.ProbesSent {
		t.Errorf("worm differs across reruns: %+v vs %+v", a.Worm, b.Worm)
	}
}

// TestTelemetryCounters checks the adversary counters fold once with the
// run's totals.
func TestTelemetryCounters(t *testing.T) {
	cfg := smallCfg(4)
	reg := telemetry.NewRegistry()
	cfg.Telemetry = reg
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot(time.Time{})
	found := false
	for _, m := range snap.Points {
		if strings.Contains(m.Name, "adversary_campaign_probes_total") {
			found = true
		}
	}
	if !found {
		t.Errorf("snapshot missing adversary counters: %+v", snap.Points)
	}
	if rep.Campaign.ProbesSent == 0 {
		t.Error("campaign sent no probes; counters untestable")
	}
}
