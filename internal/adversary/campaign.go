package adversary

import (
	"context"
	"fmt"
	"net/netip"
	"runtime"
	"sort"
	"sync"
	"time"

	"v6lab/internal/device"
	"v6lab/internal/experiment"
	"v6lab/internal/firewall"
	"v6lab/internal/fleet"
	"v6lab/internal/telemetry"
	"v6lab/internal/world"
)

// This file is the campaign scheduler: the discovered population swept
// through each home's firewall on the simulated clock. Homes run on a
// bounded worker pool; results merge in home-index order, so the campaign
// report is byte-identical at any worker count. The campaign seed only
// shuffles the attacker's per-home probe order — which matters exactly
// when a probe budget truncates the hitlist.

// campaignRNG is splitmix64, the same generator the fleet uses for spec
// derivation: one uint64 of state, sequence fully determined by the seed.
type campaignRNG struct{ s uint64 }

func (r *campaignRNG) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

func (r *campaignRNG) intn(n int) int { return int(r.next() % uint64(n)) }

// CampaignPorts returns the attacker's probe list: the classic IoT sweep
// set plus every TCP service port any registry device exposes over IPv6 —
// the "product fingerprint database" a real campaign works from. Sorted,
// deduplicated, identical for every home.
func CampaignPorts() []uint16 {
	seen := map[uint16]bool{}
	for _, p := range []uint16{22, 23, 80, 443, 1883, 5000} {
		seen[p] = true
	}
	for _, prof := range device.Registry() {
		for _, p := range prof.OpenTCPv6 {
			seen[p] = true
		}
	}
	out := make([]uint16, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ReachableDevice is one device the campaign compromised a path to:
// inbound-reachable through its home's firewall on at least one port.
type ReachableDevice struct {
	Home   int
	Device string
	// WAN is the lowest discovered WAN address that answered.
	WAN netip.Addr
	// OpenPorts is the union of answering ports across the device's
	// discovered addresses, sorted.
	OpenPorts []uint16
}

// HomeCampaign is one home's scan outcome.
type HomeCampaign struct {
	Index  int
	Policy string
	// Skipped marks homes the campaign never scanned: no discovered
	// targets, or no IPv6 on the WAN at all.
	Skipped bool
	// Truncated marks homes where the probe budget cut the hitlist.
	Truncated                 bool
	TargetsProbed, ProbesSent int
	Reachable                 []ReachableDevice
	// Functional devices under scan (egress must never regress).
	Functional int
	// Elapsed is the simulated time the home's scan consumed.
	Elapsed time.Duration
}

// PolicyCampaign aggregates campaign outcomes for one firewall policy.
type PolicyCampaign struct {
	Policy                           string
	Homes, HomesScanned              int
	TargetsProbed, ProbesSent        int
	DevicesReachable, PortsReachable int
}

// CampaignReport is the population-wide campaign outcome.
type CampaignReport struct {
	Ports                            []uint16
	HomesScanned, HomesSkipped       int
	TargetsProbed, ProbesSent        int
	DevicesReachable, PortsReachable int
	// PerPolicy rows are sorted by policy name.
	PerPolicy []PolicyCampaign
	// Homes holds every per-home outcome in home-index order (the worm
	// phase consumes it).
	Homes []*HomeCampaign
	// Elapsed is total simulated scan time across homes.
	Elapsed time.Duration
}

// campaignHome rebuilds one home and sweeps its discovered targets
// through its firewall. The rebuild boots byte-identically to the fleet's
// original run (same profiles, same connectivity config, same V6Seq), so
// the addresses discovery scored against are the addresses that answer.
// The fleet retains each home's immutable world (RetainWorlds), so the
// rebuild reuses its plans and primed cloud registry outright — only the
// per-run state (stacks, switch, router) is reconstructed, on the calling
// worker's recycled scratch.
func campaignHome(cfg Config, hr *fleet.HomeResult, hd *HomeDiscovery, ports []uint16, scratch *experiment.Scratch) (*HomeCampaign, error) {
	spec := hr.Spec
	hc := &HomeCampaign{Index: spec.Index, Policy: spec.Policy}
	ec, ok := experiment.ConfigByID(spec.ConfigID)
	if !ok {
		return nil, fmt.Errorf("unknown connectivity config %q", spec.ConfigID)
	}
	if !ec.Router.IPv6 || len(hd.Found) == 0 {
		hc.Skipped = true
		return hc, nil
	}

	w := hr.World
	if w == nil {
		// Populations produced without RetainWorlds (or by older callers):
		// rebuild the world from the spec.
		reg := device.Registry()
		profiles := make([]*device.Profile, len(spec.DeviceIndexes))
		for j, di := range spec.DeviceIndexes {
			profiles[j] = reg[di]
		}
		w = world.Build(profiles)
	}
	st := experiment.NewStudyWith(experiment.StudyOptions{
		World:           w,
		MaxFramesPerRun: cfg.Fleet.MaxFramesPerRun,
		// The campaign scores probe answers, not frames: no capture, no
		// analysis tap.
		Capture:   experiment.CaptureNone,
		Telemetry: cfg.Telemetry,
		Scratch:   scratch,
	})
	began := st.Clock.Now()

	pol, err := firewall.ByName(spec.Policy)
	if err != nil {
		return nil, err
	}
	if ph, ok := pol.(firewall.Pinhole); ok && len(ph.Rules) == 0 {
		pol = firewall.Pinhole{Rules: experiment.DefaultPinholes(st.Profiles)}
	}

	// The attacker shuffles probe order per home (scan-detection evasion);
	// under a budget the shuffle decides which targets make the cut.
	order := make([]int, len(hd.Found))
	for i := range order {
		order[i] = i
	}
	rng := &campaignRNG{s: cfg.CampaignSeed ^ (uint64(spec.Index)+1)*0x9e3779b97f4a7c15}
	for i := len(order) - 1; i > 0; i-- {
		j := rng.intn(i + 1)
		order[i], order[j] = order[j], order[i]
	}
	maxTargets := len(order)
	if cfg.ProbeBudget > 0 {
		if m := cfg.ProbeBudget / len(ports); m < maxTargets {
			maxTargets = m
			hc.Truncated = true
		}
	}
	targets := make([]experiment.TargetProbe, 0, maxTargets)
	wanFor := map[netip.Addr]netip.Addr{}
	for _, oi := range order[:maxTargets] {
		f := hd.Found[oi]
		targets = append(targets, experiment.TargetProbe{Addr: f.LAN, Ports: ports})
		wanFor[f.LAN] = f.WAN
	}

	te, err := st.RunTargetedExposure(ec, pol, targets)
	if err != nil {
		return nil, err
	}
	st.FoldCloudMetrics()
	hc.TargetsProbed = te.AddrsProbed
	hc.ProbesSent = te.ProbesSent
	hc.Functional = te.FunctionalDevices

	// Collapse per-address answers to per-device reachability: union of
	// open ports, lowest answering WAN address, sorted by device name.
	type devHit struct {
		wan   netip.Addr
		ports map[uint16]bool
	}
	byDev := map[string]*devHit{}
	for lan, openPorts := range te.Open {
		name := te.Device[lan]
		if name == "" {
			continue
		}
		h := byDev[name]
		if h == nil {
			h = &devHit{wan: wanFor[lan], ports: map[uint16]bool{}}
			byDev[name] = h
		}
		if w := wanFor[lan]; w.Less(h.wan) {
			h.wan = w
		}
		for _, p := range openPorts {
			h.ports[p] = true
		}
	}
	names := make([]string, 0, len(byDev))
	for name := range byDev {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := byDev[name]
		ps := make([]uint16, 0, len(h.ports))
		for p := range h.ports {
			ps = append(ps, p)
		}
		sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
		hc.Reachable = append(hc.Reachable, ReachableDevice{
			Home: spec.Index, Device: name, WAN: h.wan, OpenPorts: ps,
		})
	}
	hc.Elapsed = st.Clock.Now().Sub(began)
	return hc, nil
}

// runCampaign sweeps every home on a bounded worker pool and merges the
// outcomes in home-index order.
func runCampaign(ctx context.Context, cfg Config, pop *fleet.Population, ds []*HomeDiscovery) (*CampaignReport, error) {
	ports := CampaignPorts()
	workers := cfg.Fleet.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pop.Homes) {
		workers = len(pop.Homes)
	}
	results := make([]*HomeCampaign, len(pop.Homes))
	errs := make([]error, len(pop.Homes))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := experiment.NewScratch()
			for i := range jobs {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				results[i], errs[i] = campaignHome(cfg, pop.Homes[i], ds[i], ports, scratch)
				if hc := results[i]; hc != nil && !hc.Skipped {
					telemetry.Emit(cfg.Progress, telemetry.Event{
						Scope:   "adversary",
						ID:      fmt.Sprintf("campaign %d/%d", i+1, len(pop.Homes)),
						Detail:  fmt.Sprintf("%s, %d targets, %d devices reachable", hc.Policy, hc.TargetsProbed, len(hc.Reachable)),
						Elapsed: hc.Elapsed,
					})
				}
			}
		}()
	}
	for i := range pop.Homes {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("adversary: campaign home %d: %w", i, err)
		}
	}

	rep := &CampaignReport{Ports: ports, Homes: results}
	perPolicy := map[string]*PolicyCampaign{}
	for _, hc := range results {
		pc := perPolicy[hc.Policy]
		if pc == nil {
			pc = &PolicyCampaign{Policy: hc.Policy}
			perPolicy[hc.Policy] = pc
		}
		pc.Homes++
		if hc.Skipped {
			rep.HomesSkipped++
			continue
		}
		pc.HomesScanned++
		rep.HomesScanned++
		rep.TargetsProbed += hc.TargetsProbed
		rep.ProbesSent += hc.ProbesSent
		rep.DevicesReachable += len(hc.Reachable)
		pc.TargetsProbed += hc.TargetsProbed
		pc.ProbesSent += hc.ProbesSent
		pc.DevicesReachable += len(hc.Reachable)
		for _, rd := range hc.Reachable {
			rep.PortsReachable += len(rd.OpenPorts)
			pc.PortsReachable += len(rd.OpenPorts)
		}
		rep.Elapsed += hc.Elapsed
	}
	names := make([]string, 0, len(perPolicy))
	for name := range perPolicy {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rep.PerPolicy = append(rep.PerPolicy, *perPolicy[name])
	}
	return rep, nil
}
