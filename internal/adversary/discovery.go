package adversary

import (
	"net/netip"
	"sort"

	"v6lab/internal/addr"
	"v6lab/internal/device"
	"v6lab/internal/fleet"
	"v6lab/internal/packet"
)

// This file is the hitlist generator: the attacker's only knowledge is
// the ISP's /48, the vendor OUI database, the low-byte convention, and
// whatever the homes leaked. Candidates are scored against the fleet's
// ground-truth inventories; nothing else crosses from defender to
// attacker.

// Source says how the attacker arrived at a candidate address.
type Source int

// The generator's three candidate sources.
const (
	// SourceEUI64 is vendor-database MAC expansion: OUI × device-index
	// suffix, expanded through the modified EUI-64 transform.
	SourceEUI64 Source = iota
	// SourceLowByte is the prefix::1..prefix::N sweep.
	SourceLowByte
	// SourceLeak is passive harvesting: addresses the home's own traffic
	// exposed to a WAN observer (EUI-64 DNS/data/NTP sources, addresses
	// seen by AAAA-bearing tracker domains).
	SourceLeak
)

// String names the source as the discovery report does.
func (s Source) String() string {
	switch s {
	case SourceEUI64:
		return "eui64-expansion"
	case SourceLowByte:
		return "low-byte-sweep"
	}
	return "leak-harvest"
}

// Finding is one discovered address: a candidate that matched a real one.
type Finding struct {
	// WAN is the address as the attacker knows it (in the home's ISP
	// /64); LAN its testbed-internal equivalent used for probing.
	WAN, LAN netip.Addr
	Class    addr.IIDClass
	Source   Source
	Device   string
}

// HomeDiscovery is the generator's outcome against one home.
type HomeDiscovery struct {
	Index      int
	Policy     string
	V6         bool
	Candidates int // candidates generated against this home's prefix
	AddrsTotal int // ground-truth global addresses the home held
	Found      []Finding
	// Missed counts ground-truth addresses no candidate matched;
	// MissedRandom the privacy-addressed subset (the generator's designed
	// blind spot).
	Missed, MissedRandom int
}

// discoverHome runs the generator against one home's ground truth.
func discoverHome(inv *fleet.HomeInventory, ouis [][3]byte, lowByteN int) *HomeDiscovery {
	hd := &HomeDiscovery{Index: inv.Index, Policy: inv.Policy, V6: inv.V6}

	// Ground truth keyed by interface identifier: within one /64 the IID
	// is the whole guessing game.
	type truth struct {
		lan    netip.Addr
		class  addr.IIDClass
		device string
	}
	actual := map[[8]byte]truth{}
	for _, d := range inv.Devices {
		for _, r := range d.Addrs {
			actual[addr.InterfaceID(r.Addr)] = truth{lan: r.Addr, class: r.Class, device: d.Name}
		}
	}
	hd.AddrsTotal = len(actual)

	found := map[[8]byte]bool{}
	try := func(iid [8]byte, src Source) {
		hd.Candidates++
		t, ok := actual[iid]
		if !ok || found[iid] {
			return
		}
		found[iid] = true
		hd.Found = append(hd.Found, Finding{
			WAN:    wanFromLAN(inv.Index, t.lan),
			LAN:    t.lan,
			Class:  t.class,
			Source: src,
			Device: t.device,
		})
	}

	// 1. EUI-64 expansion: the registry's MAC convention is OUI + the
	// fixed 0x10,0x20 administrative bytes + a device index, so each OUI
	// block collapses to 256 candidates.
	for _, oui := range ouis {
		for idx := 0; idx < 256; idx++ {
			mac := packet.MAC{oui[0], oui[1], oui[2], 0x10, 0x20, byte(idx)}
			try(addr.EUI64FromMAC(mac), SourceEUI64)
		}
	}

	// 2. Low-byte sweep: prefix::1..prefix::N, plus the same window at
	// the conventional CPE DHCPv6 pool offsets (pools at ::1:0, ::10:0
	// and ::64:0 are common firmware defaults — sequential leases there
	// fall to the sweep just like plain low-byte addresses).
	for _, base := range [...]byte{0x00, 0x01, 0x10, 0x64} {
		for n := 1; n <= lowByteN; n++ {
			try(addr.LowByteIID(base, uint16(n)), SourceLowByte)
		}
	}

	// 3. Leak harvest: exact addresses a passive WAN observer collected —
	// the only way a privacy address ever lands on the hitlist.
	for _, d := range inv.Devices {
		for _, r := range d.Addrs {
			if r.Leaked {
				try(addr.InterfaceID(r.Addr), SourceLeak)
			}
		}
	}

	sort.Slice(hd.Found, func(i, j int) bool { return hd.Found[i].LAN.Less(hd.Found[j].LAN) })
	for iid, t := range actual {
		if !found[iid] {
			hd.Missed++
			if t.class == addr.IIDRandom {
				hd.MissedRandom++
			}
		}
	}
	return hd
}

// discoverPopulation runs the generator over every home, in index order.
// Discovery is pure computation over the inventories (hash lookups, no
// packet simulation), so it runs single-threaded and is trivially
// deterministic.
func discoverPopulation(pop *fleet.Population, lowByteN int) []*HomeDiscovery {
	ouis := device.VendorOUIs()
	out := make([]*HomeDiscovery, 0, len(pop.Homes))
	for _, hr := range pop.Homes {
		out = append(out, discoverHome(hr.Inventory, ouis, lowByteN))
	}
	return out
}

// DiscoveryReport aggregates the generator's population-wide score.
type DiscoveryReport struct {
	Homes, HomesV6 int
	Candidates     int
	AddrsTotal     int
	Found          int
	// By source.
	FoundEUI64, FoundLowByte, FoundLeak int
	// FoundRandom counts discovered privacy addresses — reachable only
	// through the leak harvest, never through generation.
	FoundRandom          int
	Missed, MissedRandom int
}

func summarizeDiscovery(ds []*HomeDiscovery) DiscoveryReport {
	var r DiscoveryReport
	r.Homes = len(ds)
	for _, hd := range ds {
		if hd.V6 {
			r.HomesV6++
		}
		r.Candidates += hd.Candidates
		r.AddrsTotal += hd.AddrsTotal
		r.Found += len(hd.Found)
		r.Missed += hd.Missed
		r.MissedRandom += hd.MissedRandom
		for _, f := range hd.Found {
			switch f.Source {
			case SourceEUI64:
				r.FoundEUI64++
			case SourceLowByte:
				r.FoundLowByte++
			case SourceLeak:
				r.FoundLeak++
			}
			if f.Class == addr.IIDRandom {
				r.FoundRandom++
			}
		}
	}
	return r
}
