package adversary

import "v6lab/internal/telemetry"

// foldMetrics publishes the run's counters. It runs once, on the single
// deterministic path after every worker pool has drained, so snapshots
// are byte-identical at any worker count.
func foldMetrics(r *telemetry.Registry, rep *Report) {
	r.Counter("adversary", "candidates_total",
		"Hitlist candidates generated across the population.").Add(uint64(rep.Discovery.Candidates))
	hits := r.CounterVec("adversary", "hitlist_hits_total",
		"Discovered addresses by candidate source.", "source")
	hits.With(SourceEUI64.String()).Add(uint64(rep.Discovery.FoundEUI64))
	hits.With(SourceLowByte.String()).Add(uint64(rep.Discovery.FoundLowByte))
	hits.With(SourceLeak.String()).Add(uint64(rep.Discovery.FoundLeak))
	r.Counter("adversary", "addrs_missed_total",
		"Ground-truth addresses discovery never found.").Add(uint64(rep.Discovery.Missed))
	r.Counter("adversary", "campaign_probes_total",
		"SYN probes the campaign injected at home WAN ports.").Add(uint64(rep.Campaign.ProbesSent))
	r.Counter("adversary", "campaign_reachable_devices_total",
		"Devices inbound-reachable through their home firewall.").Add(uint64(rep.Campaign.DevicesReachable))
	r.Counter("adversary", "worm_probes_total",
		"Probes the worm spent across all ticks.").Add(uint64(rep.Worm.ProbesSent))
	r.Counter("adversary", "worm_compromised_total",
		"Devices the worm compromised.").Add(uint64(rep.Worm.Compromised))
}
