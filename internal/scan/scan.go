// Package scan implements the active port-scanning experiment of §4.3: an
// nmap-equivalent on-LAN scanner that discovers live IPv6 addresses with
// an all-nodes ICMPv6 echo, then runs TCP SYN scans and UDP probes against
// each device address over both families.
package scan

import (
	"net/netip"
	"sort"

	"v6lab/internal/addr"
	"v6lab/internal/netsim"
	"v6lab/internal/packet"
)

// Scanner is the probing host.
type Scanner struct {
	MAC  packet.MAC
	V4   netip.Addr
	LLA  netip.Addr
	port *netsim.Port

	// discovery results: address -> responding MAC
	found map[netip.Addr]packet.MAC
	// probe results for the in-flight scan
	synAck map[uint16]bool
	rst    map[uint16]bool
	icmpUn map[uint16]bool

	// dec parses inbound frames; innerDec parses the invoking packet
	// quoted inside ICMP unreachable bodies while dec's result is live.
	dec      packet.Decoder
	innerDec packet.Decoder
	// tx is the reusable probe serialization buffer (the switch copies
	// frames at enqueue time).
	tx *packet.Buffer
}

// New creates a scanner with testbed-reserved addresses.
func New() *Scanner {
	return &Scanner{
		MAC: packet.MAC{0x02, 0x5c, 0xa9, 0x00, 0x00, 0xfe},
		V4:  netip.MustParseAddr("192.168.1.250"),
		LLA: netip.MustParseAddr("fe80::5ca9"),
		tx:  packet.NewBuffer(128),
	}
}

// Attach connects the scanner to the LAN.
func (sc *Scanner) Attach(n *netsim.Network) {
	sc.port = n.Attach(sc, sc.MAC)
	sc.found = map[netip.Addr]packet.MAC{}
}

// HandleFrame implements netsim.Host.
func (sc *Scanner) HandleFrame(frame []byte) {
	p := sc.dec.Parse(frame)
	if p.Err != nil || p.Ethernet == nil {
		return
	}
	switch {
	case p.ICMPv6 != nil && p.ICMPv6.Type == packet.ICMPv6TypeEchoReply:
		sc.found[p.IPv6.Src] = p.Ethernet.Src
	case p.TCP != nil && p.DstIP() == sc.V4 || p.TCP != nil && p.IPv6 != nil && p.IPv6.Dst == sc.LLA:
		switch {
		case p.TCP.HasFlag(packet.TCPFlagSYN | packet.TCPFlagACK):
			sc.synAck[p.TCP.SrcPort] = true
		case p.TCP.HasFlag(packet.TCPFlagRST):
			sc.rst[p.TCP.SrcPort] = true
		}
	case p.ICMPv6 != nil && p.ICMPv6.Type == packet.ICMPv6TypeDestUnreachable:
		// Body: 4 unused bytes, then the invoking IPv6 packet.
		if inner := p.ICMPv6.Body; len(inner) >= 4+48 {
			if ip := sc.innerDec.ParseIP(inner[4:]); ip.UDP != nil {
				sc.icmpUn[ip.UDP.DstPort] = true
			}
		}
	case p.ICMPv4 != nil && p.ICMPv4.Type == 3:
		if inner := p.ICMPv4.Body; len(inner) >= 4+28 {
			if ip := sc.innerDec.ParseIP(inner[4:]); ip.UDP != nil {
				sc.icmpUn[ip.UDP.DstPort] = true
			}
		}
	}
}

// DiscoverV6 pings the all-nodes group and returns every (address, MAC)
// pair that answered — the paper's technique for harvesting the
// potentially temporary IPv6 addresses before scanning.
func (sc *Scanner) DiscoverV6(n *netsim.Network) (map[netip.Addr]packet.MAC, error) {
	sc.found = map[netip.Addr]packet.MAC{}
	dst := addr.AllNodesMulticast
	frame, err := packet.SerializeInto(sc.tx,
		&packet.Ethernet{Dst: addr.MulticastMAC(dst), Src: sc.MAC, Type: packet.EtherTypeIPv6},
		&packet.IPv6{NextHeader: packet.IPProtocolICMPv6, HopLimit: 64, Src: sc.LLA, Dst: dst},
		&packet.ICMPv6{Type: packet.ICMPv6TypeEchoRequest, Body: []byte{0, 7, 0, 1}, Src: sc.LLA, Dst: dst},
	)
	if err != nil {
		return nil, err
	}
	sc.port.Send(frame)
	if _, err := n.Run(1 << 20); err != nil {
		return nil, err
	}
	out := map[netip.Addr]packet.MAC{}
	for a, m := range sc.found {
		out[a] = m
	}
	return out, nil
}

// TCPScan SYN-probes the given ports on target and returns the open set.
func (sc *Scanner) TCPScan(n *netsim.Network, target netip.Addr, mac packet.MAC, ports []uint16) ([]uint16, error) {
	sc.synAck = map[uint16]bool{}
	sc.rst = map[uint16]bool{}
	var src netip.Addr
	typ := packet.EtherTypeIPv6
	if target.Is4() {
		src, typ = sc.V4, packet.EtherTypeIPv4
	} else {
		src = sc.LLA
	}
	for i, dport := range ports {
		var ipLayer packet.SerializableLayer
		if target.Is4() {
			ipLayer = &packet.IPv4{Protocol: packet.IPProtocolTCP, Src: src, Dst: target}
		} else {
			ipLayer = &packet.IPv6{NextHeader: packet.IPProtocolTCP, Src: src, Dst: target}
		}
		frame, err := packet.SerializeInto(sc.tx,
			&packet.Ethernet{Dst: mac, Src: sc.MAC, Type: typ},
			ipLayer,
			&packet.TCP{SrcPort: uint16(50000 + i), DstPort: dport, Seq: 7, Flags: packet.TCPFlagSYN, Src: src, Dst: target},
		)
		if err != nil {
			return nil, err
		}
		sc.port.Send(frame)
	}
	if _, err := n.Run(1 << 20); err != nil {
		return nil, err
	}
	var open []uint16
	for p := range sc.synAck {
		open = append(open, p)
	}
	sort.Slice(open, func(i, j int) bool { return open[i] < open[j] })
	return open, nil
}

// UDPScan probes UDP ports; ports that do NOT elicit an ICMP
// port-unreachable are open|filtered (nmap semantics).
func (sc *Scanner) UDPScan(n *netsim.Network, target netip.Addr, mac packet.MAC, ports []uint16) ([]uint16, error) {
	sc.icmpUn = map[uint16]bool{}
	var src netip.Addr
	typ := packet.EtherTypeIPv6
	if target.Is4() {
		src, typ = sc.V4, packet.EtherTypeIPv4
	} else {
		src = sc.LLA
	}
	for i, dport := range ports {
		var ipLayer packet.SerializableLayer
		if target.Is4() {
			ipLayer = &packet.IPv4{Protocol: packet.IPProtocolUDP, Src: src, Dst: target}
		} else {
			ipLayer = &packet.IPv6{NextHeader: packet.IPProtocolUDP, Src: src, Dst: target}
		}
		frame, err := packet.SerializeInto(sc.tx,
			&packet.Ethernet{Dst: mac, Src: sc.MAC, Type: typ},
			ipLayer,
			&packet.UDP{SrcPort: uint16(51000 + i), DstPort: dport, Src: src, Dst: target},
			packet.Raw([]byte("probe")),
		)
		if err != nil {
			return nil, err
		}
		sc.port.Send(frame)
	}
	if _, err := n.Run(1 << 20); err != nil {
		return nil, err
	}
	var openOrFiltered []uint16
	for _, p := range ports {
		if !sc.icmpUn[p] {
			openOrFiltered = append(openOrFiltered, p)
		}
	}
	return openOrFiltered, nil
}
