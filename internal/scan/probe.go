package scan

// This file holds the WAN-side probe primitives shared by the
// firewall-exposure experiment and the adversary campaign engine:
// building raw TCP SYN probes for injection at the router's WAN port, and
// collecting the SYN-ACKs that make it back out to the scanning vantage.

import (
	"net/netip"

	"v6lab/internal/packet"
)

// BuildSYNv6 serializes one raw IPv6 TCP SYN probe from the scanning
// vantage src to dst, suitable for router.InjectWANv6.
func BuildSYNv6(src, dst netip.Addr, sport, dport uint16, seq uint32) ([]byte, error) {
	return packet.Serialize(
		&packet.IPv6{NextHeader: packet.IPProtocolTCP, HopLimit: 64, Src: src, Dst: dst},
		&packet.TCP{SrcPort: sport, DstPort: dport, Seq: seq, Flags: packet.TCPFlagSYN, Src: src, Dst: dst})
}

// Collector plays the scanner's WAN endpoint. Wire Tap as the router's
// WANv6Tap: it consumes every packet addressed to the vantage (scanner
// traffic never reaches the simulated cloud) and reports SYN-ACKs — the
// open-port signal — through OnSYNACK.
type Collector struct {
	Vantage netip.Addr
	// OnSYNACK receives the responding device address and the service
	// port that answered.
	OnSYNACK func(src netip.Addr, port uint16)

	dec packet.Decoder
}

// Tap inspects one raw WAN-bound IPv6 packet, reporting true when it was
// addressed to the vantage and therefore consumed.
func (c *Collector) Tap(raw []byte) bool {
	rp := c.dec.ParseIP(raw)
	if rp.Err != nil || rp.IPv6 == nil || rp.IPv6.Dst != c.Vantage {
		return false
	}
	if rp.TCP != nil && rp.TCP.HasFlag(packet.TCPFlagSYN|packet.TCPFlagACK) && c.OnSYNACK != nil {
		c.OnSYNACK(rp.IPv6.Src, rp.TCP.SrcPort)
	}
	return true
}
