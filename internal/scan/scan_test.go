package scan

import (
	"net/netip"
	"testing"
	"time"

	"v6lab/internal/addr"
	"v6lab/internal/netsim"
	"v6lab/internal/packet"
)

// fakeDevice is a minimal scan target: one v4 and one v6 address, distinct
// open-port sets per family.
type fakeDevice struct {
	port   *netsim.Port
	mac    packet.MAC
	v4     netip.Addr
	v6     netip.Addr
	openV4 map[uint16]bool
	openV6 map[uint16]bool
}

func (d *fakeDevice) HandleFrame(frame []byte) {
	p := packet.Parse(frame)
	if p.Err != nil || p.Ethernet == nil {
		return
	}
	reply := func(layers ...packet.SerializableLayer) {
		f, err := packet.Serialize(layers...)
		if err == nil {
			d.port.Send(f)
		}
	}
	switch {
	case p.ICMPv6 != nil && p.ICMPv6.Type == packet.ICMPv6TypeEchoRequest:
		reply(
			&packet.Ethernet{Dst: p.Ethernet.Src, Src: d.mac, Type: packet.EtherTypeIPv6},
			&packet.IPv6{NextHeader: packet.IPProtocolICMPv6, HopLimit: 64, Src: d.v6, Dst: p.IPv6.Src},
			&packet.ICMPv6{Type: packet.ICMPv6TypeEchoReply, Body: p.ICMPv6.Body, Src: d.v6, Dst: p.IPv6.Src})
	case p.TCP != nil && p.TCP.HasFlag(packet.TCPFlagSYN):
		open := d.openV4
		var ipL packet.SerializableLayer
		typ := packet.EtherTypeIPv4
		src := p.DstIP()
		if p.IsIPv6() {
			open = d.openV6
			ipL = &packet.IPv6{NextHeader: packet.IPProtocolTCP, Src: src, Dst: p.SrcIP()}
			typ = packet.EtherTypeIPv6
		} else {
			ipL = &packet.IPv4{Protocol: packet.IPProtocolTCP, Src: src, Dst: p.SrcIP()}
		}
		flags := packet.TCPFlagRST | packet.TCPFlagACK
		if open[p.TCP.DstPort] {
			flags = packet.TCPFlagSYN | packet.TCPFlagACK
		}
		reply(
			&packet.Ethernet{Dst: p.Ethernet.Src, Src: d.mac, Type: typ},
			ipL,
			&packet.TCP{SrcPort: p.TCP.DstPort, DstPort: p.TCP.SrcPort, Seq: 1, Ack: p.TCP.Seq + 1,
				Flags: flags, Src: src, Dst: p.SrcIP()})
	case p.UDP != nil && p.IsIPv6():
		if d.openV6[p.UDP.DstPort] {
			return // open|filtered: silence
		}
		body := append(make([]byte, 4), p.Ethernet.PayloadData...)
		reply(
			&packet.Ethernet{Dst: p.Ethernet.Src, Src: d.mac, Type: packet.EtherTypeIPv6},
			&packet.IPv6{NextHeader: packet.IPProtocolICMPv6, HopLimit: 64, Src: d.v6, Dst: p.IPv6.Src},
			&packet.ICMPv6{Type: packet.ICMPv6TypeDestUnreachable, Code: 4, Body: body, Src: d.v6, Dst: p.IPv6.Src})
	}
}

func setupScan(t *testing.T) (*netsim.Network, *Scanner, *fakeDevice) {
	t.Helper()
	n := netsim.NewNetwork(netsim.NewClock(time.Unix(1712000000, 0)))
	sc := New()
	sc.Attach(n)
	dev := &fakeDevice{
		mac:    packet.MAC{2, 1, 2, 3, 4, 5},
		v4:     netip.MustParseAddr("192.168.1.80"),
		v6:     addr.LinkLocalEUI64(packet.MAC{2, 1, 2, 3, 4, 5}),
		openV4: map[uint16]bool{80: true, 8080: true},
		openV6: map[uint16]bool{80: true, 37993: true},
	}
	dev.port = n.Attach(dev, dev.mac)
	return n, sc, dev
}

func TestDiscoverV6(t *testing.T) {
	n, sc, dev := setupScan(t)
	live, err := sc.DiscoverV6(n)
	if err != nil {
		t.Fatal(err)
	}
	if mac, ok := live[dev.v6]; !ok || mac != dev.mac {
		t.Fatalf("discovery: %v", live)
	}
}

func TestTCPScanBothFamilies(t *testing.T) {
	n, sc, dev := setupScan(t)
	ports := []uint16{22, 80, 8080, 37993}
	openV4, err := sc.TCPScan(n, dev.v4, dev.mac, ports)
	if err != nil {
		t.Fatal(err)
	}
	if len(openV4) != 2 || openV4[0] != 80 || openV4[1] != 8080 {
		t.Errorf("v4 open = %v", openV4)
	}
	openV6, err := sc.TCPScan(n, dev.v6, dev.mac, ports)
	if err != nil {
		t.Fatal(err)
	}
	if len(openV6) != 2 || openV6[0] != 80 || openV6[1] != 37993 {
		t.Errorf("v6 open = %v", openV6)
	}
}

func TestUDPScanSemantics(t *testing.T) {
	n, sc, dev := setupScan(t)
	got, err := sc.UDPScan(n, dev.v6, dev.mac, []uint16{53, 80})
	if err != nil {
		t.Fatal(err)
	}
	// 80 is open (silence => open|filtered); 53 closed => unreachable.
	if len(got) != 1 || got[0] != 80 {
		t.Errorf("udp open|filtered = %v", got)
	}
}

func TestScanEmptyNetwork(t *testing.T) {
	n := netsim.NewNetwork(netsim.NewClock(time.Unix(0, 0)))
	sc := New()
	sc.Attach(n)
	live, err := sc.DiscoverV6(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(live) != 0 {
		t.Errorf("found %v on empty network", live)
	}
	open, err := sc.TCPScan(n, netip.MustParseAddr("fe80::dead"), packet.MAC{2, 9, 9, 9, 9, 9}, []uint16{80})
	if err != nil {
		t.Fatal(err)
	}
	if len(open) != 0 {
		t.Errorf("open ports on absent host: %v", open)
	}
}
