// Package paper transcribes the published results of "IoT Bricks Over v6"
// (IMC 2024) that the reproduction targets: per-category feature counts,
// address and query inventories, destination statistics, and the privacy
// findings. The workload planner consumes these as generation targets and
// EXPERIMENTS.md compares them against what the pipeline measures.
//
// Category vectors are ordered as the paper's columns:
// [Appliance, Camera, TV/Ent., Gateway, Health, Home Auto, Speaker].
package paper

// NumCategories is the number of device categories.
const NumCategories = 7

// CategoryOrder mirrors the table column order.
var CategoryOrder = []string{"Appliance", "Camera", "TV/Ent.", "Gateway", "Health", "Home Auto", "Speaker"}

// Vec is a per-category count vector in CategoryOrder.
type Vec [NumCategories]int

// Total sums the vector.
func (v Vec) Total() int {
	t := 0
	for _, x := range v {
		t += x
	}
	return t
}

// DevicesPerCategory is Table 3 row 1 (93 devices).
var DevicesPerCategory = Vec{7, 18, 8, 12, 6, 26, 16}

// Table3 holds the IPv6-only feature funnel (Table 3 / Figure 2).
var Table3 = struct {
	NoIPv6, NDP, NDPNoAddr, Addr, GUA, AddrNoDNS,
	DNSAAAAReq, AAAAResp, DNSNoData, InternetData, DataNotFunc, Functional Vec
}{
	NoIPv6:       Vec{4, 13, 2, 1, 4, 10, 0},
	NDP:          Vec{3, 5, 6, 11, 2, 16, 16},
	NDPNoAddr:    Vec{1, 0, 0, 0, 2, 5, 0},
	Addr:         Vec{2, 5, 6, 11, 0, 11, 16},
	GUA:          Vec{1, 2, 6, 5, 0, 3, 10},
	AddrNoDNS:    Vec{1, 3, 0, 8, 0, 11, 6},
	DNSAAAAReq:   Vec{1, 2, 6, 3, 0, 0, 10},
	AAAAResp:     Vec{1, 2, 6, 0, 0, 0, 10},
	DNSNoData:    Vec{0, 0, 0, 3, 0, 0, 0},
	InternetData: Vec{1, 2, 5, 2, 0, 0, 9},
	DataNotFunc:  Vec{1, 2, 2, 2, 0, 0, 4},
	Functional:   Vec{0, 0, 3, 0, 0, 0, 5},
}

// Table5 holds the union (IPv6-only + dual-stack) feature support counts.
var Table5 = struct {
	Addr, StatefulDHCPv6, GUA, ULA, LLA, EUI64,
	DNSOverV6, AOnlyInV6, AAAAReq, V4OnlyAAAAReq, AAAAResp, AAAAReqNoRes, StatelessDHCPv6,
	V6Trans, InternetTrans, LocalTrans Vec
}{
	Addr:            Vec{2, 5, 6, 11, 1, 13, 16},
	StatefulDHCPv6:  Vec{1, 0, 2, 2, 0, 6, 1},
	GUA:             Vec{1, 2, 6, 5, 1, 4, 12},
	ULA:             Vec{1, 2, 2, 5, 1, 5, 7},
	LLA:             Vec{2, 5, 6, 10, 0, 11, 16},
	EUI64:           Vec{1, 2, 3, 7, 0, 8, 10},
	DNSOverV6:       Vec{1, 2, 6, 3, 0, 0, 10},
	AOnlyInV6:       Vec{1, 1, 5, 3, 0, 0, 9},
	AAAAReq:         Vec{1, 7, 7, 6, 0, 1, 15},
	V4OnlyAAAAReq:   Vec{1, 7, 5, 5, 0, 1, 14},
	AAAAResp:        Vec{1, 5, 7, 2, 0, 1, 15},
	AAAAReqNoRes:    Vec{1, 7, 6, 6, 0, 1, 13},
	StatelessDHCPv6: Vec{1, 0, 3, 3, 0, 6, 3},
	V6Trans:         Vec{1, 2, 6, 6, 0, 3, 11},
	InternetTrans:   Vec{1, 2, 6, 3, 0, 0, 11},
	LocalTrans:      Vec{1, 2, 5, 5, 0, 3, 5},
}

// Table6 holds the address and distinct-query-name inventories and the
// dual-stack IPv6 volume fractions.
var Table6 = struct {
	IPv6Addrs, GUAAddrs, ULAAddrs, LLAAddrs                   Vec
	AAAAReqNames, AOnlyV6Names, V4OnlyAAAANames, AAAAResNames Vec
	// V6VolumeFracPct is the percentage of Internet data volume carried
	// over IPv6 in dual-stack, per category, and in total.
	V6VolumeFracPct      [NumCategories]float64
	V6VolumeFracTotalPct float64
}{
	IPv6Addrs:            Vec{19, 105, 71, 150, 2, 23, 314},
	GUAAddrs:             Vec{12, 74, 55, 119, 1, 5, 190},
	ULAAddrs:             Vec{4, 26, 6, 20, 1, 7, 105},
	LLAAddrs:             Vec{3, 5, 10, 11, 0, 11, 19},
	AAAAReqNames:         Vec{52, 49, 390, 67, 0, 6, 511},
	AOnlyV6Names:         Vec{12, 1, 16, 13, 0, 0, 72},
	V4OnlyAAAANames:      Vec{4, 39, 141, 22, 0, 8, 120},
	AAAAResNames:         Vec{12, 26, 238, 5, 0, 1, 249},
	V6VolumeFracPct:      [NumCategories]float64{1.2, 3.3, 34.4, 0.0, 0.0, 0.0, 23.3},
	V6VolumeFracTotalPct: 22.0,
}

// Table7Category holds destination AAAA readiness by category.
// Functional rows cover only TV/Ent. and Speaker (the 8 functional
// devices); zero entries mean no functional devices in that category.
var Table7Category = struct {
	FuncDevices, FuncDomains, FuncAAAA          Vec
	NonFuncDevices, NonFuncDomains, NonFuncAAAA Vec
}{
	FuncDevices:    Vec{0, 0, 3, 0, 0, 0, 5},
	FuncDomains:    Vec{0, 0, 451, 0, 0, 0, 277},
	FuncAAAA:       Vec{0, 0, 338, 0, 0, 0, 195},
	NonFuncDevices: Vec{7, 18, 5, 12, 6, 26, 11},
	NonFuncDomains: Vec{75, 157, 318, 100, 8, 108, 578},
	NonFuncAAAA:    Vec{16, 44, 127, 17, 6, 23, 185},
}

// Table9 holds the destination IP-version statistics for dual-stack.
var Table9 = struct {
	V6Dest, V4Dest, TotalDest Vec
	V4PartialToV6, V4FullToV6 Vec
	V6PartialToV4, V6FullToV4 Vec
	V4OnlyWithAAAA            Vec
}{
	V6Dest:         Vec{10, 23, 426, 20, 0, 0, 290},
	V4Dest:         Vec{65, 268, 457, 77, 16, 121, 559},
	TotalDest:      Vec{72, 269, 789, 96, 16, 121, 720},
	V4PartialToV6:  Vec{1, 15, 29, 1, 0, 0, 78},
	V4FullToV6:     Vec{0, 0, 20, 0, 0, 0, 17},
	V6PartialToV4:  Vec{2, 7, 40, 0, 0, 0, 89},
	V6FullToV4:     Vec{0, 3, 15, 0, 0, 0, 8},
	V4OnlyWithAAAA: Vec{0, 1, 18, 0, 0, 0, 13},
}

// EUI64 holds the Figure 5 privacy funnel and domain-party splits.
var EUI64 = struct {
	// Funnel: devices assigning GUA EUI-64 addresses, using them, using
	// them for DNS, and for Internet data. The paper's §5.4.1 narrative
	// (18 assign-but-never-use + 15 use = 33) conflicts with Table 5's 31
	// EUI-64 devices; we target the usage side of the funnel exactly.
	Use, DNS, Data int
	// DataDomains: domains contacted by the 5 data devices (24 first, 1
	// third, 2 support = 27).
	DataDomains, DataFirst, DataThird, DataSupport int
	// DNSDomains: names queried by the 3 DNS-only Samsung devices.
	DNSDomains, DNSFirst, DNSThird, DNSSupport int
}{
	Use: 15, DNS: 8, Data: 5,
	DataDomains: 27, DataFirst: 24, DataThird: 1, DataSupport: 2,
	DNSDomains: 30, DNSFirst: 20, DNSThird: 8, DNSSupport: 2,
}

// DAD holds the §5.2.1 duplicate-address-detection audit findings.
var DAD = struct {
	DevicesSkipping                 int // devices skipping DAD for ≥1 address
	GUAsNoDAD, ULAsNoDAD, LLAsNoDAD int
	DevicesNeverDAD                 int // fully non-compliant devices
}{
	DevicesSkipping: 18, GUAsNoDAD: 20, ULAsNoDAD: 7, LLAsNoDAD: 8,
	DevicesNeverDAD: 4,
}

// PortScan holds the §5.4.2 findings.
var PortScan = struct {
	DevicesWithV4OnlyPorts int
	FridgeV6OnlyPorts      []uint16
}{
	DevicesWithV4OnlyPorts: 6,
	FridgeV6OnlyPorts:      []uint16{37993, 46525, 46757},
}

// Tracking holds the §5.4.3 findings for the 8 functional devices.
var Tracking = struct {
	V4OnlyDomains, V4OnlySLDs, ThirdPartySLDs int
}{V4OnlyDomains: 129, V4OnlySLDs: 31, ThirdPartySLDs: 13}

// Headline percentages from the abstract, for README-level checks.
var Headline = struct {
	PctV6Traffic, PctAssignAddr, PctAAAAInV6, PctInternetV6, PctFunctional, PctEUI64 float64
}{63.4, 53.8, 23.7, 20.4, 8.6, 16.1}
