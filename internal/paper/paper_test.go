package paper

import "testing"

func TestVecTotal(t *testing.T) {
	cases := []struct {
		name string
		v    Vec
		want int
	}{
		{"zero", Vec{}, 0},
		{"ones", Vec{1, 1, 1, 1, 1, 1, 1}, 7},
		{"devices", DevicesPerCategory, 93},
		{"functional", Table3.Functional, 8},
	}
	for _, c := range cases {
		if got := c.v.Total(); got != c.want {
			t.Errorf("%s: Total() = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestCategoryOrderMatchesNumCategories(t *testing.T) {
	if len(CategoryOrder) != NumCategories {
		t.Fatalf("len(CategoryOrder) = %d, want %d", len(CategoryOrder), NumCategories)
	}
	seen := map[string]bool{}
	for _, c := range CategoryOrder {
		if c == "" || seen[c] {
			t.Errorf("category %q empty or duplicated", c)
		}
		seen[c] = true
	}
}

// TestTable3Funnel checks internal consistency of the IPv6-only feature
// funnel: every stage is a subset of the devices, and the paper's headline
// counts fall out of the vectors.
func TestTable3Funnel(t *testing.T) {
	for name, v := range map[string]Vec{
		"NoIPv6": Table3.NoIPv6, "NDP": Table3.NDP, "Addr": Table3.Addr,
		"GUA": Table3.GUA, "InternetData": Table3.InternetData,
		"Functional": Table3.Functional,
	} {
		for i, x := range v {
			if x < 0 || x > DevicesPerCategory[i] {
				t.Errorf("Table3.%s[%s] = %d outside [0, %d]",
					name, CategoryOrder[i], x, DevicesPerCategory[i])
			}
		}
	}
	if Table3.Functional.Total() != 8 {
		t.Errorf("functional devices = %d, want 8", Table3.Functional.Total())
	}
	// The funnel narrows: NDP ≥ Addr ≥ GUA per category is not guaranteed
	// column-wise in the paper (ULA-only devices), but Functional ⊆
	// InternetData always holds.
	for i := range Table3.Functional {
		if Table3.Functional[i] > Table3.InternetData[i] {
			t.Errorf("%s: functional %d > internet-data %d",
				CategoryOrder[i], Table3.Functional[i], Table3.InternetData[i])
		}
	}
}

func TestHeadlinePercentagesMatchVectors(t *testing.T) {
	devices := float64(DevicesPerCategory.Total())
	pct := func(v Vec) float64 { return float64(v.Total()) / devices * 100 }
	cases := []struct {
		name string
		got  float64
		want float64
	}{
		{"functional", pct(Table3.Functional), Headline.PctFunctional},
	}
	for _, c := range cases {
		if diff := c.got - c.want; diff > 0.1 || diff < -0.1 {
			t.Errorf("%s: %.1f%%, headline says %.1f%%", c.name, c.got, c.want)
		}
	}
}

func TestPortScanFridgePorts(t *testing.T) {
	want := []uint16{37993, 46525, 46757}
	if len(PortScan.FridgeV6OnlyPorts) != len(want) {
		t.Fatalf("fridge ports = %v, want %v", PortScan.FridgeV6OnlyPorts, want)
	}
	for i, p := range want {
		if PortScan.FridgeV6OnlyPorts[i] != p {
			t.Fatalf("fridge ports = %v, want %v", PortScan.FridgeV6OnlyPorts, want)
		}
	}
	// Ports must be sorted: the scan report and pinhole generator rely on it.
	for i := 1; i < len(PortScan.FridgeV6OnlyPorts); i++ {
		if PortScan.FridgeV6OnlyPorts[i-1] >= PortScan.FridgeV6OnlyPorts[i] {
			t.Errorf("fridge ports not strictly ascending: %v", PortScan.FridgeV6OnlyPorts)
		}
	}
}

func TestDADCountsConsistent(t *testing.T) {
	if DAD.DevicesNeverDAD > DAD.DevicesSkipping {
		t.Errorf("never-DAD devices (%d) exceed devices skipping DAD (%d)",
			DAD.DevicesNeverDAD, DAD.DevicesSkipping)
	}
	if DAD.GUAsNoDAD+DAD.ULAsNoDAD+DAD.LLAsNoDAD < DAD.DevicesSkipping {
		t.Errorf("fewer DAD-skipped addresses (%d) than skipping devices (%d)",
			DAD.GUAsNoDAD+DAD.ULAsNoDAD+DAD.LLAsNoDAD, DAD.DevicesSkipping)
	}
}
