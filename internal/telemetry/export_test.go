package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite exporter golden files")

// goldenRegistry builds a small, fully deterministic registry exercising
// every metric kind.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("netsim", "frames_switched_total", "Frames delivered by the L2 switch.").Add(1234)
	r.Counter("netsim", "frames_dropped_total", "Frames dropped by impairment verdicts.").Add(7)
	r.Gauge("fleet", "homes_planned", "Homes scheduled for this fleet run.").Set(50)
	h := r.Histogram("netsim", "frame_bytes", "Per-frame sizes in bytes.", []uint64{128, 512, 1500})
	for _, v := range []uint64{60, 60, 400, 1300, 9000} {
		h.Observe(v)
	}
	v := r.CounterVec("cloud", "queries_total", "DNS queries by record type.", "type")
	v.With("A").Add(42)
	v.With("AAAA").Add(17)
	return r
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestJSONGolden(t *testing.T) {
	snap := goldenRegistry().Snapshot(time.Date(2024, 3, 1, 9, 0, 42, 0, time.UTC))
	blob, err := snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "snapshot.json", blob)
}

func TestPrometheusGolden(t *testing.T) {
	snap := goldenRegistry().Snapshot(time.Date(2024, 3, 1, 9, 0, 42, 0, time.UTC))
	checkGolden(t, "snapshot.prom", snap.Prometheus())
}
