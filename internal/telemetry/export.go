package telemetry

import (
	"encoding/json"
	"fmt"
	"strings"
)

// MarshalJSON-adjacent helpers live here so exporter formats stay in one
// file and the core stays dependency-free (encoding/json is stdlib).

// JSON renders the snapshot as indented JSON terminated by a newline —
// the bytes written to the `telemetry.json` artifact. Marshalling a
// Snapshot is deterministic because its points are pre-sorted and its
// timestamp is simulated time.
func (s Snapshot) JSON() ([]byte, error) {
	blob, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(blob, '\n'), nil
}

// Prometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4), with every metric prefixed "v6lab_". Points
// sharing a name (counter-vector children) are grouped under one
// HELP/TYPE header; histograms expand into cumulative _bucket series
// plus _sum and _count.
func (s Snapshot) Prometheus() []byte {
	var b strings.Builder
	seen := "" // last name a header was written for
	for _, p := range s.Points {
		name := "v6lab_" + p.Name
		if p.Name != seen {
			seen = p.Name
			if p.Help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", name, p.Help)
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", name, p.Kind)
		}
		switch p.Kind {
		case "histogram":
			for _, bk := range p.Buckets {
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", name, bk.LE, bk.Count)
			}
			fmt.Fprintf(&b, "%s_sum %d\n", name, p.Sum)
			fmt.Fprintf(&b, "%s_count %d\n", name, p.Value)
		default:
			if p.Label != "" {
				fmt.Fprintf(&b, "%s{%s=%q} %d\n", name, p.Label, p.LabelValue, p.Value)
			} else {
				fmt.Fprintf(&b, "%s %d\n", name, p.Value)
			}
		}
	}
	return []byte(b.String())
}
