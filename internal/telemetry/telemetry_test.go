package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// simEpoch mirrors the simulator's fixed start instant.
var simEpoch = time.Date(2024, 3, 1, 9, 0, 0, 0, time.UTC)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("netsim", "frames_total", "frames switched")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter value = %d, want 5", got)
	}
	if again := r.Counter("netsim", "frames_total", "frames switched"); again != c {
		t.Fatal("re-registration returned a different counter")
	}

	g := r.Gauge("fleet", "homes", "planned homes")
	g.Set(50)
	g.Add(-8)
	if got := g.Value(); got != 42 {
		t.Fatalf("gauge value = %d, want 42", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("netsim", "frame_bytes", "frame sizes", []uint64{64, 512, 1500})
	for _, v := range []uint64{10, 64, 65, 512, 1500, 9000} {
		h.Observe(v)
	}
	if got := h.Count(); got != 6 {
		t.Fatalf("count = %d, want 6", got)
	}
	if got := h.Sum(); got != 10+64+65+512+1500+9000 {
		t.Fatalf("sum = %d", got)
	}
	snap := r.Snapshot(simEpoch)
	if len(snap.Points) != 1 {
		t.Fatalf("points = %d, want 1", len(snap.Points))
	}
	p := snap.Points[0]
	want := []Bucket{{"64", 2}, {"512", 4}, {"1500", 5}, {"+Inf", 6}}
	if len(p.Buckets) != len(want) {
		t.Fatalf("buckets = %v", p.Buckets)
	}
	for i, b := range want {
		if p.Buckets[i] != b {
			t.Fatalf("bucket %d = %+v, want %+v", i, p.Buckets[i], b)
		}
	}
}

func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("cloud", "queries_total", "DNS queries by type", "type")
	v.With("A").Add(3)
	v.With("AAAA").Add(7)
	if v.With("A") != v.With("A") {
		t.Fatal("With returned different children for the same label")
	}
	snap := r.Snapshot(simEpoch)
	if len(snap.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(snap.Points))
	}
	// Sorted by label value: A before AAAA.
	if snap.Points[0].LabelValue != "A" || snap.Points[0].Value != 3 {
		t.Fatalf("point 0 = %+v", snap.Points[0])
	}
	if snap.Points[1].LabelValue != "AAAA" || snap.Points[1].Value != 7 {
		t.Fatalf("point 1 = %+v", snap.Points[1])
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("a", "b", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("a", "b", "")
}

// TestConcurrentAdditionsCommute is the determinism contract in
// miniature: the same additions distributed over any number of
// goroutines produce the same snapshot bytes.
func TestConcurrentAdditionsCommute(t *testing.T) {
	build := func(workers int) []byte {
		r := NewRegistry()
		c := r.Counter("s", "n_total", "")
		h := r.Histogram("s", "sizes", "", []uint64{100, 1000})
		var wg sync.WaitGroup
		per := 1200 / workers
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					c.Inc()
					h.Observe(uint64((w*per + i) % 1500))
				}
			}(w)
		}
		wg.Wait()
		blob, err := r.Snapshot(simEpoch).JSON()
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	serial := build(1)
	for _, workers := range []int{2, 6} {
		if got := build(workers); !bytes.Equal(got, serial) {
			t.Fatalf("snapshot with %d workers differs from serial:\n%s\nvs\n%s", workers, got, serial)
		}
	}
}

func TestWriterSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewWriterSink(&buf)
	s.Emit(Event{Scope: "experiment", ID: "v4-only", Detail: "ok", Elapsed: 3 * time.Second})
	s.Emit(Event{Scope: "fleet", ID: "home 2/5", Elapsed: time.Second})
	want := "[experiment] v4-only: ok (sim 3s)\n[fleet] home 2/5 (sim 1s)\n"
	if buf.String() != want {
		t.Fatalf("sink output:\n%q\nwant:\n%q", buf.String(), want)
	}
}

func TestFuncSinkAndNilEmit(t *testing.T) {
	var got []Event
	Emit(FuncSink(func(ev Event) { got = append(got, ev) }), Event{ID: "x"})
	Emit(nil, Event{ID: "dropped"}) // must not panic
	if len(got) != 1 || got[0].ID != "x" {
		t.Fatalf("events = %+v", got)
	}
}

func TestSnapshotSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("z", "last", "")
	r.Counter("a", "first", "")
	r.Gauge("m", "middle", "")
	snap := r.Snapshot(simEpoch)
	var names []string
	for _, p := range snap.Points {
		names = append(names, p.Name)
	}
	if strings.Join(names, ",") != "a_first,m_middle,z_last" {
		t.Fatalf("snapshot order = %v", names)
	}
}
