// Package telemetry is the testbed's zero-dependency, deterministic
// metrics and event layer: counters, gauges, and fixed-bucket histograms
// registered per subsystem on a Registry, snapshotted into byte-stable
// JSON and Prometheus text exports, plus a streaming progress sink for
// long runs.
//
// Determinism is the design constraint everything else bends around. The
// simulator guarantees byte-identical output for any worker count, and the
// metrics layer must not be the one thing that breaks that promise, so:
//
//   - Counters and histogram buckets are atomic and strictly additive.
//     Atomic additions commute, so the final value of every counter is
//     independent of the order concurrent workers incremented it in — a
//     snapshot taken after a run is identical for 1 worker or 6.
//   - Gauges are last-write-wins and therefore NOT order-independent;
//     they must only be set from single-threaded, deterministic code
//     (configuration values, population sizes), never from worker
//     goroutines racing each other.
//   - Snapshots are timestamped with the simulated clock the caller
//     passes (netsim.Clock time), never wall time, and their points are
//     sorted by (name, label value), so the exported bytes depend only on
//     the run's inputs.
//
// The hot path is allocation-free: a Counter is one atomic word, a
// Histogram's buckets are preallocated at registration, and Observe does
// a bounded linear scan over the (few) bucket bounds. Registration and
// vector-label lookup take a mutex and may allocate; they belong in
// setup and fold code, not per-frame code.
package telemetry

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a last-write-wins instantaneous value. Unlike counters, gauge
// writes do not commute: set gauges only from single-threaded,
// deterministic code (see the package comment).
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts integer observations into fixed buckets chosen at
// registration. Buckets are preallocated and updates are atomic adds, so
// Observe is allocation-free and safe (and order-independent) under
// concurrent use.
type Histogram struct {
	// bounds are inclusive upper bounds, ascending; an implicit +Inf
	// bucket follows the last bound.
	bounds []uint64
	counts []atomic.Uint64 // len(bounds)+1
	sum    atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// kind discriminates registry entries.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
	kindCounterVec
)

func (k kind) String() string {
	switch k {
	case kindCounter, kindCounterVec:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// entry is one registered metric.
type entry struct {
	subsystem, name, help string
	kind                  kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram

	// Vector state: one child counter per label value.
	labelKey string
	children map[string]*Counter
}

// fullName is the qualified metric name ("netsim_frames_switched_total").
func (e *entry) fullName() string { return e.subsystem + "_" + e.name }

// CounterVec is a family of counters keyed by one label (a failure stage,
// a DNS query type, a Table 2 config ID). Label lookup takes a mutex; hot
// paths should cache the child counter With returns.
type CounterVec struct {
	mu sync.Mutex
	e  *entry
}

// With returns the child counter for the given label value, creating it
// on first use.
func (v *CounterVec) With(labelValue string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.e.children[labelValue]
	if !ok {
		c = &Counter{}
		v.e.children[labelValue] = c
	}
	return c
}

// Registry holds every registered metric for one run. Registration is
// idempotent: re-registering a name returns the existing metric, so
// independent studies (fleet homes, resilience profiles, parallel
// experiment environments) sharing a registry accumulate into the same
// counters. Registering an existing name as a different kind panics —
// that is a programming error, not a runtime condition.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]*entry
	entries []*entry
	vecs    map[string]*CounterVec
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*entry), vecs: make(map[string]*CounterVec)}
}

// lookup finds or creates an entry, enforcing kind consistency.
func (r *Registry) lookup(subsystem, name, help string, k kind) *entry {
	full := subsystem + "_" + name
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byName[full]; ok {
		if e.kind != k {
			panic(fmt.Sprintf("telemetry: %s re-registered as %s (was %s)", full, k, e.kind))
		}
		return e
	}
	e := &entry{subsystem: subsystem, name: name, help: help, kind: k}
	r.byName[full] = e
	r.entries = append(r.entries, e)
	return e
}

// Counter registers (or returns the existing) counter subsystem_name.
func (r *Registry) Counter(subsystem, name, help string) *Counter {
	e := r.lookup(subsystem, name, help, kindCounter)
	if e.counter == nil {
		e.counter = &Counter{}
	}
	return e.counter
}

// Gauge registers (or returns the existing) gauge subsystem_name.
func (r *Registry) Gauge(subsystem, name, help string) *Gauge {
	e := r.lookup(subsystem, name, help, kindGauge)
	if e.gauge == nil {
		e.gauge = &Gauge{}
	}
	return e.gauge
}

// Histogram registers (or returns the existing) histogram subsystem_name
// with the given inclusive upper bucket bounds (ascending; a +Inf bucket
// is implicit). Re-registration ignores bounds and returns the existing
// histogram.
func (r *Registry) Histogram(subsystem, name, help string, bounds []uint64) *Histogram {
	e := r.lookup(subsystem, name, help, kindHistogram)
	if e.hist == nil {
		h := &Histogram{bounds: append([]uint64(nil), bounds...)}
		h.counts = make([]atomic.Uint64, len(h.bounds)+1)
		e.hist = h
	}
	return e.hist
}

// CounterVec registers (or returns the existing) one-label counter family
// subsystem_name, with labelKey as the label name.
func (r *Registry) CounterVec(subsystem, name, help, labelKey string) *CounterVec {
	e := r.lookup(subsystem, name, help, kindCounterVec)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e.children == nil {
		e.labelKey = labelKey
		e.children = make(map[string]*Counter)
	}
	v, ok := r.vecs[e.fullName()]
	if !ok {
		v = &CounterVec{e: e}
		r.vecs[e.fullName()] = v
	}
	return v
}

// Bucket is one cumulative histogram bucket in a snapshot. LE is the
// inclusive upper bound rendered as a decimal string, "+Inf" for the
// overflow bucket; Count is cumulative (Prometheus convention).
type Bucket struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

// Point is one metric sample in a snapshot. For histograms, Value holds
// the observation count and Sum the observation total; for counters and
// gauges, Value holds the value and the histogram fields are empty.
type Point struct {
	Name       string   `json:"name"`
	Kind       string   `json:"kind"`
	Help       string   `json:"help,omitempty"`
	Label      string   `json:"label,omitempty"`
	LabelValue string   `json:"label_value,omitempty"`
	Value      int64    `json:"value"`
	Sum        uint64   `json:"sum,omitempty"`
	Buckets    []Bucket `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time view of every registered metric, sorted by
// (name, label value). SimTime is the simulated clock's instant — never
// wall time — so two runs with the same inputs export identical bytes.
type Snapshot struct {
	SimTime time.Time `json:"sim_time"`
	Points  []Point   `json:"metrics"`
}

// Snapshot captures every metric at the given simulated instant.
func (r *Registry) Snapshot(simTime time.Time) Snapshot {
	r.mu.Lock()
	entries := append([]*entry(nil), r.entries...)
	r.mu.Unlock()

	s := Snapshot{SimTime: simTime.UTC()}
	for _, e := range entries {
		switch e.kind {
		case kindCounter:
			s.Points = append(s.Points, Point{
				Name: e.fullName(), Kind: "counter", Help: e.help,
				Value: int64(e.counter.Value()),
			})
		case kindGauge:
			s.Points = append(s.Points, Point{
				Name: e.fullName(), Kind: "gauge", Help: e.help,
				Value: e.gauge.Value(),
			})
		case kindHistogram:
			h := e.hist
			p := Point{Name: e.fullName(), Kind: "histogram", Help: e.help}
			var cum uint64
			for i := range h.counts {
				cum += h.counts[i].Load()
				le := "+Inf"
				if i < len(h.bounds) {
					le = strconv.FormatUint(h.bounds[i], 10)
				}
				p.Buckets = append(p.Buckets, Bucket{LE: le, Count: cum})
			}
			p.Value = int64(cum)
			p.Sum = h.Sum()
			s.Points = append(s.Points, p)
		case kindCounterVec:
			// Lock order: the vec mutex guards children; take it via the
			// registry's vec handle.
			r.mu.Lock()
			v := r.vecs[e.fullName()]
			r.mu.Unlock()
			v.mu.Lock()
			vals := make([]string, 0, len(e.children))
			for lv := range e.children {
				vals = append(vals, lv)
			}
			sort.Strings(vals)
			for _, lv := range vals {
				s.Points = append(s.Points, Point{
					Name: e.fullName(), Kind: "counter", Help: e.help,
					Label: e.labelKey, LabelValue: lv,
					Value: int64(e.children[lv].Value()),
				})
			}
			v.mu.Unlock()
		}
	}
	sort.Slice(s.Points, func(i, j int) bool {
		if s.Points[i].Name != s.Points[j].Name {
			return s.Points[i].Name < s.Points[j].Name
		}
		return s.Points[i].LabelValue < s.Points[j].LabelValue
	})
	return s
}
