package telemetry

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Event is one progress notification from a running study or fleet:
// an experiment finished, a home completed, a resilience profile was
// evaluated. Elapsed is simulated time consumed by the unit of work,
// never wall time.
//
// Events are a live stream ordered by completion, which under a parallel
// engine depends on goroutine scheduling. That is deliberate: progress is
// for watching a run, not for comparing runs, so events are excluded from
// the deterministic Snapshot.
type Event struct {
	// Scope is the emitting subsystem: "experiment", "fleet", "firewall",
	// or "resilience".
	Scope string
	// ID names the completed unit: a Table 2 config ID, "home 17/50", a
	// profile name, a firewall policy.
	ID string
	// Detail is an optional human-readable outcome summary.
	Detail string
	// Elapsed is the simulated time the unit consumed.
	Elapsed time.Duration
}

// Sink receives progress events. Implementations must be safe for
// concurrent use: parallel engines emit from worker goroutines.
type Sink interface {
	Emit(Event)
}

// WriterSink streams events to an io.Writer (typically stderr) as
// single-line messages, serialised by a mutex so concurrent emitters
// never interleave partial lines.
type WriterSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewWriterSink wraps w in a line-per-event sink.
func NewWriterSink(w io.Writer) *WriterSink { return &WriterSink{w: w} }

// Emit writes one formatted progress line.
func (s *WriterSink) Emit(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ev.Detail != "" {
		fmt.Fprintf(s.w, "[%s] %s: %s (sim %v)\n", ev.Scope, ev.ID, ev.Detail, ev.Elapsed)
	} else {
		fmt.Fprintf(s.w, "[%s] %s (sim %v)\n", ev.Scope, ev.ID, ev.Elapsed)
	}
}

// FuncSink adapts a function to the Sink interface. The function must be
// safe for concurrent calls.
type FuncSink func(Event)

// Emit calls the wrapped function.
func (f FuncSink) Emit(ev Event) { f(ev) }

// Emit sends ev to sink if it is non-nil; instrumented code can call it
// unconditionally.
func Emit(sink Sink, ev Event) {
	if sink != nil {
		sink.Emit(ev)
	}
}
