// Package world builds the immutable half of a simulation: the device
// population, its workload plans, the cloud primed with every planned
// destination domain, and the MAC-to-device index. A World is constructed
// once per study, fleet subset, or campaign home and then shared read-only
// across workers, runs, and rebuilds — the per-run mutable state (stacks,
// switches, clocks, captures) lives in the experiment package's pooled
// environments instead.
//
// Immutability contract: nothing in a World may be written after Build
// returns while any study over it is live. The ablation lab
// (v6lab.NewWithOptions) is the one sanctioned writer — it mutates
// profiles and the cloud registry on a World it just built privately,
// before any run starts.
package world

import (
	"v6lab/internal/cloud"
	"v6lab/internal/device"
	"v6lab/internal/packet"
	"v6lab/internal/router"
)

// World is the shared immutable input of a simulation run.
type World struct {
	// Profiles is the device population, in stack index order.
	Profiles []*device.Profile
	// Plans holds each device's workload plan, parallel to Profiles.
	Plans []*device.Plan
	// Cloud is the master simulated Internet, primed with every planned
	// destination. Studies over a shared World serve traffic through
	// Clones of it (private query counters, shared registry).
	Cloud *cloud.Cloud
	// MACToDevice resolves capture frames back to device identities.
	MACToDevice map[packet.MAC]*device.Profile
	// Prefixes are the LAN's GUA and ULA prefixes.
	Prefixes device.NetPrefixes
}

// Build constructs a World for the given device population; nil means the
// full registry. The construction order (plans, then domains in plan
// order) is the byte-identity anchor: cloud endpoint addresses are
// allocated in AddDomain call order, so Build must visit specs exactly
// the way study construction always has.
func Build(profiles []*device.Profile) *World {
	if profiles == nil {
		profiles = device.Registry()
	}
	plans := device.BuildPlans(profiles)
	cl := cloud.New()
	for _, pl := range plans {
		for _, sp := range pl.Specs {
			cl.AddDomain(sp.Name, sp.Party, sp.HasAAAA, sp.Tracker)
		}
	}
	m := make(map[packet.MAC]*device.Profile, len(profiles))
	for i, p := range profiles {
		m[device.MACFor(p, i)] = p
	}
	return &World{
		Profiles:    profiles,
		Plans:       plans,
		Cloud:       cl,
		MACToDevice: m,
		Prefixes:    device.NetPrefixes{GUA: router.GUAPrefix, ULA: router.ULAPrefix},
	}
}
