// Package dnsmsg implements the DNS wire format (RFC 1035) for the record
// types the study observes: A, AAAA (RFC 3596), CNAME, SOA, PTR, TXT, and
// the HTTPS/SVCB types (RFC 9460) that Apple and Android devices query.
// Name compression is honored on decode; encoding is uncompressed.
package dnsmsg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"strings"
)

// Type is a DNS RR type.
type Type uint16

// The RR types the testbed uses.
const (
	TypeA     Type = 1
	TypeCNAME Type = 5
	TypeSOA   Type = 6
	TypePTR   Type = 12
	TypeTXT   Type = 16
	TypeAAAA  Type = 28
	TypeSRV   Type = 33
	TypeSVCB  Type = 64
	TypeHTTPS Type = 65
)

// String names the RR type.
func (t Type) String() string {
	switch t {
	case TypeA:
		return "A"
	case TypeCNAME:
		return "CNAME"
	case TypeSOA:
		return "SOA"
	case TypePTR:
		return "PTR"
	case TypeTXT:
		return "TXT"
	case TypeAAAA:
		return "AAAA"
	case TypeSRV:
		return "SRV"
	case TypeSVCB:
		return "SVCB"
	case TypeHTTPS:
		return "HTTPS"
	}
	return fmt.Sprintf("TYPE%d", uint16(t))
}

// RCode is a DNS response code.
type RCode uint8

// Response codes used by the simulated resolver.
const (
	RCodeSuccess  RCode = 0
	RCodeFormErr  RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
	RCodeRefused  RCode = 5
)

// String names the response code as dig does.
func (r RCode) String() string {
	switch r {
	case RCodeSuccess:
		return "NOERROR"
	case RCodeFormErr:
		return "FORMERR"
	case RCodeServFail:
		return "SERVFAIL"
	case RCodeNXDomain:
		return "NXDOMAIN"
	case RCodeRefused:
		return "REFUSED"
	}
	return fmt.Sprintf("RCODE%d", uint8(r))
}

// ClassIN is the only class the testbed uses.
const ClassIN uint16 = 1

// Question is a DNS question section entry.
type Question struct {
	Name string
	Type Type
}

// Record is a resource record. Exactly one of the typed payload fields is
// meaningful, selected by Type.
type Record struct {
	Name string
	Type Type
	TTL  uint32

	// Addr holds the address for A and AAAA records.
	Addr netip.Addr
	// Target holds the name for CNAME/PTR, the MNAME for SOA, and the
	// TargetName for SVCB/HTTPS.
	Target string
	// Text holds TXT strings.
	Text []string
	// Priority holds the SvcPriority for SVCB/HTTPS and the priority for
	// SRV records.
	Priority uint16
	// Port holds the SRV service port.
	Port uint16
}

// Message is a DNS message.
type Message struct {
	ID                 uint16
	Response           bool
	RecursionDesired   bool
	RecursionAvailable bool
	Authoritative      bool
	RCode              RCode
	Questions          []Question
	Answers            []Record
	Authority          []Record
	Additional         []Record
}

// errors returned by the decoder.
var (
	ErrTruncatedMsg = errors.New("dnsmsg: truncated message")
	ErrBadName      = errors.New("dnsmsg: malformed name")
)

// NewQuery builds a standard recursive query for one question.
func NewQuery(id uint16, name string, qtype Type) *Message {
	return &Message{ID: id, RecursionDesired: true, Questions: []Question{{Name: name, Type: qtype}}}
}

// Reply builds a response skeleton mirroring the query's ID and question.
func (m *Message) Reply(rcode RCode) *Message {
	r := &Message{
		ID: m.ID, Response: true, RecursionDesired: m.RecursionDesired,
		RecursionAvailable: true, RCode: rcode,
	}
	r.Questions = append(r.Questions, m.Questions...)
	return r
}

// appendNameCompressed encodes a domain name, emitting a compression
// pointer for any suffix already present in the message (tracked in
// offsets). Only owner names use compression; rdata names stay literal,
// which keeps types whose rdata must not be compressed (SRV, SVCB) safe.
func appendNameCompressed(b []byte, name string, offsets map[string]int) ([]byte, error) {
	name = strings.TrimSuffix(name, ".")
	if name == "" {
		return append(b, 0), nil
	}
	labels := strings.Split(name, ".")
	for i := range labels {
		suffix := strings.Join(labels[i:], ".")
		if off, ok := offsets[suffix]; ok && off < 0x4000 {
			return append(b, 0xc0|byte(off>>8), byte(off)), nil
		}
		if len(b) < 0x4000 {
			offsets[suffix] = len(b)
		}
		label := labels[i]
		if len(label) == 0 || len(label) > 63 {
			return nil, fmt.Errorf("%w: label %q", ErrBadName, label)
		}
		b = append(b, byte(len(label)))
		b = append(b, label...)
	}
	return append(b, 0), nil
}

// appendName encodes a domain name without compression.
func appendName(b []byte, name string) ([]byte, error) {
	name = strings.TrimSuffix(name, ".")
	if name != "" {
		for _, label := range strings.Split(name, ".") {
			if len(label) == 0 || len(label) > 63 {
				return nil, fmt.Errorf("%w: label %q", ErrBadName, label)
			}
			b = append(b, byte(len(label)))
			b = append(b, label...)
		}
	}
	return append(b, 0), nil
}

// parseName decodes a possibly compressed name starting at off, returning
// the name and the offset just past its in-place encoding.
func parseName(msg []byte, off int) (string, int, error) {
	var sb strings.Builder
	jumped := false
	next := 0
	for hops := 0; ; hops++ {
		if hops > 127 {
			return "", 0, fmt.Errorf("%w: pointer loop", ErrBadName)
		}
		if off >= len(msg) {
			return "", 0, ErrTruncatedMsg
		}
		l := int(msg[off])
		switch {
		case l == 0:
			if !jumped {
				next = off + 1
			}
			name := sb.String()
			if name == "" {
				name = "."
			}
			return name, next, nil
		case l&0xc0 == 0xc0:
			if off+1 >= len(msg) {
				return "", 0, ErrTruncatedMsg
			}
			ptr := (l&0x3f)<<8 | int(msg[off+1])
			if !jumped {
				next = off + 2
				jumped = true
			}
			if ptr >= off {
				return "", 0, fmt.Errorf("%w: forward pointer", ErrBadName)
			}
			off = ptr
		case l&0xc0 != 0:
			return "", 0, fmt.Errorf("%w: reserved label type", ErrBadName)
		default:
			if off+1+l > len(msg) {
				return "", 0, ErrTruncatedMsg
			}
			if sb.Len() > 0 {
				sb.WriteByte('.')
			}
			sb.Write(msg[off+1 : off+1+l])
			off += 1 + l
		}
	}
}

// Pack serializes the message.
func (m *Message) Pack() ([]byte, error) {
	b := make([]byte, 12, 128)
	binary.BigEndian.PutUint16(b[0:2], m.ID)
	var flags uint16
	if m.Response {
		flags |= 1 << 15
	}
	if m.Authoritative {
		flags |= 1 << 10
	}
	if m.RecursionDesired {
		flags |= 1 << 8
	}
	if m.RecursionAvailable {
		flags |= 1 << 7
	}
	flags |= uint16(m.RCode) & 0x0f
	binary.BigEndian.PutUint16(b[2:4], flags)
	binary.BigEndian.PutUint16(b[4:6], uint16(len(m.Questions)))
	binary.BigEndian.PutUint16(b[6:8], uint16(len(m.Answers)))
	binary.BigEndian.PutUint16(b[8:10], uint16(len(m.Authority)))
	binary.BigEndian.PutUint16(b[10:12], uint16(len(m.Additional)))
	var err error
	offsets := map[string]int{}
	for _, q := range m.Questions {
		if b, err = appendNameCompressed(b, q.Name, offsets); err != nil {
			return nil, err
		}
		b = binary.BigEndian.AppendUint16(b, uint16(q.Type))
		b = binary.BigEndian.AppendUint16(b, ClassIN)
	}
	for _, sec := range [][]Record{m.Answers, m.Authority, m.Additional} {
		for _, rr := range sec {
			if b, err = appendRecord(b, rr, offsets); err != nil {
				return nil, err
			}
		}
	}
	return b, nil
}

func appendRecord(b []byte, rr Record, offsets map[string]int) ([]byte, error) {
	var err error
	if b, err = appendNameCompressed(b, rr.Name, offsets); err != nil {
		return nil, err
	}
	b = binary.BigEndian.AppendUint16(b, uint16(rr.Type))
	b = binary.BigEndian.AppendUint16(b, ClassIN)
	b = binary.BigEndian.AppendUint32(b, rr.TTL)
	var rdata []byte
	switch rr.Type {
	case TypeA:
		if !rr.Addr.Is4() {
			return nil, fmt.Errorf("dnsmsg: A record for %s needs IPv4, have %v", rr.Name, rr.Addr)
		}
		a4 := rr.Addr.As4()
		rdata = a4[:]
	case TypeAAAA:
		if !rr.Addr.Is6() || rr.Addr.Is4In6() {
			return nil, fmt.Errorf("dnsmsg: AAAA record for %s needs IPv6, have %v", rr.Name, rr.Addr)
		}
		a16 := rr.Addr.As16()
		rdata = a16[:]
	case TypeCNAME, TypePTR:
		if rdata, err = appendName(nil, rr.Target); err != nil {
			return nil, err
		}
	case TypeSOA:
		// MNAME RNAME SERIAL REFRESH RETRY EXPIRE MINIMUM, with fixed
		// administrative values; only MNAME (Target) is configurable.
		if rdata, err = appendName(nil, rr.Target); err != nil {
			return nil, err
		}
		if rdata, err = appendName(rdata, "hostmaster."+strings.TrimSuffix(rr.Target, ".")); err != nil {
			return nil, err
		}
		for _, v := range []uint32{1, 7200, 900, 1209600, 86400} {
			rdata = binary.BigEndian.AppendUint32(rdata, v)
		}
	case TypeTXT:
		for _, s := range rr.Text {
			if len(s) > 255 {
				return nil, fmt.Errorf("dnsmsg: TXT string too long")
			}
			rdata = append(rdata, byte(len(s)))
			rdata = append(rdata, s...)
		}
	case TypeSRV:
		// priority, weight, port, target (RFC 2782).
		rdata = binary.BigEndian.AppendUint16(rdata, rr.Priority)
		rdata = binary.BigEndian.AppendUint16(rdata, 0)
		rdata = binary.BigEndian.AppendUint16(rdata, rr.Port)
		if rdata, err = appendName(rdata, rr.Target); err != nil {
			return nil, err
		}
	case TypeSVCB, TypeHTTPS:
		rdata = binary.BigEndian.AppendUint16(rdata, rr.Priority)
		if rdata, err = appendName(rdata, rr.Target); err != nil {
			return nil, err
		}
		if rr.Addr.Is6() && !rr.Addr.Is4In6() {
			// SvcParam ipv6hint (key 6), one address.
			rdata = binary.BigEndian.AppendUint16(rdata, 6)
			rdata = binary.BigEndian.AppendUint16(rdata, 16)
			hint := rr.Addr.As16()
			rdata = append(rdata, hint[:]...)
		}
	default:
		return nil, fmt.Errorf("dnsmsg: cannot pack type %v", rr.Type)
	}
	b = binary.BigEndian.AppendUint16(b, uint16(len(rdata)))
	return append(b, rdata...), nil
}

// Unpack parses a wire-format message.
func Unpack(data []byte) (*Message, error) {
	if len(data) < 12 {
		return nil, ErrTruncatedMsg
	}
	m := &Message{ID: binary.BigEndian.Uint16(data[0:2])}
	flags := binary.BigEndian.Uint16(data[2:4])
	m.Response = flags&(1<<15) != 0
	m.Authoritative = flags&(1<<10) != 0
	m.RecursionDesired = flags&(1<<8) != 0
	m.RecursionAvailable = flags&(1<<7) != 0
	m.RCode = RCode(flags & 0x0f)
	qd := int(binary.BigEndian.Uint16(data[4:6]))
	an := int(binary.BigEndian.Uint16(data[6:8]))
	ns := int(binary.BigEndian.Uint16(data[8:10]))
	ar := int(binary.BigEndian.Uint16(data[10:12]))
	off := 12
	for i := 0; i < qd; i++ {
		name, next, err := parseName(data, off)
		if err != nil {
			return nil, err
		}
		if next+4 > len(data) {
			return nil, ErrTruncatedMsg
		}
		m.Questions = append(m.Questions, Question{
			Name: name,
			Type: Type(binary.BigEndian.Uint16(data[next : next+2])),
		})
		off = next + 4
	}
	var err error
	for _, sec := range []struct {
		n   int
		dst *[]Record
	}{{an, &m.Answers}, {ns, &m.Authority}, {ar, &m.Additional}} {
		for i := 0; i < sec.n; i++ {
			var rr Record
			if rr, off, err = parseRecord(data, off); err != nil {
				return nil, err
			}
			*sec.dst = append(*sec.dst, rr)
		}
	}
	return m, nil
}

func parseRecord(msg []byte, off int) (Record, int, error) {
	var rr Record
	name, next, err := parseName(msg, off)
	if err != nil {
		return rr, 0, err
	}
	if next+10 > len(msg) {
		return rr, 0, ErrTruncatedMsg
	}
	rr.Name = name
	rr.Type = Type(binary.BigEndian.Uint16(msg[next : next+2]))
	rr.TTL = binary.BigEndian.Uint32(msg[next+4 : next+8])
	rdLen := int(binary.BigEndian.Uint16(msg[next+8 : next+10]))
	rdStart := next + 10
	if rdStart+rdLen > len(msg) {
		return rr, 0, ErrTruncatedMsg
	}
	rdata := msg[rdStart : rdStart+rdLen]
	switch rr.Type {
	case TypeA:
		if rdLen != 4 {
			return rr, 0, fmt.Errorf("dnsmsg: A rdata length %d", rdLen)
		}
		rr.Addr = netip.AddrFrom4([4]byte(rdata))
	case TypeAAAA:
		if rdLen != 16 {
			return rr, 0, fmt.Errorf("dnsmsg: AAAA rdata length %d", rdLen)
		}
		rr.Addr = netip.AddrFrom16([16]byte(rdata))
	case TypeCNAME, TypePTR, TypeSOA:
		if rr.Target, _, err = parseName(msg, rdStart); err != nil {
			return rr, 0, err
		}
	case TypeTXT:
		for p := 0; p < len(rdata); {
			l := int(rdata[p])
			if p+1+l > len(rdata) {
				return rr, 0, ErrTruncatedMsg
			}
			rr.Text = append(rr.Text, string(rdata[p+1:p+1+l]))
			p += 1 + l
		}
	case TypeSRV:
		if rdLen < 7 {
			return rr, 0, ErrTruncatedMsg
		}
		rr.Priority = binary.BigEndian.Uint16(rdata[0:2])
		rr.Port = binary.BigEndian.Uint16(rdata[4:6])
		if rr.Target, _, err = parseName(msg, rdStart+6); err != nil {
			return rr, 0, err
		}
	case TypeSVCB, TypeHTTPS:
		if rdLen < 3 {
			return rr, 0, ErrTruncatedMsg
		}
		rr.Priority = binary.BigEndian.Uint16(rdata[0:2])
		var after int
		if rr.Target, after, err = parseName(msg, rdStart+2); err != nil {
			return rr, 0, err
		}
		// SvcParams: pick out an ipv6hint (key 6) when present.
		params := msg[after : rdStart+rdLen]
		for len(params) >= 4 {
			key := binary.BigEndian.Uint16(params[0:2])
			plen := int(binary.BigEndian.Uint16(params[2:4]))
			if len(params) < 4+plen {
				break
			}
			if key == 6 && plen >= 16 {
				rr.Addr = netip.AddrFrom16([16]byte(params[4:20]))
			}
			params = params[4+plen:]
		}
	}
	return rr, rdStart + rdLen, nil
}

// CanonicalName lowercases and strips the trailing dot, the normalization
// the analysis pipeline applies before grouping by domain.
func CanonicalName(name string) string {
	return strings.ToLower(strings.TrimSuffix(name, "."))
}

// SLD returns the second-level domain of a canonical name (the last two
// labels), which §5.4.3 groups tracking destinations by.
func SLD(name string) string {
	labels := strings.Split(CanonicalName(name), ".")
	if len(labels) < 2 {
		return CanonicalName(name)
	}
	return strings.Join(labels[len(labels)-2:], ".")
}
