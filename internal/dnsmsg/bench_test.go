package dnsmsg

import (
	"net/netip"
	"testing"
)

// BenchmarkPackUnpack measures the DNS codec round trip for a typical
// AAAA answer.
func BenchmarkPackUnpack(b *testing.B) {
	q := NewQuery(7, "speaker-v6x12.vendor.example", TypeAAAA)
	r := q.Reply(RCodeSuccess)
	r.Answers = []Record{{Name: q.Questions[0].Name, Type: TypeAAAA, TTL: 300,
		Addr: netip.MustParseAddr("2606:4700:10::42")}}
	for i := 0; i < b.N; i++ {
		wire, err := r.Pack()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Unpack(wire); err != nil {
			b.Fatal(err)
		}
	}
}
