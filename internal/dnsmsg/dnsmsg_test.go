package dnsmsg

import (
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestQueryRoundTrip(t *testing.T) {
	q := NewQuery(0x1234, "api.nest.example", TypeAAAA)
	wire, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 0x1234 || got.Response || !got.RecursionDesired {
		t.Errorf("header: %+v", got)
	}
	if len(got.Questions) != 1 || got.Questions[0].Name != "api.nest.example" || got.Questions[0].Type != TypeAAAA {
		t.Errorf("questions: %+v", got.Questions)
	}
}

func TestResponseRoundTripAllTypes(t *testing.T) {
	q := NewQuery(7, "www.example.com", TypeHTTPS)
	r := q.Reply(RCodeSuccess)
	r.Authoritative = true
	r.Answers = []Record{
		{Name: "www.example.com", Type: TypeCNAME, TTL: 300, Target: "cdn.example.net"},
		{Name: "cdn.example.net", Type: TypeA, TTL: 60, Addr: netip.MustParseAddr("93.184.216.34")},
		{Name: "cdn.example.net", Type: TypeAAAA, TTL: 60, Addr: netip.MustParseAddr("2606:2800:220:1::1")},
		{Name: "www.example.com", Type: TypeHTTPS, TTL: 60, Priority: 1, Target: "."},
		{Name: "www.example.com", Type: TypeSVCB, TTL: 60, Priority: 2, Target: "svc.example.com"},
		{Name: "txt.example.com", Type: TypeTXT, TTL: 60, Text: []string{"v=spf1", "hello world"}},
		{Name: "4.3.2.1.in-addr.arpa", Type: TypePTR, TTL: 60, Target: "host.example.com"},
	}
	r.Authority = []Record{{Name: "example.com", Type: TypeSOA, TTL: 900, Target: "ns1.example.com"}}
	wire, err := r.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Response || !got.Authoritative || got.RCode != RCodeSuccess {
		t.Errorf("flags: %+v", got)
	}
	if len(got.Answers) != 7 {
		t.Fatalf("answers: %d", len(got.Answers))
	}
	if got.Answers[0].Target != "cdn.example.net" {
		t.Errorf("cname target %q", got.Answers[0].Target)
	}
	if got.Answers[1].Addr != netip.MustParseAddr("93.184.216.34") {
		t.Errorf("a addr %v", got.Answers[1].Addr)
	}
	if got.Answers[2].Addr != netip.MustParseAddr("2606:2800:220:1::1") {
		t.Errorf("aaaa addr %v", got.Answers[2].Addr)
	}
	if got.Answers[3].Priority != 1 || got.Answers[3].Target != "." {
		t.Errorf("https rr: %+v", got.Answers[3])
	}
	if got.Answers[4].Priority != 2 || got.Answers[4].Target != "svc.example.com" {
		t.Errorf("svcb rr: %+v", got.Answers[4])
	}
	if !reflect.DeepEqual(got.Answers[5].Text, []string{"v=spf1", "hello world"}) {
		t.Errorf("txt: %+v", got.Answers[5].Text)
	}
	if got.Answers[6].Target != "host.example.com" {
		t.Errorf("ptr: %+v", got.Answers[6])
	}
	if len(got.Authority) != 1 || got.Authority[0].Target != "ns1.example.com" {
		t.Errorf("soa: %+v", got.Authority)
	}
}

func TestNXDomainReply(t *testing.T) {
	q := NewQuery(9, "missing.example", TypeAAAA)
	r := q.Reply(RCodeNXDomain)
	r.Authority = []Record{{Name: "example", Type: TypeSOA, TTL: 300, Target: "ns.example"}}
	wire, err := r.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.RCode != RCodeNXDomain || len(got.Answers) != 0 || len(got.Authority) != 1 {
		t.Errorf("nxdomain reply: %+v", got)
	}
	if got.RCode.String() != "NXDOMAIN" {
		t.Errorf("rcode string %q", got.RCode)
	}
}

func TestNameCompressionPointers(t *testing.T) {
	// Hand-build a message whose answer name is a pointer to the question
	// name, as real resolvers emit.
	q := NewQuery(1, "a.example.com", TypeA)
	wire, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	// Append one answer: pointer to offset 12 (question name), type A.
	ans := []byte{0xc0, 12, 0, 1, 0, 1, 0, 0, 0, 60, 0, 4, 1, 2, 3, 4}
	wire = append(wire, ans...)
	wire[7] = 1 // ANCOUNT = 1
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Answers) != 1 || got.Answers[0].Name != "a.example.com" {
		t.Fatalf("answers: %+v", got.Answers)
	}
	if got.Answers[0].Addr != netip.MustParseAddr("1.2.3.4") {
		t.Errorf("addr %v", got.Answers[0].Addr)
	}
}

func TestPointerLoopRejected(t *testing.T) {
	wire := make([]byte, 12)
	wire[5] = 1 // QDCOUNT=1
	wire = append(wire, 0xc0, 12)
	if _, err := Unpack(wire); err == nil {
		t.Fatal("want error for self-pointing name")
	}
}

func TestBadNames(t *testing.T) {
	if _, err := (&Message{Questions: []Question{{Name: strings.Repeat("x", 64) + ".com", Type: TypeA}}}).Pack(); err == nil {
		t.Error("want error for 64-byte label")
	}
	if _, err := (&Message{Questions: []Question{{Name: "a..b", Type: TypeA}}}).Pack(); err == nil {
		t.Error("want error for empty label")
	}
}

func TestPackRejectsWrongAddressFamily(t *testing.T) {
	bad := []Record{
		{Name: "x.example", Type: TypeA, Addr: netip.MustParseAddr("::1")},
		{Name: "x.example", Type: TypeAAAA, Addr: netip.MustParseAddr("1.2.3.4")},
	}
	for _, rr := range bad {
		m := &Message{Answers: []Record{rr}}
		if _, err := m.Pack(); err == nil {
			t.Errorf("want error packing %v with %v", rr.Type, rr.Addr)
		}
	}
}

func TestTruncatedInputs(t *testing.T) {
	q := NewQuery(3, "trunc.example", TypeAAAA)
	wire, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(wire); cut++ {
		if _, err := Unpack(wire[:cut]); err == nil {
			t.Fatalf("no error at cut %d", cut)
		}
	}
}

func TestRootName(t *testing.T) {
	q := NewQuery(4, ".", TypeSOA)
	wire, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Questions[0].Name != "." {
		t.Errorf("root name = %q", got.Questions[0].Name)
	}
}

func TestCanonicalNameAndSLD(t *testing.T) {
	if CanonicalName("API.Amazon.COM.") != "api.amazon.com" {
		t.Error("CanonicalName")
	}
	for in, want := range map[string]string{
		"app-measurement.com":         "app-measurement.com",
		"a2.tuyaus.com":               "tuyaus.com",
		"unagi-na.amazon.com.":        "amazon.com",
		"localhost":                   "localhost",
		"deep.sub.tracker.segment.io": "segment.io",
	} {
		if got := SLD(in); got != want {
			t.Errorf("SLD(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTypeStrings(t *testing.T) {
	if TypeAAAA.String() != "AAAA" || TypeA.String() != "A" || Type(999).String() != "TYPE999" {
		t.Error("type strings wrong")
	}
}

// Property: messages with arbitrary question names built from valid labels
// survive a pack/unpack cycle.
func TestQuickNameRoundTrip(t *testing.T) {
	f := func(labels []string, qtype uint8) bool {
		var parts []string
		for _, l := range labels {
			clean := strings.Map(func(r rune) rune {
				if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '-' {
					return r
				}
				return -1
			}, strings.ToLower(l))
			if len(clean) > 0 && len(clean) <= 63 {
				parts = append(parts, clean)
			}
			if len(parts) == 6 {
				break
			}
		}
		if len(parts) == 0 {
			return true
		}
		name := strings.Join(parts, ".")
		q := NewQuery(42, name, Type(qtype))
		wire, err := q.Pack()
		if err != nil {
			return false
		}
		got, err := Unpack(wire)
		if err != nil {
			return false
		}
		return got.Questions[0].Name == name && got.Questions[0].Type == Type(qtype)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCompressionOnEncode(t *testing.T) {
	// A response with repeated owner names must emit pointers and shrink.
	q := NewQuery(5, "very.long.subdomain.vendor.example", TypeAAAA)
	r := q.Reply(RCodeSuccess)
	for i := 0; i < 4; i++ {
		r.Answers = append(r.Answers, Record{
			Name: "very.long.subdomain.vendor.example", Type: TypeAAAA, TTL: 60,
			Addr: netip.MustParseAddr("2606:4700:10::1"),
		})
	}
	wire, err := r.Pack()
	if err != nil {
		t.Fatal(err)
	}
	// Uncompressed, each owner name costs 36 bytes; compressed, repeats
	// cost 2. The whole message must reflect that.
	if len(wire) > 12+40+4+4*(2+10+16) {
		t.Errorf("message not compressed: %d bytes", len(wire))
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Answers) != 4 || got.Answers[3].Name != "very.long.subdomain.vendor.example" {
		t.Errorf("decode after compression: %+v", got.Answers)
	}
}

func TestSRVRoundTrip(t *testing.T) {
	m := &Message{Response: true, Answers: []Record{{
		Name: "dev._matter._tcp.local", Type: TypeSRV, TTL: 120,
		Priority: 0, Port: 5540, Target: "dev.local",
	}}}
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	rr := got.Answers[0]
	if rr.Port != 5540 || rr.Target != "dev.local" {
		t.Errorf("srv: %+v", rr)
	}
	if TypeSRV.String() != "SRV" {
		t.Error("type string")
	}
}
