package packet

import "fmt"

// Decoder parses frames without allocating: it owns one instance of every
// layer type plus a single Packet whose Layers slice is backed by a fixed
// array, and Parse/ParseIP fill those in place. Profiles of the full study
// showed the package-level Parse — one fresh Packet plus one fresh struct
// per layer per frame — accounting for over 70% of all allocations, so
// every steady-state parse site (device stacks, the router, the cloud, the
// analysis pipeline, the scanner) owns a Decoder instead.
//
// The returned *Packet and every layer it points to are overwritten by the
// next Parse/ParseIP call on the same Decoder, so callers must not retain
// the Packet or any layer struct across calls. Retaining slices the layers
// expose (payload views into the frame) is governed by the frame's own
// lifetime, exactly as with the allocating Parse.
//
// A Decoder is not safe for concurrent use; give each goroutine-confined
// owner its own.
type Decoder struct {
	pkt    Packet
	layers [4]Layer

	eth Ethernet
	arp ARP
	ip4 IPv4
	ip6 IPv6
	ic4 ICMPv4
	ic6 ICMPv6
	udp UDP
	tcp TCP
}

// NewDecoder returns a ready Decoder.
func NewDecoder() *Decoder { return &Decoder{} }

// Parse decodes an Ethernet frame in place, mirroring the package-level
// Parse. The result is valid until the next call on this Decoder.
func (d *Decoder) Parse(frame []byte) *Packet { return d.parseFrom(frame, LayerTypeEthernet) }

// ParseIP decodes a raw IP packet (no link layer) in place, mirroring the
// package-level ParseIP. The result is valid until the next call on this
// Decoder.
func (d *Decoder) ParseIP(data []byte) *Packet {
	d.reset()
	if len(data) == 0 {
		d.pkt.Err = ErrTruncated
		return &d.pkt
	}
	switch data[0] >> 4 {
	case 4:
		return d.walk(data, LayerTypeIPv4)
	case 6:
		return d.walk(data, LayerTypeIPv6)
	}
	d.pkt.Err = fmt.Errorf("packet: unknown IP version %d", data[0]>>4)
	return &d.pkt
}

func (d *Decoder) reset() {
	d.pkt = Packet{Layers: d.layers[:0]}
}

func (d *Decoder) parseFrom(data []byte, first LayerType) *Packet {
	d.reset()
	return d.walk(data, first)
}

// walk mirrors parseFrom but reuses the Decoder-owned layer structs. Each
// struct is zeroed before its DecodeFromBytes so no field survives from a
// previous frame.
func (d *Decoder) walk(data []byte, next LayerType) *Packet {
	p := &d.pkt
	for next != LayerTypeZero && next != LayerTypePayload {
		var dl DecodingLayer
		switch next {
		case LayerTypeEthernet:
			d.eth = Ethernet{}
			p.Ethernet = &d.eth
			dl = &d.eth
		case LayerTypeARP:
			d.arp = ARP{}
			p.ARP = &d.arp
			dl = &d.arp
		case LayerTypeIPv4:
			d.ip4 = IPv4{}
			p.IPv4 = &d.ip4
			dl = &d.ip4
		case LayerTypeIPv6:
			d.ip6 = IPv6{}
			p.IPv6 = &d.ip6
			dl = &d.ip6
		case LayerTypeICMPv4:
			d.ic4 = ICMPv4{}
			p.ICMPv4 = &d.ic4
			dl = &d.ic4
		case LayerTypeICMPv6:
			d.ic6 = ICMPv6{}
			p.ICMPv6 = &d.ic6
			dl = &d.ic6
		case LayerTypeUDP:
			d.udp = UDP{}
			p.UDP = &d.udp
			dl = &d.udp
		case LayerTypeTCP:
			d.tcp = TCP{}
			p.TCP = &d.tcp
			dl = &d.tcp
		default:
			p.Err = fmt.Errorf("packet: no decoder for %v", next)
			return p
		}
		if err := dl.DecodeFromBytes(data); err != nil {
			p.Err = fmt.Errorf("decoding %v: %w", next, err)
			return p
		}
		p.Layers = append(p.Layers, dl)
		data = dl.Payload()
		next = dl.NextLayerType()
	}
	p.AppPayload = data
	return p
}
