package packet

import (
	"net/netip"
	"reflect"
	"testing"
)

// sampleFrames builds a representative frame set: ARP, IPv4/UDP, IPv4/TCP,
// IPv6/ICMPv6, IPv6/UDP, IPv6/TCP, plus malformed tails.
func sampleFrames(t *testing.T) [][]byte {
	t.Helper()
	mac1 := MAC{2, 0, 0, 0, 0, 1}
	mac2 := MAC{2, 0, 0, 0, 0, 2}
	v4a := netip.MustParseAddr("192.168.1.10")
	v4b := netip.MustParseAddr("8.8.8.8")
	v6a := netip.MustParseAddr("2001:470:8:100::10")
	v6b := netip.MustParseAddr("2001:4860:4860::8888")
	var frames [][]byte
	add := func(layers ...SerializableLayer) {
		t.Helper()
		f, err := Serialize(layers...)
		if err != nil {
			t.Fatalf("serialize: %v", err)
		}
		frames = append(frames, f)
	}
	add(&Ethernet{Dst: mac2, Src: mac1, Type: EtherTypeARP},
		&ARP{Op: ARPRequest, SenderMAC: mac1, SenderIP: v4a, TargetIP: netip.MustParseAddr("192.168.1.1")})
	add(&Ethernet{Dst: mac2, Src: mac1, Type: EtherTypeIPv4},
		&IPv4{Protocol: IPProtocolUDP, Src: v4a, Dst: v4b},
		&UDP{SrcPort: 40000, DstPort: 53, Src: v4a, Dst: v4b},
		Raw([]byte("payload")))
	add(&Ethernet{Dst: mac2, Src: mac1, Type: EtherTypeIPv4},
		&IPv4{Protocol: IPProtocolTCP, Src: v4a, Dst: v4b},
		&TCP{SrcPort: 40001, DstPort: 443, Seq: 1, Flags: TCPFlagSYN, Src: v4a, Dst: v4b})
	add(&Ethernet{Dst: mac2, Src: mac1, Type: EtherTypeIPv6},
		&IPv6{NextHeader: IPProtocolICMPv6, HopLimit: 255, Src: v6a, Dst: v6b},
		&ICMPv6{Type: ICMPv6TypeEchoRequest, Body: []byte{0, 1, 0, 2}, Src: v6a, Dst: v6b})
	add(&Ethernet{Dst: mac2, Src: mac1, Type: EtherTypeIPv6},
		&IPv6{NextHeader: IPProtocolUDP, HopLimit: 64, Src: v6a, Dst: v6b},
		&UDP{SrcPort: 40002, DstPort: 123, Src: v6a, Dst: v6b},
		Raw(make([]byte, 48)))
	add(&Ethernet{Dst: mac2, Src: mac1, Type: EtherTypeIPv6},
		&IPv6{NextHeader: IPProtocolTCP, HopLimit: 64, Src: v6a, Dst: v6b},
		&TCP{SrcPort: 40003, DstPort: 443, Seq: 9, Flags: TCPFlagSYN | TCPFlagACK, Src: v6a, Dst: v6b},
		Raw([]byte{0x17, 0x03}))
	// Truncated inner layers exercise the error paths.
	frames = append(frames, frames[1][:20], []byte{0x00}, nil)
	return frames
}

// packetsEqual compares the observable fields of two parse results.
func packetsEqual(t *testing.T, want, got *Packet) {
	t.Helper()
	if (want.Err == nil) != (got.Err == nil) {
		t.Fatalf("Err mismatch: want %v, got %v", want.Err, got.Err)
	}
	if len(want.Layers) != len(got.Layers) {
		t.Fatalf("layer count: want %d, got %d", len(want.Layers), len(got.Layers))
	}
	for i := range want.Layers {
		if want.Layers[i].LayerType() != got.Layers[i].LayerType() {
			t.Fatalf("layer %d: want %v, got %v", i, want.Layers[i].LayerType(), got.Layers[i].LayerType())
		}
		if !reflect.DeepEqual(want.Layers[i], got.Layers[i]) {
			t.Fatalf("layer %d (%v): want %+v, got %+v", i, want.Layers[i].LayerType(), want.Layers[i], got.Layers[i])
		}
	}
	if string(want.AppPayload) != string(got.AppPayload) {
		t.Fatalf("AppPayload: want %q, got %q", want.AppPayload, got.AppPayload)
	}
}

func TestDecoderMatchesParse(t *testing.T) {
	d := NewDecoder()
	for i, frame := range sampleFrames(t) {
		want := Parse(frame)
		got := d.Parse(frame)
		t.Logf("frame %d", i)
		packetsEqual(t, want, got)
	}
}

func TestDecoderParseIPMatchesParseIP(t *testing.T) {
	d := NewDecoder()
	for _, frame := range sampleFrames(t) {
		p := Parse(frame)
		if p.Ethernet == nil || p.Err != nil {
			continue
		}
		raw := p.Ethernet.PayloadData
		want := ParseIP(raw)
		got := d.ParseIP(raw)
		packetsEqual(t, want, got)
	}
}

// TestDecoderNoStaleState interleaves dissimilar frames so any field the
// Decoder failed to reset between calls would leak across.
func TestDecoderNoStaleState(t *testing.T) {
	frames := sampleFrames(t)
	d := NewDecoder()
	for round := 0; round < 3; round++ {
		for i := len(frames) - 1; i >= 0; i-- {
			want := Parse(frames[i])
			got := d.Parse(frames[i])
			packetsEqual(t, want, got)
			if want.Err == nil && want.IPv4 == nil && got.IPv4 != nil {
				t.Fatal("stale IPv4 pointer survived reset")
			}
		}
	}
}

func TestDecoderZeroAllocs(t *testing.T) {
	frames := sampleFrames(t)[:6] // well-formed only: error paths wrap with fmt.Errorf
	d := NewDecoder()
	d.Parse(frames[0]) // warm the Layers backing array
	avg := testing.AllocsPerRun(100, func() {
		for _, f := range frames {
			if p := d.Parse(f); p.Err != nil {
				t.Fatal(p.Err)
			}
		}
	})
	if avg != 0 {
		t.Fatalf("Decoder.Parse allocated %.1f times per run, want 0", avg)
	}
}
