// Package packet implements decoding and serialization of the link-,
// network-, and transport-layer protocols the v6lab testbed exchanges:
// Ethernet, ARP, IPv4, IPv6 (with a subset of extension headers), ICMPv4,
// ICMPv6 (including the Neighbor Discovery messages and options), UDP, and
// TCP.
//
// The design follows the layer/decoder architecture popularized by
// gopacket: each protocol is a Layer that can decode itself from bytes and
// serialize itself into a prepend-oriented Buffer, and Parse walks a byte
// slice into a Packet holding the typed layers it found. Unlike gopacket
// the package is pure stdlib and intentionally supports only the protocols
// the study needs.
package packet

import (
	"errors"
	"fmt"
	"net/netip"
)

// LayerType identifies a protocol layer within a packet.
type LayerType int

// The layer types known to this package.
const (
	LayerTypeZero LayerType = iota
	LayerTypeEthernet
	LayerTypeARP
	LayerTypeIPv4
	LayerTypeIPv6
	LayerTypeICMPv4
	LayerTypeICMPv6
	LayerTypeUDP
	LayerTypeTCP
	LayerTypePayload
)

// String returns the conventional name of the layer type.
func (t LayerType) String() string {
	switch t {
	case LayerTypeEthernet:
		return "Ethernet"
	case LayerTypeARP:
		return "ARP"
	case LayerTypeIPv4:
		return "IPv4"
	case LayerTypeIPv6:
		return "IPv6"
	case LayerTypeICMPv4:
		return "ICMPv4"
	case LayerTypeICMPv6:
		return "ICMPv6"
	case LayerTypeUDP:
		return "UDP"
	case LayerTypeTCP:
		return "TCP"
	case LayerTypePayload:
		return "Payload"
	}
	return fmt.Sprintf("LayerType(%d)", int(t))
}

// Layer is implemented by every protocol layer in this package.
type Layer interface {
	// LayerType identifies the protocol of this layer.
	LayerType() LayerType
}

// DecodingLayer is a Layer that can fill itself in from wire bytes.
type DecodingLayer interface {
	Layer
	// DecodeFromBytes parses data into the receiver. The receiver retains
	// no references to data beyond the payload slice it exposes.
	DecodeFromBytes(data []byte) error
	// NextLayerType reports which layer follows this one on the wire, or
	// LayerTypeZero when the remainder is opaque payload.
	NextLayerType() LayerType
	// Payload returns the bytes this layer carries for the next layer.
	Payload() []byte
}

// ErrTruncated is returned when a layer's wire image is shorter than its
// fixed header requires.
var ErrTruncated = errors.New("packet: truncated")

// Packet is the result of parsing a frame: the typed layers found, in
// order, plus convenience pointers to each well-known layer.
type Packet struct {
	// Layers lists every decoded layer outermost first.
	Layers []Layer

	Ethernet *Ethernet
	ARP      *ARP
	IPv4     *IPv4
	IPv6     *IPv6
	ICMPv4   *ICMPv4
	ICMPv6   *ICMPv6
	UDP      *UDP
	TCP      *TCP

	// AppPayload is whatever followed the innermost decoded layer.
	AppPayload []byte

	// Err records a mid-packet decode failure; layers decoded before the
	// failure are still populated.
	Err error
}

// ParseIP decodes a raw IP packet (no link layer), dispatching on the
// version nibble. The router's WAN side and the simulated cloud exchange
// packets in this form.
func ParseIP(data []byte) *Packet {
	if len(data) == 0 {
		return &Packet{Err: ErrTruncated}
	}
	p := &Packet{}
	switch data[0] >> 4 {
	case 4:
		p2 := parseFrom(data, LayerTypeIPv4)
		return p2
	case 6:
		return parseFrom(data, LayerTypeIPv6)
	}
	p.Err = fmt.Errorf("packet: unknown IP version %d", data[0]>>4)
	return p
}

// Parse decodes an Ethernet frame into a Packet. Decoding is best-effort:
// a malformed inner layer sets Packet.Err but outer layers remain usable,
// mirroring how a capture pipeline must tolerate damaged traffic.
func Parse(frame []byte) *Packet { return parseFrom(frame, LayerTypeEthernet) }

func parseFrom(data []byte, first LayerType) *Packet {
	p := &Packet{}
	next := first
	for next != LayerTypeZero && next != LayerTypePayload {
		var dl DecodingLayer
		switch next {
		case LayerTypeEthernet:
			eth := &Ethernet{}
			p.Ethernet = eth
			dl = eth
		case LayerTypeARP:
			a := &ARP{}
			p.ARP = a
			dl = a
		case LayerTypeIPv4:
			v4 := &IPv4{}
			p.IPv4 = v4
			dl = v4
		case LayerTypeIPv6:
			v6 := &IPv6{}
			p.IPv6 = v6
			dl = v6
		case LayerTypeICMPv4:
			ic := &ICMPv4{}
			p.ICMPv4 = ic
			dl = ic
		case LayerTypeICMPv6:
			ic := &ICMPv6{}
			p.ICMPv6 = ic
			dl = ic
		case LayerTypeUDP:
			u := &UDP{}
			p.UDP = u
			dl = u
		case LayerTypeTCP:
			t := &TCP{}
			p.TCP = t
			dl = t
		default:
			p.Err = fmt.Errorf("packet: no decoder for %v", next)
			return p
		}
		if err := dl.DecodeFromBytes(data); err != nil {
			p.Err = fmt.Errorf("decoding %v: %w", next, err)
			return p
		}
		p.Layers = append(p.Layers, dl)
		data = dl.Payload()
		next = dl.NextLayerType()
	}
	p.AppPayload = data
	return p
}

// SrcIP returns the network-layer source address, or the zero Addr when the
// packet has no IP layer.
func (p *Packet) SrcIP() netip.Addr {
	switch {
	case p.IPv6 != nil:
		return p.IPv6.Src
	case p.IPv4 != nil:
		return p.IPv4.Src
	}
	return netip.Addr{}
}

// DstIP returns the network-layer destination address, or the zero Addr
// when the packet has no IP layer.
func (p *Packet) DstIP() netip.Addr {
	switch {
	case p.IPv6 != nil:
		return p.IPv6.Dst
	case p.IPv4 != nil:
		return p.IPv4.Dst
	}
	return netip.Addr{}
}

// IsIPv6 reports whether the packet carries an IPv6 network layer.
func (p *Packet) IsIPv6() bool { return p.IPv6 != nil }

// TransportPayload returns the bytes carried above UDP or TCP, or nil when
// the packet has no transport layer.
func (p *Packet) TransportPayload() []byte {
	switch {
	case p.UDP != nil:
		return p.UDP.PayloadData
	case p.TCP != nil:
		return p.TCP.PayloadData
	}
	return nil
}

// SrcPort returns the transport source port, or 0 without a transport layer.
func (p *Packet) SrcPort() uint16 {
	switch {
	case p.UDP != nil:
		return p.UDP.SrcPort
	case p.TCP != nil:
		return p.TCP.SrcPort
	}
	return 0
}

// DstPort returns the transport destination port, or 0 without a transport
// layer.
func (p *Packet) DstPort() uint16 {
	switch {
	case p.UDP != nil:
		return p.UDP.DstPort
	case p.TCP != nil:
		return p.TCP.DstPort
	}
	return 0
}
