package packet

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// UDP is a UDP header plus payload (RFC 768).
type UDP struct {
	SrcPort, DstPort uint16
	Checksum         uint16
	PayloadData      []byte
	// Src and Dst feed the pseudo-header checksum on serialization.
	Src, Dst netip.Addr
}

const udpHeaderLen = 8

// LayerType implements Layer.
func (*UDP) LayerType() LayerType { return LayerTypeUDP }

// DecodeFromBytes implements DecodingLayer.
func (u *UDP) DecodeFromBytes(data []byte) error {
	if len(data) < udpHeaderLen {
		return ErrTruncated
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	length := int(binary.BigEndian.Uint16(data[4:6]))
	u.Checksum = binary.BigEndian.Uint16(data[6:8])
	end := length
	if end < udpHeaderLen || end > len(data) {
		end = len(data)
	}
	u.PayloadData = data[udpHeaderLen:end]
	return nil
}

// NextLayerType implements DecodingLayer.
func (*UDP) NextLayerType() LayerType { return LayerTypePayload }

// Payload implements DecodingLayer.
func (u *UDP) Payload() []byte { return u.PayloadData }

// SerializeTo implements SerializableLayer; buffer contents become the
// datagram payload.
func (u *UDP) SerializeTo(b *Buffer) error {
	if !u.Src.IsValid() || !u.Dst.IsValid() {
		return fmt.Errorf("udp: Src/Dst required for checksum")
	}
	hdr := b.Prepend(udpHeaderLen)
	binary.BigEndian.PutUint16(hdr[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(hdr[2:4], u.DstPort)
	seg := b.Bytes()
	binary.BigEndian.PutUint16(seg[4:6], uint16(len(seg)))
	sum := TransportChecksum(u.Src, u.Dst, uint8(IPProtocolUDP), seg)
	if sum == 0 {
		sum = 0xffff
	}
	binary.BigEndian.PutUint16(seg[6:8], sum)
	return nil
}

// TCP flag bits.
const (
	TCPFlagFIN uint8 = 1 << 0
	TCPFlagSYN uint8 = 1 << 1
	TCPFlagRST uint8 = 1 << 2
	TCPFlagPSH uint8 = 1 << 3
	TCPFlagACK uint8 = 1 << 4
)

// TCP is a TCP header plus payload (RFC 9293). Options are preserved as raw
// bytes on decode and emitted verbatim on serialize (padded to 32 bits).
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
	Checksum         uint16
	Options          []byte
	PayloadData      []byte
	// Src and Dst feed the pseudo-header checksum on serialization.
	Src, Dst netip.Addr
}

const tcpHeaderLen = 20

// LayerType implements Layer.
func (*TCP) LayerType() LayerType { return LayerTypeTCP }

// DecodeFromBytes implements DecodingLayer.
func (t *TCP) DecodeFromBytes(data []byte) error {
	if len(data) < tcpHeaderLen {
		return ErrTruncated
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:2])
	t.DstPort = binary.BigEndian.Uint16(data[2:4])
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	t.Ack = binary.BigEndian.Uint32(data[8:12])
	dataOff := int(data[12]>>4) * 4
	if dataOff < tcpHeaderLen || len(data) < dataOff {
		return ErrTruncated
	}
	t.Flags = data[13] & 0x3f
	t.Window = binary.BigEndian.Uint16(data[14:16])
	t.Checksum = binary.BigEndian.Uint16(data[16:18])
	t.Options = data[tcpHeaderLen:dataOff]
	t.PayloadData = data[dataOff:]
	return nil
}

// NextLayerType implements DecodingLayer.
func (*TCP) NextLayerType() LayerType { return LayerTypePayload }

// Payload implements DecodingLayer.
func (t *TCP) Payload() []byte { return t.PayloadData }

// HasFlag reports whether all bits in mask are set.
func (t *TCP) HasFlag(mask uint8) bool { return t.Flags&mask == mask }

// SerializeTo implements SerializableLayer; buffer contents become the
// segment payload.
func (t *TCP) SerializeTo(b *Buffer) error {
	if !t.Src.IsValid() || !t.Dst.IsValid() {
		return fmt.Errorf("tcp: Src/Dst required for checksum")
	}
	optLen := (len(t.Options) + 3) &^ 3
	hdr := b.Prepend(tcpHeaderLen + optLen)
	binary.BigEndian.PutUint16(hdr[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(hdr[2:4], t.DstPort)
	binary.BigEndian.PutUint32(hdr[4:8], t.Seq)
	binary.BigEndian.PutUint32(hdr[8:12], t.Ack)
	hdr[12] = uint8((tcpHeaderLen+optLen)/4) << 4
	hdr[13] = t.Flags
	win := t.Window
	if win == 0 {
		win = 65535
	}
	binary.BigEndian.PutUint16(hdr[14:16], win)
	copy(hdr[tcpHeaderLen:], t.Options)
	seg := b.Bytes()
	binary.BigEndian.PutUint16(seg[16:18], TransportChecksum(t.Src, t.Dst, uint8(IPProtocolTCP), seg))
	return nil
}
