package packet

import (
	"net/netip"
	"testing"
)

var benchFrame []byte

func init() {
	src := netip.MustParseAddr("2001:470:8:100::10")
	dst := netip.MustParseAddr("2606:4700:10::1")
	f, err := Serialize(
		&Ethernet{Dst: MAC{2, 1, 2, 3, 4, 5}, Src: MAC{2, 5, 4, 3, 2, 1}, Type: EtherTypeIPv6},
		&IPv6{NextHeader: IPProtocolTCP, Src: src, Dst: dst},
		&TCP{SrcPort: 40000, DstPort: 443, Flags: TCPFlagPSH | TCPFlagACK, Src: src, Dst: dst},
		Raw(make([]byte, 512)),
	)
	if err != nil {
		panic(err)
	}
	benchFrame = f
}

// BenchmarkParse measures full-frame decoding (the analysis pipeline's
// inner loop).
func BenchmarkParse(b *testing.B) {
	b.SetBytes(int64(len(benchFrame)))
	for i := 0; i < b.N; i++ {
		p := Parse(benchFrame)
		if p.Err != nil {
			b.Fatal(p.Err)
		}
	}
}

// BenchmarkSerializeTCPv6 measures building a frame from layers (the
// device stacks' hot path).
func BenchmarkSerializeTCPv6(b *testing.B) {
	src := netip.MustParseAddr("2001:470:8:100::10")
	dst := netip.MustParseAddr("2606:4700:10::1")
	payload := make([]byte, 512)
	b.SetBytes(int64(len(benchFrame)))
	for i := 0; i < b.N; i++ {
		_, err := Serialize(
			&Ethernet{Dst: MAC{2, 1, 2, 3, 4, 5}, Src: MAC{2, 5, 4, 3, 2, 1}, Type: EtherTypeIPv6},
			&IPv6{NextHeader: IPProtocolTCP, Src: src, Dst: dst},
			&TCP{SrcPort: 40000, DstPort: 443, Flags: TCPFlagPSH | TCPFlagACK, Src: src, Dst: dst},
			Raw(payload),
		)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChecksum measures the Internet checksum over a 1500-byte MTU.
func BenchmarkChecksum(b *testing.B) {
	data := make([]byte, 1500)
	b.SetBytes(1500)
	for i := 0; i < b.N; i++ {
		Checksum(data)
	}
}
