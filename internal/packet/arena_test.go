package packet

import (
	"bytes"
	"testing"
)

// TestArenaCopiesAndStaysStable: copies are independent of the source and
// survive later CopyIns, including chunk rollover.
func TestArenaCopiesAndStaysStable(t *testing.T) {
	a := &Arena{ChunkSize: 64}
	src := []byte{1, 2, 3, 4}
	got := a.CopyIn(src)
	src[0] = 99
	if got[0] != 1 {
		t.Error("CopyIn aliased the source slice")
	}
	// Force several chunk rollovers; the first copy must not move.
	var later [][]byte
	for i := 0; i < 50; i++ {
		later = append(later, a.CopyIn(bytes.Repeat([]byte{byte(i)}, 20)))
	}
	if !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Errorf("early copy corrupted after rollover: %v", got)
	}
	for i, l := range later {
		if !bytes.Equal(l, bytes.Repeat([]byte{byte(i)}, 20)) {
			t.Fatalf("copy %d corrupted: %v", i, l)
		}
	}
}

// TestArenaCopyCapClipped: appending to a returned copy must not scribble
// over the next copy in the same chunk.
func TestArenaCopyCapClipped(t *testing.T) {
	a := &Arena{}
	first := a.CopyIn([]byte{1, 2})
	second := a.CopyIn([]byte{3, 4})
	_ = append(first, 0xee) // must reallocate, not overwrite second
	if second[0] != 3 || second[1] != 4 {
		t.Errorf("append through first copy corrupted second: %v", second)
	}
}

// TestArenaOversizeBlob: blobs larger than the chunk size get their own
// chunk instead of failing.
func TestArenaOversizeBlob(t *testing.T) {
	a := &Arena{ChunkSize: 8}
	big := bytes.Repeat([]byte{0xaa}, 100)
	got := a.CopyIn(big)
	if !bytes.Equal(got, big) {
		t.Error("oversize blob mangled")
	}
	if next := a.CopyIn([]byte{1}); next[0] != 1 {
		t.Error("copy after oversize blob failed")
	}
}

// TestSerializeIntoReuse: repeated SerializeInto on one buffer yields the
// same bytes as the allocating Serialize.
func TestSerializeIntoReuse(t *testing.T) {
	want, err := Serialize(
		&Ethernet{Dst: MAC{1, 2, 3, 4, 5, 6}, Src: MAC{6, 5, 4, 3, 2, 1}, Type: EtherTypeIPv4},
		Raw([]byte{0xde, 0xad, 0xbe, 0xef}),
	)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuffer(128)
	for i := 0; i < 3; i++ {
		got, err := SerializeInto(b,
			&Ethernet{Dst: MAC{1, 2, 3, 4, 5, 6}, Src: MAC{6, 5, 4, 3, 2, 1}, Type: EtherTypeIPv4},
			Raw([]byte{0xde, 0xad, 0xbe, 0xef}),
		)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("round %d: SerializeInto = %x, Serialize = %x", i, got, want)
		}
	}
}
