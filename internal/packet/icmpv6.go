package packet

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// ICMPv6 message types used by the testbed (RFC 4443, RFC 4861).
const (
	ICMPv6TypeDestUnreachable uint8 = 1
	ICMPv6TypePacketTooBig    uint8 = 2
	ICMPv6TypeEchoRequest     uint8 = 128
	ICMPv6TypeEchoReply       uint8 = 129
	ICMPv6TypeRouterSolicit   uint8 = 133
	ICMPv6TypeRouterAdvert    uint8 = 134
	ICMPv6TypeNeighborSolicit uint8 = 135
	ICMPv6TypeNeighborAdvert  uint8 = 136
	ICMPv6TypeMLDv2Report     uint8 = 143
)

// ICMPv6 is an ICMPv6 message: the 4-byte header plus the message body.
// The Neighbor Discovery message semantics on top of the body live in
// package ndp.
type ICMPv6 struct {
	Type     uint8
	Code     uint8
	Checksum uint16
	// Body is everything after the 4-byte header (message-specific).
	Body []byte
	// Src and Dst are used only to compute the pseudo-header checksum when
	// serializing; they are not part of the wire image. On decode they are
	// left zero (the IP layer carries the addresses).
	Src, Dst netip.Addr
}

// LayerType implements Layer.
func (*ICMPv6) LayerType() LayerType { return LayerTypeICMPv6 }

// DecodeFromBytes implements DecodingLayer.
func (ic *ICMPv6) DecodeFromBytes(data []byte) error {
	if len(data) < 4 {
		return ErrTruncated
	}
	ic.Type = data[0]
	ic.Code = data[1]
	ic.Checksum = binary.BigEndian.Uint16(data[2:4])
	ic.Body = data[4:]
	return nil
}

// NextLayerType implements DecodingLayer.
func (*ICMPv6) NextLayerType() LayerType { return LayerTypeZero }

// Payload implements DecodingLayer. ICMPv6 bodies are message-specific, so
// the payload is empty; consumers read Body.
func (*ICMPv6) Payload() []byte { return nil }

// SerializeTo implements SerializableLayer; whatever is already in the
// buffer becomes the message body, appended after Body.
func (ic *ICMPv6) SerializeTo(b *Buffer) error {
	if !ic.Src.IsValid() || !ic.Dst.IsValid() {
		return fmt.Errorf("icmpv6: Src/Dst required for checksum")
	}
	b.Prepend(len(ic.Body))
	copy(b.Bytes()[:len(ic.Body)], ic.Body)
	hdr := b.Prepend(4)
	hdr[0] = ic.Type
	hdr[1] = ic.Code
	seg := b.Bytes()
	binary.BigEndian.PutUint16(seg[2:4], TransportChecksum(ic.Src, ic.Dst, uint8(IPProtocolICMPv6), seg))
	return nil
}

// VerifyChecksum recomputes the message checksum using the given IP
// addresses and reports whether it matches the received one.
func (ic *ICMPv6) VerifyChecksum(src, dst netip.Addr) bool {
	seg := make([]byte, 4+len(ic.Body))
	seg[0] = ic.Type
	seg[1] = ic.Code
	copy(seg[4:], ic.Body)
	return TransportChecksum(src, dst, uint8(IPProtocolICMPv6), seg) == ic.Checksum
}

// ICMPv4 message types used by the testbed.
const (
	ICMPv4TypeEchoReply   uint8 = 0
	ICMPv4TypeEchoRequest uint8 = 8
)

// ICMPv4 is an ICMPv4 message (RFC 792).
type ICMPv4 struct {
	Type     uint8
	Code     uint8
	Checksum uint16
	Body     []byte
}

// LayerType implements Layer.
func (*ICMPv4) LayerType() LayerType { return LayerTypeICMPv4 }

// DecodeFromBytes implements DecodingLayer.
func (ic *ICMPv4) DecodeFromBytes(data []byte) error {
	if len(data) < 4 {
		return ErrTruncated
	}
	ic.Type = data[0]
	ic.Code = data[1]
	ic.Checksum = binary.BigEndian.Uint16(data[2:4])
	ic.Body = data[4:]
	return nil
}

// NextLayerType implements DecodingLayer.
func (*ICMPv4) NextLayerType() LayerType { return LayerTypeZero }

// Payload implements DecodingLayer.
func (*ICMPv4) Payload() []byte { return nil }

// SerializeTo implements SerializableLayer.
func (ic *ICMPv4) SerializeTo(b *Buffer) error {
	b.Prepend(len(ic.Body))
	copy(b.Bytes()[:len(ic.Body)], ic.Body)
	hdr := b.Prepend(4)
	hdr[0] = ic.Type
	hdr[1] = ic.Code
	binary.BigEndian.PutUint16(hdr[2:4], Checksum(b.Bytes()))
	return nil
}
