package packet

import (
	"encoding/binary"
	"net/netip"
)

// ARP operation codes.
const (
	ARPRequest uint16 = 1
	ARPReply   uint16 = 2
)

// ARP is an Ethernet/IPv4 ARP packet (RFC 826).
type ARP struct {
	Op              uint16
	SenderMAC       MAC
	SenderIP        netip.Addr
	TargetMAC       MAC
	TargetIP        netip.Addr
	trailingPayload []byte
}

const arpLen = 28

// LayerType implements Layer.
func (*ARP) LayerType() LayerType { return LayerTypeARP }

// DecodeFromBytes implements DecodingLayer.
func (a *ARP) DecodeFromBytes(data []byte) error {
	if len(data) < arpLen {
		return ErrTruncated
	}
	// Hardware type 1 (Ethernet), protocol 0x0800, sizes 6/4 are assumed;
	// anything else is still decoded structurally.
	a.Op = binary.BigEndian.Uint16(data[6:8])
	copy(a.SenderMAC[:], data[8:14])
	a.SenderIP = netip.AddrFrom4([4]byte(data[14:18]))
	copy(a.TargetMAC[:], data[18:24])
	a.TargetIP = netip.AddrFrom4([4]byte(data[24:28]))
	a.trailingPayload = data[arpLen:]
	return nil
}

// NextLayerType implements DecodingLayer.
func (*ARP) NextLayerType() LayerType { return LayerTypeZero }

// Payload implements DecodingLayer.
func (a *ARP) Payload() []byte { return a.trailingPayload }

// SerializeTo implements SerializableLayer.
func (a *ARP) SerializeTo(b *Buffer) error {
	hdr := b.Prepend(arpLen)
	binary.BigEndian.PutUint16(hdr[0:2], 1) // Ethernet
	binary.BigEndian.PutUint16(hdr[2:4], uint16(EtherTypeIPv4))
	hdr[4] = 6
	hdr[5] = 4
	binary.BigEndian.PutUint16(hdr[6:8], a.Op)
	copy(hdr[8:14], a.SenderMAC[:])
	s := a.SenderIP.As4()
	copy(hdr[14:18], s[:])
	copy(hdr[18:24], a.TargetMAC[:])
	t := a.TargetIP.As4()
	copy(hdr[24:28], t[:])
	return nil
}
