package packet

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// IPv6 is an IPv6 fixed header (RFC 8200). Hop-by-hop and destination
// options extension headers encountered on decode are skipped transparently
// and recorded in ExtHeaders.
type IPv6 struct {
	TrafficClass uint8
	FlowLabel    uint32
	NextHeader   IPProtocol // protocol after any skipped extension headers
	HopLimit     uint8
	Src, Dst     netip.Addr
	// ExtHeaders lists the extension header types skipped during decode,
	// outermost first.
	ExtHeaders  []IPProtocol
	PayloadData []byte
}

const ipv6HeaderLen = 40

// LayerType implements Layer.
func (*IPv6) LayerType() LayerType { return LayerTypeIPv6 }

// DecodeFromBytes implements DecodingLayer.
func (ip *IPv6) DecodeFromBytes(data []byte) error {
	if len(data) < ipv6HeaderLen {
		return ErrTruncated
	}
	if v := data[0] >> 4; v != 6 {
		return fmt.Errorf("ipv6: version %d", v)
	}
	ip.TrafficClass = data[0]<<4 | data[1]>>4
	ip.FlowLabel = uint32(data[1]&0x0f)<<16 | uint32(data[2])<<8 | uint32(data[3])
	payloadLen := int(binary.BigEndian.Uint16(data[4:6]))
	next := IPProtocol(data[6])
	ip.HopLimit = data[7]
	ip.Src = netip.AddrFrom16([16]byte(data[8:24]))
	ip.Dst = netip.AddrFrom16([16]byte(data[24:40]))
	rest := data[ipv6HeaderLen:]
	if payloadLen <= len(rest) {
		rest = rest[:payloadLen]
	}
	// Skip chained extension headers we do not interpret.
	ip.ExtHeaders = nil
	for isExtensionHeader(next) {
		if len(rest) < 8 {
			return ErrTruncated
		}
		ip.ExtHeaders = append(ip.ExtHeaders, next)
		hdrLen := 8 + int(rest[1])*8
		if next == IPProtocolFragment {
			hdrLen = 8
		}
		if len(rest) < hdrLen {
			return ErrTruncated
		}
		next = IPProtocol(rest[0])
		rest = rest[hdrLen:]
	}
	ip.NextHeader = next
	ip.PayloadData = rest
	return nil
}

func isExtensionHeader(p IPProtocol) bool {
	switch p {
	case IPProtocolHopByHop, IPProtocolDestOpts, IPProtocolFragment:
		return true
	}
	return false
}

// NextLayerType implements DecodingLayer.
func (ip *IPv6) NextLayerType() LayerType {
	if ip.NextHeader == IPProtocolNoNext {
		return LayerTypeZero
	}
	return transportLayerFor(ip.NextHeader)
}

// Payload implements DecodingLayer.
func (ip *IPv6) Payload() []byte { return ip.PayloadData }

// SerializeTo implements SerializableLayer. HopLimit defaults to 64 when
// zero; extension headers are not emitted.
func (ip *IPv6) SerializeTo(b *Buffer) error {
	if !ip.Src.Is6() || ip.Src.Is4In6() || !ip.Dst.Is6() || ip.Dst.Is4In6() {
		return fmt.Errorf("ipv6: src/dst not IPv6 (%v -> %v)", ip.Src, ip.Dst)
	}
	payloadLen := b.Len()
	if payloadLen > 65535 {
		return fmt.Errorf("ipv6: payload %d exceeds 16-bit length field", payloadLen)
	}
	hdr := b.Prepend(ipv6HeaderLen)
	hdr[0] = 6<<4 | ip.TrafficClass>>4
	hdr[1] = ip.TrafficClass<<4 | uint8(ip.FlowLabel>>16)&0x0f
	hdr[2] = uint8(ip.FlowLabel >> 8)
	hdr[3] = uint8(ip.FlowLabel)
	binary.BigEndian.PutUint16(hdr[4:6], uint16(payloadLen))
	hdr[6] = uint8(ip.NextHeader)
	hl := ip.HopLimit
	if hl == 0 {
		hl = 64
	}
	hdr[7] = hl
	s, d := ip.Src.As16(), ip.Dst.As16()
	copy(hdr[8:24], s[:])
	copy(hdr[24:40], d[:])
	return nil
}
