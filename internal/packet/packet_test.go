package packet

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
)

var (
	mac1 = MAC{0x02, 0x11, 0x22, 0x33, 0x44, 0x55}
	mac2 = MAC{0x02, 0xaa, 0xbb, 0xcc, 0xdd, 0xee}
	ip41 = netip.MustParseAddr("192.168.1.10")
	ip42 = netip.MustParseAddr("8.8.8.8")
	ip61 = netip.MustParseAddr("2001:470:8:100::10")
	ip62 = netip.MustParseAddr("2001:4860:4860::8888")
)

func TestEthernetRoundTrip(t *testing.T) {
	eth := &Ethernet{Dst: mac2, Src: mac1, Type: EtherTypeIPv6}
	frame, err := Serialize(eth, Raw("hello"))
	if err != nil {
		t.Fatal(err)
	}
	var got Ethernet
	if err := got.DecodeFromBytes(frame); err != nil {
		t.Fatal(err)
	}
	if got.Src != mac1 || got.Dst != mac2 || got.Type != EtherTypeIPv6 {
		t.Errorf("header mismatch: %+v", got)
	}
	if string(got.Payload()) != "hello" {
		t.Errorf("payload = %q", got.Payload())
	}
}

func TestEthernetTruncated(t *testing.T) {
	var e Ethernet
	if err := e.DecodeFromBytes(make([]byte, 13)); err == nil {
		t.Fatal("want error for 13-byte frame")
	}
}

func TestMACHelpers(t *testing.T) {
	if got := mac1.String(); got != "02:11:22:33:44:55" {
		t.Errorf("String = %q", got)
	}
	if !BroadcastMAC.IsMulticast() {
		t.Error("broadcast should be multicast")
	}
	if mac1.IsMulticast() {
		t.Error("unicast flagged multicast")
	}
	if (MAC{}).IsZero() != true || mac1.IsZero() {
		t.Error("IsZero wrong")
	}
	if mac1.OUI() != [3]byte{0x02, 0x11, 0x22} {
		t.Error("OUI wrong")
	}
}

func TestARPRoundTrip(t *testing.T) {
	a := &ARP{Op: ARPRequest, SenderMAC: mac1, SenderIP: ip41, TargetMAC: MAC{}, TargetIP: ip42}
	frame, err := Serialize(&Ethernet{Dst: BroadcastMAC, Src: mac1, Type: EtherTypeARP}, a)
	if err != nil {
		t.Fatal(err)
	}
	p := Parse(frame)
	if p.Err != nil {
		t.Fatal(p.Err)
	}
	if p.ARP == nil {
		t.Fatal("no ARP layer")
	}
	if p.ARP.Op != ARPRequest || p.ARP.SenderIP != ip41 || p.ARP.TargetIP != ip42 {
		t.Errorf("ARP mismatch: %+v", p.ARP)
	}
}

func TestIPv4UDPRoundTrip(t *testing.T) {
	payload := []byte("dns query bytes")
	frame, err := Serialize(
		&Ethernet{Dst: mac2, Src: mac1, Type: EtherTypeIPv4},
		&IPv4{Protocol: IPProtocolUDP, Src: ip41, Dst: ip42, TTL: 64},
		&UDP{SrcPort: 5353, DstPort: 53, Src: ip41, Dst: ip42},
		Raw(payload),
	)
	if err != nil {
		t.Fatal(err)
	}
	p := Parse(frame)
	if p.Err != nil {
		t.Fatal(p.Err)
	}
	if p.IPv4 == nil || p.UDP == nil {
		t.Fatal("missing layers")
	}
	if p.IPv4.Src != ip41 || p.IPv4.Dst != ip42 {
		t.Errorf("ip mismatch %v -> %v", p.IPv4.Src, p.IPv4.Dst)
	}
	if p.SrcPort() != 5353 || p.DstPort() != 53 {
		t.Errorf("ports %d -> %d", p.SrcPort(), p.DstPort())
	}
	if !bytes.Equal(p.TransportPayload(), payload) {
		t.Errorf("payload %q", p.TransportPayload())
	}
	// Verify the UDP checksum survives pseudo-header recomputation.
	raw := p.Ethernet.Payload()[20:]
	if got := TransportChecksum(ip41, ip42, uint8(IPProtocolUDP), zeroCk(raw, 6)); got != p.UDP.Checksum {
		t.Errorf("udp checksum: computed %04x, wire %04x", got, p.UDP.Checksum)
	}
}

// zeroCk returns a copy of seg with the 2-byte checksum at off zeroed.
func zeroCk(seg []byte, off int) []byte {
	c := append([]byte(nil), seg...)
	c[off], c[off+1] = 0, 0
	return c
}

func TestIPv6TCPRoundTrip(t *testing.T) {
	payload := []byte("tls client hello-ish")
	frame, err := Serialize(
		&Ethernet{Dst: mac2, Src: mac1, Type: EtherTypeIPv6},
		&IPv6{NextHeader: IPProtocolTCP, Src: ip61, Dst: ip62, HopLimit: 64},
		&TCP{SrcPort: 40000, DstPort: 443, Seq: 1000, Ack: 2000, Flags: TCPFlagPSH | TCPFlagACK, Src: ip61, Dst: ip62},
		Raw(payload),
	)
	if err != nil {
		t.Fatal(err)
	}
	p := Parse(frame)
	if p.Err != nil {
		t.Fatal(p.Err)
	}
	if !p.IsIPv6() || p.TCP == nil {
		t.Fatal("missing layers")
	}
	if p.SrcIP() != ip61 || p.DstIP() != ip62 {
		t.Errorf("addrs %v -> %v", p.SrcIP(), p.DstIP())
	}
	if !p.TCP.HasFlag(TCPFlagACK) || p.TCP.HasFlag(TCPFlagSYN) {
		t.Errorf("flags %02x", p.TCP.Flags)
	}
	if !bytes.Equal(p.TransportPayload(), payload) {
		t.Errorf("payload %q", p.TransportPayload())
	}
	raw := p.Ethernet.Payload()[40:]
	if got := TransportChecksum(ip61, ip62, uint8(IPProtocolTCP), zeroCk(raw, 16)); got != p.TCP.Checksum {
		t.Errorf("tcp checksum: computed %04x, wire %04x", got, p.TCP.Checksum)
	}
}

func TestICMPv6RoundTrip(t *testing.T) {
	body := []byte{0, 0, 0, 0, 1, 2, 3, 4}
	frame, err := Serialize(
		&Ethernet{Dst: mac2, Src: mac1, Type: EtherTypeIPv6},
		&IPv6{NextHeader: IPProtocolICMPv6, Src: ip61, Dst: ip62, HopLimit: 255},
		&ICMPv6{Type: ICMPv6TypeNeighborSolicit, Body: body, Src: ip61, Dst: ip62},
	)
	if err != nil {
		t.Fatal(err)
	}
	p := Parse(frame)
	if p.Err != nil {
		t.Fatal(p.Err)
	}
	if p.ICMPv6 == nil || p.ICMPv6.Type != ICMPv6TypeNeighborSolicit {
		t.Fatalf("icmpv6 layer: %+v", p.ICMPv6)
	}
	if !bytes.Equal(p.ICMPv6.Body, body) {
		t.Errorf("body %x", p.ICMPv6.Body)
	}
	if !p.ICMPv6.VerifyChecksum(ip61, ip62) {
		t.Error("checksum did not verify")
	}
	if p.ICMPv6.VerifyChecksum(ip61, netip.MustParseAddr("2001:db8::1")) {
		t.Error("checksum verified with wrong address")
	}
}

func TestICMPv4RoundTrip(t *testing.T) {
	frame, err := Serialize(
		&Ethernet{Dst: mac2, Src: mac1, Type: EtherTypeIPv4},
		&IPv4{Protocol: IPProtocolICMPv4, Src: ip41, Dst: ip42},
		&ICMPv4{Type: ICMPv4TypeEchoRequest, Body: []byte{0, 1, 0, 1}},
	)
	if err != nil {
		t.Fatal(err)
	}
	p := Parse(frame)
	if p.Err != nil {
		t.Fatal(p.Err)
	}
	if p.ICMPv4 == nil || p.ICMPv4.Type != ICMPv4TypeEchoRequest {
		t.Fatalf("icmpv4: %+v", p.ICMPv4)
	}
	// Full-message checksum must fold to zero when summed with itself.
	seg := append([]byte{p.ICMPv4.Type, p.ICMPv4.Code, byte(p.ICMPv4.Checksum >> 8), byte(p.ICMPv4.Checksum)}, p.ICMPv4.Body...)
	if Checksum(seg) != 0 {
		t.Error("icmpv4 checksum does not validate")
	}
}

func TestIPv6ExtensionHeaderSkip(t *testing.T) {
	// Hand-build IPv6 + hop-by-hop + UDP.
	udpSeg, err := Serialize(&UDP{SrcPort: 1, DstPort: 2, Src: ip61, Dst: ip62})
	if err != nil {
		t.Fatal(err)
	}
	hbh := append([]byte{uint8(IPProtocolUDP), 0, 1, 4, 0, 0, 0, 0}, udpSeg...)
	frame, err := Serialize(
		&Ethernet{Dst: mac2, Src: mac1, Type: EtherTypeIPv6},
		&IPv6{NextHeader: IPProtocolHopByHop, Src: ip61, Dst: ip62},
		Raw(hbh),
	)
	if err != nil {
		t.Fatal(err)
	}
	p := Parse(frame)
	if p.Err != nil {
		t.Fatal(p.Err)
	}
	if p.UDP == nil {
		t.Fatal("UDP not found past extension header")
	}
	if len(p.IPv6.ExtHeaders) != 1 || p.IPv6.ExtHeaders[0] != IPProtocolHopByHop {
		t.Errorf("ext headers: %v", p.IPv6.ExtHeaders)
	}
}

func TestParseGarbageIsBestEffort(t *testing.T) {
	frame, err := Serialize(
		&Ethernet{Dst: mac2, Src: mac1, Type: EtherTypeIPv6},
		Raw("too short for ipv6"),
	)
	if err != nil {
		t.Fatal(err)
	}
	p := Parse(frame)
	if p.Err == nil {
		t.Fatal("want decode error")
	}
	if p.Ethernet == nil {
		t.Fatal("outer layer should still decode")
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example: 00 01 f2 03 f4 f5 f6 f7 -> sum 0xddf2 -> cksum 0x220d.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != 0x220d {
		t.Errorf("checksum = %04x, want 220d", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	if Checksum([]byte{0xff}) != ^uint16(0xff00) {
		t.Error("odd-length padding wrong")
	}
}

// Property: serializing a UDP/IPv6 packet and re-parsing it yields the same
// ports and payload for arbitrary payloads.
func TestQuickUDPRoundTrip(t *testing.T) {
	f := func(sp, dp uint16, payload []byte) bool {
		frame, err := Serialize(
			&Ethernet{Dst: mac2, Src: mac1, Type: EtherTypeIPv6},
			&IPv6{NextHeader: IPProtocolUDP, Src: ip61, Dst: ip62},
			&UDP{SrcPort: sp, DstPort: dp, Src: ip61, Dst: ip62},
			Raw(payload),
		)
		if err != nil {
			return false
		}
		p := Parse(frame)
		if p.Err != nil || p.UDP == nil {
			return false
		}
		return p.UDP.SrcPort == sp && p.UDP.DstPort == dp && bytes.Equal(p.UDP.PayloadData, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the Internet checksum of any segment with its computed checksum
// inserted validates to zero.
func TestQuickChecksumSelfValidates(t *testing.T) {
	f := func(data []byte) bool {
		ck := Checksum(data)
		seg := append(append([]byte(nil), data...), byte(ck>>8), byte(ck))
		return len(data)%2 == 1 || Checksum(seg) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBufferPrependGrowth(t *testing.T) {
	b := NewBuffer(2)
	copy(b.Prepend(4), "tail")
	copy(b.Prepend(8), "headpart")
	if got := string(b.Bytes()); got != "headparttail" {
		t.Errorf("buffer = %q", got)
	}
	if b.Len() != 12 {
		t.Errorf("len = %d", b.Len())
	}
	copy(b.Append(3), "end")
	if got := string(b.Bytes()); got != "headparttailend" {
		t.Errorf("after append = %q", got)
	}
	b.Clear()
	if b.Len() != 0 {
		t.Errorf("after clear len = %d", b.Len())
	}
}

func TestLayerTypeStrings(t *testing.T) {
	for lt, want := range map[LayerType]string{
		LayerTypeEthernet: "Ethernet", LayerTypeARP: "ARP", LayerTypeIPv4: "IPv4",
		LayerTypeIPv6: "IPv6", LayerTypeICMPv4: "ICMPv4", LayerTypeICMPv6: "ICMPv6",
		LayerTypeUDP: "UDP", LayerTypeTCP: "TCP", LayerTypePayload: "Payload",
	} {
		if lt.String() != want {
			t.Errorf("%d.String() = %q, want %q", lt, lt.String(), want)
		}
	}
	if EtherTypeIPv6.String() != "IPv6" || IPProtocolUDP.String() != "UDP" {
		t.Error("enum strings wrong")
	}
}
