package packet

import (
	"bytes"
	"net/netip"
	"testing"
)

// fuzzSeeds builds a small corpus of well-formed frames spanning the layer
// types the decoder walks, so the fuzzer starts from valid structure and
// mutates toward the interesting truncation/corruption boundaries.
func fuzzSeeds() [][]byte {
	src6 := netip.MustParseAddr("2001:470:8:100::10")
	dst6 := netip.MustParseAddr("2606:4700:10::1")
	src4 := netip.MustParseAddr("192.168.1.10")
	dst4 := netip.MustParseAddr("8.8.8.8")
	ethv6 := &Ethernet{Dst: MAC{2, 1, 2, 3, 4, 5}, Src: MAC{2, 5, 4, 3, 2, 1}, Type: EtherTypeIPv6}
	ethv4 := &Ethernet{Dst: MAC{2, 1, 2, 3, 4, 5}, Src: MAC{2, 5, 4, 3, 2, 1}, Type: EtherTypeIPv4}

	var seeds [][]byte
	add := func(f []byte, err error) {
		if err != nil {
			panic(err)
		}
		seeds = append(seeds, f)
	}
	add(Serialize(ethv6,
		&IPv6{NextHeader: IPProtocolTCP, Src: src6, Dst: dst6},
		&TCP{SrcPort: 40000, DstPort: 443, Flags: TCPFlagPSH | TCPFlagACK, Src: src6, Dst: dst6},
		Raw(bytes.Repeat([]byte{0xab}, 64))))
	add(Serialize(ethv6,
		&IPv6{NextHeader: IPProtocolUDP, Src: src6, Dst: dst6},
		&UDP{SrcPort: 5353, DstPort: 53, Src: src6, Dst: dst6},
		Raw(bytes.Repeat([]byte{0x01}, 32))))
	add(Serialize(ethv6,
		&IPv6{NextHeader: IPProtocolICMPv6, HopLimit: 255, Src: src6, Dst: dst6},
		&ICMPv6{Type: ICMPv6TypeRouterSolicit, Src: src6, Dst: dst6}))
	add(Serialize(ethv4,
		&IPv4{Protocol: IPProtocolUDP, TTL: 64, Src: src4, Dst: dst4},
		&UDP{SrcPort: 53, DstPort: 5353, Src: src4, Dst: dst4},
		Raw(bytes.Repeat([]byte{0x02}, 24))))
	add(Serialize(
		&Ethernet{Dst: BroadcastMAC, Src: MAC{2, 5, 4, 3, 2, 1}, Type: EtherTypeARP},
		&ARP{Op: ARPRequest, SenderMAC: MAC{2, 5, 4, 3, 2, 1}, SenderIP: src4, TargetIP: dst4}))
	return seeds
}

// FuzzDecoderParse drives the reusable Decoder — the parser on every
// steady-state hot path, including the streaming analysis tap — over
// arbitrary bytes. It asserts the two properties the pipeline relies on:
// no input panics, and a nil Err implies the link layer was decoded
// (the streaming Observer's skip condition assumes Err==nil ⇒ Ethernet
// is set). Each input also goes through ParseIP and the corresponding
// allocating package-level parser, whose outcome must agree with the
// Decoder's.
func FuzzDecoderParse(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Add([]byte{0x60})                   // IPv6 version nibble, truncated header
	f.Add([]byte{0x45, 0x00})             // IPv4 version nibble, truncated header
	f.Add(bytes.Repeat([]byte{0xff}, 14)) // Ethernet header, unknown EtherType

	dec := NewDecoder()
	f.Fuzz(func(t *testing.T, data []byte) {
		p := dec.Parse(data)
		if p.Err == nil && p.Ethernet == nil {
			t.Fatalf("Parse(%x): nil Err but no Ethernet layer", data)
		}
		if alloc := Parse(data); (alloc.Err == nil) != (p.Err == nil) {
			t.Fatalf("Parse(%x): decoder err %v, package-level err %v", data, p.Err, alloc.Err)
		}

		ip := dec.ParseIP(data)
		if ip.Err == nil && ip.IPv4 == nil && ip.IPv6 == nil {
			t.Fatalf("ParseIP(%x): nil Err but no IP layer", data)
		}
		if alloc := ParseIP(data); (alloc.Err == nil) != (ip.Err == nil) {
			t.Fatalf("ParseIP(%x): decoder err %v, package-level err %v", data, ip.Err, alloc.Err)
		}
	})
}
