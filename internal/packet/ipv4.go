package packet

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// IPProtocol is the IPv4 protocol / IPv6 next-header number.
type IPProtocol uint8

// The IP protocol numbers used by the testbed.
const (
	IPProtocolICMPv4   IPProtocol = 1
	IPProtocolTCP      IPProtocol = 6
	IPProtocolUDP      IPProtocol = 17
	IPProtocolICMPv6   IPProtocol = 58
	IPProtocolNoNext   IPProtocol = 59
	IPProtocolHopByHop IPProtocol = 0
	IPProtocolDestOpts IPProtocol = 60
	IPProtocolFragment IPProtocol = 44
)

// String names well-known protocol numbers.
func (p IPProtocol) String() string {
	switch p {
	case IPProtocolICMPv4:
		return "ICMPv4"
	case IPProtocolTCP:
		return "TCP"
	case IPProtocolUDP:
		return "UDP"
	case IPProtocolICMPv6:
		return "ICMPv6"
	case IPProtocolNoNext:
		return "NoNextHeader"
	}
	return fmt.Sprintf("IPProtocol(%d)", uint8(p))
}

func transportLayerFor(p IPProtocol) LayerType {
	switch p {
	case IPProtocolICMPv4:
		return LayerTypeICMPv4
	case IPProtocolICMPv6:
		return LayerTypeICMPv6
	case IPProtocolUDP:
		return LayerTypeUDP
	case IPProtocolTCP:
		return LayerTypeTCP
	}
	return LayerTypePayload
}

// IPv4 is an IPv4 header (RFC 791) without options support on the
// serialization path; received options are skipped.
type IPv4 struct {
	TOS         uint8
	ID          uint16
	Flags       uint8 // 3-bit flags field (bit 1 = DF, bit 0 of wire = reserved)
	FragOffset  uint16
	TTL         uint8
	Protocol    IPProtocol
	Src, Dst    netip.Addr
	PayloadData []byte
}

const ipv4HeaderLen = 20

// LayerType implements Layer.
func (*IPv4) LayerType() LayerType { return LayerTypeIPv4 }

// DecodeFromBytes implements DecodingLayer.
func (ip *IPv4) DecodeFromBytes(data []byte) error {
	if len(data) < ipv4HeaderLen {
		return ErrTruncated
	}
	if v := data[0] >> 4; v != 4 {
		return fmt.Errorf("ipv4: version %d", v)
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < ipv4HeaderLen || len(data) < ihl {
		return ErrTruncated
	}
	ip.TOS = data[1]
	totalLen := int(binary.BigEndian.Uint16(data[2:4]))
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	ff := binary.BigEndian.Uint16(data[6:8])
	ip.Flags = uint8(ff >> 13)
	ip.FragOffset = ff & 0x1fff
	ip.TTL = data[8]
	ip.Protocol = IPProtocol(data[9])
	ip.Src = netip.AddrFrom4([4]byte(data[12:16]))
	ip.Dst = netip.AddrFrom4([4]byte(data[16:20]))
	end := totalLen
	if end < ihl || end > len(data) {
		end = len(data)
	}
	ip.PayloadData = data[ihl:end]
	return nil
}

// NextLayerType implements DecodingLayer.
func (ip *IPv4) NextLayerType() LayerType { return transportLayerFor(ip.Protocol) }

// Payload implements DecodingLayer.
func (ip *IPv4) Payload() []byte { return ip.PayloadData }

// SerializeTo implements SerializableLayer. TTL defaults to 64 when zero.
func (ip *IPv4) SerializeTo(b *Buffer) error {
	if !ip.Src.Is4() || !ip.Dst.Is4() {
		return fmt.Errorf("ipv4: src/dst not IPv4 (%v -> %v)", ip.Src, ip.Dst)
	}
	payloadLen := b.Len()
	if payloadLen > 65535-ipv4HeaderLen {
		return fmt.Errorf("ipv4: payload %d exceeds 16-bit length field", payloadLen)
	}
	hdr := b.Prepend(ipv4HeaderLen)
	hdr[0] = 0x45
	hdr[1] = ip.TOS
	binary.BigEndian.PutUint16(hdr[2:4], uint16(ipv4HeaderLen+payloadLen))
	binary.BigEndian.PutUint16(hdr[4:6], ip.ID)
	binary.BigEndian.PutUint16(hdr[6:8], uint16(ip.Flags)<<13|ip.FragOffset&0x1fff)
	ttl := ip.TTL
	if ttl == 0 {
		ttl = 64
	}
	hdr[8] = ttl
	hdr[9] = uint8(ip.Protocol)
	s, d := ip.Src.As4(), ip.Dst.As4()
	copy(hdr[12:16], s[:])
	copy(hdr[16:20], d[:])
	binary.BigEndian.PutUint16(hdr[10:12], Checksum(hdr))
	return nil
}
