package packet

import "net/netip"

// sum16 accumulates data into the running one's-complement sum.
func sum16(sum uint32, data []byte) uint32 {
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if n%2 == 1 {
		sum += uint32(data[n-1]) << 8
	}
	return sum
}

// foldChecksum folds a 32-bit accumulator into the final 16-bit Internet
// checksum.
func foldChecksum(sum uint32) uint16 {
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// Checksum computes the RFC 1071 Internet checksum over data.
func Checksum(data []byte) uint16 { return foldChecksum(sum16(0, data)) }

// pseudoHeaderSum returns the partial checksum of the IPv4 or IPv6
// pseudo-header used by UDP, TCP, and ICMPv6.
func pseudoHeaderSum(src, dst netip.Addr, proto uint8, length int) uint32 {
	var sum uint32
	if src.Is4() && dst.Is4() {
		s, d := src.As4(), dst.As4()
		sum = sum16(sum, s[:])
		sum = sum16(sum, d[:])
		sum += uint32(proto)
		sum += uint32(length)
		return sum
	}
	s, d := src.As16(), dst.As16()
	sum = sum16(sum, s[:])
	sum = sum16(sum, d[:])
	sum += uint32(length >> 16)
	sum += uint32(length & 0xffff)
	sum += uint32(proto)
	return sum
}

// TransportChecksum computes the checksum of a UDP, TCP, or ICMPv6 segment
// (header+payload, with its checksum field zeroed) between src and dst.
func TransportChecksum(src, dst netip.Addr, proto uint8, segment []byte) uint16 {
	return foldChecksum(sum16(pseudoHeaderSum(src, dst, proto, len(segment)), segment))
}
