package packet

import (
	"encoding/binary"
	"net/netip"
)

// sum16 accumulates data into the running one's-complement sum. It reads
// eight bytes per step into a 64-bit accumulator — one's-complement
// addition is associative, so summing aligned 32-bit words and deferring
// the carry fold gives the same result as the word-at-a-time definition —
// and folds below 16 bits before returning so callers can keep chaining
// 16-bit quantities into a uint32 without overflow.
func sum16(sum uint32, data []byte) uint32 {
	s := uint64(sum)
	for len(data) >= 8 {
		s += uint64(binary.BigEndian.Uint32(data)) + uint64(binary.BigEndian.Uint32(data[4:]))
		data = data[8:]
	}
	if len(data) >= 4 {
		s += uint64(binary.BigEndian.Uint32(data))
		data = data[4:]
	}
	if len(data) >= 2 {
		s += uint64(binary.BigEndian.Uint16(data))
		data = data[2:]
	}
	if len(data) == 1 {
		s += uint64(data[0]) << 8
	}
	for s>>16 != 0 {
		s = (s & 0xffff) + (s >> 16)
	}
	return uint32(s)
}

// foldChecksum folds a 32-bit accumulator into the final 16-bit Internet
// checksum.
func foldChecksum(sum uint32) uint16 {
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// Checksum computes the RFC 1071 Internet checksum over data.
func Checksum(data []byte) uint16 { return foldChecksum(sum16(0, data)) }

// pseudoHeaderSum returns the partial checksum of the IPv4 or IPv6
// pseudo-header used by UDP, TCP, and ICMPv6.
func pseudoHeaderSum(src, dst netip.Addr, proto uint8, length int) uint32 {
	var sum uint32
	if src.Is4() && dst.Is4() {
		s, d := src.As4(), dst.As4()
		sum = sum16(sum, s[:])
		sum = sum16(sum, d[:])
		sum += uint32(proto)
		sum += uint32(length)
		return sum
	}
	s, d := src.As16(), dst.As16()
	sum = sum16(sum, s[:])
	sum = sum16(sum, d[:])
	sum += uint32(length >> 16)
	sum += uint32(length & 0xffff)
	sum += uint32(proto)
	return sum
}

// TransportChecksum computes the checksum of a UDP, TCP, or ICMPv6 segment
// (header+payload, with its checksum field zeroed) between src and dst.
func TransportChecksum(src, dst netip.Addr, proto uint8, segment []byte) uint16 {
	return foldChecksum(sum16(pseudoHeaderSum(src, dst, proto, len(segment)), segment))
}
