package packet

import (
	"encoding/binary"
	"fmt"
)

// MAC is a 48-bit IEEE 802 hardware address.
type MAC [6]byte

// String renders the address in colon-separated lowercase hex.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsZero reports whether the address is all zeros.
func (m MAC) IsZero() bool { return m == MAC{} }

// IsMulticast reports whether the group bit (I/G) is set.
func (m MAC) IsMulticast() bool { return m[0]&0x01 != 0 }

// OUI returns the 24-bit organizationally unique identifier.
func (m MAC) OUI() [3]byte { return [3]byte{m[0], m[1], m[2]} }

// BroadcastMAC is the Ethernet broadcast address ff:ff:ff:ff:ff:ff.
var BroadcastMAC = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// EtherType identifies the protocol carried in an Ethernet frame.
type EtherType uint16

// The EtherType values used by the testbed.
const (
	EtherTypeIPv4 EtherType = 0x0800
	EtherTypeARP  EtherType = 0x0806
	EtherTypeIPv6 EtherType = 0x86dd
)

// String names well-known EtherType values.
func (t EtherType) String() string {
	switch t {
	case EtherTypeIPv4:
		return "IPv4"
	case EtherTypeARP:
		return "ARP"
	case EtherTypeIPv6:
		return "IPv6"
	}
	return fmt.Sprintf("EtherType(0x%04x)", uint16(t))
}

// Ethernet is a DIX Ethernet II frame header.
type Ethernet struct {
	Dst, Src    MAC
	Type        EtherType
	PayloadData []byte
}

const ethernetHeaderLen = 14

// LayerType implements Layer.
func (*Ethernet) LayerType() LayerType { return LayerTypeEthernet }

// DecodeFromBytes implements DecodingLayer.
func (e *Ethernet) DecodeFromBytes(data []byte) error {
	if len(data) < ethernetHeaderLen {
		return ErrTruncated
	}
	copy(e.Dst[:], data[0:6])
	copy(e.Src[:], data[6:12])
	e.Type = EtherType(binary.BigEndian.Uint16(data[12:14]))
	e.PayloadData = data[ethernetHeaderLen:]
	return nil
}

// NextLayerType implements DecodingLayer.
func (e *Ethernet) NextLayerType() LayerType {
	switch e.Type {
	case EtherTypeIPv4:
		return LayerTypeIPv4
	case EtherTypeARP:
		return LayerTypeARP
	case EtherTypeIPv6:
		return LayerTypeIPv6
	}
	return LayerTypePayload
}

// Payload implements DecodingLayer.
func (e *Ethernet) Payload() []byte { return e.PayloadData }

// SerializeTo implements SerializableLayer.
func (e *Ethernet) SerializeTo(b *Buffer) error {
	hdr := b.Prepend(ethernetHeaderLen)
	copy(hdr[0:6], e.Dst[:])
	copy(hdr[6:12], e.Src[:])
	binary.BigEndian.PutUint16(hdr[12:14], uint16(e.Type))
	return nil
}
