package packet

// Buffer is a prepend-oriented serialization buffer, in the style of
// gopacket's SerializeBuffer: outer layers are written in front of the
// bytes already present, so a packet is built by serializing its layers in
// reverse order (payload first, Ethernet last). SerializeLayers does the
// reversal for callers.
type Buffer struct {
	data  []byte // window [start:] of buf holds the current content
	start int
}

// NewBuffer returns a Buffer with room to prepend about headroom bytes
// before reallocating.
func NewBuffer(headroom int) *Buffer {
	if headroom < 0 {
		headroom = 0
	}
	return &Buffer{data: make([]byte, headroom), start: headroom}
}

// Bytes returns the current contents. The slice is invalidated by the next
// Prepend/Append/Clear.
func (b *Buffer) Bytes() []byte { return b.data[b.start:] }

// Len returns the number of content bytes.
func (b *Buffer) Len() int { return len(b.data) - b.start }

// Clear empties the buffer while retaining capacity.
func (b *Buffer) Clear() {
	half := cap(b.data) / 2
	b.data = b.data[:half]
	b.start = half
}

// Prepend grows the content by n bytes at the front and returns the new
// zeroed region.
func (b *Buffer) Prepend(n int) []byte {
	if n > b.start {
		headroom := n + 64
		grown := make([]byte, headroom+b.Len())
		copy(grown[headroom:], b.data[b.start:])
		b.data = grown
		b.start = headroom
	}
	b.start -= n
	region := b.data[b.start : b.start+n]
	for i := range region {
		region[i] = 0
	}
	return region
}

// Append grows the content by n bytes at the back and returns the new
// zeroed region.
func (b *Buffer) Append(n int) []byte {
	old := len(b.data)
	for i := 0; i < n; i++ {
		b.data = append(b.data, 0)
	}
	return b.data[old:]
}

// SerializableLayer is a Layer that can write itself in front of a Buffer's
// current contents, treating those contents as its payload.
type SerializableLayer interface {
	Layer
	// SerializeTo prepends the layer's wire image onto b. Implementations
	// that carry checksums over their payload compute them here.
	SerializeTo(b *Buffer) error
}

// SerializeLayers clears b and writes the given layers so that each wraps
// the ones after it; layers[0] ends up outermost.
func SerializeLayers(b *Buffer, layers ...SerializableLayer) error {
	b.Clear()
	for i := len(layers) - 1; i >= 0; i-- {
		if err := layers[i].SerializeTo(b); err != nil {
			return err
		}
	}
	return nil
}

// Serialize is a convenience wrapper that allocates a fresh buffer, runs
// SerializeLayers, and returns the resulting frame bytes.
func Serialize(layers ...SerializableLayer) ([]byte, error) {
	b := NewBuffer(128)
	if err := SerializeLayers(b, layers...); err != nil {
		return nil, err
	}
	out := make([]byte, b.Len())
	copy(out, b.Bytes())
	return out, nil
}

// SerializeInto runs SerializeLayers on a caller-owned reusable buffer and
// returns b.Bytes() directly — no per-frame copy. The returned slice is
// invalidated by the next serialization into b, so it must be consumed
// (sent, copied) before b is reused. Hot send paths pair this with a
// per-host buffer: the netsim switch copies frames into its arena at
// enqueue time, so handing it a view into a reusable buffer is safe.
func SerializeInto(b *Buffer, layers ...SerializableLayer) ([]byte, error) {
	if err := SerializeLayers(b, layers...); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// Arena is a bump allocator for immutable byte blobs: CopyIn copies a
// slice into a large shared chunk and returns a full-capacity-clipped view
// of the copy. One allocation per chunk replaces one per blob, which is
// what makes the per-frame paths (switch queue, capture records) cheap.
// Filled chunks are retained, so returned slices stay valid (and
// immutable) until Reset; an arena that is Reset between runs reaches a
// steady state where CopyIn never allocates at all.
type Arena struct {
	chunks [][]byte
	cur    int
	// ChunkSize is the allocation granularity; 0 means 64 KiB.
	ChunkSize int
}

// CopyIn copies b into the arena and returns the stable copy.
func (a *Arena) CopyIn(b []byte) []byte {
	n := len(b)
	for {
		if a.cur == len(a.chunks) {
			size := a.ChunkSize
			if size <= 0 {
				size = 1 << 16
			}
			if n > size {
				size = n
			}
			a.chunks = append(a.chunks, make([]byte, 0, size))
		}
		c := a.chunks[a.cur]
		if cap(c)-len(c) >= n {
			off := len(c)
			c = append(c, b...)
			a.chunks[a.cur] = c
			return c[off : off+n : off+n]
		}
		a.cur++
	}
}

// Reset rewinds the arena to empty while keeping every chunk's capacity,
// invalidating all slices previously returned by CopyIn: their bytes will
// be overwritten by subsequent CopyIns. Callers pooling an arena across
// runs must ensure nothing from the previous run still references its
// memory before calling Reset.
func (a *Arena) Reset() {
	for i := range a.chunks {
		a.chunks[i] = a.chunks[i][:0]
	}
	a.cur = 0
}

// Raw is a SerializableLayer wrapping literal payload bytes.
type Raw []byte

// LayerType implements Layer.
func (Raw) LayerType() LayerType { return LayerTypePayload }

// SerializeTo implements SerializableLayer.
func (r Raw) SerializeTo(b *Buffer) error {
	copy(b.Prepend(len(r)), r)
	return nil
}
