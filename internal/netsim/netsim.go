// Package netsim provides the deterministic, single-threaded layer-2
// network the testbed runs on: a virtual switch to which hosts (the 93 IoT
// devices, the router, the scanner) attach, a simulated clock, and capture
// taps that record every frame the way tcpdump on the paper's router does.
//
// Frames are delivered synchronously from a FIFO queue; handlers may inject
// more frames, and Run drains the queue until the network is quiescent.
// Determinism (fixed attach order, fixed queue order, simulated time) makes
// every study run byte-for-byte reproducible.
package netsim

import (
	"fmt"
	"time"

	"v6lab/internal/packet"
	"v6lab/internal/telemetry"
)

// Clock is the simulated wall clock shared by the whole testbed.
type Clock struct {
	now time.Time
}

// NewClock starts a clock at the given instant.
func NewClock(start time.Time) *Clock { return &Clock{now: start} }

// Now returns the current simulated instant.
func (c *Clock) Now() time.Time { return c.now }

// Advance moves the clock forward; negative durations are ignored.
func (c *Clock) Advance(d time.Duration) {
	if d > 0 {
		c.now = c.now.Add(d)
	}
}

// Reset rewinds the clock to the given instant, for pooled environments
// that restart runs from a common base time.
func (c *Clock) Reset(t time.Time) { c.now = t }

// AdvanceTo moves the clock forward to the given instant; instants at or
// before the current one are ignored, so the clock stays monotonic. The
// event-scheduled timeline engine uses it to jump from event to event:
// frame deliveries between events advance the clock by per-frame delays,
// so the next event time may already be in the past when it pops.
func (c *Clock) AdvanceTo(t time.Time) {
	if t.After(c.now) {
		c.now = t
	}
}

// Tap consumes every frame the switch delivers, in delivery order. A
// pcapio.Capture is the buffering implementation (record every frame for
// later re-parsing); the analysis package's streaming Observer is the
// incremental one (parse at delivery, retain only extracted values). Tap
// implementations must not retain data past the call: the bytes live in
// the switch's frame arena and are recycled on Reset.
type Tap interface {
	Add(t time.Time, data []byte)
}

// Host is anything attached to the network that can receive frames.
type Host interface {
	// HandleFrame processes one inbound frame. It may call Port.Send to
	// transmit in response.
	HandleFrame(frame []byte)
}

// Verdict is an Impairment's decision about one frame at delivery time.
type Verdict int

// The possible frame fates.
const (
	// Deliver hands the frame to its receivers normally.
	Deliver Verdict = iota
	// Drop loses the frame in the air: no tap, no receivers, no clock
	// advance — as if the radio never carried it.
	Drop
	// Duplicate delivers the frame now and once more later (the copy is
	// re-enqueued at the back of the queue).
	Duplicate
	// Defer postpones the frame to the back of the queue, reordering it
	// past everything currently queued. A deferred frame is delivered
	// unconditionally on its second pass, guaranteeing progress.
	Defer
)

// Impairment decides the fate of each frame the switch is about to
// deliver. Implementations must be deterministic in call order; the
// switch consults it exactly once per originally-queued frame.
type Impairment interface {
	Verdict(frame []byte) Verdict
}

// Port is a host's attachment point to the network.
type Port struct {
	net  *Network
	host Host
	// MAC is the port's hardware address.
	MAC packet.MAC
	// Promiscuous ports receive every frame regardless of destination.
	Promiscuous bool
	index       int
}

// Send transmits a frame from this port onto the network.
func (p *Port) Send(frame []byte) { p.net.enqueue(p.index, frame) }

// Network is a single L2 broadcast domain with MAC-based delivery.
type Network struct {
	Clock *Clock
	ports []*Port
	taps  []Tap
	// queue[qhead:] holds the pending frames; draining advances qhead
	// instead of re-slicing so the backing array survives Reset.
	queue []queued
	qhead int
	// byMAC indexes ports by hardware address for O(1) unicast delivery.
	// dupMAC flips when two live ports share a MAC, forcing the delivery
	// loop back to the exhaustive scan so both still receive.
	byMAC  map[packet.MAC]*Port
	dupMAC bool
	// PerFrameDelay is how far the clock advances per delivered frame.
	PerFrameDelay time.Duration
	// delivered counts frames delivered over the network's lifetime.
	delivered int
	// imp, when set, impairs frames at delivery time (loss, duplication,
	// reordering). dropped counts frames it swallowed.
	imp     Impairment
	dropped int
	// arena pools the per-frame copies enqueue makes: one chunk
	// allocation per 64 KiB of traffic instead of one per frame. Chunks
	// are recycled by Reset, so queued frames (and any sub-slices handlers
	// retain, e.g. a parsed DUID) stay valid until then.
	arena packet.Arena
	// metrics, when set, counts switch activity into pre-resolved
	// telemetry instruments (plain atomic adds, no allocation).
	metrics *Metrics
}

// Metrics holds the switch's hot-path instruments. They are resolved once
// at registration so the frame loop does nothing but atomic additions —
// additions commute, keeping snapshots identical across worker counts.
type Metrics struct {
	// Switched counts frames delivered to receivers.
	Switched *telemetry.Counter
	// Dropped counts frames an impairment swallowed.
	Dropped *telemetry.Counter
	// Impaired counts non-Deliver verdicts (drop, defer, duplicate).
	Impaired *telemetry.Counter
	// ArenaBytes counts bytes copied into the frame arena by enqueue.
	ArenaBytes *telemetry.Counter
	// FrameBytes is the per-delivered-frame size distribution.
	FrameBytes *telemetry.Histogram
}

// NewMetrics registers (or re-binds) the switch instruments on r.
func NewMetrics(r *telemetry.Registry) *Metrics {
	return &Metrics{
		Switched:   r.Counter("netsim", "frames_switched_total", "Frames delivered by the L2 switch."),
		Dropped:    r.Counter("netsim", "frames_dropped_total", "Frames swallowed by impairment verdicts."),
		Impaired:   r.Counter("netsim", "frames_impaired_total", "Frames given a non-deliver impairment verdict (drop, defer, duplicate)."),
		ArenaBytes: r.Counter("netsim", "arena_bytes_total", "Bytes copied into the zero-copy frame arena."),
		FrameBytes: r.Histogram("netsim", "frame_bytes", "Per-delivered-frame sizes in bytes.", []uint64{64, 128, 256, 512, 1280, 1500}),
	}
}

type queued struct {
	from  int
	frame []byte
	// deferred marks a frame already reordered or duplicated once; it is
	// exempt from further impairment so the queue always drains.
	deferred bool
}

// NewNetwork creates an empty network on the given clock.
func NewNetwork(clock *Clock) *Network {
	return &Network{Clock: clock, PerFrameDelay: 200 * time.Microsecond}
}

// Attach connects a host with the given MAC and returns its port.
func (n *Network) Attach(h Host, mac packet.MAC) *Port {
	p := &Port{net: n, host: h, MAC: mac, index: len(n.ports)}
	n.ports = append(n.ports, p)
	if n.byMAC == nil {
		n.byMAC = make(map[packet.MAC]*Port)
	}
	if _, taken := n.byMAC[mac]; taken {
		n.dupMAC = true
	}
	n.byMAC[mac] = p
	return p
}

// Reset returns the network to its just-constructed state — no ports, taps,
// queued frames, impairment, or counters — while keeping the queue's and
// frame arena's capacity, so a pooled network reaches a steady state where
// running a full home allocates nothing in the switch. All frames handed to
// handlers before the Reset are invalidated (their bytes will be reused);
// hosts from the previous run must be discarded or Reset themselves. A
// non-nil clock replaces the network's clock; metrics and PerFrameDelay are
// retained.
func (n *Network) Reset(clock *Clock) {
	n.ports = n.ports[:0]
	n.taps = n.taps[:0]
	n.queue = n.queue[:0]
	n.qhead = 0
	clear(n.byMAC)
	n.dupMAC = false
	n.delivered = 0
	n.dropped = 0
	n.imp = nil
	n.arena.Reset()
	if clock != nil {
		n.Clock = clock
	}
}

// AddTap registers a sink that sees every frame on the wire.
func (n *Network) AddTap(tap Tap) { n.taps = append(n.taps, tap) }

// Delivered reports the total number of frames delivered so far.
func (n *Network) Delivered() int { return n.delivered }

// SetImpairment installs a frame-fate policy on the switch; nil restores
// the perfect network.
func (n *Network) SetImpairment(imp Impairment) { n.imp = imp }

// Dropped reports how many frames the installed impairment swallowed.
func (n *Network) Dropped() int { return n.dropped }

// SetMetrics installs pre-resolved telemetry instruments on the switch;
// nil disables instrumentation (the default).
func (n *Network) SetMetrics(m *Metrics) { n.metrics = m }

func (n *Network) enqueue(from int, frame []byte) {
	// Copy: senders reuse their serialization buffers. The copy lands in
	// the network's frame arena, not a fresh heap slice per frame.
	n.queue = append(n.queue, queued{from: from, frame: n.arena.CopyIn(frame)})
	if n.metrics != nil {
		n.metrics.ArenaBytes.Add(uint64(len(frame)))
	}
}

// Run delivers queued frames (and any frames handlers inject) until the
// network is quiescent or maxFrames deliveries have occurred. It returns
// the number of frames delivered and an error if the budget was exhausted,
// which in practice means a forwarding loop.
func (n *Network) Run(maxFrames int) (int, error) {
	// Unicast frames go straight to their destination port via byMAC; the
	// exhaustive attach-order scan remains for promiscuous listeners and
	// (defensively) duplicate MACs, where per-port checks are the point.
	scan := n.dupMAC
	for _, p := range n.ports {
		if p.Promiscuous {
			scan = true
		}
	}
	count := 0
	for n.qhead < len(n.queue) {
		if count >= maxFrames {
			return count, fmt.Errorf("netsim: frame budget %d exhausted (forwarding loop?)", maxFrames)
		}
		q := n.queue[n.qhead]
		n.qhead++
		count++
		if n.imp != nil && !q.deferred {
			switch n.imp.Verdict(q.frame) {
			case Drop:
				n.dropped++
				if n.metrics != nil {
					n.metrics.Dropped.Inc()
					n.metrics.Impaired.Inc()
				}
				continue
			case Defer:
				q.deferred = true
				n.queue = append(n.queue, q)
				if n.metrics != nil {
					n.metrics.Impaired.Inc()
				}
				continue
			case Duplicate:
				dup := queued{from: q.from, frame: q.frame, deferred: true}
				n.queue = append(n.queue, dup)
				if n.metrics != nil {
					n.metrics.Impaired.Inc()
				}
			}
		}
		n.delivered++
		n.Clock.Advance(n.PerFrameDelay)
		if n.metrics != nil {
			n.metrics.Switched.Inc()
			n.metrics.FrameBytes.Observe(uint64(len(q.frame)))
		}
		for _, tap := range n.taps {
			tap.Add(n.Clock.Now(), q.frame)
		}
		dst := frameDst(q.frame)
		switch {
		case scan:
			for _, p := range n.ports {
				if p.index == q.from {
					continue
				}
				if p.Promiscuous || dst == p.MAC || dst.IsMulticast() || dst == packet.BroadcastMAC {
					p.host.HandleFrame(q.frame)
				}
			}
		case dst.IsMulticast() || dst == packet.BroadcastMAC:
			for _, p := range n.ports {
				if p.index != q.from {
					p.host.HandleFrame(q.frame)
				}
			}
		default:
			if p := n.byMAC[dst]; p != nil && p.index != q.from {
				p.host.HandleFrame(q.frame)
			}
		}
	}
	if n.qhead == len(n.queue) {
		n.queue = n.queue[:0]
		n.qhead = 0
	}
	return count, nil
}

func frameDst(frame []byte) packet.MAC {
	var dst packet.MAC
	if len(frame) >= 6 {
		copy(dst[:], frame[:6])
	}
	return dst
}
