package netsim

import (
	"testing"
	"time"

	"v6lab/internal/packet"
	"v6lab/internal/pcapio"
)

type recordingHost struct {
	port     *Port
	received [][]byte
	// echoTo, when set, retransmits every received frame once (loop test).
	echo bool
}

func (h *recordingHost) HandleFrame(frame []byte) {
	h.received = append(h.received, append([]byte(nil), frame...))
	if h.echo && len(frame) >= 12 {
		// Bounce the frame back to its sender.
		reply := append([]byte(nil), frame...)
		copy(reply[0:6], frame[6:12])
		copy(reply[6:12], h.port.MAC[:])
		h.port.Send(reply)
	}
}

func frameTo(dst, src packet.MAC, payload string) []byte {
	f, err := packet.Serialize(&packet.Ethernet{Dst: dst, Src: src, Type: packet.EtherTypeIPv4}, packet.Raw(payload))
	if err != nil {
		panic(err)
	}
	return f
}

var (
	macA = packet.MAC{2, 0, 0, 0, 0, 1}
	macB = packet.MAC{2, 0, 0, 0, 0, 2}
	macC = packet.MAC{2, 0, 0, 0, 0, 3}
)

func newTestNet() (*Network, *recordingHost, *recordingHost, *recordingHost) {
	n := NewNetwork(NewClock(time.Unix(1712300000, 0)))
	a, b, c := &recordingHost{}, &recordingHost{}, &recordingHost{}
	a.port = n.Attach(a, macA)
	b.port = n.Attach(b, macB)
	c.port = n.Attach(c, macC)
	return n, a, b, c
}

func TestUnicastDelivery(t *testing.T) {
	n, a, b, c := newTestNet()
	a.port.Send(frameTo(macB, macA, "hi"))
	if _, err := n.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(b.received) != 1 {
		t.Errorf("b received %d frames", len(b.received))
	}
	if len(c.received) != 0 || len(a.received) != 0 {
		t.Error("unicast leaked to other hosts")
	}
}

func TestBroadcastAndMulticastDelivery(t *testing.T) {
	n, a, b, c := newTestNet()
	a.port.Send(frameTo(packet.BroadcastMAC, macA, "bc"))
	a.port.Send(frameTo(packet.MAC{0x33, 0x33, 0, 0, 0, 1}, macA, "mc"))
	if _, err := n.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(b.received) != 2 || len(c.received) != 2 {
		t.Errorf("b=%d c=%d", len(b.received), len(c.received))
	}
	if len(a.received) != 0 {
		t.Error("sender received its own frame")
	}
}

func TestPromiscuousPortSeesAll(t *testing.T) {
	n, a, _, _ := newTestNet()
	sniffer := &recordingHost{}
	p := n.Attach(sniffer, packet.MAC{2, 9, 9, 9, 9, 9})
	p.Promiscuous = true
	a.port.Send(frameTo(macB, macA, "x"))
	if _, err := n.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(sniffer.received) != 1 {
		t.Errorf("sniffer got %d", len(sniffer.received))
	}
}

func TestTapCapturesEverythingWithTimestamps(t *testing.T) {
	n, a, _, _ := newTestNet()
	var cap pcapio.Capture
	n.AddTap(&cap)
	start := n.Clock.Now()
	a.port.Send(frameTo(macB, macA, "one"))
	a.port.Send(frameTo(macC, macA, "two"))
	if _, err := n.Run(100); err != nil {
		t.Fatal(err)
	}
	if cap.Len() != 2 {
		t.Fatalf("captured %d", cap.Len())
	}
	if !cap.Records[1].Time.After(cap.Records[0].Time) || !cap.Records[0].Time.After(start) {
		t.Error("timestamps not monotonically advancing")
	}
}

func TestFrameBudgetStopsLoops(t *testing.T) {
	n, a, b, _ := newTestNet()
	a.echo, b.echo = true, true
	a.port.Send(frameTo(macB, macA, "ping"))
	if _, err := n.Run(50); err == nil {
		t.Fatal("want budget-exhausted error")
	}
}

func TestHandlersCanChainTraffic(t *testing.T) {
	n, a, b, _ := newTestNet()
	b.echo = true // b re-broadcasts to a's address? it echoes same frame (dst macB), so no re-delivery to b
	a.port.Send(frameTo(macB, macA, "req"))
	delivered, err := n.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if delivered != 2 {
		t.Errorf("delivered %d frames, want 2 (original + echo)", delivered)
	}
	if n.Delivered() != 2 {
		t.Errorf("Delivered() = %d", n.Delivered())
	}
}

func TestClock(t *testing.T) {
	c := NewClock(time.Unix(0, 0))
	c.Advance(time.Second)
	c.Advance(-time.Hour)
	if c.Now() != time.Unix(1, 0) {
		t.Errorf("clock = %v", c.Now())
	}
}

func TestSendCopiesFrame(t *testing.T) {
	n, a, b, _ := newTestNet()
	f := frameTo(macB, macA, "orig")
	a.port.Send(f)
	f[14] = 'X'
	if _, err := n.Run(10); err != nil {
		t.Fatal(err)
	}
	if string(b.received[0][14:]) != "orig" {
		t.Error("frame aliased sender buffer")
	}
}
