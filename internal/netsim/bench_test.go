package netsim

import (
	"testing"
	"time"

	"v6lab/internal/packet"
	"v6lab/internal/pcapio"
	"v6lab/internal/telemetry"
)

type sinkHost struct{ n int }

func (h *sinkHost) HandleFrame([]byte) { h.n++ }

// BenchmarkDelivery measures switch throughput with the study's port count
// (93 devices + router + scanner).
func BenchmarkDelivery(b *testing.B) {
	n := NewNetwork(NewClock(time.Unix(0, 0)))
	hosts := make([]*sinkHost, 95)
	ports := make([]*Port, 95)
	for i := range hosts {
		hosts[i] = &sinkHost{}
		ports[i] = n.Attach(hosts[i], packet.MAC{2, 0, 0, 0, byte(i >> 8), byte(i)})
	}
	frame, err := packet.Serialize(
		&packet.Ethernet{Dst: ports[1].MAC, Src: ports[0].MAC, Type: packet.EtherTypeIPv4},
		packet.Raw(make([]byte, 200)))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ports[0].Send(frame)
		if _, err := n.Run(10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFramePath measures the per-frame hot path the studies exercise:
// enqueue (arena copy) → impairment-free delivery → capture tap (arena
// copy) → handler dispatch. Allocs/op here is the number the CI bench
// gate tracks; the arena design keeps it amortized near zero. Telemetry
// is enabled so the gate also proves the instruments stay off the heap:
// a counter update is one atomic add, a histogram observation two.
func BenchmarkFramePath(b *testing.B) {
	n := NewNetwork(NewClock(time.Unix(0, 0)))
	n.SetMetrics(NewMetrics(telemetry.NewRegistry()))
	cap := &pcapio.Capture{}
	n.AddTap(cap)
	hosts := [2]*sinkHost{{}, {}}
	var ports [2]*Port
	for i := range hosts {
		ports[i] = n.Attach(hosts[i], packet.MAC{2, 0, 0, 0, 0, byte(i)})
	}
	frame, err := packet.Serialize(
		&packet.Ethernet{Dst: ports[1].MAC, Src: ports[0].MAC, Type: packet.EtherTypeIPv4},
		packet.Raw(make([]byte, 200)))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ports[0].Send(frame)
		if _, err := n.Run(1); err != nil {
			b.Fatal(err)
		}
	}
}
