package netsim

import (
	"testing"

	"v6lab/internal/telemetry"
)

// TestSwitchMetrics exercises every instrument the switch updates:
// arena bytes at enqueue, switched/dropped/impaired in the delivery
// loop, and the frame-size histogram.
func TestSwitchMetrics(t *testing.T) {
	n, a, _, _ := newTestNet()
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	n.SetMetrics(m)
	n.SetImpairment(&scriptedImpairment{verdicts: []Verdict{Drop, Duplicate, Defer}})

	f1 := frameTo(macB, macA, "lost")
	f2 := frameTo(macB, macA, "doubled")
	f3 := frameTo(macB, macA, "late")
	wantArena := len(f1) + len(f2) + len(f3)
	a.port.Send(f1)
	a.port.Send(f2)
	a.port.Send(f3)
	if _, err := n.Run(100); err != nil {
		t.Fatal(err)
	}

	// f1 dropped; f2 delivered twice (original + duplicate); f3 deferred
	// then delivered: 3 switched frames, 1 dropped, 3 impairment verdicts.
	if got := m.Switched.Value(); got != 3 {
		t.Errorf("Switched = %d, want 3", got)
	}
	if got := m.Dropped.Value(); got != 1 {
		t.Errorf("Dropped = %d, want 1", got)
	}
	if got := m.Impaired.Value(); got != 3 {
		t.Errorf("Impaired = %d, want 3", got)
	}
	if got := m.ArenaBytes.Value(); got != uint64(wantArena) {
		t.Errorf("ArenaBytes = %d, want %d", got, wantArena)
	}
	if got := m.FrameBytes.Count(); got != 3 {
		t.Errorf("FrameBytes count = %d, want 3", got)
	}

	// The counters mirror the network's own diagnostics.
	if int(m.Switched.Value()) != n.Delivered() || int(m.Dropped.Value()) != n.Dropped() {
		t.Errorf("metrics (%d, %d) disagree with network (%d, %d)",
			m.Switched.Value(), m.Dropped.Value(), n.Delivered(), n.Dropped())
	}
}
