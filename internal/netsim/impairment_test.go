package netsim

import (
	"testing"

	"v6lab/internal/pcapio"
)

// scriptedImpairment replays a fixed verdict sequence (Deliver after it
// runs out).
type scriptedImpairment struct {
	verdicts []Verdict
	i        int
}

func (s *scriptedImpairment) Verdict(frame []byte) Verdict {
	if s.i >= len(s.verdicts) {
		return Deliver
	}
	v := s.verdicts[s.i]
	s.i++
	return v
}

func TestImpairmentDrop(t *testing.T) {
	n, a, b, _ := newTestNet()
	var cap pcapio.Capture
	n.AddTap(&cap)
	n.SetImpairment(&scriptedImpairment{verdicts: []Verdict{Drop, Deliver}})
	start := n.Clock.Now()
	a.port.Send(frameTo(macB, macA, "lost"))
	a.port.Send(frameTo(macB, macA, "kept"))
	if _, err := n.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(b.received) != 1 || string(b.received[0][14:]) != "kept" {
		t.Fatalf("b received %v", b.received)
	}
	// A dropped frame vanishes in the air: no capture, no clock advance.
	if cap.Len() != 1 {
		t.Errorf("captured %d frames, want 1 (drops must not be tapped)", cap.Len())
	}
	if got := n.Clock.Now().Sub(start); got != n.PerFrameDelay {
		t.Errorf("clock advanced %v, want one PerFrameDelay", got)
	}
	if n.Dropped() != 1 {
		t.Errorf("Dropped() = %d, want 1", n.Dropped())
	}
	if n.Delivered() != 1 {
		t.Errorf("Delivered() = %d, want 1", n.Delivered())
	}
}

func TestImpairmentDuplicate(t *testing.T) {
	n, a, b, _ := newTestNet()
	n.SetImpairment(&scriptedImpairment{verdicts: []Verdict{Duplicate}})
	a.port.Send(frameTo(macB, macA, "twice"))
	if _, err := n.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(b.received) != 2 {
		t.Fatalf("b received %d frames, want 2", len(b.received))
	}
}

func TestImpairmentDeferReorders(t *testing.T) {
	n, a, b, _ := newTestNet()
	n.SetImpairment(&scriptedImpairment{verdicts: []Verdict{Defer, Deliver}})
	a.port.Send(frameTo(macB, macA, "first"))
	a.port.Send(frameTo(macB, macA, "second"))
	if _, err := n.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(b.received) != 2 {
		t.Fatalf("b received %d frames, want 2", len(b.received))
	}
	if string(b.received[0][14:]) != "second" || string(b.received[1][14:]) != "first" {
		t.Errorf("order = %q, %q; want second, first", b.received[0][14:], b.received[1][14:])
	}
}

// A deferred frame is delivered unconditionally on its second pass — even
// an always-Defer impairment cannot livelock the queue.
func TestDeferredFramesAreExemptFromReimpairment(t *testing.T) {
	n, a, b, _ := newTestNet()
	always := make([]Verdict, 100)
	for i := range always {
		always[i] = Defer
	}
	n.SetImpairment(&scriptedImpairment{verdicts: always})
	a.port.Send(frameTo(macB, macA, "x"))
	if _, err := n.Run(10); err != nil {
		t.Fatal(err)
	}
	if len(b.received) != 1 {
		t.Fatalf("b received %d frames, want 1", len(b.received))
	}
}

func TestNilImpairmentRestoresPerfectNetwork(t *testing.T) {
	n, a, b, _ := newTestNet()
	n.SetImpairment(&scriptedImpairment{verdicts: []Verdict{Drop}})
	n.SetImpairment(nil)
	a.port.Send(frameTo(macB, macA, "ok"))
	if _, err := n.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(b.received) != 1 {
		t.Fatalf("b received %d frames, want 1", len(b.received))
	}
}
