package analysis

import (
	"sync"

	"v6lab/internal/experiment"
)

// Streaming returns the observer factory experiment studies plug into
// StudyOptions.Observe: one streaming Observer per run, feeding this
// package's extraction core at frame-delivery time (CaptureNone runs).
func Streaming() experiment.ObserverFactory {
	return func(cfg experiment.Config, st *experiment.Study) experiment.Observer {
		return NewObserver(cfg.ID, cfg.Mode, st.MACToDevice)
	}
}

// observationsFor returns one experiment's finished observations: the
// already-streamed observer's (finalized in place), or a fresh batch
// extraction over the buffered capture. Both paths run the same core.
func observationsFor(st *experiment.Study, res *experiment.RunResult) *ExpObs {
	if res.Capture != nil {
		return Observe(res.Config.ID, res.Config.Mode, res.Capture, st.MACToDevice, res.Functional)
	}
	if o, ok := res.Observed.(*Observer); ok {
		return o.Finalize(res.Functional)
	}
	panic("analysis: run has neither a capture nor a streaming Observer")
}

// FromStudy runs the extraction over every experiment a Study produced and
// assembles the Dataset the table derivations consume. Each frame is
// parsed exactly once — at delivery for streaming (CaptureNone) runs, or
// here over the buffered capture; when the study's Workers allow it, the
// per-capture extractions run concurrently (they are independent) and land
// in the dataset in experiment order, so the result never depends on
// scheduling.
func FromStudy(st *experiment.Study) *Dataset {
	ds := &Dataset{
		Profiles:   st.Profiles,
		ActiveAAAA: map[string]bool{},
		Cloud:      st.Cloud,
	}
	ds.Exps = make([]*ExpObs, len(st.Results))
	workers := st.Workers
	if workers > len(st.Results) {
		workers = len(st.Results)
	}
	if workers <= 1 {
		for i, res := range st.Results {
			ds.Exps[i] = observationsFor(st, res)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					ds.Exps[i] = observationsFor(st, st.Results[i])
				}
			}()
		}
		for i := range st.Results {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}
	for name, r := range st.ActiveDNS {
		ds.ActiveAAAA[name] = r.HasAAAA
	}
	return ds
}
