package analysis

import (
	"v6lab/internal/experiment"
)

// FromStudy runs the extraction over every experiment a Study produced and
// assembles the Dataset the table derivations consume.
func FromStudy(st *experiment.Study) *Dataset {
	ds := &Dataset{
		Profiles:   st.Profiles,
		ActiveAAAA: map[string]bool{},
		Cloud:      st.Cloud,
	}
	for _, res := range st.Results {
		ds.Exps = append(ds.Exps, Observe(res.Config.ID, res.Config.Mode, res.Capture, st.MACToDevice, res.Functional))
	}
	for name, r := range st.ActiveDNS {
		ds.ActiveAAAA[name] = r.HasAAAA
	}
	return ds
}
