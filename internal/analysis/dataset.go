package analysis

import (
	"sync"

	"v6lab/internal/experiment"
)

// FromStudy runs the extraction over every experiment a Study produced and
// assembles the Dataset the table derivations consume. Each capture is
// parsed exactly once; when the study's Workers allow it, the per-capture
// extractions run concurrently (they are independent) and land in the
// dataset in experiment order, so the result never depends on scheduling.
func FromStudy(st *experiment.Study) *Dataset {
	ds := &Dataset{
		Profiles:   st.Profiles,
		ActiveAAAA: map[string]bool{},
		Cloud:      st.Cloud,
	}
	ds.Exps = make([]*ExpObs, len(st.Results))
	workers := st.Workers
	if workers > len(st.Results) {
		workers = len(st.Results)
	}
	if workers <= 1 {
		for i, res := range st.Results {
			ds.Exps[i] = Observe(res.Config.ID, res.Config.Mode, res.Capture, st.MACToDevice, res.Functional)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					res := st.Results[i]
					ds.Exps[i] = Observe(res.Config.ID, res.Config.Mode, res.Capture, st.MACToDevice, res.Functional)
				}
			}()
		}
		for i := range st.Results {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}
	for name, r := range st.ActiveDNS {
		ds.ActiveAAAA[name] = r.HasAAAA
	}
	return ds
}
