package analysis

import (
	"net/netip"
	"testing"
	"time"

	"v6lab/internal/addr"
	"v6lab/internal/device"
	"v6lab/internal/dnsmsg"
	"v6lab/internal/ndp"
	"v6lab/internal/packet"
	"v6lab/internal/pcapio"
	"v6lab/internal/router"
	"v6lab/internal/tlssim"
)

var (
	obsMAC  = packet.MAC{0x02, 0x42, 0x42, 0x10, 0x20, 0x01}
	obsProf = &device.Profile{Name: "testdev", Category: device.Camera}
	obsMap  = map[packet.MAC]*device.Profile{obsMAC: obsProf}
	gua     = addr.EUI64Addr(router.GUAPrefix, obsMAC)
	privGUA = netip.MustParseAddr("2001:470:8:100::abcd")
	remote  = netip.MustParseAddr("2606:4700:10::77")
)

func mkCap(t *testing.T, frames ...[]byte) *pcapio.Capture {
	t.Helper()
	c := &pcapio.Capture{}
	base := time.Unix(1712300000, 0)
	for i, f := range frames {
		c.Add(base.Add(time.Duration(i)*time.Millisecond), f)
	}
	return c
}

func frame(t *testing.T, layers ...packet.SerializableLayer) []byte {
	t.Helper()
	f, err := packet.Serialize(layers...)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func obs1(t *testing.T, c *pcapio.Capture) *DeviceObs {
	t.Helper()
	e := Observe("test", device.ModeV6Only, c, obsMap, nil)
	d := e.Devices["testdev"]
	if d == nil {
		t.Fatal("device not observed")
	}
	return d
}

func TestObserveDADAttribution(t *testing.T) {
	ns := &ndp.NeighborSolicit{Target: gua}
	dst := addr.SolicitedNodeMulticast(gua)
	unspec := netip.IPv6Unspecified()
	c := mkCap(t, frame(t,
		&packet.Ethernet{Dst: addr.MulticastMAC(dst), Src: obsMAC, Type: packet.EtherTypeIPv6},
		&packet.IPv6{NextHeader: packet.IPProtocolICMPv6, HopLimit: 255, Src: unspec, Dst: dst},
		&packet.ICMPv6{Type: packet.ICMPv6TypeNeighborSolicit, Body: ns.MarshalBody(), Src: unspec, Dst: dst}))
	d := obs1(t, c)
	if !d.NDP {
		t.Error("NDP not flagged")
	}
	if !d.DADProbed[gua] {
		t.Error("DAD probe not attributed")
	}
	if d.Assigned[gua] != addr.KindGUA {
		t.Error("probed address not assigned")
	}
	if d.Used[gua] {
		t.Error("DAD probe should not mark use")
	}
}

func TestObserveResolutionNSNotAttributedToSender(t *testing.T) {
	// Address-resolution NS (non-:: source) targets SOMEONE ELSE's
	// address; it must not be attributed to the sender.
	other := netip.MustParseAddr("2001:470:8:100::1")
	ns := &ndp.NeighborSolicit{Target: other, SourceLinkAddr: obsMAC}
	dst := addr.SolicitedNodeMulticast(other)
	c := mkCap(t, frame(t,
		&packet.Ethernet{Dst: addr.MulticastMAC(dst), Src: obsMAC, Type: packet.EtherTypeIPv6},
		&packet.IPv6{NextHeader: packet.IPProtocolICMPv6, HopLimit: 255, Src: gua, Dst: dst},
		&packet.ICMPv6{Type: packet.ICMPv6TypeNeighborSolicit, Body: ns.MarshalBody(), Src: gua, Dst: dst}))
	d := obs1(t, c)
	if _, ok := d.Assigned[other]; ok {
		t.Error("router's address attributed to the device")
	}
}

func TestObserveEUI64DNSExposure(t *testing.T) {
	q := dnsmsg.NewQuery(7, "secret.vendor.example", dnsmsg.TypeAAAA)
	wire, _ := q.Pack()
	dns6 := netip.MustParseAddr("2001:4860:4860::8888")
	c := mkCap(t, frame(t,
		&packet.Ethernet{Dst: router.RouterMAC, Src: obsMAC, Type: packet.EtherTypeIPv6},
		&packet.IPv6{NextHeader: packet.IPProtocolUDP, Src: gua, Dst: dns6},
		&packet.UDP{SrcPort: 9999, DstPort: 53, Src: gua, Dst: dns6},
		packet.Raw(wire)))
	d := obs1(t, c)
	if !d.EUI64DNS || !d.EUI64DNSNames["secret.vendor.example"] {
		t.Errorf("EUI-64 DNS exposure missed: %+v", d.EUI64DNSNames)
	}
	if !d.Queries[QueryKey{Name: "secret.vendor.example", Type: dnsmsg.TypeAAAA, OverV6: true}] {
		t.Error("query not recorded")
	}
}

func TestObserveSNIAttribution(t *testing.T) {
	hello := tlssim.ClientHello("hardcoded.vendor.example", nil)
	c := mkCap(t, frame(t,
		&packet.Ethernet{Dst: router.RouterMAC, Src: obsMAC, Type: packet.EtherTypeIPv6},
		&packet.IPv6{NextHeader: packet.IPProtocolTCP, Src: privGUA, Dst: remote},
		&packet.TCP{SrcPort: 5, DstPort: 443, Flags: packet.TCPFlagPSH | packet.TCPFlagACK, Src: privGUA, Dst: remote},
		packet.Raw(hello)))
	d := obs1(t, c)
	if !d.InternetV6 {
		t.Error("Internet v6 data missed")
	}
	if !d.InternetFlows[FlowKey{Domain: "hardcoded.vendor.example", V6: true}] {
		t.Errorf("SNI attribution failed: %+v", d.InternetFlows)
	}
	if d.BytesV6 != len(hello) {
		t.Errorf("bytes = %d, want %d", d.BytesV6, len(hello))
	}
}

func TestObserveLocalVsInternet(t *testing.T) {
	local := netip.MustParseAddr("ff02::fb")
	lla := addr.LinkLocalEUI64(obsMAC)
	c := mkCap(t, frame(t,
		&packet.Ethernet{Dst: addr.MulticastMAC(local), Src: obsMAC, Type: packet.EtherTypeIPv6},
		&packet.IPv6{NextHeader: packet.IPProtocolUDP, Src: lla, Dst: local},
		&packet.UDP{SrcPort: 5353, DstPort: 5353, Src: lla, Dst: local},
		packet.Raw([]byte("matter"))))
	d := obs1(t, c)
	if !d.LocalV6Data {
		t.Error("local data missed")
	}
	if d.InternetV6 {
		t.Error("multicast misclassified as Internet")
	}
	// On-link GUA destinations also stay local.
	peer := netip.MustParseAddr("2001:470:8:100::77")
	c2 := mkCap(t, frame(t,
		&packet.Ethernet{Dst: packet.MAC{2, 0, 0, 0, 0, 9}, Src: obsMAC, Type: packet.EtherTypeIPv6},
		&packet.IPv6{NextHeader: packet.IPProtocolUDP, Src: gua, Dst: peer},
		&packet.UDP{SrcPort: 1, DstPort: 5540, Src: gua, Dst: peer},
		packet.Raw([]byte("x"))))
	d2 := obs1(t, c2)
	if d2.InternetV6 || !d2.LocalV6Data {
		t.Error("on-link GUA misclassified")
	}
}

func TestObserveNodataResponseIsNegative(t *testing.T) {
	q := dnsmsg.NewQuery(3, "v4only.example", dnsmsg.TypeAAAA)
	r := q.Reply(dnsmsg.RCodeSuccess) // NOERROR, zero answers
	r.Authority = []dnsmsg.Record{{Name: "example", Type: dnsmsg.TypeSOA, Target: "ns.example", TTL: 60}}
	wire, _ := r.Pack()
	dns6 := netip.MustParseAddr("2001:4860:4860::8888")
	c := mkCap(t, frame(t,
		&packet.Ethernet{Dst: obsMAC, Src: router.RouterMAC, Type: packet.EtherTypeIPv6},
		&packet.IPv6{NextHeader: packet.IPProtocolUDP, Src: dns6, Dst: gua},
		&packet.UDP{SrcPort: 53, DstPort: 9999, Src: dns6, Dst: gua},
		packet.Raw(wire)))
	d := obs1(t, c)
	if d.GotAAAAResponse(nil) {
		t.Error("NODATA counted as positive response")
	}
}

func TestObservePositiveResponse(t *testing.T) {
	q := dnsmsg.NewQuery(4, "ok.example", dnsmsg.TypeAAAA)
	r := q.Reply(dnsmsg.RCodeSuccess)
	r.Answers = []dnsmsg.Record{{Name: "ok.example", Type: dnsmsg.TypeAAAA, TTL: 60, Addr: remote}}
	wire, _ := r.Pack()
	dns6 := netip.MustParseAddr("2001:4860:4860::8888")
	c := mkCap(t, frame(t,
		&packet.Ethernet{Dst: obsMAC, Src: router.RouterMAC, Type: packet.EtherTypeIPv6},
		&packet.IPv6{NextHeader: packet.IPProtocolUDP, Src: dns6, Dst: gua},
		&packet.UDP{SrcPort: 53, DstPort: 9999, Src: dns6, Dst: gua},
		packet.Raw(wire)))
	e := Observe("t", device.ModeV6Only, c, obsMap, nil)
	d := e.Devices["testdev"]
	if d == nil || !d.GotAAAAResponse(nil) {
		t.Fatal("positive AAAA response missed")
	}
	if e.IPToName[remote] != "ok.example" {
		t.Error("answer did not feed the IP->name map")
	}
}

func TestObserveIgnoresUnknownMACs(t *testing.T) {
	c := mkCap(t, frame(t,
		&packet.Ethernet{Dst: obsMAC, Src: packet.MAC{2, 9, 9, 9, 9, 9}, Type: packet.EtherTypeIPv6},
		&packet.IPv6{NextHeader: packet.IPProtocolUDP, Src: remote, Dst: gua},
		&packet.UDP{SrcPort: 1, DstPort: 2, Src: remote, Dst: gua},
		packet.Raw([]byte("x"))))
	e := Observe("t", device.ModeV6Only, c, obsMap, nil)
	if len(e.Devices) != 1 { // only the inbound side (testdev) materializes
		t.Errorf("devices = %d", len(e.Devices))
	}
}
