package analysis

import (
	"sort"

	"v6lab/internal/addr"
	"v6lab/internal/cloud"
	"v6lab/internal/dnsmsg"
	"v6lab/internal/paper"
)

// --- Table 7: destination AAAA readiness ---

// Readiness summarizes destination AAAA readiness for one group.
type Readiness struct {
	Group   string
	Devices int
	Domains int
	AAAA    int
}

// Pct returns the AAAA-ready percentage.
func (r Readiness) Pct() float64 {
	if r.Domains == 0 {
		return 0
	}
	return 100 * float64(r.AAAA) / float64(r.Domains)
}

// deviceDomains returns every destination name a device used across all
// experiments (DNS queries plus contacted destinations).
func (ds *Dataset) deviceDomains(name string) map[string]bool {
	out := map[string]bool{}
	d := merged(ds.Exps, name)
	if d == nil {
		return out
	}
	for n := range d.AllDNSNames() {
		out[n] = true
	}
	for fk := range d.InternetFlows {
		out[fk.Domain] = true
	}
	return out
}

// Table7 computes AAAA readiness by category, split functional versus
// non-functional, plus the same split for manufacturers with at least
// minDevices devices.
func (ds *Dataset) Table7(minDevices int) (funcRows, nonFuncRows []Readiness, mfrFunc, mfrNonFunc []Readiness) {
	base := ds.BaselineV6Only()
	type agg struct{ devices, domains, aaaa int }
	catAgg := map[string]map[bool]*agg{}
	mfrAgg := map[string]map[bool]*agg{}
	get := func(m map[string]map[bool]*agg, key string, functional bool) *agg {
		if m[key] == nil {
			m[key] = map[bool]*agg{true: {}, false: {}}
		}
		return m[key][functional]
	}
	for _, p := range ds.Profiles {
		functional := base != nil && base.Functional[p.Name]
		domains := ds.deviceDomains(p.Name)
		na := 0
		for n := range domains {
			if ds.ActiveAAAA[n] {
				na++
			}
		}
		for _, a := range []*agg{get(catAgg, string(p.Category), functional), get(mfrAgg, p.Manufacturer, functional)} {
			a.devices++
			a.domains += len(domains)
			a.aaaa += na
		}
	}
	for _, c := range paper.CategoryOrder {
		for _, functional := range []bool{true, false} {
			a := get(catAgg, c, functional)
			if a.devices == 0 {
				continue
			}
			row := Readiness{Group: c, Devices: a.devices, Domains: a.domains, AAAA: a.aaaa}
			if functional {
				funcRows = append(funcRows, row)
			} else {
				nonFuncRows = append(nonFuncRows, row)
			}
		}
	}
	var mfrs []string
	for m := range mfrAgg {
		mfrs = append(mfrs, m)
	}
	sort.Strings(mfrs)
	for _, m := range mfrs {
		for _, functional := range []bool{true, false} {
			a := get(mfrAgg, m, functional)
			if a.devices == 0 {
				continue
			}
			row := Readiness{Group: m, Devices: a.devices, Domains: a.domains, AAAA: a.aaaa}
			switch {
			case functional:
				mfrFunc = append(mfrFunc, row)
			case a.devices >= minDevices:
				mfrNonFunc = append(mfrNonFunc, row)
			}
		}
	}
	return funcRows, nonFuncRows, mfrFunc, mfrNonFunc
}

// --- Table 9: destination IP-version switching ---

// Switching holds the dual-stack destination transition statistics.
type Switching struct {
	V6Dest, V4Dest, TotalDest paper.Vec
	CommonV4, CommonV6        paper.Vec
	V4PartialToV6, V4FullToV6 paper.Vec
	V6PartialToV4, V6FullToV4 paper.Vec
	V4OnlyWithAAAA            paper.Vec
}

// Table9 classifies every destination's family usage across the three
// network types.
func (ds *Dataset) Table9() Switching {
	var sw Switching
	v4Exp := ds.V4OnlyExp()
	v6Exps := ds.V6OnlyExps()
	dualExps := ds.DualExps()
	for _, p := range ds.Profiles {
		ci := ds.catIndex(p.Name)
		v4only := merged([]*ExpObs{v4Exp}, p.Name)
		v6only := merged(v6Exps, p.Name)
		dual := merged(dualExps, p.Name)
		all := merged(ds.Exps, p.Name)
		if all == nil {
			continue
		}
		// Universe: every name seen from this device (queries + contacts).
		universe := ds.deviceDomains(p.Name)
		sw.TotalDest[ci] += len(universe)

		contacted := func(o *DeviceObs, name string, v6 bool) bool {
			return o != nil && o.InternetFlows[FlowKey{Domain: name, V6: v6}]
		}
		for name := range universe {
			everV6 := contacted(v6only, name, true) || contacted(dual, name, true) || contacted(v4only, name, true)
			everV4 := contacted(v4only, name, false) || contacted(dual, name, false) || contacted(v6only, name, false)
			if everV6 {
				sw.V6Dest[ci]++
			}
			if everV4 {
				sw.V4Dest[ci]++
			}
			// v4-only-run ∩ dual common destinations.
			inV4Run := contacted(v4only, name, false)
			inDualV4 := contacted(dual, name, false)
			inDualV6 := contacted(dual, name, true)
			if inV4Run && (inDualV4 || inDualV6) {
				sw.CommonV4[ci]++
				switch {
				case inDualV4 && inDualV6:
					sw.V4PartialToV6[ci]++
				case inDualV6:
					sw.V4FullToV6[ci]++
				}
			}
			// v6-only-run ∩ dual.
			inV6Run := contacted(v6only, name, true)
			if inV6Run && (inDualV4 || inDualV6) {
				sw.CommonV6[ci]++
				switch {
				case inDualV4 && inDualV6:
					sw.V6PartialToV4[ci]++
				case inDualV4:
					sw.V6FullToV4[ci]++
				}
			}
			// IPv4-only destinations in dual-stack with AAAA records —
			// excluding destinations the device reached over v6 in other
			// runs (those are the "fully switching" rows above).
			if inDualV4 && !inDualV6 && !everV6 && ds.ActiveAAAA[name] {
				sw.V4OnlyWithAAAA[ci]++
			}
		}
	}
	return sw
}

// --- Figure 5: EUI-64 exposure ---

// EUI64Report is the privacy funnel of §5.4.1.
type EUI64Report struct {
	Assign, Use, DNS, Data int
	// Domain exposure by party for the data devices and the DNS-only
	// devices.
	DataDomains, DataFirst, DataThird, DataSupport int
	DNSNames, DNSFirst, DNSThird, DNSSupport       int
	// Devices lists the exposed devices for the report.
	DataDevices, DNSOnlyDevices []string
}

// EUI64Exposure computes the funnel over the union of v6-enabled runs.
func (ds *Dataset) EUI64Exposure() EUI64Report {
	var r EUI64Report
	exps := ds.V6Exps()
	countParties := func(names map[string]bool, first, third, support *int) {
		for n := range names {
			party, _ := DomainParty(ds.Cloud, n)
			switch party {
			case cloud.PartyFirst:
				*first++
			case cloud.PartyThird:
				*third++
			case cloud.PartySupport:
				*support++
			}
		}
	}
	for _, p := range ds.Profiles {
		d := merged(exps, p.Name)
		if d == nil {
			continue
		}
		if !d.EUI64GUAFromAssigned() {
			continue
		}
		r.Assign++
		if d.EUI64GUAUsed {
			r.Use++
		}
		switch {
		case d.EUI64Data:
			r.DNS++ // the data devices also expose via DNS
			r.Data++
			r.DataDevices = append(r.DataDevices, p.Name)
			r.DataDomains += len(d.EUI64DataDomains)
			countParties(d.EUI64DataDomains, &r.DataFirst, &r.DataThird, &r.DataSupport)
		case d.EUI64DNS:
			r.DNS++
			r.DNSOnlyDevices = append(r.DNSOnlyDevices, p.Name)
			r.DNSNames += len(d.EUI64DNSNames)
			countParties(d.EUI64DNSNames, &r.DNSFirst, &r.DNSThird, &r.DNSSupport)
		}
	}
	return r
}

// --- §5.2.1: DAD audit ---

// DADReport is the duplicate-address-detection compliance audit.
type DADReport struct {
	DevicesSkipping                 int
	GUAsNoDAD, ULAsNoDAD, LLAsNoDAD int
	DevicesNeverDAD                 int
	NonCompliant                    []string
}

// DADAudit checks every SLAAC address's first use against prior DAD
// probes, over the union of v6-enabled runs.
func (ds *Dataset) DADAudit() DADReport {
	var r DADReport
	exps := ds.V6Exps()
	for _, p := range ds.Profiles {
		d := merged(exps, p.Name)
		if d == nil || len(d.Assigned) == 0 {
			continue
		}
		skipped, probed := 0, 0
		for a, k := range d.Assigned {
			if a == d.StatefulLease {
				continue // server-assigned, outside the SLAAC audit
			}
			if d.DADProbed[a] {
				probed++
				continue
			}
			skipped++
			switch k {
			case addr.KindGUA:
				r.GUAsNoDAD++
			case addr.KindULA:
				r.ULAsNoDAD++
			case addr.KindLLA:
				r.LLAsNoDAD++
			}
		}
		if skipped > 0 {
			r.DevicesSkipping++
			if probed == 0 {
				r.DevicesNeverDAD++
				r.NonCompliant = append(r.NonCompliant, p.Name)
			}
		}
	}
	sort.Strings(r.NonCompliant)
	return r
}

// --- §5.4.3: tracking domains ---

// TrackingReport compares the functional devices' destinations between the
// IPv4-only and IPv6-only runs.
type TrackingReport struct {
	V4OnlyDomains  int
	V4OnlySLDs     int
	ThirdPartySLDs int
	TrackerSLDs    []string
}

// Tracking finds domains the functional devices contact in IPv4-only but
// not in IPv6-only networks.
func (ds *Dataset) Tracking() TrackingReport {
	var r TrackingReport
	base := ds.BaselineV6Only()
	v4 := ds.V4OnlyExp()
	v6Exps := ds.V6OnlyExps()
	slds := map[string]bool{}
	thirdSLDs := map[string]bool{}
	for _, p := range ds.Profiles {
		if base == nil || !base.Functional[p.Name] {
			continue
		}
		dv4 := merged([]*ExpObs{v4}, p.Name)
		dv6 := merged(v6Exps, p.Name)
		if dv4 == nil {
			continue
		}
		v6Names := map[string]bool{}
		if dv6 != nil {
			for fk := range dv6.InternetFlows {
				v6Names[fk.Domain] = true
			}
			for n := range dv6.AllDNSNames() {
				v6Names[n] = true
			}
		}
		for fk := range dv4.InternetFlows {
			if v6Names[fk.Domain] {
				continue
			}
			r.V4OnlyDomains++
			sld := dnsmsg.SLD(fk.Domain)
			slds[sld] = true
			if party, tracker := DomainParty(ds.Cloud, fk.Domain); party == cloud.PartyThird || tracker {
				thirdSLDs[sld] = true
			}
		}
	}
	r.V4OnlySLDs = len(slds)
	r.ThirdPartySLDs = len(thirdSLDs)
	for s := range thirdSLDs {
		r.TrackerSLDs = append(r.TrackerSLDs, s)
	}
	sort.Strings(r.TrackerSLDs)
	return r
}

// --- Tables 8, 12, 13: groupings ---

// GroupRow is one grouped feature-support row set.
type GroupRow struct {
	Group    string
	Devices  int
	Features map[string]int
	// Addresses / query-name inventories (Table 13).
	Addrs, GUAs, ULAs, LLAs, AAAANames int
	FunctionalV6                       int
}

// GroupBy computes union feature support grouped by an identity dimension
// ("manufacturer", "os", "year"), including groups of at least minSize.
func (ds *Dataset) GroupBy(dim string, minSize int) []GroupRow {
	exps := ds.V6Exps()
	base := ds.BaselineV6Only()
	rowsByGroup := map[string]*GroupRow{}
	keyFor := func(name string) string {
		p := ds.profile(name)
		switch dim {
		case "manufacturer":
			return p.Manufacturer
		case "os":
			return p.OS
		case "year":
			return yearLabel(p.Year)
		}
		return string(p.Category)
	}
	preds := featurePreds()
	for _, p := range ds.Profiles {
		key := keyFor(p.Name)
		row, ok := rowsByGroup[key]
		if !ok {
			row = &GroupRow{Group: key, Features: map[string]int{}}
			rowsByGroup[key] = row
		}
		row.Devices++
		d := merged(exps, p.Name)
		if d == nil {
			d = newDeviceObs(p, [6]byte{})
		}
		for _, pr := range preds {
			if pr.Pred(d) {
				row.Features[pr.Name]++
			}
		}
		if base != nil && base.Functional[p.Name] {
			row.FunctionalV6++
		}
		names := map[string]bool{}
		for k := range d.Queries {
			if k.Type == dnsmsg.TypeAAAA {
				names[k.Name] = true
			}
		}
		row.AAAANames += len(names)
		for a, k := range d.Assigned {
			if a == d.StatefulLease {
				continue
			}
			row.Addrs++
			switch k {
			case addr.KindGUA:
				row.GUAs++
			case addr.KindULA:
				row.ULAs++
			case addr.KindLLA:
				row.LLAs++
			}
		}
	}
	var out []GroupRow
	for _, row := range rowsByGroup {
		if row.Devices >= minSize {
			out = append(out, *row)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Devices != out[j].Devices {
			return out[i].Devices > out[j].Devices
		}
		return out[i].Group < out[j].Group
	})
	return out
}

func yearLabel(y int) string {
	return []string{"?", "2017", "2018", "2019", "2021", "2022", "2023", "2024"}[yearIdx(y)]
}

func yearIdx(y int) int {
	switch y {
	case 2017:
		return 1
	case 2018:
		return 2
	case 2019:
		return 3
	case 2021:
		return 4
	case 2022:
		return 5
	case 2023:
		return 6
	case 2024:
		return 7
	}
	return 0
}
