// Package analysis implements the paper's measurement pipeline: it parses
// the captured packets of each connectivity experiment back into
// per-device observations (addressing, NDP, DAD, DHCPv6, DNS, data
// transmission, EUI-64 exposure) and derives every table and figure of the
// evaluation from them. Nothing in this package reads device profiles —
// only what is on the wire (plus the two active experiments).
package analysis

import (
	"net/netip"
	"strings"
	"time"

	"v6lab/internal/addr"
	"v6lab/internal/cloud"
	"v6lab/internal/device"
	"v6lab/internal/dhcp6"
	"v6lab/internal/dnsmsg"
	"v6lab/internal/ndp"
	"v6lab/internal/packet"
	"v6lab/internal/pcapio"
	"v6lab/internal/router"
	"v6lab/internal/tlssim"
)

// v4Broadcast is the limited-broadcast address, hoisted so the data-frame
// classifier does not re-parse a constant per frame.
var v4Broadcast = netip.MustParseAddr("255.255.255.255")

// QueryKey identifies a distinct DNS question as the paper counts them.
type QueryKey struct {
	Name   string
	Type   dnsmsg.Type
	OverV6 bool
}

// FlowKey identifies a device's contact with a destination over a family.
type FlowKey struct {
	Domain string
	V6     bool
}

// DeviceObs is everything the pipeline extracted about one device in one
// experiment.
type DeviceObs struct {
	Name     string
	Category device.Category
	MAC      packet.MAC

	NDP bool
	// Assigned holds every IPv6 address attributed to the device (DAD
	// targets, NA announcements, DHCPv6 leases, traffic sources).
	Assigned map[netip.Addr]addr.Kind
	// Used holds addresses that sourced non-ND traffic.
	Used map[netip.Addr]bool
	// DADProbed holds addresses probed with duplicate address detection.
	DADProbed map[netip.Addr]bool
	// StatefulLease is the IA_NA address, if any.
	StatefulLease netip.Addr

	StatelessDHCPv6 bool
	StatefulDHCPv6  bool

	// Queries and positive responses observed, keyed by (name, type,
	// transport family).
	Queries   map[QueryKey]bool
	Responses map[QueryKey]bool

	// InternetFlows / LocalFlows: data contacts (non-DNS, non-DHCP).
	InternetFlows map[FlowKey]bool
	LocalV6Data   bool
	// InternetV6 / InternetV4: any global data over the family.
	InternetV6, InternetV4 bool
	// BytesV4 / BytesV6: application payload bytes the device sent to
	// Internet destinations.
	BytesV4, BytesV6 int

	// EUI64 exposure (Figure 5).
	EUI64GUAAssigned bool
	EUI64GUAUsed     bool
	EUI64DNS         bool
	EUI64Data        bool
	// EUI64DNSNames / EUI64DataDomains: names and destinations the EUI-64
	// source address was exposed to.
	EUI64DNSNames    map[string]bool
	EUI64DataDomains map[string]bool

	// Deferred attribution state: Internet destinations contacted before
	// the DNS/SNI mapping is complete. Attribution only labels flows — it
	// never changes which frames count — so parking the destination and
	// resolving it against the final IPToName map at Finalize reproduces
	// the two-pass result exactly. Cleared by Finalize.
	pendingFlows map[pendingFlow]bool
	pendingEUI64 map[netip.Addr]bool
}

// pendingFlow is an unattributed Internet contact: the destination address
// and the family it was reached over.
type pendingFlow struct {
	Dst netip.Addr
	V6  bool
}

func newDeviceObs(p *device.Profile, mac packet.MAC) *DeviceObs {
	return &DeviceObs{
		Name: p.Name, Category: p.Category, MAC: mac,
		Assigned:         map[netip.Addr]addr.Kind{},
		Used:             map[netip.Addr]bool{},
		DADProbed:        map[netip.Addr]bool{},
		Queries:          map[QueryKey]bool{},
		Responses:        map[QueryKey]bool{},
		InternetFlows:    map[FlowKey]bool{},
		EUI64DNSNames:    map[string]bool{},
		EUI64DataDomains: map[string]bool{},
		pendingFlows:     map[pendingFlow]bool{},
		pendingEUI64:     map[netip.Addr]bool{},
	}
}

// ExpObs is one experiment's observations.
type ExpObs struct {
	ID         string
	Mode       device.Mode
	Devices    map[string]*DeviceObs
	Functional map[string]bool
	// IPToName is the DNS/SNI-derived mapping used for attribution.
	IPToName map[netip.Addr]string
}

// addrAttribution records an address as assigned to a device.
func (o *DeviceObs) assign(a netip.Addr) {
	k := addr.Classify(a)
	switch k {
	case addr.KindGUA, addr.KindULA, addr.KindLLA:
		o.Assigned[a] = k
	}
}

func (o *DeviceObs) markUsed(a netip.Addr, mac packet.MAC) {
	if k := addr.Classify(a); k == addr.KindGUA || k == addr.KindULA || k == addr.KindLLA {
		o.Assigned[a] = k
		o.Used[a] = true
		if k == addr.KindGUA && addr.EUI64MatchesMAC(a, mac) {
			o.EUI64GUAUsed = true
		}
	}
}

// Observer is the streaming extraction engine: it consumes frames one at
// a time — at switch-delivery time through the netsim.Tap interface, or
// replayed from a buffered capture by Observe — parses each frame exactly
// once through its private decoder, and accumulates the per-device
// observations online. DNS/SNI attribution is deferred: Internet contacts
// made before the name mapping is complete are parked per device and
// resolved against the final IPToName map at Finalize, which reproduces
// the two-pass semantics exactly (attribution only labels flows, it never
// filters them; see DESIGN.md).
//
// An Observer is single-threaded, like the run it taps. It retains no
// frame bytes — only extracted values — so it is safe to feed arena-backed
// frames that are recycled after the run.
type Observer struct {
	obs    *ExpObs
	dec    *packet.Decoder
	macMap map[packet.MAC]*device.Profile
	frames int
	final  bool
}

// NewObserver returns a streaming observer for one experiment run.
func NewObserver(id string, mode device.Mode, macMap map[packet.MAC]*device.Profile) *Observer {
	return &Observer{
		obs: &ExpObs{
			ID: id, Mode: mode,
			Devices:  map[string]*DeviceObs{},
			IPToName: map[netip.Addr]string{},
		},
		dec:    packet.NewDecoder(),
		macMap: macMap,
	}
}

func (o *Observer) devFor(mac packet.MAC) *DeviceObs {
	p, ok := o.macMap[mac]
	if !ok {
		return nil
	}
	d, ok := o.obs.Devices[p.Name]
	if !ok {
		d = newDeviceObs(p, mac)
		o.obs.Devices[p.Name] = d
	}
	return d
}

// Frames reports how many frames the observer has consumed.
func (o *Observer) Frames() int { return o.frames }

// Add consumes one delivered frame (the netsim.Tap contract). The frame
// is parsed once; the timestamp is unused — analysis never reads capture
// times — but kept for Tap compatibility.
func (o *Observer) Add(_ time.Time, frame []byte) {
	o.frames++
	p := o.dec.Parse(frame)
	if p.Err != nil || p.Ethernet == nil {
		return
	}
	obs := o.obs

	// Attribution sources, exactly the two §5.2.2 names: DNS answers and
	// TLS SNI. The DNS message is unpacked once and shared with the
	// inbound response extraction below.
	var dnsAnswer *dnsmsg.Message
	if p.UDP != nil && p.UDP.SrcPort == 53 {
		if m, err := dnsmsg.Unpack(p.UDP.PayloadData); err == nil && m.Response {
			for _, rr := range m.Answers {
				if rr.Addr.IsValid() {
					obs.IPToName[rr.Addr] = dnsmsg.CanonicalName(rr.Name)
				}
			}
			dnsAnswer = m
		}
	}
	if p.TCP != nil && len(p.TCP.PayloadData) > 0 {
		if sni, err := tlssim.SNI(p.TCP.PayloadData); err == nil && sni != "" {
			obs.IPToName[p.DstIP()] = dnsmsg.CanonicalName(sni)
		}
	}

	// Per-device feature extraction.
	if d := o.devFor(p.Ethernet.Src); d != nil {
		observeOutbound(d, p)
	}
	// Inbound: DNS responses and DHCPv6 replies addressed to devices.
	if dst := o.devFor(p.Ethernet.Dst); dst != nil {
		observeInbound(dst, p, dnsAnswer)
	}
}

// Finalize resolves the deferred attribution against the completed
// IPToName map, attaches the functionality outcomes, and returns the
// finished observations. Call it after the last Add; repeated calls
// return the same finished observations (FromStudy may assemble several
// datasets over one study), and further Adds are a caller bug.
func (o *Observer) Finalize(functional map[string]bool) *ExpObs {
	if o.final {
		return o.obs
	}
	o.final = true
	obs := o.obs
	obs.Functional = functional
	for _, d := range obs.Devices {
		for pf := range d.pendingFlows {
			if name := obs.IPToName[pf.Dst]; name != "" {
				d.InternetFlows[FlowKey{Domain: name, V6: pf.V6}] = true
			}
		}
		for a := range d.pendingEUI64 {
			if name := obs.IPToName[a]; name != "" {
				d.EUI64DataDomains[name] = true
			}
		}
		d.pendingFlows, d.pendingEUI64 = nil, nil
	}
	return obs
}

// Observe runs the extraction over one experiment's buffered capture by
// replaying it through a streaming Observer: the batch and streaming
// paths share one extraction core, so they are equal by construction.
func Observe(id string, mode device.Mode, cap *pcapio.Capture, macMap map[packet.MAC]*device.Profile, functional map[string]bool) *ExpObs {
	o := NewObserver(id, mode, macMap)
	for _, rec := range cap.Records {
		o.Add(rec.Time, rec.Data)
	}
	return o.Finalize(functional)
}

func observeOutbound(d *DeviceObs, p *packet.Packet) {
	if p.IPv6 == nil {
		observeOutboundV4(d, p)
		return
	}
	src := p.IPv6.Src
	if p.ICMPv6 != nil {
		t := p.ICMPv6.Type
		if ndp.IsNDPType(t) {
			d.NDP = true
		}
		switch t {
		case packet.ICMPv6TypeNeighborSolicit:
			if ns, err := ndp.ParseNeighborSolicit(p.ICMPv6.Body); err == nil {
				if addr.Classify(src) == addr.KindUnspecified {
					// DAD probe: the sender is claiming the target.
					d.DADProbed[ns.Target] = true
					d.assign(ns.Target)
				}
			}
			return
		case packet.ICMPv6TypeNeighborAdvert:
			if na, err := ndp.ParseNeighborAdvert(p.ICMPv6.Body); err == nil {
				d.assign(na.Target)
			}
			return
		case packet.ICMPv6TypeRouterSolicit, packet.ICMPv6TypeRouterAdvert:
			return
		case packet.ICMPv6TypeEchoRequest:
			// Echo probes count as address *use* but not data transmission.
			d.markUsed(src, d.MAC)
			return
		default:
			return
		}
	}
	d.markUsed(src, d.MAC)
	switch {
	case p.UDP != nil && p.UDP.DstPort == dhcp6.ServerPort:
		if m, err := dhcp6.Unmarshal(p.UDP.PayloadData); err == nil {
			switch m.Type {
			case dhcp6.InfoRequest:
				d.StatelessDHCPv6 = true
			case dhcp6.Solicit, dhcp6.Request:
				d.StatefulDHCPv6 = true
			}
		}
	case p.UDP != nil && p.UDP.DstPort == 53:
		observeQuery(d, p, true, src)
	default:
		observeData(d, p, true, src)
	}
}

func observeOutboundV4(d *DeviceObs, p *packet.Packet) {
	if p.IPv4 == nil {
		return
	}
	switch {
	case p.UDP != nil && (p.UDP.DstPort == 67 || p.UDP.DstPort == 68):
	case p.UDP != nil && p.UDP.DstPort == 53:
		observeQuery(d, p, false, p.IPv4.Src)
	case p.ICMPv4 != nil:
	default:
		observeData(d, p, false, p.IPv4.Src)
	}
}

func observeQuery(d *DeviceObs, p *packet.Packet, overV6 bool, src netip.Addr) {
	m, err := dnsmsg.Unpack(p.UDP.PayloadData)
	if err != nil || m.Response || len(m.Questions) == 0 {
		return
	}
	q := m.Questions[0]
	d.Queries[QueryKey{Name: dnsmsg.CanonicalName(q.Name), Type: q.Type, OverV6: overV6}] = true
	if overV6 && addr.EUI64MatchesMAC(src, d.MAC) {
		d.EUI64DNS = true
		d.EUI64DNSNames[dnsmsg.CanonicalName(q.Name)] = true
	}
}

// observeData classifies a non-DNS, non-DHCP TCP/UDP transmission.
// Destination-name attribution is deferred: the destination is parked on
// the device and resolved against the completed IPToName map at Finalize.
func observeData(d *DeviceObs, p *packet.Packet, v6 bool, src netip.Addr) {
	if p.TCP == nil && p.UDP == nil {
		return
	}
	dst := p.DstIP()
	payload := len(p.TransportPayload())
	if v6 {
		switch addr.Classify(dst) {
		case addr.KindGUA:
			if router.GUAPrefix.Contains(dst) {
				// LAN-internal global traffic stays local.
				d.LocalV6Data = true
				return
			}
			d.InternetV6 = true
			d.BytesV6 += payload
			d.pendingFlows[pendingFlow{Dst: dst, V6: true}] = true
			if addr.EUI64MatchesMAC(src, d.MAC) {
				d.EUI64Data = true
				d.pendingEUI64[dst] = true
			}
		case addr.KindULA, addr.KindLLA, addr.KindMulticast:
			d.LocalV6Data = true
		}
		return
	}
	// IPv4: anything outside the LAN (and not broadcast/multicast) is
	// Internet traffic.
	if dst.Is4() && !router.LANv4Prefix.Contains(dst) && !dst.IsMulticast() &&
		dst != v4Broadcast {
		d.InternetV4 = true
		d.BytesV4 += payload
		d.pendingFlows[pendingFlow{Dst: dst, V6: false}] = true
	}
}

// observeInbound extracts device-addressed DNS responses and DHCPv6
// replies. dns is the frame's already-unpacked DNS answer (nil when the
// frame is not a valid response from port 53), shared with the attribution
// pass so the message is decoded exactly once per frame.
func observeInbound(d *DeviceObs, p *packet.Packet, dns *dnsmsg.Message) {
	switch {
	case p.UDP != nil && p.UDP.SrcPort == 53:
		if dns == nil || len(dns.Questions) == 0 {
			return
		}
		m := *dns
		q := m.Questions[0]
		positive := false
		for _, rr := range m.Answers {
			if rr.Type == q.Type && (rr.Addr.IsValid() || rr.Target != "") {
				positive = true
			}
		}
		if positive {
			d.Responses[QueryKey{Name: dnsmsg.CanonicalName(q.Name), Type: q.Type, OverV6: p.IsIPv6()}] = true
		}
	case p.UDP != nil && p.UDP.SrcPort == dhcp6.ServerPort:
		m, err := dhcp6.Unmarshal(p.UDP.PayloadData)
		if err != nil {
			return
		}
		if m.Type == dhcp6.Reply && m.IANA != nil && len(m.IANA.Addrs) > 0 {
			// IA_NA leases are tracked separately: the paper's SLAAC
			// address counts exclude server-assigned addresses.
			d.StatefulLease = m.IANA.Addrs[0].Addr
		}
	}
}

// Post-extraction helpers.

// HasAddr reports whether the device assigned any address of the kind.
func (o *DeviceObs) HasAddr(k addr.Kind) bool {
	for _, kind := range o.Assigned {
		if kind == k {
			return true
		}
	}
	return false
}

// QueriedAAAA reports whether any AAAA query was seen, optionally
// restricted by transport.
func (o *DeviceObs) QueriedAAAA(overV6 *bool) bool {
	for k := range o.Queries {
		if k.Type == dnsmsg.TypeAAAA && (overV6 == nil || k.OverV6 == *overV6) {
			return true
		}
	}
	return false
}

// GotAAAAResponse reports positive AAAA answers, optionally by transport.
func (o *DeviceObs) GotAAAAResponse(overV6 *bool) bool {
	for k := range o.Responses {
		if k.Type == dnsmsg.TypeAAAA && (overV6 == nil || k.OverV6 == *overV6) {
			return true
		}
	}
	return false
}

// DNSOverV6 reports whether the device used the IPv6 resolver at all.
func (o *DeviceObs) DNSOverV6() bool {
	for k := range o.Queries {
		if k.OverV6 {
			return true
		}
	}
	return false
}

// EUI64GUAFromAssigned recomputes EUI-64 assignment from the address set.
func (o *DeviceObs) EUI64GUAFromAssigned() bool {
	for a, k := range o.Assigned {
		if k == addr.KindGUA && addr.EUI64MatchesMAC(a, o.MAC) {
			return true
		}
	}
	return false
}

// V6DestDomains returns the set of domains contacted over IPv6.
func (o *DeviceObs) V6DestDomains() map[string]bool {
	out := map[string]bool{}
	for fk := range o.InternetFlows {
		if fk.V6 {
			out[fk.Domain] = true
		}
	}
	return out
}

// V4DestDomains returns the set of domains contacted over IPv4.
func (o *DeviceObs) V4DestDomains() map[string]bool {
	out := map[string]bool{}
	for fk := range o.InternetFlows {
		if !fk.V6 {
			out[fk.Domain] = true
		}
	}
	return out
}

// AllDNSNames returns every non-local name the device queried (the Table 7
// domain universe together with contacted destinations).
func (o *DeviceObs) AllDNSNames() map[string]bool {
	out := map[string]bool{}
	for k := range o.Queries {
		if !strings.HasSuffix(k.Name, ".local") {
			out[k.Name] = true
		}
	}
	return out
}

// DomainParty returns a domain's party label using the cloud registry (the
// analyst's curated destination list).
func DomainParty(cl *cloud.Cloud, name string) (cloud.Party, bool) {
	if d := cl.Lookup(name); d != nil {
		return d.Party, d.Tracker
	}
	return cloud.PartySupport, false
}
