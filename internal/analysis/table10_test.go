package analysis

import (
	"testing"

	"v6lab/internal/addr"
)

// TestTable10PerDevice asserts the paper's Table 10 at full granularity:
// for every one of the 93 devices, the six observed feature columns
// (functional in IPv6-only, NDP, address, GUA, DNS over IPv6, global data
// communication) must match the modelled profile — i.e., what the wire
// shows equals what the paper reported per device.
func TestTable10PerDevice(t *testing.T) {
	ds := dataset(t)
	base := ds.BaselineV6Only()
	exps := ds.V6Exps()
	v6only := ds.V6OnlyExps()
	for _, p := range ds.Profiles {
		d := merged(exps, p.Name)
		if d == nil {
			d = newDeviceObs(p, [6]byte{})
		}
		d6 := merged(v6only, p.Name)
		if d6 == nil {
			d6 = newDeviceObs(p, [6]byte{})
		}

		check := func(col string, got, want bool) {
			if got != want {
				t.Errorf("%-22s %-12s observed=%v, Table 10 says %v", p.Name, col, got, want)
			}
		}
		check("Functional", base.Functional[p.Name], p.FunctionalV6Only)
		check("NDP", d.NDP, p.NDP)
		check("Address", len(d.Assigned) > 0, p.AssignAddr)
		check("GUA", d.HasAddr(addr.KindGUA), p.GUA)
		check("DNSOverV6", d.DNSOverV6(), p.DNSOverV6)
		check("GlobalData", d.InternetV6, p.V6InternetData)

		// The IPv6-only view must respect the dual-only gating flags.
		if p.DualOnlyAddr {
			check("Addr(v6only)", len(d6.Assigned) > 0, false)
		}
		if p.DualOnlyGUA {
			check("GUA(v6only)", d6.HasAddr(addr.KindGUA), false)
		}
		if p.DualOnlyInternetData {
			check("Data(v6only)", d6.InternetV6, false)
		}
	}
}

// TestStatefulAddressUsers asserts §5.2.1's finding at device granularity:
// exactly the SmartThings Hub, HomePod Mini, Aeotec Hub, and Samsung
// Fridge source traffic from their DHCPv6 leases.
func TestStatefulAddressUsers(t *testing.T) {
	ds := dataset(t)
	exps := ds.V6Exps()
	want := map[string]bool{
		"SmartThings Hub": true, "HomePod Mini": true,
		"Aeotec Hub": true, "Samsung Fridge": true,
	}
	for _, p := range ds.Profiles {
		d := merged(exps, p.Name)
		if d == nil {
			continue
		}
		uses := d.StatefulLease.IsValid() && d.Used[d.StatefulLease]
		if uses != want[p.Name] {
			t.Errorf("%s: uses stateful lease = %v, want %v", p.Name, uses, want[p.Name])
		}
	}
}

// TestLLARotators asserts the §5.2.1 finding that only the Samsung Fridge,
// Samsung TV, HomePod Mini, and Apple TV (plus the Aeotec Hub, a
// documented deviation) hold more than one link-local address.
func TestLLARotators(t *testing.T) {
	ds := dataset(t)
	exps := ds.V6Exps()
	allowed := map[string]bool{
		"Samsung Fridge": true, "Samsung TV": true,
		"HomePod Mini": true, "Apple TV": true, "Aeotec Hub": true,
	}
	for _, p := range ds.Profiles {
		d := merged(exps, p.Name)
		if d == nil {
			continue
		}
		llas := 0
		for _, k := range d.Assigned {
			if k == addr.KindLLA {
				llas++
			}
		}
		if llas > 1 && !allowed[p.Name] {
			t.Errorf("%s: %d LLAs, expected a single stable one", p.Name, llas)
		}
		if allowed[p.Name] && llas < 2 {
			t.Errorf("%s: %d LLAs, expected rotation", p.Name, llas)
		}
	}
}
