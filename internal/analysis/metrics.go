package analysis

import (
	"sort"

	"v6lab/internal/addr"
	"v6lab/internal/cloud"
	"v6lab/internal/device"
	"v6lab/internal/dnsmsg"
	"v6lab/internal/paper"
)

// Dataset bundles the observations of all experiments with the active
// measurement outputs, ready for table derivation.
type Dataset struct {
	// Exps holds the per-experiment observations in execution order
	// (ipv4-only, the three ipv6-only runs, the two dual-stack runs).
	Exps []*ExpObs
	// Profiles provides device identity (category, manufacturer, OS,
	// year) for grouping; behaviour always comes from observations.
	Profiles []*device.Profile
	// ActiveAAAA is the §4.3 active-DNS verdict per domain.
	ActiveAAAA map[string]bool
	// Cloud supplies party labels for destination classification.
	Cloud *cloud.Cloud
}

func (ds *Dataset) profile(name string) *device.Profile {
	return device.Find(ds.Profiles, name)
}

func (ds *Dataset) catIndex(name string) int {
	p := ds.profile(name)
	for i, c := range paper.CategoryOrder {
		if string(p.Category) == c {
			return i
		}
	}
	return -1
}

// expsWhere selects experiments by predicate.
func (ds *Dataset) expsWhere(pred func(*ExpObs) bool) []*ExpObs {
	var out []*ExpObs
	for _, e := range ds.Exps {
		if pred(e) {
			out = append(out, e)
		}
	}
	return out
}

// V6OnlyExps returns the three IPv6-only runs.
func (ds *Dataset) V6OnlyExps() []*ExpObs {
	return ds.expsWhere(func(e *ExpObs) bool { return e.Mode == device.ModeV6Only })
}

// DualExps returns the two dual-stack runs.
func (ds *Dataset) DualExps() []*ExpObs {
	return ds.expsWhere(func(e *ExpObs) bool { return e.Mode == device.ModeDual })
}

// V6Exps returns every v6-enabled run.
func (ds *Dataset) V6Exps() []*ExpObs {
	return ds.expsWhere(func(e *ExpObs) bool { return e.Mode != device.ModeV4Only })
}

// V4OnlyExp returns the IPv4-only baseline.
func (ds *Dataset) V4OnlyExp() *ExpObs {
	for _, e := range ds.Exps {
		if e.Mode == device.ModeV4Only {
			return e
		}
	}
	return nil
}

// BaselineV6Only returns the first IPv6-only run (the functionality
// reference).
func (ds *Dataset) BaselineV6Only() *ExpObs {
	v6 := ds.V6OnlyExps()
	if len(v6) == 0 {
		return nil
	}
	return v6[0]
}

// merged unions a device's observations across experiments.
func merged(exps []*ExpObs, name string) *DeviceObs {
	var out *DeviceObs
	for _, e := range exps {
		d, ok := e.Devices[name]
		if !ok {
			continue
		}
		if out == nil {
			out = newDeviceObs(&device.Profile{Name: d.Name, Category: d.Category}, d.MAC)
		}
		out.NDP = out.NDP || d.NDP
		for a, k := range d.Assigned {
			out.Assigned[a] = k
		}
		for a := range d.Used {
			out.Used[a] = true
		}
		for a := range d.DADProbed {
			out.DADProbed[a] = true
		}
		if d.StatefulLease.IsValid() {
			out.StatefulLease = d.StatefulLease
		}
		out.StatelessDHCPv6 = out.StatelessDHCPv6 || d.StatelessDHCPv6
		out.StatefulDHCPv6 = out.StatefulDHCPv6 || d.StatefulDHCPv6
		for k := range d.Queries {
			out.Queries[k] = true
		}
		for k := range d.Responses {
			out.Responses[k] = true
		}
		for k := range d.InternetFlows {
			out.InternetFlows[k] = true
		}
		out.LocalV6Data = out.LocalV6Data || d.LocalV6Data
		out.InternetV6 = out.InternetV6 || d.InternetV6
		out.InternetV4 = out.InternetV4 || d.InternetV4
		out.BytesV4 += d.BytesV4
		out.BytesV6 += d.BytesV6
		out.EUI64DNS = out.EUI64DNS || d.EUI64DNS
		out.EUI64Data = out.EUI64Data || d.EUI64Data
		out.EUI64GUAUsed = out.EUI64GUAUsed || d.EUI64GUAUsed
		for n := range d.EUI64DNSNames {
			out.EUI64DNSNames[n] = true
		}
		for n := range d.EUI64DataDomains {
			out.EUI64DataDomains[n] = true
		}
	}
	return out
}

// Merged unions a device's observations across the given experiments,
// for report-level consumers.
func Merged(exps []*ExpObs, name string) *DeviceObs { return merged(exps, name) }

// vecOver counts devices satisfying pred per category, over the merged
// observations of the given experiments.
func (ds *Dataset) vecOver(exps []*ExpObs, pred func(*DeviceObs) bool) paper.Vec {
	var v paper.Vec
	for _, p := range ds.Profiles {
		d := merged(exps, p.Name)
		if d == nil {
			d = newDeviceObs(p, [6]byte{})
		}
		if pred(d) {
			v[ds.catIndex(p.Name)]++
		}
	}
	return v
}

// --- Table 3 / Figure 2 ---

// Funnel is the IPv6-only feature funnel.
type Funnel struct {
	Devices, NoIPv6, NDP, NDPNoAddr, Addr, GUA, AddrNoDNS,
	DNSAAAAReq, AAAAResp, DNSNoData, InternetData, DataNotFunc, Functional paper.Vec
}

// Table3 computes the IPv6-only funnel from the three v6-only runs.
func (ds *Dataset) Table3() Funnel {
	exps := ds.V6OnlyExps()
	base := ds.BaselineV6Only()
	yes := true
	var f Funnel
	f.Devices = paper.DevicesPerCategory
	f.NDP = ds.vecOver(exps, func(d *DeviceObs) bool { return d.NDP })
	f.Addr = ds.vecOver(exps, func(d *DeviceObs) bool { return len(d.Assigned) > 0 })
	f.GUA = ds.vecOver(exps, func(d *DeviceObs) bool { return d.HasAddr(addr.KindGUA) })
	f.DNSAAAAReq = ds.vecOver(exps, func(d *DeviceObs) bool { return d.QueriedAAAA(&yes) })
	f.AAAAResp = ds.vecOver(exps, func(d *DeviceObs) bool { return d.GotAAAAResponse(&yes) })
	f.InternetData = ds.vecOver(exps, func(d *DeviceObs) bool { return d.InternetV6 })
	for _, p := range ds.Profiles {
		ci := ds.catIndex(p.Name)
		d := merged(exps, p.Name)
		if d == nil || !d.NDP {
			f.NoIPv6[ci]++
			continue
		}
		if len(d.Assigned) == 0 {
			f.NDPNoAddr[ci]++
		} else if !d.QueriedAAAA(&yes) {
			f.AddrNoDNS[ci]++
		} else if !d.InternetV6 {
			f.DNSNoData[ci]++
		}
		functional := base != nil && base.Functional[p.Name]
		if functional {
			f.Functional[ci]++
		} else if d.InternetV6 {
			f.DataNotFunc[ci]++
		}
	}
	return f
}

// --- Table 4: dual-stack deltas ---

// Delta holds dual-stack-minus-IPv6-only feature differences.
type Delta struct {
	NDP, Addr, GUA, AAAAReq, AAAAResp, InternetData paper.Vec
}

// Table4 compares the dual-stack runs against the IPv6-only runs.
func (ds *Dataset) Table4() Delta {
	v6, dual := ds.V6OnlyExps(), ds.DualExps()
	diff := func(pred func(*DeviceObs) bool) paper.Vec {
		a := ds.vecOver(dual, pred)
		b := ds.vecOver(v6, pred)
		var out paper.Vec
		for i := range out {
			out[i] = a[i] - b[i]
		}
		return out
	}
	return Delta{
		NDP:  diff(func(d *DeviceObs) bool { return d.NDP }),
		Addr: diff(func(d *DeviceObs) bool { return len(d.Assigned) > 0 }),
		GUA:  diff(func(d *DeviceObs) bool { return d.HasAddr(addr.KindGUA) }),
		AAAAReq: diff(func(d *DeviceObs) bool {
			return d.QueriedAAAA(nil)
		}),
		AAAAResp:     diff(func(d *DeviceObs) bool { return d.GotAAAAResponse(nil) }),
		InternetData: diff(func(d *DeviceObs) bool { return d.InternetV6 }),
	}
}

// --- Table 5: union feature support ---

// Features is the union feature-support table.
type Features struct {
	Addr, StatefulDHCPv6, GUA, ULA, LLA, EUI64,
	DNSOverV6, AOnlyInV6, AAAAReq, V4OnlyAAAAReq, AAAAResp, AAAAReqNoRes, StatelessDHCPv6,
	V6Trans, InternetTrans, LocalTrans paper.Vec
}

// featurePreds lists the Table 5 rows as named predicates over the merged
// v6-enabled observations (also reused by the Table 8/12 groupings).
func featurePreds() []struct {
	Name string
	Pred func(*DeviceObs) bool
} {
	no := false
	return []struct {
		Name string
		Pred func(*DeviceObs) bool
	}{
		{"IPv6 Addr", func(d *DeviceObs) bool { return len(d.Assigned) > 0 }},
		{"Stateful DHCPv6", func(d *DeviceObs) bool { return d.StatefulDHCPv6 }},
		{"GUA", func(d *DeviceObs) bool { return d.HasAddr(addr.KindGUA) }},
		{"ULA", func(d *DeviceObs) bool { return d.HasAddr(addr.KindULA) }},
		{"LLA", func(d *DeviceObs) bool { return d.HasAddr(addr.KindLLA) }},
		{"EUI-64 Addr", func(d *DeviceObs) bool { return hasEUI64Addr(d) }},
		{"DNS Over IPv6", func(d *DeviceObs) bool { return d.DNSOverV6() }},
		{"A-only Request in IPv6", func(d *DeviceObs) bool { return aOnlyInV6(d) }},
		{"AAAA Request (v4 or v6)", func(d *DeviceObs) bool { return d.QueriedAAAA(nil) }},
		{"IPv4-only AAAA Request", func(d *DeviceObs) bool { return d.QueriedAAAA(&no) }},
		{"AAAA Response", func(d *DeviceObs) bool { return d.GotAAAAResponse(nil) }},
		{"AAAA Req No AAAA Res", func(d *DeviceObs) bool { return aaaaReqNoRes(d) }},
		{"Stateless DHCPv6", func(d *DeviceObs) bool { return d.StatelessDHCPv6 }},
		{"IPv6 TCP/UDP Trans", func(d *DeviceObs) bool { return d.InternetV6 || d.LocalV6Data }},
		{"Internet Trans", func(d *DeviceObs) bool { return d.InternetV6 }},
		{"Local Trans", func(d *DeviceObs) bool { return d.LocalV6Data }},
	}
}

// Table5 computes union feature support per category.
func (ds *Dataset) Table5() Features {
	exps := ds.V6Exps()
	var f Features
	rows := featurePreds()
	dst := []*paper.Vec{
		&f.Addr, &f.StatefulDHCPv6, &f.GUA, &f.ULA, &f.LLA, &f.EUI64,
		&f.DNSOverV6, &f.AOnlyInV6, &f.AAAAReq, &f.V4OnlyAAAAReq, &f.AAAAResp,
		&f.AAAAReqNoRes, &f.StatelessDHCPv6, &f.V6Trans, &f.InternetTrans, &f.LocalTrans,
	}
	for i, row := range rows {
		*dst[i] = ds.vecOver(exps, row.Pred)
	}
	return f
}

func hasEUI64Addr(d *DeviceObs) bool {
	for a := range d.Assigned {
		if addr.EUI64MatchesMAC(a, d.MAC) {
			return true
		}
	}
	return false
}

// aOnlyInV6: the device queried some name with only A (never AAAA) over
// the v6 resolver.
func aOnlyInV6(d *DeviceObs) bool {
	for k := range d.Queries {
		if k.OverV6 && k.Type == dnsmsg.TypeA {
			if !d.Queries[QueryKey{Name: k.Name, Type: dnsmsg.TypeAAAA, OverV6: true}] {
				return true
			}
		}
	}
	return false
}

func aaaaReqNoRes(d *DeviceObs) bool {
	for k := range d.Queries {
		if k.Type != dnsmsg.TypeAAAA {
			continue
		}
		answered := d.Responses[QueryKey{Name: k.Name, Type: dnsmsg.TypeAAAA, OverV6: true}] ||
			d.Responses[QueryKey{Name: k.Name, Type: dnsmsg.TypeAAAA, OverV6: false}]
		if !answered {
			return true
		}
	}
	return false
}

// --- Table 6: inventories ---

// Inventory holds the address and distinct-name counts plus volume
// fractions.
type Inventory struct {
	Addrs, GUAs, ULAs, LLAs                              paper.Vec
	AAAAReqNames, AOnlyV6Names, V4OnlyAAAANames, AAAARes paper.Vec
	V6FracPct                                            [paper.NumCategories]float64
	V6FracTotalPct                                       float64
}

// Table6 computes the inventories over the v6-enabled runs and the volume
// fractions over the dual-stack runs.
func (ds *Dataset) Table6() Inventory {
	var inv Inventory
	exps := ds.V6Exps()
	for _, p := range ds.Profiles {
		ci := ds.catIndex(p.Name)
		d := merged(exps, p.Name)
		if d == nil {
			continue
		}
		for a, k := range d.Assigned {
			if a == d.StatefulLease {
				continue // IA_NA leases are server-assigned, not SLAAC
			}
			switch k {
			case addr.KindGUA:
				inv.GUAs[ci]++
			case addr.KindULA:
				inv.ULAs[ci]++
			case addr.KindLLA:
				inv.LLAs[ci]++
			}
			inv.Addrs[ci]++
		}
		names := map[string]bool{}
		aOnly := map[string]bool{}
		v4Only := map[string]bool{}
		res := map[string]bool{}
		for k := range d.Queries {
			switch k.Type {
			case dnsmsg.TypeAAAA:
				names[k.Name] = true
				if !d.Queries[QueryKey{Name: k.Name, Type: dnsmsg.TypeAAAA, OverV6: true}] {
					v4Only[k.Name] = true
				}
			case dnsmsg.TypeA:
				if k.OverV6 && !d.Queries[QueryKey{Name: k.Name, Type: dnsmsg.TypeAAAA, OverV6: true}] {
					aOnly[k.Name] = true
				}
			}
		}
		for k := range d.Responses {
			if k.Type == dnsmsg.TypeAAAA {
				res[k.Name] = true
			}
		}
		inv.AAAAReqNames[ci] += len(names)
		inv.AOnlyV6Names[ci] += len(aOnly)
		inv.V4OnlyAAAANames[ci] += len(v4Only)
		inv.AAAARes[ci] += len(res)
	}
	// Volume fractions from the dual-stack runs.
	dual := ds.DualExps()
	var totV6, totAll float64
	for ci := range paper.CategoryOrder {
		var v6, all float64
		for _, p := range ds.Profiles {
			if ds.catIndex(p.Name) != ci {
				continue
			}
			d := merged(dual, p.Name)
			if d == nil {
				continue
			}
			v6 += float64(d.BytesV6)
			all += float64(d.BytesV4 + d.BytesV6)
		}
		if all > 0 {
			inv.V6FracPct[ci] = 100 * v6 / all
		}
		totV6 += v6
		totAll += all
	}
	if totAll > 0 {
		inv.V6FracTotalPct = 100 * totV6 / totAll
	}
	return inv
}

// --- Figure 3: CDFs ---

// CDFs holds the per-device distributions behind Figure 3.
type CDFs struct {
	// AddrsPerDevice and AAAANamesPerDevice are sorted ascending.
	AddrsPerDevice, AAAANamesPerDevice []int
}

// Figure3 computes the distribution data.
func (ds *Dataset) Figure3() CDFs {
	exps := ds.V6Exps()
	var out CDFs
	for _, p := range ds.Profiles {
		d := merged(exps, p.Name)
		if d == nil {
			continue
		}
		n := len(d.Assigned)
		if _, ok := d.Assigned[d.StatefulLease]; ok {
			n-- // server-assigned lease, outside the SLAAC inventory
		}
		if n > 0 {
			out.AddrsPerDevice = append(out.AddrsPerDevice, n)
		}
		names := map[string]bool{}
		for k := range d.Queries {
			if k.Type == dnsmsg.TypeAAAA {
				names[k.Name] = true
			}
		}
		if len(names) > 0 {
			out.AAAANamesPerDevice = append(out.AAAANamesPerDevice, len(names))
		}
	}
	sort.Ints(out.AddrsPerDevice)
	sort.Ints(out.AAAANamesPerDevice)
	return out
}

// TopShare reports the fraction of the total held by the top n values.
func TopShare(sorted []int, n int) float64 {
	total, top := 0, 0
	for i, v := range sorted {
		total += v
		if i >= len(sorted)-n {
			top += v
		}
	}
	if total == 0 {
		return 0
	}
	return float64(top) / float64(total)
}

// --- Figure 4: per-device volume fractions ---

// VolumeShare is one device's dual-stack IPv6 volume fraction.
type VolumeShare struct {
	Device     string
	Functional bool
	FracPct    float64
}

// Figure4 lists devices with global IPv6 data in dual-stack, sorted by
// descending fraction.
func (ds *Dataset) Figure4() []VolumeShare {
	dual := ds.DualExps()
	base := ds.BaselineV6Only()
	var out []VolumeShare
	for _, p := range ds.Profiles {
		d := merged(dual, p.Name)
		if d == nil || !d.InternetV6 || d.BytesV4+d.BytesV6 == 0 {
			continue
		}
		out = append(out, VolumeShare{
			Device:     p.Name,
			Functional: base != nil && base.Functional[p.Name],
			FracPct:    100 * float64(d.BytesV6) / float64(d.BytesV4+d.BytesV6),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FracPct > out[j].FracPct })
	return out
}
