package analysis

import (
	"sync"
	"testing"

	"v6lab/internal/experiment"
	"v6lab/internal/paper"
)

var (
	dsOnce sync.Once
	dsVal  *Dataset
	dsScan *experiment.ScanReport
)

// dataset runs the full study once and shares it across tests.
func dataset(t *testing.T) *Dataset {
	t.Helper()
	dsOnce.Do(func() {
		st := experiment.NewStudy()
		if err := st.RunAll(); err != nil {
			t.Fatalf("study: %v", err)
		}
		dsVal = FromStudy(st)
		dsScan = st.Scan
	})
	if dsVal == nil {
		t.Fatal("study failed in earlier test")
	}
	return dsVal
}

func TestTable3MatchesPaper(t *testing.T) {
	f := dataset(t).Table3()
	cases := []struct {
		name      string
		got, want paper.Vec
	}{
		{"NoIPv6", f.NoIPv6, paper.Table3.NoIPv6},
		{"NDP", f.NDP, paper.Table3.NDP},
		{"NDPNoAddr", f.NDPNoAddr, paper.Table3.NDPNoAddr},
		{"Addr", f.Addr, paper.Table3.Addr},
		{"GUA", f.GUA, paper.Table3.GUA},
		{"AddrNoDNS", f.AddrNoDNS, paper.Table3.AddrNoDNS},
		{"DNSAAAAReq", f.DNSAAAAReq, paper.Table3.DNSAAAAReq},
		{"AAAAResp", f.AAAAResp, paper.Table3.AAAAResp},
		{"InternetData", f.InternetData, paper.Table3.InternetData},
		{"DataNotFunc", f.DataNotFunc, paper.Table3.DataNotFunc},
		{"Functional", f.Functional, paper.Table3.Functional},
	}
	for _, tc := range cases {
		if tc.got != tc.want {
			t.Errorf("Table3.%s = %v, want %v", tc.name, tc.got, tc.want)
		}
	}
}

func TestTable5MatchesPaper(t *testing.T) {
	f := dataset(t).Table5()
	cases := []struct {
		name      string
		got, want paper.Vec
	}{
		{"Addr", f.Addr, paper.Table5.Addr},
		{"StatefulDHCPv6", f.StatefulDHCPv6, paper.Table5.StatefulDHCPv6},
		{"GUA", f.GUA, paper.Table5.GUA},
		{"ULA", f.ULA, paper.Table5.ULA},
		{"LLA", f.LLA, paper.Table5.LLA},
		{"DNSOverV6", f.DNSOverV6, paper.Table5.DNSOverV6},
		{"AOnlyInV6", f.AOnlyInV6, paper.Table5.AOnlyInV6},
		{"AAAAReq", f.AAAAReq, paper.Table5.AAAAReq},
		{"V4OnlyAAAAReq", f.V4OnlyAAAAReq, paper.Table5.V4OnlyAAAAReq},
		{"AAAAResp", f.AAAAResp, paper.Table5.AAAAResp},
		{"StatelessDHCPv6", f.StatelessDHCPv6, paper.Table5.StatelessDHCPv6},
		{"V6Trans", f.V6Trans, paper.Table5.V6Trans},
		{"InternetTrans", f.InternetTrans, paper.Table5.InternetTrans},
		{"LocalTrans", f.LocalTrans, paper.Table5.LocalTrans},
	}
	for _, tc := range cases {
		if tc.got != tc.want {
			t.Errorf("Table5.%s = %v, want %v", tc.name, tc.got, tc.want)
		}
	}
}

func TestTable6AddressInventory(t *testing.T) {
	inv := dataset(t).Table6()
	if inv.GUAs != paper.Table6.GUAAddrs {
		t.Errorf("GUAs = %v, want %v", inv.GUAs, paper.Table6.GUAAddrs)
	}
	if inv.ULAs != paper.Table6.ULAAddrs {
		t.Errorf("ULAs = %v, want %v", inv.ULAs, paper.Table6.ULAAddrs)
	}
	if inv.LLAs != paper.Table6.LLAAddrs {
		t.Errorf("LLAs = %v, want %v", inv.LLAs, paper.Table6.LLAAddrs)
	}
	// Volume fractions: within half a point per category.
	for ci, want := range paper.Table6.V6VolumeFracPct {
		got := inv.V6FracPct[ci]
		if diff := got - want; diff > 1.0 || diff < -1.0 {
			t.Errorf("cat %d volume fraction = %.2f%%, want %.1f%%", ci, got, want)
		}
	}
	if d := inv.V6FracTotalPct - paper.Table6.V6VolumeFracTotalPct; d > 2 || d < -2 {
		t.Errorf("total v6 fraction = %.2f%%, want %.1f%%", inv.V6FracTotalPct, paper.Table6.V6VolumeFracTotalPct)
	}
}

func TestDADAuditMatchesPaper(t *testing.T) {
	r := dataset(t).DADAudit()
	if r.DevicesSkipping != paper.DAD.DevicesSkipping {
		t.Errorf("devices skipping = %d, want %d", r.DevicesSkipping, paper.DAD.DevicesSkipping)
	}
	if r.DevicesNeverDAD != paper.DAD.DevicesNeverDAD {
		t.Errorf("never-DAD devices = %d (%v), want %d", r.DevicesNeverDAD, r.NonCompliant, paper.DAD.DevicesNeverDAD)
	}
	if r.GUAsNoDAD != paper.DAD.GUAsNoDAD || r.ULAsNoDAD != paper.DAD.ULAsNoDAD || r.LLAsNoDAD != paper.DAD.LLAsNoDAD {
		t.Errorf("addrs without DAD = %d/%d/%d, want %d/%d/%d",
			r.GUAsNoDAD, r.ULAsNoDAD, r.LLAsNoDAD,
			paper.DAD.GUAsNoDAD, paper.DAD.ULAsNoDAD, paper.DAD.LLAsNoDAD)
	}
}

func TestEUI64ExposureMatchesPaper(t *testing.T) {
	r := dataset(t).EUI64Exposure()
	if r.Use != paper.EUI64.Use || r.DNS != paper.EUI64.DNS || r.Data != paper.EUI64.Data {
		t.Errorf("funnel use/dns/data = %d/%d/%d, want %d/%d/%d",
			r.Use, r.DNS, r.Data, paper.EUI64.Use, paper.EUI64.DNS, paper.EUI64.Data)
	}
	if r.DataDomains != paper.EUI64.DataDomains ||
		r.DataFirst != paper.EUI64.DataFirst || r.DataThird != paper.EUI64.DataThird || r.DataSupport != paper.EUI64.DataSupport {
		t.Errorf("data exposure = %d (%d/%d/%d), want %d (%d/%d/%d)",
			r.DataDomains, r.DataFirst, r.DataThird, r.DataSupport,
			paper.EUI64.DataDomains, paper.EUI64.DataFirst, paper.EUI64.DataThird, paper.EUI64.DataSupport)
	}
	if r.DNSNames != paper.EUI64.DNSDomains ||
		r.DNSFirst != paper.EUI64.DNSFirst || r.DNSThird != paper.EUI64.DNSThird || r.DNSSupport != paper.EUI64.DNSSupport {
		t.Errorf("dns exposure = %d (%d/%d/%d), want %d (%d/%d/%d)",
			r.DNSNames, r.DNSFirst, r.DNSThird, r.DNSSupport,
			paper.EUI64.DNSDomains, paper.EUI64.DNSFirst, paper.EUI64.DNSThird, paper.EUI64.DNSSupport)
	}
}

func TestTrackingShape(t *testing.T) {
	r := dataset(t).Tracking()
	if r.ThirdPartySLDs < 10 {
		t.Errorf("third-party SLDs = %d, want ≥10 (paper: 13)", r.ThirdPartySLDs)
	}
	if r.V4OnlyDomains < 50 {
		t.Errorf("v4-only domains = %d, want a substantial set (paper: 129)", r.V4OnlyDomains)
	}
}

func TestFigure3Shape(t *testing.T) {
	c := dataset(t).Figure3()
	if got := paper.Table6.IPv6Addrs.Total(); sum(c.AddrsPerDevice) != got {
		t.Errorf("total addresses = %d, want %d", sum(c.AddrsPerDevice), got)
	}
	// 10 devices hold roughly 80% of the addresses (Figure 3 top).
	if share := TopShare(c.AddrsPerDevice, 10); share < 0.70 {
		t.Errorf("top-10 address share = %.2f, want ≥0.70", share)
	}
	// 10 devices hold ~70% of distinct AAAA names (Figure 3 bottom).
	if share := TopShare(c.AAAANamesPerDevice, 10); share < 0.55 {
		t.Errorf("top-10 query share = %.2f, want ≥0.55", share)
	}
}

func TestFigure4Shape(t *testing.T) {
	shares := dataset(t).Figure4()
	if len(shares) < 20 {
		t.Fatalf("devices with v6 volume = %d", len(shares))
	}
	over80, under20 := 0, 0
	var nestCam float64
	for _, s := range shares {
		if s.FracPct > 80 {
			over80++
		}
		if s.FracPct < 20 {
			under20++
		}
		if s.Device == "Nest Camera" {
			nestCam = s.FracPct
		}
	}
	if over80 != 3 {
		t.Errorf("devices >80%% v6 = %d, want 3", over80)
	}
	if under20 < len(shares)/2 {
		t.Errorf("devices <20%% = %d of %d, want more than half", under20, len(shares))
	}
	if nestCam < 80 {
		t.Errorf("Nest Camera fraction = %.1f%%, want >80%%", nestCam)
	}
}

func TestTable9Shape(t *testing.T) {
	sw := dataset(t).Table9()
	if sw.TotalDest.Total() < 2000 {
		t.Errorf("total destinations = %d, want ≈2083", sw.TotalDest.Total())
	}
	if sw.V4PartialToV6 != paper.Table9.V4PartialToV6 {
		t.Errorf("v4 partial→v6 = %v, want %v", sw.V4PartialToV6, paper.Table9.V4PartialToV6)
	}
	if sw.V4FullToV6 != paper.Table9.V4FullToV6 {
		t.Errorf("v4 full→v6 = %v, want %v", sw.V4FullToV6, paper.Table9.V4FullToV6)
	}
	if sw.V6PartialToV4 != paper.Table9.V6PartialToV4 {
		t.Errorf("v6 partial→v4 = %v, want %v", sw.V6PartialToV4, paper.Table9.V6PartialToV4)
	}
	if sw.V6FullToV4 != paper.Table9.V6FullToV4 {
		t.Errorf("v6 full→v4 = %v, want %v", sw.V6FullToV4, paper.Table9.V6FullToV4)
	}
}

func TestTable7Shape(t *testing.T) {
	funcRows, nonFuncRows, _, _ := dataset(t).Table7(3)
	var fDom, fAAAA, nDom, nAAAA int
	for _, r := range funcRows {
		fDom += r.Domains
		fAAAA += r.AAAA
	}
	for _, r := range nonFuncRows {
		nDom += r.Domains
		nAAAA += r.AAAA
	}
	fPct := 100 * float64(fAAAA) / float64(fDom)
	nPct := 100 * float64(nAAAA) / float64(nDom)
	if fPct < 60 || fPct > 85 {
		t.Errorf("functional AAAA readiness = %.1f%%, want ≈73%%", fPct)
	}
	if nPct < 20 || nPct > 42 {
		t.Errorf("non-functional AAAA readiness = %.1f%%, want ≈31%%", nPct)
	}
	if fPct <= nPct {
		t.Error("functional devices should have higher AAAA readiness")
	}
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}
