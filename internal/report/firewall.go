package report

import (
	"fmt"
	"sort"
	"strings"

	"v6lab/internal/experiment"
)

// FirewallExposure renders the policy-comparison table: the §5.4.2 scan
// repeated from a WAN vantage under each inbound-IPv6 firewall policy.
// The "open" row is the paper's measured world; the others quantify the
// countermeasures §6 discusses.
func FirewallExposure(r *experiment.FirewallReport) string {
	var w strings.Builder
	fmt.Fprintf(&w, "Firewall policy comparison — WAN-vantage IPv6 scan (§5.4.2 / §6)\n")
	fmt.Fprintf(&w, "%d probe ports x per-policy GUA targets, scanned from %s\n",
		len(r.Ports), experiment.WANScannerV6)
	fmt.Fprintf(&w, "%-10s %7s %7s %7s %7s %9s %9s %7s %6s %6s\n",
		"Policy", "DevPrb", "DevRch", "PortRch", "Func", "AllowIn", "DropIn", "Flows", "Evict", "Expir")
	for _, pe := range r.Policies {
		fmt.Fprintf(&w, "%-10s %7d %7d %7d %7d %9d %9d %7d %6d %6d\n",
			pe.Policy, pe.DevicesProbed, pe.DevicesReachable, pe.PortsReachable,
			pe.FunctionalDevices, pe.FW.AllowedIn(), pe.FW.DroppedIn,
			pe.Flows, pe.CT.Evictions, pe.CT.Expiries)
	}
	for _, pe := range r.Policies {
		if len(pe.Pinholes) > 0 {
			fmt.Fprintf(&w, "pinholes (%s): %s\n", pe.Policy, strings.Join(pe.Pinholes, "; "))
		}
		if len(pe.OpenByDevice) == 0 {
			continue
		}
		devs := make([]string, 0, len(pe.OpenByDevice))
		for d := range pe.OpenByDevice {
			devs = append(devs, d)
		}
		sort.Strings(devs)
		fmt.Fprintf(&w, "reachable under %s:\n", pe.Policy)
		for _, d := range devs {
			fmt.Fprintf(&w, "  %-22s %v\n", d, pe.OpenByDevice[d])
		}
	}
	return w.String()
}
