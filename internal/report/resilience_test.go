package report

import (
	"strings"
	"testing"

	"v6lab/internal/experiment"
	"v6lab/internal/faults"
)

// grid builds a small synthetic resilience report: two profiles, two
// configs, one regression under the clamp.
func grid() *experiment.ResilienceReport {
	return &experiment.ResilienceReport{
		Devices: 2,
		Profiles: []*experiment.ResilienceProfile{
			{
				Profile:         faults.Clean(),
				FunctionalTotal: 4,
				ByConfig: []experiment.ResilienceConfig{
					{ID: "ipv6-only", Devices: 2, Functional: 2,
						Failures: map[string]int{"ok": 2}, FramesDelivered: 100},
					{ID: "dual-stack", Devices: 2, Functional: 2,
						Failures: map[string]int{"ok": 2}, FramesDelivered: 100},
				},
			},
			{
				Profile:         faults.ClampedTunnel(),
				FunctionalTotal: 3,
				ByConfig: []experiment.ResilienceConfig{
					{ID: "ipv6-only", Devices: 2, Functional: 1,
						Failures:        map[string]int{"ok": 1, "data-stalled": 1},
						FailedDevices:   []string{"TiVo Stream"},
						FramesDelivered: 120, Retransmits: 7, PTBSent: 5},
					{ID: "dual-stack", Devices: 2, Functional: 2,
						Failures: map[string]int{"ok": 2}, FramesDelivered: 110},
				},
			},
		},
	}
}

func TestResilienceRendering(t *testing.T) {
	out := Resilience(grid())
	for _, want := range []string{
		"Resilience",
		"2 devices per configuration",
		"clean, clamped-tunnel",
		"Functional devices per configuration",
		"total device-runs",
		"Failure modes",
		"data-stalled",
		"packet-too-big sent",
		"Bricked vs clean:",
		"TiVo Stream",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// "ok" leads the failure-mode table regardless of sort order.
	stages := failureStages(grid())
	if len(stages) == 0 || stages[0] != "ok" {
		t.Errorf("failureStages = %v, want ok first", stages)
	}
}

func TestResilienceRenderingIsStable(t *testing.T) {
	// Failure stages live in maps; the renderer must still be
	// deterministic across calls.
	a, b := Resilience(grid()), Resilience(grid())
	if a != b {
		t.Error("two renders of the same report differ")
	}
}

func TestResilienceNoRegressions(t *testing.T) {
	r := grid()
	// Make the impaired profile as good as clean.
	r.Profiles[1].ByConfig[0].Functional = 2
	r.Profiles[1].ByConfig[0].FailedDevices = nil
	out := Resilience(r)
	if !strings.Contains(out, `No device functional on "clean" failed`) {
		t.Errorf("missing no-regression line:\n%s", out)
	}
	if strings.Contains(out, "Bricked vs") {
		t.Errorf("unexpected regression section:\n%s", out)
	}
}

func TestSubtractPreservesOrder(t *testing.T) {
	got := subtract([]string{"a", "b", "c"}, []string{"b"})
	if len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Errorf("subtract = %v, want [a c]", got)
	}
}
