package report

import (
	"fmt"
	"sort"
	"strings"

	"v6lab/internal/experiment"
)

// Resilience renders the impairment-grid artifact: functionality per
// connectivity configuration under each fault profile, the failure-mode
// breakdown, and the impairment diagnostics. Column order follows the
// profile order the grid ran in (clean first), so regressions read
// left-to-right.
func Resilience(r *experiment.ResilienceReport) string {
	var w strings.Builder
	fmt.Fprintf(&w, "Resilience — Table 2 functionality under deterministic impairment (ext-5)\n")
	fmt.Fprintf(&w, "%d devices per configuration; profiles: %s\n",
		r.Devices, strings.Join(profileNames(r), ", "))

	fmt.Fprintf(&w, "\nFunctional devices per configuration:\n")
	fmt.Fprintf(&w, "%-22s", "config")
	for _, p := range r.Profiles {
		fmt.Fprintf(&w, " %15s", p.Profile.Name)
	}
	fmt.Fprintln(&w)
	if len(r.Profiles) > 0 {
		for _, rc := range r.Profiles[0].ByConfig {
			fmt.Fprintf(&w, "%-22s", rc.ID)
			for _, p := range r.Profiles {
				if c := r.Config(p.Profile.Name, rc.ID); c != nil {
					fmt.Fprintf(&w, " %11d/%3d", c.Functional, c.Devices)
				}
			}
			fmt.Fprintln(&w)
		}
		fmt.Fprintf(&w, "%-22s", "total device-runs")
		for _, p := range r.Profiles {
			fmt.Fprintf(&w, " %11d/%3d", p.FunctionalTotal, r.Devices*len(p.ByConfig))
		}
		fmt.Fprintln(&w)
	}

	fmt.Fprintf(&w, "\nFailure modes (device-runs summed across the grid):\n")
	fmt.Fprintf(&w, "%-22s", "stage")
	for _, p := range r.Profiles {
		fmt.Fprintf(&w, " %15s", p.Profile.Name)
	}
	fmt.Fprintln(&w)
	for _, stage := range failureStages(r) {
		fmt.Fprintf(&w, "%-22s", stage)
		for _, p := range r.Profiles {
			n := 0
			for _, rc := range p.ByConfig {
				n += rc.Failures[stage]
			}
			fmt.Fprintf(&w, " %15d", n)
		}
		fmt.Fprintln(&w)
	}

	fmt.Fprintf(&w, "\nImpairment diagnostics (summed across the grid):\n")
	rows := []struct {
		label string
		get   func(*experiment.ResilienceConfig) int
	}{
		{"frames delivered", func(c *experiment.ResilienceConfig) int { return c.FramesDelivered }},
		{"frames dropped", func(c *experiment.ResilienceConfig) int { return c.FramesDropped }},
		{"retransmissions", func(c *experiment.ResilienceConfig) int { return c.Retransmits }},
		{"packet-too-big sent", func(c *experiment.ResilienceConfig) int { return c.PTBSent }},
		{"service msgs dropped", func(c *experiment.ResilienceConfig) int { return c.ServiceDrops }},
	}
	for _, row := range rows {
		fmt.Fprintf(&w, "%-22s", row.label)
		for _, p := range r.Profiles {
			n := 0
			for i := range p.ByConfig {
				n += row.get(&p.ByConfig[i])
			}
			fmt.Fprintf(&w, " %15d", n)
		}
		fmt.Fprintln(&w)
	}

	// Regressions vs the first profile: devices functional on the clean
	// network that an impairment bricked, per configuration.
	if len(r.Profiles) > 1 {
		base := r.Profiles[0]
		printed := false
		for _, p := range r.Profiles[1:] {
			for _, rc := range p.ByConfig {
				bc := r.Config(base.Profile.Name, rc.ID)
				if bc == nil {
					continue
				}
				broken := subtract(rc.FailedDevices, bc.FailedDevices)
				if len(broken) == 0 {
					continue
				}
				if !printed {
					fmt.Fprintf(&w, "\nBricked vs %s:\n", base.Profile.Name)
					printed = true
				}
				fmt.Fprintf(&w, "  %-15s %-20s %s\n", p.Profile.Name, rc.ID, strings.Join(broken, "; "))
			}
		}
		if !printed {
			fmt.Fprintf(&w, "\nNo device functional on %q failed under any impairment profile.\n",
				base.Profile.Name)
		}
	}
	return w.String()
}

func profileNames(r *experiment.ResilienceReport) []string {
	names := make([]string, len(r.Profiles))
	for i, p := range r.Profiles {
		names[i] = p.Profile.Name
	}
	return names
}

// failureStages collects every stage seen anywhere in the grid, "ok"
// first, the rest sorted for a stable table.
func failureStages(r *experiment.ResilienceReport) []string {
	seen := map[string]bool{}
	for _, p := range r.Profiles {
		for _, rc := range p.ByConfig {
			for stage := range rc.Failures {
				seen[stage] = true
			}
		}
	}
	stages := make([]string, 0, len(seen))
	for stage := range seen {
		if stage != "ok" {
			stages = append(stages, stage)
		}
	}
	sort.Strings(stages)
	if seen["ok"] {
		stages = append([]string{"ok"}, stages...)
	}
	return stages
}

// subtract returns the elements of a not present in b, preserving order.
func subtract(a, b []string) []string {
	in := map[string]bool{}
	for _, s := range b {
		in[s] = true
	}
	var out []string
	for _, s := range a {
		if !in[s] {
			out = append(out, s)
		}
	}
	return out
}
