package report

import (
	"strings"
	"testing"

	"v6lab/internal/conntrack"
	"v6lab/internal/experiment"
	"v6lab/internal/firewall"
)

func TestFirewallExposure(t *testing.T) {
	rep := &experiment.FirewallReport{
		Ports: []uint16{22, 80, 8080, 37993},
		Policies: []experiment.PolicyExposure{
			{
				Policy: "open", DevicesProbed: 40, AddrsProbed: 120,
				DevicesReachable: 12, PortsReachable: 30, FunctionalDevices: 91,
				OpenByDevice: map[string][]uint16{
					"Samsung Fridge": {8001, 8080, 37993},
					"LG TV":          {8080},
				},
				FW:    firewall.Stats{AllowedByPolicy: 4000, AllowedByState: 500, DroppedIn: 0},
				Flows: 2048,
				CT:    conntrack.Stats{Evictions: 7, Expiries: 3},
			},
			{
				Policy: "stateful", DevicesProbed: 40, AddrsProbed: 120,
				DevicesReachable: 0, PortsReachable: 0, FunctionalDevices: 91,
				OpenByDevice: map[string][]uint16{},
				FW:           firewall.Stats{AllowedByState: 500, DroppedIn: 4500},
			},
			{
				Policy: "pinhole", DevicesProbed: 40, AddrsProbed: 120,
				DevicesReachable: 1, PortsReachable: 3, FunctionalDevices: 91,
				Pinholes:     []string{"TCP 2001:470:8:100::/64 port 37993"},
				OpenByDevice: map[string][]uint16{"Samsung Fridge": {37993}},
				FW:           firewall.Stats{AllowedByPolicy: 3, AllowedByState: 500, DroppedIn: 4497},
			},
		},
	}
	out := FirewallExposure(rep)
	for _, want := range []string{
		"Firewall policy comparison",
		"open", "stateful", "pinhole",
		"Samsung Fridge",
		"37993",
		"pinholes (pinhole)",
		"4 probe ports",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// The stateful row must report zero reachable devices/ports.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "stateful") {
			f := strings.Fields(line)
			if f[2] != "0" || f[3] != "0" {
				t.Errorf("stateful row not zero-exposure: %q", line)
			}
		}
	}
	// Reachable-device listings are sorted for determinism.
	if strings.Index(out, "LG TV") > strings.Index(out, "Samsung Fridge") {
		t.Error("device listing not sorted")
	}
}
