package report

import (
	"strings"
	"testing"

	"v6lab/internal/adversary"
	"v6lab/internal/fleet"
)

// TestAdversaryWorkerCountInvariance is the acceptance check for the
// adversary subsystem: a 200-home population attacked with 1 worker and
// with 8 workers must render byte-identical reports — including the
// per-policy time-to-compromise table. Fleet results, campaign results
// and telemetry all merge in home index order, so parallelism can never
// leak into the output.
func TestAdversaryWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("200-home adversary run takes tens of seconds; skipped with -short")
	}
	cfg := adversary.Config{Fleet: fleet.Config{Homes: 200, Seed: 1}, CampaignSeed: 3}

	cfg.Fleet.Workers = 1
	serial, err := adversary.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Fleet.Workers = 8
	parallel, err := adversary.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	a, b := Adversary(serial), Adversary(parallel)
	if a != b {
		t.Fatalf("adversary report differs between 1 and 8 workers:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", a, b)
	}

	// The report must actually carry the three phases' tables.
	for _, want := range []string{
		"200 homes",
		"Address discovery",
		"eui64-expansion",
		"Campaign sweep by firewall policy",
		"Worm propagation",
		"t_first",
	} {
		if !strings.Contains(a, want) {
			t.Errorf("adversary report missing %q:\n%s", want, a)
		}
	}
	// And the discovery outcome must show the designed asymmetry:
	// predictable addresses found, privacy addresses missed.
	if serial.Discovery.FoundEUI64 == 0 {
		t.Error("no EUI-64 addresses discovered on a 200-home fleet")
	}
	if serial.Discovery.FoundLowByte == 0 {
		t.Error("no low-byte addresses discovered on a 200-home fleet")
	}
	if serial.Discovery.MissedRandom == 0 {
		t.Error("every privacy address was discovered; the generator should miss them")
	}
}

// TestAdversaryRenderSmall renders a small run and spot-checks structure
// cheaply enough for -short.
func TestAdversaryRenderSmall(t *testing.T) {
	rep, err := adversary.Run(adversary.Config{Fleet: fleet.Config{Homes: 12, Workers: 4, Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	out := Adversary(rep)
	for _, want := range []string{"Adversary — 12 homes", "campaign seed 1", "candidates tried", "Policy"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
