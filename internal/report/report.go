// Package report renders the reproduction's tables and figures as text, in
// the paper's row/column layout, side by side with the published values.
package report

import (
	"fmt"
	"sort"
	"strings"

	"v6lab/internal/addr"
	"v6lab/internal/analysis"
	"v6lab/internal/experiment"
	"v6lab/internal/paper"
)

// vecRow formats one per-category row with its total.
func vecRow(w *strings.Builder, label string, v paper.Vec) {
	fmt.Fprintf(w, "%-28s", label)
	for _, x := range v {
		fmt.Fprintf(w, "%6d", x)
	}
	fmt.Fprintf(w, " | %5d\n", v.Total())
}

// vecRowVs adds the paper's value for comparison when it differs.
func vecRowVs(w *strings.Builder, label string, got, want paper.Vec) {
	vecRow(w, label, got)
	if got != want {
		fmt.Fprintf(w, "%-28s", "  (paper)")
		for _, x := range want {
			fmt.Fprintf(w, "%6d", x)
		}
		fmt.Fprintf(w, " | %5d\n", want.Total())
	}
}

func header(w *strings.Builder, title string) {
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	fmt.Fprintf(w, "%-28s", "")
	for _, c := range paper.CategoryOrder {
		short := c
		if len(short) > 5 {
			short = short[:5]
		}
		fmt.Fprintf(w, "%6s", short)
	}
	fmt.Fprintf(w, " | %5s\n", "Total")
}

// Table3 renders the IPv6-only funnel (and Figure 2's ring data).
func Table3(f analysis.Funnel) string {
	var w strings.Builder
	header(&w, "Table 3 — IPv6-only experiments: feature funnel")
	vecRow(&w, "Total # of Device", f.Devices)
	vecRowVs(&w, "- No IPv6", f.NoIPv6, paper.Table3.NoIPv6)
	vecRowVs(&w, "2 IPv6 NDP Traffic", f.NDP, paper.Table3.NDP)
	vecRowVs(&w, "- NDP Traffic No Addr", f.NDPNoAddr, paper.Table3.NDPNoAddr)
	vecRowVs(&w, "3 IPv6 Address", f.Addr, paper.Table3.Addr)
	vecRowVs(&w, "^ Global Unique Address", f.GUA, paper.Table3.GUA)
	vecRowVs(&w, "- Addr but No IPv6 DNS", f.AddrNoDNS, paper.Table3.AddrNoDNS)
	vecRowVs(&w, "4 IPv6 DNS (AAAA Req)", f.DNSAAAAReq, paper.Table3.DNSAAAAReq)
	vecRowVs(&w, "^ AAAA DNS Response", f.AAAAResp, paper.Table3.AAAAResp)
	vecRowVs(&w, "- IPv6 DNS but No Data", f.DNSNoData, paper.Table3.DNSNoData)
	vecRowVs(&w, "5 Internet TCP/UDP Data", f.InternetData, paper.Table3.InternetData)
	vecRowVs(&w, "- IPv6 Data but Not Func", f.DataNotFunc, paper.Table3.DataNotFunc)
	vecRowVs(&w, "6 Functional over IPv6", f.Functional, paper.Table3.Functional)
	return w.String()
}

// Figure2 renders the concentric-ring percentages of Figure 2.
func Figure2(f analysis.Funnel) string {
	var w strings.Builder
	fmt.Fprintf(&w, "Figure 2 — IPv6-only rings (%% of 93 devices)\n")
	rows := []struct {
		label string
		v     paper.Vec
	}{
		{"IPv6 NDP traffic", f.NDP},
		{"IPv6 address", f.Addr},
		{"IPv6 DNS", f.DNSAAAAReq},
		{"Internet data over IPv6", f.InternetData},
		{"Functional", f.Functional},
	}
	for _, r := range rows {
		fmt.Fprintf(&w, "  %-26s %3d devices  %5.1f%%\n", r.label, r.v.Total(),
			100*float64(r.v.Total())/93)
	}
	return w.String()
}

// Table4 renders the dual-stack deltas.
func Table4(d analysis.Delta) string {
	var w strings.Builder
	header(&w, "Table 4 — Dual-stack minus IPv6-only (devices)")
	vecRow(&w, "IPv6 NDP Traffic", d.NDP)
	vecRow(&w, "IPv6 Address", d.Addr)
	vecRow(&w, "Global Unique Address", d.GUA)
	vecRow(&w, "AAAA DNS Request", d.AAAAReq)
	vecRow(&w, "AAAA DNS Response", d.AAAAResp)
	vecRow(&w, "Internet TCP/UDP Data", d.InternetData)
	return w.String()
}

// Table5 renders union feature support.
func Table5(f analysis.Features) string {
	var w strings.Builder
	header(&w, "Table 5 — IPv6 feature support (union of v6-enabled runs)")
	vecRowVs(&w, "IPv6 Addr", f.Addr, paper.Table5.Addr)
	vecRowVs(&w, "Stateful DHCPv6", f.StatefulDHCPv6, paper.Table5.StatefulDHCPv6)
	vecRowVs(&w, "GUA", f.GUA, paper.Table5.GUA)
	vecRowVs(&w, "ULA", f.ULA, paper.Table5.ULA)
	vecRowVs(&w, "LLA", f.LLA, paper.Table5.LLA)
	vecRowVs(&w, "EUI-64 Addr", f.EUI64, paper.Table5.EUI64)
	vecRowVs(&w, "DNS Over IPv6", f.DNSOverV6, paper.Table5.DNSOverV6)
	vecRowVs(&w, "A-only Request in IPv6", f.AOnlyInV6, paper.Table5.AOnlyInV6)
	vecRowVs(&w, "AAAA Request (v4 or v6)", f.AAAAReq, paper.Table5.AAAAReq)
	vecRowVs(&w, "IPv4-only AAAA Request", f.V4OnlyAAAAReq, paper.Table5.V4OnlyAAAAReq)
	vecRowVs(&w, "AAAA Response", f.AAAAResp, paper.Table5.AAAAResp)
	vecRowVs(&w, "AAAA Req No AAAA Res", f.AAAAReqNoRes, paper.Table5.AAAAReqNoRes)
	vecRowVs(&w, "Stateless DHCPv6", f.StatelessDHCPv6, paper.Table5.StatelessDHCPv6)
	vecRowVs(&w, "IPv6 TCP/UDP Trans", f.V6Trans, paper.Table5.V6Trans)
	vecRowVs(&w, "Internet Trans", f.InternetTrans, paper.Table5.InternetTrans)
	vecRowVs(&w, "Local Trans", f.LocalTrans, paper.Table5.LocalTrans)
	return w.String()
}

// Table6 renders the inventories and volume fractions.
func Table6(inv analysis.Inventory) string {
	var w strings.Builder
	header(&w, "Table 6 — Address and distinct-query inventories")
	vecRowVs(&w, "# of IPv6 Addr", inv.Addrs, paper.Table6.IPv6Addrs)
	vecRowVs(&w, "# of GUA Addr", inv.GUAs, paper.Table6.GUAAddrs)
	vecRowVs(&w, "# of ULA Addr", inv.ULAs, paper.Table6.ULAAddrs)
	vecRowVs(&w, "# of LLA Addr", inv.LLAs, paper.Table6.LLAAddrs)
	vecRowVs(&w, "# of AAAA DNS Req", inv.AAAAReqNames, paper.Table6.AAAAReqNames)
	vecRowVs(&w, "# of A-only Req in IPv6", inv.AOnlyV6Names, paper.Table6.AOnlyV6Names)
	vecRowVs(&w, "# of IPv4-only AAAA Req", inv.V4OnlyAAAANames, paper.Table6.V4OnlyAAAANames)
	vecRowVs(&w, "# of AAAA DNS Res", inv.AAAARes, paper.Table6.AAAAResNames)
	fmt.Fprintf(&w, "%-28s", "IPv6 %% of Internet volume")
	for _, pct := range inv.V6FracPct {
		fmt.Fprintf(&w, "%5.1f%%", pct)
	}
	fmt.Fprintf(&w, " | %4.1f%%\n", inv.V6FracTotalPct)
	fmt.Fprintf(&w, "%-28s", "  (paper)")
	for _, pct := range paper.Table6.V6VolumeFracPct {
		fmt.Fprintf(&w, "%5.1f%%", pct)
	}
	fmt.Fprintf(&w, " | %4.1f%%\n", paper.Table6.V6VolumeFracTotalPct)
	return w.String()
}

// Table7 renders destination AAAA readiness.
func Table7(funcRows, nonFuncRows, mfrFunc, mfrNonFunc []analysis.Readiness) string {
	var w strings.Builder
	fmt.Fprintf(&w, "Table 7 — DNS AAAA readiness across destinations\n")
	fmt.Fprintf(&w, "%-24s %8s %9s %10s %8s\n", "Group", "Device #", "Domain #", "AAAA Res #", "AAAA %")
	section := func(title string, rows []analysis.Readiness) {
		fmt.Fprintf(&w, "-- %s --\n", title)
		var dev, dom, aaaa int
		for _, r := range rows {
			fmt.Fprintf(&w, "%-24s %8d %9d %10d %7.1f%%\n", r.Group, r.Devices, r.Domains, r.AAAA, r.Pct())
			dev += r.Devices
			dom += r.Domains
			aaaa += r.AAAA
		}
		total := analysis.Readiness{Group: "Total", Devices: dev, Domains: dom, AAAA: aaaa}
		fmt.Fprintf(&w, "%-24s %8d %9d %10d %7.1f%%\n", total.Group, dev, dom, aaaa, total.Pct())
	}
	section("Functional devices in IPv6-only (by category)", funcRows)
	section("Non-functional devices in IPv6-only (by category)", nonFuncRows)
	section("Functional (by manufacturer)", mfrFunc)
	section("Non-functional (by manufacturer, >=3 devices)", mfrNonFunc)
	fmt.Fprintf(&w, "(paper: functional 728 domains / 533 AAAA = 73.2%%; non-functional 1344 / 418 = 31.1%%)\n")
	return w.String()
}

// Table9 renders the destination switching statistics.
func Table9(sw analysis.Switching) string {
	var w strings.Builder
	header(&w, "Table 9 — Destination IP-version switching (dual-stack)")
	vecRowVs(&w, "# IPv6 Dest. Domain", sw.V6Dest, paper.Table9.V6Dest)
	vecRowVs(&w, "# IPv4 Dest. Domain", sw.V4Dest, paper.Table9.V4Dest)
	vecRowVs(&w, "# of Dest. Domain", sw.TotalDest, paper.Table9.TotalDest)
	vecRow(&w, "common v4-only/dual", sw.CommonV4)
	vecRowVs(&w, "v4 partially -> v6", sw.V4PartialToV6, paper.Table9.V4PartialToV6)
	vecRowVs(&w, "v4 fully -> v6", sw.V4FullToV6, paper.Table9.V4FullToV6)
	vecRow(&w, "common v6-only/dual", sw.CommonV6)
	vecRowVs(&w, "v6 partially -> v4", sw.V6PartialToV4, paper.Table9.V6PartialToV4)
	vecRowVs(&w, "v6 fully -> v4", sw.V6FullToV4, paper.Table9.V6FullToV4)
	vecRowVs(&w, "IPv4-only w/ AAAA", sw.V4OnlyWithAAAA, paper.Table9.V4OnlyWithAAAA)
	return w.String()
}

// Figure3 renders the CDF summaries.
func Figure3(c analysis.CDFs) string {
	var w strings.Builder
	fmt.Fprintf(&w, "Figure 3 — CDFs (summary statistics)\n")
	fmt.Fprintf(&w, "IPv6 addresses per device: n=%d total=%d median=%d p90=%d max=%d top10-share=%.0f%%\n",
		len(c.AddrsPerDevice), sumInts(c.AddrsPerDevice), percentile(c.AddrsPerDevice, 50),
		percentile(c.AddrsPerDevice, 90), maxInt(c.AddrsPerDevice), 100*analysis.TopShare(c.AddrsPerDevice, 10))
	fmt.Fprintf(&w, "AAAA query names per device: n=%d total=%d median=%d p90=%d max=%d top10-share=%.0f%%\n",
		len(c.AAAANamesPerDevice), sumInts(c.AAAANamesPerDevice), percentile(c.AAAANamesPerDevice, 50),
		percentile(c.AAAANamesPerDevice, 90), maxInt(c.AAAANamesPerDevice), 100*analysis.TopShare(c.AAAANamesPerDevice, 10))
	fmt.Fprintf(&w, "(paper: 10 devices hold ~80%% of GUAs / 90%% of ULAs; 10 devices hold ~70%% of queries)\n")
	return w.String()
}

// Figure4 renders the per-device volume fraction bars.
func Figure4(shares []analysis.VolumeShare) string {
	var w strings.Builder
	fmt.Fprintf(&w, "Figure 4 — IPv6 share of Internet volume in dual-stack (per device)\n")
	for _, s := range shares {
		marker := "non-functional in IPv6-only"
		if s.Functional {
			marker = "functional in IPv6-only"
		}
		bar := strings.Repeat("#", int(s.FracPct/2))
		fmt.Fprintf(&w, "%-22s %6.1f%% %-50s (%s)\n", s.Device, s.FracPct, bar, marker)
	}
	return w.String()
}

// Figure5 renders the EUI-64 exposure funnel.
func Figure5(r analysis.EUI64Report) string {
	var w strings.Builder
	fmt.Fprintf(&w, "Figure 5 — GUA EUI-64 exposure\n")
	fmt.Fprintf(&w, "assign=%d use=%d dns=%d data=%d  (paper: use=%d dns=%d data=%d)\n",
		r.Assign, r.Use, r.DNS, r.Data, paper.EUI64.Use, paper.EUI64.DNS, paper.EUI64.Data)
	fmt.Fprintf(&w, "data devices %v exposed %d domains: first=%d third=%d support=%d (paper %d: %d/%d/%d)\n",
		r.DataDevices, r.DataDomains, r.DataFirst, r.DataThird, r.DataSupport,
		paper.EUI64.DataDomains, paper.EUI64.DataFirst, paper.EUI64.DataThird, paper.EUI64.DataSupport)
	fmt.Fprintf(&w, "dns-only devices %v queried %d names: first=%d third=%d support=%d (paper %d: %d/%d/%d)\n",
		r.DNSOnlyDevices, r.DNSNames, r.DNSFirst, r.DNSThird, r.DNSSupport,
		paper.EUI64.DNSDomains, paper.EUI64.DNSFirst, paper.EUI64.DNSThird, paper.EUI64.DNSSupport)
	return w.String()
}

// DAD renders the §5.2.1 audit.
func DAD(r analysis.DADReport) string {
	var w strings.Builder
	fmt.Fprintf(&w, "DAD audit (§5.2.1)\n")
	fmt.Fprintf(&w, "devices skipping DAD for >=1 address: %d (paper %d)\n", r.DevicesSkipping, paper.DAD.DevicesSkipping)
	fmt.Fprintf(&w, "addresses without DAD: GUA=%d ULA=%d LLA=%d (paper %d/%d/%d)\n",
		r.GUAsNoDAD, r.ULAsNoDAD, r.LLAsNoDAD, paper.DAD.GUAsNoDAD, paper.DAD.ULAsNoDAD, paper.DAD.LLAsNoDAD)
	fmt.Fprintf(&w, "devices never probing: %d %v (paper %d)\n", r.DevicesNeverDAD, r.NonCompliant, paper.DAD.DevicesNeverDAD)
	return w.String()
}

// PortScan renders the §5.4.2 findings.
func PortScan(r *experiment.ScanReport) string {
	var w strings.Builder
	fmt.Fprintf(&w, "Port scans (§5.4.2)\n")
	fmt.Fprintf(&w, "devices with IPv4-only open ports: %d (paper %d)\n",
		r.DevicesWithV4OnlyPorts, paper.PortScan.DevicesWithV4OnlyPorts)
	fmt.Fprintf(&w, "devices with IPv6-only open ports: %d (paper 1, the Samsung Fridge)\n", r.DevicesWithV6OnlyPorts)
	for _, d := range r.Devices {
		if len(d.V4OnlyTCP) == 0 && len(d.V6OnlyTCP) == 0 {
			continue
		}
		fmt.Fprintf(&w, "  %-22s v4-only=%v v6-only=%v\n", d.Device, d.V4OnlyTCP, d.V6OnlyTCP)
	}
	return w.String()
}

// Tracking renders the §5.4.3 findings.
func Tracking(r analysis.TrackingReport) string {
	var w strings.Builder
	fmt.Fprintf(&w, "Tracking domains (§5.4.3, functional devices)\n")
	fmt.Fprintf(&w, "domains only in IPv4: %d (paper %d); SLDs: %d (paper %d); third-party SLDs: %d (paper %d)\n",
		r.V4OnlyDomains, paper.Tracking.V4OnlyDomains,
		r.V4OnlySLDs, paper.Tracking.V4OnlySLDs,
		r.ThirdPartySLDs, paper.Tracking.ThirdPartySLDs)
	fmt.Fprintf(&w, "tracker SLDs: %s\n", strings.Join(r.TrackerSLDs, ", "))
	return w.String()
}

// FunctionalMatrix renders the per-experiment functionality outcomes — the
// §4.1 test applied in every configuration (the paper reports only the
// IPv6-only aggregate; the matrix shows the RDNSS-only and stateful
// variants too).
func FunctionalMatrix(exps []*analysis.ExpObs, profiles []string) string {
	var w strings.Builder
	fmt.Fprintf(&w, "Functionality matrix — §4.1 primary-function test per experiment\n")
	fmt.Fprintf(&w, "%-24s", "Device")
	for _, e := range exps {
		id := e.ID
		if len(id) > 10 {
			id = id[len(id)-10:]
		}
		fmt.Fprintf(&w, " %10s", id)
	}
	fmt.Fprintf(&w, "\n")
	counts := make([]int, len(exps))
	for _, name := range profiles {
		// Only print devices that fail somewhere (the interesting rows).
		interesting := false
		for _, e := range exps {
			if !e.Functional[name] {
				interesting = true
			}
		}
		for i, e := range exps {
			if e.Functional[name] {
				counts[i]++
			}
		}
		if !interesting {
			continue
		}
		fmt.Fprintf(&w, "%-24s", name)
		for _, e := range exps {
			mark := "fail"
			if e.Functional[name] {
				mark = "ok"
			}
			fmt.Fprintf(&w, " %10s", mark)
		}
		fmt.Fprintf(&w, "\n")
	}
	fmt.Fprintf(&w, "%-24s", "TOTAL functional")
	for _, c := range counts {
		fmt.Fprintf(&w, " %10d", c)
	}
	fmt.Fprintf(&w, "\n")
	return w.String()
}

// Groups renders a Table 8 / 12 / 13-style grouping.
func Groups(title string, rows []analysis.GroupRow) string {
	var w strings.Builder
	fmt.Fprintf(&w, "%s\n", title)
	features := []string{
		"IPv6 Addr", "Stateful DHCPv6", "GUA", "ULA", "LLA", "EUI-64 Addr",
		"DNS Over IPv6", "AAAA Request (v4 or v6)", "AAAA Response",
		"Stateless DHCPv6", "Internet Trans", "Local Trans",
	}
	fmt.Fprintf(&w, "%-22s %4s %4s", "Group", "Dev", "Func")
	for _, f := range features {
		fmt.Fprintf(&w, " %5s", abbrev(f))
	}
	fmt.Fprintf(&w, "\n")
	for _, r := range rows {
		fmt.Fprintf(&w, "%-22s %4d %4d", r.Group, r.Devices, r.FunctionalV6)
		for _, f := range features {
			fmt.Fprintf(&w, " %5d", r.Features[f])
		}
		fmt.Fprintf(&w, "\n")
	}
	return w.String()
}

// Table13 renders the grouped inventories.
func Table13(rows []analysis.GroupRow) string {
	var w strings.Builder
	fmt.Fprintf(&w, "Table 13 — Addresses and distinct AAAA names per group\n")
	fmt.Fprintf(&w, "%-22s %5s %6s %5s %5s %5s %6s\n", "Group", "Dev", "Addrs", "GUA", "ULA", "LLA", "AAAA#")
	for _, r := range rows {
		fmt.Fprintf(&w, "%-22s %5d %6d %5d %5d %5d %6d\n", r.Group, r.Devices, r.Addrs, r.GUAs, r.ULAs, r.LLAs, r.AAAANames)
	}
	return w.String()
}

// Table10 renders the per-device inventory.
func Table10(ds *analysis.Dataset) string {
	var w strings.Builder
	fmt.Fprintf(&w, "Table 10 — Device inventory with observed IPv6 features\n")
	fmt.Fprintf(&w, "%-24s %-10s %4s %4s %4s %4s %4s %4s\n", "Device", "Category", "Func", "NDP", "Addr", "GUA", "DNS6", "Data")
	base := ds.BaselineV6Only()
	exps := ds.V6Exps()
	for _, p := range ds.Profiles {
		d := analysis.Merged(exps, p.Name)
		row := [6]bool{}
		if base != nil {
			row[0] = base.Functional[p.Name]
		}
		if d != nil {
			row[1] = d.NDP
			row[2] = len(d.Assigned) > 0
			row[3] = d.HasAddr(addr.KindGUA)
			row[4] = d.DNSOverV6()
			row[5] = d.InternetV6
		}
		fmt.Fprintf(&w, "%-24s %-10s", p.Name, p.Category)
		for _, b := range row {
			mark := " ."
			if b {
				mark = " x"
			}
			fmt.Fprintf(&w, "%4s", mark)
		}
		fmt.Fprintf(&w, "\n")
	}
	return w.String()
}

func abbrev(s string) string {
	words := strings.Fields(s)
	out := ""
	for _, wd := range words {
		out += wd[:1]
	}
	if len(out) < 2 && len(s) >= 5 {
		return s[:5]
	}
	return out
}

func sumInts(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

func maxInt(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func percentile(sorted []int, p int) int {
	if len(sorted) == 0 {
		return 0
	}
	idx := p * (len(sorted) - 1) / 100
	return sorted[idx]
}

// SortedCopy returns a sorted copy of xs (test helper re-exported for
// examples).
func SortedCopy(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	return out
}
