package report

import (
	"fmt"
	"strings"

	"v6lab/internal/fleet"
)

// Fleet renders the population-level results of a multi-home fleet run:
// the per-config funnel prevalence, functionality and privacy prevalence
// across homes, and inbound exposure by firewall policy. The layout is
// deliberately worker-count-free so the rendering is byte-identical for
// any fleet parallelism.
func Fleet(p *fleet.Population) string {
	a := p.Aggregate()
	var w strings.Builder
	pctH := func(n int) float64 {
		if a.Homes == 0 {
			return 0
		}
		return 100 * float64(n) / float64(a.Homes)
	}

	title := fmt.Sprintf("Fleet — %d simulated homes (seed %d), %d devices total",
		a.Homes, p.Cfg.Seed, a.Devices)
	fmt.Fprintf(&w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	fmt.Fprintf(&w, "household sizes %d-%d devices; %d frames captured across all homes\n\n",
		a.SizeMin, a.SizeMax, a.FramesCaptured)

	fmt.Fprintf(&w, "Connectivity funnel by Table 2 config (devices reaching each stage)\n")
	fmt.Fprintf(&w, "%-22s %5s %5s %5s %5s %5s %5s %5s %6s %7s\n",
		"Config", "Homes", "Devs", "NDP", "Addr", "GUA", "AAAA", "Data", "Func", "Func%")
	for _, ca := range a.ByConfig {
		funcPct := 0.0
		if ca.Devices > 0 {
			funcPct = 100 * float64(ca.Functional) / float64(ca.Devices)
		}
		fmt.Fprintf(&w, "%-22s %5d %5d %5d %5d %5d %5d %5d %6d %6.1f%%\n",
			ca.ID, ca.Homes, ca.Devices, ca.NDP, ca.Addr, ca.GUA,
			ca.AAAAReq, ca.InternetV6, ca.Functional, funcPct)
	}

	fmt.Fprintf(&w, "\nPopulation prevalence (share of homes)\n")
	fmt.Fprintf(&w, "  homes with >=1 bricked device        %4d  (%.1f%%)\n", a.HomesBricked, pctH(a.HomesBricked))
	fmt.Fprintf(&w, "  homes fully functional               %4d  (%.1f%%)\n", a.HomesAllOK, pctH(a.HomesAllOK))
	fmt.Fprintf(&w, "  homes with >=1 DAD-skipping device   %4d  (%.1f%%), %d devices (%d never probe)\n",
		a.HomesDADSkip, pctH(a.HomesDADSkip), a.DADSkipDevices, a.DADNeverDevices)
	fmt.Fprintf(&w, "  homes exposing EUI-64 GUAs           %4d  (%.1f%%), %d devices\n",
		a.HomesEUI64, pctH(a.HomesEUI64), a.EUI64UseDevices)

	if len(a.PrevalenceByPolicy) > 0 {
		fmt.Fprintf(&w, "\nPrevalence by firewall policy (all homes)\n")
		fmt.Fprintf(&w, "%-10s %5s %7s %5s %8s %7s\n",
			"Policy", "Homes", "Bricked", "AllOK", "DADSkip", "EUI64")
		for _, pp := range a.PrevalenceByPolicy {
			fmt.Fprintf(&w, "%-10s %5d %7d %5d %8d %7d\n",
				pp.Policy, pp.Homes, pp.HomesBricked, pp.HomesAllOK,
				pp.HomesDADSkip, pp.HomesEUI64)
		}
	}

	if len(a.ByPolicy) > 0 {
		fmt.Fprintf(&w, "\nInbound IPv6 exposure by firewall policy (WAN-vantage scan, v6-enabled homes)\n")
		fmt.Fprintf(&w, "%-10s %5s %7s %7s %8s %9s %9s\n",
			"Policy", "Homes", "DevPrb", "DevRch", "PortRch", "HomesExp", "HomesExp%")
		for _, pa := range a.ByPolicy {
			expPct := 0.0
			if pa.Homes > 0 {
				expPct = 100 * float64(pa.HomesExposed) / float64(pa.Homes)
			}
			fmt.Fprintf(&w, "%-10s %5d %7d %7d %8d %9d %8.1f%%\n",
				pa.Policy, pa.Homes, pa.DevicesProbed, pa.DevicesReachable,
				pa.PortsReachable, pa.HomesExposed, expPct)
		}
	}
	return w.String()
}
