package report

import (
	"strings"
	"testing"

	"v6lab/internal/fleet"
)

// TestFleetWorkerCountInvariance is the acceptance check for the fleet
// simulator: a 100-home population rendered from a 1-worker run and from
// an 8-worker run must be byte-identical. The merge happens in home index
// order, so parallelism can never leak into the output.
func TestFleetWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("100-home fleet takes several seconds; skipped with -short")
	}
	cfg := fleet.Config{Homes: 100, Seed: 1}

	cfg.Workers = 1
	serial, err := fleet.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	parallel, err := fleet.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	a, b := Fleet(serial), Fleet(parallel)
	if a != b {
		t.Fatalf("fleet report differs between 1 and 8 workers:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", a, b)
	}

	// Sanity on the rendered content itself.
	for _, want := range []string{
		"100 simulated homes",
		"Connectivity funnel by Table 2 config",
		"Population prevalence",
		"Prevalence by firewall policy",
		"Inbound IPv6 exposure by firewall policy",
	} {
		if !strings.Contains(a, want) {
			t.Errorf("fleet report missing %q:\n%s", want, a)
		}
	}
}

// TestFleetRenderSmall renders a tiny fleet and checks the structural
// invariants hold without the 100-home cost.
func TestFleetRenderSmall(t *testing.T) {
	pop, err := fleet.Run(fleet.Config{Homes: 3, Workers: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	out := Fleet(pop)
	if !strings.Contains(out, "3 simulated homes (seed 9)") {
		t.Errorf("missing title line:\n%s", out)
	}
	if !strings.Contains(out, "homes fully functional") {
		t.Errorf("missing prevalence block:\n%s", out)
	}
	if !strings.Contains(out, "Prevalence by firewall policy") {
		t.Errorf("missing per-policy prevalence block:\n%s", out)
	}
	if len(out) < 40 {
		t.Errorf("report suspiciously short (%d bytes)", len(out))
	}
}
