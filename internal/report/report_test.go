package report

import (
	"strings"
	"testing"

	"v6lab/internal/analysis"
	"v6lab/internal/experiment"
	"v6lab/internal/paper"
)

func TestVecRowAlignmentAndPaperDiff(t *testing.T) {
	f := analysis.Funnel{
		Devices: paper.DevicesPerCategory,
		NDP:     paper.Table3.NDP, // matches: no (paper) line
		NoIPv6:  paper.Vec{1, 2, 3, 4, 5, 6, 7},
	}
	out := Table3(f)
	if !strings.Contains(out, "2 IPv6 NDP Traffic") {
		t.Error("missing NDP row")
	}
	// NDP matches the paper, so no "(paper)" echo directly below it.
	lines := strings.Split(out, "\n")
	for i, l := range lines {
		if strings.HasPrefix(l, "2 IPv6 NDP Traffic") {
			if i+1 < len(lines) && strings.Contains(lines[i+1], "(paper)") {
				t.Error("matching row printed a paper echo")
			}
		}
		if strings.HasPrefix(l, "- No IPv6") {
			if i+1 >= len(lines) || !strings.Contains(lines[i+1], "(paper)") {
				t.Error("mismatching row missing its paper echo")
			}
		}
	}
}

func TestFigure2Percentages(t *testing.T) {
	f := analysis.Funnel{NDP: paper.Table3.NDP}
	out := Figure2(f)
	if !strings.Contains(out, "63.4%") {
		t.Errorf("figure 2 missing 63.4%%:\n%s", out)
	}
}

func TestFigure5Rendering(t *testing.T) {
	r := analysis.EUI64Report{
		Assign: 20, Use: 15, DNS: 8, Data: 5,
		DataDomains: 27, DataFirst: 24, DataThird: 1, DataSupport: 2,
		DataDevices: []string{"Nest Camera"},
	}
	out := Figure5(r)
	for _, want := range []string{"use=15", "dns=8", "data=5", "Nest Camera", "27 domains"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 5 missing %q:\n%s", want, out)
		}
	}
}

func TestPortScanRendering(t *testing.T) {
	r := &experiment.ScanReport{
		Devices: []experiment.DeviceScan{
			{Device: "Samsung Fridge", V6OnlyTCP: []uint16{37993, 46525, 46757}},
			{Device: "Quiet Device"},
		},
		DevicesWithV4OnlyPorts: 6,
		DevicesWithV6OnlyPorts: 1,
	}
	out := PortScan(r)
	if !strings.Contains(out, "Samsung Fridge") || !strings.Contains(out, "37993") {
		t.Errorf("port scan report missing fridge finding:\n%s", out)
	}
	if strings.Contains(out, "Quiet Device") {
		t.Error("devices without diffs should be omitted")
	}
}

func TestDADRendering(t *testing.T) {
	out := DAD(analysis.DADReport{DevicesSkipping: 18, GUAsNoDAD: 20, ULAsNoDAD: 7, LLAsNoDAD: 8, DevicesNeverDAD: 4})
	for _, want := range []string{"18", "20", "7", "8", "4"} {
		if !strings.Contains(out, want) {
			t.Errorf("DAD report missing %q", want)
		}
	}
}

func TestPercentileAndHelpers(t *testing.T) {
	xs := []int{1, 2, 3, 4, 100}
	if percentile(xs, 50) != 3 {
		t.Errorf("median = %d", percentile(xs, 50))
	}
	if percentile(nil, 50) != 0 {
		t.Error("empty percentile")
	}
	if maxInt(xs) != 100 || sumInts(xs) != 110 {
		t.Error("max/sum wrong")
	}
	if got := SortedCopy([]int{3, 1, 2}); got[0] != 1 || got[2] != 3 {
		t.Errorf("SortedCopy = %v", got)
	}
	if abbrev("AAAA Request (v4 or v6)") == "" {
		t.Error("abbrev empty")
	}
}

func TestGroupsRendering(t *testing.T) {
	rows := []analysis.GroupRow{{
		Group: "Google", Devices: 8, FunctionalV6: 5,
		Features: map[string]int{"IPv6 Addr": 8, "GUA": 7},
	}}
	out := Groups("Table 8 test", rows)
	if !strings.Contains(out, "Google") || !strings.Contains(out, "8") {
		t.Errorf("groups output:\n%s", out)
	}
	out13 := Table13(rows)
	if !strings.Contains(out13, "Google") {
		t.Error("table 13 missing group")
	}
}

func TestReadinessPct(t *testing.T) {
	r := analysis.Readiness{Domains: 728, AAAA: 533}
	if pct := r.Pct(); pct < 73.1 || pct > 73.3 {
		t.Errorf("pct = %.2f", pct)
	}
	if (analysis.Readiness{}).Pct() != 0 {
		t.Error("zero-domain pct")
	}
}
