package report

import (
	"fmt"
	"strings"
	"time"

	"v6lab/internal/timeline"
)

// Timeline renders a long-horizon run: per-day functionality, the DHCP
// lease-renewal funnels, sleep/wake and power-cycle churn, and the
// re-addressing outages ISP prefix rotations caused. Like the fleet
// report, the layout is worker-count-free: it consumes only the
// deterministic Totals, so the rendering is byte-identical for any
// timeline parallelism.
func Timeline(r *timeline.Report) string {
	t := r.Totals()
	var w strings.Builder

	title := fmt.Sprintf("Timeline — %d homes over %.1f simulated days (seed %d), %d devices",
		t.Homes, r.SimDays(), r.Cfg.Seed, t.Devices)
	fmt.Fprintf(&w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	fmt.Fprintf(&w, "%d frames delivered across the horizon\n\n", t.Frames)

	fmt.Fprintf(&w, "Per-day functionality (population-wide workload bursts)\n")
	fmt.Fprintf(&w, "%-6s %8s %8s %8s %6s\n", "Day", "Bursts", "OK", "Asleep", "OK%")
	for d, ds := range t.Days {
		okPct := 0.0
		if ds.BurstsAttempted > 0 {
			okPct = 100 * float64(ds.BurstsOK) / float64(ds.BurstsAttempted)
		}
		fmt.Fprintf(&w, "%-6d %8d %8d %8d %5.1f%%\n",
			d+1, ds.BurstsAttempted, ds.BurstsOK, ds.BurstsAsleep, okPct)
	}

	fmt.Fprintf(&w, "\nLease-renewal funnel (Expired includes leases slept past)\n")
	fmt.Fprintf(&w, "%-8s %9s %9s %9s %9s %10s %7s\n",
		"Family", "Attempts", "Renewed", "Retried", "Expired", "Reacquired", "Failed")
	for _, row := range []struct {
		name string
		f    timeline.RenewalFunnel
	}{{"DHCPv4", t.V4}, {"DHCPv6", t.V6}} {
		fmt.Fprintf(&w, "%-8s %9d %9d %9d %9d %10d %7d\n",
			row.name, row.f.Attempts, row.f.Renewed, row.f.RenewedRetry,
			row.f.Expired, row.f.Reacquired, row.f.Failed)
	}

	fmt.Fprintf(&w, "\nChurn over the horizon\n")
	fmt.Fprintf(&w, "  device sleeps / wakes          %6d / %-6d\n", t.Sleeps, t.Wakes)
	fmt.Fprintf(&w, "  power cycles                   %6d\n", t.PowerCycles)
	fmt.Fprintf(&w, "  RA lifetime expiries           %6d  (%d recovered by soliciting)\n",
		t.RAExpiries, t.RARecoveries)

	if t.Rotations > 0 {
		mean := time.Duration(0)
		if t.Recovered > 0 {
			mean = t.OutageTotal / time.Duration(t.Recovered)
		}
		fmt.Fprintf(&w, "\nISP prefix rotations (flash renumbering)\n")
		fmt.Fprintf(&w, "  rotations across population    %6d\n", t.Rotations)
		fmt.Fprintf(&w, "  homes re-addressed             %6d\n", t.Recovered)
		fmt.Fprintf(&w, "  live flows aborted             %6d\n", t.ConnsAborted)
		fmt.Fprintf(&w, "  re-addressing outage           mean %v, max %v\n",
			mean.Round(time.Second), t.OutageMax.Round(time.Second))
	}
	return w.String()
}
