package report

import (
	"encoding/csv"
	"strings"
	"testing"

	"v6lab/internal/analysis"
	"v6lab/internal/paper"
)

// parseCSV round-trips an export through encoding/csv and fails the test
// if the output is not well-formed or ragged.
func parseCSV(t *testing.T, out string) [][]string {
	t.Helper()
	recs, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatalf("export is not valid CSV: %v\n%s", err, out)
	}
	return recs
}

func TestCSVFunnelShape(t *testing.T) {
	f := analysis.Funnel{
		Devices: paper.DevicesPerCategory,
		NDP:     paper.Table3.NDP,
	}
	recs := parseCSV(t, CSVFunnel(f))
	// Header: stage + one column per category + total.
	wantCols := 1 + len(paper.CategoryOrder) + 1
	if len(recs[0]) != wantCols {
		t.Fatalf("header has %d columns, want %d", len(recs[0]), wantCols)
	}
	if recs[0][0] != "stage" || recs[0][wantCols-1] != "total" {
		t.Errorf("header = %v", recs[0])
	}
	// 9 funnel stages below the header, all same width.
	if len(recs) != 10 {
		t.Fatalf("got %d rows, want 10", len(recs))
	}
	for i, r := range recs {
		if len(r) != wantCols {
			t.Errorf("row %d has %d columns, want %d", i, len(r), wantCols)
		}
	}
	if recs[1][0] != "devices" || recs[9][0] != "functional" {
		t.Errorf("stage order wrong: first=%q last=%q", recs[1][0], recs[9][0])
	}
	if CSVFunnel(f) != CSVFunnel(f) {
		t.Error("two exports of the same funnel differ")
	}
}

func TestCSVVolumeShares(t *testing.T) {
	shares := []analysis.VolumeShare{
		{Device: "Apple TV", FracPct: 71.25, Functional: true},
		{Device: "Wyze Cam", FracPct: 0, Functional: false},
	}
	recs := parseCSV(t, CSVVolumeShares(shares))
	if len(recs) != 3 {
		t.Fatalf("got %d rows, want 3", len(recs))
	}
	if recs[1][0] != "Apple TV" || recs[1][1] != "71.25" || recs[1][2] != "true" {
		t.Errorf("row = %v", recs[1])
	}
	if recs[2][2] != "false" {
		t.Errorf("row = %v", recs[2])
	}
}

func TestCSVCDF(t *testing.T) {
	recs := parseCSV(t, CSVCDF([]int{1, 2, 4, 8}))
	if len(recs) != 5 {
		t.Fatalf("got %d rows, want 5", len(recs))
	}
	if recs[2][0] != "2" || recs[2][1] != "0.5000" {
		t.Errorf("median row = %v", recs[2])
	}
	if recs[4][1] != "1.0000" {
		t.Errorf("last row must reach cdf 1: %v", recs[4])
	}
}
