package report

import (
	"fmt"
	"strings"
	"time"

	"v6lab/internal/adversary"
)

// Adversary renders the attacker's-view pipeline: hitlist discovery
// scored against ground truth, the campaign sweep per firewall policy,
// and the worm's per-policy time-to-compromise table. Everything here is
// derived from index-order-merged results, so the rendering is
// byte-identical at any worker count.
func Adversary(rep *adversary.Report) string {
	var w strings.Builder

	title := fmt.Sprintf("Adversary — %d homes, campaign seed %d", rep.Homes, rep.CampaignSeed)
	fmt.Fprintf(&w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	if rep.ProbeBudget > 0 {
		fmt.Fprintf(&w, "per-home probe budget %d\n", rep.ProbeBudget)
	}

	d := rep.Discovery
	pct := func(n, of int) float64 {
		if of == 0 {
			return 0
		}
		return 100 * float64(n) / float64(of)
	}
	fmt.Fprintf(&w, "\nAddress discovery (hitlist generation vs ground truth)\n")
	fmt.Fprintf(&w, "  homes swept        %6d  (%d with IPv6)\n", d.Homes, d.HomesV6)
	fmt.Fprintf(&w, "  candidates tried   %6d\n", d.Candidates)
	fmt.Fprintf(&w, "  addresses held     %6d\n", d.AddrsTotal)
	fmt.Fprintf(&w, "  discovered         %6d  (%.1f%%)\n", d.Found, pct(d.Found, d.AddrsTotal))
	fmt.Fprintf(&w, "    eui64-expansion  %6d\n", d.FoundEUI64)
	fmt.Fprintf(&w, "    low-byte-sweep   %6d\n", d.FoundLowByte)
	fmt.Fprintf(&w, "    leak-harvest     %6d  (%d privacy addrs: leaks are their only route)\n",
		d.FoundLeak, d.FoundRandom)
	fmt.Fprintf(&w, "  never found        %6d  (%d privacy-addressed)\n", d.Missed, d.MissedRandom)

	c := rep.Campaign
	fmt.Fprintf(&w, "\nCampaign sweep by firewall policy (%d probe ports, %d homes scanned, %d skipped)\n",
		len(c.Ports), c.HomesScanned, c.HomesSkipped)
	fmt.Fprintf(&w, "%-10s %5s %7s %7s %8s %7s %8s\n",
		"Policy", "Homes", "Scanned", "Targets", "Probes", "DevRch", "PortRch")
	for _, pc := range c.PerPolicy {
		fmt.Fprintf(&w, "%-10s %5d %7d %7d %8d %7d %8d\n",
			pc.Policy, pc.Homes, pc.HomesScanned, pc.TargetsProbed, pc.ProbesSent,
			pc.DevicesReachable, pc.PortsReachable)
	}
	fmt.Fprintf(&w, "%-10s %5d %7d %7d %8d %7d %8d\n",
		"total", c.HomesScanned+c.HomesSkipped, c.HomesScanned, c.TargetsProbed,
		c.ProbesSent, c.DevicesReachable, c.PortsReachable)

	wm := rep.Worm
	tick := func(t int) string {
		if t < 0 {
			return "-"
		}
		return (time.Duration(t) * wm.Tick).String()
	}
	fmt.Fprintf(&w, "\nWorm propagation (%d probes/bot/tick, tick %s, ran %d ticks)\n",
		wm.ProbesPerTick, wm.Tick, wm.Ticks)
	fmt.Fprintf(&w, "%-10s %5s %5s %6s %6s %6s %8s %8s %8s %8s\n",
		"Policy", "Homes", "Devs", "Entry", "Susc", "Comp", "t_first", "t_50", "t_90", "t_all")
	for _, pw := range wm.PerPolicy {
		fmt.Fprintf(&w, "%-10s %5d %5d %6d %6d %6d %8s %8s %8s %8s\n",
			pw.Policy, pw.Homes, pw.Devices, pw.Entry, pw.Susceptible, pw.Compromised,
			tick(pw.TFirst), tick(pw.T50), tick(pw.T90), tick(pw.TAll))
	}
	fmt.Fprintf(&w, "%-10s %5s %5d %6d %6d %6d  probes spent %d\n",
		"total", "", wm.Devices, wm.Entry, wm.Susceptible, wm.Compromised, wm.ProbesSent)

	if len(wm.Curve) > 1 {
		fmt.Fprintf(&w, "\nCompromise curve (cumulative devices, sampled)\n")
		step := (len(wm.Curve) + 11) / 12
		for t := 0; t < len(wm.Curve); t += step {
			bar := ""
			if wm.Susceptible > 0 {
				bar = strings.Repeat("#", wm.Curve[t]*40/wm.Susceptible)
			}
			fmt.Fprintf(&w, "  %8s %5d %s\n", (time.Duration(t) * wm.Tick).String(), wm.Curve[t], bar)
		}
		last := len(wm.Curve) - 1
		if last%step != 0 {
			bar := ""
			if wm.Susceptible > 0 {
				bar = strings.Repeat("#", wm.Curve[last]*40/wm.Susceptible)
			}
			fmt.Fprintf(&w, "  %8s %5d %s\n", (time.Duration(last) * wm.Tick).String(), wm.Curve[last], bar)
		}
	}
	return w.String()
}
