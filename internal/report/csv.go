package report

import (
	"encoding/csv"
	"fmt"
	"strings"

	"v6lab/internal/analysis"
	"v6lab/internal/paper"
)

// CSVFunnel exports Table 3 as CSV (one row per funnel stage, one column
// per category plus a total), for plotting Figure 2 externally.
func CSVFunnel(f analysis.Funnel) string {
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	head := append([]string{"stage"}, paper.CategoryOrder...)
	head = append(head, "total")
	w.Write(head)
	rows := []struct {
		name string
		v    paper.Vec
	}{
		{"devices", f.Devices}, {"no_ipv6", f.NoIPv6}, {"ndp", f.NDP},
		{"address", f.Addr}, {"gua", f.GUA}, {"dns_aaaa", f.DNSAAAAReq},
		{"aaaa_response", f.AAAAResp}, {"internet_data", f.InternetData},
		{"functional", f.Functional},
	}
	for _, r := range rows {
		rec := []string{r.name}
		for _, x := range r.v {
			rec = append(rec, fmt.Sprint(x))
		}
		rec = append(rec, fmt.Sprint(r.v.Total()))
		w.Write(rec)
	}
	w.Flush()
	return sb.String()
}

// CSVVolumeShares exports Figure 4's series.
func CSVVolumeShares(shares []analysis.VolumeShare) string {
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	w.Write([]string{"device", "ipv6_volume_pct", "functional_ipv6_only"})
	for _, s := range shares {
		w.Write([]string{s.Device, fmt.Sprintf("%.2f", s.FracPct), fmt.Sprint(s.Functional)})
	}
	w.Flush()
	return sb.String()
}

// CSVCDF exports one of Figure 3's distributions as (value, cumulative
// fraction) pairs.
func CSVCDF(sorted []int) string {
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	w.Write([]string{"value", "cdf"})
	for i, v := range sorted {
		w.Write([]string{fmt.Sprint(v), fmt.Sprintf("%.4f", float64(i+1)/float64(len(sorted)))})
	}
	w.Flush()
	return sb.String()
}
