package pcapio

import (
	"bytes"
	"encoding/binary"
	"io"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"
)

func sampleRecords() []Record {
	t0 := time.Date(2024, 4, 5, 12, 0, 0, 123456000, time.UTC)
	return []Record{
		{Time: t0, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14}},
		{Time: t0.Add(time.Millisecond), Data: bytes.Repeat([]byte{0xab}, 60)},
		{Time: t0.Add(time.Second), Data: []byte{0xff}},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	recs := sampleRecords()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range recs {
		if err := w.WriteRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rd.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !got[i].Time.Equal(recs[i].Time) {
			t.Errorf("record %d time %v, want %v", i, got[i].Time, recs[i].Time)
		}
		if !bytes.Equal(got[i].Data, recs[i].Data) {
			t.Errorf("record %d data mismatch", i)
		}
	}
}

func TestEmptyCaptureHasHeader(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != fileHeaderLen {
		t.Fatalf("header len %d", buf.Len())
	}
	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rd.ReadRecord(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(make([]byte, 24))); err != ErrBadMagic {
		t.Fatalf("want ErrBadMagic, got %v", err)
	}
}

func TestTruncatedHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte{0xd4, 0xc3})); err == nil {
		t.Fatal("want error")
	}
}

func TestBigEndianAndNanosecondVariants(t *testing.T) {
	// Build a big-endian nanosecond file by hand with one 2-byte record.
	var buf bytes.Buffer
	hdr := make([]byte, fileHeaderLen)
	binary.BigEndian.PutUint32(hdr[0:4], 0xa1b23c4d)
	binary.BigEndian.PutUint16(hdr[4:6], 2)
	binary.BigEndian.PutUint16(hdr[6:8], 4)
	binary.BigEndian.PutUint32(hdr[20:24], 1)
	buf.Write(hdr)
	rec := make([]byte, recordHeaderLen+2)
	binary.BigEndian.PutUint32(rec[0:4], 1700000000)
	binary.BigEndian.PutUint32(rec[4:8], 42)
	binary.BigEndian.PutUint32(rec[8:12], 2)
	binary.BigEndian.PutUint32(rec[12:16], 2)
	rec[16], rec[17] = 0xde, 0xad
	buf.Write(rec)

	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rd.ReadRecord()
	if err != nil {
		t.Fatal(err)
	}
	if got.Time.Unix() != 1700000000 || got.Time.Nanosecond() != 42 {
		t.Errorf("time %v", got.Time)
	}
	if !bytes.Equal(got.Data, []byte{0xde, 0xad}) {
		t.Errorf("data %x", got.Data)
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.pcap")
	recs := sampleRecords()
	if err := WriteFile(path, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records", len(got))
	}
}

func TestCaptureCopiesData(t *testing.T) {
	var c Capture
	buf := []byte{1, 2, 3}
	c.Add(time.Unix(0, 0), buf)
	buf[0] = 99
	if c.Records[0].Data[0] != 1 {
		t.Error("capture aliased caller buffer")
	}
	if c.Len() != 1 {
		t.Errorf("len %d", c.Len())
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rec := make([]byte, recordHeaderLen)
	binary.LittleEndian.PutUint32(rec[8:12], MaxSnapLen+1)
	buf.Write(rec)
	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rd.ReadRecord(); err == nil {
		t.Fatal("want error for oversize record")
	}
}

// Property: any set of frames survives a write/read cycle byte-for-byte.
func TestQuickRoundTrip(t *testing.T) {
	f := func(frames [][]byte) bool {
		recs := make([]Record, len(frames))
		base := time.Unix(1712000000, 0)
		for i, fr := range frames {
			recs[i] = Record{Time: base.Add(time.Duration(i) * time.Microsecond), Data: fr}
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, r := range recs {
			if err := w.WriteRecord(r); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		rd, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := rd.ReadAll()
		if err != nil || len(got) != len(recs) {
			return false
		}
		for i := range got {
			if !bytes.Equal(got[i].Data, recs[i].Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
