// Package pcapio reads and writes classic libpcap capture files
// (the 0xa1b2c3d4 microsecond format, LINKTYPE_ETHERNET) and provides the
// in-memory Capture type the testbed's taps record into, standing in for
// the tcpdump process of the paper's router.
package pcapio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"time"
)

const (
	magicMicroseconds = 0xa1b2c3d4
	versionMajor      = 2
	versionMinor      = 4
	linkTypeEthernet  = 1
	fileHeaderLen     = 24
	recordHeaderLen   = 16
	// MaxSnapLen is the snapshot length written to file headers.
	MaxSnapLen = 262144
)

// Record is one captured frame with its capture metadata.
type Record struct {
	Time time.Time
	// Data holds the captured frame bytes (full frames; we never truncate).
	Data []byte
}

// Writer emits a pcap stream to an io.Writer.
type Writer struct {
	w           *bufio.Writer
	wroteHeader bool
	// scratch coalesces record header + payload into a single buffered
	// write; it is reused (and grown to the largest record seen) across
	// WriteRecord calls, so the steady state is zero allocations per
	// record and one Write per record.
	scratch []byte
}

// NewWriter returns a Writer targeting w. The file header is emitted on the
// first WriteRecord (or by Flush on an empty capture).
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

func (w *Writer) writeHeader() error {
	var hdr [fileHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magicMicroseconds)
	binary.LittleEndian.PutUint16(hdr[4:6], versionMajor)
	binary.LittleEndian.PutUint16(hdr[6:8], versionMinor)
	// thiszone=0, sigfigs=0
	binary.LittleEndian.PutUint32(hdr[16:20], MaxSnapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], linkTypeEthernet)
	_, err := w.w.Write(hdr[:])
	w.wroteHeader = true
	return err
}

// WriteRecord appends one frame to the stream. Header and payload are
// coalesced into one buffered write through a reused scratch buffer.
func (w *Writer) WriteRecord(r Record) error {
	if !w.wroteHeader {
		if err := w.writeHeader(); err != nil {
			return err
		}
	}
	need := recordHeaderLen + len(r.Data)
	if cap(w.scratch) < need {
		w.scratch = make([]byte, 0, need+4096)
	}
	rec := w.scratch[:recordHeaderLen]
	sec := r.Time.Unix()
	usec := r.Time.Nanosecond() / 1000
	binary.LittleEndian.PutUint32(rec[0:4], uint32(sec))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(usec))
	binary.LittleEndian.PutUint32(rec[8:12], uint32(len(r.Data)))
	binary.LittleEndian.PutUint32(rec[12:16], uint32(len(r.Data)))
	rec = append(rec, r.Data...)
	_, err := w.w.Write(rec)
	return err
}

// Flush writes any buffered bytes (and the header, if nothing was written).
func (w *Writer) Flush() error {
	if !w.wroteHeader {
		if err := w.writeHeader(); err != nil {
			return err
		}
	}
	return w.w.Flush()
}

// Reader parses a pcap stream.
type Reader struct {
	r       *bufio.Reader
	bigEnd  bool
	nanosec bool
}

// ErrBadMagic is returned for streams that do not start with a known pcap
// magic number.
var ErrBadMagic = errors.New("pcapio: bad magic")

// NewReader validates the file header of r and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [fileHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcapio: reading header: %w", err)
	}
	rd := &Reader{r: br}
	switch binary.LittleEndian.Uint32(hdr[0:4]) {
	case magicMicroseconds:
	case 0xa1b23c4d:
		rd.nanosec = true
	default:
		switch binary.BigEndian.Uint32(hdr[0:4]) {
		case magicMicroseconds:
			rd.bigEnd = true
		case 0xa1b23c4d:
			rd.bigEnd = true
			rd.nanosec = true
		default:
			return nil, ErrBadMagic
		}
	}
	return rd, nil
}

func (r *Reader) order() binary.ByteOrder {
	if r.bigEnd {
		return binary.BigEndian
	}
	return binary.LittleEndian
}

// ReadRecord returns the next frame, or io.EOF at end of stream.
func (r *Reader) ReadRecord() (Record, error) {
	var hdr [recordHeaderLen]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Record{}, io.EOF
		}
		return Record{}, err
	}
	ord := r.order()
	sec := int64(ord.Uint32(hdr[0:4]))
	frac := int64(ord.Uint32(hdr[4:8]))
	capLen := ord.Uint32(hdr[8:12])
	if capLen > MaxSnapLen {
		return Record{}, fmt.Errorf("pcapio: record length %d exceeds snaplen", capLen)
	}
	data := make([]byte, capLen)
	if _, err := io.ReadFull(r.r, data); err != nil {
		return Record{}, fmt.Errorf("pcapio: reading record body: %w", err)
	}
	nsec := frac * 1000
	if r.nanosec {
		nsec = frac
	}
	return Record{Time: time.Unix(sec, nsec).UTC(), Data: data}, nil
}

// ReadAll drains the stream into a slice.
func (r *Reader) ReadAll() ([]Record, error) {
	var recs []Record
	for {
		rec, err := r.ReadRecord()
		if errors.Is(err, io.EOF) {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		recs = append(recs, rec)
	}
}

// WriteFile stores records as a pcap file at path.
func WriteFile(path string, recs []Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := NewWriter(f)
	for _, rec := range recs {
		if err := w.WriteRecord(rec); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile loads all records from a pcap file.
func ReadFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := NewReader(f)
	if err != nil {
		return nil, err
	}
	return r.ReadAll()
}

// Capture is an in-memory packet sink, the testbed's stand-in for a
// tcpdump process attached to the router's LAN interface.
type Capture struct {
	Records []Record
	// arena bump-allocates record payload copies in 64 KiB chunks: one
	// allocation per chunk instead of one per frame. Chunks are retained
	// until Reset, so Record.Data slices stay stable until then.
	arena arena
	// bytes is the running sum of record data lengths (see Bytes).
	bytes int
}

// arena is a minimal bump allocator (pcapio stays stdlib-only, so it does
// not borrow the packet package's).
type arena struct {
	chunks [][]byte
	cur    int
}

func (a *arena) copyIn(b []byte) []byte {
	n := len(b)
	for {
		if a.cur == len(a.chunks) {
			size := 1 << 16
			if n > size {
				size = n
			}
			a.chunks = append(a.chunks, make([]byte, 0, size))
		}
		c := a.chunks[a.cur]
		if cap(c)-len(c) >= n {
			off := len(c)
			c = append(c, b...)
			a.chunks[a.cur] = c
			return c[off : off+n : off+n]
		}
		a.cur++
	}
}

func (a *arena) reset() {
	for i := range a.chunks {
		a.chunks[i] = a.chunks[i][:0]
	}
	a.cur = 0
}

// Add appends a frame, copying data (into the capture's arena) so callers
// may reuse their buffers.
func (c *Capture) Add(t time.Time, data []byte) {
	c.Records = append(c.Records, Record{Time: t, Data: c.arena.copyIn(data)})
	c.bytes += len(data)
}

// Len returns the number of captured frames.
func (c *Capture) Len() int { return len(c.Records) }

// Bytes returns the total frame bytes the capture currently retains (the
// sum of record data lengths, maintained incrementally).
func (c *Capture) Bytes() int { return c.bytes }

// Reset empties the capture while keeping the record slice's and arena's
// capacity, so a pooled capture adds frames without allocating. Every
// previously returned Record (and its Data) is invalidated: the bytes will
// be overwritten by subsequent Adds. Only reuse a capture whose records
// have been fully consumed (written out, analyzed, or discarded).
func (c *Capture) Reset() {
	c.Records = c.Records[:0]
	c.arena.reset()
	c.bytes = 0
}

// Save writes the capture to a pcap file.
func (c *Capture) Save(path string) error { return WriteFile(path, c.Records) }
