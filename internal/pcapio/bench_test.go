package pcapio

import (
	"bytes"
	"io"
	"testing"
	"time"
)

// TestWriteRecordSteadyStateAllocs pins the coalesced write path: after
// the scratch buffer has grown to the largest record, WriteRecord must not
// allocate at all.
func TestWriteRecordSteadyStateAllocs(t *testing.T) {
	w := NewWriter(io.Discard)
	rec := Record{Time: time.Unix(1712300000, 0), Data: bytes.Repeat([]byte{0xab}, 512)}
	if err := w.WriteRecord(rec); err != nil { // warm up header + scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := w.WriteRecord(rec); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("WriteRecord allocates %.1f objects/op in steady state, want 0", allocs)
	}
}

// TestCaptureAddSharesChunks pins the capture arena: many small Adds must
// land in far fewer backing allocations than records (one per 64 KiB).
func TestCaptureAddSharesChunks(t *testing.T) {
	var c Capture
	data := bytes.Repeat([]byte{0x42}, 100)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(time.Unix(0, 0), data)
	})
	// Each Add appends a Record (amortized slice growth) and rarely a new
	// chunk; a per-record data copy would push this to >= 1.
	if allocs >= 1 {
		t.Errorf("Capture.Add allocates %.2f objects/op, want amortized < 1", allocs)
	}
}

// BenchmarkWriteRecord measures the single-buffered-write record path.
func BenchmarkWriteRecord(b *testing.B) {
	w := NewWriter(io.Discard)
	rec := Record{Time: time.Unix(1712300000, 0), Data: bytes.Repeat([]byte{0xab}, 512)}
	b.SetBytes(int64(recordHeaderLen + len(rec.Data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.WriteRecord(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCaptureAdd measures the tap-side record path the switch drives
// once per delivered frame.
func BenchmarkCaptureAdd(b *testing.B) {
	var c Capture
	data := bytes.Repeat([]byte{0x42}, 200)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(time.Unix(0, 0), data)
	}
}
