package experiment

import (
	"fmt"
	"net/netip"
	"sort"

	"v6lab/internal/addr"
	"v6lab/internal/conntrack"
	"v6lab/internal/device"
	"v6lab/internal/firewall"
	"v6lab/internal/netsim"
	"v6lab/internal/packet"
	"v6lab/internal/router"
	"v6lab/internal/scan"
	"v6lab/internal/telemetry"
)

// WANScannerV6 is the remote vantage the firewall-exposure experiment
// scans from: an Internet host outside the testbed's routed /64, standing
// in for the §6 attacker who learned (or guessed) device addresses.
var WANScannerV6 = netip.MustParseAddr("2001:db8::5ca9")

// PolicyExposure summarises the WAN-vantage §5.4.2 re-scan under one
// inbound-IPv6 firewall policy.
type PolicyExposure struct {
	Policy string
	// Pinholes lists the static rules, for pinhole policies.
	Pinholes []string

	// DevicesProbed counts devices holding at least one routable GUA;
	// AddrsProbed the scanned addresses.
	DevicesProbed, AddrsProbed int
	// DevicesReachable and PortsReachable count devices answering at
	// least one probe and distinct (device, port) pairs answering.
	DevicesReachable, PortsReachable int
	// OpenByDevice maps device name to the inbound-reachable ports.
	OpenByDevice map[string][]uint16

	// FunctionalDevices counts devices whose outbound cloud workload
	// still completed under this policy (it must not regress: egress and
	// return traffic are never filtered).
	FunctionalDevices int

	// Firewall and conntrack counters at the end of the run.
	FW    firewall.Stats
	Flows int
	CT    conntrack.Stats
}

// FirewallReport is the policy-comparison experiment's result.
type FirewallReport struct {
	// Ports is the probe list (the §5.4.2 deterministic port set).
	Ports []uint16
	// Policies holds one exposure row per policy, in run order.
	Policies []PolicyExposure
}

// Exposure returns the row for a policy name, or nil.
func (r *FirewallReport) Exposure(policy string) *PolicyExposure {
	for i := range r.Policies {
		if r.Policies[i].Policy == policy {
			return &r.Policies[i]
		}
	}
	return nil
}

// DefaultPinholes models the holes a PCP/UPnP-speaking device (or a user
// forwarding ports by hand) would punch: one TCP rule per service port
// that any device exposes over IPv6 only — in the testbed, the Samsung
// Fridge's three high ports, the paper's one v6-only exposure.
func DefaultPinholes(profiles []*device.Profile) []firewall.Rule {
	seen := map[uint16]bool{}
	var rules []firewall.Rule
	for _, p := range profiles {
		for _, port := range diffPorts(p.OpenTCPv6, p.OpenTCPv4) {
			if !seen[port] {
				seen[port] = true
				rules = append(rules, firewall.Rule{Prefix: router.GUAPrefix, Proto: packet.IPProtocolTCP, Port: port})
			}
		}
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].Port < rules[j].Port })
	return rules
}

// DefaultFirewallPolicies returns the three policies the comparison mode
// runs: the paper's open router, RFC 6092 stateful default-deny, and
// default-deny with the testbed's default pinholes.
func DefaultFirewallPolicies(profiles []*device.Profile) []firewall.Policy {
	return []firewall.Policy{
		firewall.Open{},
		firewall.StatefulDefaultDeny{},
		firewall.Pinhole{Rules: DefaultPinholes(profiles)},
	}
}

// RunFirewallExposure re-runs the §5.4.2 port scan from a WAN vantage
// under each policy: every probe must traverse the router's inbound
// firewall instead of being switched on-LAN. Each policy gets a fresh
// boot of the dual-stack network, a full workload pass (so conntrack
// holds the devices' outbound flows), then a SYN sweep of every routable
// GUA the router's neighbor table knows.
func (st *Study) RunFirewallExposure(policies []firewall.Policy) (*FirewallReport, error) {
	// Dual-stack (stateful), as in RunPortScan: everything live.
	return st.RunFirewallExposureUnder(Configs[len(Configs)-1], policies)
}

// RunFirewallExposureUnder is RunFirewallExposure with an explicit
// connectivity configuration: the fleet simulator scans each home under
// the home's own (v6-enabled) Table 2 config rather than always booting
// dual-stack stateful.
func (st *Study) RunFirewallExposureUnder(cfg Config, policies []firewall.Policy) (*FirewallReport, error) {
	ports := probePorts(st.Profiles)
	rep := &FirewallReport{Ports: ports}
	for _, pol := range policies {
		began := st.Clock.Now()
		pe, err := st.runExposure(cfg, pol, ports)
		if err != nil {
			return nil, err
		}
		rep.Policies = append(rep.Policies, *pe)
		if st.tm != nil {
			st.tm.foldFirewall(pe)
			// The exposure runs add cloud queries after the study's
			// RunAll fold; pick up the per-policy delta here.
			st.tm.foldCloud(st.Cloud)
		}
		telemetry.Emit(st.Progress, telemetry.Event{
			Scope:   "firewall",
			ID:      pe.Policy,
			Detail:  fmt.Sprintf("%d/%d devices reachable, %d ports open", pe.DevicesReachable, pe.DevicesProbed, pe.PortsReachable),
			Elapsed: st.Clock.Now().Sub(began),
		})
	}
	return rep, nil
}

// bootFirewalled resets the study's scratch network around its stacks
// with pol installed on the router's inbound-IPv6 path, then runs the
// full boot + announce + workload sequence so conntrack holds the
// devices' outbound flows — the state every WAN-vantage scan must
// traverse.
func (st *Study) bootFirewalled(cfg Config, pol firewall.Policy) (*netsim.Network, *router.Router, *firewall.Firewall, error) {
	net := st.scratch.network(st.Clock)
	if st.tm != nil {
		net.SetMetrics(st.tm.net)
	} else {
		net.SetMetrics(nil)
	}
	rt := router.New(cfg.Router, st.Cloud)
	fw := firewall.New(pol, st.Clock, conntrack.DefaultConfig())
	rt.SetFirewall(fw)
	rt.Attach(net)
	for _, s := range st.Stacks {
		s.Attach(net)
		s.Reset(cfg.Mode, cfg.V6Seq)
	}
	rt.SendRouterAdvert()
	for _, s := range st.Stacks {
		s.Boot()
	}
	if _, err := net.Run(st.MaxFramesPerRun); err != nil {
		return nil, nil, nil, err
	}
	for _, s := range st.Stacks {
		s.Announce()
	}
	if _, err := net.Run(st.MaxFramesPerRun); err != nil {
		return nil, nil, nil, err
	}
	for _, s := range st.Stacks {
		s.RunWorkload(st.Cloud)
	}
	if _, err := net.Run(st.MaxFramesPerRun); err != nil {
		return nil, nil, nil, err
	}
	return net, rt, fw, nil
}

func (st *Study) runExposure(cfg Config, pol firewall.Policy, ports []uint16) (*PolicyExposure, error) {
	net, rt, fw, err := st.bootFirewalled(cfg, pol)
	if err != nil {
		return nil, err
	}

	pe := &PolicyExposure{Policy: pol.Name(), OpenByDevice: map[string][]uint16{}}
	if ph, ok := pol.(firewall.Pinhole); ok {
		for _, r := range ph.Rules {
			pe.Pinholes = append(pe.Pinholes, r.String())
		}
	}
	for _, s := range st.Stacks {
		if s.Functional() {
			pe.FunctionalDevices++
		}
	}

	// Target list: every routable GUA in the neighbor table, attributed
	// back to its device, in deterministic address order.
	type target struct {
		addr netip.Addr
		dev  string
	}
	var targets []target
	addrDev := map[netip.Addr]string{}
	probedDevs := map[string]bool{}
	for a, m := range rt.Neighbors {
		if addr.Classify(a) != addr.KindGUA || !router.GUAPrefix.Contains(a) {
			continue
		}
		prof := st.MACToDevice[m]
		if prof == nil {
			continue
		}
		targets = append(targets, target{addr: a, dev: prof.Name})
		addrDev[a] = prof.Name
		probedDevs[prof.Name] = true
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].addr.Less(targets[j].addr) })
	pe.AddrsProbed = len(targets)
	pe.DevicesProbed = len(probedDevs)

	// The WAN tap plays the scanner: it consumes packets addressed to the
	// vantage and records SYN-ACKs as open (device, port) findings.
	open := map[string]map[uint16]bool{}
	col := &scan.Collector{Vantage: WANScannerV6, OnSYNACK: func(src netip.Addr, port uint16) {
		if dev := addrDev[src]; dev != "" {
			if open[dev] == nil {
				open[dev] = map[uint16]bool{}
			}
			open[dev][port] = true
		}
	}}
	rt.WANv6Tap = col.Tap
	defer func() { rt.WANv6Tap = nil }()

	for _, tgt := range targets {
		for i, dport := range ports {
			raw, err := scan.BuildSYNv6(WANScannerV6, tgt.addr, uint16(40000+i), dport, 9)
			if err != nil {
				return nil, err
			}
			rt.InjectWANv6(raw)
		}
		if _, err := net.Run(st.MaxFramesPerRun); err != nil {
			return nil, err
		}
	}

	for dev, set := range open {
		var list []uint16
		for p := range set {
			list = append(list, p)
		}
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		pe.OpenByDevice[dev] = list
		pe.DevicesReachable++
		pe.PortsReachable += len(list)
	}
	pe.FW = fw.Stats()
	pe.Flows = fw.Table.Len()
	pe.CT = fw.Table.Stats()
	return pe, nil
}
