package experiment

import (
	"testing"

	"v6lab/internal/router"
)

// runExposureOnce shares one study and one comparison run across the
// firewall tests (a full boot per policy is the expensive part).
func exposureFixture(t *testing.T) (*Study, *FirewallReport, *ScanReport) {
	t.Helper()
	st := NewStudy()
	rep, err := st.RunFirewallExposure(DefaultFirewallPolicies(st.Profiles))
	if err != nil {
		t.Fatal(err)
	}
	lan, err := st.RunPortScan()
	if err != nil {
		t.Fatal(err)
	}
	return st, rep, lan
}

func TestFirewallExposurePolicies(t *testing.T) {
	st, rep, lan := exposureFixture(t)
	if len(rep.Policies) != 3 {
		t.Fatalf("policies = %d, want 3", len(rep.Policies))
	}
	open := rep.Exposure("open")
	deny := rep.Exposure("stateful")
	pin := rep.Exposure("pinhole")
	if open == nil || deny == nil || pin == nil {
		t.Fatalf("missing policy rows: %+v", rep.Policies)
	}

	// The paper's open router: every device with a routable GUA exposes
	// exactly the v6 open ports the on-LAN §5.4.2 scan found for it.
	if open.DevicesProbed == 0 || open.AddrsProbed == 0 {
		t.Fatalf("open probed nothing: %+v", open)
	}
	for _, ds := range lan.Devices {
		wanPorts := open.OpenByDevice[ds.Device]
		hasGUA := false
		for _, a := range ds.V6Addrs {
			if router.GUAPrefix.Contains(a) {
				hasGUA = true
			}
		}
		if !hasGUA {
			if len(wanPorts) != 0 {
				t.Errorf("%s: reachable from WAN without a GUA: %v", ds.Device, wanPorts)
			}
			continue
		}
		if len(ds.OpenTCPv6) == 0 {
			if len(wanPorts) != 0 {
				t.Errorf("%s: WAN-open %v but LAN scan found none", ds.Device, wanPorts)
			}
			continue
		}
		if !equalPorts(wanPorts, ds.OpenTCPv6) {
			t.Errorf("%s: WAN-open %v != LAN-open %v under open policy", ds.Device, wanPorts, ds.OpenTCPv6)
		}
	}

	// RFC 6092 default-deny: nothing reachable from outside, every probe
	// dropped, and the devices' own cloud workloads unaffected.
	if deny.DevicesReachable != 0 || deny.PortsReachable != 0 {
		t.Fatalf("stateful leaked: %+v", deny.OpenByDevice)
	}
	if deny.FW.DroppedIn == 0 {
		t.Fatal("stateful dropped nothing — probes bypassed the firewall?")
	}
	if deny.FunctionalDevices != open.FunctionalDevices {
		t.Fatalf("stateful broke outbound flows: functional %d vs %d under open",
			deny.FunctionalDevices, open.FunctionalDevices)
	}
	if deny.FW.AllowedByState == 0 {
		t.Fatal("no return traffic matched state under default-deny")
	}

	// Pinholes re-expose exactly the v6-only service ports (the Samsung
	// Fridge's), and nothing else.
	if pin.DevicesReachable != 1 {
		t.Fatalf("pinhole reachable devices = %d, want 1 (the fridge): %+v", pin.DevicesReachable, pin.OpenByDevice)
	}
	fridge := pin.OpenByDevice["Samsung Fridge"]
	if !equalPorts(fridge, []uint16{37993, 46525, 46757}) {
		t.Fatalf("fridge pinhole ports = %v", fridge)
	}
	if len(pin.Pinholes) == 0 {
		t.Fatal("pinhole row lists no rules")
	}

	// Determinism anchor: the probe list must match the LAN scan's.
	if len(rep.Ports) != len(probePorts(st.Profiles)) {
		t.Fatalf("probe list drifted: %d ports", len(rep.Ports))
	}
}

func TestDefaultPinholes(t *testing.T) {
	st := NewStudy()
	rules := DefaultPinholes(st.Profiles)
	if len(rules) != 3 {
		t.Fatalf("rules = %v, want the fridge's three v6-only ports", rules)
	}
	want := []uint16{37993, 46525, 46757}
	for i, r := range rules {
		if r.Port != want[i] {
			t.Fatalf("rule %d port = %d, want %d", i, r.Port, want[i])
		}
	}
}

func equalPorts(a, b []uint16) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
