package experiment

import (
	"bytes"
	"testing"

	"v6lab/internal/device"
	"v6lab/internal/faults"
	"v6lab/internal/pcapio"
)

// subset picks named profiles from a fresh registry, preserving registry
// order, so resilience tests run on a small deterministic population.
func subset(t *testing.T, names ...string) []*device.Profile {
	t.Helper()
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	var out []*device.Profile
	for _, p := range device.Registry() {
		if want[p.Name] {
			out = append(out, p)
		}
	}
	if len(out) != len(names) {
		t.Fatalf("subset resolved %d of %d names", len(out), len(names))
	}
	return out
}

// The resilience grid must be byte-deterministic: two runs from the same
// options produce identical reports and identical pcaps.
func TestResilienceDeterministic(t *testing.T) {
	opts := StudyOptions{Devices: subset(t, "TiVo Stream", "Apple TV", "Wyze Cam")}
	profiles := []faults.Profile{faults.LossyWiFi(), faults.ClampedTunnel()}

	// outcome is a comparable per-experiment summary; captures are
	// compared record by record separately.
	type outcome struct {
		profile, id           string
		functional            int
		dropped, retransmits  int
		ptbSent, serviceDrops int
	}

	run := func() ([]outcome, []*pcapio.Capture) {
		opts := opts
		opts.Devices = subset(t, "TiVo Stream", "Apple TV", "Wyze Cam")
		var outs []outcome
		var caps []*pcapio.Capture
		for _, p := range profiles {
			o := opts
			fp := p
			o.Faults = &fp
			st := NewStudyWith(o)
			for _, cfg := range Configs {
				res, err := st.RunExperiment(cfg)
				if err != nil {
					t.Fatal(err)
				}
				caps = append(caps, res.Capture)
				n := 0
				for _, ok := range res.Functional {
					if ok {
						n++
					}
				}
				outs = append(outs, outcome{
					profile: p.Name, id: cfg.ID, functional: n,
					dropped: res.FramesDropped, retransmits: res.Retransmits,
					ptbSent: res.PTBSent, serviceDrops: res.ServiceDrops,
				})
			}
		}
		return outs, caps
	}

	outsA, capsA := run()
	outsB, capsB := run()
	for i := range capsA {
		a, b := capsA[i], capsB[i]
		if a.Len() != b.Len() {
			t.Fatalf("capture %d: %d vs %d frames between identical runs", i, a.Len(), b.Len())
		}
		for j := range a.Records {
			ra, rb := a.Records[j], b.Records[j]
			if !ra.Time.Equal(rb.Time) || !bytes.Equal(ra.Data, rb.Data) {
				t.Fatalf("capture %d record %d differs between identical runs", i, j)
			}
		}
	}
	for i := range outsA {
		if outsA[i] != outsB[i] {
			t.Errorf("outcome differs: %+v vs %+v", outsA[i], outsB[i])
		}
	}
}

// The clamped tunnel must change an outcome: a NoPMTUD device that is
// functional on the clean network bricks in the v6-only configurations,
// while a PMTUD-honoring device recovers via Packet-Too-Big.
func TestClampedTunnelChangesOutcome(t *testing.T) {
	names := []string{"TiVo Stream", "Apple TV"}
	rep, err := RunResilience(StudyOptions{Devices: subset(t, names...)},
		faults.Clean(), faults.ClampedTunnel())
	if err != nil {
		t.Fatal(err)
	}

	clean := rep.Config("clean", "ipv6-only")
	clamped := rep.Config("clamped-tunnel", "ipv6-only")
	if clean == nil || clamped == nil {
		t.Fatal("missing grid cells")
	}
	if clean.Functional != 2 {
		t.Fatalf("clean ipv6-only functional = %d, want 2 (%v)", clean.Functional, clean.Failures)
	}
	if clamped.Functional != 1 {
		t.Fatalf("clamped ipv6-only functional = %d, want 1 (%v)", clamped.Functional, clamped.Failures)
	}
	if clamped.Failures["data-stalled"] != 1 {
		t.Errorf("want the NoPMTUD device data-stalled, got %v", clamped.Failures)
	}
	if len(clamped.FailedDevices) != 1 || clamped.FailedDevices[0] != "TiVo Stream" {
		t.Errorf("FailedDevices = %v, want [TiVo Stream]", clamped.FailedDevices)
	}
	if clamped.PTBSent == 0 {
		t.Error("a clamped tunnel must emit Packet-Too-Big")
	}
	// Dual-stack keeps both functional: essentials fall back to IPv4.
	if c := rep.Config("clamped-tunnel", "dual-stack"); c == nil || c.Functional != 2 {
		t.Errorf("dual-stack under clamp must stay functional, got %+v", c)
	}
}

// Lossy Wi-Fi must be survivable: the retry machinery recovers every
// device the clean network had functional, at the cost of retransmits.
func TestLossyWiFiRecoversViaRetries(t *testing.T) {
	names := []string{"Apple TV", "Nest Hub", "Wyze Cam"}
	rep, err := RunResilience(StudyOptions{Devices: subset(t, names...)},
		faults.Clean(), faults.LossyWiFi())
	if err != nil {
		t.Fatal(err)
	}
	clean, lossy := rep.Profiles[0], rep.Profiles[1]
	if lossy.FunctionalTotal != clean.FunctionalTotal {
		t.Errorf("lossy functional total %d != clean %d", lossy.FunctionalTotal, clean.FunctionalTotal)
	}
	var drops, retransmits int
	for _, rc := range lossy.ByConfig {
		drops += rc.FramesDropped
		retransmits += rc.Retransmits
	}
	if drops == 0 || retransmits == 0 {
		t.Errorf("lossy grid shows drops=%d retransmits=%d, want both > 0", drops, retransmits)
	}
	for _, rc := range clean.ByConfig {
		if rc.FramesDropped != 0 || rc.Retransmits != 0 {
			t.Errorf("clean profile must not drop or retransmit: %+v", rc)
		}
	}
}

// The flaky-dnsmasq schedule drops the first RA and DHCPv6 reply — only
// the config-retry pass (RS retransmit, DHCPv6 retry) keeps v6-dependent
// devices alive.
func TestFlakyDNSMasqRecoveredByConfigRetries(t *testing.T) {
	names := []string{"Apple TV", "Nest Hub"}
	rep, err := RunResilience(StudyOptions{Devices: subset(t, names...)},
		faults.Clean(), faults.FlakyDNSMasq())
	if err != nil {
		t.Fatal(err)
	}
	clean, flaky := rep.Profiles[0], rep.Profiles[1]
	if flaky.FunctionalTotal != clean.FunctionalTotal {
		t.Errorf("flaky functional total %d != clean %d", flaky.FunctionalTotal, clean.FunctionalTotal)
	}
	var serviceDrops int
	for _, rc := range flaky.ByConfig {
		serviceDrops += rc.ServiceDrops
	}
	if serviceDrops == 0 {
		t.Error("flaky-dnsmasq must drop service messages")
	}
}

// RunResilience defaults to the full grid and reports every profile.
func TestRunResilienceDefaultGrid(t *testing.T) {
	rep, err := RunResilience(StudyOptions{Devices: subset(t, "Wyze Cam")})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Profiles) != len(faults.Grid()) {
		t.Fatalf("profiles = %d, want %d", len(rep.Profiles), len(faults.Grid()))
	}
	if rep.Devices != 1 {
		t.Errorf("devices = %d, want 1", rep.Devices)
	}
	for _, p := range rep.Profiles {
		if len(p.ByConfig) != len(Configs) {
			t.Errorf("%s ran %d configs, want %d", p.Profile.Name, len(p.ByConfig), len(Configs))
		}
	}
}
