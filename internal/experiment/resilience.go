package experiment

import (
	"context"
	"fmt"
	"sync"

	"v6lab/internal/faults"
	"v6lab/internal/telemetry"
	"v6lab/internal/world"
)

// ResilienceConfig aggregates one Table 2 experiment's outcome under one
// impairment profile.
type ResilienceConfig struct {
	// ID is the experiment slug ("ipv6-only-stateful").
	ID string
	// Devices and Functional count the population and how many passed the
	// functionality test.
	Devices, Functional int
	// Failures histograms device.FailureStage over the population
	// ("ok", "no-ra", "data-stalled", ...).
	Failures map[string]int
	// FailedDevices lists the non-functional device names in registry
	// order (the report cross-references profiles with them).
	FailedDevices []string
	// Diagnostics carried over from the RunResult.
	FramesDelivered, FramesDropped, Retransmits, PTBSent, ServiceDrops int
}

// ResilienceProfile is the full Table 2 grid under one impairment profile.
type ResilienceProfile struct {
	Profile  faults.Profile
	ByConfig []ResilienceConfig
	// FunctionalTotal sums functional device-runs across the grid.
	FunctionalTotal int
}

// ResilienceReport is the artifact of the impairment-grid experiment: the
// six connectivity configurations re-run under each fault profile.
type ResilienceReport struct {
	// Devices is the per-config population size.
	Devices int
	// Profiles holds one grid per impairment profile, in the order given.
	Profiles []*ResilienceProfile
}

// Config returns the outcome for (profile, config id), or nil.
func (r *ResilienceReport) Config(profile, id string) *ResilienceConfig {
	for _, p := range r.Profiles {
		if p.Profile.Name != profile {
			continue
		}
		for i := range p.ByConfig {
			if p.ByConfig[i].ID == id {
				return &p.ByConfig[i]
			}
		}
	}
	return nil
}

// RunResilience re-runs the Table 2 connectivity grid under each fault
// profile (faults.Grid() when profiles is empty) and reports per-profile
// functionality and failure modes. Each profile gets a fresh, isolated
// study built from opts, so impairment in one profile cannot leak state
// into another; the whole experiment is deterministic in (opts, profiles).
//
// When opts.Workers > 1, profiles run concurrently on a bounded pool —
// each profile's study is already fully isolated, so the grid is
// embarrassingly parallel at the profile level — and the report lists
// them in the order given, identical to the serial run. (Within a
// profile the experiments stay serial: faults make the DHCPv4 XID chain
// order-dependent; see runConnectivity.)
func RunResilience(opts StudyOptions, profiles ...faults.Profile) (*ResilienceReport, error) {
	return RunResilienceContext(context.Background(), opts, profiles...)
}

// RunResilienceContext is RunResilience with cancellation: ctx is checked
// before each profile's grid, and a cancelled run returns ctx.Err() with
// no report.
func RunResilienceContext(ctx context.Context, opts StudyOptions, profiles ...faults.Profile) (*ResilienceReport, error) {
	if len(profiles) == 0 {
		profiles = faults.Grid()
	}
	// The grid reads stack and router state (failure stages, drop and
	// retransmit counters), never frames, so the default capture policy
	// here is none: no Capture is materialized and no analysis tap runs.
	// Callers that do want buffered runs pass CaptureFull explicitly.
	if opts.Capture == CaptureDefault {
		opts.Capture = CaptureNone
	}
	// One immutable world for the whole grid: every profile's study shares
	// the population, plans, and primed cloud registry, rebuilding only
	// its own stacks.
	if opts.World == nil {
		opts.World = world.Build(opts.Devices)
	}
	rep := &ResilienceReport{Profiles: make([]*ResilienceProfile, len(profiles))}
	workers := opts.Workers
	if workers > len(profiles) {
		workers = len(profiles)
	}
	if workers <= 1 {
		if opts.Scratch == nil {
			opts.Scratch = NewScratch()
		}
		for i, p := range profiles {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			po, devices, err := runResilienceProfile(opts, p)
			if err != nil {
				return nil, err
			}
			rep.Profiles[i] = po
			rep.Devices = devices
		}
		return rep, nil
	}
	errs := make([]error, len(profiles))
	devices := make([]int, len(profiles))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Scratch is single-threaded: each worker gets its own,
			// whatever the caller passed in opts.
			wopts := opts
			wopts.Scratch = NewScratch()
			for i := range jobs {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				rep.Profiles[i], devices[i], errs[i] = runResilienceProfile(wopts, profiles[i])
			}
		}()
	}
	for i := range profiles {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, err
		}
		rep.Devices = devices[i]
	}
	return rep, nil
}

// runResilienceProfile runs the full Table 2 grid under one fault profile
// on a study of its own.
func runResilienceProfile(opts StudyOptions, p faults.Profile) (*ResilienceProfile, int, error) {
	o := opts
	fp := p
	o.Faults = &fp
	st := NewStudyWith(o)
	began := st.Clock.Now()
	po := &ResilienceProfile{Profile: p}
	for _, cfg := range Configs {
		res, err := st.RunExperiment(cfg)
		if err != nil {
			return nil, 0, fmt.Errorf("resilience %s/%s: %w", p.Name, cfg.ID, err)
		}
		rc := ResilienceConfig{
			ID:              cfg.ID,
			Devices:         len(st.Stacks),
			Failures:        map[string]int{},
			FramesDelivered: res.FramesDelivered,
			FramesDropped:   res.FramesDropped,
			Retransmits:     res.Retransmits,
			PTBSent:         res.PTBSent,
			ServiceDrops:    res.ServiceDrops,
		}
		// Diagnose while the stacks still hold this experiment's state.
		for _, s := range st.Stacks {
			stage := s.FailureStage()
			rc.Failures[stage]++
			if stage == "ok" {
				rc.Functional++
			} else {
				rc.FailedDevices = append(rc.FailedDevices, s.Prof.Name)
			}
		}
		po.ByConfig = append(po.ByConfig, rc)
		po.FunctionalTotal += rc.Functional
	}
	st.FoldCloudMetrics()
	telemetry.Emit(st.Progress, telemetry.Event{
		Scope:   "resilience",
		ID:      p.Name,
		Detail:  fmt.Sprintf("%d/%d device-runs functional", po.FunctionalTotal, len(st.Stacks)*len(Configs)),
		Elapsed: st.Clock.Now().Sub(began),
	})
	return po, len(st.Stacks), nil
}
