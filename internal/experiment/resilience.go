package experiment

import (
	"fmt"

	"v6lab/internal/faults"
)

// ResilienceConfig aggregates one Table 2 experiment's outcome under one
// impairment profile.
type ResilienceConfig struct {
	// ID is the experiment slug ("ipv6-only-stateful").
	ID string
	// Devices and Functional count the population and how many passed the
	// functionality test.
	Devices, Functional int
	// Failures histograms device.FailureStage over the population
	// ("ok", "no-ra", "data-stalled", ...).
	Failures map[string]int
	// FailedDevices lists the non-functional device names in registry
	// order (the report cross-references profiles with them).
	FailedDevices []string
	// Diagnostics carried over from the RunResult.
	FramesDelivered, FramesDropped, Retransmits, PTBSent, ServiceDrops int
}

// ResilienceProfile is the full Table 2 grid under one impairment profile.
type ResilienceProfile struct {
	Profile  faults.Profile
	ByConfig []ResilienceConfig
	// FunctionalTotal sums functional device-runs across the grid.
	FunctionalTotal int
}

// ResilienceReport is the artifact of the impairment-grid experiment: the
// six connectivity configurations re-run under each fault profile.
type ResilienceReport struct {
	// Devices is the per-config population size.
	Devices int
	// Profiles holds one grid per impairment profile, in the order given.
	Profiles []*ResilienceProfile
}

// Config returns the outcome for (profile, config id), or nil.
func (r *ResilienceReport) Config(profile, id string) *ResilienceConfig {
	for _, p := range r.Profiles {
		if p.Profile.Name != profile {
			continue
		}
		for i := range p.ByConfig {
			if p.ByConfig[i].ID == id {
				return &p.ByConfig[i]
			}
		}
	}
	return nil
}

// RunResilience re-runs the Table 2 connectivity grid under each fault
// profile (faults.Grid() when profiles is empty) and reports per-profile
// functionality and failure modes. Each profile gets a fresh, isolated
// study built from opts, so impairment in one profile cannot leak state
// into another; the whole experiment is deterministic in (opts, profiles).
func RunResilience(opts StudyOptions, profiles ...faults.Profile) (*ResilienceReport, error) {
	if len(profiles) == 0 {
		profiles = faults.Grid()
	}
	rep := &ResilienceReport{}
	for _, p := range profiles {
		o := opts
		fp := p
		o.Faults = &fp
		st := NewStudyWith(o)
		rep.Devices = len(st.Stacks)
		po := &ResilienceProfile{Profile: p}
		for _, cfg := range Configs {
			res, err := st.RunExperiment(cfg)
			if err != nil {
				return nil, fmt.Errorf("resilience %s/%s: %w", p.Name, cfg.ID, err)
			}
			rc := ResilienceConfig{
				ID:              cfg.ID,
				Devices:         len(st.Stacks),
				Failures:        map[string]int{},
				FramesDelivered: res.FramesDelivered,
				FramesDropped:   res.FramesDropped,
				Retransmits:     res.Retransmits,
				PTBSent:         res.PTBSent,
				ServiceDrops:    res.ServiceDrops,
			}
			// Diagnose while the stacks still hold this experiment's state.
			for _, s := range st.Stacks {
				stage := s.FailureStage()
				rc.Failures[stage]++
				if stage == "ok" {
					rc.Functional++
				} else {
					rc.FailedDevices = append(rc.FailedDevices, s.Prof.Name)
				}
			}
			po.ByConfig = append(po.ByConfig, rc)
			po.FunctionalTotal += rc.Functional
		}
		rep.Profiles = append(rep.Profiles, po)
	}
	return rep, nil
}
