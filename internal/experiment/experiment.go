// Package experiment orchestrates the paper's methodology (§4): the six
// connectivity experiments of Table 2 over the simulated testbed, the
// functionality tests, and the two active experiments (DNS AAAA queries
// and port scans).
package experiment

import (
	"context"
	"fmt"
	"net/netip"
	"time"

	"v6lab/internal/cloud"
	"v6lab/internal/device"
	"v6lab/internal/dnsmsg"
	"v6lab/internal/faults"
	"v6lab/internal/netsim"
	"v6lab/internal/packet"
	"v6lab/internal/pcapio"
	"v6lab/internal/router"
	"v6lab/internal/telemetry"
	"v6lab/internal/world"
)

// Config is one connectivity experiment.
type Config struct {
	// ID is a short slug ("ipv6-only-stateful").
	ID string
	// Title is the paper's name for the run.
	Title string
	// Router selects the services dnsmasq would run (Table 2 columns).
	Router router.Config
	// Mode is the device-facing stack mode.
	Mode device.Mode
	// V6Seq numbers the v6-enabled experiments (for address rotation
	// scheduling); -1 when IPv6 is off.
	V6Seq int
}

// Configs lists the six experiments of Table 2, in execution order.
var Configs = []Config{
	{
		ID: "ipv4-only", Title: "IPv4-only",
		Router: router.Config{Name: "ipv4-only", IPv4: true},
		Mode:   device.ModeV4Only, V6Seq: -1,
	},
	{
		ID: "ipv6-only", Title: "IPv6-only",
		Router: router.Config{Name: "ipv6-only", IPv6: true, StatelessDHCPv6: true},
		Mode:   device.ModeV6Only, V6Seq: 0,
	},
	{
		ID: "ipv6-only-rdnss", Title: "IPv6-only (RDNSS-only)",
		Router: router.Config{Name: "ipv6-only-rdnss", IPv6: true},
		Mode:   device.ModeV6Only, V6Seq: 1,
	},
	{
		ID: "ipv6-only-stateful", Title: "IPv6-only (stateful)",
		Router: router.Config{Name: "ipv6-only-stateful", IPv6: true, StatelessDHCPv6: true, StatefulDHCPv6: true},
		Mode:   device.ModeV6Only, V6Seq: 2,
	},
	{
		ID: "dual-stack", Title: "Dual-stack",
		Router: router.Config{Name: "dual-stack", IPv4: true, IPv6: true, StatelessDHCPv6: true},
		Mode:   device.ModeDual, V6Seq: 3,
	},
	{
		ID: "dual-stack-stateful", Title: "Dual-stack (stateful)",
		Router: router.Config{Name: "dual-stack-stateful", IPv4: true, IPv6: true, StatelessDHCPv6: true, StatefulDHCPv6: true},
		Mode:   device.ModeDual, V6Seq: 4,
	},
}

// configIndex maps experiment IDs to their position in Configs, built once
// at init so ConfigByID is a map lookup instead of a linear scan.
var configIndex = func() map[string]int {
	m := make(map[string]int, len(Configs))
	for i, c := range Configs {
		m[c.ID] = i
	}
	return m
}()

// ConfigByID returns the Table 2 experiment config with the given ID.
func ConfigByID(id string) (Config, bool) {
	i, ok := configIndex[id]
	if !ok {
		return Config{}, false
	}
	return Configs[i], true
}

// CapturePolicy selects whether an experiment buffers its frames into a
// pcap Capture or streams them straight into an analysis observer.
type CapturePolicy int

const (
	// CaptureDefault resolves to a caller-appropriate policy: the run
	// engine treats it as CaptureFull (the pre-policy behavior, keeping
	// zero-value StudyOptions byte-identical), while aggregate-only
	// drivers — the fleet, the resilience grid — resolve it to
	// CaptureNone before building their studies.
	CaptureDefault CapturePolicy = iota
	// CaptureFull buffers every delivered frame into a pcapio.Capture
	// (the tcpdump-equivalent record pcap artifacts are written from).
	CaptureFull
	// CaptureNone materializes no Capture at all: frames are parsed once
	// at delivery by the study's streaming Observer and the bytes are
	// never retained. Requires an ObserverFactory.
	CaptureNone
)

// Observer is the experiment-facing half of a streaming analysis sink: a
// delivery tap that also reports how many frames it consumed. The
// analysis package owns the concrete type (and its Finalize); experiment
// only wires it onto the switch, which keeps the import direction
// analysis → experiment.
type Observer interface {
	netsim.Tap
	Frames() int
}

// ObserverFactory builds one streaming Observer per experiment run.
// Factories must return observers that are independent across calls: each
// run gets its own (runs on different workers are concurrent).
type ObserverFactory func(cfg Config, st *Study) Observer

// RunResult captures everything one experiment produced.
type RunResult struct {
	Config Config
	// Capture is the tcpdump-equivalent record of every LAN frame; nil
	// when the study ran CaptureNone.
	Capture *pcapio.Capture
	// Observed is the streaming observer that consumed the run's frames
	// under CaptureNone (nil on the buffered path). It is an opaque
	// handle here; the analysis package finalizes it.
	Observed Observer
	// Functional maps device name to the outcome of its functionality
	// test in this experiment.
	Functional map[string]bool
	// Neighbors is the router's IPv6 neighbor table at the end of the run
	// (the port-scan address source, §4.3).
	Neighbors map[netip.Addr]packet.MAC
	// Leases4 maps device MACs to their DHCPv4 addresses.
	Leases4 map[packet.MAC]netip.Addr
	// FramesDelivered counts L2 deliveries (a capacity diagnostic).
	FramesDelivered int
	// FramesDropped counts frames the installed impairment swallowed
	// (always 0 on a clean network).
	FramesDropped int
	// Retransmits counts the retry transmissions devices made to recover
	// from impairment.
	Retransmits int
	// PTBSent counts ICMPv6 Packet-Too-Big errors the clamped tunnel
	// emitted.
	PTBSent int
	// ServiceDrops counts router service messages (RA / DHCPv6 / DNS
	// replies) the fault schedule suppressed.
	ServiceDrops int
}

// Frames reports how many frames the run recorded for analysis: the
// buffered capture's length, or the streaming observer's count, or (with
// neither attached) the raw delivery count.
func (r *RunResult) Frames() int {
	switch {
	case r.Capture != nil:
		return r.Capture.Len()
	case r.Observed != nil:
		return r.Observed.Frames()
	}
	return r.FramesDelivered
}

// AAAAResult records the active DNS experiment's verdict for one domain.
type AAAAResult struct {
	Name    string
	HasAAAA bool
	Party   cloud.Party
}

// Study holds the full reproduction state: devices, cloud, experiment
// results, and active-measurement outputs.
type Study struct {
	// World is the immutable half of the study: population, plans, primed
	// cloud registry, MAC index. Profiles/Plans/MACToDevice below alias it
	// (kept as fields for the pre-World API).
	World *world.World

	Profiles []*device.Profile
	Plans    []*device.Plan
	Stacks   []*device.Stack
	Cloud    *cloud.Cloud
	Clock    *netsim.Clock

	// MACToDevice resolves capture frames back to device identities.
	MACToDevice map[packet.MAC]*device.Profile

	Results []*RunResult
	// ActiveDNS holds the §4.3 active AAAA query results per domain.
	ActiveDNS map[string]AAAAResult
	// Scan holds the port-scan findings.
	Scan *ScanReport

	// MaxFramesPerRun bounds each experiment's frame deliveries.
	MaxFramesPerRun int

	// Capture selects frame buffering per run; CaptureDefault behaves as
	// CaptureFull here. CaptureNone runs feed the Observe factory's
	// streaming sink instead — or, with no factory, attach no analysis
	// tap at all (aggregate-only runs).
	Capture CapturePolicy
	// Observe, when non-nil, builds the streaming analysis sink each
	// CaptureNone run feeds at delivery time. Ignored on buffered runs
	// (the capture is the analysis source there; attaching both would
	// parse every frame twice for nothing).
	Observe ObserverFactory

	// Workers bounds the worker pool the connectivity experiments (and the
	// analysis extraction) run on. 0 or 1 means serial. See parallel.go for
	// the byte-identity guarantee and the fault-path fallback.
	Workers int

	// Faults, when non-nil, impairs every experiment: the link model is
	// installed on the switch and the service-fault schedule on the
	// router, and the retry passes run between phases. Nil (the default)
	// is the perfect network and leaves every run byte-identical to a
	// study built without fault support.
	Faults *faults.Profile

	// Telemetry, when non-nil, is the registry every subsystem counts
	// into; nil (the default) runs fully uninstrumented.
	Telemetry *telemetry.Registry
	// Progress, when non-nil, receives a completion event per experiment
	// (and per firewall policy). The event stream is completion-ordered —
	// a live view, deliberately outside the deterministic snapshot.
	Progress telemetry.Sink

	// tm caches the registry's pre-resolved instruments; nil when
	// Telemetry is nil.
	tm *studyMetrics

	// scratch holds the study's recycled run infrastructure (the switch
	// and its frame arena); never nil after construction.
	scratch *Scratch
	// pool, when non-nil, recycles whole isolated environments across
	// parallel runs and across studies over the same World.
	pool *EnvPool
}

// StudyOptions parameterizes testbed construction. The zero value builds
// the paper's single-home study: the full 93-device registry, the paper's
// capture start time, and the default frame budget. Unless World, Pool, or
// Scratch deliberately share state, every field the study touches is
// instantiated per call — two studies built from such options share no
// mutable state and may run on concurrent goroutines. (A shared World is
// read-only and therefore also concurrency-safe; a shared Scratch is not.)
type StudyOptions struct {
	// World, when non-nil, is a prebuilt immutable world the study runs
	// over, shared read-only with any number of other studies. The study
	// serves traffic through a Clone of its cloud (private query
	// counters), so sharing is race-free. When nil, the study builds a
	// private world from Devices/Start below — the compatibility path,
	// byte-identical to the pre-World API.
	World *world.World
	// Pool, when non-nil, recycles isolated parallel-run environments
	// (stacks, switch, clock, cloud clone) across studies. Environments
	// are keyed by World identity, so a pool only pays off when studies
	// share a World; mismatched environments are simply not reused.
	Pool *EnvPool
	// Scratch, when non-nil, donates recycled run infrastructure (the L2
	// switch and its frame arena) to this study. Sharing a Scratch is
	// only legal across *sequential* studies — one fleet worker's homes,
	// never two concurrent ones. Nil means private scratch.
	Scratch *Scratch
	// Devices selects the device population; nil means the full registry.
	// Ignored when World is set (the world fixes the population).
	// Workload plans scale with the population: a household holding a
	// subset of a category gets a proportional share of that category's
	// paper-derived domain and volume targets.
	Devices []*device.Profile
	// Start is the simulated capture start time; the zero value means the
	// paper's 2024-04-05 09:00 UTC.
	Start time.Time
	// MaxFramesPerRun bounds each experiment's frame deliveries; 0 means
	// the default 3,000,000.
	MaxFramesPerRun int
	// Faults installs a deterministic impairment profile on every
	// experiment the study runs. Inactive profiles (see faults.Profile)
	// are ignored; nil means a perfect network.
	Faults *faults.Profile
	// Capture selects frame buffering per run. The zero value
	// (CaptureDefault) keeps the buffered pre-policy behavior here;
	// aggregate-only drivers resolve it to CaptureNone themselves.
	Capture CapturePolicy
	// Observe builds the streaming analysis sink for CaptureNone runs;
	// see Study.Observe.
	Observe ObserverFactory
	// Workers bounds the pool the six connectivity experiments run on;
	// 0 or 1 means the serial engine. Results are byte-identical either
	// way (parallel.go).
	Workers int
	// Telemetry, when non-nil, instruments every subsystem the study
	// touches into the given registry. Studies sharing a registry (fleet
	// homes, resilience profiles) accumulate into the same counters.
	Telemetry *telemetry.Registry
	// Progress, when non-nil, receives per-unit completion events.
	Progress telemetry.Sink
}

// NewStudy builds the testbed: 93 device stacks, their workload plans, and
// a cloud primed with every planned destination domain.
func NewStudy() *Study {
	return NewStudyWith(StudyOptions{})
}

// NewStudyWith builds a testbed from options; see StudyOptions for the
// zero-value defaults.
func NewStudyWith(opts StudyOptions) *Study {
	start := opts.Start
	if start.IsZero() {
		start = time.Date(2024, 4, 5, 9, 0, 0, 0, time.UTC)
	}
	maxFrames := opts.MaxFramesPerRun
	if maxFrames == 0 {
		maxFrames = 3_000_000
	}
	w := opts.World
	cl := (*cloud.Cloud)(nil)
	if w == nil {
		// Private world: the study owns it, so it can serve traffic on the
		// master cloud directly — exactly the pre-World construction (and
		// what keeps the ablation lab's EnsureAAAA mutations legal).
		w = world.Build(opts.Devices)
		cl = w.Cloud
	} else {
		// Shared world: private query counters over the shared registry.
		cl = w.Cloud.Clone()
	}
	st := &Study{
		World:           w,
		Profiles:        w.Profiles,
		Plans:           w.Plans,
		Cloud:           cl,
		Clock:           netsim.NewClock(start),
		MACToDevice:     w.MACToDevice,
		ActiveDNS:       map[string]AAAAResult{},
		MaxFramesPerRun: maxFrames,
		Capture:         opts.Capture,
		Observe:         opts.Observe,
		Workers:         opts.Workers,
		Telemetry:       opts.Telemetry,
		Progress:        opts.Progress,
		scratch:         opts.Scratch,
		pool:            opts.Pool,
	}
	if st.scratch == nil {
		st.scratch = NewScratch()
	}
	if opts.Telemetry != nil {
		st.tm = newStudyMetrics(opts.Telemetry)
	}
	if opts.Faults != nil && opts.Faults.Active() {
		fp := *opts.Faults
		if fp.Seed == 0 {
			fp.Seed = 1
		}
		st.Faults = &fp
	}
	for i, p := range w.Profiles {
		st.Stacks = append(st.Stacks, device.NewStack(p, w.Plans[i], i, w.Prefixes))
	}
	return st
}

// RunAll executes the six connectivity experiments — on the parallel
// engine when Workers > 1 and no faults are active, serially otherwise —
// then the active DNS queries and the port scans. Both engines produce
// byte-identical results.
func (st *Study) RunAll() error {
	return st.RunAllContext(context.Background())
}

// RunAllContext is RunAll with cancellation: ctx is checked between
// experiments (and before the active phases), so a cancelled study
// returns ctx.Err() promptly without appending partial results.
func (st *Study) RunAllContext(ctx context.Context) error {
	if err := st.runConnectivity(ctx); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	st.RunActiveDNS()
	var err error
	st.Scan, err = st.RunPortScan()
	if err == nil && st.tm != nil {
		// One fold of the study's accumulated cloud query totals, after
		// both engines have converged on identical counts.
		st.tm.foldCloud(st.Cloud)
	}
	return err
}

// runConnectivity dispatches the Table 2 grid to the serial loop or the
// worker pool. Under active faults the DHCPv4 XID sequence depends on how
// many retransmissions earlier experiments provoked, which only the serial
// engine can know, so faulted studies always run serially.
func (st *Study) runConnectivity(ctx context.Context) error {
	if st.Workers > 1 && st.Faults == nil {
		return st.runConnectivityParallel(ctx, st.Workers)
	}
	for _, cfg := range Configs {
		if err := ctx.Err(); err != nil {
			return err
		}
		res, err := st.RunExperiment(cfg)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", cfg.ID, err)
		}
		st.Results = append(st.Results, res)
	}
	return nil
}

// RunExperiment performs one Table 2 run: reboot everything, configure,
// let devices register with their clouds, run the workload, and apply the
// functionality test.
func (st *Study) RunExperiment(cfg Config) (*RunResult, error) {
	began := st.Clock.Now()
	net := st.scratch.network(st.Clock)
	if st.tm != nil {
		net.SetMetrics(st.tm.net)
	} else {
		net.SetMetrics(nil)
	}
	// At most one analysis tap per run: the buffered capture (default) or
	// the streaming observer — never both, so every frame is recorded or
	// parsed for analysis exactly once. CaptureNone without an observer
	// attaches nothing: aggregate-only callers (the resilience grid, the
	// adversary campaign) read stack and router state, not frames, and
	// skip the per-frame tap cost entirely.
	var cap *pcapio.Capture
	var obs Observer
	if st.Capture == CaptureNone {
		if st.Observe != nil {
			obs = st.Observe(cfg, st)
			net.AddTap(obs)
		}
	} else {
		cap = &pcapio.Capture{}
		net.AddTap(cap)
	}

	rt := router.New(cfg.Router, st.Cloud)
	rt.Attach(net)
	if st.Faults != nil {
		// Per-experiment sub-seed: the six runs see different (but
		// reproducible) frame fates from the same profile seed.
		net.SetImpairment(faults.NewLink(*st.Faults, faults.SubSeed(st.Faults.Seed, cfg.ID)))
		rt.Faults = faults.NewServices(*st.Faults, st.Clock)
	}
	for _, s := range st.Stacks {
		s.Attach(net)
		s.Reset(cfg.Mode, cfg.V6Seq)
	}

	// Phase 1: reboot. The router advertises once (dnsmasq sends periodic
	// RAs); devices solicit as they boot.
	rt.SendRouterAdvert()
	for _, s := range st.Stacks {
		s.Boot()
	}
	if _, err := net.Run(st.MaxFramesPerRun); err != nil {
		return nil, err
	}
	if st.Faults != nil {
		if err := st.retryRounds(net, (*device.Stack).RetryConfig); err != nil {
			return nil, err
		}
	}

	// Phase 2: DAD completes; addresses are announced.
	for _, s := range st.Stacks {
		s.Announce()
	}
	if _, err := net.Run(st.MaxFramesPerRun); err != nil {
		return nil, err
	}

	// Phase 3: the devices talk to their destinations.
	for _, s := range st.Stacks {
		s.RunWorkload(st.Cloud)
	}
	if _, err := net.Run(st.MaxFramesPerRun); err != nil {
		return nil, err
	}
	if st.Faults != nil {
		if err := st.retryRounds(net, (*device.Stack).RetryWorkload); err != nil {
			return nil, err
		}
	}

	// Phase 4: functionality test (§4.1).
	res := &RunResult{
		Config:          cfg,
		Capture:         cap,
		Observed:        obs,
		Functional:      map[string]bool{},
		Neighbors:       rt.Neighbors,
		Leases4:         map[packet.MAC]netip.Addr{},
		FramesDelivered: net.Delivered(),
	}
	for _, s := range st.Stacks {
		res.Functional[s.Prof.Name] = s.Functional()
		if lease, ok := rt.LeaseFor(s.MAC); ok {
			res.Leases4[s.MAC] = lease
		}
		res.Retransmits += s.Retransmits()
	}
	if st.Faults != nil {
		res.FramesDropped = net.Dropped()
		res.PTBSent = rt.PTBSent
		res.ServiceDrops = rt.Faults.RAsDropped + rt.Faults.DHCPv6Dropped + rt.Faults.AAAADropped
	}
	// Fold before the inter-experiment hour so elapsed reflects only
	// simulated time this run consumed — the same value under the serial
	// engine (shared advancing clock) and the parallel one (private
	// clock from a common base).
	elapsed := st.Clock.Now().Sub(began)
	if st.tm != nil {
		st.tm.foldRun(cfg, rt, st.Stacks, elapsed)
		// Capture-path accounting: atomic adds, so the fold is identical
		// across engines and worker counts.
		if cap != nil {
			st.tm.framesBuffered.Add(uint64(cap.Len()))
			st.tm.captureBytes.Add(int64(cap.Bytes()))
		}
		if obs != nil {
			st.tm.framesStreamed.Add(uint64(obs.Frames()))
		}
	}
	functional := 0
	for _, ok := range res.Functional {
		if ok {
			functional++
		}
	}
	telemetry.Emit(st.Progress, telemetry.Event{
		Scope:   "experiment",
		ID:      cfg.ID,
		Detail:  fmt.Sprintf("%d/%d devices functional, %d frames", functional, len(st.Stacks), res.Frames()),
		Elapsed: elapsed,
	})
	st.Clock.Advance(time.Hour)
	return res, nil
}

// retryRounds models client retransmit timers under impairment: advance
// the clock past a backoff interval, let every stack retransmit whatever
// went unanswered, and drain the network; repeat until a round sends
// nothing. The per-stack retry caps bound it, with 4 rounds (the ballpark
// of RFC 4861's MAX_RTR_SOLICITATIONS) as a backstop.
func (st *Study) retryRounds(net *netsim.Network, retry func(*device.Stack) int) error {
	backoff := 4 * time.Second
	for round := 0; round < 4; round++ {
		st.Clock.Advance(backoff)
		backoff *= 2
		sent := 0
		for _, s := range st.Stacks {
			sent += retry(s)
		}
		if sent == 0 {
			return nil
		}
		if st.tm != nil {
			st.tm.retryRounds.Inc()
		}
		if _, err := net.Run(st.MaxFramesPerRun); err != nil {
			return err
		}
	}
	return nil
}

// RunActiveDNS performs the §4.3 active measurement: AAAA queries for
// every destination domain observed across the experiments. (The planner's
// spec list is exactly the set of names the captures contain.)
func (st *Study) RunActiveDNS() {
	for _, pl := range st.Plans {
		for _, sp := range pl.Specs {
			if _, done := st.ActiveDNS[sp.Name]; done {
				continue
			}
			answers, rcode := st.Cloud.Resolve(sp.Name, dnsmsg.TypeAAAA)
			st.ActiveDNS[sp.Name] = AAAAResult{
				Name:    sp.Name,
				HasAAAA: rcode == dnsmsg.RCodeSuccess && len(answers) > 0,
				Party:   sp.Party,
			}
		}
	}
}

// FoldCloudMetrics folds the study's not-yet-folded cloud query counts
// into the telemetry registry (a no-op without telemetry). RunAllContext
// and the firewall-exposure loop call it automatically; callers driving
// RunExperiment directly (the fleet's single-config homes, the
// resilience grid) call it once their study is done.
func (st *Study) FoldCloudMetrics() {
	if st.tm != nil {
		st.tm.foldCloud(st.Cloud)
	}
}

// Result returns the RunResult for an experiment ID, or nil.
func (st *Study) Result(id string) *RunResult {
	for _, r := range st.Results {
		if r.Config.ID == id {
			return r
		}
	}
	return nil
}

// DeviceByName finds a profile.
func (st *Study) DeviceByName(name string) *device.Profile {
	return device.Find(st.Profiles, name)
}
