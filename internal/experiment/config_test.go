package experiment

import "testing"

// TestConfigByIDRoundTrip checks the init-time index: every Configs entry
// must come back identical through ConfigByID, and unknown IDs must miss.
func TestConfigByIDRoundTrip(t *testing.T) {
	for _, c := range Configs {
		got, ok := ConfigByID(c.ID)
		if !ok {
			t.Fatalf("ConfigByID(%q) not found", c.ID)
		}
		if got != c {
			t.Errorf("ConfigByID(%q) = %+v, want %+v", c.ID, got, c)
		}
	}
	if _, ok := ConfigByID("no-such-experiment"); ok {
		t.Error("ConfigByID accepted an unknown ID")
	}
}
