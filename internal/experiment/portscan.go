package experiment

import (
	"net/netip"
	"sort"

	"v6lab/internal/device"
	"v6lab/internal/router"
	"v6lab/internal/scan"
)

// DeviceScan holds one device's per-family open-port findings.
type DeviceScan struct {
	Device    string
	OpenTCPv4 []uint16
	OpenTCPv6 []uint16
	V4OnlyTCP []uint16
	V6OnlyTCP []uint16
	V6Addrs   []netip.Addr
}

// ScanReport aggregates the §5.4.2 results.
type ScanReport struct {
	Devices []DeviceScan
	// DevicesWithV4OnlyPorts counts devices exposing services over IPv4
	// that are absent over IPv6.
	DevicesWithV4OnlyPorts int
	// DevicesWithV6OnlyPorts counts the opposite (the Samsung Fridge).
	DevicesWithV6OnlyPorts int
}

// probePorts is the targeted probe list the harness uses: the union of
// every service port any device exposes plus common closed controls. The
// paper scans 1-65535 per address; Scanner supports arbitrary ranges, but
// the study uses the reduced deterministic set to keep frame counts sane —
// the per-family *differences* the paper reports are unaffected.
func probePorts(profiles []*device.Profile) []uint16 {
	set := map[uint16]bool{22: true, 23: true, 80: true, 443: true, 1883: true, 5000: true}
	for _, p := range profiles {
		for _, list := range [][]uint16{p.OpenTCPv4, p.OpenTCPv6} {
			for _, port := range list {
				set[port] = true
			}
		}
	}
	ports := make([]uint16, 0, len(set))
	for p := range set {
		ports = append(ports, p)
	}
	sort.Slice(ports, func(i, j int) bool { return ports[i] < ports[j] })
	return ports
}

// RunPortScan boots a dual-stack network and scans every device over both
// families, harvesting IPv6 addresses via all-nodes echo and the router's
// neighbor table exactly as §4.3 describes.
func (st *Study) RunPortScan() (*ScanReport, error) {
	net := st.scratch.network(st.Clock)
	if st.tm != nil {
		net.SetMetrics(st.tm.net)
	} else {
		net.SetMetrics(nil)
	}
	cfg := Configs[len(Configs)-1] // dual-stack (stateful): everything live
	rt := router.New(cfg.Router, st.Cloud)
	rt.Attach(net)
	sc := scan.New()
	sc.Attach(net)
	for _, s := range st.Stacks {
		s.Attach(net)
		s.Reset(cfg.Mode, cfg.V6Seq)
	}
	rt.SendRouterAdvert()
	for _, s := range st.Stacks {
		s.Boot()
	}
	if _, err := net.Run(st.MaxFramesPerRun); err != nil {
		return nil, err
	}
	for _, s := range st.Stacks {
		s.Announce()
	}
	if _, err := net.Run(st.MaxFramesPerRun); err != nil {
		return nil, err
	}

	// Address harvesting: all-nodes echo + router neighbor table.
	live, err := sc.DiscoverV6(net)
	if err != nil {
		return nil, err
	}
	for a, m := range rt.Neighbors {
		if _, ok := live[a]; !ok {
			live[a] = m
		}
	}
	v6ByMAC := map[string][]netip.Addr{}
	for a, m := range live {
		v6ByMAC[m.String()] = append(v6ByMAC[m.String()], a)
	}

	ports := probePorts(st.Profiles)
	report := &ScanReport{}
	for _, s := range st.Stacks {
		ds := DeviceScan{Device: s.Prof.Name}
		// IPv4 scan against the DHCP lease.
		if lease, ok := rt.LeaseFor(s.MAC); ok {
			open, err := sc.TCPScan(net, lease, s.MAC, ports)
			if err != nil {
				return nil, err
			}
			ds.OpenTCPv4 = open
		}
		// IPv6 scan against every harvested address.
		addrs := v6ByMAC[s.MAC.String()]
		sort.Slice(addrs, func(i, j int) bool { return addrs[i].String() < addrs[j].String() })
		ds.V6Addrs = addrs
		openV6 := map[uint16]bool{}
		for _, a := range addrs {
			open, err := sc.TCPScan(net, a, s.MAC, ports)
			if err != nil {
				return nil, err
			}
			for _, p := range open {
				openV6[p] = true
			}
		}
		for p := range openV6 {
			ds.OpenTCPv6 = append(ds.OpenTCPv6, p)
		}
		sort.Slice(ds.OpenTCPv6, func(i, j int) bool { return ds.OpenTCPv6[i] < ds.OpenTCPv6[j] })

		ds.V4OnlyTCP = diffPorts(ds.OpenTCPv4, ds.OpenTCPv6)
		ds.V6OnlyTCP = diffPorts(ds.OpenTCPv6, ds.OpenTCPv4)
		if len(ds.V4OnlyTCP) > 0 {
			report.DevicesWithV4OnlyPorts++
		}
		if len(ds.V6OnlyTCP) > 0 {
			report.DevicesWithV6OnlyPorts++
		}
		report.Devices = append(report.Devices, ds)
	}
	return report, nil
}

// diffPorts returns ports in a but not in b.
func diffPorts(a, b []uint16) []uint16 {
	inB := map[uint16]bool{}
	for _, p := range b {
		inB[p] = true
	}
	var out []uint16
	for _, p := range a {
		if !inB[p] {
			out = append(out, p)
		}
	}
	return out
}

// ScanFor returns the scan row for a device name, or nil.
func (r *ScanReport) ScanFor(name string) *DeviceScan {
	for i := range r.Devices {
		if r.Devices[i].Device == name {
			return &r.Devices[i]
		}
	}
	return nil
}
