package experiment

import (
	"net/netip"
	"sort"

	"v6lab/internal/addr"
	"v6lab/internal/firewall"
	"v6lab/internal/router"
	"v6lab/internal/scan"
)

// This file is the experiment-layer half of the adversary subsystem: a
// WAN-vantage scan driven by an attacker-supplied hitlist instead of the
// router's own neighbor table. The §5.4.2 exposure scan (firewallexp.go)
// models an attacker who already knows every address; RunTargetedExposure
// models one who only knows what discovery produced — probes against
// guessed-wrong addresses burn budget and hit nothing.

// TargetProbe is one hitlist entry: a candidate address and the ports the
// campaign probes on it.
type TargetProbe struct {
	Addr  netip.Addr
	Ports []uint16
}

// TargetedExposure reports a hitlist scan through one home's firewall.
type TargetedExposure struct {
	Policy string
	// AddrsProbed counts hitlist entries probed; ProbesSent the SYNs
	// injected at the WAN port.
	AddrsProbed, ProbesSent int
	// Open maps each responding address to its sorted open ports.
	Open map[netip.Addr][]uint16
	// Device attributes every routable address in the home's neighbor
	// table to its device name — the ground truth the caller uses to tie
	// responding addresses back to devices.
	Device map[netip.Addr]string
	// FunctionalDevices counts devices whose outbound workload completed
	// under this policy (egress must never regress).
	FunctionalDevices int
}

// RunTargetedExposure boots the home under cfg with pol installed, runs
// the workload (so conntrack holds outbound state, exactly as in the
// §5.4.2 re-scan), then probes the attacker's hitlist in the given order.
// Targets the home never assigned simply never answer. The probe stream
// is deterministic: sport cycles from 40000 in hitlist order, so the same
// hitlist always produces the same frames.
func (st *Study) RunTargetedExposure(cfg Config, pol firewall.Policy, targets []TargetProbe) (*TargetedExposure, error) {
	net, rt, _, err := st.bootFirewalled(cfg, pol)
	if err != nil {
		return nil, err
	}

	te := &TargetedExposure{
		Policy: pol.Name(),
		Open:   map[netip.Addr][]uint16{},
		Device: map[netip.Addr]string{},
	}
	for a, m := range rt.Neighbors {
		if addr.Classify(a) != addr.KindGUA || !router.GUAPrefix.Contains(a) {
			continue
		}
		if prof := st.MACToDevice[m]; prof != nil {
			te.Device[a] = prof.Name
		}
	}
	for _, s := range st.Stacks {
		if s.Functional() {
			te.FunctionalDevices++
		}
	}

	open := map[netip.Addr]map[uint16]bool{}
	col := &scan.Collector{Vantage: WANScannerV6, OnSYNACK: func(src netip.Addr, port uint16) {
		if open[src] == nil {
			open[src] = map[uint16]bool{}
		}
		open[src][port] = true
	}}
	rt.WANv6Tap = col.Tap
	defer func() { rt.WANv6Tap = nil }()

	sport := 0
	for _, tgt := range targets {
		te.AddrsProbed++
		for _, dport := range tgt.Ports {
			raw, err := scan.BuildSYNv6(WANScannerV6, tgt.Addr, uint16(40000+sport%20000), dport, 9)
			if err != nil {
				return nil, err
			}
			sport++
			te.ProbesSent++
			rt.InjectWANv6(raw)
		}
		if _, err := net.Run(st.MaxFramesPerRun); err != nil {
			return nil, err
		}
	}

	for a, set := range open {
		list := make([]uint16, 0, len(set))
		for p := range set {
			list = append(list, p)
		}
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		te.Open[a] = list
	}
	return te, nil
}
