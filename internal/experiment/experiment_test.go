package experiment

import (
	"testing"

	"v6lab/internal/packet"
)

func TestSingleExperimentProducesTraffic(t *testing.T) {
	st := NewStudy()
	res, err := st.RunExperiment(Configs[0]) // IPv4-only
	if err != nil {
		t.Fatal(err)
	}
	if res.Capture.Len() == 0 {
		t.Fatal("empty capture")
	}
	// Every device must be functional over IPv4 (the paper's baseline).
	for name, ok := range res.Functional {
		if !ok {
			t.Errorf("%s not functional in IPv4-only", name)
		}
	}
	if len(res.Leases4) != 93 {
		t.Errorf("DHCPv4 leases = %d, want 93", len(res.Leases4))
	}
	t.Logf("ipv4-only: %d frames", res.Capture.Len())
}

func TestIPv6OnlyFunctionalDevices(t *testing.T) {
	st := NewStudy()
	// V6Seq order matters for rotation schedules but functionality only
	// needs the baseline run.
	res, err := st.RunExperiment(Configs[1]) // IPv6-only baseline
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"Apple TV": true, "Google TV": true, "TiVo Stream": true,
		"Meta Portal Mini": true, "Google Home Mini": true,
		"Google Nest Mini": true, "Nest Hub": true, "Nest Hub Max": true,
	}
	functional := 0
	for name, ok := range res.Functional {
		if ok {
			functional++
			if !want[name] {
				t.Errorf("unexpected functional device in IPv6-only: %s", name)
			}
		}
	}
	if functional != 8 {
		t.Errorf("functional devices in IPv6-only = %d, want 8", functional)
	}
	if len(res.Neighbors) == 0 {
		t.Error("router neighbor table empty")
	}
	t.Logf("ipv6-only: %d frames, %d neighbors", res.Capture.Len(), len(res.Neighbors))
}

func TestFullStudyRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full study in -short mode")
	}
	st := NewStudy()
	if err := st.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(st.Results) != 6 {
		t.Fatalf("results = %d", len(st.Results))
	}
	for _, r := range st.Results {
		if r.Capture.Len() == 0 {
			t.Errorf("%s: empty capture", r.Config.ID)
		}
	}
	if len(st.ActiveDNS) == 0 {
		t.Error("no active DNS results")
	}
	if st.Scan == nil || len(st.Scan.Devices) != 93 {
		t.Fatalf("scan report incomplete")
	}
	// §5.4.2 findings.
	if st.Scan.DevicesWithV4OnlyPorts != 6 {
		t.Errorf("devices with v4-only ports = %d, want 6", st.Scan.DevicesWithV4OnlyPorts)
	}
	fridge := st.Scan.ScanFor("Samsung Fridge")
	if fridge == nil {
		t.Fatal("no fridge scan")
	}
	if got, want := fridge.V6OnlyTCP, []uint16{37993, 46525, 46757}; len(got) != len(want) {
		t.Errorf("fridge v6-only ports = %v, want %v", got, want)
	}
	if st.Scan.DevicesWithV6OnlyPorts != 1 {
		t.Errorf("devices with v6-only ports = %d, want 1", st.Scan.DevicesWithV6OnlyPorts)
	}
}

func TestMACsAreUniqueAndUnicast(t *testing.T) {
	st := NewStudy()
	seen := map[packet.MAC]bool{}
	for _, s := range st.Stacks {
		if seen[s.MAC] {
			t.Errorf("duplicate MAC %v", s.MAC)
		}
		seen[s.MAC] = true
		if s.MAC.IsMulticast() {
			t.Errorf("%s: multicast MAC", s.Prof.Name)
		}
	}
}
