package experiment

import (
	"sync"
	"time"

	"v6lab/internal/cloud"
	"v6lab/internal/device"
	"v6lab/internal/netsim"
	"v6lab/internal/router"
	"v6lab/internal/telemetry"
)

// studyMetrics binds a study to a telemetry registry: the netsim
// hot-path instruments plus pre-resolved counters every deterministic
// fold point adds into. Registration is idempotent, so any number of
// studies (fleet homes, resilience profiles, parallel experiment
// environments) built over the same registry accumulate into the same
// counters — and because every fold is an atomic addition, the final
// snapshot is independent of the order concurrent studies finish in.
type studyMetrics struct {
	reg *telemetry.Registry
	net *netsim.Metrics

	// Router-side folds, taken per experiment run.
	fwdV4, fwdV6, nat44, ptb    *telemetry.Counter
	leases4, leases6, neighbors *telemetry.Counter
	serviceDrops                *telemetry.Counter

	// Firewall / conntrack folds, taken per exposure run.
	fwPassedOut, fwAllowedState, fwAllowedPolicy, fwDroppedIn     *telemetry.Counter
	ctFlows, ctHits, ctMisses, ctInserts, ctEvictions, ctExpiries *telemetry.Counter

	// Device folds.
	retransmits, retryRounds *telemetry.Counter
	devTested, devFunctional *telemetry.Counter
	failureStages            *telemetry.CounterVec

	// Experiment progress.
	expRuns      *telemetry.Counter
	expElapsedMS *telemetry.Counter
	expByConfig  *telemetry.CounterVec

	// Analysis-path accounting: how runs fed their frames to analysis
	// (streamed at delivery vs buffered into a capture) and how many
	// capture bytes the buffered runs retained.
	framesStreamed *telemetry.Counter
	framesBuffered *telemetry.Counter
	captureBytes   *telemetry.Gauge

	// Cloud queries by record type, folded as deltas (see foldCloud).
	cloudQueries *telemetry.CounterVec
	mu           sync.Mutex
	lastQueries  map[string]int
}

// newStudyMetrics resolves every instrument on the registry once.
func newStudyMetrics(r *telemetry.Registry) *studyMetrics {
	return &studyMetrics{
		reg: r,
		net: netsim.NewMetrics(r),

		fwdV4:        r.Counter("router", "forwarded_v4_total", "IPv4 packets routed LAN to WAN."),
		fwdV6:        r.Counter("router", "forwarded_v6_total", "IPv6 packets routed LAN to WAN."),
		nat44:        r.Counter("router", "nat44_translations_total", "NAT44 port mappings created."),
		ptb:          r.Counter("router", "icmp6_ptb_sent_total", "ICMPv6 Packet-Too-Big errors emitted by the MTU clamp."),
		leases4:      r.Counter("router", "dhcp4_leases_total", "DHCPv4 leases handed out."),
		leases6:      r.Counter("router", "dhcp6_leases_total", "DHCPv6 IA_NA leases handed out."),
		neighbors:    r.Counter("router", "ndp_neighbors_total", "IPv6 neighbor table entries learned."),
		serviceDrops: r.Counter("router", "service_drops_total", "RA/DHCPv6/DNS replies suppressed by the fault schedule."),

		fwPassedOut:     r.Counter("firewall", "passed_out_total", "LAN-to-WAN packets recorded as originating flows."),
		fwAllowedState:  r.Counter("firewall", "allowed_by_state_total", "Inbound packets admitted as tracked return traffic."),
		fwAllowedPolicy: r.Counter("firewall", "allowed_by_policy_total", "Unsolicited inbound packets the policy admitted."),
		fwDroppedIn:     r.Counter("firewall", "dropped_in_total", "Inbound packets the firewall rejected."),
		ctFlows:         r.Counter("conntrack", "flows_total", "Flows resident in conntrack tables at end of runs."),
		ctHits:          r.Counter("conntrack", "hits_total", "Conntrack lookups that matched a tracked flow."),
		ctMisses:        r.Counter("conntrack", "misses_total", "Conntrack lookups that found no flow."),
		ctInserts:       r.Counter("conntrack", "inserts_total", "Flows inserted into conntrack tables."),
		ctEvictions:     r.Counter("conntrack", "evictions_total", "Flows evicted by the LRU cap."),
		ctExpiries:      r.Counter("conntrack", "expiries_total", "Flows expired by the idle timer wheel."),

		retransmits:   r.Counter("device", "retransmits_total", "Retry transmissions devices made to recover from impairment."),
		retryRounds:   r.Counter("device", "retry_rounds_total", "Backoff rounds in which at least one device retransmitted."),
		devTested:     r.Counter("device", "functional_tests_total", "Device functionality tests applied."),
		devFunctional: r.Counter("device", "functional_pass_total", "Device functionality tests passed."),
		failureStages: r.CounterVec("device", "failure_stages_total", "Device runs by earliest broken funnel stage (ok = functional).", "stage"),

		expRuns:      r.Counter("experiment", "runs_total", "Table 2 connectivity experiments completed."),
		expElapsedMS: r.Counter("experiment", "sim_elapsed_ms_total", "Simulated milliseconds consumed by experiment runs."),
		expByConfig:  r.CounterVec("experiment", "runs_by_config_total", "Experiment runs by Table 2 configuration.", "config"),

		framesStreamed: r.Counter("analysis", "frames_streamed_total", "Frames parsed at delivery by streaming observers (CaptureNone runs)."),
		framesBuffered: r.Counter("analysis", "frames_buffered_total", "Frames buffered into pcap captures for batch analysis."),
		captureBytes:   r.Gauge("pcapio", "capture_bytes_retained", "Frame bytes currently retained in experiment captures."),

		cloudQueries: r.CounterVec("cloud", "queries_total", "DNS questions served by the simulated cloud, by record type.", "type"),
		lastQueries:  make(map[string]int),
	}
}

// foldRun folds one finished connectivity run's router and device
// counters. The router is private to the run, so its totals are this
// run's deltas; elapsed is simulated time consumed, identical under the
// serial and parallel engines (both measure the run's own clock delta).
func (tm *studyMetrics) foldRun(cfg Config, rt *router.Router, stacks []*device.Stack, elapsed time.Duration) {
	tm.fwdV4.Add(uint64(rt.ForwardedV4))
	tm.fwdV6.Add(uint64(rt.ForwardedV6))
	tm.nat44.Add(uint64(rt.NATTranslations))
	tm.ptb.Add(uint64(rt.PTBSent))
	tm.leases4.Add(uint64(rt.Lease4Count()))
	tm.leases6.Add(uint64(rt.Lease6Count()))
	tm.neighbors.Add(uint64(len(rt.Neighbors)))
	if rt.Faults != nil {
		tm.serviceDrops.Add(uint64(rt.Faults.RAsDropped + rt.Faults.DHCPv6Dropped + rt.Faults.AAAADropped))
	}
	for _, s := range stacks {
		tm.devTested.Inc()
		stage := s.FailureStage()
		if stage == "ok" {
			tm.devFunctional.Inc()
		}
		tm.failureStages.With(stage).Inc()
		tm.retransmits.Add(uint64(s.Retransmits()))
	}
	tm.expRuns.Inc()
	tm.expByConfig.With(cfg.ID).Inc()
	tm.expElapsedMS.Add(uint64(elapsed.Milliseconds()))
}

// foldFirewall folds one exposure run's firewall and conntrack counters.
func (tm *studyMetrics) foldFirewall(pe *PolicyExposure) {
	tm.fwPassedOut.Add(pe.FW.PassedOut)
	tm.fwAllowedState.Add(pe.FW.AllowedByState)
	tm.fwAllowedPolicy.Add(pe.FW.AllowedByPolicy)
	tm.fwDroppedIn.Add(pe.FW.DroppedIn)
	tm.ctFlows.Add(uint64(pe.Flows))
	tm.ctHits.Add(uint64(pe.CT.Hits))
	tm.ctMisses.Add(uint64(pe.CT.Misses))
	tm.ctInserts.Add(uint64(pe.CT.Inserts))
	tm.ctEvictions.Add(uint64(pe.CT.Evictions))
	tm.ctExpiries.Add(uint64(pe.CT.Expiries))
}

// foldCloud folds the study's cloud query counters as a delta against
// what this study last folded. The study's cloud totals at every fold
// point are engine-independent (the parallel engine merges clone
// counters in config order before any fold), so the deltas — and with
// them the shared registry — stay byte-identical across worker counts.
func (tm *studyMetrics) foldCloud(cl *cloud.Cloud) {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	for typ, n := range cl.Queries {
		key := typ.String()
		if d := n - tm.lastQueries[key]; d > 0 {
			tm.cloudQueries.With(key).Add(uint64(d))
			tm.lastQueries[key] = n
		}
	}
}
