package experiment

import (
	"sync"
	"time"

	"v6lab/internal/dnsmsg"
	"v6lab/internal/netsim"
	"v6lab/internal/world"
)

// Scratch is the recycled per-run mutable infrastructure a study executes
// on: today, the L2 switch with its queue and frame arena. Reusing one
// Scratch across consecutive runs (the six Table 2 experiments, a fleet
// worker's homes) means the switch reaches a steady state where delivering
// a full run's traffic allocates nothing.
//
// A Scratch is single-threaded state: it may be handed from study to study
// but never shared by two concurrent ones.
type Scratch struct {
	net *netsim.Network
}

// NewScratch returns an empty Scratch; the switch is built on first use.
func NewScratch() *Scratch { return &Scratch{} }

// Network returns the recycled switch, reset onto the given clock. The
// reset invalidates every frame the previous run's arena handed out —
// callers retain only capture copies and value types, which is the
// Reset contract that makes recycling safe. Exported for run drivers that
// orchestrate their own delivery loop over a study's infrastructure (the
// timeline engine); everyone else goes through RunExperiment.
func (sc *Scratch) Network(clock *netsim.Clock) *netsim.Network {
	if sc.net == nil {
		sc.net = netsim.NewNetwork(clock)
	} else {
		sc.net.Reset(clock)
	}
	return sc.net
}

// network is the package-internal spelling RunExperiment uses.
func (sc *Scratch) network(clock *netsim.Clock) *netsim.Network {
	return sc.Network(clock)
}

// EnvPool recycles isolated parallel-run environments — device stacks,
// switch, clock, cloud clone — across studies. Building one environment
// costs ~93 stacks plus a primed switch arena, so a warm pool turns the
// per-worker setup of every subsequent study over the same World into a
// handful of map clears.
//
// Environments are keyed by World identity (pointer equality): a pooled
// environment is only handed to a study whose World is the very object it
// was built from, so stacks, plans, and the cloud registry are guaranteed
// to match. Releasing and acquiring are concurrency-safe; the environments
// themselves are single-threaded.
type EnvPool struct {
	mu   sync.Mutex
	envs []*Study
}

// maxIdleEnvs bounds how many idle environments a pool retains; beyond it,
// released environments are dropped for the GC. Six covers the widest
// useful study fan-out (one per Table 2 config) with room for a second
// world's worth.
const maxIdleEnvs = 12

// NewEnvPool returns an empty environment pool.
func NewEnvPool() *EnvPool { return &EnvPool{} }

// get pops an idle environment built over exactly this world, or nil.
func (p *EnvPool) get(w *world.World) *Study {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := len(p.envs) - 1; i >= 0; i-- {
		if env := p.envs[i]; env.World == w {
			p.envs = append(p.envs[:i], p.envs[i+1:]...)
			return env
		}
	}
	return nil
}

// put returns an idle environment to the pool.
func (p *EnvPool) put(env *Study) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.envs) < maxIdleEnvs {
		p.envs = append(p.envs, env)
	}
}

// Idle reports how many environments are currently parked in the pool.
func (p *EnvPool) Idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.envs)
}

// acquireEnv returns an isolated environment for one parallel worker:
// a warm one from the study's pool when available, freshly built
// otherwise. The environment is adopted into this study — budget,
// telemetry wiring — but keeps its own stacks, clock, switch, and query
// counters.
func (st *Study) acquireEnv(base time.Time) *Study {
	if st.pool != nil {
		if env := st.pool.get(st.World); env != nil {
			env.MaxFramesPerRun = st.MaxFramesPerRun
			env.Capture = st.Capture
			env.Observe = st.Observe
			env.Telemetry = st.Telemetry
			env.Progress = st.Progress
			env.tm = st.tm
			clear(env.Cloud.Queries)
			return env
		}
	}
	return st.isolatedEnv(base)
}

// releaseEnv parks a worker's environment for reuse by later studies (or
// drops it when the study has no pool).
func (st *Study) releaseEnv(env *Study) {
	if st.pool != nil {
		st.pool.put(env)
	}
}

// beginRun readies a (possibly reused) environment for one experiment:
// rewind the private clock to the common base and seed the DHCPv4
// transaction counters with the prior configs' boot count. Both writes
// are absolute, which is what makes environment reuse invisible — a
// warm environment enters RunExperiment in the same state a fresh one
// would.
func (env *Study) beginRun(base time.Time, prior []Config) {
	env.Clock.Reset(base)
	env.seedDHCP4(prior)
}

// takeQueries returns the environment's accumulated cloud query counters
// and leaves it with fresh ones, so each run's counts merge exactly once.
func (env *Study) takeQueries() map[dnsmsg.Type]int {
	q := env.Cloud.Queries
	env.Cloud.Queries = make(map[dnsmsg.Type]int, len(q))
	return q
}
