package experiment

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"v6lab/internal/device"
	"v6lab/internal/dnsmsg"
	"v6lab/internal/netsim"
)

// The parallel study engine.
//
// The six Table 2 experiments are fully independent: each one builds its
// own switch and router, reboots every device stack, and the capture it
// produces depends only on (profiles, plans, config) — never on absolute
// time, because no stack or router service reads the clock into frame
// content; the clock only timestamps capture records. That leaves exactly
// two pieces of state threading the serial run together:
//
//   - the clock: experiment i starts where experiment i-1 left off, so
//     pcap timestamps are cumulative. Each parallel environment runs on a
//     private clock from a common base; afterwards the merge rebases
//     experiment i's record times by the summed elapsed time of
//     experiments 0..i-1. time.Time.Add is exact, so rebased timestamps
//     equal the serial ones bit for bit.
//   - the DHCPv4 transaction counter: Boot increments it once per
//     v4-enabled experiment (and fault-driven retries increment it
//     further). On a clean network the increment count before experiment
//     i is just the number of prior v4-enabled configs, so each
//     environment pre-seeds its stacks with that count. Under faults the
//     count depends on the previous experiments' retransmissions, which
//     is why faulted studies fall back to the serial engine
//     (runConnectivity).
//
// The cloud's domain registry is immutable while experiments run; its
// only run-time mutation is the per-type query diagnostic counter, so
// each environment gets a Clone sharing the registry with private
// counters, merged back (in config order) after the pool drains.
//
// Merging in config order makes the Results slice — and therefore
// FullReport and all six pcaps — byte-identical to the serial engine's.

// runConnectivityParallel executes the Table 2 grid on a bounded worker
// pool of isolated environments and merges the outcomes in config order.
func (st *Study) runConnectivityParallel(ctx context.Context, workers int) error {
	start := st.Clock.Now()
	type outcome struct {
		res     *RunResult
		queries map[dnsmsg.Type]int
		elapsed time.Duration
		err     error
	}
	outcomes := make([]outcome, len(Configs))
	if workers > len(Configs) {
		workers = len(Configs)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One environment per worker, reused across its jobs (and —
			// via the pool — across studies). beginRun's absolute clock
			// and XID seeding is what makes the reuse byte-invisible.
			env := st.acquireEnv(start)
			defer st.releaseEnv(env)
			for i := range jobs {
				if err := ctx.Err(); err != nil {
					outcomes[i] = outcome{err: err}
					continue
				}
				env.beginRun(start, Configs[:i])
				res, err := env.RunExperiment(Configs[i])
				outcomes[i] = outcome{
					res: res, queries: env.takeQueries(),
					elapsed: env.Clock.Now().Sub(start), err: err,
				}
			}
		}()
	}
	for i := range Configs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	// Scan for failures before touching st.Results: a cancelled or failed
	// pool leaves the study with no partial results appended.
	for i := range Configs {
		if err := outcomes[i].err; err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return err
			}
			return fmt.Errorf("experiment %s: %w", Configs[i].ID, err)
		}
	}
	var offset time.Duration
	for i := range Configs {
		out := outcomes[i]
		// Rebase this capture from the common base onto the serial
		// timeline: everything experiments 0..i-1 consumed comes first.
		// Streaming runs have nothing to rebase — analysis never reads
		// record times, only pcap artifacts do, and those need a capture.
		if c := out.res.Capture; c != nil {
			recs := c.Records
			for j := range recs {
				recs[j].Time = recs[j].Time.Add(offset)
			}
		}
		offset += out.elapsed
		st.Results = append(st.Results, out.res)
		for t, n := range out.queries {
			st.Cloud.Queries[t] += n
		}
	}
	// Leave the shared clock and stacks exactly where the serial engine
	// would: the port scan draws its timestamps and next DHCPv4 XID from
	// them.
	st.Clock.Advance(offset)
	st.seedDHCP4(Configs)
	return nil
}

// isolatedEnv builds a study sharing this one's immutable World
// (profiles, plans, domain registry) but with private stacks, clock,
// scratch, and query counters, so one experiment can run on it
// concurrently with others.
func (st *Study) isolatedEnv(base time.Time) *Study {
	w := st.World
	env := &Study{
		World:           w,
		Profiles:        w.Profiles,
		Plans:           w.Plans,
		Cloud:           st.Cloud.Clone(),
		Clock:           netsim.NewClock(base),
		MACToDevice:     w.MACToDevice,
		MaxFramesPerRun: st.MaxFramesPerRun,
		Capture:         st.Capture,
		Observe:         st.Observe,
		scratch:         NewScratch(),
		// The environments share the parent's instruments and sink:
		// counter folds are atomic additions (order-independent), and
		// cloud-query folding stays with the parent, which merges the
		// environments' counters in config order before its single fold.
		Telemetry: st.Telemetry,
		Progress:  st.Progress,
		tm:        st.tm,
	}
	for i, p := range w.Profiles {
		env.Stacks = append(env.Stacks, device.NewStack(p, w.Plans[i], i, w.Prefixes))
	}
	return env
}

// seedDHCP4 advances every stack's DHCPv4 transaction counter past the
// given configs, as if their Boots had already happened.
func (st *Study) seedDHCP4(prior []Config) {
	n := 0
	for _, cfg := range prior {
		if cfg.Mode != device.ModeV6Only {
			n++
		}
	}
	for _, s := range st.Stacks {
		s.SeedDHCP4Transactions(n)
	}
}
