package experiment

import (
	"sync"
	"testing"

	"v6lab/internal/dhcp6"
	"v6lab/internal/dnsmsg"
	"v6lab/internal/packet"
)

var (
	studyOnce sync.Once
	studyVal  *Study
	studyErr  error
)

// fullStudy runs the whole study once for this package's tests.
func fullStudy(t *testing.T) *Study {
	t.Helper()
	studyOnce.Do(func() {
		studyVal = NewStudy()
		studyErr = studyVal.RunAll()
	})
	if studyErr != nil {
		t.Fatal(studyErr)
	}
	return studyVal
}

// TestWireIntegrity checks every captured frame: parseable Ethernet, valid
// IP version fields, and verifying transport checksums — the testbed must
// emit RFC-correct packets, not just plausible ones.
func TestWireIntegrity(t *testing.T) {
	st := fullStudy(t)
	frames, badChecksum, parseErrors := 0, 0, 0
	for _, res := range st.Results {
		for _, rec := range res.Capture.Records {
			frames++
			p := packet.Parse(rec.Data)
			if p.Err != nil {
				parseErrors++
				continue
			}
			if p.ICMPv6 != nil && p.IPv6 != nil {
				if !p.ICMPv6.VerifyChecksum(p.IPv6.Src, p.IPv6.Dst) {
					badChecksum++
				}
			}
			if p.UDP != nil && p.IPv6 != nil {
				if !verifySegment(p.Ethernet.PayloadData[40:], p, packet.IPProtocolUDP, 6) {
					badChecksum++
				}
			}
			if p.TCP != nil && p.IPv6 != nil {
				if !verifySegment(p.Ethernet.PayloadData[40:], p, packet.IPProtocolTCP, 16) {
					badChecksum++
				}
			}
		}
	}
	if frames < 10000 {
		t.Errorf("only %d frames captured across the study", frames)
	}
	if parseErrors > 0 {
		t.Errorf("%d unparseable frames", parseErrors)
	}
	if badChecksum > 0 {
		t.Errorf("%d bad transport checksums", badChecksum)
	}
	t.Logf("verified %d frames", frames)
}

// verifySegment recomputes a v6 transport checksum over the raw segment.
func verifySegment(seg []byte, p *packet.Packet, proto packet.IPProtocol, ckOff int) bool {
	if len(seg) < ckOff+2 {
		return false
	}
	cp := append([]byte(nil), seg...)
	wire := uint16(cp[ckOff])<<8 | uint16(cp[ckOff+1])
	cp[ckOff], cp[ckOff+1] = 0, 0
	got := packet.TransportChecksum(p.IPv6.Src, p.IPv6.Dst, uint8(proto), cp)
	if got == 0 && proto == packet.IPProtocolUDP {
		got = 0xffff
	}
	return got == wire
}

// TestRDNSSOnlyVariantMechanism verifies the §5.2.1 Vizio finding: the TV
// resolves names in the baseline IPv6-only run (DNS via DHCPv6) but not in
// the RDNSS-only variant.
func TestRDNSSOnlyVariantMechanism(t *testing.T) {
	st := fullStudy(t)
	countViz := func(expID string) int {
		res := st.Result(expID)
		if res == nil {
			t.Fatalf("no result for %s", expID)
		}
		var mac packet.MAC
		for m, p := range st.MACToDevice {
			if p.Name == "Vizio TV" {
				mac = m
			}
		}
		n := 0
		for _, rec := range res.Capture.Records {
			p := packet.Parse(rec.Data)
			if p.Ethernet == nil || p.Ethernet.Src != mac {
				continue
			}
			if p.UDP != nil && p.UDP.DstPort == 53 {
				n++
			}
		}
		return n
	}
	if n := countViz("ipv6-only"); n == 0 {
		t.Error("Vizio TV sent no DNS in the baseline IPv6-only run")
	}
	if n := countViz("ipv6-only-rdnss"); n != 0 {
		t.Errorf("Vizio TV sent %d DNS queries in the RDNSS-only run (needs DHCPv6)", n)
	}
}

// TestStatefulVariantLeases verifies the stateful runs hand out IA_NA
// leases to exactly the DHCPv6-capable devices, and that only the four
// known devices source traffic from them.
func TestStatefulVariantLeases(t *testing.T) {
	st := fullStudy(t)
	res := st.Result("ipv6-only-stateful")
	leaseHolders := map[packet.MAC]bool{}
	for _, rec := range res.Capture.Records {
		p := packet.Parse(rec.Data)
		if p.UDP == nil || p.UDP.SrcPort != 547 {
			continue
		}
		m, err := dhcp6.Unmarshal(p.UDP.PayloadData)
		if err != nil || m.Type != dhcp6.Reply || m.IANA == nil || len(m.IANA.Addrs) == 0 {
			continue
		}
		leaseHolders[p.Ethernet.Dst] = true
	}
	if got := len(leaseHolders); got != 12 {
		t.Errorf("IA_NA lease holders = %d, want 12 (Table 5's stateful DHCPv6 devices)", got)
	}
}

// TestEufySkipsV6InDualStack verifies the Table 4 NDP regression: Eufy Hub
// emits NDP in IPv6-only but nothing at all over IPv6 in dual-stack.
func TestEufySkipsV6InDualStack(t *testing.T) {
	st := fullStudy(t)
	var mac packet.MAC
	for m, p := range st.MACToDevice {
		if p.Name == "Eufy Hub" {
			mac = m
		}
	}
	countV6 := func(expID string) int {
		n := 0
		for _, rec := range st.Result(expID).Capture.Records {
			p := packet.Parse(rec.Data)
			if p.Ethernet != nil && p.Ethernet.Src == mac && p.IPv6 != nil {
				n++
			}
		}
		return n
	}
	if countV6("ipv6-only") == 0 {
		t.Error("Eufy emitted no IPv6 in the IPv6-only run")
	}
	if n := countV6("dual-stack"); n != 0 {
		t.Errorf("Eufy emitted %d IPv6 frames in dual-stack (should skip)", n)
	}
}

// TestActiveDNSCoversAllDomains ensures the §4.3 active experiment covers
// the whole destination universe.
func TestActiveDNSCoversAllDomains(t *testing.T) {
	st := fullStudy(t)
	for _, pl := range st.Plans {
		for _, sp := range pl.Specs {
			if _, ok := st.ActiveDNS[sp.Name]; !ok {
				t.Fatalf("active DNS missing %s", sp.Name)
			}
		}
	}
	if len(st.ActiveDNS) < 2000 {
		t.Errorf("active DNS covered only %d domains", len(st.ActiveDNS))
	}
}

// TestDNSQueryNamesResolveInCloud: every name devices query is registered
// in the simulated Internet (no dangling destinations).
func TestDNSQueryNamesResolveInCloud(t *testing.T) {
	st := fullStudy(t)
	missing := map[string]bool{}
	for _, res := range st.Results {
		for _, rec := range res.Capture.Records {
			p := packet.Parse(rec.Data)
			if p.UDP == nil || p.UDP.DstPort != 53 {
				continue
			}
			m, err := dnsmsg.Unpack(p.UDP.PayloadData)
			if err != nil || m.Response || len(m.Questions) == 0 {
				continue
			}
			name := m.Questions[0].Name
			if st.Cloud.Lookup(name) == nil {
				missing[name] = true
			}
		}
	}
	if len(missing) > 0 {
		t.Errorf("%d queried names missing from the cloud registry: %v", len(missing), firstN(missing, 5))
	}
}

func firstN(m map[string]bool, n int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
		if len(out) == n {
			break
		}
	}
	return out
}
