package timeline

import (
	"context"
	"fmt"
	"sync"
	"time"

	"v6lab/internal/device"
	"v6lab/internal/experiment"
	"v6lab/internal/faults"
	"v6lab/internal/fleet"
	"v6lab/internal/netsim"
	"v6lab/internal/router"
	"v6lab/internal/telemetry"
	"v6lab/internal/world"
)

// Protocol timers the event schedule is built from. They mirror what the
// router's dnsmasq hands out: DHCPv4 leases of 3600 s (renew at T1 =
// lease/2), DHCPv6 IA_NA preferred lifetimes of 3600 s, and RAs with an
// 1800 s router lifetime.
const (
	renewEvery     = 1800 * time.Second
	renewRetryGap  = 60 * time.Second
	maxRenewRetry  = 2
	routerLifetime = 1800 * time.Second
	v4LeaseValid   = 3600 * time.Second
)

// evKind enumerates the scheduled event types.
type evKind uint8

const (
	evRA evKind = iota
	evBurst
	evSleep
	evWake
	evRenew4
	evRenew6
	evPowerCycle
	evRotate
)

// event is one scheduled occurrence. Ordering is (at, seq): seq is the
// creation order, so simultaneous events fire in the deterministic order
// they were scheduled — never in map or heap-internal order.
type event struct {
	at   time.Time
	seq  uint64
	kind evKind
	dev  int // device index, -1 for home-level events
	aux  int // retry counter for renewals
}

// evHeap is a plain binary min-heap of events keyed by (at, seq).
type evHeap struct{ a []event }

func (h *evHeap) len() int { return len(h.a) }

func (h *evHeap) less(i, j int) bool {
	if !h.a[i].at.Equal(h.a[j].at) {
		return h.a[i].at.Before(h.a[j].at)
	}
	return h.a[i].seq < h.a[j].seq
}

func (h *evHeap) push(e event) {
	h.a = append(h.a, e)
	for i := len(h.a) - 1; i > 0; {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.a[i], h.a[parent] = h.a[parent], h.a[i]
		i = parent
	}
}

func (h *evHeap) pop() event {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.a) && h.less(l, small) {
			small = l
		}
		if r < len(h.a) && h.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		h.a[i], h.a[small] = h.a[small], h.a[i]
		i = small
	}
	return top
}

// homeEngine drives one home's serial event queue over the horizon.
type homeEngine struct {
	cfg      Config
	ec       experiment.Config
	st       *experiment.Study
	net      *netsim.Network
	rt       *router.Router
	start    time.Time
	deadline time.Time
	res      *HomeTimeline

	h   evHeap
	seq uint64

	asleep  []bool
	sleptAt []time.Time
	devRng  []rng
	homeRng rng

	rotationIdx   int
	rotationAt    time.Time
	pendingReaddr bool
}

func (e *homeEngine) push(at time.Time, kind evKind, dev, aux int) {
	if !at.Before(e.deadline) {
		return
	}
	e.seq++
	e.h.push(event{at: at, seq: e.seq, kind: kind, dev: dev, aux: aux})
}

func (e *homeEngine) drain() error {
	_, err := e.net.Run(e.cfg.MaxFramesPerDrain)
	return err
}

// runHome builds and runs one fully self-contained home over the horizon.
func runHome(cfg Config, reg []*device.Profile, spec fleet.HomeSpec, scratch *experiment.Scratch) (*HomeTimeline, error) {
	profiles := make([]*device.Profile, len(spec.DeviceIndexes))
	for j, di := range spec.DeviceIndexes {
		profiles[j] = reg[di]
	}
	ec, ok := experiment.ConfigByID(spec.ConfigID)
	if !ok {
		return nil, fmt.Errorf("unknown connectivity config %q", spec.ConfigID)
	}
	w := world.Build(profiles)
	st := experiment.NewStudyWith(experiment.StudyOptions{
		World:     w,
		Capture:   experiment.CaptureNone,
		Telemetry: cfg.Telemetry,
	})
	// The timeline drives its own delivery loop over the worker's recycled
	// switch; the study contributes world, stacks, cloud clone, and clock.
	net := scratch.Network(st.Clock)
	rt := router.New(ec.Router, st.Cloud)
	rt.Attach(net)
	var fp *faults.Profile
	if cfg.Impairments != nil && cfg.Impairments.Active() {
		p := *cfg.Impairments
		if p.Seed == 0 {
			p.Seed = 1
		}
		fp = &p
		net.SetImpairment(faults.NewLink(p, faults.SubSeed(p.Seed, fmt.Sprintf("timeline-home-%d", spec.Index))))
		rt.Faults = faults.NewServices(p, st.Clock)
	}
	for _, s := range st.Stacks {
		s.Attach(net)
		s.Reset(ec.Mode, ec.V6Seq)
	}

	e := &homeEngine{
		cfg:     cfg,
		ec:      ec,
		st:      st,
		net:     net,
		rt:      rt,
		start:   st.Clock.Now(),
		res:     &HomeTimeline{Spec: spec},
		asleep:  make([]bool, len(st.Stacks)),
		sleptAt: make([]time.Time, len(st.Stacks)),
		devRng:  make([]rng, len(st.Stacks)),
		homeRng: rng{s: cfg.Seed ^ (uint64(spec.Index)+1)*0xd1342543de82ef95},
	}
	e.deadline = e.start.Add(cfg.Horizon)
	days := int((cfg.Horizon + 24*time.Hour - 1) / (24 * time.Hour))
	e.res.Days = make([]DayStat, days)

	// Boot: the same three phases a single experiment runs, then the event
	// loop takes over.
	rt.SendRouterAdvert()
	for _, s := range st.Stacks {
		s.Boot()
	}
	if err := e.drain(); err != nil {
		return nil, err
	}
	if fp != nil {
		if err := e.retryRounds(); err != nil {
			return nil, err
		}
	}
	for _, s := range st.Stacks {
		s.Announce()
	}
	if err := e.drain(); err != nil {
		return nil, err
	}

	e.schedule()
	if err := e.loop(); err != nil {
		return nil, err
	}
	e.res.FramesDelivered = net.Delivered()
	st.FoldCloudMetrics()
	return e.res, nil
}

// retryRounds mirrors the study engine's configuration-retry loop for
// faulted boots: back off, let every stack retransmit, drain, repeat.
func (e *homeEngine) retryRounds() error {
	backoff := 4 * time.Second
	for round := 0; round < 4; round++ {
		e.st.Clock.Advance(backoff)
		backoff *= 2
		sent := 0
		for _, s := range e.st.Stacks {
			sent += s.RetryConfig()
		}
		if sent == 0 {
			return nil
		}
		if err := e.drain(); err != nil {
			return err
		}
	}
	return nil
}

// schedule seeds the event queue: everything below is derived from
// (seed, home index, device index) alone, in device order, so the queue's
// contents are independent of anything another home (or worker) does.
func (e *homeEngine) schedule() {
	v6 := e.ec.Router.IPv6
	if v6 {
		e.push(e.start.Add(e.cfg.RAInterval), evRA, -1, 0)
		if e.cfg.RotationEvery > 0 {
			for k := 1; ; k++ {
				jitter := time.Duration(e.homeRng.intn(3600))*time.Second - 30*time.Minute
				at := e.start.Add(time.Duration(k)*e.cfg.RotationEvery + jitter)
				if !at.Before(e.deadline) {
					break
				}
				e.push(at, evRotate, -1, 0)
			}
		}
	}
	day0 := e.start.Truncate(24 * time.Hour)
	days := int(e.cfg.Horizon/(24*time.Hour)) + 2
	for i, s := range e.st.Stacks {
		r := &e.devRng[i]
		r.s = e.cfg.Seed ^ (uint64(e.res.Spec.Index)+1)*0xa0761d6478bd642f ^ (uint64(i)+1)*0xe7037ed1a0b428db
		shape := shapeFor(s.Prof.Category)
		for d := 0; d < days; d++ {
			base := day0.Add(time.Duration(d) * 24 * time.Hour)
			for k := 0; k < shape.burstsPerDay; k++ {
				at := base.Add(time.Duration(pickHour(r, &shape.hours))*time.Hour +
					time.Duration(r.intn(3600))*time.Second)
				if at.Before(e.start) {
					continue
				}
				e.push(at, evBurst, i, 0)
			}
		}
		if shape.sleeper {
			e.push(e.start.Add(durBetween(r, shape.awakeMin, shape.awakeMax)), evSleep, i, 0)
		}
		// Renewal timers start one lease-half after boot, staggered so a
		// home's devices don't all renew in the same instant.
		stagger := time.Duration(r.intn(600)) * time.Second
		if e.ec.Mode != device.ModeV6Only {
			e.push(e.start.Add(renewEvery+stagger), evRenew4, i, 0)
		}
		if v6 && e.ec.Router.StatefulDHCPv6 && s.Prof.StatefulDHCPv6 {
			e.push(e.start.Add(renewEvery+stagger+7*time.Second), evRenew6, i, 0)
		}
		e.push(e.start.Add(durBetween(r, 24*time.Hour, 96*time.Hour)), evPowerCycle, i, 0)
	}
}

// loop pops events in (time, seq) order until the horizon is reached.
func (e *homeEngine) loop() error {
	for e.h.len() > 0 {
		ev := e.h.pop()
		if !ev.at.Before(e.deadline) {
			break
		}
		e.st.Clock.AdvanceTo(ev.at)
		if err := e.handle(ev); err != nil {
			return err
		}
	}
	return nil
}

func (e *homeEngine) handle(ev event) error {
	switch ev.kind {
	case evRA:
		e.rt.SendRouterAdvert()
		if err := e.drain(); err != nil {
			return err
		}
		if e.pendingReaddr {
			// The RA just re-ran SLAAC on every awake device; announce the
			// fresh addresses so the router's neighbor table (the WAN reply
			// path) learns them, then record the outage.
			for _, s := range e.st.Stacks {
				if !s.Asleep() {
					s.Announce()
				}
			}
			if err := e.drain(); err != nil {
				return err
			}
			e.checkReaddr()
		}
		e.push(ev.at.Add(e.cfg.RAInterval), evRA, -1, 0)

	case evBurst:
		day := e.dayOf(ev.at)
		if e.asleep[ev.dev] {
			day.BurstsAsleep++
			return nil
		}
		day.BurstsAttempted++
		s := e.st.Stacks[ev.dev]
		s.RunBurst(e.st.Cloud)
		if err := e.drain(); err != nil {
			return err
		}
		if s.Functional() {
			day.BurstsOK++
		}

	case evSleep:
		if e.asleep[ev.dev] {
			return nil
		}
		s := e.st.Stacks[ev.dev]
		s.SetAsleep(true)
		e.asleep[ev.dev] = true
		e.sleptAt[ev.dev] = ev.at
		e.res.Sleeps++
		shape := shapeFor(s.Prof.Category)
		e.push(ev.at.Add(durBetween(&e.devRng[ev.dev], shape.asleepMin, shape.asleepMax)), evWake, ev.dev, 0)

	case evWake:
		s := e.st.Stacks[ev.dev]
		shape := shapeFor(s.Prof.Category)
		if e.asleep[ev.dev] {
			s.SetAsleep(false)
			e.asleep[ev.dev] = false
			e.res.Wakes++
			slept := ev.at.Sub(e.sleptAt[ev.dev])
			if e.ec.Router.IPv6 {
				raExpired := slept > routerLifetime && s.HasRA()
				if raExpired {
					s.LoseRA()
					e.res.RAExpiries++
				}
				if !s.HasRA() {
					// Waking devices solicit instead of waiting out the
					// periodic RA — recovery from expiry and from a
					// renumbering that happened mid-sleep alike.
					s.SolicitRouter()
					if err := e.drain(); err != nil {
						return err
					}
					if s.HasRA() {
						if raExpired {
							e.res.RARecoveries++
						}
						s.Announce()
						if err := e.drain(); err != nil {
							return err
						}
					}
				}
			}
			if slept > v4LeaseValid && s.V4Configured() {
				s.ExpireV4()
				e.res.V4.Expired++
			}
			if e.pendingReaddr {
				e.checkReaddr()
			}
		}
		e.push(ev.at.Add(durBetween(&e.devRng[ev.dev], shape.awakeMin, shape.awakeMax)), evSleep, ev.dev, 0)

	case evRenew4:
		s := e.st.Stacks[ev.dev]
		if e.asleep[ev.dev] {
			e.push(ev.at.Add(renewEvery), evRenew4, ev.dev, 0)
			return nil
		}
		e.res.V4.Attempts++
		hadLease := s.V4Configured()
		before := s.DHCP4Acks()
		s.RenewV4()
		if err := e.drain(); err != nil {
			return err
		}
		renewed := s.DHCP4Acks() > before
		switch {
		case renewed && !hadLease:
			e.res.V4.Reacquired++
			e.push(ev.at.Add(renewEvery), evRenew4, ev.dev, 0)
		case renewed && ev.aux == 0:
			e.res.V4.Renewed++
			e.push(ev.at.Add(renewEvery), evRenew4, ev.dev, 0)
		case renewed:
			e.res.V4.RenewedRetry++
			e.push(ev.at.Add(renewEvery), evRenew4, ev.dev, 0)
		case !hadLease:
			// The DISCOVER reacquisition path found no server this cycle.
			e.res.V4.Failed++
			e.push(ev.at.Add(renewEvery), evRenew4, ev.dev, 0)
		case ev.aux < maxRenewRetry:
			e.push(ev.at.Add(renewRetryGap), evRenew4, ev.dev, ev.aux+1)
		default:
			e.res.V4.Expired++
			s.ExpireV4()
			e.push(ev.at.Add(renewEvery), evRenew4, ev.dev, 0)
		}

	case evRenew6:
		s := e.st.Stacks[ev.dev]
		if e.asleep[ev.dev] || !s.StatefulConfigured() {
			e.push(ev.at.Add(renewEvery), evRenew6, ev.dev, 0)
			return nil
		}
		e.res.V6.Attempts++
		before := s.DHCP6Replies()
		s.RenewV6()
		if err := e.drain(); err != nil {
			return err
		}
		switch {
		case s.DHCP6Replies() > before && ev.aux == 0:
			e.res.V6.Renewed++
			e.push(ev.at.Add(renewEvery), evRenew6, ev.dev, 0)
		case s.DHCP6Replies() > before:
			e.res.V6.RenewedRetry++
			e.push(ev.at.Add(renewEvery), evRenew6, ev.dev, 0)
		case ev.aux < maxRenewRetry:
			e.push(ev.at.Add(renewRetryGap), evRenew6, ev.dev, ev.aux+1)
		default:
			e.res.V6.Failed++
			e.push(ev.at.Add(renewEvery), evRenew6, ev.dev, 0)
		}

	case evPowerCycle:
		s := e.st.Stacks[ev.dev]
		if e.asleep[ev.dev] {
			e.push(ev.at.Add(durBetween(&e.devRng[ev.dev], 12*time.Hour, 24*time.Hour)), evPowerCycle, ev.dev, 0)
			return nil
		}
		s.Reset(e.ec.Mode, e.ec.V6Seq)
		s.Boot()
		if err := e.drain(); err != nil {
			return err
		}
		s.Announce()
		if err := e.drain(); err != nil {
			return err
		}
		e.res.PowerCycles++
		if e.pendingReaddr {
			e.checkReaddr()
		}
		e.push(ev.at.Add(durBetween(&e.devRng[ev.dev], 48*time.Hour, 96*time.Hour)), evPowerCycle, ev.dev, 0)

	case evRotate:
		old := e.rt.DelegatedPrefix()
		e.rotationIdx++
		next := router.GUAPrefixN(e.rotationIdx)
		e.rt.Renumber(next)
		aborted := 0
		for _, s := range e.st.Stacks {
			aborted += s.AbortStaleConns(old)
			s.Renumber(old, next)
		}
		e.res.Rotations = append(e.res.Rotations, Rotation{
			At:           ev.at.Sub(e.start),
			ConnsAborted: aborted,
		})
		e.rotationAt = e.st.Clock.Now()
		e.pendingReaddr = true
	}
	return nil
}

// dayOf returns the DayStat bucket an event time falls into.
func (e *homeEngine) dayOf(at time.Time) *DayStat {
	d := int(at.Sub(e.start) / (24 * time.Hour))
	if d < 0 {
		d = 0
	}
	if d >= len(e.res.Days) {
		d = len(e.res.Days) - 1
	}
	return &e.res.Days[d]
}

// checkReaddr closes out a pending renumbering once any awake device
// holds an address in the new prefix: the recorded outage is the gap from
// the prefix withdrawal to that first re-addressing.
func (e *homeEngine) checkReaddr() {
	cur := e.rt.DelegatedPrefix()
	for _, s := range e.st.Stacks {
		if !s.Asleep() && s.HasGUAIn(cur) {
			rot := &e.res.Rotations[len(e.res.Rotations)-1]
			rot.Outage = e.st.Clock.Now().Sub(e.rotationAt)
			rot.Recovered = true
			e.pendingReaddr = false
			return
		}
	}
}

// Run executes the timeline over a background context.
func Run(cfg Config) (*Report, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext runs Homes independent simulated homes over the horizon on a
// bounded worker pool. Results merge in home index order, so the Report
// is byte-identical for any worker count. ctx is checked before each home
// starts and periodically inside each home's event loop; a cancelled
// timeline returns ctx.Err() with no Report — never a partial one.
func RunContext(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("timeline: Horizon must be positive, got %v", cfg.Horizon)
	}
	if cfg.Telemetry != nil {
		cfg.Telemetry.Gauge("timeline", "homes_planned", "Homes scheduled for this timeline run.").Set(int64(cfg.Homes))
	}
	var homesDone, burstsDone *telemetry.Counter
	if cfg.Telemetry != nil {
		homesDone = cfg.Telemetry.Counter("timeline", "homes_completed_total", "Timeline homes simulated to the horizon.")
		burstsDone = cfg.Telemetry.Counter("timeline", "bursts_total", "Workload bursts fired across all timeline homes.")
	}
	fc := cfg.fleetCfg()
	reg := device.Registry()
	results := make([]*HomeTimeline, cfg.Homes)
	errs := make([]error, cfg.Homes)
	jobs := make(chan int)
	var wg sync.WaitGroup
	workers := cfg.Workers
	if workers > cfg.Homes {
		workers = cfg.Homes
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := experiment.NewScratch()
			for i := range jobs {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				results[i], errs[i] = runHome(cfg, reg, fc.SpecForIn(reg, i), scratch)
				if hr := results[i]; hr != nil {
					if homesDone != nil {
						homesDone.Inc()
					}
					if burstsDone != nil {
						n := 0
						for _, d := range hr.Days {
							n += d.BurstsAttempted
						}
						burstsDone.Add(uint64(n))
					}
					telemetry.Emit(cfg.Progress, telemetry.Event{
						Scope:  "timeline",
						ID:     fmt.Sprintf("home %d/%d", i+1, cfg.Homes),
						Detail: fmt.Sprintf("%s, %d devices, %d frames", hr.Spec.ConfigID, len(hr.Spec.DeviceIndexes), hr.FramesDelivered),
					})
				}
			}
		}()
	}
	for i := 0; i < cfg.Homes; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("timeline: home %d: %w", i, err)
		}
	}
	return &Report{Cfg: cfg, Homes: results}, nil
}
