package timeline

import (
	"context"
	"testing"
	"time"
)

// BenchmarkTimeline is the headline long-horizon figure: one simulated
// week across 100 homes, the acceptance-scale run. Beyond ns/op it
// reports simulated-days/sec — the metric that says how far past a week
// the engine can reach in a fixed wall-clock budget. Recorded in
// BENCH_study.json and gated on allocs/op by cmd/benchjson in CI.
func BenchmarkTimeline(b *testing.B) {
	cfg := Config{
		Horizon: 7 * 24 * time.Hour,
		Homes:   100,
		Workers: 4,
		Seed:    1,
	}
	b.ReportAllocs()
	b.ResetTimer()
	var simDays float64
	for i := 0; i < b.N; i++ {
		rep, err := RunContext(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		simDays += rep.SimDays() * float64(len(rep.Homes))
	}
	b.ReportMetric(simDays/b.Elapsed().Seconds(), "simdays/sec")
}
