// Package timeline runs the testbed over long horizons — days to weeks of
// simulated time — by scheduling events instead of ticking: a per-home
// priority queue of seeded events (diurnal workload bursts, DHCPv4/v6
// lease renewals, RA lifetime expiries, device sleep/wake and power-cycle
// churn, ISP prefix rotations) advances netsim's clock from event to
// event, so a week of simulated time costs only the frames its events
// actually put on the wire.
//
// Every home is derived deterministically from (seed, home index) exactly
// like the fleet's, each home's event queue is strictly serial, and homes
// share no mutable state — so a timeline's report is byte-identical for
// any worker count: results merge in home index order, never completion
// order.
package timeline

import (
	"runtime"
	"time"

	"v6lab/internal/faults"
	"v6lab/internal/fleet"
	"v6lab/internal/telemetry"
)

// Config parameterizes a timeline run. The zero value of every field but
// Horizon selects a default, so Config{Horizon: 7 * 24 * time.Hour} is a
// complete specification.
type Config struct {
	// Horizon is the simulated duration to run; must be positive.
	Horizon time.Duration
	// Homes is the population size; 0 means 100.
	Homes int
	// Workers bounds the worker pool; 0 means GOMAXPROCS.
	Workers int
	// Seed derives every home's spec and event schedule; 0 means 1.
	Seed uint64
	// Fleet overrides the population mix (sizes, connectivity, policies).
	// Its Homes/Workers/Seed fields are ignored — the timeline's own govern.
	Fleet fleet.Config
	// RotationEvery is the ISP prefix-rotation period; 0 means 60 h
	// (about two flash renumberings per simulated week), negative disables
	// rotations.
	RotationEvery time.Duration
	// RAInterval is the router's periodic advertisement interval; 0 means
	// dnsmasq's 600 s. It bounds re-addressing outages after a rotation.
	RAInterval time.Duration
	// MaxFramesPerDrain bounds the frame deliveries of any one event's
	// drain; 0 means the study default (3,000,000).
	MaxFramesPerDrain int
	// Impairments, when active, installs the PR 3 fault profile on every
	// home as a long-horizon impairment: the link model on the switch and
	// the service-fault schedule (RA/DHCPv6/DNS drops, blackouts) on the
	// router. This is what makes lease renewals *fail*.
	Impairments *faults.Profile
	// Telemetry, when non-nil, instruments every home into the shared
	// registry (commuting adds only — snapshots are worker-count-free).
	Telemetry *telemetry.Registry
	// Progress, when non-nil, receives one event per completed home
	// (completion order — a live stream, not part of the report).
	Progress telemetry.Sink
}

// withDefaults resolves zero fields.
func (c Config) withDefaults() Config {
	if c.Homes <= 0 {
		c.Homes = 100
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.RotationEvery == 0 {
		c.RotationEvery = 60 * time.Hour
	}
	if c.RAInterval <= 0 {
		c.RAInterval = 600 * time.Second
	}
	if c.MaxFramesPerDrain <= 0 {
		c.MaxFramesPerDrain = 3_000_000
	}
	return c
}

// fleetCfg resolves the population-mix config the home specs derive from.
func (c Config) fleetCfg() fleet.Config {
	fc := c.Fleet
	fc.Homes = c.Homes
	fc.Seed = c.Seed
	fc.Workers = 1
	return fc
}

// RenewalFunnel counts lease-renewal outcomes across one home's horizon.
// Every attempt that resolves this cycle lands in exactly one of Renewed,
// RenewedRetry, Reacquired, or Failed; Expired additionally counts leases
// lost without an attempt — a device that slept past its lease wakes up
// expired.
type RenewalFunnel struct {
	// Attempts counts renewal messages sent (first tries and retries).
	Attempts int
	// Renewed counts first-try renewal successes.
	Renewed int
	// RenewedRetry counts renewals that succeeded only after retrying.
	RenewedRetry int
	// Expired counts leases dropped — the retry budget ran out, or the
	// device slept past the lease's valid lifetime.
	Expired int
	// Reacquired counts fresh acquisitions after an expiry.
	Reacquired int
	// Failed counts attempts that produced no lease at all this cycle.
	Failed int
}

func (f *RenewalFunnel) add(o *RenewalFunnel) {
	f.Attempts += o.Attempts
	f.Renewed += o.Renewed
	f.RenewedRetry += o.RenewedRetry
	f.Expired += o.Expired
	f.Reacquired += o.Reacquired
	f.Failed += o.Failed
}

// DayStat is one simulated day's workload outcome for a home.
type DayStat struct {
	// BurstsAttempted counts workload bursts fired on awake devices.
	BurstsAttempted int
	// BurstsOK counts bursts whose device passed its functionality test.
	BurstsOK int
	// BurstsAsleep counts bursts skipped because the device slept.
	BurstsAsleep int
}

// Rotation records one ISP prefix rotation and the re-addressing outage
// it caused.
type Rotation struct {
	// At is the rotation's offset from the timeline start.
	At time.Duration
	// Outage is how long the home had no address in the new prefix;
	// meaningful only when Recovered.
	Outage time.Duration
	// Recovered reports whether any device re-addressed before the
	// horizon ended.
	Recovered bool
	// ConnsAborted counts live flows cut by the prefix withdrawal.
	ConnsAborted int
}

// HomeTimeline is one home's measured long-horizon outcome.
type HomeTimeline struct {
	Spec fleet.HomeSpec

	// Days holds per-day workload stats, day 0 first.
	Days []DayStat

	// V4 and V6 are the DHCP lease-renewal funnels.
	V4, V6 RenewalFunnel

	// RAExpiries counts devices waking past the router lifetime with no
	// default router; RARecoveries counts how many re-armed by soliciting.
	RAExpiries, RARecoveries int

	// Sleeps, Wakes, and PowerCycles count the churn events that fired.
	Sleeps, Wakes, PowerCycles int

	// Rotations lists the home's prefix rotations in order.
	Rotations []Rotation

	// FramesDelivered counts L2 deliveries over the whole horizon.
	FramesDelivered int
}

// Report is a completed timeline run: per-home results in home index
// order plus the resolved configuration that produced them.
type Report struct {
	Cfg   Config
	Homes []*HomeTimeline
}

// Totals aggregates the population's outcomes; the renderer and tests
// consume it instead of re-walking homes.
type Totals struct {
	Homes, Devices int
	Days           []DayStat
	V4, V6         RenewalFunnel
	RAExpiries     int
	RARecoveries   int
	Sleeps, Wakes  int
	PowerCycles    int
	Rotations      int
	Recovered      int
	OutageTotal    time.Duration
	OutageMax      time.Duration
	ConnsAborted   int
	Frames         int
}

// Totals folds every home into population totals.
func (r *Report) Totals() Totals {
	days := int((r.Cfg.Horizon + 24*time.Hour - 1) / (24 * time.Hour))
	t := Totals{Homes: len(r.Homes), Days: make([]DayStat, days)}
	for _, h := range r.Homes {
		t.Devices += len(h.Spec.DeviceIndexes)
		for d, ds := range h.Days {
			if d < len(t.Days) {
				t.Days[d].BurstsAttempted += ds.BurstsAttempted
				t.Days[d].BurstsOK += ds.BurstsOK
				t.Days[d].BurstsAsleep += ds.BurstsAsleep
			}
		}
		t.V4.add(&h.V4)
		t.V6.add(&h.V6)
		t.RAExpiries += h.RAExpiries
		t.RARecoveries += h.RARecoveries
		t.Sleeps += h.Sleeps
		t.Wakes += h.Wakes
		t.PowerCycles += h.PowerCycles
		t.Frames += h.FramesDelivered
		for _, rot := range h.Rotations {
			t.Rotations++
			t.ConnsAborted += rot.ConnsAborted
			if rot.Recovered {
				t.Recovered++
				t.OutageTotal += rot.Outage
				if rot.Outage > t.OutageMax {
					t.OutageMax = rot.Outage
				}
			}
		}
	}
	return t
}

// SimDays reports the horizon in fractional simulated days.
func (r *Report) SimDays() float64 {
	return r.Cfg.Horizon.Hours() / 24
}
