package timeline

import (
	"time"

	"v6lab/internal/device"
)

// Diurnal activity model, shaped after the in-the-wild smart-home traffic
// studies in PAPERS.md ("Characterizing Smart Home IoT Traffic in the
// Wild", "An Analysis of Home IoT Network Traffic and Behaviour"): cameras
// and hubs chatter around the clock with a daytime lift, speakers and TVs
// peak in the evening, health wearables sync morning and evening, and
// appliances burst sparsely during waking hours.

// categoryShape is one category's long-horizon behavior.
type categoryShape struct {
	// burstsPerDay is how many workload bursts the device fires per
	// simulated day.
	burstsPerDay int
	// hours weights each local hour (0–23) for burst placement.
	hours [24]int
	// sleeper marks duty-cycled devices; awake/asleep bound the cycle
	// durations the per-device rng draws from.
	sleeper              bool
	awakeMin, awakeMax   time.Duration
	asleepMin, asleepMax time.Duration
}

// flat is the always-on baseline curve with a mild daytime lift.
var flat = [24]int{2, 2, 2, 2, 2, 2, 3, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 5, 5, 5, 4, 3, 2, 2}

// evening peaks 18:00–23:00 (speakers, TVs).
var evening = [24]int{1, 1, 0, 0, 0, 0, 1, 2, 2, 2, 2, 2, 3, 3, 3, 3, 4, 6, 8, 9, 9, 8, 5, 2}

// morningEvening is the wearable-sync double hump.
var morningEvening = [24]int{0, 0, 0, 0, 0, 1, 4, 6, 5, 2, 1, 1, 1, 1, 1, 1, 2, 4, 6, 6, 4, 2, 1, 0}

// daytime covers waking-hours appliance use.
var daytime = [24]int{0, 0, 0, 0, 0, 0, 2, 4, 5, 5, 4, 4, 5, 4, 4, 4, 4, 5, 5, 4, 3, 2, 1, 0}

// shapeFor returns the long-horizon shape of a device category.
func shapeFor(c device.Category) categoryShape {
	switch c {
	case device.Camera:
		return categoryShape{burstsPerDay: 16, hours: flat}
	case device.Gateway:
		return categoryShape{burstsPerDay: 12, hours: flat}
	case device.Speaker:
		return categoryShape{burstsPerDay: 14, hours: evening}
	case device.TV:
		return categoryShape{
			burstsPerDay: 8, hours: evening, sleeper: true,
			awakeMin: 3 * time.Hour, awakeMax: 7 * time.Hour,
			asleepMin: 6 * time.Hour, asleepMax: 14 * time.Hour,
		}
	case device.Health:
		return categoryShape{
			burstsPerDay: 6, hours: morningEvening, sleeper: true,
			awakeMin: 30 * time.Minute, awakeMax: 90 * time.Minute,
			asleepMin: 3 * time.Hour, asleepMax: 8 * time.Hour,
		}
	case device.HomeAuto:
		return categoryShape{
			burstsPerDay: 10, hours: morningEvening, sleeper: true,
			awakeMin: 1 * time.Hour, awakeMax: 3 * time.Hour,
			asleepMin: 1 * time.Hour, asleepMax: 4 * time.Hour,
		}
	case device.Appliance:
		return categoryShape{burstsPerDay: 4, hours: daytime}
	}
	return categoryShape{burstsPerDay: 6, hours: flat}
}

// pickHour draws an hour with probability proportional to the curve.
func pickHour(r *rng, hours *[24]int) int {
	total := 0
	for _, w := range hours {
		total += w
	}
	if total == 0 {
		return r.intn(24)
	}
	x := r.intn(total)
	for h, w := range hours {
		x -= w
		if x < 0 {
			return h
		}
	}
	return 23
}

// durBetween draws a duration uniformly from [lo, hi] at second
// granularity.
func durBetween(r *rng, lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	span := int((hi - lo) / time.Second)
	return lo + time.Duration(r.intn(span+1))*time.Second
}

// rng is the same splitmix64 generator the fleet derives home specs with,
// seeded independently per (home, device) so event schedules never
// correlate with population sampling.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}
