package timeline

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"v6lab/internal/faults"
	"v6lab/internal/telemetry"
)

// encodeHomes is the byte-identity fingerprint: the full per-home results
// in home index order. Cfg is excluded because Workers legitimately
// differs between the runs being compared.
func encodeHomes(t *testing.T, r *Report) []byte {
	t.Helper()
	b, err := json.Marshal(r.Homes)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

func TestTimelineWorkerCountInvariance(t *testing.T) {
	cfg := Config{
		Horizon:       48 * time.Hour,
		Homes:         12,
		Seed:          7,
		RotationEvery: 24 * time.Hour,
	}
	cfg.Workers = 1
	serial, err := Run(cfg)
	if err != nil {
		t.Fatalf("workers=1: %v", err)
	}
	cfg.Workers = 8
	parallel, err := Run(cfg)
	if err != nil {
		t.Fatalf("workers=8: %v", err)
	}
	a, b := encodeHomes(t, serial), encodeHomes(t, parallel)
	if !bytes.Equal(a, b) {
		t.Fatalf("reports differ between 1 and 8 workers:\n%d vs %d bytes", len(a), len(b))
	}
	if serial.Totals().Frames == 0 {
		t.Fatal("no frames delivered over a 2-day horizon")
	}
}

func TestTimelineRotationProducesOutages(t *testing.T) {
	r, err := Run(Config{
		Horizon:       72 * time.Hour,
		Homes:         8,
		Workers:       4,
		Seed:          3,
		RotationEvery: 24 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	tot := r.Totals()
	if tot.Rotations == 0 {
		t.Fatal("no prefix rotations over 3 days with RotationEvery=24h")
	}
	if tot.Recovered == 0 {
		t.Fatal("no home re-addressed after a rotation")
	}
	if tot.OutageTotal <= 0 {
		t.Fatalf("rotations recovered with zero outage: %+v", tot)
	}
	if tot.OutageMax > 2*time.Hour {
		t.Fatalf("implausible outage max %v (RA interval is 600s)", tot.OutageMax)
	}
}

func TestTimelineDiurnalAndChurn(t *testing.T) {
	r, err := Run(Config{
		Horizon:       72 * time.Hour,
		Homes:         10,
		Workers:       4,
		Seed:          5,
		RotationEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	tot := r.Totals()
	if len(tot.Days) != 3 {
		t.Fatalf("want 3 day buckets, got %d", len(tot.Days))
	}
	for d, ds := range tot.Days {
		if ds.BurstsAttempted == 0 {
			t.Fatalf("day %d: no bursts attempted", d)
		}
		if ds.BurstsOK == 0 {
			t.Fatalf("day %d: no bursts succeeded", d)
		}
	}
	if tot.Sleeps == 0 || tot.Wakes == 0 {
		t.Fatalf("no sleep/wake churn: %+v", tot)
	}
	if tot.PowerCycles == 0 {
		t.Fatal("no power cycles over 3 days")
	}
	if tot.V4.Attempts == 0 || tot.V4.Renewed == 0 {
		t.Fatalf("v4 renewal funnel empty: %+v", tot.V4)
	}
	if tot.V6.Attempts == 0 || tot.V6.Renewed == 0 {
		t.Fatalf("v6 renewal funnel empty: %+v", tot.V6)
	}
	if tot.RAExpiries == 0 {
		t.Fatal("no RA expiries despite multi-hour sleepers")
	}
}

func TestTimelineImpairedRenewalsFail(t *testing.T) {
	prof, err := faults.ByName("flaky-dnsmasq")
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(Config{
		Horizon:       48 * time.Hour,
		Homes:         6,
		Workers:       2,
		Seed:          11,
		RotationEvery: -1,
		Impairments:   &prof,
	})
	if err != nil {
		t.Fatal(err)
	}
	tot := r.Totals()
	if tot.V4.RenewedRetry+tot.V4.Expired+tot.V4.Failed == 0 {
		t.Fatalf("flaky-dnsmasq produced a perfect v4 funnel: %+v", tot.V4)
	}
}

func TestTimelineCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	sink := telemetry.FuncSink(func(telemetry.Event) {
		once.Do(cancel) // cancel mid-run, after the first home completes
	})
	r, err := RunContext(ctx, Config{
		Horizon:  72 * time.Hour,
		Homes:    16,
		Workers:  2,
		Seed:     9,
		Progress: sink,
	})
	if err == nil {
		t.Fatal("cancelled run returned no error")
	}
	if r != nil {
		t.Fatalf("cancelled run returned a partial report with %d homes", len(r.Homes))
	}
}

func TestTimelineRejectsNonPositiveHorizon(t *testing.T) {
	for _, h := range []time.Duration{0, -time.Hour} {
		if _, err := Run(Config{Horizon: h, Homes: 1}); err == nil {
			t.Fatalf("horizon %v accepted", h)
		}
	}
}
