// Package addr implements the IPv6 address taxonomy the study's analysis
// depends on: classification into global unicast (GUA), unique local (ULA),
// link-local (LLA), and multicast; derivation and detection of EUI-64
// interface identifiers (the privacy risk at the center of RQ4); and
// generation of RFC 8981-style randomized interface identifiers.
package addr

import (
	"fmt"
	"math/rand"
	"net/netip"

	"v6lab/internal/packet"
)

// Kind classifies an IPv6 address.
type Kind int

// The address kinds the study distinguishes (Table 5).
const (
	KindInvalid Kind = iota
	KindUnspecified
	KindLoopback
	KindLLA // link-local unicast, fe80::/10
	KindULA // unique local, fc00::/7
	KindGUA // global unicast
	KindMulticast
)

// String names the kind as the paper's tables do.
func (k Kind) String() string {
	switch k {
	case KindUnspecified:
		return "unspecified"
	case KindLoopback:
		return "loopback"
	case KindLLA:
		return "LLA"
	case KindULA:
		return "ULA"
	case KindGUA:
		return "GUA"
	case KindMulticast:
		return "multicast"
	}
	return "invalid"
}

// Classify returns the Kind of an IPv6 address. IPv4 and 4-in-6 addresses
// classify as KindInvalid: the study treats them through the IPv4 pipeline.
func Classify(a netip.Addr) Kind {
	if !a.IsValid() || !a.Is6() || a.Is4In6() {
		return KindInvalid
	}
	switch {
	case a == netip.IPv6Unspecified():
		return KindUnspecified
	case a == netip.IPv6Loopback():
		return KindLoopback
	case a.IsMulticast():
		return KindMulticast
	case a.IsLinkLocalUnicast():
		return KindLLA
	case a.As16()[0]&0xfe == 0xfc:
		return KindULA
	default:
		return KindGUA
	}
}

// InterfaceID returns the low 64 bits of the address.
func InterfaceID(a netip.Addr) [8]byte {
	b := a.As16()
	return [8]byte(b[8:16])
}

// EUI64FromMAC expands a 48-bit MAC into the modified EUI-64 interface
// identifier (RFC 4291 appendix A): the ff:fe pattern is inserted in the
// middle and the universal/local bit is inverted.
func EUI64FromMAC(mac packet.MAC) [8]byte {
	return [8]byte{mac[0] ^ 0x02, mac[1], mac[2], 0xff, 0xfe, mac[3], mac[4], mac[5]}
}

// MACFromEUI64 reverses EUI64FromMAC, reporting ok=false when the
// identifier does not carry the ff:fe signature.
func MACFromEUI64(iid [8]byte) (packet.MAC, bool) {
	if iid[3] != 0xff || iid[4] != 0xfe {
		return packet.MAC{}, false
	}
	return packet.MAC{iid[0] ^ 0x02, iid[1], iid[2], iid[5], iid[6], iid[7]}, true
}

// IsEUI64 reports whether the address's interface identifier follows the
// modified EUI-64 format (the ff:fe signature), the study's tracker-visible
// fingerprint.
func IsEUI64(a netip.Addr) bool {
	if !a.Is6() || a.Is4In6() {
		return false
	}
	iid := InterfaceID(a)
	return iid[3] == 0xff && iid[4] == 0xfe
}

// EUI64MatchesMAC reports whether the address embeds exactly this MAC, the
// check the analysis pipeline uses to tie an exposed address to a device.
func EUI64MatchesMAC(a netip.Addr, mac packet.MAC) bool {
	got, ok := MACFromEUI64(InterfaceID(a))
	return ok && got == mac
}

// IIDClass buckets interface identifiers by hitlist predictability: the
// attacker's view of the address space (the "Unconsidered Installations"
// taxonomy). EUI-64 identifiers expand from small vendor MAC blocks,
// low-byte identifiers from a counting sweep; random identifiers are
// 2^64-sparse and only discoverable through leaks.
type IIDClass int

// The identifier classes a v6 hitlist generator distinguishes.
const (
	// IIDRandom is an RFC 8981 / RFC 7217-style identifier: no structure
	// a generator can exploit.
	IIDRandom IIDClass = iota
	// IIDEUI64 carries the ff:fe signature, so the identifier space
	// collapses to the 48-bit MAC space — and in practice to the few
	// dense OUI blocks IoT vendors ship.
	IIDEUI64
	// IIDLowByte is a structured value in the low 24 bits (router
	// addresses, sequential DHCPv6 leases in small conventional pools):
	// found by sweeping prefix::1..prefix::N and the pool offsets.
	IIDLowByte
)

// String names the class as the discovery reports do.
func (c IIDClass) String() string {
	switch c {
	case IIDEUI64:
		return "eui64"
	case IIDLowByte:
		return "low-byte"
	}
	return "random"
}

// ClassifyIID buckets an interface identifier. EUI-64 wins over low-byte:
// an identifier with the ff:fe signature expands from MAC space even when
// its OUI bytes are zero.
func ClassifyIID(iid [8]byte) IIDClass {
	if iid[3] == 0xff && iid[4] == 0xfe {
		return IIDEUI64
	}
	if iid[0] == 0 && iid[1] == 0 && iid[2] == 0 && iid[3] == 0 && iid[4] == 0 {
		return IIDLowByte
	}
	return IIDRandom
}

// LowByteIID builds the n-th identifier of the pool at the given base
// byte: base 0 is the classic prefix::n sweep; nonzero bases cover the
// conventional CPE DHCPv6 pool offsets (prefix::base:n).
func LowByteIID(base byte, n uint16) [8]byte {
	return [8]byte{0, 0, 0, 0, 0, base, byte(n >> 8), byte(n)}
}

// FromPrefixIID composes an address from a /64 prefix and an interface
// identifier.
func FromPrefixIID(prefix netip.Prefix, iid [8]byte) netip.Addr {
	if prefix.Bits() > 64 {
		panic(fmt.Sprintf("addr: prefix %v longer than /64", prefix))
	}
	b := prefix.Addr().As16()
	copy(b[8:], iid[:])
	return netip.AddrFrom16(b)
}

// EUI64Addr composes an EUI-64 SLAAC address from a prefix and MAC.
func EUI64Addr(prefix netip.Prefix, mac packet.MAC) netip.Addr {
	return FromPrefixIID(prefix, EUI64FromMAC(mac))
}

// RandomIID draws an RFC 8981-style randomized interface identifier from
// rng. The universal/local bit is cleared and the ff:fe signature is
// avoided so the identifier can never be mistaken for EUI-64.
func RandomIID(rng *rand.Rand) [8]byte {
	var iid [8]byte
	for {
		for i := range iid {
			iid[i] = byte(rng.Intn(256))
		}
		iid[0] &^= 0x02 // local-scope bit clear per RFC 8981 §3.4
		if iid[3] == 0xff && iid[4] == 0xfe {
			continue
		}
		var zero [8]byte
		if iid == zero {
			continue
		}
		return iid
	}
}

// PrivacyAddr composes a temporary privacy address from a prefix using rng.
func PrivacyAddr(prefix netip.Prefix, rng *rand.Rand) netip.Addr {
	return FromPrefixIID(prefix, RandomIID(rng))
}

// LinkLocalPrefix is fe80::/64.
var LinkLocalPrefix = netip.MustParsePrefix("fe80::/64")

// LinkLocalEUI64 returns the fe80:: EUI-64 address for mac.
func LinkLocalEUI64(mac packet.MAC) netip.Addr {
	return EUI64Addr(LinkLocalPrefix, mac)
}

// SolicitedNodeMulticast maps an address to its solicited-node multicast
// group ff02::1:ffXX:XXXX (RFC 4291 §2.7.1), the DAD/NS destination.
func SolicitedNodeMulticast(a netip.Addr) netip.Addr {
	b := a.As16()
	return netip.AddrFrom16([16]byte{
		0xff, 0x02, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0xff, b[13], b[14], b[15],
	})
}

// Well-known multicast groups and their Ethernet mappings.
var (
	AllNodesMulticast   = netip.MustParseAddr("ff02::1")
	AllRoutersMulticast = netip.MustParseAddr("ff02::2")
)

// MulticastMAC maps an IPv6 multicast address to its 33:33 Ethernet
// group address (RFC 2464 §7).
func MulticastMAC(a netip.Addr) packet.MAC {
	b := a.As16()
	return packet.MAC{0x33, 0x33, b[12], b[13], b[14], b[15]}
}

// EtherDstFor picks the Ethernet destination for an IPv6 destination:
// multicast addresses map through MulticastMAC; unicast requires neighbor
// resolution, so the caller supplies the resolved MAC.
func EtherDstFor(dst netip.Addr, resolved packet.MAC) packet.MAC {
	if dst.IsMulticast() {
		return MulticastMAC(dst)
	}
	return resolved
}
