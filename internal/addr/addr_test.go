package addr

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"

	"v6lab/internal/packet"
)

func TestClassify(t *testing.T) {
	cases := map[string]Kind{
		"::":                        KindUnspecified,
		"::1":                       KindLoopback,
		"fe80::1":                   KindLLA,
		"fe80::aabb:ccff:fedd:eeff": KindLLA,
		"fd42:6c61:6221::5":         KindULA,
		"fc00::1":                   KindULA,
		"2001:470:8:100::10":        KindGUA,
		"2001:4860:4860::8888":      KindGUA,
		"ff02::1":                   KindMulticast,
		"ff02::1:ff00:1":            KindMulticast,
		"::ffff:192.168.1.1":        KindInvalid,
	}
	for s, want := range cases {
		if got := Classify(netip.MustParseAddr(s)); got != want {
			t.Errorf("Classify(%s) = %v, want %v", s, got, want)
		}
	}
	if Classify(netip.MustParseAddr("10.0.0.1")) != KindInvalid {
		t.Error("IPv4 should be invalid")
	}
	if Classify(netip.Addr{}) != KindInvalid {
		t.Error("zero Addr should be invalid")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindGUA: "GUA", KindULA: "ULA", KindLLA: "LLA",
		KindMulticast: "multicast", KindUnspecified: "unspecified",
		KindLoopback: "loopback", KindInvalid: "invalid",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

func TestEUI64KnownVector(t *testing.T) {
	// RFC 4291 appendix A style: 34:56:78:9A:BC:DE -> 3656:78ff:fe9a:bcde.
	mac := packet.MAC{0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde}
	iid := EUI64FromMAC(mac)
	want := [8]byte{0x36, 0x56, 0x78, 0xff, 0xfe, 0x9a, 0xbc, 0xde}
	if iid != want {
		t.Fatalf("EUI64FromMAC = %x, want %x", iid, want)
	}
	got, ok := MACFromEUI64(iid)
	if !ok || got != mac {
		t.Fatalf("MACFromEUI64 = %v, %v", got, ok)
	}
	a := EUI64Addr(netip.MustParsePrefix("2001:db8::/64"), mac)
	if a != netip.MustParseAddr("2001:db8::3656:78ff:fe9a:bcde") {
		t.Errorf("EUI64Addr = %v", a)
	}
	if !IsEUI64(a) {
		t.Error("IsEUI64 false for EUI-64 address")
	}
	if !EUI64MatchesMAC(a, mac) {
		t.Error("EUI64MatchesMAC false")
	}
	if EUI64MatchesMAC(a, packet.MAC{1, 2, 3, 4, 5, 6}) {
		t.Error("EUI64MatchesMAC true for wrong MAC")
	}
}

func TestLinkLocalEUI64(t *testing.T) {
	mac := packet.MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x01}
	a := LinkLocalEUI64(mac)
	if Classify(a) != KindLLA {
		t.Errorf("kind = %v", Classify(a))
	}
	if !EUI64MatchesMAC(a, mac) {
		t.Error("LLA does not embed MAC")
	}
}

func TestRandomIIDNeverEUI64(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	prefix := netip.MustParsePrefix("2001:db8:1::/64")
	for i := 0; i < 500; i++ {
		a := PrivacyAddr(prefix, rng)
		if IsEUI64(a) {
			t.Fatalf("privacy address %v detected as EUI-64", a)
		}
		if Classify(a) != KindGUA {
			t.Fatalf("privacy address %v not GUA", a)
		}
		iid := InterfaceID(a)
		if iid[0]&0x02 != 0 {
			t.Fatalf("universal/local bit set in random IID %x", iid)
		}
	}
}

func TestSolicitedNodeMulticast(t *testing.T) {
	a := netip.MustParseAddr("2001:db8::1:800:200e:8c6c")
	want := netip.MustParseAddr("ff02::1:ff0e:8c6c")
	if got := SolicitedNodeMulticast(a); got != want {
		t.Errorf("SolicitedNodeMulticast = %v, want %v", got, want)
	}
}

func TestMulticastMAC(t *testing.T) {
	if got := MulticastMAC(AllNodesMulticast); got != (packet.MAC{0x33, 0x33, 0, 0, 0, 1}) {
		t.Errorf("all-nodes MAC = %v", got)
	}
	snm := SolicitedNodeMulticast(netip.MustParseAddr("fe80::1234:5678:9abc:def0"))
	if got := MulticastMAC(snm); got != (packet.MAC{0x33, 0x33, 0xff, 0xbc, 0xde, 0xf0}) {
		t.Errorf("solicited-node MAC = %v", got)
	}
}

func TestEtherDstFor(t *testing.T) {
	resolved := packet.MAC{1, 2, 3, 4, 5, 6}
	if got := EtherDstFor(AllNodesMulticast, resolved); got[0] != 0x33 {
		t.Errorf("multicast dst = %v", got)
	}
	if got := EtherDstFor(netip.MustParseAddr("fe80::1"), resolved); got != resolved {
		t.Errorf("unicast dst = %v", got)
	}
}

// Property: MAC -> EUI-64 -> MAC is the identity for all MACs.
func TestQuickEUI64RoundTrip(t *testing.T) {
	f := func(m [6]byte) bool {
		mac := packet.MAC(m)
		got, ok := MACFromEUI64(EUI64FromMAC(mac))
		return ok && got == mac
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: composing a prefix with an IID preserves both halves.
func TestQuickFromPrefixIID(t *testing.T) {
	prefix := netip.MustParsePrefix("fd00:1:2:3::/64")
	f := func(iid [8]byte) bool {
		a := FromPrefixIID(prefix, iid)
		if InterfaceID(a) != iid {
			return false
		}
		return prefix.Contains(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFromPrefixIIDPanicsOnLongPrefix(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for /96 prefix")
		}
	}()
	FromPrefixIID(netip.MustParsePrefix("2001:db8::/96"), [8]byte{})
}

func TestClassifyIID(t *testing.T) {
	mac := packet.MAC{0x00, 0x17, 0x88, 0x10, 0x20, 0x01}
	cases := []struct {
		name string
		iid  [8]byte
		want IIDClass
	}{
		{"eui64", EUI64FromMAC(mac), IIDEUI64},
		{"low-byte-1", LowByteIID(0, 1), IIDLowByte},
		{"low-byte-513", LowByteIID(0, 513), IIDLowByte},
		{"dhcp-pool-lease", LowByteIID(0x10, 7), IIDLowByte},
		{"zero", [8]byte{}, IIDLowByte},
		{"eui64-zero-oui", [8]byte{0, 0, 0, 0xff, 0xfe, 0, 0, 7}, IIDEUI64},
		{"random", [8]byte{0x1c, 0x9a, 0x44, 0x02, 0x77, 0xe1, 0x03, 0x5b}, IIDRandom},
		{"high-bytes-set", [8]byte{0, 0, 0, 0x10, 0, 0, 0, 1}, IIDRandom},
	}
	for _, c := range cases {
		if got := ClassifyIID(c.iid); got != c.want {
			t.Errorf("%s: ClassifyIID(%x) = %v, want %v", c.name, c.iid, got, c.want)
		}
	}
}

func TestIIDClassString(t *testing.T) {
	for c, want := range map[IIDClass]string{
		IIDRandom: "random", IIDEUI64: "eui64", IIDLowByte: "low-byte",
	} {
		if c.String() != want {
			t.Errorf("IIDClass(%d).String() = %q, want %q", c, c.String(), want)
		}
	}
}

// The discovery engine's core assumption: EUI-64 and low-byte addresses
// are hitlist-predictable (an attacker regenerates them from the MAC or a
// counting sweep), while RFC 8981 privacy identifiers never land in a
// predictable class.
func TestHitlistPredictability(t *testing.T) {
	prefix := netip.MustParsePrefix("2001:470:8:100::/64")
	mac := packet.MAC{0x00, 0x17, 0x88, 0x33, 0x44, 0x55}

	// EUI-64: the attacker reconstructs the exact address from the MAC.
	slaac := EUI64Addr(prefix, mac)
	if ClassifyIID(InterfaceID(slaac)) != IIDEUI64 {
		t.Fatalf("SLAAC address %v not classified eui64", slaac)
	}
	if guess := EUI64Addr(prefix, mac); guess != slaac {
		t.Fatalf("EUI-64 regeneration mismatch: %v != %v", guess, slaac)
	}

	// Low-byte: a DHCPv6-lease-style address falls to a prefix::N sweep.
	lease := FromPrefixIID(prefix, LowByteIID(0x10, 7))
	if ClassifyIID(InterfaceID(lease)) != IIDLowByte {
		t.Fatalf("lease address %v not classified low-byte", lease)
	}
	found := false
	for n := uint16(1); n <= 256; n++ {
		if FromPrefixIID(prefix, LowByteIID(0x10, n)) == lease {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("low-byte sweep missed the lease address")
	}

	// Privacy: randomized identifiers never classify as predictable.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 1000; i++ {
		iid := RandomIID(rng)
		if c := ClassifyIID(iid); c != IIDRandom {
			t.Fatalf("RandomIID produced predictable class %v: %x", c, iid)
		}
	}
}
