package router

// NAT44 edge cases: source-port collisions between devices and between
// protocols, lease stability across device re-attachment, and
// deterministic lease ordering.

import (
	"net/netip"
	"testing"
	"time"

	"v6lab/internal/cloud"
	"v6lab/internal/dhcp4"
	"v6lab/internal/netsim"
	"v6lab/internal/packet"
)

var devMAC2 = packet.MAC{0x02, 0xde, 0xad, 0x00, 0x00, 0x02}

func natSetup(t *testing.T) (*netsim.Network, *Router, *scriptHost, *scriptHost, *cloud.Cloud) {
	t.Helper()
	n, r, h1, cl := setup(t, Config{IPv4: true})
	h2 := &scriptHost{}
	h2.port = n.Attach(h2, devMAC2)
	return n, r, h1, h2, cl
}

func sendUDPv4(t *testing.T, h *scriptHost, mac packet.MAC, src netip.Addr, sport uint16, dst netip.Addr, dport uint16, payload []byte) {
	t.Helper()
	send(t, h,
		&packet.Ethernet{Dst: RouterMAC, Src: mac, Type: packet.EtherTypeIPv4},
		&packet.IPv4{Protocol: packet.IPProtocolUDP, Src: src, Dst: dst},
		&packet.UDP{SrcPort: sport, DstPort: dport, Src: src, Dst: dst},
		packet.Raw(payload))
}

// TestNATSourcePortCollisionAcrossDevices: two devices using the same
// local source port must get distinct translated ports and each reply
// must return to the right device.
func TestNATSourcePortCollisionAcrossDevices(t *testing.T) {
	n, r, h1, h2, _ := natSetup(t)
	ip1 := netip.MustParseAddr("192.168.1.50")
	ip2 := netip.MustParseAddr("192.168.1.51")
	ntpReq := make([]byte, 48)
	ntpReq[0] = 0x1b
	sendUDPv4(t, h1, devMAC, ip1, 5000, cloud.NTPv4, 123, ntpReq)
	sendUDPv4(t, h2, devMAC2, ip2, 5000, cloud.NTPv4, 123, ntpReq)
	run(t, n)
	if r.ForwardedV4 != 2 {
		t.Fatalf("ForwardedV4 = %d, want 2", r.ForwardedV4)
	}
	for i, h := range []*scriptHost{h1, h2} {
		p := h.last()
		if p == nil || p.UDP == nil || p.UDP.SrcPort != 123 {
			t.Fatalf("host %d: no NTP reply: %+v", i+1, p)
		}
		if p.UDP.DstPort != 5000 {
			t.Fatalf("host %d: reply port %d, want untranslated 5000", i+1, p.UDP.DstPort)
		}
		want := []netip.Addr{ip1, ip2}[i]
		if p.IPv4.Dst != want {
			t.Fatalf("host %d: reply delivered to %v, want %v", i+1, p.IPv4.Dst, want)
		}
	}
}

// TestNATSameTupleDifferentProtocols: a TCP flow and a UDP flow sharing a
// device source port are distinct natKey mappings; replies for both must
// translate back (regression: natBack used to ignore the protocol, so the
// second protocol's reverse mapping was never installed).
func TestNATSameTupleDifferentProtocols(t *testing.T) {
	n, _, h, _, cl := natSetup(t)
	d := cl.AddDomain("svc.example", cloud.PartyFirst, false, false)
	ip := netip.MustParseAddr("192.168.1.50")
	// TCP SYN from :7000 to the service's web port.
	send(t, h,
		&packet.Ethernet{Dst: RouterMAC, Src: devMAC, Type: packet.EtherTypeIPv4},
		&packet.IPv4{Protocol: packet.IPProtocolTCP, Src: ip, Dst: d.V4[0]},
		&packet.TCP{SrcPort: 7000, DstPort: 443, Seq: 1, Flags: packet.TCPFlagSYN, Src: ip, Dst: d.V4[0]})
	run(t, n)
	p := h.last()
	if p == nil || p.TCP == nil || !p.TCP.HasFlag(packet.TCPFlagSYN|packet.TCPFlagACK) {
		t.Fatalf("no SYN-ACK: %+v", p)
	}
	if p.TCP.DstPort != 7000 || p.IPv4.Dst != ip {
		t.Fatalf("SYN-ACK misdelivered: port %d to %v", p.TCP.DstPort, p.IPv4.Dst)
	}
	// UDP from the same :7000 to NTP must ALSO get its reply back.
	h.rx = nil
	ntpReq := make([]byte, 48)
	ntpReq[0] = 0x1b
	sendUDPv4(t, h, devMAC, ip, 7000, cloud.NTPv4, 123, ntpReq)
	run(t, n)
	p = h.last()
	if p == nil || p.UDP == nil || p.UDP.SrcPort != 123 || p.UDP.DstPort != 7000 {
		t.Fatalf("UDP reply lost on shared source port: %+v", p)
	}
}

func discover(t *testing.T, h *scriptHost, mac packet.MAC, xid uint32) {
	t.Helper()
	msg := &dhcp4.Message{Op: 1, XID: xid, ClientMAC: mac, Type: dhcp4.Discover}
	wire, err := msg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	bc := netip.MustParseAddr("255.255.255.255")
	zero := netip.MustParseAddr("0.0.0.0")
	send(t, h,
		&packet.Ethernet{Dst: packet.BroadcastMAC, Src: mac, Type: packet.EtherTypeIPv4},
		&packet.IPv4{Protocol: packet.IPProtocolUDP, Src: zero, Dst: bc},
		&packet.UDP{SrcPort: dhcp4.ClientPort, DstPort: dhcp4.ServerPort, Src: zero, Dst: bc},
		packet.Raw(wire))
}

// TestLeaseReuseAfterReattach: a device that reboots (fresh DISCOVER,
// same MAC) gets its previous address back, dnsmasq-style.
func TestLeaseReuseAfterReattach(t *testing.T) {
	n, r, h, _, _ := natSetup(t)
	discover(t, h, devMAC, 1)
	run(t, n)
	first, ok := r.LeaseFor(devMAC)
	if !ok {
		t.Fatal("no lease after first DISCOVER")
	}
	// Re-attach: the device falls off the network and boots again.
	discover(t, h, devMAC, 2)
	run(t, n)
	second, ok := r.LeaseFor(devMAC)
	if !ok || second != first {
		t.Fatalf("lease changed across re-attach: %v -> %v", first, second)
	}
	// Another device must not steal it.
	h2 := &scriptHost{}
	h2.port = n.Attach(h2, devMAC2)
	discover(t, h2, devMAC2, 3)
	run(t, n)
	if other, _ := r.LeaseFor(devMAC2); other == first {
		t.Fatalf("second device assigned the same lease %v", other)
	}
}

// TestDeterministicLeaseOrdering: leases are handed out in DISCOVER
// order from a fixed base, so two identical boots produce identical
// address plans (the determinism the capture pipeline depends on).
func TestDeterministicLeaseOrdering(t *testing.T) {
	macs := []packet.MAC{
		{0x02, 0xaa, 0, 0, 0, 1},
		{0x02, 0xaa, 0, 0, 0, 2},
		{0x02, 0xaa, 0, 0, 0, 3},
	}
	boot := func() []netip.Addr {
		cl := cloud.New()
		n := netsim.NewNetwork(netsim.NewClock(time.Date(2024, 4, 5, 0, 0, 0, 0, time.UTC)))
		r := New(Config{IPv4: true}, cl)
		r.Attach(n)
		var out []netip.Addr
		for i, mac := range macs {
			h := &scriptHost{}
			h.port = n.Attach(h, mac)
			discover(t, h, mac, uint32(i+10))
			run(t, n)
			lease, ok := r.LeaseFor(mac)
			if !ok {
				t.Fatalf("no lease for %v", mac)
			}
			out = append(out, lease)
		}
		return out
	}
	first := boot()
	for i, want := range []string{"192.168.1.101", "192.168.1.102", "192.168.1.103"} {
		if first[i] != netip.MustParseAddr(want) {
			t.Fatalf("lease[%d] = %v, want %s", i, first[i], want)
		}
	}
	second := boot()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("lease ordering not reproducible: %v vs %v", first, second)
		}
	}
}
