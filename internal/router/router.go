// Package router implements the testbed's home gateway: the Linux router
// of the paper's Mon(IoT)r lab with its dnsmasq services (DHCPv4, stateless
// and stateful DHCPv6, SLAAC router advertisements with RDNSS), ARP and
// NDP responders, NAT44 toward the simulated Internet, and routed IPv6
// over a Hurricane-Electric-style tunnel prefix.
package router

import (
	"encoding/binary"
	"net/netip"

	"v6lab/internal/addr"
	"v6lab/internal/cloud"
	"v6lab/internal/conntrack"
	"v6lab/internal/faults"
	"v6lab/internal/firewall"
	"v6lab/internal/netsim"
	"v6lab/internal/packet"
)

// Network constants for the simulated LAN and WAN, chosen to mirror the
// paper's setup (§4.1): private IPv4 behind NAT, an HE-tunnel routed /64,
// and an additionally advertised ULA prefix for local-protocol devices.
var (
	LANv4Prefix = netip.MustParsePrefix("192.168.1.0/24")
	RouterV4    = netip.MustParseAddr("192.168.1.1")
	WANv4       = netip.MustParseAddr("203.0.113.2")
	GUAPrefix   = netip.MustParsePrefix("2001:470:8:100::/64")
	ULAPrefix   = netip.MustParsePrefix("fd42:6c61:6221::/64")
	RouterGUA   = netip.MustParseAddr("2001:470:8:100::1")
	RouterLLA   = netip.MustParseAddr("fe80::1")
	RouterMAC   = packet.MAC{0x02, 0x00, 0x5e, 0x00, 0x00, 0x01}
)

type natKey struct {
	proto   packet.IPProtocol
	natPort uint16
}

type natEntry struct {
	proto   packet.IPProtocol
	devIP   netip.Addr
	devPort uint16
}

// GUAPrefixN returns the n-th delegated /64 an ISP rotation can hand the
// home: n=0 is the boot-time GUAPrefix, each subsequent n bumps the third
// hextet (2001:470:8:100::/64 → 2001:470:9:100::/64 → …). Timeline prefix
// rotations walk this sequence so renumbered worlds stay deterministic.
func GUAPrefixN(n int) netip.Prefix {
	b := GUAPrefix.Addr().As16()
	binary.BigEndian.PutUint16(b[4:6], binary.BigEndian.Uint16(b[4:6])+uint16(n))
	return netip.PrefixFrom(netip.AddrFrom16(b), GUAPrefix.Bits())
}

// Router is the home gateway. It attaches to the LAN as a netsim host and
// reaches the simulated cloud by direct call on its WAN side.
type Router struct {
	Cfg   Config
	Cloud *cloud.Cloud

	// guaPrefix and routerGUA are the currently delegated prefix and the
	// router's address within it. They start at the package defaults and
	// move only when Renumber simulates an ISP withdrawing the delegation.
	guaPrefix netip.Prefix
	routerGUA netip.Addr

	port  *netsim.Port
	clock *netsim.Clock
	// tx is the reusable serialization buffer for frames the router
	// originates; the switch copies frames at enqueue time, so the buffer
	// can be reused immediately after Send.
	tx *packet.Buffer

	// dec parses LAN frames; wanDec parses WAN-side replies and injected
	// probes while a LAN parse may still be live. wanTx and wanBuf are the
	// reusable buffers for WAN-bound raw IP packets, and the scratch layer
	// structs below back the hot forwarding paths so no per-packet layer
	// allocation survives in steady state. All of it is single-goroutine
	// state, like the router itself.
	dec    packet.Decoder
	wanDec packet.Decoder
	wanTx  *packet.Buffer
	wanBuf []byte
	ethL   packet.Ethernet
	ip4L   packet.IPv4
	ip6L   packet.IPv6
	udpL   packet.UDP
	tcpL   packet.TCP
	rawL   packet.Raw
	layerS [4]packet.SerializableLayer

	// dhcp4Leases maps client MAC to its assigned private address.
	dhcp4Leases map[packet.MAC]netip.Addr
	nextLease   uint8

	// dhcp6Leases maps client DUID (stringified) to its IA_NA address.
	dhcp6Leases map[string]netip.Addr
	nextV6Lease uint16

	// Neighbors is the IPv6 neighbor table the paper's port-scan
	// methodology harvests addresses from (§4.3).
	Neighbors map[netip.Addr]packet.MAC
	// ARPTable is the IPv4 equivalent.
	ARPTable map[netip.Addr]packet.MAC

	nat     map[natKey]natEntry
	natBack map[natEntry]uint16
	natNext uint16

	// FW filters the IPv6 forwarding path: outbound packets establish
	// conntrack state, inbound WAN packets (cloud replies and injected
	// probes alike) must pass the policy. Attach installs an Open-policy
	// default matching the paper's unfiltered testbed; SetFirewall swaps
	// it.
	FW *firewall.Firewall

	// WANv6Tap, when set, observes every raw IPv6 packet the router
	// forwards to the WAN. Returning true consumes the packet (it is not
	// handed to the cloud) — the firewall-exposure experiment uses this
	// to play the remote scanning vantage.
	WANv6Tap func(raw []byte) bool

	// Faults, when set, impairs the router's own services: RA / DHCPv6 /
	// forwarded-DNS drop schedules, blackout windows, and the tunnel MTU
	// clamp. Nil means the paper's well-behaved dnsmasq.
	Faults *faults.Services

	// ForwardedV4 and ForwardedV6 count packets routed to the Internet.
	ForwardedV4, ForwardedV6 int
	// PTBSent counts ICMPv6 Packet-Too-Big errors emitted by the tunnel
	// MTU clamp.
	PTBSent int
	// NATTranslations counts new NAT44 port mappings created on the
	// outbound v4 path (distinct device flows, not per-packet work).
	NATTranslations int
}

// New creates a router with the given services enabled.
func New(cfg Config, cl *cloud.Cloud) *Router {
	return &Router{
		Cfg:         cfg,
		Cloud:       cl,
		guaPrefix:   GUAPrefix,
		routerGUA:   RouterGUA,
		tx:          packet.NewBuffer(128),
		wanTx:       packet.NewBuffer(128),
		dhcp4Leases: make(map[packet.MAC]netip.Addr),
		dhcp6Leases: make(map[string]netip.Addr),
		Neighbors:   make(map[netip.Addr]packet.MAC),
		ARPTable:    make(map[netip.Addr]packet.MAC),
		nat:         make(map[natKey]natEntry),
		natBack:     make(map[natEntry]uint16),
		natNext:     20000,
	}
}

// Attach connects the router to the LAN. Unless SetFirewall installed a
// policy first, the v6 path gets the paper's unfiltered Open firewall.
func (r *Router) Attach(n *netsim.Network) {
	r.clock = n.Clock
	r.port = n.Attach(r, RouterMAC)
	if r.FW == nil {
		r.FW = firewall.New(firewall.Open{}, n.Clock, conntrack.DefaultConfig())
	}
}

// SetFirewall installs the inbound-IPv6 firewall; call before or after
// Attach.
func (r *Router) SetFirewall(fw *firewall.Firewall) { r.FW = fw }

// DelegatedPrefix returns the GUA /64 the router currently advertises.
func (r *Router) DelegatedPrefix() netip.Prefix { return r.guaPrefix }

// Renumber simulates the ISP withdrawing the delegated prefix and handing
// the home a new one (the flash-renumbering event of RFC 8978): the router
// adopts the new prefix and its ::1 address within it, invalidates every
// stateful DHCPv6 lease (they were carved from the old prefix), and forgets
// neighbors whose addresses became bogus. Devices keep working only after
// the next RA lets them SLAAC a fresh address — the gap is the
// re-addressing outage the timeline report measures.
func (r *Router) Renumber(p netip.Prefix) {
	if p == r.guaPrefix {
		return
	}
	old := r.guaPrefix
	r.guaPrefix = p
	var iid [8]byte
	iid[7] = 1
	r.routerGUA = addr.FromPrefixIID(p, iid)
	clear(r.dhcp6Leases) // nextV6Lease keeps counting: new leases get new IIDs
	for a := range r.Neighbors {
		if old.Contains(a) {
			delete(r.Neighbors, a)
		}
	}
}

// HandleFrame implements netsim.Host.
func (r *Router) HandleFrame(frame []byte) {
	p := r.dec.Parse(frame)
	if p.Ethernet == nil {
		return
	}
	switch {
	case p.ARP != nil:
		r.handleARP(p)
	case p.IPv4 != nil:
		r.learnV4(p)
		r.handleIPv4(p)
	case p.IPv6 != nil:
		r.learnV6(p)
		r.handleIPv6(p)
	}
}

func (r *Router) learnV4(p *packet.Packet) {
	src := p.IPv4.Src
	if src.IsValid() && LANv4Prefix.Contains(src) && src != RouterV4 {
		r.ARPTable[src] = p.Ethernet.Src
	}
}

func (r *Router) learnV6(p *packet.Packet) {
	src := p.IPv6.Src
	if k := addr.Classify(src); k == addr.KindLLA || k == addr.KindULA || k == addr.KindGUA {
		r.Neighbors[src] = p.Ethernet.Src
	}
}

func (r *Router) handleARP(p *packet.Packet) {
	if !r.Cfg.IPv4 || p.ARP.Op != packet.ARPRequest || p.ARP.TargetIP != RouterV4 {
		return
	}
	r.ARPTable[p.ARP.SenderIP] = p.ARP.SenderMAC
	r.transmit(
		&packet.Ethernet{Dst: p.Ethernet.Src, Src: RouterMAC, Type: packet.EtherTypeARP},
		&packet.ARP{
			Op: packet.ARPReply, SenderMAC: RouterMAC, SenderIP: RouterV4,
			TargetMAC: p.ARP.SenderMAC, TargetIP: p.ARP.SenderIP,
		})
}

// transmit serializes layers through the router's reusable tx buffer and
// sends the frame onto the LAN. It reports whether a frame went out.
func (r *Router) transmit(layers ...packet.SerializableLayer) bool {
	frame, err := packet.SerializeInto(r.tx, layers...)
	if err != nil {
		return false
	}
	r.port.Send(frame)
	return true
}

// transmitL4 wraps an L4 layer in the right IP version and Ethernet
// framing and sends it, for reply paths that transmit immediately.
func (r *Router) transmitL4(dstMAC, srcMAC packet.MAC, src, dst netip.Addr, l4 packet.SerializableLayer) {
	var ipLayer packet.SerializableLayer
	typ := packet.EtherTypeIPv4
	if src.Is4() {
		r.ip4L = packet.IPv4{Protocol: protoOf(l4), Src: src, Dst: dst}
		ipLayer = &r.ip4L
	} else {
		r.ip6L = packet.IPv6{NextHeader: protoOf(l4), Src: src, Dst: dst}
		ipLayer = &r.ip6L
		typ = packet.EtherTypeIPv6
	}
	r.ethL = packet.Ethernet{Dst: dstMAC, Src: srcMAC, Type: typ}
	layers := append(r.layerS[:0], &r.ethL, ipLayer, l4)
	if extra := payloadOf(l4); extra != nil {
		r.rawL = extra
		layers = append(layers, &r.rawL)
	}
	r.transmit(layers...)
}

func (r *Router) handleIPv4(p *packet.Packet) {
	if !r.Cfg.IPv4 {
		return
	}
	// DHCPv4 to the server port.
	if p.UDP != nil && p.UDP.DstPort == 67 {
		r.handleDHCPv4(p)
		return
	}
	dst := p.IPv4.Dst
	if dst == RouterV4 || dst.IsMulticast() || dst == netip.MustParseAddr("255.255.255.255") {
		return // local traffic for the router itself; nothing else to do
	}
	if LANv4Prefix.Contains(dst) {
		return // LAN-to-LAN traffic is switched, not routed
	}
	r.forwardV4(p)
}

func (r *Router) handleIPv6(p *packet.Packet) {
	if !r.Cfg.IPv6 {
		return
	}
	if p.ICMPv6 != nil {
		r.handleNDP(p)
		// NDP handled; echo and other ICMPv6 may still be forwarded below.
		if p.ICMPv6.Type >= packet.ICMPv6TypeRouterSolicit && p.ICMPv6.Type <= packet.ICMPv6TypeNeighborAdvert {
			return
		}
	}
	if p.UDP != nil && p.UDP.DstPort == 547 {
		r.handleDHCPv6(p)
		return
	}
	dst := p.IPv6.Dst
	switch addr.Classify(dst) {
	case addr.KindGUA:
		if r.guaPrefix.Contains(dst) {
			return // on-link destination, switched not routed
		}
		r.forwardV6(p)
	default:
		// LLA/ULA/multicast destinations never leave the LAN.
	}
}

// forwardV4 NATs a LAN packet to the WAN address, hands it to the cloud,
// and translates any replies back to the device.
func (r *Router) forwardV4(p *packet.Packet) {
	devIP := p.IPv4.Src
	devMAC := p.Ethernet.Src
	var devPort, natPort uint16
	var proto packet.IPProtocol
	var l4 packet.SerializableLayer
	switch {
	case p.UDP != nil:
		proto, devPort = packet.IPProtocolUDP, p.UDP.SrcPort
	case p.TCP != nil:
		proto, devPort = packet.IPProtocolTCP, p.TCP.SrcPort
	case p.ICMPv4 != nil:
		proto = packet.IPProtocolICMPv4
	default:
		return
	}
	entry := natEntry{proto: proto, devIP: devIP, devPort: devPort}
	var ok bool
	if natPort, ok = r.natBack[entry]; !ok {
		r.natNext++
		natPort = r.natNext
		r.natBack[entry] = natPort
		// Full-cone mapping: replies from any remote endpoint on the
		// translated port reach the device.
		r.nat[natKey{proto: proto, natPort: natPort}] = entry
		r.NATTranslations++
	}
	switch {
	case p.UDP != nil:
		r.udpL = packet.UDP{SrcPort: natPort, DstPort: p.UDP.DstPort, Src: WANv4, Dst: p.IPv4.Dst, PayloadData: p.UDP.PayloadData}
		l4 = &r.udpL
	case p.TCP != nil:
		r.tcpL = *p.TCP
		r.tcpL.SrcPort, r.tcpL.Src, r.tcpL.Dst = natPort, WANv4, p.IPv4.Dst
		l4 = &r.tcpL
	case p.ICMPv4 != nil:
		l4 = p.ICMPv4
	}
	raw, err := r.buildIPPacket(WANv4, p.IPv4.Dst, l4)
	if err != nil {
		return
	}
	r.ForwardedV4++
	for _, reply := range r.Cloud.HandleIP(raw) {
		r.deliverWANReplyV4(reply, devMAC)
	}
}

func (r *Router) deliverWANReplyV4(raw []byte, devMAC packet.MAC) {
	rp := r.wanDec.ParseIP(raw)
	if rp.Err != nil || rp.IPv4 == nil {
		return
	}
	// The flaky-dnsmasq schedule applies to v4-transported answers too
	// (the AAAA-over-IPv4 pattern of §5.2.2).
	if r.Faults != nil && rp.UDP != nil && rp.UDP.SrcPort == 53 &&
		r.Faults.DropDNSReply(rp.UDP.PayloadData) {
		return
	}
	var entry natEntry
	var ok bool
	switch {
	case rp.UDP != nil:
		entry, ok = r.nat[natKey{proto: packet.IPProtocolUDP, natPort: rp.UDP.DstPort}]
	case rp.TCP != nil:
		entry, ok = r.nat[natKey{proto: packet.IPProtocolTCP, natPort: rp.TCP.DstPort}]
	case rp.ICMPv4 != nil:
		// ICMP has no ports; deliver to the requesting device directly.
		entry, ok = natEntry{}, true
	}
	if !ok {
		return
	}
	var l4 packet.SerializableLayer
	devIP := entry.devIP
	switch {
	case rp.UDP != nil:
		r.udpL = packet.UDP{SrcPort: rp.UDP.SrcPort, DstPort: entry.devPort, Src: rp.IPv4.Src, Dst: devIP, PayloadData: rp.UDP.PayloadData}
		l4 = &r.udpL
	case rp.TCP != nil:
		r.tcpL = *rp.TCP
		r.tcpL.DstPort, r.tcpL.Src, r.tcpL.Dst = entry.devPort, rp.IPv4.Src, devIP
		l4 = &r.tcpL
	case rp.ICMPv4 != nil:
		// Without a port mapping we cannot recover the device IP from the
		// ICMP reply alone; use the ARP table via MAC instead.
		devIP = r.ipForMACv4(devMAC)
		if !devIP.IsValid() {
			return
		}
		l4 = rp.ICMPv4
	}
	mac := r.ARPTable[devIP]
	if mac.IsZero() {
		mac = devMAC
	}
	r.transmitL4(mac, RouterMAC, rp.IPv4.Src, devIP, l4)
}

func (r *Router) ipForMACv4(mac packet.MAC) netip.Addr {
	for ip, m := range r.ARPTable {
		if m == mac {
			return ip
		}
	}
	return netip.Addr{}
}

// forwardV6 routes a LAN packet to the cloud unchanged (the paper's LAN is
// a routed /64, no NAT66), records the flow in the firewall's conntrack
// table, and relays replies to the device by neighbor lookup — replies
// traverse the inbound firewall like any other WAN packet.
func (r *Router) forwardV6(p *packet.Packet) {
	if !r.guaPrefix.Contains(p.IPv6.Src) {
		return // sources outside the delegated prefix are not routable
	}
	raw := r.reserializeIPv6(p)
	if r.Faults != nil {
		if mtu := r.Faults.TunnelMTU(); mtu > 0 && len(raw) > mtu {
			r.sendPacketTooBig(p, mtu, raw)
			return
		}
	}
	if key, flags, ok := conntrack.KeyOfV6(p.IPv6, p.TCP, p.UDP, p.ICMPv6); ok {
		r.FW.Outbound(key, flags)
	}
	r.ForwardedV6++
	if r.WANv6Tap != nil && r.WANv6Tap(raw) {
		return
	}
	for _, reply := range r.Cloud.HandleIP(raw) {
		r.deliverWANv6(reply)
	}
}

// deliverWANv6 carries one raw IPv6 packet from the WAN side onto the LAN:
// it must pass the inbound firewall, and the destination must be a known
// neighbor.
func (r *Router) deliverWANv6(raw []byte) {
	rp := r.wanDec.ParseIP(raw)
	if rp.Err != nil || rp.IPv6 == nil {
		return
	}
	if key, flags, ok := conntrack.KeyOfV6(rp.IPv6, rp.TCP, rp.UDP, rp.ICMPv6); ok {
		if !r.FW.Inbound(key, flags) {
			return
		}
	}
	// Flaky-dnsmasq schedule: a misbehaving forwarder swallows AAAA
	// answers on their way back to the LAN.
	if r.Faults != nil && rp.UDP != nil && rp.UDP.SrcPort == 53 &&
		r.Faults.DropDNSReply(rp.UDP.PayloadData) {
		return
	}
	mac, ok := r.Neighbors[rp.IPv6.Dst]
	if !ok {
		return
	}
	r.ethL = packet.Ethernet{Dst: mac, Src: RouterMAC, Type: packet.EtherTypeIPv6}
	r.rawL = raw
	r.transmit(&r.ethL, &r.rawL)
}

// InjectWANv6 delivers an unsolicited raw IPv6 packet arriving from the
// Internet — the WAN-vantage port scan of the firewall-exposure
// experiment — subject to the inbound firewall policy.
func (r *Router) InjectWANv6(raw []byte) { r.deliverWANv6(raw) }

// sendPacketTooBig answers an oversized tunnel-bound packet with an
// ICMPv6 Packet-Too-Big carrying the clamp MTU and the head of the
// invoking packet (RFC 4443 §3.2), so PMTUD-capable stacks can
// resegment their flows.
func (r *Router) sendPacketTooBig(p *packet.Packet, mtu int, raw []byte) {
	// The error itself must fit the minimum IPv6 MTU (RFC 4443: as much
	// of the invoking packet as fits without exceeding 1280 bytes).
	const maxInvoking = 1280 - 40 - 4 - 4
	body := make([]byte, 4, 4+min(len(raw), maxInvoking))
	binary.BigEndian.PutUint32(body[:4], uint32(mtu))
	body = append(body, raw[:min(len(raw), maxInvoking)]...)
	dst := p.IPv6.Src
	if r.transmit(
		&packet.Ethernet{Dst: p.Ethernet.Src, Src: RouterMAC, Type: packet.EtherTypeIPv6},
		&packet.IPv6{NextHeader: packet.IPProtocolICMPv6, HopLimit: 64, Src: RouterLLA, Dst: dst},
		&packet.ICMPv6{Type: packet.ICMPv6TypePacketTooBig, Body: body, Src: RouterLLA, Dst: dst},
	) {
		r.PTBSent++
	}
}

// reserializeIPv6 strips the Ethernet header, copying the raw IP packet
// into the router's reusable WAN buffer. The result is valid until the
// next forwardV6; the cloud, the WAN tap, and the tunnel-clamp path all
// consume it synchronously.
func (r *Router) reserializeIPv6(p *packet.Packet) []byte {
	r.wanBuf = append(r.wanBuf[:0], p.Ethernet.PayloadData...)
	return r.wanBuf
}

// buildIPPacket serializes an IPv4 packet around an L4 layer into the
// router's reusable WAN buffer, re-emitting any payload the layer carries.
// The result is valid until the next forwardV4.
func (r *Router) buildIPPacket(src, dst netip.Addr, l4 packet.SerializableLayer) ([]byte, error) {
	r.ip4L = packet.IPv4{Protocol: protoOf(l4), Src: src, Dst: dst}
	layers := append(r.layerS[:0], &r.ip4L, l4)
	if extra := payloadOf(l4); extra != nil {
		r.rawL = extra
		layers = append(layers, &r.rawL)
	}
	return packet.SerializeInto(r.wanTx, layers...)
}

func protoOf(l packet.SerializableLayer) packet.IPProtocol {
	switch l.(type) {
	case *packet.UDP:
		return packet.IPProtocolUDP
	case *packet.TCP:
		return packet.IPProtocolTCP
	case *packet.ICMPv6:
		return packet.IPProtocolICMPv6
	case *packet.ICMPv4:
		return packet.IPProtocolICMPv4
	}
	return packet.IPProtocolNoNext
}

func payloadOf(l packet.SerializableLayer) []byte {
	switch v := l.(type) {
	case *packet.UDP:
		return v.PayloadData
	case *packet.TCP:
		return v.PayloadData
	}
	return nil
}
