package router

import (
	"net/netip"
	"testing"
	"time"

	"v6lab/internal/addr"
	"v6lab/internal/cloud"
	"v6lab/internal/dhcp4"
	"v6lab/internal/dhcp6"
	"v6lab/internal/dnsmsg"
	"v6lab/internal/ndp"
	"v6lab/internal/netsim"
	"v6lab/internal/packet"
)

// scriptHost is a minimal LAN client that records everything it receives.
type scriptHost struct {
	port *netsim.Port
	rx   []*packet.Packet
}

func (h *scriptHost) HandleFrame(frame []byte) {
	h.rx = append(h.rx, packet.Parse(frame))
}

func (h *scriptHost) last() *packet.Packet {
	if len(h.rx) == 0 {
		return nil
	}
	return h.rx[len(h.rx)-1]
}

var devMAC = packet.MAC{0x02, 0xde, 0xad, 0x00, 0x00, 0x01}

func setup(t *testing.T, cfg Config) (*netsim.Network, *Router, *scriptHost, *cloud.Cloud) {
	t.Helper()
	cl := cloud.New()
	n := netsim.NewNetwork(netsim.NewClock(time.Date(2024, 4, 5, 0, 0, 0, 0, time.UTC)))
	r := New(cfg, cl)
	r.Attach(n)
	h := &scriptHost{}
	h.port = n.Attach(h, devMAC)
	return n, r, h, cl
}

func run(t *testing.T, n *netsim.Network) {
	t.Helper()
	if _, err := n.Run(10000); err != nil {
		t.Fatal(err)
	}
}

func send(t *testing.T, h *scriptHost, layers ...packet.SerializableLayer) {
	t.Helper()
	frame, err := packet.Serialize(layers...)
	if err != nil {
		t.Fatal(err)
	}
	h.port.Send(frame)
}

func TestARPReply(t *testing.T) {
	n, _, h, _ := setup(t, Config{IPv4: true})
	send(t, h,
		&packet.Ethernet{Dst: packet.BroadcastMAC, Src: devMAC, Type: packet.EtherTypeARP},
		&packet.ARP{Op: packet.ARPRequest, SenderMAC: devMAC, SenderIP: netip.MustParseAddr("192.168.1.50"), TargetIP: RouterV4})
	run(t, n)
	p := h.last()
	if p == nil || p.ARP == nil || p.ARP.Op != packet.ARPReply || p.ARP.SenderMAC != RouterMAC {
		t.Fatalf("no ARP reply: %+v", p)
	}
}

func TestDHCPv4Exchange(t *testing.T) {
	n, r, h, _ := setup(t, Config{IPv4: true})
	disc := &dhcp4.Message{Op: 1, XID: 42, ClientMAC: devMAC, Type: dhcp4.Discover}
	wire, _ := disc.Marshal()
	bc := netip.MustParseAddr("255.255.255.255")
	zero := netip.MustParseAddr("0.0.0.0")
	send(t, h,
		&packet.Ethernet{Dst: packet.BroadcastMAC, Src: devMAC, Type: packet.EtherTypeIPv4},
		&packet.IPv4{Protocol: packet.IPProtocolUDP, Src: zero, Dst: bc},
		&packet.UDP{SrcPort: dhcp4.ClientPort, DstPort: dhcp4.ServerPort, Src: zero, Dst: bc},
		packet.Raw(wire))
	run(t, n)
	p := h.last()
	if p == nil || p.UDP == nil {
		t.Fatal("no offer")
	}
	offer, err := dhcp4.Unmarshal(p.UDP.PayloadData)
	if err != nil || offer.Type != dhcp4.Offer {
		t.Fatalf("offer: %+v err=%v", offer, err)
	}
	if !LANv4Prefix.Contains(offer.YourIP) || offer.DNS[0] != cloud.DNSv4 {
		t.Errorf("offer contents: %+v", offer)
	}
	// REQUEST -> ACK with the same lease.
	req := &dhcp4.Message{Op: 1, XID: 43, ClientMAC: devMAC, Type: dhcp4.Request, Requested: offer.YourIP, ServerID: RouterV4}
	wire, _ = req.Marshal()
	send(t, h,
		&packet.Ethernet{Dst: packet.BroadcastMAC, Src: devMAC, Type: packet.EtherTypeIPv4},
		&packet.IPv4{Protocol: packet.IPProtocolUDP, Src: zero, Dst: bc},
		&packet.UDP{SrcPort: dhcp4.ClientPort, DstPort: dhcp4.ServerPort, Src: zero, Dst: bc},
		packet.Raw(wire))
	run(t, n)
	ack, err := dhcp4.Unmarshal(h.last().UDP.PayloadData)
	if err != nil || ack.Type != dhcp4.ACK || ack.YourIP != offer.YourIP {
		t.Fatalf("ack: %+v err=%v", ack, err)
	}
	if lease, ok := r.LeaseFor(devMAC); !ok || lease != offer.YourIP {
		t.Error("lease not recorded")
	}
}

func TestDHCPv4DisabledWithoutIPv4(t *testing.T) {
	n, _, h, _ := setup(t, Config{IPv6: true})
	disc := &dhcp4.Message{Op: 1, XID: 1, ClientMAC: devMAC, Type: dhcp4.Discover}
	wire, _ := disc.Marshal()
	bc := netip.MustParseAddr("255.255.255.255")
	zero := netip.MustParseAddr("0.0.0.0")
	send(t, h,
		&packet.Ethernet{Dst: packet.BroadcastMAC, Src: devMAC, Type: packet.EtherTypeIPv4},
		&packet.IPv4{Protocol: packet.IPProtocolUDP, Src: zero, Dst: bc},
		&packet.UDP{SrcPort: dhcp4.ClientPort, DstPort: dhcp4.ServerPort, Src: zero, Dst: bc},
		packet.Raw(wire))
	run(t, n)
	if len(h.rx) != 0 {
		t.Fatal("IPv6-only router answered DHCPv4")
	}
}

func sendRS(t *testing.T, h *scriptHost) {
	lla := addr.LinkLocalEUI64(devMAC)
	rs := &ndp.RouterSolicit{SourceLinkAddr: devMAC}
	dst := addr.AllRoutersMulticast
	send(t, h,
		&packet.Ethernet{Dst: addr.MulticastMAC(dst), Src: devMAC, Type: packet.EtherTypeIPv6},
		&packet.IPv6{NextHeader: packet.IPProtocolICMPv6, HopLimit: 255, Src: lla, Dst: dst},
		&packet.ICMPv6{Type: packet.ICMPv6TypeRouterSolicit, Body: rs.MarshalBody(), Src: lla, Dst: dst})
}

func findRA(t *testing.T, h *scriptHost) *ndp.RouterAdvert {
	t.Helper()
	for _, p := range h.rx {
		if p.ICMPv6 != nil && p.ICMPv6.Type == packet.ICMPv6TypeRouterAdvert {
			ra, err := ndp.ParseRouterAdvert(p.ICMPv6.Body)
			if err != nil {
				t.Fatal(err)
			}
			return ra
		}
	}
	return nil
}

func TestRouterAdvertisementModes(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		wantM   bool
		wantO   bool
		wantDNS bool
		wantRA  bool
	}{
		{"baseline", Config{IPv6: true, StatelessDHCPv6: true}, false, true, true, true},
		{"rdnss-only", Config{IPv6: true}, false, false, true, true},
		{"stateful", Config{IPv6: true, StatelessDHCPv6: true, StatefulDHCPv6: true}, true, true, true, true},
		{"v4only", Config{IPv4: true}, false, false, false, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n, _, h, _ := setup(t, tc.cfg)
			sendRS(t, h)
			run(t, n)
			ra := findRA(t, h)
			if !tc.wantRA {
				if ra != nil {
					t.Fatal("unexpected RA")
				}
				return
			}
			if ra == nil {
				t.Fatal("no RA")
			}
			if ra.Managed != tc.wantM || ra.OtherConfig != tc.wantO {
				t.Errorf("M=%v O=%v", ra.Managed, ra.OtherConfig)
			}
			if (len(ra.RDNSS) > 0) != tc.wantDNS {
				t.Errorf("RDNSS present=%v", len(ra.RDNSS) > 0)
			}
			if len(ra.Prefixes) != 2 || ra.Prefixes[0].Prefix != GUAPrefix || ra.Prefixes[1].Prefix != ULAPrefix {
				t.Errorf("prefixes: %+v", ra.Prefixes)
			}
			for _, p := range ra.Prefixes {
				if !p.AutonomousFlag {
					t.Error("PIO without A flag")
				}
			}
		})
	}
}

func TestNeighborSolicitForRouter(t *testing.T) {
	n, r, h, _ := setup(t, Config{IPv6: true})
	lla := addr.LinkLocalEUI64(devMAC)
	ns := &ndp.NeighborSolicit{Target: RouterLLA, SourceLinkAddr: devMAC}
	dst := addr.SolicitedNodeMulticast(RouterLLA)
	send(t, h,
		&packet.Ethernet{Dst: addr.MulticastMAC(dst), Src: devMAC, Type: packet.EtherTypeIPv6},
		&packet.IPv6{NextHeader: packet.IPProtocolICMPv6, HopLimit: 255, Src: lla, Dst: dst},
		&packet.ICMPv6{Type: packet.ICMPv6TypeNeighborSolicit, Body: ns.MarshalBody(), Src: lla, Dst: dst})
	run(t, n)
	var na *ndp.NeighborAdvert
	for _, p := range h.rx {
		if p.ICMPv6 != nil && p.ICMPv6.Type == packet.ICMPv6TypeNeighborAdvert {
			na, _ = ndp.ParseNeighborAdvert(p.ICMPv6.Body)
		}
	}
	if na == nil || na.Target != RouterLLA || na.TargetLinkAddr != RouterMAC || !na.Router {
		t.Fatalf("NA: %+v", na)
	}
	if r.Neighbors[lla] != devMAC {
		t.Error("router did not learn neighbor from NS")
	}
}

func TestDHCPv6StatelessAndStateful(t *testing.T) {
	n, r, h, _ := setup(t, Config{IPv6: true, StatelessDHCPv6: true, StatefulDHCPv6: true})
	lla := addr.LinkLocalEUI64(devMAC)
	duid := dhcp6.DUIDFromMAC(devMAC)
	sendDHCP6 := func(m *dhcp6.Message) {
		wire, err := m.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		dst := netip.MustParseAddr(dhcp6.AllRelayAgentsAndServers)
		send(t, h,
			&packet.Ethernet{Dst: addr.MulticastMAC(dst), Src: devMAC, Type: packet.EtherTypeIPv6},
			&packet.IPv6{NextHeader: packet.IPProtocolUDP, Src: lla, Dst: dst},
			&packet.UDP{SrcPort: dhcp6.ClientPort, DstPort: dhcp6.ServerPort, Src: lla, Dst: dst},
			packet.Raw(wire))
	}
	// Stateless: INFORMATION-REQUEST -> REPLY with DNS.
	sendDHCP6(&dhcp6.Message{Type: dhcp6.InfoRequest, TxID: 1, ClientID: duid, RequestedOptions: []uint16{dhcp6.OptDNSServers}})
	run(t, n)
	reply, err := dhcp6.Unmarshal(h.last().UDP.PayloadData)
	if err != nil || reply.Type != dhcp6.Reply || len(reply.DNS) != 1 || reply.DNS[0] != cloud.DNSv6 {
		t.Fatalf("stateless reply: %+v err=%v", reply, err)
	}
	// Stateful: SOLICIT -> ADVERTISE with IA_NA.
	sendDHCP6(&dhcp6.Message{Type: dhcp6.Solicit, TxID: 2, ClientID: duid, IANA: &dhcp6.IANA{IAID: 9}, RequestedOptions: []uint16{dhcp6.OptDNSServers}})
	run(t, n)
	adv, err := dhcp6.Unmarshal(h.last().UDP.PayloadData)
	if err != nil || adv.Type != dhcp6.Advertise || adv.IANA == nil || len(adv.IANA.Addrs) != 1 {
		t.Fatalf("advertise: %+v err=%v", adv, err)
	}
	lease := adv.IANA.Addrs[0].Addr
	if !GUAPrefix.Contains(lease) {
		t.Errorf("lease %v outside GUA prefix", lease)
	}
	// REQUEST -> REPLY with the same address.
	sendDHCP6(&dhcp6.Message{Type: dhcp6.Request, TxID: 3, ClientID: duid, ServerID: adv.ServerID, IANA: &dhcp6.IANA{IAID: 9}})
	run(t, n)
	rep, err := dhcp6.Unmarshal(h.last().UDP.PayloadData)
	if err != nil || rep.Type != dhcp6.Reply || rep.IANA.Addrs[0].Addr != lease {
		t.Fatalf("reply: %+v err=%v", rep, err)
	}
	if got, ok := r.DHCPv6LeaseFor(duid); !ok || got != lease {
		t.Error("lease not recorded")
	}
}

func TestStatefulDisabledIgnoresSolicit(t *testing.T) {
	n, _, h, _ := setup(t, Config{IPv6: true, StatelessDHCPv6: true})
	lla := addr.LinkLocalEUI64(devMAC)
	m := &dhcp6.Message{Type: dhcp6.Solicit, TxID: 5, ClientID: dhcp6.DUIDFromMAC(devMAC), IANA: &dhcp6.IANA{IAID: 1}}
	wire, _ := m.Marshal()
	dst := netip.MustParseAddr(dhcp6.AllRelayAgentsAndServers)
	send(t, h,
		&packet.Ethernet{Dst: addr.MulticastMAC(dst), Src: devMAC, Type: packet.EtherTypeIPv6},
		&packet.IPv6{NextHeader: packet.IPProtocolUDP, Src: lla, Dst: dst},
		&packet.UDP{SrcPort: dhcp6.ClientPort, DstPort: dhcp6.ServerPort, Src: lla, Dst: dst},
		packet.Raw(wire))
	run(t, n)
	if len(h.rx) != 0 {
		t.Fatal("baseline router advertised a stateful lease")
	}
}

func TestNAT44DNSRoundTrip(t *testing.T) {
	n, r, h, cl := setup(t, Config{IPv4: true})
	cl.AddDomain("api.vendor.example", cloud.PartyFirst, true, false)
	devIP := netip.MustParseAddr("192.168.1.101")
	q := dnsmsg.NewQuery(77, "api.vendor.example", dnsmsg.TypeA)
	wire, _ := q.Pack()
	send(t, h,
		&packet.Ethernet{Dst: RouterMAC, Src: devMAC, Type: packet.EtherTypeIPv4},
		&packet.IPv4{Protocol: packet.IPProtocolUDP, Src: devIP, Dst: cloud.DNSv4},
		&packet.UDP{SrcPort: 33333, DstPort: 53, Src: devIP, Dst: cloud.DNSv4},
		packet.Raw(wire))
	run(t, n)
	p := h.last()
	if p == nil || p.UDP == nil || p.UDP.DstPort != 33333 || p.IPv4.Dst != devIP || p.IPv4.Src != cloud.DNSv4 {
		t.Fatalf("no translated reply: %+v", p)
	}
	m, err := dnsmsg.Unpack(p.UDP.PayloadData)
	if err != nil || len(m.Answers) != 1 {
		t.Fatalf("dns answer: %+v err=%v", m, err)
	}
	if r.ForwardedV4 != 1 {
		t.Errorf("ForwardedV4 = %d", r.ForwardedV4)
	}
}

func TestIPv6ForwardingRoundTrip(t *testing.T) {
	n, r, h, cl := setup(t, Config{IPv6: true, StatelessDHCPv6: true})
	d := cl.AddDomain("svc.vendor.example", cloud.PartyFirst, true, false)
	gua := addr.EUI64Addr(GUAPrefix, devMAC)
	// The router must know the device's neighbor entry to deliver replies.
	lla := addr.LinkLocalEUI64(devMAC)
	na := &ndp.NeighborAdvert{Target: gua, TargetLinkAddr: devMAC, Override: true}
	dst := addr.AllNodesMulticast
	send(t, h,
		&packet.Ethernet{Dst: addr.MulticastMAC(dst), Src: devMAC, Type: packet.EtherTypeIPv6},
		&packet.IPv6{NextHeader: packet.IPProtocolICMPv6, HopLimit: 255, Src: lla, Dst: dst},
		&packet.ICMPv6{Type: packet.ICMPv6TypeNeighborAdvert, Body: na.MarshalBody(), Src: lla, Dst: dst})
	send(t, h,
		&packet.Ethernet{Dst: RouterMAC, Src: devMAC, Type: packet.EtherTypeIPv6},
		&packet.IPv6{NextHeader: packet.IPProtocolTCP, Src: gua, Dst: d.V6[0]},
		&packet.TCP{SrcPort: 44444, DstPort: 443, Seq: 1, Flags: packet.TCPFlagSYN, Src: gua, Dst: d.V6[0]})
	run(t, n)
	var synack *packet.Packet
	for _, p := range h.rx {
		if p.TCP != nil && p.TCP.HasFlag(packet.TCPFlagSYN|packet.TCPFlagACK) {
			synack = p
		}
	}
	if synack == nil {
		t.Fatal("no SYN-ACK via v6 forwarding")
	}
	if synack.IPv6.Dst != gua || synack.IPv6.Src != d.V6[0] {
		t.Errorf("addressing: %v -> %v", synack.IPv6.Src, synack.IPv6.Dst)
	}
	if r.ForwardedV6 != 1 {
		t.Errorf("ForwardedV6 = %d", r.ForwardedV6)
	}
}

func TestULASourceNotForwarded(t *testing.T) {
	n, r, h, cl := setup(t, Config{IPv6: true})
	d := cl.AddDomain("x.example", cloud.PartyFirst, true, false)
	ula := addr.EUI64Addr(ULAPrefix, devMAC)
	send(t, h,
		&packet.Ethernet{Dst: RouterMAC, Src: devMAC, Type: packet.EtherTypeIPv6},
		&packet.IPv6{NextHeader: packet.IPProtocolTCP, Src: ula, Dst: d.V6[0]},
		&packet.TCP{SrcPort: 1, DstPort: 443, Flags: packet.TCPFlagSYN, Src: ula, Dst: d.V6[0]})
	run(t, n)
	if r.ForwardedV6 != 0 {
		t.Error("ULA-sourced packet was forwarded")
	}
}

func TestV6ForwardingDisabledInV4Only(t *testing.T) {
	n, r, h, cl := setup(t, Config{IPv4: true})
	d := cl.AddDomain("y.example", cloud.PartyFirst, true, false)
	gua := addr.EUI64Addr(GUAPrefix, devMAC)
	send(t, h,
		&packet.Ethernet{Dst: RouterMAC, Src: devMAC, Type: packet.EtherTypeIPv6},
		&packet.IPv6{NextHeader: packet.IPProtocolTCP, Src: gua, Dst: d.V6[0]},
		&packet.TCP{SrcPort: 1, DstPort: 443, Flags: packet.TCPFlagSYN, Src: gua, Dst: d.V6[0]})
	run(t, n)
	if r.ForwardedV6 != 0 {
		t.Error("v4-only router forwarded IPv6")
	}
}
