package router

import (
	"encoding/binary"
	"net/netip"
	"time"

	"v6lab/internal/addr"
	"v6lab/internal/cloud"
	"v6lab/internal/dhcp4"
	"v6lab/internal/dhcp6"
	"v6lab/internal/ndp"
	"v6lab/internal/packet"
)

// handleDHCPv4 implements the dnsmasq DHCPv4 server: DISCOVER→OFFER,
// REQUEST→ACK, with router, mask, DNS, and lease options.
func (r *Router) handleDHCPv4(p *packet.Packet) {
	if r.Faults != nil && r.Faults.Blackout() {
		return
	}
	msg, err := dhcp4.Unmarshal(p.UDP.PayloadData)
	if err != nil {
		return
	}
	lease, ok := r.dhcp4Leases[msg.ClientMAC]
	if !ok {
		r.nextLease++
		lease = netip.AddrFrom4([4]byte{192, 168, 1, 100 + r.nextLease})
		r.dhcp4Leases[msg.ClientMAC] = lease
	}
	var replyType uint8
	switch msg.Type {
	case dhcp4.Discover:
		replyType = dhcp4.Offer
	case dhcp4.Request:
		replyType = dhcp4.ACK
	default:
		return
	}
	reply := &dhcp4.Message{
		Op: 2, XID: msg.XID, ClientMAC: msg.ClientMAC, Type: replyType,
		YourIP: lease, ServerIP: RouterV4, ServerID: RouterV4,
		SubnetMask: netip.MustParseAddr("255.255.255.0"),
		Router:     RouterV4,
		DNS:        []netip.Addr{cloud.DNSv4},
		LeaseSecs:  3600,
	}
	wire, err := reply.Marshal()
	if err != nil {
		return
	}
	r.ARPTable[lease] = msg.ClientMAC
	r.transmitL4(msg.ClientMAC, RouterMAC, RouterV4, lease,
		&packet.UDP{SrcPort: dhcp4.ServerPort, DstPort: dhcp4.ClientPort, Src: RouterV4, Dst: lease, PayloadData: wire})
}

// LeaseFor returns the DHCPv4 lease assigned to a MAC, if any.
func (r *Router) LeaseFor(mac packet.MAC) (netip.Addr, bool) {
	a, ok := r.dhcp4Leases[mac]
	return a, ok
}

// Lease4Count reports how many DHCPv4 leases the router handed out.
func (r *Router) Lease4Count() int { return len(r.dhcp4Leases) }

// Lease6Count reports how many DHCPv6 IA_NA leases the router handed out.
func (r *Router) Lease6Count() int { return len(r.dhcp6Leases) }

// handleNDP answers router solicitations with the configured RA, answers
// neighbor solicitations for the router's own addresses, and learns
// neighbors from advertisements.
func (r *Router) handleNDP(p *packet.Packet) {
	switch p.ICMPv6.Type {
	case packet.ICMPv6TypeRouterSolicit:
		if _, err := ndp.ParseRouterSolicit(p.ICMPv6.Body); err == nil {
			r.SendRouterAdvert()
		}
	case packet.ICMPv6TypeNeighborSolicit:
		ns, err := ndp.ParseNeighborSolicit(p.ICMPv6.Body)
		if err != nil {
			return
		}
		if !ns.SourceLinkAddr.IsZero() && p.IPv6.Src.IsValid() && addr.Classify(p.IPv6.Src) != addr.KindUnspecified {
			r.Neighbors[p.IPv6.Src] = ns.SourceLinkAddr
		}
		if ns.Target == RouterLLA || ns.Target == r.routerGUA {
			r.sendNA(p.Ethernet.Src, p.IPv6.Src, ns.Target)
		}
	case packet.ICMPv6TypeNeighborAdvert:
		if na, err := ndp.ParseNeighborAdvert(p.ICMPv6.Body); err == nil && !na.TargetLinkAddr.IsZero() {
			r.Neighbors[na.Target] = na.TargetLinkAddr
		}
	}
}

// SendRouterAdvert multicasts the RA describing the experiment's
// configuration: SLAAC prefixes for the GUA and ULA /64s, RDNSS pointing
// at the IPv6 resolver, and M/O flags per the DHCPv6 services enabled.
func (r *Router) SendRouterAdvert() {
	if !r.Cfg.IPv6 {
		return
	}
	if r.Faults != nil && r.Faults.DropRA() {
		return
	}
	ra := &ndp.RouterAdvert{
		HopLimit:       64,
		Managed:        r.Cfg.StatefulDHCPv6,
		OtherConfig:    r.Cfg.StatelessDHCPv6,
		RouterLifetime: 1800 * time.Second,
		MTU:            1500,
		SourceLinkAddr: RouterMAC,
		Prefixes: []ndp.PrefixInfo{
			{Prefix: r.guaPrefix, OnLink: true, AutonomousFlag: true,
				ValidLifetime: 86400 * time.Second, PreferredLifetime: 14400 * time.Second},
			{Prefix: ULAPrefix, OnLink: true, AutonomousFlag: true,
				ValidLifetime: 86400 * time.Second, PreferredLifetime: 86400 * time.Second},
		},
	}
	if r.Cfg.RDNSS() {
		ra.RDNSS = []ndp.RDNSS{{Lifetime: 1800 * time.Second, Servers: []netip.Addr{cloud.DNSv6}}}
	}
	dst := addr.AllNodesMulticast
	r.transmit(
		&packet.Ethernet{Dst: addr.MulticastMAC(dst), Src: RouterMAC, Type: packet.EtherTypeIPv6},
		&packet.IPv6{NextHeader: packet.IPProtocolICMPv6, HopLimit: 255, Src: RouterLLA, Dst: dst},
		&packet.ICMPv6{Type: packet.ICMPv6TypeRouterAdvert, Body: ra.MarshalBody(), Src: RouterLLA, Dst: dst},
	)
}

func (r *Router) sendNA(dstMAC packet.MAC, dstIP, target netip.Addr) {
	if !dstIP.IsValid() || addr.Classify(dstIP) == addr.KindUnspecified {
		// DAD probe for one of our own addresses: defend it by multicast NA.
		dstIP = addr.AllNodesMulticast
		dstMAC = addr.MulticastMAC(dstIP)
	}
	na := &ndp.NeighborAdvert{Router: true, Solicited: true, Override: true, Target: target, TargetLinkAddr: RouterMAC}
	r.transmit(
		&packet.Ethernet{Dst: dstMAC, Src: RouterMAC, Type: packet.EtherTypeIPv6},
		&packet.IPv6{NextHeader: packet.IPProtocolICMPv6, HopLimit: 255, Src: RouterLLA, Dst: dstIP},
		&packet.ICMPv6{Type: packet.ICMPv6TypeNeighborAdvert, Body: na.MarshalBody(), Src: RouterLLA, Dst: dstIP},
	)
}

// handleDHCPv6 implements the dnsmasq DHCPv6 server in the modes Table 2
// configures: stateless answers INFORMATION-REQUEST with DNS servers;
// stateful additionally runs SOLICIT→ADVERTISE→REQUEST→REPLY with IA_NA
// assignment out of the GUA prefix.
func (r *Router) handleDHCPv6(p *packet.Packet) {
	msg, err := dhcp6.Unmarshal(p.UDP.PayloadData)
	if err != nil {
		return
	}
	reply := &dhcp6.Message{
		TxID:     msg.TxID,
		ClientID: msg.ClientID,
		ServerID: dhcp6.DUIDFromMAC(RouterMAC),
	}
	switch msg.Type {
	case dhcp6.InfoRequest:
		if !r.Cfg.StatelessDHCPv6 && !r.Cfg.StatefulDHCPv6 {
			return
		}
		reply.Type = dhcp6.Reply
		if msg.WantsDNS() {
			reply.DNS = []netip.Addr{cloud.DNSv6}
		}
	case dhcp6.Solicit, dhcp6.Request, dhcp6.Renew:
		if !r.Cfg.StatefulDHCPv6 || msg.IANA == nil {
			return
		}
		if msg.Type == dhcp6.Solicit {
			reply.Type = dhcp6.Advertise
		} else {
			// REQUEST and RENEW both confirm the binding with a REPLY; after
			// a renumbering cleared the lease table, a RENEW reassigns from
			// the new prefix the way dnsmasq's stateless lease logic does.
			reply.Type = dhcp6.Reply
		}
		lease := r.leaseV6(string(msg.ClientID))
		reply.IANA = &dhcp6.IANA{IAID: msg.IANA.IAID, Addrs: []dhcp6.IAAddr{{
			Addr: lease, PreferredLifetime: 3600, ValidLifetime: 7200,
		}}}
		if msg.WantsDNS() {
			reply.DNS = []netip.Addr{cloud.DNSv6}
		}
	default:
		return
	}
	if r.Faults != nil && r.Faults.DropDHCPv6() {
		return
	}
	wire, err := reply.Marshal()
	if err != nil {
		return
	}
	src := p.IPv6.Src
	r.transmitL4(p.Ethernet.Src, RouterMAC, RouterLLA, src,
		&packet.UDP{SrcPort: dhcp6.ServerPort, DstPort: dhcp6.ClientPort, Src: RouterLLA, Dst: src, PayloadData: wire})
}

// leaseV6 assigns a stable IA_NA address from the GUA prefix per DUID.
func (r *Router) leaseV6(duid string) netip.Addr {
	if a, ok := r.dhcp6Leases[duid]; ok {
		return a
	}
	r.nextV6Lease++
	var iid [8]byte
	iid[5] = 0x10 // 2001:470:8:100::10xx range, away from SLAAC IIDs
	binary.BigEndian.PutUint16(iid[6:8], r.nextV6Lease)
	a := addr.FromPrefixIID(r.guaPrefix, iid)
	r.dhcp6Leases[duid] = a
	return a
}

// DHCPv6LeaseFor returns the stateful lease for a DUID, if assigned.
func (r *Router) DHCPv6LeaseFor(duid []byte) (netip.Addr, bool) {
	a, ok := r.dhcp6Leases[string(duid)]
	return a, ok
}
