package router

import (
	"net/netip"
	"testing"

	"v6lab/internal/cloud"
	"v6lab/internal/conntrack"
	"v6lab/internal/firewall"
	"v6lab/internal/packet"
)

var (
	devGUA  = netip.MustParseAddr("2001:470:8:100::10")
	wanScan = netip.MustParseAddr("2001:db8::5ca9")
)

// announceV6 teaches the router the device's GUA by sending any v6 frame
// from it (the router learns neighbors from source addresses).
func announceV6(t *testing.T, h *scriptHost) {
	t.Helper()
	send(t, h,
		&packet.Ethernet{Dst: RouterMAC, Src: devMAC, Type: packet.EtherTypeIPv6},
		&packet.IPv6{NextHeader: packet.IPProtocolUDP, HopLimit: 64, Src: devGUA, Dst: RouterGUA},
		&packet.UDP{SrcPort: 1, DstPort: 1, Src: devGUA, Dst: RouterGUA})
}

func wanSYN(t *testing.T, dport uint16) []byte {
	t.Helper()
	raw, err := packet.Serialize(
		&packet.IPv6{NextHeader: packet.IPProtocolTCP, HopLimit: 64, Src: wanScan, Dst: devGUA},
		&packet.TCP{SrcPort: 55555, DstPort: dport, Seq: 9, Flags: packet.TCPFlagSYN, Src: wanScan, Dst: devGUA})
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func setupFW(t *testing.T, pol firewall.Policy) (*Router, *scriptHost, func()) {
	t.Helper()
	n, r, h, _ := setup(t, Config{IPv6: true})
	r.SetFirewall(firewall.New(pol, n.Clock, conntrack.DefaultConfig()))
	announceV6(t, h)
	run(t, n)
	h.rx = nil
	return r, h, func() { run(t, n) }
}

func TestInjectWANv6OpenDelivers(t *testing.T) {
	r, h, drain := setupFW(t, firewall.Open{})
	r.InjectWANv6(wanSYN(t, 8080))
	drain()
	p := h.last()
	if p == nil || p.TCP == nil || p.TCP.DstPort != 8080 || p.IPv6.Src != wanScan {
		t.Fatalf("probe not delivered under open policy: %+v", p)
	}
	if st := r.FW.Stats(); st.AllowedByPolicy != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestInjectWANv6StatefulDrops(t *testing.T) {
	r, h, drain := setupFW(t, firewall.StatefulDefaultDeny{})
	r.InjectWANv6(wanSYN(t, 8080))
	drain()
	if len(h.rx) != 0 {
		t.Fatalf("probe leaked through default-deny: %+v", h.last())
	}
	if st := r.FW.Stats(); st.DroppedIn != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestInjectWANv6PinholeSelectsPort(t *testing.T) {
	pol := firewall.Pinhole{Rules: []firewall.Rule{{Prefix: GUAPrefix, Proto: packet.IPProtocolTCP, Port: 8080}}}
	r, h, drain := setupFW(t, pol)
	r.InjectWANv6(wanSYN(t, 8080))
	r.InjectWANv6(wanSYN(t, 22))
	drain()
	if len(h.rx) != 1 || h.rx[0].TCP == nil || h.rx[0].TCP.DstPort != 8080 {
		t.Fatalf("pinhole delivered %d frames, want only port 8080", len(h.rx))
	}
	st := r.FW.Stats()
	if st.AllowedByPolicy != 1 || st.DroppedIn != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestStatefulReturnTraffic verifies the RFC 6092 behaviour end to end
// through the router: a LAN-originated echo to the resolver completes
// under default-deny, while the identical inbound packet unsolicited is
// dropped.
func TestStatefulReturnTraffic(t *testing.T) {
	n, r, h, _ := setup(t, Config{IPv6: true})
	r.SetFirewall(firewall.New(firewall.StatefulDefaultDeny{}, n.Clock, conntrack.DefaultConfig()))
	announceV6(t, h)
	run(t, n)
	h.rx = nil

	// Outbound echo request to the v6 resolver establishes state; the
	// reply must come back in.
	send(t, h,
		&packet.Ethernet{Dst: RouterMAC, Src: devMAC, Type: packet.EtherTypeIPv6},
		&packet.IPv6{NextHeader: packet.IPProtocolICMPv6, HopLimit: 64, Src: devGUA, Dst: cloud.DNSv6},
		&packet.ICMPv6{Type: packet.ICMPv6TypeEchoRequest, Body: []byte{0, 1, 0, 1}, Src: devGUA, Dst: cloud.DNSv6})
	run(t, n)
	p := h.last()
	if p == nil || p.ICMPv6 == nil || p.ICMPv6.Type != packet.ICMPv6TypeEchoReply {
		t.Fatalf("echo reply dropped by stateful firewall: %+v", p)
	}
	if r.ForwardedV6 != 1 {
		t.Fatalf("ForwardedV6 = %d, want 1", r.ForwardedV6)
	}

	// The same reply arriving with no prior outbound flow is unsolicited.
	h.rx = nil
	raw, err := packet.Serialize(
		&packet.IPv6{NextHeader: packet.IPProtocolICMPv6, HopLimit: 64, Src: netip.MustParseAddr("2606:4700:f1::9"), Dst: devGUA},
		&packet.ICMPv6{Type: packet.ICMPv6TypeEchoReply, Body: []byte{0, 1, 0, 1}, Src: netip.MustParseAddr("2606:4700:f1::9"), Dst: devGUA})
	if err != nil {
		t.Fatal(err)
	}
	r.InjectWANv6(raw)
	run(t, n)
	if len(h.rx) != 0 {
		t.Fatalf("unsolicited ICMPv6 leaked: %+v", h.last())
	}
}

// TestWANv6TapConsumes verifies the exposure experiment's vantage hook:
// a consuming tap sees forwarded packets and keeps them from the cloud.
func TestWANv6TapConsumes(t *testing.T) {
	n, r, h, _ := setup(t, Config{IPv6: true})
	announceV6(t, h)
	run(t, n)
	var seen [][]byte
	r.WANv6Tap = func(raw []byte) bool {
		seen = append(seen, append([]byte(nil), raw...))
		return true
	}
	h.rx = nil
	send(t, h,
		&packet.Ethernet{Dst: RouterMAC, Src: devMAC, Type: packet.EtherTypeIPv6},
		&packet.IPv6{NextHeader: packet.IPProtocolICMPv6, HopLimit: 64, Src: devGUA, Dst: cloud.DNSv6},
		&packet.ICMPv6{Type: packet.ICMPv6TypeEchoRequest, Body: []byte{0, 2, 0, 1}, Src: devGUA, Dst: cloud.DNSv6})
	run(t, n)
	if len(seen) != 1 {
		t.Fatalf("tap saw %d packets, want 1", len(seen))
	}
	if len(h.rx) != 0 {
		t.Fatalf("consumed packet still reached the cloud: %+v", h.last())
	}
}
