package router

// Config selects which connectivity services the router runs, mirroring the
// six experiment configurations of Table 2. SLAAC and RDNSS are toggled
// together, exactly as the paper's configurations do.
type Config struct {
	// Name labels the experiment (e.g. "ipv6-only-stateful").
	Name string
	// IPv4 enables DHCPv4, ARP, and NAT44 forwarding.
	IPv4 bool
	// IPv6 enables router advertisements with SLAAC prefixes and RDNSS,
	// NDP, and IPv6 forwarding.
	IPv6 bool
	// StatelessDHCPv6 answers INFORMATION-REQUEST with DNS configuration
	// and sets the RA O flag.
	StatelessDHCPv6 bool
	// StatefulDHCPv6 assigns IA_NA addresses and sets the RA M flag.
	StatefulDHCPv6 bool
}

// RDNSS reports whether RAs carry the RDNSS option; the paper enables it
// whenever SLAAC is on.
func (c Config) RDNSS() bool { return c.IPv6 }

// DualStack reports whether both families are enabled.
func (c Config) DualStack() bool { return c.IPv4 && c.IPv6 }
