package mdns

import (
	"net/netip"
	"reflect"
	"testing"
)

func TestAnnouncementRoundTrip(t *testing.T) {
	a := &Announcement{
		Instance: "meross-matter-plug",
		Service:  MatterService,
		Port:     5540,
		Addr:     netip.MustParseAddr("fd42:6c61:6221::77"),
		TXT:      []string{"VP=4874+77", "DT=266"},
	}
	wire, err := a.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Instance != a.Instance || got.Service != a.Service {
		t.Errorf("identity: %q %q", got.Instance, got.Service)
	}
	if got.Port != 5540 || got.Addr != a.Addr {
		t.Errorf("srv/aaaa: %d %v", got.Port, got.Addr)
	}
	if !reflect.DeepEqual(got.TXT, a.TXT) {
		t.Errorf("txt: %v", got.TXT)
	}
	if got.Hostname != "meross-matter-plug.local" {
		t.Errorf("hostname: %q", got.Hostname)
	}
}

func TestAnnouncementWithoutAddress(t *testing.T) {
	a := &Announcement{Instance: "hub", Service: HAPService, Port: 80}
	wire, err := a.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Addr.IsValid() {
		t.Error("unexpected address")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse([]byte("nope")); err == nil {
		t.Error("garbage accepted")
	}
	// A plain DNS query is not an announcement.
	if _, err := Parse(mustPack(t)); err == nil {
		t.Error("query accepted")
	}
}

func mustPack(t *testing.T) []byte {
	t.Helper()
	m := &Announcement{Instance: "x", Service: MatterService}
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	// Flip the response bit to make it a query.
	wire[2] &^= 0x80
	return wire
}
