// Package mdns builds and parses the multicast DNS service announcements
// (RFC 6762 + DNS-SD, RFC 6763) the testbed's Matter and HomeKit devices
// exchange on the local network — the traffic behind the paper's "Local
// Trans" feature and its observation that gateways and home-automation
// devices keep IPv6 alive for local protocols (§5.1.4).
package mdns

import (
	"fmt"
	"net/netip"
	"strings"

	"v6lab/internal/dnsmsg"
)

// Well-known constants.
var (
	// GroupV6 is the mDNS IPv6 multicast group ff02::fb.
	GroupV6 = netip.MustParseAddr("ff02::fb")
	// Port is the mDNS UDP port.
	Port uint16 = 5353
	// MatterService is the DNS-SD service Matter commissionees announce.
	MatterService = "_matter._tcp.local"
	// HAPService is the HomeKit Accessory Protocol service.
	HAPService = "_hap._udp.local"
)

// Announcement describes one DNS-SD service instance.
type Announcement struct {
	// Instance is the service instance label (the device's identity).
	Instance string
	// Service is the service type (e.g. _matter._tcp.local).
	Service string
	// Hostname is the advertised host (instance + ".local").
	Hostname string
	// Port is the service port.
	Port uint16
	// Addr is the device's advertised IPv6 address.
	Addr netip.Addr
	// TXT carries the service metadata strings.
	TXT []string
}

// Pack serializes the announcement as an unsolicited mDNS response
// carrying the standard DNS-SD record set: PTR, SRV, TXT, and AAAA.
func (a *Announcement) Pack() ([]byte, error) {
	inst := a.Instance + "." + a.Service
	host := a.Hostname
	if host == "" {
		host = a.Instance + ".local"
	}
	m := &dnsmsg.Message{
		Response:      true,
		Authoritative: true,
		Answers: []dnsmsg.Record{
			{Name: a.Service, Type: dnsmsg.TypePTR, TTL: 4500, Target: inst},
			{Name: inst, Type: dnsmsg.TypeSRV, TTL: 120, Priority: 0, Port: a.Port, Target: host},
			{Name: inst, Type: dnsmsg.TypeTXT, TTL: 4500, Text: a.TXT},
		},
	}
	if a.Addr.Is6() && !a.Addr.Is4In6() {
		m.Additional = append(m.Additional, dnsmsg.Record{
			Name: host, Type: dnsmsg.TypeAAAA, TTL: 120, Addr: a.Addr,
		})
	}
	return m.Pack()
}

// Parse recovers an announcement from an mDNS response payload, returning
// an error when the payload is not a DNS-SD announcement.
func Parse(payload []byte) (*Announcement, error) {
	m, err := dnsmsg.Unpack(payload)
	if err != nil {
		return nil, err
	}
	if !m.Response {
		return nil, fmt.Errorf("mdns: not a response")
	}
	a := &Announcement{}
	for _, rr := range m.Answers {
		switch rr.Type {
		case dnsmsg.TypePTR:
			a.Service = rr.Name
			a.Instance = strings.TrimSuffix(strings.TrimSuffix(rr.Target, rr.Name), ".")
		case dnsmsg.TypeSRV:
			a.Port = rr.Port
			a.Hostname = rr.Target
		case dnsmsg.TypeTXT:
			a.TXT = rr.Text
		}
	}
	for _, rr := range m.Additional {
		if rr.Type == dnsmsg.TypeAAAA {
			a.Addr = rr.Addr
		}
	}
	if a.Service == "" {
		return nil, fmt.Errorf("mdns: no PTR record")
	}
	return a, nil
}
