package firewall

import (
	"net/netip"
	"testing"
	"time"

	"v6lab/internal/conntrack"
	"v6lab/internal/netsim"
	"v6lab/internal/packet"
)

var (
	devAddr  = netip.MustParseAddr("2001:470:8:100::10")
	svcAddr  = netip.MustParseAddr("2606:4700:10::1")
	scanAddr = netip.MustParseAddr("2001:db8::bad")
	lanPfx   = netip.MustParsePrefix("2001:470:8:100::/64")
)

func newFW(p Policy) (*netsim.Clock, *Firewall) {
	clock := netsim.NewClock(time.Date(2024, 4, 5, 9, 0, 0, 0, time.UTC))
	return clock, New(p, clock, conntrack.DefaultConfig())
}

func outKey(sport, dport uint16) conntrack.FlowKey {
	return conntrack.FlowKey{Proto: packet.IPProtocolTCP, Src: devAddr, Dst: svcAddr, SrcPort: sport, DstPort: dport}
}

func probeKey(dport uint16) conntrack.FlowKey {
	return conntrack.FlowKey{Proto: packet.IPProtocolTCP, Src: scanAddr, Dst: devAddr, SrcPort: 55555, DstPort: dport}
}

func TestPoliciesOnUnsolicitedProbe(t *testing.T) {
	probe := probeKey(8080)
	tests := []struct {
		policy Policy
		want   bool
	}{
		{Open{}, true},
		{StatefulDefaultDeny{}, false},
		{Pinhole{}, false},
		{Pinhole{Rules: []Rule{{Prefix: lanPfx, Proto: packet.IPProtocolTCP, Port: 8080}}}, true},
		{Pinhole{Rules: []Rule{{Prefix: lanPfx, Proto: packet.IPProtocolTCP, Port: 22}}}, false},
		{Pinhole{Rules: []Rule{{Prefix: lanPfx, Proto: packet.IPProtocolUDP, Port: 8080}}}, false},
		{Pinhole{Rules: []Rule{{Prefix: lanPfx, Proto: packet.IPProtocolTCP}}}, true}, // port 0 = any
		{Pinhole{Rules: []Rule{{Prefix: netip.MustParsePrefix("2001:470:8:200::/64"), Proto: packet.IPProtocolTCP, Port: 8080}}}, false},
	}
	for _, tc := range tests {
		t.Run(tc.policy.Name(), func(t *testing.T) {
			_, fw := newFW(tc.policy)
			if got := fw.Inbound(probe, packet.TCPFlagSYN); got != tc.want {
				t.Fatalf("Inbound(probe) under %T%+v = %v, want %v", tc.policy, tc.policy, got, tc.want)
			}
			st := fw.Stats()
			if tc.want && st.AllowedByPolicy != 1 {
				t.Fatalf("stats = %+v, want one policy allow", st)
			}
			if !tc.want && st.DroppedIn != 1 {
				t.Fatalf("stats = %+v, want one drop", st)
			}
		})
	}
}

func TestReturnTrafficPassesEveryPolicy(t *testing.T) {
	for _, pol := range []Policy{Open{}, StatefulDefaultDeny{}, Pinhole{}} {
		t.Run(pol.Name(), func(t *testing.T) {
			_, fw := newFW(pol)
			k := outKey(40000, 443)
			fw.Outbound(k, packet.TCPFlagSYN)
			if !fw.Inbound(k.Reverse(), packet.TCPFlagSYN|packet.TCPFlagACK) {
				t.Fatal("return traffic dropped")
			}
			st := fw.Stats()
			if st.AllowedByState != 1 || st.PassedOut != 1 || st.DroppedIn != 0 {
				t.Fatalf("stats = %+v", st)
			}
		})
	}
}

func TestStatefulDropsAfterExpiry(t *testing.T) {
	clock, fw := newFW(StatefulDefaultDeny{})
	k := outKey(40000, 443)
	fw.Outbound(k, packet.TCPFlagSYN)
	// NEW-state flow idles out; late "replies" are unsolicited again.
	clock.Advance(fw.Table.Config().NewTimeout + time.Minute)
	if fw.Inbound(k.Reverse(), packet.TCPFlagACK) {
		t.Fatal("reply admitted after state expired")
	}
}

func TestPinholeTracksAdmittedFlow(t *testing.T) {
	_, fw := newFW(Pinhole{Rules: []Rule{{Prefix: lanPfx, Proto: packet.IPProtocolTCP, Port: 8080}}})
	probe := probeKey(8080)
	if !fw.Inbound(probe, packet.TCPFlagSYN) {
		t.Fatal("pinholed SYN dropped")
	}
	// Follow-up segments of the admitted flow match state, not the rule
	// list: stats must show a state hit.
	if !fw.Inbound(probe, packet.TCPFlagACK) {
		t.Fatal("follow-up segment dropped")
	}
	st := fw.Stats()
	if st.AllowedByPolicy != 1 || st.AllowedByState != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.AllowedIn() != 2 {
		t.Fatalf("AllowedIn = %d, want 2", st.AllowedIn())
	}
}

func TestByName(t *testing.T) {
	for name, wantName := range map[string]string{
		"open": "open", "Open": "open",
		"stateful": "stateful", "stateful-default-deny": "stateful", "deny": "stateful",
		"pinhole": "pinhole", " pinhole ": "pinhole",
	} {
		p, err := ByName(name)
		if err != nil || p.Name() != wantName {
			t.Errorf("ByName(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope) succeeded")
	}
}

func TestRuleString(t *testing.T) {
	r := Rule{Prefix: lanPfx, Proto: packet.IPProtocolTCP, Port: 8080}
	if s := r.String(); s == "" {
		t.Fatal("empty rule string")
	}
	anyPort := Rule{Prefix: lanPfx, Proto: packet.IPProtocolTCP}
	if s := anyPort.String(); s == "" {
		t.Fatal("empty rule string")
	}
}
