// Package firewall implements the home router's inbound-IPv6 policy — the
// countermeasure space the paper's §5.4.2/§6 security analysis motivates.
// NAT44 incidentally shields IPv4 devices from unsolicited Internet
// traffic; a routed IPv6 /64 has no such side effect, so whatever inbound
// filtering the gateway applies is the only thing between a smart-home
// device's open ports and the IPv6 Internet.
//
// Three policies are provided:
//
//   - Open: no inbound filtering at all — the paper's testbed router and
//     the common "IPv6 firewall off" consumer default.
//   - StatefulDefaultDeny: RFC 6092 simple security — only return traffic
//     of flows originated on the LAN passes, everything unsolicited drops.
//   - Pinhole: stateful default-deny plus static allow rules, modelling
//     the holes PCP/UPnP-style protocols (or manual port forwarding)
//     punch for specific devices and ports.
//
// The Firewall pairs a policy with a conntrack.Table and keeps allow/drop
// counters the exposure experiment reports.
package firewall

import (
	"fmt"
	"net/netip"
	"strings"

	"v6lab/internal/conntrack"
	"v6lab/internal/packet"
)

// Policy decides the fate of unsolicited inbound flows; the stateful
// return-traffic fast path is shared by every policy and lives in
// Firewall.Inbound.
type Policy interface {
	// Name is the CLI-facing policy identifier.
	Name() string
	// AllowUnsolicited reports whether an inbound flow with no conntrack
	// state may pass. key is oriented as the inbound packet (Dst is the
	// LAN device).
	AllowUnsolicited(key conntrack.FlowKey) bool
}

// Open admits everything — the paper's measured configuration.
type Open struct{}

// Name implements Policy.
func (Open) Name() string { return "open" }

// AllowUnsolicited implements Policy.
func (Open) AllowUnsolicited(conntrack.FlowKey) bool { return true }

// StatefulDefaultDeny admits nothing unsolicited (RFC 6092 REC-11).
type StatefulDefaultDeny struct{}

// Name implements Policy.
func (StatefulDefaultDeny) Name() string { return "stateful" }

// AllowUnsolicited implements Policy.
func (StatefulDefaultDeny) AllowUnsolicited(conntrack.FlowKey) bool { return false }

// Rule is one static pinhole: inbound flows whose destination address
// falls in Prefix, whose protocol matches Proto, and whose destination
// port matches Port (0 = any) are admitted.
type Rule struct {
	Prefix netip.Prefix
	Proto  packet.IPProtocol
	Port   uint16
}

// Matches reports whether the inbound key falls through this pinhole.
func (r Rule) Matches(key conntrack.FlowKey) bool {
	if r.Proto != key.Proto {
		return false
	}
	if r.Port != 0 && r.Port != key.DstPort {
		return false
	}
	return r.Prefix.Contains(key.Dst)
}

// String renders the rule for reports.
func (r Rule) String() string {
	port := "any"
	if r.Port != 0 {
		port = fmt.Sprint(r.Port)
	}
	return fmt.Sprintf("%v %s port %s", r.Proto, r.Prefix, port)
}

// Pinhole is stateful default-deny plus static allow rules.
type Pinhole struct {
	Rules []Rule
}

// Name implements Policy.
func (Pinhole) Name() string { return "pinhole" }

// AllowUnsolicited implements Policy.
func (p Pinhole) AllowUnsolicited(key conntrack.FlowKey) bool {
	for _, r := range p.Rules {
		if r.Matches(key) {
			return true
		}
	}
	return false
}

// PolicyNames lists the recognised policy identifiers in CLI order.
var PolicyNames = []string{"open", "stateful", "pinhole"}

// ByName resolves a policy identifier. The returned Pinhole carries no
// rules; callers add the holes their scenario models.
func ByName(name string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "open":
		return Open{}, nil
	case "stateful", "stateful-default-deny", "deny":
		return StatefulDefaultDeny{}, nil
	case "pinhole":
		return Pinhole{}, nil
	}
	return nil, fmt.Errorf("firewall: unknown policy %q (want %s)", name, strings.Join(PolicyNames, "|"))
}

// Stats counts the firewall's decisions over its lifetime.
type Stats struct {
	// PassedOut counts LAN→WAN packets recorded as originating flows.
	PassedOut uint64
	// AllowedByState counts inbound packets admitted as return traffic of
	// tracked flows; AllowedByPolicy counts unsolicited packets the
	// policy admitted; DroppedIn counts inbound packets rejected.
	AllowedByState, AllowedByPolicy, DroppedIn uint64
}

// AllowedIn is the total of inbound packets admitted.
func (s Stats) AllowedIn() uint64 { return s.AllowedByState + s.AllowedByPolicy }

// Firewall applies an inbound policy over a conntrack table.
type Firewall struct {
	policy Policy
	// Table is the flow state the stateful fast path consults; exported
	// so experiments can report its counters.
	Table *conntrack.Table
	stats Stats
}

// New builds a firewall with its own conntrack table on the given clock.
func New(p Policy, clock conntrack.Clock, cfg conntrack.Config) *Firewall {
	return &Firewall{policy: p, Table: conntrack.New(clock, cfg)}
}

// Policy returns the active policy.
func (f *Firewall) Policy() Policy { return f.policy }

// Stats returns a copy of the decision counters.
func (f *Firewall) Stats() Stats { return f.stats }

// Outbound records a LAN→WAN packet, establishing the state its return
// traffic will match. Egress is never filtered (the paper's router
// forwards all outbound traffic; so do consumer defaults).
func (f *Firewall) Outbound(key conntrack.FlowKey, tcpFlags uint8) {
	f.stats.PassedOut++
	f.Table.Outbound(key, tcpFlags)
}

// Inbound decides one WAN→LAN packet: return traffic of tracked flows
// always passes; anything unsolicited passes only if the policy admits
// it, in which case the flow is tracked so its follow-up segments match
// statefully. key is oriented as the inbound packet.
func (f *Firewall) Inbound(key conntrack.FlowKey, tcpFlags uint8) bool {
	if f.Table.Inbound(key, tcpFlags) != nil {
		f.stats.AllowedByState++
		return true
	}
	if f.policy.AllowUnsolicited(key) {
		f.stats.AllowedByPolicy++
		f.Table.Track(key, tcpFlags)
		return true
	}
	f.stats.DroppedIn++
	return false
}
