// Package cloud simulates the Internet side of the testbed: the
// authoritative DNS resolvers (standing in for the Google public DNS the
// paper configures), the device vendors' backends and CDNs, NTP, and
// third-party tracking services. The router forwards raw IP packets to the
// cloud and relays the replies back onto the LAN.
//
// Every destination domain carries the metadata the paper's analyses
// depend on: its A and AAAA records (AAAA presence is the root cause of
// most IPv6-only failures, §5.1.3), its party classification
// (first/support/third, §5.4), whether it is a tracking service (§5.4.3),
// and whether its IPv6 endpoint is actually reachable (§7, "Reachability
// of IPv6 Destinations").
package cloud

import (
	"encoding/binary"
	"fmt"
	"net/netip"

	"v6lab/internal/dnsmsg"
	"v6lab/internal/packet"
)

// Party classifies a destination domain per §5.4: first-party domains
// belong to the device vendor, support parties are cloud/CDN/NTP
// infrastructure, and everything else (trackers, analytics) is third party.
type Party int

// The party kinds.
const (
	PartyFirst Party = iota
	PartySupport
	PartyThird
)

// String names the party as the paper does.
func (p Party) String() string {
	switch p {
	case PartyFirst:
		return "first"
	case PartySupport:
		return "support"
	case PartyThird:
		return "third"
	}
	return fmt.Sprintf("Party(%d)", int(p))
}

// Domain is one Internet destination.
type Domain struct {
	// Name is the canonical (lowercase, no trailing dot) DNS name.
	Name string
	// V4 and V6 hold the A and AAAA records. An empty V6 means the domain
	// is not AAAA-ready.
	V4, V6 []netip.Addr
	Party  Party
	// Tracker marks third-party tracking/analytics services.
	Tracker bool
	// V6Unreachable models destinations that publish AAAA records whose
	// endpoints do not answer (paper §7).
	V6Unreachable bool
}

// HasAAAA reports whether the domain publishes AAAA records.
func (d *Domain) HasAAAA() bool { return len(d.V6) > 0 }

// Well-known simulated resolver addresses (Google public DNS).
var (
	DNSv4     = netip.MustParseAddr("8.8.8.8")
	DNSv6     = netip.MustParseAddr("2001:4860:4860::8888")
	NTPv4     = netip.MustParseAddr("203.0.113.123")
	NTPv6     = netip.MustParseAddr("2606:4700:f1::123")
	NTPDomain = "pool.ntp.example"
)

// Cloud is the simulated Internet.
type Cloud struct {
	domains map[string]*Domain
	byAddr  map[netip.Addr]*Domain
	nextV4  uint32 // host part within 198.18.0.0/15
	nextV6  uint64 // host part within 2606:4700:10::/48
	// Queries counts DNS questions served, by type, for diagnostics.
	Queries map[dnsmsg.Type]int

	// Scratch state for the packet path: HandleIP parses with a reusable
	// decoder and serializes every reply through reusable layer structs
	// into one reusable buffer, so returned reply slices are only valid
	// until the next HandleIP call on this cloud. The router consumes
	// replies synchronously (the switch copies frames at enqueue), which
	// is what makes the reuse safe. Each Clone carries its own scratch,
	// keeping concurrent experiment environments independent.
	dec     packet.Decoder
	tx      packet.Buffer
	ip4L    packet.IPv4
	ip6L    packet.IPv6
	udpL    packet.UDP
	tcpL    packet.TCP
	ic4L    packet.ICMPv4
	ic6L    packet.ICMPv6
	rawL    packet.Raw
	layers  [3]packet.SerializableLayer
	payload []byte
	reply   [1][]byte
}

// New creates an empty cloud with the NTP support domain preinstalled.
func New() *Cloud {
	c := &Cloud{
		domains: make(map[string]*Domain),
		byAddr:  make(map[netip.Addr]*Domain),
		Queries: make(map[dnsmsg.Type]int),
	}
	ntp := &Domain{Name: NTPDomain, V4: []netip.Addr{NTPv4}, V6: []netip.Addr{NTPv6}, Party: PartySupport}
	c.install(ntp)
	return c
}

func (c *Cloud) install(d *Domain) {
	c.domains[d.Name] = d
	for _, a := range d.V4 {
		c.byAddr[a] = d
	}
	for _, a := range d.V6 {
		c.byAddr[a] = d
	}
}

// Clone returns a cloud sharing this one's domain registry — immutable
// while experiments run — but with its own query counters, so concurrent
// experiment environments do not race on the diagnostics map. Do not call
// AddDomain or EnsureAAAA on a clone.
func (c *Cloud) Clone() *Cloud {
	return &Cloud{
		domains: c.domains,
		byAddr:  c.byAddr,
		nextV4:  c.nextV4,
		nextV6:  c.nextV6,
		Queries: make(map[dnsmsg.Type]int),
	}
}

// MergeQueries folds a clone's query counters back into this cloud.
func (c *Cloud) MergeQueries(from *Cloud) {
	for t, n := range from.Queries {
		c.Queries[t] += n
	}
}

// AddDomain registers a destination, allocating deterministic endpoint
// addresses: every domain gets one A record; AAAA-ready domains also get
// one AAAA record.
func (c *Cloud) AddDomain(name string, party Party, hasAAAA, tracker bool) *Domain {
	name = dnsmsg.CanonicalName(name)
	if d, ok := c.domains[name]; ok {
		return d
	}
	d := &Domain{Name: name, Party: party, Tracker: tracker}
	c.nextV4++
	v4 := netip.AddrFrom4([4]byte{198, 18, byte(c.nextV4 >> 8), byte(c.nextV4)})
	d.V4 = []netip.Addr{v4}
	if hasAAAA {
		c.nextV6++
		b := [16]byte{0x26, 0x06, 0x47, 0x00, 0x00, 0x10}
		binary.BigEndian.PutUint64(b[8:16], c.nextV6)
		d.V6 = []netip.Addr{netip.AddrFrom16(b)}
	}
	c.install(d)
	return d
}

// EnsureAAAA gives an already-registered domain an AAAA record if it lacks
// one (used by the what-if ablations that model a fully v6-ready Internet).
func (c *Cloud) EnsureAAAA(name string) {
	d := c.Lookup(name)
	if d == nil || len(d.V6) > 0 {
		return
	}
	c.nextV6++
	b := [16]byte{0x26, 0x06, 0x47, 0x00, 0x00, 0x10}
	binary.BigEndian.PutUint64(b[8:16], c.nextV6)
	a := netip.AddrFrom16(b)
	d.V6 = []netip.Addr{a}
	c.byAddr[a] = d
}

// Lookup returns the registered domain, or nil.
func (c *Cloud) Lookup(name string) *Domain { return c.domains[dnsmsg.CanonicalName(name)] }

// LookupAddr maps an endpoint address back to its domain, or nil.
func (c *Cloud) LookupAddr(a netip.Addr) *Domain { return c.byAddr[a] }

// Domains returns the registry; callers must not mutate it.
func (c *Cloud) Domains() map[string]*Domain { return c.domains }

// Resolve answers a DNS question the way the simulated resolver does, so
// the active-DNS experiment (§4.3) can bypass the packet path.
func (c *Cloud) Resolve(name string, qtype dnsmsg.Type) ([]dnsmsg.Record, dnsmsg.RCode) {
	d := c.Lookup(name)
	if d == nil {
		return nil, dnsmsg.RCodeNXDomain
	}
	var answers []dnsmsg.Record
	switch qtype {
	case dnsmsg.TypeA:
		for _, a := range d.V4 {
			answers = append(answers, dnsmsg.Record{Name: d.Name, Type: dnsmsg.TypeA, TTL: 300, Addr: a})
		}
	case dnsmsg.TypeAAAA:
		for _, a := range d.V6 {
			answers = append(answers, dnsmsg.Record{Name: d.Name, Type: dnsmsg.TypeAAAA, TTL: 300, Addr: a})
		}
	case dnsmsg.TypeHTTPS, dnsmsg.TypeSVCB:
		// Alias-less service binding; AAAA-ready domains advertise their
		// IPv6 endpoint via an ipv6hint, the HTTP/3 path Apple and Android
		// devices use.
		rr := dnsmsg.Record{Name: d.Name, Type: qtype, TTL: 300, Priority: 1, Target: "."}
		if len(d.V6) > 0 {
			rr.Addr = d.V6[0]
		}
		answers = append(answers, rr)
	}
	return answers, dnsmsg.RCodeSuccess
}

// HandleIP processes one raw IP packet arriving from the router's WAN side
// and returns zero or more raw IP reply packets.
func (c *Cloud) HandleIP(raw []byte) [][]byte {
	p := c.dec.ParseIP(raw)
	if p.Err != nil {
		return nil
	}
	switch {
	case p.UDP != nil && p.UDP.DstPort == 53 && (p.DstIP() == DNSv4 || p.DstIP() == DNSv6):
		return c.handleDNS(p)
	case p.UDP != nil && p.UDP.DstPort == 123:
		return c.handleNTP(p)
	case p.TCP != nil:
		return c.handleTCP(p)
	case p.ICMPv6 != nil && p.ICMPv6.Type == packet.ICMPv6TypeEchoRequest:
		return c.handleEcho6(p)
	case p.ICMPv4 != nil && p.ICMPv4.Type == packet.ICMPv4TypeEchoRequest:
		return c.handleEcho4(p)
	}
	return nil
}

// reachable reports whether the packet's destination endpoint answers.
func (c *Cloud) reachable(dst netip.Addr) bool {
	d := c.byAddr[dst]
	if d == nil {
		return false
	}
	if dst.Is6() && !dst.Is4In6() && d.V6Unreachable {
		return false
	}
	return true
}

func (c *Cloud) replyUDP(p *packet.Packet, payload []byte) [][]byte {
	c.udpL = packet.UDP{SrcPort: p.UDP.DstPort, DstPort: p.UDP.SrcPort, Src: p.DstIP(), Dst: p.SrcIP()}
	return c.serializeReply(p.DstIP(), p.SrcIP(), &c.udpL, payload)
}

// serializeReply builds one raw IP reply (src → dst wrapping l4 and an
// optional payload) into the cloud's reusable buffer and returns it as the
// reply set. The bytes are valid until the next HandleIP call.
func (c *Cloud) serializeReply(src, dst netip.Addr, l4 packet.SerializableLayer, payload []byte) [][]byte {
	proto := protoOf(l4)
	var ipLayer packet.SerializableLayer
	if src.Is4() {
		c.ip4L = packet.IPv4{Protocol: proto, Src: src, Dst: dst}
		ipLayer = &c.ip4L
	} else {
		c.ip6L = packet.IPv6{NextHeader: proto, Src: src, Dst: dst}
		ipLayer = &c.ip6L
	}
	ls := append(c.layers[:0], ipLayer, l4)
	if len(payload) > 0 {
		c.rawL = payload
		ls = append(ls, &c.rawL)
	}
	out, err := packet.SerializeInto(&c.tx, ls...)
	if err != nil {
		return nil
	}
	c.reply[0] = out
	return c.reply[:1]
}

// payloadBuf returns a zeroed n-byte scratch slice reused across replies.
func (c *Cloud) payloadBuf(n int) []byte {
	if cap(c.payload) < n {
		c.payload = make([]byte, n)
	}
	b := c.payload[:n]
	for i := range b {
		b[i] = 0
	}
	return b
}

func (c *Cloud) handleDNS(p *packet.Packet) [][]byte {
	q, err := dnsmsg.Unpack(p.UDP.PayloadData)
	if err != nil || q.Response || len(q.Questions) == 0 {
		return nil
	}
	question := q.Questions[0]
	c.Queries[question.Type]++
	answers, rcode := c.Resolve(question.Name, question.Type)
	r := q.Reply(rcode)
	r.Answers = answers
	if len(answers) == 0 {
		// NODATA/NXDOMAIN negative answer carries the zone SOA, the shape
		// the paper observed ("no such name" error and/or SOA records).
		r.Authority = []dnsmsg.Record{{
			Name: dnsmsg.SLD(question.Name), Type: dnsmsg.TypeSOA, TTL: 900,
			Target: "ns1." + dnsmsg.SLD(question.Name),
		}}
	}
	wire, err := r.Pack()
	if err != nil {
		return nil
	}
	return c.replyUDP(p, wire)
}

func (c *Cloud) handleNTP(p *packet.Packet) [][]byte {
	if !c.reachable(p.DstIP()) || len(p.UDP.PayloadData) < 48 {
		return nil
	}
	resp := c.payloadBuf(48)
	resp[0] = 0x24 // LI=0 VN=4 mode=server
	return c.replyUDP(p, resp)
}

// handleTCP implements a reactive TCP endpoint: SYN-ACK for open service
// ports on reachable endpoints, RST otherwise, ACK+equal-sized response for
// data, and FIN-ACK teardown.
func (c *Cloud) handleTCP(p *packet.Packet) [][]byte {
	t := p.TCP
	mk := func(flags uint8, seq, ack uint32, payload []byte) [][]byte {
		c.tcpL = packet.TCP{
			SrcPort: t.DstPort, DstPort: t.SrcPort, Seq: seq, Ack: ack,
			Flags: flags, Src: p.DstIP(), Dst: p.SrcIP(),
		}
		return c.serializeReply(p.DstIP(), p.SrcIP(), &c.tcpL, payload)
	}
	if !c.reachable(p.DstIP()) {
		if c.byAddr[p.DstIP()] != nil && p.IsIPv6() {
			// AAAA-published but unreachable endpoint: silence (timeout).
			return nil
		}
		return mk(packet.TCPFlagRST|packet.TCPFlagACK, 0, t.Seq+1, nil)
	}
	// Server initial sequence number, deterministic per 4-tuple.
	isn := tupleHash(p.SrcIP(), p.DstIP(), t.SrcPort, t.DstPort)
	switch {
	case t.HasFlag(packet.TCPFlagSYN):
		return mk(packet.TCPFlagSYN|packet.TCPFlagACK, isn, t.Seq+1, nil)
	case t.HasFlag(packet.TCPFlagFIN):
		return mk(packet.TCPFlagFIN|packet.TCPFlagACK, t.Ack, t.Seq+1, nil)
	case len(t.PayloadData) > 0:
		// Acknowledge and answer with an equal-sized application payload,
		// keeping per-destination volume proportional to what the device
		// sent (Table 6's volume fractions count both directions).
		resp := c.payloadBuf(len(t.PayloadData))
		for i := range resp {
			resp[i] = 0x17 // looks like TLS application data
		}
		return mk(packet.TCPFlagPSH|packet.TCPFlagACK, t.Ack, t.Seq+uint32(len(t.PayloadData)), resp)
	}
	return nil
}

func (c *Cloud) handleEcho6(p *packet.Packet) [][]byte {
	if !c.reachable(p.DstIP()) && p.DstIP() != DNSv6 {
		return nil
	}
	c.ic6L = packet.ICMPv6{
		Type: packet.ICMPv6TypeEchoReply, Body: p.ICMPv6.Body, Src: p.DstIP(), Dst: p.SrcIP(),
	}
	return c.serializeReply(p.DstIP(), p.SrcIP(), &c.ic6L, nil)
}

func (c *Cloud) handleEcho4(p *packet.Packet) [][]byte {
	if !c.reachable(p.DstIP()) && p.DstIP() != DNSv4 {
		return nil
	}
	c.ic4L = packet.ICMPv4{Type: packet.ICMPv4TypeEchoReply, Body: p.ICMPv4.Body}
	return c.serializeReply(p.DstIP(), p.SrcIP(), &c.ic4L, nil)
}

func protoOf(l packet.SerializableLayer) packet.IPProtocol {
	switch l.(type) {
	case *packet.UDP:
		return packet.IPProtocolUDP
	case *packet.TCP:
		return packet.IPProtocolTCP
	case *packet.ICMPv6:
		return packet.IPProtocolICMPv6
	case *packet.ICMPv4:
		return packet.IPProtocolICMPv4
	}
	return packet.IPProtocolNoNext
}

func tupleHash(a, b netip.Addr, p1, p2 uint16) uint32 {
	h := uint32(2166136261)
	mix := func(bs []byte) {
		for _, x := range bs {
			h = (h ^ uint32(x)) * 16777619
		}
	}
	ab, bb := a.As16(), b.As16()
	mix(ab[:])
	mix(bb[:])
	mix([]byte{byte(p1 >> 8), byte(p1), byte(p2 >> 8), byte(p2)})
	return h
}
