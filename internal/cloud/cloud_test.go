package cloud

import (
	"net/netip"
	"testing"

	"v6lab/internal/dnsmsg"
	"v6lab/internal/packet"
)

var clientV4 = netip.MustParseAddr("203.0.113.2")
var clientV6 = netip.MustParseAddr("2001:470:8:100::10")

func mustIP(t *testing.T, layers ...packet.SerializableLayer) []byte {
	t.Helper()
	out, err := packet.Serialize(layers...)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func dnsQuery(t *testing.T, c *Cloud, src, server netip.Addr, name string, qtype dnsmsg.Type) *dnsmsg.Message {
	t.Helper()
	q := dnsmsg.NewQuery(99, name, qtype)
	wire, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	var ipL packet.SerializableLayer
	if src.Is4() {
		ipL = &packet.IPv4{Protocol: packet.IPProtocolUDP, Src: src, Dst: server}
	} else {
		ipL = &packet.IPv6{NextHeader: packet.IPProtocolUDP, Src: src, Dst: server}
	}
	req := mustIP(t, ipL, &packet.UDP{SrcPort: 40000, DstPort: 53, Src: src, Dst: server}, packet.Raw(wire))
	replies := c.HandleIP(req)
	if len(replies) != 1 {
		t.Fatalf("dns replies = %d", len(replies))
	}
	rp := packet.ParseIP(replies[0])
	if rp.Err != nil || rp.UDP == nil {
		t.Fatalf("bad dns reply: %v", rp.Err)
	}
	if rp.SrcIP() != server || rp.UDP.SrcPort != 53 || rp.UDP.DstPort != 40000 {
		t.Fatalf("reply addressing %v:%d -> %d", rp.SrcIP(), rp.UDP.SrcPort, rp.UDP.DstPort)
	}
	m, err := dnsmsg.Unpack(rp.UDP.PayloadData)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDNSAOverV4AndAAAAOverV6(t *testing.T) {
	c := New()
	d := c.AddDomain("api.vendor.example", PartyFirst, true, false)

	m := dnsQuery(t, c, clientV4, DNSv4, "api.vendor.example", dnsmsg.TypeA)
	if m.RCode != dnsmsg.RCodeSuccess || len(m.Answers) != 1 || m.Answers[0].Addr != d.V4[0] {
		t.Errorf("A answer: %+v", m.Answers)
	}

	m = dnsQuery(t, c, clientV6, DNSv6, "api.vendor.example", dnsmsg.TypeAAAA)
	if len(m.Answers) != 1 || m.Answers[0].Addr != d.V6[0] {
		t.Errorf("AAAA answer: %+v", m.Answers)
	}
	if !m.Answers[0].Addr.Is6() {
		t.Error("AAAA not v6")
	}
	if c.Queries[dnsmsg.TypeA] != 1 || c.Queries[dnsmsg.TypeAAAA] != 1 {
		t.Errorf("query counters: %v", c.Queries)
	}
}

func TestAAAAQueryOverIPv4Transport(t *testing.T) {
	// Many devices send AAAA queries over IPv4 only (Table 5); the resolver
	// must answer regardless of transport family.
	c := New()
	d := c.AddDomain("dual.example", PartyFirst, true, false)
	m := dnsQuery(t, c, clientV4, DNSv4, "dual.example", dnsmsg.TypeAAAA)
	if len(m.Answers) != 1 || m.Answers[0].Addr != d.V6[0] {
		t.Errorf("AAAA over v4: %+v", m.Answers)
	}
}

func TestNoAAAAGivesNodataWithSOA(t *testing.T) {
	c := New()
	c.AddDomain("v4only.example", PartyFirst, false, false)
	m := dnsQuery(t, c, clientV6, DNSv6, "v4only.example", dnsmsg.TypeAAAA)
	if m.RCode != dnsmsg.RCodeSuccess || len(m.Answers) != 0 {
		t.Errorf("nodata: rcode=%v answers=%d", m.RCode, len(m.Answers))
	}
	if len(m.Authority) != 1 || m.Authority[0].Type != dnsmsg.TypeSOA {
		t.Errorf("authority: %+v", m.Authority)
	}
}

func TestUnknownNameNXDomain(t *testing.T) {
	c := New()
	m := dnsQuery(t, c, clientV4, DNSv4, "nope.example", dnsmsg.TypeA)
	if m.RCode != dnsmsg.RCodeNXDomain {
		t.Errorf("rcode = %v", m.RCode)
	}
}

func TestHTTPSQueryAnswered(t *testing.T) {
	c := New()
	c.AddDomain("apple.example", PartyFirst, true, false)
	m := dnsQuery(t, c, clientV6, DNSv6, "apple.example", dnsmsg.TypeHTTPS)
	if len(m.Answers) != 1 || m.Answers[0].Type != dnsmsg.TypeHTTPS {
		t.Errorf("https: %+v", m.Answers)
	}
}

func TestTCPHandshakeDataAndTeardown(t *testing.T) {
	c := New()
	d := c.AddDomain("svc.example", PartyFirst, true, false)
	dst := d.V6[0]
	tcp := func(flags uint8, seq, ack uint32, payload []byte) []byte {
		return mustIP(t,
			&packet.IPv6{NextHeader: packet.IPProtocolTCP, Src: clientV6, Dst: dst},
			&packet.TCP{SrcPort: 55555, DstPort: 443, Seq: seq, Ack: ack, Flags: flags, Src: clientV6, Dst: dst},
			packet.Raw(payload))
	}
	// SYN -> SYN-ACK
	replies := c.HandleIP(tcp(packet.TCPFlagSYN, 100, 0, nil))
	if len(replies) != 1 {
		t.Fatalf("syn replies: %d", len(replies))
	}
	sa := packet.ParseIP(replies[0])
	if !sa.TCP.HasFlag(packet.TCPFlagSYN|packet.TCPFlagACK) || sa.TCP.Ack != 101 {
		t.Fatalf("synack: %+v", sa.TCP)
	}
	// data -> equal-sized response
	payload := []byte("0123456789")
	replies = c.HandleIP(tcp(packet.TCPFlagPSH|packet.TCPFlagACK, 101, sa.TCP.Seq+1, payload))
	if len(replies) != 1 {
		t.Fatalf("data replies: %d", len(replies))
	}
	resp := packet.ParseIP(replies[0])
	if len(resp.TCP.PayloadData) != len(payload) {
		t.Errorf("response size %d", len(resp.TCP.PayloadData))
	}
	if resp.TCP.Ack != 101+uint32(len(payload)) {
		t.Errorf("ack %d", resp.TCP.Ack)
	}
	// FIN -> FIN-ACK
	replies = c.HandleIP(tcp(packet.TCPFlagFIN|packet.TCPFlagACK, 111, resp.TCP.Seq, nil))
	if len(replies) != 1 || !packet.ParseIP(replies[0]).TCP.HasFlag(packet.TCPFlagFIN) {
		t.Error("no fin-ack")
	}
}

func TestTCPToUnknownAddressRST(t *testing.T) {
	c := New()
	dst := netip.MustParseAddr("198.18.99.99")
	req := mustIP(t,
		&packet.IPv4{Protocol: packet.IPProtocolTCP, Src: clientV4, Dst: dst},
		&packet.TCP{SrcPort: 1, DstPort: 443, Seq: 5, Flags: packet.TCPFlagSYN, Src: clientV4, Dst: dst})
	replies := c.HandleIP(req)
	if len(replies) != 1 || !packet.ParseIP(replies[0]).TCP.HasFlag(packet.TCPFlagRST) {
		t.Error("want RST")
	}
}

func TestV6UnreachableEndpointSilent(t *testing.T) {
	c := New()
	d := c.AddDomain("ghost.example", PartyFirst, true, false)
	d.V6Unreachable = true
	req := mustIP(t,
		&packet.IPv6{NextHeader: packet.IPProtocolTCP, Src: clientV6, Dst: d.V6[0]},
		&packet.TCP{SrcPort: 2, DstPort: 443, Flags: packet.TCPFlagSYN, Src: clientV6, Dst: d.V6[0]})
	if replies := c.HandleIP(req); len(replies) != 0 {
		t.Errorf("want silence, got %d replies", len(replies))
	}
	// ...but its IPv4 endpoint still answers.
	req4 := mustIP(t,
		&packet.IPv4{Protocol: packet.IPProtocolTCP, Src: clientV4, Dst: d.V4[0]},
		&packet.TCP{SrcPort: 2, DstPort: 443, Flags: packet.TCPFlagSYN, Src: clientV4, Dst: d.V4[0]})
	if replies := c.HandleIP(req4); len(replies) != 1 {
		t.Errorf("v4 replies = %d", len(replies))
	}
}

func TestNTP(t *testing.T) {
	c := New()
	req := mustIP(t,
		&packet.IPv4{Protocol: packet.IPProtocolUDP, Src: clientV4, Dst: NTPv4},
		&packet.UDP{SrcPort: 123, DstPort: 123, Src: clientV4, Dst: NTPv4},
		packet.Raw(make([]byte, 48)))
	replies := c.HandleIP(req)
	if len(replies) != 1 {
		t.Fatalf("ntp replies: %d", len(replies))
	}
	if p := packet.ParseIP(replies[0]); len(p.UDP.PayloadData) != 48 {
		t.Errorf("ntp payload %d", len(p.UDP.PayloadData))
	}
}

func TestEchoBothFamilies(t *testing.T) {
	c := New()
	d := c.AddDomain("ping.example", PartyFirst, true, false)
	req6 := mustIP(t,
		&packet.IPv6{NextHeader: packet.IPProtocolICMPv6, Src: clientV6, Dst: d.V6[0]},
		&packet.ICMPv6{Type: packet.ICMPv6TypeEchoRequest, Body: []byte{0, 1, 0, 1}, Src: clientV6, Dst: d.V6[0]})
	if replies := c.HandleIP(req6); len(replies) != 1 || packet.ParseIP(replies[0]).ICMPv6.Type != packet.ICMPv6TypeEchoReply {
		t.Error("no v6 echo reply")
	}
	req4 := mustIP(t,
		&packet.IPv4{Protocol: packet.IPProtocolICMPv4, Src: clientV4, Dst: d.V4[0]},
		&packet.ICMPv4{Type: packet.ICMPv4TypeEchoRequest, Body: []byte{0, 1, 0, 1}})
	if replies := c.HandleIP(req4); len(replies) != 1 || packet.ParseIP(replies[0]).ICMPv4.Type != packet.ICMPv4TypeEchoReply {
		t.Error("no v4 echo reply")
	}
}

func TestDeterministicAddressAllocation(t *testing.T) {
	c1, c2 := New(), New()
	for _, n := range []string{"a.example", "b.example", "c.example"} {
		c1.AddDomain(n, PartyFirst, true, false)
		c2.AddDomain(n, PartyFirst, true, false)
	}
	for n := range c1.Domains() {
		d1, d2 := c1.Lookup(n), c2.Lookup(n)
		if d1.V4[0] != d2.V4[0] {
			t.Errorf("%s: %v != %v", n, d1.V4[0], d2.V4[0])
		}
	}
	if c1.AddDomain("a.example", PartyFirst, true, false) != c1.Lookup("a.example") {
		t.Error("re-add created duplicate")
	}
}

func TestLookupAddrAndParties(t *testing.T) {
	c := New()
	d := c.AddDomain("track.analytics.example", PartyThird, false, true)
	if c.LookupAddr(d.V4[0]) != d {
		t.Error("LookupAddr failed")
	}
	if d.Party.String() != "third" || PartyFirst.String() != "first" || PartySupport.String() != "support" {
		t.Error("party strings")
	}
	if d.HasAAAA() {
		t.Error("HasAAAA true for v4-only domain")
	}
	if c.Lookup(NTPDomain) == nil {
		t.Error("NTP domain missing")
	}
}

func TestGarbageInputIgnored(t *testing.T) {
	c := New()
	if out := c.HandleIP(nil); out != nil {
		t.Error("nil input")
	}
	if out := c.HandleIP([]byte{0xff, 0x00}); out != nil {
		t.Error("bad version")
	}
}
