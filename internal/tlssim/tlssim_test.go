package tlssim

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestClientHelloSNIRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, host := range []string{"api.nest.example", "a2.tuyaus.com", "x", strings.Repeat("a", 63) + ".example"} {
		rec := ClientHello(host, rng)
		got, err := SNI(rec)
		if err != nil {
			t.Fatalf("%s: %v", host, err)
		}
		if got != host {
			t.Errorf("SNI = %q, want %q", got, host)
		}
	}
}

func TestClientHelloNilRNG(t *testing.T) {
	rec := ClientHello("example.com", nil)
	got, err := SNI(rec)
	if err != nil || got != "example.com" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestSNIRejectsNonHello(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		[]byte("GET / HTTP/1.1\r\n"),
		{recordTypeHandshake, 3, 3, 0, 1, 99}, // handshake but not client hello
	}
	for i, c := range cases {
		if _, err := SNI(c); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestSNITruncationsRejectedOrEmpty(t *testing.T) {
	rec := ClientHello("truncate.example", nil)
	for cut := 1; cut < len(rec); cut++ {
		name, err := SNI(rec[:cut])
		if err == nil && name == "truncate.example" {
			t.Fatalf("full SNI recovered from %d-byte truncation", cut)
		}
	}
}

// Property: round trip holds for arbitrary hostnames of reasonable length.
func TestQuickSNIRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(raw string) bool {
		host := strings.Map(func(r rune) rune {
			if r >= 'a' && r <= 'z' || r == '.' || r == '-' {
				return r
			}
			return -1
		}, strings.ToLower(raw))
		if host == "" || len(host) > 200 {
			return true
		}
		got, err := SNI(ClientHello(host, rng))
		return err == nil && got == host
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
