// Package tlssim builds and parses just enough of a TLS 1.2/1.3
// ClientHello to carry a Server Name Indication extension. The paper's
// pipeline extracts destination domains "from the DNS queries and TLS
// handshake data" (§5.2.2); the simulated devices open their application
// connections with these hellos so the analyzer can exercise the same
// extraction path.
package tlssim

import (
	"encoding/binary"
	"errors"
	"math/rand"
)

const (
	recordTypeHandshake   = 22
	handshakeClientHello  = 1
	extensionServerName   = 0
	sniHostNameType       = 0
	versionTLS12          = 0x0303
	clientHelloHeaderSkip = 2 + 32 // version + random
)

// ErrNotClientHello is returned when a payload is not a TLS ClientHello.
var ErrNotClientHello = errors.New("tlssim: not a client hello")

// ClientHello serializes a minimal TLS record containing a ClientHello
// whose SNI names host. rng randomizes the client random; it may be nil
// for a zero random.
func ClientHello(host string, rng *rand.Rand) []byte {
	// Extensions: server_name only.
	nameBytes := []byte(host)
	sniEntry := make([]byte, 3+len(nameBytes))
	sniEntry[0] = sniHostNameType
	binary.BigEndian.PutUint16(sniEntry[1:3], uint16(len(nameBytes)))
	copy(sniEntry[3:], nameBytes)
	sniList := make([]byte, 2+len(sniEntry))
	binary.BigEndian.PutUint16(sniList[0:2], uint16(len(sniEntry)))
	copy(sniList[2:], sniEntry)
	ext := make([]byte, 4+len(sniList))
	binary.BigEndian.PutUint16(ext[0:2], extensionServerName)
	binary.BigEndian.PutUint16(ext[2:4], uint16(len(sniList)))
	copy(ext[4:], sniList)

	// ClientHello body.
	body := make([]byte, 0, 64+len(ext))
	body = binary.BigEndian.AppendUint16(body, versionTLS12)
	random := make([]byte, 32)
	if rng != nil {
		for i := range random {
			random[i] = byte(rng.Intn(256))
		}
	}
	body = append(body, random...)
	body = append(body, 0)                                       // session id length
	body = append(body, 0, 2, 0x13, 0x01)                        // one cipher suite: TLS_AES_128_GCM_SHA256
	body = append(body, 1, 0)                                    // compression: null
	body = binary.BigEndian.AppendUint16(body, uint16(len(ext))) // extensions length
	body = append(body, ext...)

	// Handshake header.
	hs := make([]byte, 4+len(body))
	hs[0] = handshakeClientHello
	hs[1] = byte(len(body) >> 16)
	hs[2] = byte(len(body) >> 8)
	hs[3] = byte(len(body))
	copy(hs[4:], body)

	// Record header.
	rec := make([]byte, 5+len(hs))
	rec[0] = recordTypeHandshake
	binary.BigEndian.PutUint16(rec[1:3], versionTLS12)
	binary.BigEndian.PutUint16(rec[3:5], uint16(len(hs)))
	copy(rec[5:], hs)
	return rec
}

// SNI extracts the server name from a TLS ClientHello record, returning
// ErrNotClientHello for payloads that are not hellos and "" (no error) for
// hellos without the extension.
func SNI(payload []byte) (string, error) {
	if len(payload) < 5 || payload[0] != recordTypeHandshake {
		return "", ErrNotClientHello
	}
	recLen := int(binary.BigEndian.Uint16(payload[3:5]))
	if len(payload) < 5+recLen {
		return "", ErrNotClientHello
	}
	hs := payload[5 : 5+recLen]
	if len(hs) < 4 || hs[0] != handshakeClientHello {
		return "", ErrNotClientHello
	}
	hsLen := int(hs[1])<<16 | int(hs[2])<<8 | int(hs[3])
	if len(hs) < 4+hsLen {
		return "", ErrNotClientHello
	}
	b := hs[4 : 4+hsLen]
	if len(b) < clientHelloHeaderSkip+1 {
		return "", ErrNotClientHello
	}
	p := clientHelloHeaderSkip
	sessLen := int(b[p])
	p += 1 + sessLen
	if len(b) < p+2 {
		return "", ErrNotClientHello
	}
	csLen := int(binary.BigEndian.Uint16(b[p : p+2]))
	p += 2 + csLen
	if len(b) < p+1 {
		return "", ErrNotClientHello
	}
	compLen := int(b[p])
	p += 1 + compLen
	if len(b) < p+2 {
		return "", nil // no extensions block: legal, no SNI
	}
	extLen := int(binary.BigEndian.Uint16(b[p : p+2]))
	p += 2
	if len(b) < p+extLen {
		return "", ErrNotClientHello
	}
	exts := b[p : p+extLen]
	for len(exts) >= 4 {
		typ := binary.BigEndian.Uint16(exts[0:2])
		l := int(binary.BigEndian.Uint16(exts[2:4]))
		if len(exts) < 4+l {
			return "", ErrNotClientHello
		}
		if typ == extensionServerName {
			v := exts[4 : 4+l]
			if len(v) < 2 {
				return "", ErrNotClientHello
			}
			list := v[2:]
			for len(list) >= 3 {
				nameLen := int(binary.BigEndian.Uint16(list[1:3]))
				if len(list) < 3+nameLen {
					return "", ErrNotClientHello
				}
				if list[0] == sniHostNameType {
					return string(list[3 : 3+nameLen]), nil
				}
				list = list[3+nameLen:]
			}
		}
		exts = exts[4+l:]
	}
	return "", nil
}
