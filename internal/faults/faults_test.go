package faults

import (
	"testing"
	"time"

	"v6lab/internal/netsim"
)

func TestPRNGIsDeterministicAndPlatformStable(t *testing.T) {
	// Pin the first splitmix64 outputs for seed 1: any change to the
	// sequence silently changes every impaired pcap.
	r := rng{state: 1}
	want := []uint64{0x910a2dec89025cc1, 0xbeeb8da1658eec67, 0xf893a2eefb32555e}
	for i, w := range want {
		if got := r.next(); got != w {
			t.Fatalf("next()[%d] = %#x, want %#x", i, got, w)
		}
	}
	a, b := rng{state: 42}, rng{state: 42}
	for i := 0; i < 1000; i++ {
		if a.permille() != b.permille() {
			t.Fatalf("same-seed sequences diverged at draw %d", i)
		}
	}
}

func TestSubSeedVariesByScopeNotByCall(t *testing.T) {
	if SubSeed(1, "ipv6-only") == SubSeed(1, "dual-stack") {
		t.Error("different scopes must derive different sub-seeds")
	}
	if SubSeed(1, "ipv6-only") != SubSeed(1, "ipv6-only") {
		t.Error("SubSeed must be a pure function")
	}
	if SubSeed(1, "ipv6-only") == SubSeed(2, "ipv6-only") {
		t.Error("different base seeds must derive different sub-seeds")
	}
}

func TestActive(t *testing.T) {
	if Clean().Active() {
		t.Error("Clean must be inactive")
	}
	if (Profile{}).Active() {
		t.Error("zero profile must be inactive")
	}
	for _, p := range []Profile{LossyWiFi(), ClampedTunnel(), FlakyDNSMasq(),
		{Blackouts: []Window{{From: 0, To: time.Second}}}} {
		if !p.Active() {
			t.Errorf("%q must be active", p.Name)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"clean", "lossy-wifi", "clamped-tunnel", "flaky-dnsmasq"} {
		p, err := ByName(name)
		if err != nil || p.Name != name {
			t.Errorf("ByName(%q) = %v, %v", name, p.Name, err)
		}
	}
	if _, err := ByName("solar-flare"); err == nil {
		t.Error("unknown name must error")
	}
}

func TestNthDropSchedule(t *testing.T) {
	// n=2: drop the 1st, 3rd, 5th, ... occurrence.
	count := 0
	var got []bool
	for i := 0; i < 6; i++ {
		got = append(got, nthDrop(2, &count))
	}
	want := []bool{true, false, true, false, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("nthDrop(2) occurrence %d = %v, want %v", i+1, got[i], want[i])
		}
	}
	// n=1 drops everything; n=0 nothing.
	count = 0
	if !nthDrop(1, &count) || !nthDrop(1, &count) {
		t.Error("nthDrop(1) must always drop")
	}
	count = 0
	if nthDrop(0, &count) {
		t.Error("nthDrop(0) must never drop")
	}
}

func TestLinkVerdictDeterminismAndRates(t *testing.T) {
	p := LossyWiFi()
	a, b := NewLink(p, 7), NewLink(p, 7)
	frame := make([]byte, 64)
	counts := map[netsim.Verdict]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		va, vb := a.Verdict(frame), b.Verdict(frame)
		if va != vb {
			t.Fatalf("same-seed links diverged at frame %d", i)
		}
		counts[va]++
	}
	// 3% loss over 20k frames: allow a generous deterministic-band check.
	if d := counts[netsim.Drop]; d < n*20/1000 || d > n*40/1000 {
		t.Errorf("drop count %d far from the 3%% target", d)
	}
	if a.Dropped() != counts[netsim.Drop] {
		t.Errorf("Dropped() = %d, want %d", a.Dropped(), counts[netsim.Drop])
	}
	if counts[netsim.Duplicate] == 0 || counts[netsim.Defer] == 0 {
		t.Error("expected some duplications and reorders at 20k frames")
	}
}

func TestBlackoutWindows(t *testing.T) {
	clock := netsim.NewClock(time.Date(2024, 4, 5, 9, 0, 0, 0, time.UTC))
	p := Profile{Blackouts: []Window{{From: 2 * time.Second, To: 4 * time.Second}}}
	s := NewServices(p, clock)
	if s.Blackout() {
		t.Error("before the window")
	}
	clock.Advance(3 * time.Second)
	if !s.Blackout() {
		t.Error("inside the window")
	}
	if !s.DropRA() || !s.DropDHCPv6() || !s.DropDNSReply(nil) {
		t.Error("all services must stay silent during a blackout")
	}
	clock.Advance(2 * time.Second)
	if s.Blackout() {
		t.Error("after the window")
	}
	if s.RAsDropped != 1 || s.DHCPv6Dropped != 1 || s.AAAADropped != 1 {
		t.Errorf("drop counters = %d/%d/%d, want 1/1/1", s.RAsDropped, s.DHCPv6Dropped, s.AAAADropped)
	}
}

func TestServicesSchedules(t *testing.T) {
	clock := netsim.NewClock(time.Date(2024, 4, 5, 9, 0, 0, 0, time.UTC))
	s := NewServices(FlakyDNSMasq(), clock)
	// RA schedule n=2: 1st dropped, 2nd sent, 3rd dropped.
	got := []bool{s.DropRA(), s.DropRA(), s.DropRA()}
	want := []bool{true, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DropRA occurrence %d = %v, want %v", i+1, got[i], want[i])
		}
	}
	if s.RAsDropped != 2 {
		t.Errorf("RAsDropped = %d, want 2", s.RAsDropped)
	}
	// Non-DNS payloads and queries never count toward the AAAA schedule.
	if s.DropDNSReply([]byte{0xde, 0xad}) {
		t.Error("garbage payload must pass")
	}
}
