// Package faults is the testbed's deterministic impairment model. The
// paper's headline finding is devices *breaking* under imperfect IPv6 —
// v6-only outages (§5.2), a tunnel-mediated WAN with a smaller MTU
// (§4.1), and misbehaving router services — yet a perfect simulated
// network can only show that bricks happen, not how. This package
// reproduces the *how*: per-link frame loss/duplication/reordering driven
// by a seeded PRNG, an MTU clamp on the router's HE-style tunnel path
// (oversized packets elicit ICMPv6 Packet-Too-Big, so flows must honor
// PMTUD or break), and router-service fault schedules (dropped RAs,
// DHCPv6 replies, AAAA answers, and blackout windows on the simulated
// clock).
//
// Everything is byte-deterministic per (seed, profile): the PRNG is a
// fixed splitmix64 sequence, schedules are counters, and blackouts read
// the simulated clock — two runs with the same seed produce identical
// pcaps.
package faults

import (
	"fmt"
	"hash/fnv"
	"time"

	"v6lab/internal/dnsmsg"
	"v6lab/internal/netsim"
)

// Profile is one named impairment configuration. The zero value (and any
// profile for which Active reports false) means a perfect network: the
// experiment runner then takes exactly the unimpaired code path, keeping
// the default run byte-identical to a build without this package.
type Profile struct {
	// Name labels the profile in reports ("lossy-wifi").
	Name string
	// Seed drives every probabilistic decision. Two runs with the same
	// (Seed, Profile) are byte-identical; 0 lets the caller's default
	// apply (the Lab uses its WithSeed value, falling back to 1).
	Seed uint64

	// --- Link impairments (the netsim switch) ---

	// LossPermille / DupPermille / ReorderPermille are per-frame
	// probabilities in parts per thousand: 30 ≈ 3% of frames vanish in
	// the air (never reaching the router's capture tap), are delivered
	// twice, or are pushed to the back of the delivery queue.
	LossPermille, DupPermille, ReorderPermille int

	// --- Tunnel path (the router's WAN side) ---

	// TunnelMTU clamps the router's v6 tunnel egress: LAN-to-WAN IPv6
	// packets larger than this are dropped and answered with an ICMPv6
	// Packet-Too-Big carrying the clamp, as a Hurricane-Electric-style
	// 6in4 tunnel does. 0 means no clamp.
	TunnelMTU int

	// --- Router-service fault schedules (flaky dnsmasq) ---

	// DropEveryNthRA / DropEveryNthDHCPv6 / DropEveryNthAAAA suppress the
	// first and then every Nth router advertisement, DHCPv6 reply, or
	// forwarded DNS answer carrying an AAAA record (1 = drop all,
	// 0 = off). Dropping the *first* occurrence is deliberate: it is the
	// schedule that exercises client retry machinery.
	DropEveryNthRA, DropEveryNthDHCPv6, DropEveryNthAAAA int

	// Blackouts are windows, as offsets from the start of each
	// experiment run, during which the router's services (RA, DHCPv4,
	// DHCPv6, DNS forwarding) do not answer at all.
	Blackouts []Window
}

// Window is one service blackout, [From, To) from experiment start.
type Window struct{ From, To time.Duration }

// Active reports whether the profile impairs anything. Inactive profiles
// (e.g. Clean) make the study skip the impairment plumbing entirely.
func (p Profile) Active() bool {
	return p.LossPermille > 0 || p.DupPermille > 0 || p.ReorderPermille > 0 ||
		p.TunnelMTU > 0 || p.DropEveryNthRA > 0 || p.DropEveryNthDHCPv6 > 0 ||
		p.DropEveryNthAAAA > 0 || len(p.Blackouts) > 0
}

// The resilience grid's profiles.

// Clean is the unimpaired baseline; runs under it are byte-identical to
// runs with no fault profile at all.
func Clean() Profile { return Profile{Name: "clean"} }

// LossyWiFi models a congested 2.4 GHz link: 3% loss, 0.5% duplication,
// 1% reordering, uniformly over every LAN frame.
func LossyWiFi() Profile {
	return Profile{Name: "lossy-wifi", Seed: 1, LossPermille: 30, DupPermille: 5, ReorderPermille: 10}
}

// ClampedTunnel models the paper's HE-tunnel WAN with a 1280-byte path
// MTU: the router answers oversized v6 egress with Packet-Too-Big, and
// devices must perform PMTUD or lose their large flows.
func ClampedTunnel() Profile { return Profile{Name: "clamped-tunnel", TunnelMTU: 1280} }

// FlakyDNSMasq models a misbehaving router daemon: the first and every
// 2nd RA and DHCPv6 reply vanish, and the first and every 3rd forwarded
// AAAA answer is swallowed.
func FlakyDNSMasq() Profile {
	return Profile{Name: "flaky-dnsmasq", DropEveryNthRA: 2, DropEveryNthDHCPv6: 2, DropEveryNthAAAA: 3}
}

// Grid is the default resilience grid, in report order.
func Grid() []Profile {
	return []Profile{Clean(), LossyWiFi(), ClampedTunnel(), FlakyDNSMasq()}
}

// ByName resolves a grid profile by name.
func ByName(name string) (Profile, error) {
	for _, p := range Grid() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("faults: unknown profile %q (want clean|lossy-wifi|clamped-tunnel|flaky-dnsmasq)", name)
}

// rng is a splitmix64 sequence: tiny, fast, and identical on every
// platform (no floating point, no math/rand version skew).
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// permille returns a deterministic draw in [0, 1000).
func (r *rng) permille() int { return int(r.next() % 1000) }

// SubSeed derives a stable per-scope seed (e.g. per experiment ID) from a
// base seed, so each of the six Table 2 runs gets an independent but
// reproducible impairment sequence.
func SubSeed(seed uint64, scope string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(scope))
	return seed ^ h.Sum64() ^ 0x6c696e6b // "link"
}

// Link applies the profile's frame-level impairments on the netsim
// switch. It implements netsim.Impairment.
type Link struct {
	p       Profile
	r       rng
	dropped int
}

// NewLink builds the link impairment for one experiment run.
func NewLink(p Profile, seed uint64) *Link {
	return &Link{p: p, r: rng{state: seed}}
}

// Verdict implements netsim.Impairment: one PRNG draw per frame decides
// its fate. Draw order is delivery order, which the switch keeps
// deterministic, so the whole run is reproducible.
func (l *Link) Verdict(frame []byte) netsim.Verdict {
	d := l.r.permille()
	switch {
	case d < l.p.LossPermille:
		l.dropped++
		return netsim.Drop
	case d < l.p.LossPermille+l.p.DupPermille:
		return netsim.Duplicate
	case d < l.p.LossPermille+l.p.DupPermille+l.p.ReorderPermille:
		return netsim.Defer
	}
	return netsim.Deliver
}

// Dropped reports how many frames the link swallowed.
func (l *Link) Dropped() int { return l.dropped }

// Services applies the profile's router-service fault schedules. The
// router consults it before sending an RA or DHCPv6 reply and before
// forwarding a WAN DNS answer; each accessor advances its own counter so
// the schedule is a pure function of call order.
type Services struct {
	p     Profile
	clock *netsim.Clock
	start time.Time

	ras, dhcp6s, aaaas int
	// RAsDropped etc. count suppressed service messages for diagnostics.
	RAsDropped, DHCPv6Dropped, AAAADropped int
}

// NewServices builds the service fault schedule for one experiment run,
// anchoring blackout windows at the clock's current instant.
func NewServices(p Profile, clock *netsim.Clock) *Services {
	return &Services{p: p, clock: clock, start: clock.Now()}
}

// nthDrop advances a counter and applies the "first, then every Nth"
// schedule (1 = always drop).
func nthDrop(n int, count *int) bool {
	if n <= 0 {
		return false
	}
	*count++
	return n == 1 || *count%n == 1
}

// Blackout reports whether the simulated clock is inside a blackout
// window; router services stay silent while it holds.
func (s *Services) Blackout() bool {
	off := s.clock.Now().Sub(s.start)
	for _, w := range s.p.Blackouts {
		if off >= w.From && off < w.To {
			return true
		}
	}
	return false
}

// DropRA reports whether this router advertisement must be suppressed.
func (s *Services) DropRA() bool {
	if s.Blackout() || nthDrop(s.p.DropEveryNthRA, &s.ras) {
		s.RAsDropped++
		return true
	}
	return false
}

// DropDHCPv6 reports whether this DHCPv6 reply must be suppressed.
func (s *Services) DropDHCPv6() bool {
	if s.Blackout() || nthDrop(s.p.DropEveryNthDHCPv6, &s.dhcp6s) {
		s.DHCPv6Dropped++
		return true
	}
	return false
}

// DropDNSReply inspects one forwarded DNS payload (a WAN answer heading
// back onto the LAN) and reports whether the schedule swallows it. Only
// answers actually carrying an AAAA record count toward — and are
// affected by — the AAAA schedule, mirroring a resolver that chokes on
// v6 records specifically.
func (s *Services) DropDNSReply(payload []byte) bool {
	if s.Blackout() {
		s.AAAADropped++
		return true
	}
	if s.p.DropEveryNthAAAA <= 0 {
		return false
	}
	m, err := dnsmsg.Unpack(payload)
	if err != nil || !m.Response {
		return false
	}
	hasAAAA := false
	for _, rr := range m.Answers {
		if rr.Type == dnsmsg.TypeAAAA || rr.Type == dnsmsg.TypeHTTPS || rr.Type == dnsmsg.TypeSVCB {
			hasAAAA = true
			break
		}
	}
	if !hasAAAA {
		return false
	}
	if nthDrop(s.p.DropEveryNthAAAA, &s.aaaas) {
		s.AAAADropped++
		return true
	}
	return false
}

// TunnelMTU returns the tunnel clamp (0 = none).
func (s *Services) TunnelMTU() int { return s.p.TunnelMTU }
