package device

import (
	"testing"

	"v6lab/internal/paper"
)

func catVec(t *testing.T, ps []*Profile, pred func(*Profile) bool) paper.Vec {
	t.Helper()
	var v paper.Vec
	for _, p := range ps {
		if pred(p) {
			v[categoryIndex(p.Category)]++
		}
	}
	return v
}

func TestRegistryShape(t *testing.T) {
	ps := Registry()
	if len(ps) != 93 {
		t.Fatalf("registry has %d devices, want 93", len(ps))
	}
	if got := catVec(t, ps, func(*Profile) bool { return true }); got != paper.DevicesPerCategory {
		t.Errorf("devices per category = %v, want %v", got, paper.DevicesPerCategory)
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if seen[p.Name] {
			t.Errorf("duplicate device %q", p.Name)
		}
		seen[p.Name] = true
		if p.Year == 0 || p.Manufacturer == "" || p.OS == "" {
			t.Errorf("%s: missing identity fields", p.Name)
		}
	}
	// Registry must return fresh copies.
	ps[0].Name = "mutated"
	if Registry()[0].Name == "mutated" {
		t.Error("Registry returns shared state")
	}
	if Find(Registry(), "Samsung Fridge") == nil || Find(Registry(), "nope") != nil {
		t.Error("Find misbehaves")
	}
}

// TestRegistryFlagConsistency checks internal invariants of the profiles.
func TestRegistryFlagConsistency(t *testing.T) {
	for _, p := range Registry() {
		if p.AssignAddr && !p.NDP {
			t.Errorf("%s: address without NDP", p.Name)
		}
		if (p.GUA || p.ULA || p.LLA) != p.AssignAddr {
			t.Errorf("%s: address-kind flags inconsistent with AssignAddr", p.Name)
		}
		if p.DNSOverV6 && !p.GUA {
			t.Errorf("%s: DNS over v6 without a GUA", p.Name)
		}
		if p.V6InternetData && !p.GUA {
			t.Errorf("%s: v6 Internet data without a GUA", p.Name)
		}
		if p.FunctionalV6Only && (p.EssentialV4Only || !p.V6InternetData || !p.DNSOverV6) {
			t.Errorf("%s: functional-v6 flags inconsistent", p.Name)
		}
		if p.UsesStatefulAddr && !p.StatefulDHCPv6 {
			t.Errorf("%s: uses stateful address without stateful DHCPv6", p.Name)
		}
		if p.EUI64GUA && !p.GUA {
			t.Errorf("%s: EUI64GUA without GUA", p.Name)
		}
		if (p.EUI64ForDNS || p.EUI64ForData || p.EUI64Probe || p.EUI64ForNTP) && !p.EUI64GUA {
			t.Errorf("%s: EUI-64 usage without EUI64GUA", p.Name)
		}
		if p.GUACount > 0 && !p.GUA || p.ULACount > 0 && !p.ULA || p.LLACount > 0 && !p.LLA {
			t.Errorf("%s: address count for disabled kind", p.Name)
		}
	}
}

// TestTable10Funnel verifies the IPv6-only funnel of Table 3 (rows 2-6 and
// the functional row) directly from the profile flags: these are the
// primary per-category targets of the reproduction.
func TestTable10Funnel(t *testing.T) {
	ps := Registry()
	cases := []struct {
		name string
		want paper.Vec
		pred func(*Profile) bool
	}{
		{"NoIPv6", paper.Table3.NoIPv6, func(p *Profile) bool { return !p.NDP }},
		{"NDP", paper.Table3.NDP, func(p *Profile) bool { return p.NDP }},
		{"Addr(v6only)", paper.Table3.Addr, func(p *Profile) bool { return p.SupportsV6Addressing(false) }},
		{"GUA(v6only)", paper.Table3.GUA, func(p *Profile) bool { return p.HasGUAIn(false) }},
		{"DNSv6", paper.Table3.DNSAAAAReq, func(p *Profile) bool { return p.DNSOverV6 }},
		{"InternetData(v6only)", paper.Table3.InternetData, func(p *Profile) bool {
			return p.V6InternetData && !p.DualOnlyInternetData
		}},
		{"Functional", paper.Table3.Functional, func(p *Profile) bool { return p.FunctionalV6Only }},
	}
	for _, tc := range cases {
		if got := catVec(t, ps, tc.pred); got != tc.want {
			t.Errorf("%s = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestTable5Unions verifies the union feature counts of Table 5 from the
// profile flags.
func TestTable5Unions(t *testing.T) {
	ps := Registry()
	cases := []struct {
		name string
		want paper.Vec
		pred func(*Profile) bool
	}{
		{"Addr", paper.Table5.Addr, func(p *Profile) bool { return p.AssignAddr }},
		{"StatefulDHCPv6", paper.Table5.StatefulDHCPv6, func(p *Profile) bool { return p.StatefulDHCPv6 }},
		{"GUA", paper.Table5.GUA, func(p *Profile) bool { return p.GUA }},
		{"ULA", paper.Table5.ULA, func(p *Profile) bool { return p.ULA }},
		{"LLA", paper.Table5.LLA, func(p *Profile) bool { return p.LLA }},
		{"EUI64", paper.Table5.EUI64, func(p *Profile) bool { return p.EUI64 || p.EUI64GUA }},
		{"DNSOverV6", paper.Table5.DNSOverV6, func(p *Profile) bool { return p.DNSOverV6 }},
		{"AOnlyInV6", paper.Table5.AOnlyInV6, func(p *Profile) bool { return p.AOnlyInV6 }},
		{"AAAAReq", paper.Table5.AAAAReq, func(p *Profile) bool { return p.AAAA }},
		{"V4OnlyAAAAReq", paper.Table5.V4OnlyAAAAReq, func(p *Profile) bool { return p.AAAAOverV4 }},
		{"AAAAResp", paper.Table5.AAAAResp, func(p *Profile) bool {
			// Positive AAAA answers over either family: v6 resolvers work
			// for the DNSOverV6 devices that are not answer-starved
			// (gateways), v4 for the AAAARespOverV4 devices.
			return p.AAAARespOverV4 || (p.DNSOverV6 && p.Category != Gateway)
		}},
		{"StatelessDHCPv6", paper.Table5.StatelessDHCPv6, func(p *Profile) bool { return p.StatelessDHCPv6 }},
		{"V6Trans", paper.Table5.V6Trans, func(p *Profile) bool { return p.V6InternetData || p.V6LocalData }},
		{"InternetTrans", paper.Table5.InternetTrans, func(p *Profile) bool { return p.V6InternetData }},
		{"LocalTrans", paper.Table5.LocalTrans, func(p *Profile) bool { return p.V6LocalData }},
	}
	for _, tc := range cases {
		if got := catVec(t, ps, tc.pred); got != tc.want {
			t.Errorf("%s = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestTable6AddressCounts verifies the pinned address inventories.
func TestTable6AddressCounts(t *testing.T) {
	ps := Registry()
	var gua, ula, lla paper.Vec
	for _, p := range ps {
		ci := categoryIndex(p.Category)
		gua[ci] += addrCount(p.GUA, p.GUACount)
		ula[ci] += addrCount(p.ULA, p.ULACount)
		lla[ci] += addrCount(p.LLA, p.LLACount)
	}
	if gua != paper.Table6.GUAAddrs {
		t.Errorf("GUA addresses = %v, want %v", gua, paper.Table6.GUAAddrs)
	}
	if ula != paper.Table6.ULAAddrs {
		t.Errorf("ULA addresses = %v, want %v", ula, paper.Table6.ULAAddrs)
	}
	if lla != paper.Table6.LLAAddrs {
		t.Errorf("LLA addresses = %v, want %v", lla, paper.Table6.LLAAddrs)
	}
}

// TestDADAuditTargets verifies the §5.2.1 non-compliance pinning.
func TestDADAuditTargets(t *testing.T) {
	ps := Registry()
	devices, never := 0, 0
	guas, ulas, llas := 0, 0, 0
	for _, p := range ps {
		any := p.SkipDADGUA || p.SkipDADULA || p.SkipDADLLA
		if any {
			devices++
		}
		all := (!p.GUA || p.SkipDADGUA) && (!p.ULA || p.SkipDADULA) && (!p.LLA || p.SkipDADLLA)
		if any && all {
			never++
		}
		if p.SkipDADGUA {
			guas += addrCount(p.GUA, p.GUACount)
		}
		if p.SkipDADULA {
			ulas += addrCount(p.ULA, p.ULACount)
		}
		if p.SkipDADLLA {
			llas += addrCount(p.LLA, p.LLACount)
		}
	}
	if devices != paper.DAD.DevicesSkipping {
		t.Errorf("devices skipping DAD = %d, want %d", devices, paper.DAD.DevicesSkipping)
	}
	if never != paper.DAD.DevicesNeverDAD {
		t.Errorf("devices never probing = %d, want %d", never, paper.DAD.DevicesNeverDAD)
	}
	if guas != paper.DAD.GUAsNoDAD || ulas != paper.DAD.ULAsNoDAD || llas != paper.DAD.LLAsNoDAD {
		t.Errorf("addresses without DAD = %d/%d/%d, want %d/%d/%d",
			guas, ulas, llas, paper.DAD.GUAsNoDAD, paper.DAD.ULAsNoDAD, paper.DAD.LLAsNoDAD)
	}
}

// TestEUI64UsageTargets verifies the Figure 5 funnel pinning.
func TestEUI64UsageTargets(t *testing.T) {
	ps := Registry()
	use, dns, data := 0, 0, 0
	for _, p := range ps {
		if p.EUI64ForDNS || p.EUI64ForData || p.EUI64Probe || p.EUI64ForNTP {
			use++
		}
		if p.EUI64ForDNS {
			dns++
		}
		if p.EUI64ForData {
			data++
		}
	}
	if use != paper.EUI64.Use || dns != paper.EUI64.DNS || data != paper.EUI64.Data {
		t.Errorf("EUI-64 use/dns/data = %d/%d/%d, want %d/%d/%d",
			use, dns, data, paper.EUI64.Use, paper.EUI64.DNS, paper.EUI64.Data)
	}
}

// TestPurchaseYears verifies the Table 12 population.
func TestPurchaseYears(t *testing.T) {
	want := map[int]int{2017: 8, 2018: 16, 2019: 6, 2021: 24, 2022: 15, 2023: 16, 2024: 8}
	got := map[int]int{}
	for _, p := range Registry() {
		got[p.Year]++
	}
	for y, n := range want {
		if got[y] != n {
			t.Errorf("year %d: %d devices, want %d", y, got[y], n)
		}
	}
}

func addrCount(enabled bool, pinned int) int {
	if !enabled {
		return 0
	}
	if pinned == 0 {
		return 1
	}
	return pinned
}
