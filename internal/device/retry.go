package device

import (
	"encoding/binary"
	"net/netip"
	"sort"

	"v6lab/internal/cloud"
	"v6lab/internal/dhcp4"
	"v6lab/internal/dhcp6"
	"v6lab/internal/dnsmsg"
	"v6lab/internal/packet"
)

// This file gives the stack the retransmit behavior its real counterpart
// has — RS retransmission (RFC 4861 §6.3.7), DHCP retries, DNS retries,
// TCP retransmission, and PMTUD (RFC 8201) — so a run under a faults
// profile degrades the way a real device would instead of wedging on the
// first lost frame. None of it runs on a clean network: the experiment
// driver only invokes the Retry* passes when an impairment is installed,
// and Packet-Too-Big messages are only ever emitted by a clamped tunnel.

// sendPayload (re)transmits the connection's application payload from its
// recorded starting sequence number, segmented to the current path MTU.
func (s *Stack) sendPayload(key connKey, c *conn) {
	seg := c.segLimit()
	seq := c.payloadStart
	for off := 0; off < len(c.lastPayload); off += seg {
		end := min(off+seg, len(c.lastPayload))
		s.sendTCP(c.src, c.dst, key.sport, c.dport, packet.TCPFlagPSH|packet.TCPFlagACK, seq, c.lastAck, c.lastPayload[off:end])
		seq += uint32(end - off)
	}
	c.seq = seq
}

// handlePacketTooBig implements the client half of PMTUD: learn the
// reported MTU for the connection named by the invoking packet and
// retransmit its payload in smaller segments. Stacks with NoPMTUD ignore
// the error — behind a clamped tunnel their large v6 flows blackhole.
func (s *Stack) handlePacketTooBig(body []byte) {
	if s.Prof.NoPMTUD {
		return
	}
	// Body: 4-byte MTU, then as much of the invoking IPv6 packet as fit.
	// Parse the fixed header + TCP ports by offset; the invoking packet is
	// deliberately truncated so a full parse would reject it.
	if len(body) < 4+44 {
		return
	}
	mtu := int(binary.BigEndian.Uint32(body[:4]))
	inner := body[4:]
	if inner[0]>>4 != 6 || inner[6] != byte(packet.IPProtocolTCP) {
		return
	}
	src := netip.AddrFrom16([16]byte(inner[8:24]))
	dst := netip.AddrFrom16([16]byte(inner[24:40]))
	if !s.ownsAddr(src) {
		return
	}
	key := connKey{dst: dst, sport: binary.BigEndian.Uint16(inner[40:42])}
	c, ok := s.conns[key]
	if !ok || len(c.lastPayload) == 0 || mtu <= 0 {
		return
	}
	if c.pmtu != 0 && c.pmtu <= mtu {
		// Already adapted to this clamp (each oversized segment of the
		// original volley elicits its own Packet-Too-Big).
		return
	}
	c.pmtu = mtu
	s.retransmits++
	s.sendPayload(key, c)
}

// RetryConfig retransmits unanswered configuration requests: DHCPv4
// DISCOVER while no lease, RS while no RA arrived, and the pending DHCPv6
// transaction. It returns how many retransmissions were sent; the caller
// drains the network between rounds and stops when a round sends nothing.
func (s *Stack) RetryConfig() int {
	n := 0
	if s.mode != ModeV6Only && !s.v4Addr.IsValid() {
		s.dhcp4XID++
		s.sendDHCP4(dhcp4.Discover, netip.Addr{})
		n++
	}
	if s.ndpActive() && s.raSeen == nil {
		src := netip.IPv6Unspecified()
		if s.assignsAddr() && s.Prof.LLA && len(s.llas) > 0 {
			src = s.llas[0]
		}
		s.sendRS(src)
		n++
	}
	if s.dhcp6Pending && s.raSeen != nil {
		if src := s.dhcp6Source(); src.IsValid() {
			switch {
			case s.raSeen.Managed && s.Prof.StatefulDHCPv6 && !s.statefulAddr.IsValid():
				s.sendDHCP6(&dhcp6.Message{
					Type: dhcp6.Solicit, TxID: uint32(100 + s.expSeq), ClientID: dhcp6.DUIDFromMAC(s.MAC),
					RequestedOptions: []uint16{dhcp6.OptDNSServers},
					IANA:             &dhcp6.IANA{IAID: 1},
				}, src)
				n++
			case (s.raSeen.OtherConfig || s.raSeen.Managed) && s.Prof.StatelessDHCPv6 && !s.dnsV6.IsValid():
				s.sendDHCP6(&dhcp6.Message{
					Type: dhcp6.InfoRequest, TxID: uint32(200 + s.expSeq), ClientID: dhcp6.DUIDFromMAC(s.MAC),
					RequestedOptions: []uint16{dhcp6.OptDNSServers},
				}, src)
				n++
			default:
				// Everything the transaction could deliver already arrived.
				s.dhcp6Pending = false
			}
		}
	}
	s.retransmits += n
	return n
}

// RetryWorkload retransmits unanswered workload traffic: pending DNS
// queries and stalled TCP connections (lost SYN or unacknowledged data),
// each bounded to two retries. Iteration order is fixed — ascending query
// ID, then connection creation order — so retries are deterministic.
func (s *Stack) RetryWorkload() int {
	n := 0
	ids := make([]int, 0, len(s.pendingDNS))
	for id := range s.pendingDNS {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		pq := s.pendingDNS[uint16(id)]
		if pq.attempts >= 2 {
			continue
		}
		pq.attempts++
		s.pendingDNS[uint16(id)] = pq
		if s.resendDNS(uint16(id), pq) {
			n++
		}
	}
	for _, key := range s.connOrder {
		c := s.conns[key]
		switch {
		case c.state == 0 && c.synRetries < 2:
			c.synRetries++
			s.sendTCP(c.src, c.dst, key.sport, c.dport, packet.TCPFlagSYN, c.seq, 0, nil)
			n++
		case c.state == 1 && c.dataRetries < 2 && len(c.lastPayload) > 0:
			c.dataRetries++
			s.sendPayload(key, c)
			n++
		}
	}
	s.retransmits += n
	return n
}

// resendDNS re-emits a pending query with its original ID over its
// original transport; it reports whether a retransmission went out.
func (s *Stack) resendDNS(id uint16, pq pendingQuery) bool {
	sp := &s.Plan.Specs[pq.specIdx]
	wire, err := dnsmsg.NewQuery(id, sp.Name, pq.qtype).Pack()
	if err != nil {
		return false
	}
	if pq.overV6 {
		src := s.privacyGUA()
		if pq.viaEUI64 && s.Prof.EUI64ForDNS && s.eui64GUA().IsValid() {
			src = s.eui64GUA()
		}
		if !src.IsValid() || !s.dnsV6.IsValid() {
			return false
		}
		s.sendUDP(src, s.dnsV6, 53, wire)
		return true
	}
	if !s.v4Addr.IsValid() {
		return false
	}
	s.sendUDP(s.v4Addr, cloud.DNSv4, 53, wire)
	return true
}

// Retransmits reports how many retry transmissions the stack made this
// experiment (always 0 on a clean network).
func (s *Stack) Retransmits() int { return s.retransmits }

// FailureStage classifies a non-functional run as the earliest broken
// stage of the configuration→DNS→data funnel; it returns "ok" when the
// device's primary function worked.
func (s *Stack) FailureStage() string {
	if s.Functional() {
		return "ok"
	}
	if s.mode != ModeV6Only {
		// In IPv4-only and dual-stack networks the essential exchanges ride
		// IPv4, so a failure means that path broke.
		if !s.v4Addr.IsValid() {
			return "no-v4-config"
		}
		return s.workloadFailure()
	}
	switch {
	case !s.ndpActive():
		return "no-ipv6-support"
	case s.raSeen == nil:
		return "no-ra"
	case !s.hasGUA():
		return "no-address"
	case !s.dnsV6.IsValid():
		return "no-dns"
	}
	return s.workloadFailure()
}

func (s *Stack) workloadFailure() string {
	if len(s.pendingDNS) > 0 {
		return "dns-unanswered"
	}
	for _, c := range s.conns {
		if c.state < 2 {
			return "data-stalled"
		}
	}
	return "no-data"
}
