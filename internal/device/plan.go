package device

import (
	"fmt"
	"strings"

	"v6lab/internal/cloud"
	"v6lab/internal/paper"
)

// Class describes how a destination domain's IP-version usage evolves
// across the IPv4-only, IPv6-only, and dual-stack experiments — the
// behaviours Table 9 counts.
type Class int

// The domain classes.
const (
	// ClassV4Stay: IPv4 in the IPv4-only run and in dual-stack; no AAAA.
	ClassV4Stay Class = iota
	// ClassV4WithAAAA: like V4Stay but the domain publishes AAAA records
	// the device never uses (Table 9's last row).
	ClassV4WithAAAA
	// ClassV4NonCommon: appears only in the IPv4-only run (CDN variance).
	ClassV4NonCommon
	// ClassExt46: IPv4-only run over v4; dual-stack over both families.
	ClassExt46
	// ClassSw46: IPv4-only run over v4; dual-stack over v6 exclusively.
	ClassSw46
	// ClassV6Stay: IPv6-only runs over v6; dual-stack over v6.
	ClassV6Stay
	// ClassV6NonCommon: appears only in the IPv6-only runs.
	ClassV6NonCommon
	// ClassExt64: IPv6-only over v6; dual-stack over both families.
	ClassExt64
	// ClassSw64: IPv6-only over v6; dual-stack over v4 exclusively.
	ClassSw64
	// ClassDNSOnly: name is resolved but never contacted.
	ClassDNSOnly
	// ClassHardcoded: vendor-configured literal IPv6 endpoint, contacted
	// without any DNS resolution (the gateways of §5.1.2).
	ClassHardcoded
)

// classHasAAAA reports whether domains of this class publish AAAA records.
func classHasAAAA(c Class) bool {
	switch c {
	case ClassV4Stay, ClassV4NonCommon, ClassDNSOnly:
		return false
	}
	return true
}

// v6Class reports whether the class involves contacting over IPv6.
func v6Class(c Class) bool {
	switch c {
	case ClassExt46, ClassSw46, ClassV6Stay, ClassV6NonCommon, ClassExt64, ClassSw64, ClassHardcoded:
		return true
	}
	return false
}

// DomainSpec is one planned destination (or DNS-only name) for a device.
type DomainSpec struct {
	Name      string
	Class     Class
	HasAAAA   bool
	Party     cloud.Party
	Tracker   bool
	Essential bool
	// QueryAAAA: the device issues AAAA queries for this name.
	QueryAAAA bool
	// AAAAViaV4Only: its AAAA queries use the IPv4 resolver exclusively.
	AAAAViaV4Only bool
	// AOnlyV6: the device queries only A records for this name even in
	// IPv6-only networks (Table 5's A-only row).
	AOnlyV6 bool
	// UseHTTPS: the device resolves the v6 endpoint via an HTTPS-record
	// ipv6hint instead of AAAA (HTTP/3 stacks).
	UseHTTPS bool
	// AliasOnly: resolved but never contacted (CNAME-target style names).
	AliasOnly bool
	// NoDNS: the v6 endpoint is vendor-configured; the device contacts it
	// without resolving the name (its identity still leaks via TLS SNI,
	// which is how the analyzer attributes it).
	NoDNS bool
	// ViaEUI64: DNS queries and contacts for this name are sourced from
	// the device's EUI-64 GUA (Figure 5's exposure accounting).
	ViaEUI64 bool
}

// Plan is the full workload of one device.
type Plan struct {
	Dev   *Profile
	Specs []DomainSpec
	// V4Bytes/V6Bytes are the per-experiment Internet payload budgets in
	// dual-stack, divided among the families' contact domains to realize
	// the device's DualV6Share (Figure 4, Table 6).
	V4Bytes, V6Bytes int
	// TotalBytes is the per-experiment Internet payload budget outside
	// dual-stack.
	TotalBytes int
}

// EssentialSpecs returns the specs marked essential.
func (pl *Plan) EssentialSpecs() []DomainSpec {
	var out []DomainSpec
	for _, s := range pl.Specs {
		if s.Essential {
			out = append(out, s)
		}
	}
	return out
}

// categoryIndex maps a category to its paper column.
func categoryIndex(c Category) int {
	for i, name := range paper.CategoryOrder {
		if string(c) == name {
			return i
		}
	}
	panic(fmt.Sprintf("device: unknown category %q", c))
}

// classTargets gives the per-category domain-class counts derived from
// Table 9 (see DESIGN.md §4 for the reconciliation).
var classTargets = map[Class]paper.Vec{
	// V4Stay is reduced by each non-functional device's two essential
	// IPv4-only destinations (one for the SmartLife Hub), which land in
	// the same bucket.
	ClassV4Stay:      {19, 55, 87, 7, 0, 38, 154},
	ClassV4WithAAAA:  {0, 1, 18, 0, 0, 0, 13},
	ClassV4NonCommon: {29, 151, 238, 46, 4, 31, 178},
	ClassExt46:       {1, 15, 23, 1, 0, 0, 68},
	ClassSw46:        {0, 0, 20, 0, 0, 0, 17},
	ClassV6Stay:      {5, 0, 32, 0, 0, 0, 33},
	ClassV6NonCommon: {2, 0, 290, 4, 0, 0, 65},
	ClassExt64:       {2, 7, 34, 0, 0, 0, 79},
	ClassSw64:        {0, 3, 15, 0, 0, 0, 8},
	ClassDNSOnly:     {0, 1, 10, 0, 0, 0, 63},
	ClassHardcoded:   {0, 0, 0, 15, 0, 0, 0},
}

// dnsNameTargets: per-category distinct-name targets beyond contacts.
var (
	aaaaResTargets = paper.Table6.AAAAResNames // names with positive AAAA answers
	aaaaReqTargets = paper.Table6.AAAAReqNames // names queried for AAAA at all
	aOnlyV6Targets = paper.Table6.AOnlyV6Names // names queried A-only over v6
	v4OnlyAAAATgts = paper.Table6.V4OnlyAAAANames
)

// trackerSLDs are the third-party tracking second-level domains the
// functional devices contact over IPv4 only (§5.4.3 names three of them;
// the rest are synthetic).
var trackerSLDs = []string{
	"app-measurement.com", "omtrdc.net", "segment.io",
	"doubleclick.example", "scorecard.example", "crashlytics.example",
	"branch.example", "adjust.example", "amplitude.example",
	"mixpanel.example", "braze.example", "sentry.example", "bugsnag.example",
}

// slug converts a device name to a DNS-safe label.
func slug(name string) string {
	s := strings.ToLower(name)
	s = strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			return r
		case r == ' ' || r == '-' || r == '/':
			return '-'
		}
		return -1
	}, s)
	return strings.Trim(s, "-")
}

// vendorSLD gives the device's first-party second-level domain.
func vendorSLD(p *Profile) string { return slug(p.Manufacturer) + ".example" }

// BuildPlans produces the per-device workload plans for a registry. The
// allocation is fully deterministic: category-level targets from the paper
// are distributed across eligible devices by weight using the
// largest-remainder method, so the per-category sums are exact.
func BuildPlans(profiles []*Profile) []*Plan {
	plans := make([]*Plan, len(profiles))
	for i, p := range profiles {
		plans[i] = &Plan{Dev: p}
	}
	byCat := map[int][]*Plan{}
	for _, pl := range plans {
		ci := categoryIndex(pl.Dev.Category)
		byCat[ci] = append(byCat[ci], pl)
	}

	// Population scaling: the paper's per-category targets assume the full
	// 93-device registry. A household holding a subset of a category gets
	// a proportional share (half-up rounding); the full registry scales by
	// exactly 1, leaving the single-home study untouched.
	scale := func(total, ci int) int {
		present, full := len(byCat[ci]), paper.DevicesPerCategory[ci]
		if present == full {
			return total
		}
		return (total*present + full/2) / full
	}

	for ci := 0; ci < paper.NumCategories; ci++ {
		cat := byCat[ci]
		// Contact-class allocation.
		for _, class := range []Class{
			ClassV4Stay, ClassV4WithAAAA, ClassV4NonCommon, ClassExt46,
			ClassSw46, ClassV6Stay, ClassV6NonCommon, ClassExt64,
			ClassSw64, ClassDNSOnly, ClassHardcoded,
		} {
			total := scale(classTargets[class][ci], ci)
			if total == 0 {
				continue
			}
			eligible, weights := eligibleFor(cat, class)
			counts := apportion(total, weights)
			for i, pl := range eligible {
				addSpecs(pl, class, counts[i])
			}
		}
	}

	for _, pl := range plans {
		addEssentials(pl)
	}
	assignDNSBehaviour(plans, byCat, scale)
	assignAnswerableNames(plans)
	assignReadiness(plans, byCat)
	assignTrackers(plans)
	assignEUI64Exposure(plans)
	assignVolumes(plans, byCat)
	return plans
}

// assignAnswerableNames guarantees every device whose AAAA queries succeed
// (AAAARespOverV4, or the answered v6 resolvers) at least two names with
// AAAA records: devices with a v6 resolver get alias lookups (answered in
// IPv6-only networks too); v4-resolver devices get AAAA-published
// IPv4-only-run destinations.
func assignAnswerableNames(plans []*Plan) {
	for _, pl := range plans {
		p := pl.Dev
		if !p.AAAARespOverV4 {
			continue
		}
		have := 0
		for _, sp := range pl.Specs {
			if !sp.QueryAAAA || !sp.HasAAAA {
				continue
			}
			// Devices with a v6 resolver must have names answerable in the
			// IPv6-only runs, where dual-stack-only destinations are never
			// queried.
			if p.DNSOverV6 && !sp.AliasOnly &&
				sp.Class != ClassV6Stay && sp.Class != ClassV6NonCommon &&
				sp.Class != ClassExt64 && sp.Class != ClassSw64 {
				continue
			}
			have++
		}
		if have >= 2 {
			continue
		}
		if p.DNSOverV6 {
			addAlias(pl, 2-have, true)
			continue
		}
		for si := range pl.Specs {
			s := &pl.Specs[si]
			if have >= 2 {
				break
			}
			if s.Class == ClassV4NonCommon && !s.HasAAAA {
				s.HasAAAA = true
				s.QueryAAAA = true
				have++
			}
		}
	}
}

// assignReadiness raises the non-functional devices' destination AAAA
// readiness to Table 7's fractions by marking IPv4-only-run destinations
// (ClassV4NonCommon: never contacted in dual-stack, so Table 9's
// v4-only-with-AAAA row is untouched) as AAAA-published.
func assignReadiness(plans []*Plan, byCat map[int][]*Plan) {
	for ci := 0; ci < paper.NumCategories; ci++ {
		nfDomains, nfAAAA := 0, 0
		for _, pl := range byCat[ci] {
			if pl.Dev.FunctionalV6Only {
				continue
			}
			for _, sp := range pl.Specs {
				nfDomains++
				if sp.HasAAAA {
					nfAAAA++
				}
			}
		}
		if nfDomains == 0 {
			continue
		}
		target := float64(paper.Table7Category.NonFuncAAAA[ci]) / float64(max(1, paper.Table7Category.NonFuncDomains[ci]))
		need := int(target*float64(nfDomains)) - nfAAAA
		for _, pl := range byCat[ci] {
			if need <= 0 {
				break
			}
			if pl.Dev.FunctionalV6Only {
				continue
			}
			for si := range pl.Specs {
				s := &pl.Specs[si]
				if need <= 0 {
					break
				}
				if s.Class == ClassV4NonCommon && !s.HasAAAA && !s.QueryAAAA {
					s.HasAAAA = true
					need--
				}
			}
		}
	}
}

// eui64Pin describes how many destination names a device exposes its
// EUI-64 address to, split by party (Figure 5's right panel).
type eui64Pin struct{ first, third, support int }

// The data devices expose 27 domains (24 first / 1 third / 2 support — the
// two support entries are the EUI64ForNTP flags on Fire TV and Echo Plus);
// the three Samsung DNS-only devices expose 30 names (20/8/2).
var eui64Pins = map[string]eui64Pin{
	"Nest Camera":     {first: 5, third: 1},
	"Fire TV":         {first: 5}, // +1 support via NTP
	"Echo Plus":       {first: 4}, // +1 support via NTP
	"Echo Show 5":     {first: 5},
	"Echo Show 8":     {first: 5},
	"Samsung Fridge":  {first: 6, third: 3, support: 1},
	"Aeotec Hub":      {first: 7, third: 2, support: 1},
	"SmartThings Hub": {first: 7, third: 3},
}

// assignEUI64Exposure marks which names each EUI-64-using device sources
// from its EUI-64 GUA, converting the pinned number of them to third-party
// trackers and support CDNs so the Figure 5 party split reproduces.
func assignEUI64Exposure(plans []*Plan) {
	trackerIdx := 100
	for _, pl := range plans {
		pin, ok := eui64Pins[pl.Dev.Name]
		if !ok {
			continue
		}
		dataDev := pl.Dev.EUI64ForData
		marked := 0
		want := pin.first + pin.third + pin.support
		for si := range pl.Specs {
			s := &pl.Specs[si]
			if marked == want {
				break
			}
			if dataDev {
				// Exposure via data: v6-contacted destinations.
				if !v6Class(s.Class) || s.NoDNS {
					continue
				}
			} else {
				// Exposure via DNS only: names queried over the v6
				// resolver.
				if s.AAAAViaV4Only || (!s.QueryAAAA && !s.AOnlyV6) {
					continue
				}
			}
			s.ViaEUI64 = true
			switch {
			case marked < pin.first:
				s.Party = cloud.PartyFirst
			case marked < pin.first+pin.third:
				trackerIdx++
				s.Name = fmt.Sprintf("t%d.%s", trackerIdx, trackerSLDs[trackerIdx%len(trackerSLDs)])
				s.Party = cloud.PartyThird
				s.Tracker = true
			default:
				s.Name = fmt.Sprintf("ntpish%d.cdn-%s.example", trackerIdx, slug(pl.Dev.Manufacturer))
				s.Party = cloud.PartySupport
			}
			marked++
		}
	}
}

// eligibleFor selects which devices in a category can host domains of a
// class, with weights favouring complex devices.
func eligibleFor(cat []*Plan, class Class) ([]*Plan, []int) {
	var eligible []*Plan
	var weights []int
	for _, pl := range cat {
		p := pl.Dev
		ok := true
		switch class {
		case ClassV6Stay, ClassExt64, ClassSw64:
			// Contacted over v6 in the IPv6-only runs: needs working v6
			// resolution and global data there.
			ok = p.V6InternetData && !p.DualOnlyInternetData && !p.HardcodedV6Dest && p.DNSOverV6
		case ClassV6NonCommon:
			// As above, or a vendor-configured literal endpoint (the
			// gateways' DNS-free v6 destinations).
			ok = (p.V6InternetData && !p.DualOnlyInternetData && !p.HardcodedV6Dest && p.DNSOverV6) ||
				(p.HardcodedV6Dest && !p.DualOnlyInternetData)
		case ClassExt46, ClassSw46:
			// Gains v6 in dual-stack: needs v6 Internet data in dual-stack
			// and a way to learn (or preconfigure) the v6 endpoint there.
			ok = p.V6InternetData && (p.AAAA || p.DNSOverV6 || p.HardcodedV6Dest)
		case ClassV4WithAAAA:
			ok = p.AAAA
		case ClassHardcoded:
			ok = p.HardcodedV6Dest
		case ClassDNSOnly:
			ok = p.AAAA || p.DNSOverV6
		}
		if ok {
			w := p.DomainWeight + 1
			// Functional devices' destinations are far more AAAA-ready
			// than the rest (Table 7: 73% vs 31%); bias v6-class domains
			// toward them and v4-only classes away.
			switch {
			case p.FunctionalV6Only && v6Class(class):
				w *= 4
			case p.FunctionalV6Only && (class == ClassV4Stay || class == ClassV4NonCommon):
				w = (w + 1) / 2
			}
			eligible = append(eligible, pl)
			weights = append(weights, w)
		}
	}
	return eligible, weights
}

// apportion splits total across weights with the largest-remainder method.
// The result sums exactly to total; ties break by index (deterministic).
func apportion(total int, weights []int) []int {
	n := len(weights)
	out := make([]int, n)
	if n == 0 || total <= 0 {
		return out
	}
	sum := 0
	for _, w := range weights {
		sum += w
	}
	if sum == 0 {
		sum = n
		for i := range weights {
			weights[i] = 1
		}
	}
	assigned := 0
	type rem struct{ idx, num int }
	rems := make([]rem, n)
	for i, w := range weights {
		out[i] = total * w / sum
		assigned += out[i]
		rems[i] = rem{idx: i, num: total * w % sum}
	}
	// Distribute the remainder to the largest fractional parts.
	for assigned < total {
		best := -1
		for i := range rems {
			if rems[i].num >= 0 && (best == -1 || rems[i].num > rems[best].num) {
				best = i
			}
		}
		out[rems[best].idx]++
		rems[best].num = -1
		assigned++
	}
	return out
}

var classTag = map[Class]string{
	ClassV4Stay: "v4", ClassV4WithAAAA: "v4aaaa", ClassV4NonCommon: "v4x",
	ClassExt46: "e46", ClassSw46: "s46", ClassV6Stay: "v6",
	ClassV6NonCommon: "v6x", ClassExt64: "e64", ClassSw64: "s64",
	ClassDNSOnly: "alias", ClassHardcoded: "hc",
}

func addSpecs(pl *Plan, class Class, n int) {
	sld := vendorSLD(pl.Dev)
	dev := slug(pl.Dev.Name)
	// Hardcoded-endpoint devices reach their v6 destinations without DNS.
	noDNS := class == ClassHardcoded || (pl.Dev.HardcodedV6Dest && v6Class(class))
	for i := 0; i < n; i++ {
		party := cloud.PartyFirst
		// Roughly one domain in six is support infrastructure (CDNs).
		if i%6 == 5 {
			party = cloud.PartySupport
			sldAlt := "cdn-" + slug(pl.Dev.Manufacturer) + ".example"
			pl.Specs = append(pl.Specs, DomainSpec{
				Name:    fmt.Sprintf("%s-%s%d.%s", dev, classTag[class], i, sldAlt),
				Class:   class,
				HasAAAA: classHasAAAA(class),
				Party:   party,
				NoDNS:   noDNS,
			})
			continue
		}
		pl.Specs = append(pl.Specs, DomainSpec{
			Name:    fmt.Sprintf("%s-%s%d.%s", dev, classTag[class], i, sld),
			Class:   class,
			HasAAAA: classHasAAAA(class),
			Party:   party,
			NoDNS:   noDNS,
		})
	}
}

// addEssentials gives every device its primary-function destinations.
func addEssentials(pl *Plan) {
	p := pl.Dev
	sld := vendorSLD(p)
	dev := slug(p.Name)
	mk := func(label string, class Class, hasAAAA bool) DomainSpec {
		return DomainSpec{
			Name:      fmt.Sprintf("%s.%s", label, sld),
			Class:     class,
			HasAAAA:   hasAAAA,
			Party:     cloud.PartyFirst,
			Essential: true,
		}
	}
	switch {
	case p.FunctionalV6Only:
		// Essential domains are AAAA-ready and used over v6 everywhere.
		pl.Specs = append(pl.Specs,
			mk("api-"+dev, ClassExt64, true),
			mk("control-"+dev, ClassExt64, true))
	case p.Name == "SmartLife Hub":
		// The a2.tuyaus.com case: the essential domain has AAAA records
		// the device never asks for.
		s := mk("a2-"+dev, ClassV4Stay, true)
		s.AOnlyV6 = true
		pl.Specs = append(pl.Specs, s)
	default:
		// IPv4-only essential backend (the api.amazon.com pattern).
		// AAAA-capable devices still try to resolve it over v6, the
		// failure signature of §5.1.3.
		a := mk("api-"+dev, ClassV4Stay, false)
		b := mk("registry-"+dev, ClassV4Stay, false)
		a.QueryAAAA = p.AAAA
		b.QueryAAAA = p.AAAA
		pl.Specs = append(pl.Specs, a, b)
	}
}

// assignDNSBehaviour marks which names each device queries AAAA (and over
// which transport), which are A-only in v6, and adds alias names to reach
// the distinct-query-name targets of Table 6.
func assignDNSBehaviour(plans []*Plan, byCat map[int][]*Plan, scale func(total, ci int) int) {
	for ci := 0; ci < paper.NumCategories; ci++ {
		cat := byCat[ci]

		// 1. Natural AAAA successes: v6-contact classes resolve via AAAA,
		//    except hardcoded destinations and HTTPS-hint resolutions.
		//    HTTPS-capable devices shift their surplus to HTTPS lookups so
		//    the per-category AAAA-response name counts land on Table 6.
		natural := 0
		for _, pl := range cat {
			for si := range pl.Specs {
				s := &pl.Specs[si]
				if v6Class(s.Class) && !s.NoDNS {
					s.QueryAAAA = true
					natural++
				}
			}
		}
		surplus := natural - scale(aaaaResTargets[ci], ci)
		if surplus > 0 {
			for _, pl := range cat {
				if !pl.Dev.QueriesHTTPS || surplus == 0 {
					continue
				}
				kept := 0
				for si := range pl.Specs {
					s := &pl.Specs[si]
					if surplus == 0 {
						break
					}
					if s.QueryAAAA && v6Class(s.Class) {
						// Even HTTP/3 stacks keep issuing AAAA for a core
						// of names that must resolve in IPv6-only networks;
						// only the surplus moves to HTTPS.
						v6OnlyActive := s.Class == ClassV6Stay || s.Class == ClassV6NonCommon ||
							s.Class == ClassExt64 || s.Class == ClassSw64
						if kept < 8 && v6OnlyActive {
							kept++
							continue
						}
						s.QueryAAAA = false
						s.UseHTTPS = true
						surplus--
					}
				}
			}
		}
		// Count what we have now and top up with alias successes.
		success := 0
		for _, pl := range cat {
			for _, s := range pl.Specs {
				if s.QueryAAAA && s.HasAAAA {
					success++
				}
			}
		}
		if deficit := scale(aaaaResTargets[ci], ci) - success; deficit > 0 {
			eligible, weights := aliasEligible(cat, true)
			for i, n := range apportion(deficit, weights) {
				addAlias(eligible[i], n, true)
			}
			success += deficit
		}

		// 2. A-only-in-v6 names: distributed over AOnlyInV6 devices'
		//    v4-class specs (queried over the v6 resolver with A only).
		//    Assigned before the AAAA-failure budget so the names stay
		//    A-only.
		aOnly := scale(aOnlyV6Targets[ci], ci)
		for _, pl := range cat {
			for _, sp := range pl.Specs {
				if sp.AOnlyV6 {
					aOnly--
				}
			}
		}
		for _, perDevice := range []int{1, 1 << 20} {
			for _, pl := range cat {
				if aOnly <= 0 {
					break
				}
				if !pl.Dev.AOnlyInV6 || !pl.Dev.DNSOverV6 {
					continue
				}
				marked := 0
				for si := range pl.Specs {
					s := &pl.Specs[si]
					if aOnly <= 0 || marked >= perDevice {
						break
					}
					if !s.QueryAAAA && !v6Class(s.Class) && !s.AliasOnly && s.Class != ClassDNSOnly && !s.Essential && !s.AOnlyV6 {
						s.AOnlyV6 = true
						marked++
						aOnly--
					}
				}
			}
		}

		// 3. AAAA failures: remaining request-name budget goes to
		//    AAAA-queried names without AAAA records — v4-class specs
		//    first, alias names for the rest.
		failBudget := scale(aaaaReqTargets[ci], ci) - success
		for _, pl := range cat {
			for _, sp := range pl.Specs {
				if sp.QueryAAAA && !sp.HasAAAA {
					failBudget-- // essential failures already planned
				}
			}
		}
		for _, v4First := range []bool{true, false} {
			for _, pl := range cat {
				if failBudget <= 0 {
					break
				}
				if !pl.Dev.AAAA || pl.Dev.AAAAOverV4 != v4First {
					continue
				}
				for si := range pl.Specs {
					s := &pl.Specs[si]
					if failBudget <= 0 {
						break
					}
					if !s.QueryAAAA && !s.HasAAAA && !s.AOnlyV6 &&
						(s.Class == ClassV4Stay || s.Class == ClassV4NonCommon) {
						s.QueryAAAA = true
						failBudget--
					}
				}
			}
		}
		if failBudget > 0 {
			eligible, weights := aliasEligible(cat, false)
			for i, n := range apportion(failBudget, weights) {
				addAlias(eligible[i], n, false)
			}
		}

		// 4. V4-only AAAA transport: mark that many AAAA-queried names as
		//    v4-resolver-only. Names needed in the IPv6-only runs must stay
		//    v6-resolvable, so only v4-class failures and dual-stack-only v6
		//    classes (Ext46/Sw46, or anything on a dual-only-data device)
		//    qualify. The paper's Home Auto row asks for more names than the
		//    category ever queries (8 > 6); the count caps at what exists.
		v4only := scale(v4OnlyAAAATgts[ci], ci)
		for _, preferNoV6DNS := range []bool{true, false} {
			for _, pl := range cat {
				if v4only <= 0 {
					break
				}
				p := pl.Dev
				if !p.AAAAOverV4 || (preferNoV6DNS != !p.DNSOverV6) {
					continue
				}
				for si := range pl.Specs {
					s := &pl.Specs[si]
					if v4only <= 0 {
						break
					}
					if !s.QueryAAAA || s.AAAAViaV4Only {
						continue
					}
					v6OnlyExpClass := s.Class == ClassV6Stay || s.Class == ClassV6NonCommon ||
						s.Class == ClassExt64 || s.Class == ClassSw64
					if preferNoV6DNS || !v6OnlyExpClass || p.DualOnlyInternetData {
						s.AAAAViaV4Only = true
						v4only--
					}
				}
			}
		}
	}
}

// aliasEligible picks devices that can host alias names. Success aliases
// need a resolver path that actually answers (devices whose v4-transport
// AAAA queries succeed, or non-gateway v6 resolvers — the gateways' v6
// queries go unanswered, Table 3); failure aliases only need AAAA support.
func aliasEligible(cat []*Plan, success bool) ([]*Plan, []int) {
	var eligible []*Plan
	var weights []int
	for _, pl := range cat {
		p := pl.Dev
		ok := p.AAAA
		if success {
			ok = p.AAAARespOverV4 || (p.DNSOverV6 && p.Category != Gateway && p.AAAA)
		}
		if ok {
			eligible = append(eligible, pl)
			weights = append(weights, p.DomainWeight+1)
		}
	}
	return eligible, weights
}

func addAlias(pl *Plan, n int, hasAAAA bool) {
	dev := slug(pl.Dev.Name)
	sld := "cdn-" + slug(pl.Dev.Manufacturer) + ".example"
	tag := "aliasok"
	if !hasAAAA {
		tag = "aliasno"
	}
	for i := 0; i < n; i++ {
		pl.Specs = append(pl.Specs, DomainSpec{
			Name:      fmt.Sprintf("%s-%s%d.%s", dev, tag, i, sld),
			Class:     ClassDNSOnly,
			HasAAAA:   hasAAAA,
			Party:     cloud.PartySupport,
			QueryAAAA: true,
			AliasOnly: true,
		})
	}
}

// assignTrackers converts a slice of the functional devices' v4-only
// domains into third-party tracking destinations (§5.4.3): 13 tracker SLDs
// spread across the 8 functional devices.
func assignTrackers(plans []*Plan) {
	next := 0
	for _, pl := range plans {
		if !pl.Dev.FunctionalV6Only {
			continue
		}
		// Two tracker domains per functional device, cycling the SLD list.
		converted := 0
		for si := range pl.Specs {
			s := &pl.Specs[si]
			if converted == 2 {
				break
			}
			if (s.Class == ClassV4Stay || s.Class == ClassV4NonCommon) && !s.Essential && !s.Tracker && !s.AOnlyV6 {
				sldName := trackerSLDs[next%len(trackerSLDs)]
				next++
				s.Name = fmt.Sprintf("t%d.%s", next, sldName)
				s.Party = cloud.PartyThird
				s.Tracker = true
				converted++
			}
		}
	}
}

// assignVolumes computes per-device payload budgets so that the
// per-category IPv6 volume fractions of Table 6 (and the per-device shares
// of Figure 4) hold in dual-stack.
func assignVolumes(plans []*Plan, byCat map[int][]*Plan) {
	for ci := 0; ci < paper.NumCategories; ci++ {
		cat := byCat[ci]
		if len(cat) == 0 {
			continue
		}
		target := paper.Table6.V6VolumeFracPct[ci] / 100
		// Base budget scales with complexity.
		var v6Sum, v6Tot float64
		var zero []*Plan
		for _, pl := range cat {
			pl.TotalBytes = 20000 * (pl.Dev.DomainWeight + 1)
			if pl.Dev.DualV6Share > 0 {
				v6Sum += pl.Dev.DualV6Share * float64(pl.TotalBytes)
				v6Tot += float64(pl.TotalBytes)
			} else {
				zero = append(zero, pl)
			}
		}
		// Near-zero targets (the Gateway row prints 0.0% despite nonzero
		// v6 data): the v4-only hubs carry the bulk of the category's
		// volume, drowning the v6 trickle below rounding visibility.
		if target <= 0.002 && v6Sum > 0 {
			for _, pl := range zero {
				pl.TotalBytes *= 60
			}
		}
		if target > 0.002 && len(zero) > 0 && v6Sum > 0 {
			// Solve the v4-only devices' volume so the category fraction
			// lands on target: v6Sum / (v6Tot + n*T0) = target.
			t0 := (v6Sum/target - v6Tot) / float64(len(zero))
			if t0 < 1000 {
				t0 = 1000
			}
			for _, pl := range zero {
				pl.TotalBytes = int(t0)
			}
		}
		// Rescale the category's absolute volume so the study-wide total
		// fraction lands on the paper's 22.0%: TV/Entertainment and
		// speakers dominate smart-home traffic volume.
		shares := [paper.NumCategories]float64{1, 3, 42, 19, 1, 2, 32}
		const base = 10_000_000
		// Subset populations carry a proportional share of the category's
		// absolute volume (a household with 3 of the paper's 18 cameras
		// moves 3/18 of the camera bytes).
		pop := float64(len(cat)) / float64(paper.DevicesPerCategory[ci])
		var cur float64
		for _, pl := range cat {
			cur += float64(pl.TotalBytes)
		}
		factor := shares[ci] / 100 * base * pop / cur
		for _, pl := range cat {
			pl.TotalBytes = int(float64(pl.TotalBytes) * factor)
			pl.V6Bytes = int(pl.Dev.DualV6Share * float64(pl.TotalBytes))
			pl.V4Bytes = pl.TotalBytes - pl.V6Bytes
		}
	}
}
