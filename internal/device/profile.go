// Package device models the 93 consumer IoT devices of the paper's
// Mon(IoT)r testbed (Table 10): their identities (category, manufacturer,
// OS, purchase year), their per-feature IPv6 capability profiles, and the
// protocol state machine that turns a profile into actual on-the-wire
// behaviour — DHCPv4, NDP/SLAAC/DAD, DHCPv6, DNS, TCP/TLS data exchange —
// on the simulated LAN.
//
// The capability flags are transcribed from the paper's device inventory
// and result tables; the behaviour engine emits packets consistent with
// them, and the analysis pipeline recovers the paper's numbers from those
// packets alone.
package device

// Category is the paper's seven-way device taxonomy.
type Category string

// The seven categories of Table 3.
const (
	Appliance Category = "Appliance"
	Camera    Category = "Camera"
	TV        Category = "TV/Ent."
	Gateway   Category = "Gateway"
	Health    Category = "Health"
	HomeAuto  Category = "Home Auto"
	Speaker   Category = "Speaker"
)

// Categories lists all categories in the paper's column order.
var Categories = []Category{Appliance, Camera, TV, Gateway, Health, HomeAuto, Speaker}

// Profile is the complete capability model of one device. The first block
// mirrors Table 10; later blocks encode the extended behaviours behind
// Tables 4–9 and Figures 3–5.
type Profile struct {
	Name         string
	Category     Category
	Manufacturer string
	// OS is the best-available operating system label ("FireOS",
	// "Android", "Tizen", "Fuchsia", "iOS/tvOS", "embedded", ...).
	OS string
	// Year is the purchase year (Table 12 grouping).
	Year int

	// --- Table 10 columns (union over IPv6-only and dual-stack runs) ---

	// NDP: the device emits Neighbor Discovery traffic.
	NDP bool
	// AssignAddr: at least one IPv6 address is configured. NDP devices
	// without it multicast ND messages from "::" and never configure one.
	AssignAddr bool
	// GUA/ULA/LLA: which address kinds the device assigns (union).
	GUA, ULA, LLA bool
	// DNSOverV6: the device sends DNS queries to the IPv6 resolver.
	DNSOverV6 bool
	// V6InternetData: the device exchanges TCP/UDP data with Internet
	// destinations over IPv6 (union).
	V6InternetData bool
	// FunctionalV6Only: the primary function works in an IPv6-only network.
	FunctionalV6Only bool

	// --- IPv6-only vs dual-stack feature gating (Tables 3 vs 5) ---

	// DualOnlyAddr: addresses are only configured when IPv4 is present
	// (stacks that bring v6 up lazily).
	DualOnlyAddr bool
	// DualOnlyGUA: the global address appears only in dual-stack runs.
	DualOnlyGUA bool
	// DualOnlyInternetData: global IPv6 data only flows in dual-stack.
	DualOnlyInternetData bool
	// SkipNDPInDualStack: the device skips IPv6 entirely when IPv4 is
	// available (the paper's one-fewer-NDP-device in dual-stack).
	SkipNDPInDualStack bool

	// --- Addressing behaviour (§5.2.1) ---

	// EUI64 devices derive SLAAC interface identifiers from their MAC for
	// link-local and unique-local addresses; the rest use RFC 8981-style
	// randomized identifiers. A device's first address of each kind uses
	// its IID style and is stable across experiments; additional addresses
	// are randomized rotations.
	EUI64 bool
	// EUI64GUA: the device's first global address uses the EUI-64 format
	// (the §5.4.1 privacy exposure); later rotations are randomized.
	EUI64GUA bool
	// EUI64Probe: the device sources ICMPv6 connectivity probes from its
	// EUI-64 GUA (a "use" in Figure 5 that is neither DNS nor data).
	EUI64Probe bool
	// EUI64ForNTP: NTP requests are sourced from the EUI-64 GUA (the two
	// support-party exposures of Figure 5).
	EUI64ForNTP bool
	// SkipDADGUA/ULA/LLA mark the address kinds this device configures
	// without running duplicate address detection first (§5.2.1's
	// non-compliance audit). A device with all applicable kinds set never
	// performs DAD.
	SkipDADGUA, SkipDADULA, SkipDADLLA bool
	// GUACount/ULACount/LLACount are the distinct addresses of each kind
	// the device accumulates across all v6-enabled experiments (Table 6
	// and Figure 3). Zero means one address when the kind is enabled.
	GUACount, ULACount, LLACount int
	// RotatesLLA: generates additional link-local addresses mid-experiment
	// (Samsung Fridge/TV, HomePod Mini, Apple TV).
	RotatesLLA bool

	// --- DHCPv6 (§5.2.1) ---

	// StatelessDHCPv6: sends INFORMATION-REQUEST for DNS configuration.
	StatelessDHCPv6 bool
	// StatefulDHCPv6: runs SOLICIT/REQUEST when the RA M flag is set.
	StatefulDHCPv6 bool
	// UsesStatefulAddr: actually sources traffic from the IA_NA address
	// (only 4 devices do).
	UsesStatefulAddr bool
	// RequiresDHCPv6DNS: cannot learn resolvers from RDNSS alone (Vizio TV
	// fails in the RDNSS-only configuration).
	RequiresDHCPv6DNS bool
	// NoPMTUD: the stack ignores ICMPv6 Packet-Too-Big, so behind a path
	// with a reduced MTU (the resilience grid's clamped tunnel) its large
	// IPv6 flows blackhole. No effect on an unimpaired network.
	NoPMTUD bool

	// --- DNS behaviour (§5.2.2) ---

	// AAAA: the device issues AAAA queries at all (over either family).
	AAAA bool
	// AAAAOverV4: issues AAAA queries over the IPv4 resolver in dual-stack
	// (the common "selective adoption" pattern).
	AAAAOverV4 bool
	// AOnlyInV6: issues A-only queries for some domains even in an
	// IPv6-only network.
	AOnlyInV6 bool
	// QueriesHTTPS / QueriesSVCB: issues HTTPS / SVCB queries (HTTP/3
	// support; Apple and Android devices).
	QueriesHTTPS, QueriesSVCB bool
	// EUI64ForDNS: sources DNS queries from its EUI-64 GUA (Figure 5).
	EUI64ForDNS bool
	// EUI64ForData: sources Internet data from its EUI-64 GUA (Figure 5).
	EUI64ForData bool

	// --- Data transmission (§5.2.3) ---

	// V6LocalData: exchanges link-local/ULA data (Matter, HomeKit).
	V6LocalData bool
	// DualV6Share is the fraction [0,1] of the device's Internet traffic
	// volume carried over IPv6 in dual-stack (Figure 4).
	DualV6Share float64

	// --- Destinations (Tables 7 and 9) ---

	// Domains is the number of distinct Internet destination domains the
	// device contacts across all experiments.
	Domains int
	// AAAADomains of them publish AAAA records (Table 7 readiness).
	AAAADomains int
	// EssentialV4Only: at least one domain essential to the primary
	// function is IPv4-only (or never queried over v6), the §5.1.3 failure
	// cause for devices supporting every IPv6 feature.
	EssentialV4Only bool
	// AAAARespOverV4: the device's IPv4-transported AAAA queries receive
	// positive answers (Table 5's AAAA Response row beyond the v6 cases).
	AAAARespOverV4 bool
	// HardcodedV6Dest: the device reaches a vendor-configured literal IPv6
	// address without resolving it (the gateways whose v6 Internet data
	// appears despite empty AAAA answers).
	HardcodedV6Dest bool
	// DomainWeight scales how many destination domains the planner assigns
	// to this device (complex devices contact many more, §5.2.2).
	DomainWeight int
	// RotWeight marks heavy address rotators for Figure 3's tail.
	RotWeight int

	// --- Security surface (§5.4.2) ---

	// OpenTCPv4 / OpenTCPv6 are the listening TCP ports per family.
	OpenTCPv4, OpenTCPv6 []uint16
	// OpenUDPv4 / OpenUDPv6 are the listening UDP ports per family.
	OpenUDPv4, OpenUDPv6 []uint16
}

// SupportsV6Addressing reports whether the device configures any IPv6
// address in the given stack mode.
func (p *Profile) SupportsV6Addressing(dualStack bool) bool {
	if !p.NDP || !p.AssignAddr {
		return false
	}
	if p.DualOnlyAddr && !dualStack {
		return false
	}
	if p.SkipNDPInDualStack && dualStack {
		return false
	}
	return true
}

// HasGUAIn reports whether the device configures a global address in the
// given stack mode.
func (p *Profile) HasGUAIn(dualStack bool) bool {
	if !p.GUA || !p.SupportsV6Addressing(dualStack) {
		return false
	}
	if p.DualOnlyGUA && !dualStack {
		return false
	}
	return true
}
