package device

import (
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"v6lab/internal/addr"
	"v6lab/internal/cloud"
	"v6lab/internal/netsim"
	"v6lab/internal/router"
)

// microNet wires one device stack to a fresh router/cloud.
func microNet(t *testing.T, name string, cfg router.Config, mode Mode, expSeq int) (*netsim.Network, *Stack, *router.Router, *cloud.Cloud) {
	t.Helper()
	profiles := Registry()
	plans := BuildPlans(profiles)
	var prof *Profile
	var plan *Plan
	idx := 0
	for i, p := range profiles {
		if p.Name == name {
			prof, plan, idx = p, plans[i], i
		}
	}
	if prof == nil {
		t.Fatalf("no device %q", name)
	}
	cl := cloud.New()
	for _, sp := range plan.Specs {
		cl.AddDomain(sp.Name, sp.Party, sp.HasAAAA, sp.Tracker)
	}
	n := netsim.NewNetwork(netsim.NewClock(time.Date(2024, 4, 5, 0, 0, 0, 0, time.UTC)))
	rt := router.New(cfg, cl)
	rt.Attach(n)
	st := NewStack(prof, plan, idx, NetPrefixes{GUA: router.GUAPrefix, ULA: router.ULAPrefix})
	st.Attach(n)
	st.Reset(mode, expSeq)
	return n, st, rt, cl
}

func bootAndRun(t *testing.T, n *netsim.Network, st *Stack, rt *router.Router, cl *cloud.Cloud) {
	t.Helper()
	rt.SendRouterAdvert()
	st.Boot()
	if _, err := n.Run(1 << 20); err != nil {
		t.Fatal(err)
	}
	st.Announce()
	if _, err := n.Run(1 << 20); err != nil {
		t.Fatal(err)
	}
	st.RunWorkload(cl)
	if _, err := n.Run(1 << 20); err != nil {
		t.Fatal(err)
	}
}

func TestStackDHCPv4Lease(t *testing.T) {
	n, st, rt, cl := microNet(t, "Behmor Brewer", router.Config{IPv4: true}, ModeV4Only, -1)
	bootAndRun(t, n, st, rt, cl)
	if !st.v4Addr.IsValid() {
		t.Fatal("no DHCPv4 lease")
	}
	if lease, ok := rt.LeaseFor(st.MAC); !ok || lease != st.v4Addr {
		t.Errorf("router lease %v vs stack %v", lease, st.v4Addr)
	}
	if !st.Functional() {
		t.Error("device not functional over IPv4")
	}
}

func TestStackSLAACEUI64FirstGUAPlusStablePrivacy(t *testing.T) {
	cfg := router.Config{IPv6: true, StatelessDHCPv6: true}
	n, st, rt, cl := microNet(t, "Samsung TV", cfg, ModeV6Only, 0)
	bootAndRun(t, n, st, rt, cl)
	if len(st.guas) < 2 {
		t.Fatalf("guas = %v", st.guas)
	}
	if !addr.EUI64MatchesMAC(st.guas[0], st.MAC) {
		t.Errorf("first GUA %v is not EUI-64", st.guas[0])
	}
	if addr.IsEUI64(st.guas[1]) {
		t.Errorf("second GUA %v should be a privacy address", st.guas[1])
	}
	if st.privacyGUA() == st.eui64GUA() {
		t.Error("privacy source equals EUI-64 source")
	}
}

func TestStackPrivacyOnlyDevice(t *testing.T) {
	cfg := router.Config{IPv6: true, StatelessDHCPv6: true}
	n, st, rt, cl := microNet(t, "Apple TV", cfg, ModeV6Only, 0)
	bootAndRun(t, n, st, rt, cl)
	for _, a := range st.guas {
		if addr.IsEUI64(a) {
			t.Errorf("Apple TV formed EUI-64 GUA %v", a)
		}
	}
	for _, a := range st.llas {
		if addr.IsEUI64(a) {
			t.Errorf("Apple TV formed EUI-64 LLA %v", a)
		}
	}
	if !st.Functional() {
		t.Error("Apple TV should be functional in IPv6-only")
	}
}

func TestStackEssentialFailureMakesNonFunctional(t *testing.T) {
	cfg := router.Config{IPv6: true, StatelessDHCPv6: true}
	n, st, rt, cl := microNet(t, "Fire TV", cfg, ModeV6Only, 0)
	bootAndRun(t, n, st, rt, cl)
	if st.Functional() {
		t.Error("Fire TV must not be functional in IPv6-only (IPv4-only essential domains)")
	}
	// ...but the same device in dual-stack works.
	n2, st2, rt2, cl2 := microNet(t, "Fire TV", router.Config{IPv4: true, IPv6: true, StatelessDHCPv6: true}, ModeDual, 3)
	bootAndRun(t, n2, st2, rt2, cl2)
	if !st2.Functional() {
		t.Error("Fire TV should be functional in dual-stack")
	}
}

func TestStackStableAddressesAcrossExperiments(t *testing.T) {
	cfg := router.Config{IPv6: true, StatelessDHCPv6: true}
	var firstGUA, firstLLA netip.Addr
	for seq := 0; seq < 3; seq++ {
		n, st, rt, cl := microNet(t, "HomePod Mini", cfg, ModeV6Only, seq)
		bootAndRun(t, n, st, rt, cl)
		if seq == 0 {
			firstGUA, firstLLA = st.guas[0], st.llas[0]
			continue
		}
		if st.guas[0] != firstGUA {
			t.Errorf("seq %d: stable GUA changed %v -> %v", seq, firstGUA, st.guas[0])
		}
		if st.llas[0] != firstLLA {
			t.Errorf("seq %d: stable LLA changed", seq)
		}
		// Rotated addresses must differ across experiments.
		if len(st.guas) > 1 && st.guas[len(st.guas)-1] == firstGUA {
			t.Error("rotation produced the stable address")
		}
	}
}

func TestStackDADSkipping(t *testing.T) {
	cfg := router.Config{IPv6: true, StatelessDHCPv6: true}
	// Aqara Hub never probes.
	n, st, rt, cl := microNet(t, "Aqara Hub", cfg, ModeV6Only, 0)
	bootAndRun(t, n, st, rt, cl)
	if len(st.tentative) != 0 {
		t.Error("tentative addresses left over")
	}
	// Announce implies addresses exist even without DAD.
	if len(st.ulas) == 0 || len(st.llas) == 0 {
		t.Fatalf("aqara addrs: ulas=%v llas=%v", st.ulas, st.llas)
	}
}

func TestStackNDPWithoutAddress(t *testing.T) {
	cfg := router.Config{IPv6: true, StatelessDHCPv6: true}
	n, st, rt, cl := microNet(t, "Miele Dishwasher", cfg, ModeV6Only, 0)
	bootAndRun(t, n, st, rt, cl)
	if len(st.llas)+len(st.guas)+len(st.ulas) != 0 {
		t.Errorf("Miele configured addresses: %v %v %v", st.llas, st.guas, st.ulas)
	}
}

func TestStackStatefulLeaseUse(t *testing.T) {
	cfg := router.Config{IPv6: true, StatelessDHCPv6: true, StatefulDHCPv6: true}
	n, st, rt, cl := microNet(t, "Samsung Fridge", cfg, ModeV6Only, 2)
	bootAndRun(t, n, st, rt, cl)
	if !st.statefulAddr.IsValid() {
		t.Fatal("no IA_NA lease")
	}
	if !router.GUAPrefix.Contains(st.statefulAddr) {
		t.Errorf("lease %v outside prefix", st.statefulAddr)
	}
}

func TestHashIIDProperties(t *testing.T) {
	profiles := Registry()
	plans := BuildPlans(profiles)
	st := NewStack(profiles[0], plans[0], 0, NetPrefixes{})
	f := func(salt int32) bool {
		iid := st.hashIID("gua", int(salt))
		again := st.hashIID("gua", int(salt))
		if iid != again {
			return false
		}
		if iid[0]&0x02 != 0 { // local bit must be clear
			return false
		}
		return !(iid[3] == 0xff && iid[4] == 0xfe) // never EUI-64 shaped
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the per-experiment address schedule sums to the pinned total
// across the device's v6-enabled experiments.
func TestQuickScheduleSumsToTotal(t *testing.T) {
	profiles := Registry()
	plans := BuildPlans(profiles)
	st := NewStack(profiles[0], plans[0], 0, NetPrefixes{})
	f := func(rawTotal uint8, stableTwo, dualOnly bool) bool {
		total := int(rawTotal%60) + 1
		stable := 1
		if stableTwo && total >= 2 {
			stable = 2
		}
		sum := 0
		for seq := 0; seq < st.v6Exps; seq++ {
			st.expSeq = seq
			n := st.scheduleCountN(total, dualOnly, stable)
			if n > 0 {
				sum += n - stable // rotations are distinct
			}
		}
		// Stable addresses count once overall.
		sum += stable
		if dualOnly && total-stable >= 0 {
			return sum == total || total < stable
		}
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
