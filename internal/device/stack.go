package device

import (
	"encoding/binary"
	"hash/fnv"
	"net/netip"

	"v6lab/internal/addr"
	"v6lab/internal/cloud"
	"v6lab/internal/dhcp4"
	"v6lab/internal/dhcp6"
	"v6lab/internal/dnsmsg"
	"v6lab/internal/mdns"
	"v6lab/internal/ndp"
	"v6lab/internal/netsim"
	"v6lab/internal/packet"
	"v6lab/internal/tlssim"
)

// Mode is the stack family configuration of an experiment.
type Mode int

// The three stack modes of Table 2.
const (
	ModeV4Only Mode = iota
	ModeV6Only
	ModeDual
)

// NetPrefixes carries the LAN prefixes the stack autoconfigures from; the
// experiment runner fills it from the router constants (avoiding an import
// cycle).
type NetPrefixes struct {
	GUA, ULA netip.Prefix
}

// Stack is the live network state machine of one device: it turns the
// static Profile + Plan into DHCPv4, NDP/SLAAC/DAD, DHCPv6, DNS, and
// TCP/TLS packets on the simulated LAN.
type Stack struct {
	Prof     *Profile
	Plan     *Plan
	MAC      packet.MAC
	prefixes NetPrefixes

	port  *netsim.Port
	clock *netsim.Clock
	// tx is the reusable serialization buffer every send path shares;
	// the switch copies frames into its arena at enqueue time, so the
	// buffer is free for the next frame as soon as Send returns.
	tx *packet.Buffer
	// dec parses inbound frames in place. Handlers only retain data that
	// is independent of the decoder (fresh copies, value types, or slices
	// into the switch arena), so reuse across frames is safe.
	dec packet.Decoder

	mode   Mode
	expSeq int // 0-based index among the device's v6-enabled experiments
	v6Exps int // how many v6-enabled experiments the device will see

	// IPv4 state.
	v4Addr    netip.Addr
	dhcp4XID  uint32
	routerMAC packet.MAC

	// IPv6 state.
	llas, guas, ulas []netip.Addr
	tentative        map[netip.Addr]bool
	statefulAddr     netip.Addr
	raSeen           *ndp.RouterAdvert
	dnsV6            netip.Addr
	dhcp6ServerID    dhcp6.DUID

	// Workload state.
	pendingDNS map[uint16]pendingQuery
	nextDNSID  uint16
	nextPort   uint16
	conns      map[connKey]*conn
	// connOrder preserves creation order so retry passes under
	// impairment iterate deterministically (map order would not).
	connOrder  []connKey
	contacted  map[string]map[bool]bool // name -> family(v6?) -> contacted
	essOK      map[string]bool
	v6ByteEach int
	v4ByteEach int
	// dhcp6Pending tracks an in-flight DHCPv6 transaction (for retry
	// under impairment); retransmits counts retry sends this run.
	dhcp6Pending bool
	retransmits  int

	// asleep gates the whole stack off the wire: a sleeping device neither
	// receives nor reacts (timeline sleep/wake churn). Like dhcp4XID, the
	// lifetime counters below survive Reset so long-horizon engines can
	// detect lease-renewal outcomes as deltas across power cycles.
	asleep       bool
	dhcp4Acks    uint64
	dhcp6Replies uint64
}

type pendingQuery struct {
	specIdx int
	qtype   dnsmsg.Type
	// overV6/viaEUI64 record the transport so a lost query can be
	// retransmitted identically; attempts bounds the retries.
	overV6   bool
	viaEUI64 bool
	attempts int
}

type connKey struct {
	dst   netip.Addr
	sport uint16
}

type conn struct {
	specIdx int
	name    string
	src     netip.Addr
	dst     netip.Addr
	dport   uint16
	bytes   int
	seq     uint32
	state   int // 0 syn-sent, 1 data-sent, 2 fin-sent, 3 done
	// needSNI forces a TLS hello even on tiny flows: vendor-configured
	// literal endpoints are only attributable through it.
	needSNI bool
	// lastPayload retains the application payload (with its starting
	// sequence number and peer ACK) so the flow can be retransmitted —
	// resegmented after a Packet-Too-Big, or whole after loss.
	lastPayload  []byte
	payloadStart uint32
	lastAck      uint32
	// pmtu is the path MTU learned from ICMPv6 Packet-Too-Big (0 = none).
	pmtu int
	// synRetries / dataRetries bound the loss-recovery retransmits.
	synRetries, dataRetries int
}

// segLimit returns the largest TCP payload one segment may carry: the
// 16-bit-IP-length bound, tightened by any PMTU learned from a
// Packet-Too-Big (40 bytes IPv6 header + 20 bytes TCP header).
func (c *conn) segLimit() int {
	const maxSeg = 32000
	if c.pmtu > 0 {
		if m := c.pmtu - 60; m > 0 && m < maxSeg {
			return m
		}
	}
	return maxSeg
}

// NewStack builds a device stack; idx gives the device a unique MAC with a
// manufacturer-derived OUI.
func NewStack(p *Profile, pl *Plan, idx int, prefixes NetPrefixes) *Stack {
	return &Stack{
		Prof:     p,
		Plan:     pl,
		MAC:      macFor(p, idx),
		prefixes: prefixes,
		v6Exps:   5,
		tx:       packet.NewBuffer(128),
	}
}

// MACFor returns the MAC NewStack(p, _, idx, _) will assign, so world
// construction can index devices by address without building stacks.
func MACFor(p *Profile, idx int) packet.MAC { return macFor(p, idx) }

// macFor derives a stable unicast, universally-administered MAC whose OUI
// encodes the manufacturer (the paper notes the OUI itself leaks vendor
// identity, §5.4.1).
func macFor(p *Profile, idx int) packet.MAC {
	h := fnv.New32a()
	h.Write([]byte(p.Manufacturer))
	v := h.Sum32()
	return packet.MAC{byte(v>>16) &^ 0x03, byte(v >> 8), byte(v), 0x10, 0x20, byte(idx)}
}

// Attach connects the stack to the LAN.
func (s *Stack) Attach(n *netsim.Network) {
	s.clock = n.Clock
	s.port = n.Attach(s, s.MAC)
}

// hashIID derives a deterministic randomized interface identifier from the
// device identity and a salt, shaped like an RFC 8981 temporary IID.
func (s *Stack) hashIID(kind string, salt int) [8]byte {
	h := fnv.New64a()
	h.Write([]byte(s.Prof.Name))
	h.Write([]byte(kind))
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(salt))
	h.Write(b[:])
	var iid [8]byte
	binary.BigEndian.PutUint64(iid[:], h.Sum64())
	iid[0] &^= 0x02
	if iid[3] == 0xff && iid[4] == 0xfe {
		iid[4] = 0xfd
	}
	var zero [8]byte
	if iid == zero {
		iid[7] = 1
	}
	return iid
}

// Reset prepares the stack for a new experiment. expSeq counts v6-enabled
// experiments so far (for address-rotation scheduling).
func (s *Stack) Reset(mode Mode, expSeq int) {
	s.mode = mode
	s.expSeq = expSeq
	s.v4Addr = netip.Addr{}
	s.llas, s.guas, s.ulas = s.llas[:0], s.guas[:0], s.ulas[:0]
	s.statefulAddr = netip.Addr{}
	s.raSeen = nil
	s.dnsV6 = netip.Addr{}
	s.dhcp6ServerID = nil
	// Maps are cleared in place rather than reallocated: a stack that is
	// pooled across experiments (and across homes, via the env pool)
	// reaches a steady state where Reset allocates nothing.
	if s.tentative == nil {
		s.tentative = map[netip.Addr]bool{}
		s.pendingDNS = map[uint16]pendingQuery{}
		s.conns = map[connKey]*conn{}
		s.contacted = map[string]map[bool]bool{}
		s.essOK = map[string]bool{}
	} else {
		clear(s.tentative)
		clear(s.pendingDNS)
		clear(s.conns)
		clear(s.contacted)
		clear(s.essOK)
	}
	s.connOrder = s.connOrder[:0]
	s.nextDNSID = uint16(1000 + expSeq)
	s.nextPort = 40000
	s.dhcp6Pending = false
	s.retransmits = 0
	s.asleep = false
}

// ndpActive reports whether the device participates in IPv6 at all in the
// current mode.
func (s *Stack) ndpActive() bool {
	if !s.Prof.NDP || s.mode == ModeV4Only {
		return false
	}
	if s.Prof.SkipNDPInDualStack && s.mode == ModeDual {
		return false
	}
	return true
}

// assignsAddr reports whether the device configures addresses in this mode.
func (s *Stack) assignsAddr() bool {
	return s.ndpActive() && s.Prof.AssignAddr && !(s.Prof.DualOnlyAddr && s.mode != ModeDual)
}

func (s *Stack) hasGUA() bool { return len(s.guas) > 0 }
func (s *Stack) eui64GUA() netip.Addr {
	if s.Prof.EUI64GUA && len(s.guas) > 0 {
		return s.guas[0]
	}
	return netip.Addr{}
}

// privacyGUA returns the address the device prefers for ordinary traffic:
// the newest non-EUI-64 GUA, falling back to whatever exists.
func (s *Stack) privacyGUA() netip.Addr {
	for i := len(s.guas) - 1; i >= 0; i-- {
		if !(s.Prof.EUI64GUA && i == 0) {
			return s.guas[i]
		}
	}
	if len(s.guas) > 0 {
		return s.guas[0]
	}
	return netip.Addr{}
}

// GlobalAddrs returns a copy of every global unicast address the stack
// currently holds — SLAAC GUAs in assignment order plus the stateful
// DHCPv6 lease when the device actually uses it. This is the ground truth
// the adversary subsystem scores its hitlists against.
func (s *Stack) GlobalAddrs() []netip.Addr {
	out := make([]netip.Addr, 0, len(s.guas)+1)
	out = append(out, s.guas...)
	if s.statefulAddr.IsValid() && s.Prof.UsesStatefulAddr {
		out = append(out, s.statefulAddr)
	}
	return out
}

// PreferredSourceGUA returns the address the device uses as source for
// ordinary outbound traffic (the one a tracker-side observer sees).
func (s *Stack) PreferredSourceGUA() netip.Addr { return s.privacyGUA() }

// SeedDHCP4Transactions sets the DHCPv4 transaction counter as if the
// stack had already booted n times with IPv4 enabled. The parallel study
// engine uses it to give each isolated per-experiment environment (and
// the shared stacks the port scan reuses afterwards) the exact XID
// sequence the serial engine produces.
func (s *Stack) SeedDHCP4Transactions(n int) { s.dhcp4XID = uint32(n) }

// Boot kicks off network configuration for the current experiment.
func (s *Stack) Boot() {
	if s.mode != ModeV6Only {
		s.dhcp4XID++
		s.sendDHCP4(dhcp4.Discover, netip.Addr{})
	}
	if !s.ndpActive() {
		return
	}
	if !s.Prof.AssignAddr || (s.Prof.DualOnlyAddr && s.mode != ModeDual) {
		// The "::"-only devices: solicit routers without configuring.
		s.sendRS(netip.IPv6Unspecified())
		return
	}
	if s.Prof.LLA {
		lla := s.formLLA(0)
		s.addAddr(lla, !s.Prof.SkipDADLLA)
		s.sendRS(lla)
	} else {
		s.sendRS(netip.IPv6Unspecified())
	}
}

// formLLA derives the n-th link-local address.
func (s *Stack) formLLA(n int) netip.Addr {
	if n == 0 {
		if s.Prof.EUI64 {
			return addr.LinkLocalEUI64(s.MAC)
		}
		return addr.FromPrefixIID(addr.LinkLocalPrefix, s.hashIID("lla", 0))
	}
	return addr.FromPrefixIID(addr.LinkLocalPrefix, s.hashIID("lla", s.expSeq*100+n))
}

// addAddr installs an address, optionally probing it with DAD first.
// Re-adding an address the stack already holds is a no-op (no duplicate
// entry, no second DAD probe), so re-running SLAAC after a lost RA or a
// renumbering converges instead of accumulating.
func (s *Stack) addAddr(a netip.Addr, dad bool) {
	if s.ownsAddr(a) {
		return
	}
	switch addr.Classify(a) {
	case addr.KindLLA:
		s.llas = append(s.llas, a)
	case addr.KindULA:
		s.ulas = append(s.ulas, a)
	case addr.KindGUA:
		s.guas = append(s.guas, a)
	default:
		return
	}
	if dad {
		s.tentative[a] = true
		ns := &ndp.NeighborSolicit{Target: a}
		dst := addr.SolicitedNodeMulticast(a)
		s.sendICMPv6(netip.IPv6Unspecified(), dst, packet.ICMPv6TypeNeighborSolicit, ns.MarshalBody())
	}
}

// scheduleCount returns how many addresses of a kind this experiment
// contributes, distributing the profile's pinned total across the device's
// v6-enabled experiments (dual-only kinds across the two dual runs).
func (s *Stack) scheduleCount(total int, dualOnly bool) int {
	return s.scheduleCountN(total, dualOnly, 1)
}

// scheduleCountN is scheduleCount with `stable` addresses repeated every
// experiment (each counting once toward the distinct total).
func (s *Stack) scheduleCountN(total int, dualOnly bool, stable int) int {
	if total <= 0 {
		total = 1
	}
	if stable > total {
		stable = total
	}
	n := s.v6Exps
	seq := s.expSeq
	if dualOnly {
		n = 2
		seq = s.expSeq - (s.v6Exps - 2)
		if seq < 0 {
			return 0
		}
	}
	if n <= 0 || seq >= n {
		return 0
	}
	rot := total - stable
	per := rot / n
	if seq < rot%n {
		per++
	}
	return stable + per
}

// handleRA performs SLAAC against the received router advertisement.
func (s *Stack) handleRA(eth *packet.Ethernet, ra *ndp.RouterAdvert) {
	if s.raSeen != nil || !s.ndpActive() {
		return
	}
	s.raSeen = ra
	if !ra.SourceLinkAddr.IsZero() {
		s.routerMAC = ra.SourceLinkAddr
	} else {
		s.routerMAC = eth.Src
	}
	if !s.assignsAddr() {
		return
	}
	for _, pio := range ra.Prefixes {
		if !pio.AutonomousFlag {
			continue
		}
		switch {
		case pio.Prefix == s.prefixes.GUA && s.Prof.GUA:
			if s.Prof.DualOnlyGUA && s.mode != ModeDual {
				continue
			}
			// EUI-64 devices with more than one GUA keep a stable privacy
			// address alongside the stable EUI-64 one, so ordinary traffic
			// never has to fall back to the trackable address.
			stable := 1
			if s.Prof.EUI64GUA && s.Prof.GUACount >= 2 {
				stable = 2
			}
			n := s.scheduleCountN(s.Prof.GUACount, s.Prof.DualOnlyGUA, stable)
			for i := 0; i < n; i++ {
				var a netip.Addr
				switch {
				case i == 0 && s.Prof.EUI64GUA:
					a = addr.EUI64Addr(pio.Prefix, s.MAC)
				case i < stable:
					a = addr.FromPrefixIID(pio.Prefix, s.hashIID("gua", i))
				default:
					a = addr.FromPrefixIID(pio.Prefix, s.hashIID("gua", s.expSeq*100+i))
				}
				s.addAddr(a, !s.Prof.SkipDADGUA)
			}
		case pio.Prefix == s.prefixes.ULA && s.Prof.ULA:
			n := s.scheduleCount(s.Prof.ULACount, s.Prof.DualOnlyAddr)
			for i := 0; i < n; i++ {
				var a netip.Addr
				if i == 0 {
					if s.Prof.EUI64 {
						a = addr.EUI64Addr(pio.Prefix, s.MAC)
					} else {
						a = addr.FromPrefixIID(pio.Prefix, s.hashIID("ula", 0))
					}
				} else {
					a = addr.FromPrefixIID(pio.Prefix, s.hashIID("ula", s.expSeq*100+i))
				}
				s.addAddr(a, !s.Prof.SkipDADULA)
			}
		}
	}
	// Extra LLAs for the rotators.
	if s.Prof.LLA && s.Prof.LLACount > 1 {
		n := s.scheduleCount(s.Prof.LLACount, false)
		for i := 1; i < n; i++ {
			s.addAddr(s.formLLA(i), !s.Prof.SkipDADLLA)
		}
	}
	// DNS configuration: RDNSS unless the stack needs DHCPv6 for it.
	if len(ra.RDNSS) > 0 && len(ra.RDNSS[0].Servers) > 0 && !s.Prof.RequiresDHCPv6DNS && s.Prof.DNSOverV6 {
		s.dnsV6 = ra.RDNSS[0].Servers[0]
	}
	// DHCPv6 per the O and M flags.
	src := s.dhcp6Source()
	if !src.IsValid() {
		return
	}
	if ra.Managed && s.Prof.StatefulDHCPv6 {
		s.sendDHCP6(&dhcp6.Message{
			Type: dhcp6.Solicit, TxID: uint32(100 + s.expSeq), ClientID: dhcp6.DUIDFromMAC(s.MAC),
			RequestedOptions: []uint16{dhcp6.OptDNSServers},
			IANA:             &dhcp6.IANA{IAID: 1},
		}, src)
	} else if (ra.OtherConfig || ra.Managed) && s.Prof.StatelessDHCPv6 {
		s.sendDHCP6(&dhcp6.Message{
			Type: dhcp6.InfoRequest, TxID: uint32(200 + s.expSeq), ClientID: dhcp6.DUIDFromMAC(s.MAC),
			RequestedOptions: []uint16{dhcp6.OptDNSServers},
		}, src)
	}
}

// dhcp6Source picks the source address for DHCPv6 (normally the LLA).
func (s *Stack) dhcp6Source() netip.Addr {
	if len(s.llas) > 0 {
		return s.llas[0]
	}
	if len(s.ulas) > 0 {
		return s.ulas[0]
	}
	if len(s.guas) > 0 {
		return s.guas[0]
	}
	return netip.Addr{}
}

// Announce completes DAD (no conflicts arise on the testbed) and
// advertises every configured address so the router's neighbor table —
// which the port scanner harvests, §4.3 — learns them.
func (s *Stack) Announce() {
	for a := range s.tentative {
		delete(s.tentative, a)
	}
	if !s.assignsAddr() {
		return
	}
	for _, group := range [][]netip.Addr{s.llas, s.ulas, s.guas} {
		for _, a := range group {
			na := &ndp.NeighborAdvert{Override: true, Target: a, TargetLinkAddr: s.MAC}
			s.sendICMPv6(a, addr.AllNodesMulticast, packet.ICMPv6TypeNeighborAdvert, na.MarshalBody())
		}
	}
	if s.statefulAddr.IsValid() && s.Prof.UsesStatefulAddr {
		na := &ndp.NeighborAdvert{Override: true, Target: s.statefulAddr, TargetLinkAddr: s.MAC}
		s.sendICMPv6(s.statefulAddr, addr.AllNodesMulticast, packet.ICMPv6TypeNeighborAdvert, na.MarshalBody())
	}
}

// RunWorkload executes the experiment's planned traffic: DNS resolution,
// TCP/TLS exchanges, NTP, hardcoded-endpoint contacts, local-protocol
// chatter, and the EUI-64 probes.
func (s *Stack) RunWorkload(cl *cloud.Cloud) {
	// Per-contact byte budgets.
	nV4, nV6 := 0, 0
	for i := range s.Plan.Specs {
		v4, v6 := s.familiesFor(&s.Plan.Specs[i])
		if v4 {
			nV4++
		}
		if v6 {
			nV6++
		}
	}
	s.v4ByteEach, s.v6ByteEach = 800, 800
	if s.mode == ModeDual {
		if nV4 > 0 {
			s.v4ByteEach = max(16, s.Plan.V4Bytes/nV4)
		}
		if nV6 > 0 {
			s.v6ByteEach = max(16, s.Plan.V6Bytes/nV6)
		}
	} else if n := nV4 + nV6; n > 0 {
		each := max(16, s.Plan.TotalBytes/n)
		s.v4ByteEach, s.v6ByteEach = each, each
	}

	for i := range s.Plan.Specs {
		s.startSpec(i, cl)
	}
	s.sendNTP()
	s.sendStatefulDNS()
	s.sendLocalData()
	s.sendEUI64Probe()
}

// familiesFor evaluates which families the device will contact a spec over
// in the current mode (before DNS outcomes are known).
func (s *Stack) familiesFor(sp *DomainSpec) (v4, v6 bool) {
	v4up := s.mode != ModeV6Only
	// A GUA alone is not enough: without a live default router (an RA
	// within its lifetime) the device has no v6 path off-link.
	v6up := s.ndpActive() && s.hasGUA() && s.raSeen != nil
	switch sp.Class {
	case ClassV4Stay, ClassV4WithAAAA:
		v4 = v4up
	case ClassV4NonCommon:
		v4 = s.mode == ModeV4Only
	case ClassExt46:
		v4 = v4up
		v6 = s.mode == ModeDual && v6up
	case ClassSw46:
		v4 = s.mode == ModeV4Only
		v6 = s.mode == ModeDual && v6up
	case ClassV6Stay:
		v6 = s.mode != ModeV4Only && v6up
	case ClassV6NonCommon:
		v6 = s.mode == ModeV6Only && v6up
	case ClassExt64:
		v6 = s.mode != ModeV4Only && v6up
		v4 = s.mode == ModeDual
	case ClassSw64:
		v6 = s.mode == ModeV6Only && v6up
		v4 = s.mode == ModeDual
	case ClassHardcoded:
		v6 = s.mode != ModeV4Only && v6up
	case ClassDNSOnly:
		// resolution only
	}
	if sp.Essential {
		// The primary function is attempted in every experiment.
		v4 = v4 || v4up
		v6 = v6 || (s.mode == ModeV6Only && v6up && sp.HasAAAA && !sp.AOnlyV6)
	}
	if s.Prof.DualOnlyInternetData && s.mode == ModeV6Only {
		v6 = false
	}
	return v4, v6
}

// startSpec issues the DNS queries (or direct contacts) for one spec.
func (s *Stack) startSpec(i int, cl *cloud.Cloud) {
	sp := &s.Plan.Specs[i]
	wantV4, wantV6 := s.familiesFor(sp)
	if sp.AliasOnly || sp.Class == ClassDNSOnly {
		s.resolveSpec(i, false, false)
		return
	}
	if sp.NoDNS {
		if wantV6 {
			// Vendor-configured literal endpoint: no resolution, straight
			// to TCP with SNI.
			if d := cl.Lookup(sp.Name); d != nil && len(d.V6) > 0 {
				s.openTCP(i, d.V6[0], sp.Name, true, sp.ViaEUI64)
			}
		}
		if wantV4 {
			s.resolveSpec(i, true, false)
		}
		return
	}
	s.resolveSpec(i, wantV4, wantV6)
}

// resolveSpec issues the planned queries for a spec.
func (s *Stack) resolveSpec(i int, wantV4, wantV6 bool) {
	sp := &s.Plan.Specs[i]
	v4DNS := s.mode != ModeV6Only && s.v4Addr.IsValid()
	v6DNS := s.dnsV6.IsValid() && s.hasGUA() && s.raSeen != nil

	// A queries: needed for v4 contact; A-only names also probe over v6.
	if wantV4 && v4DNS {
		s.sendDNS(i, dnsmsg.TypeA, false, sp.ViaEUI64)
	}
	if sp.AOnlyV6 && s.mode == ModeV6Only && v6DNS {
		s.sendDNS(i, dnsmsg.TypeA, true, sp.ViaEUI64)
		return
	}
	// In an IPv6-only network, names with no v6 role are simply never
	// resolved: the third-party libraries and v4-only backends that would
	// ask for them are not reachable (§5.4.3's disappearing trackers).
	if s.mode == ModeV6Only && !wantV6 && !sp.Essential && !sp.AliasOnly && sp.Class != ClassDNSOnly {
		return
	}
	// AAAA / HTTPS queries.
	doAAAA := sp.QueryAAAA || (wantV6 && !sp.UseHTTPS)
	if sp.AOnlyV6 {
		doAAAA = false
	}
	if sp.UseHTTPS {
		if v6DNS {
			s.sendDNSType(i, dnsmsg.TypeHTTPS, true, sp.ViaEUI64)
		} else if v4DNS && s.mode == ModeDual {
			s.sendDNSType(i, dnsmsg.TypeHTTPS, false, sp.ViaEUI64)
		}
		return
	}
	if !doAAAA {
		return
	}
	switch {
	case sp.AAAAViaV4Only:
		if v4DNS {
			s.sendDNS(i, dnsmsg.TypeAAAA, false, sp.ViaEUI64)
		}
	case v6DNS:
		s.sendDNS(i, dnsmsg.TypeAAAA, true, sp.ViaEUI64)
		if s.Prof.AAAAOverV4 && v4DNS && s.mode == ModeDual {
			// Selective adoption: some stacks duplicate AAAA over v4.
			s.sendDNS(i, dnsmsg.TypeAAAA, false, sp.ViaEUI64)
		}
	case s.Prof.AAAAOverV4 && v4DNS:
		s.sendDNS(i, dnsmsg.TypeAAAA, false, sp.ViaEUI64)
	}
}

func (s *Stack) sendDNS(i int, t dnsmsg.Type, overV6, viaEUI64 bool) {
	s.sendDNSType(i, t, overV6, viaEUI64)
}

// sendDNSType emits one DNS query over the chosen transport.
func (s *Stack) sendDNSType(i int, t dnsmsg.Type, overV6, viaEUI64 bool) {
	sp := &s.Plan.Specs[i]
	s.nextDNSID++
	id := s.nextDNSID
	s.pendingDNS[id] = pendingQuery{specIdx: i, qtype: t, overV6: overV6, viaEUI64: viaEUI64}
	q := dnsmsg.NewQuery(id, sp.Name, t)
	wire, err := q.Pack()
	if err != nil {
		return
	}
	if overV6 {
		src := s.privacyGUA()
		if viaEUI64 && s.Prof.EUI64ForDNS && s.eui64GUA().IsValid() {
			src = s.eui64GUA()
		}
		if !src.IsValid() {
			return
		}
		s.sendUDP(src, s.dnsV6, 53, wire)
		return
	}
	if s.v4Addr.IsValid() {
		s.sendUDP(s.v4Addr, cloud.DNSv4, 53, wire)
	}
}

// handleDNSResponse reacts to an answer: v6 addresses trigger TCP over v6,
// v4 addresses over v4 — if the spec's plan calls for that family now.
func (s *Stack) handleDNSResponse(p *packet.Packet) {
	m, err := dnsmsg.Unpack(p.UDP.PayloadData)
	if err != nil || !m.Response {
		return
	}
	pq, ok := s.pendingDNS[m.ID]
	if !ok {
		return
	}
	delete(s.pendingDNS, m.ID)
	sp := &s.Plan.Specs[pq.specIdx]
	if sp.AliasOnly || sp.Class == ClassDNSOnly {
		return
	}
	wantV4, wantV6 := s.familiesFor(sp)
	for _, rr := range m.Answers {
		switch {
		case rr.Type == dnsmsg.TypeA && rr.Addr.Is4() && wantV4:
			s.openTCP(pq.specIdx, rr.Addr, sp.Name, false, false)
			wantV4 = false
		case (rr.Type == dnsmsg.TypeAAAA || rr.Type == dnsmsg.TypeHTTPS || rr.Type == dnsmsg.TypeSVCB) &&
			rr.Addr.Is6() && !rr.Addr.Is4In6() && wantV6:
			s.openTCP(pq.specIdx, rr.Addr, sp.Name, true, sp.ViaEUI64)
			wantV6 = false
		}
	}
}

// openTCP starts a TCP/TLS exchange toward dst.
func (s *Stack) openTCP(specIdx int, dst netip.Addr, name string, v6, viaEUI64 bool) {
	if done := s.contacted[name]; done != nil && done[v6] {
		return
	}
	if s.contacted[name] == nil {
		s.contacted[name] = map[bool]bool{}
	}
	s.contacted[name][v6] = true

	var src netip.Addr
	bytes := s.v4ByteEach
	if v6 {
		src = s.privacyGUA()
		if viaEUI64 && s.Prof.EUI64ForData && s.eui64GUA().IsValid() {
			src = s.eui64GUA()
		}
		bytes = s.v6ByteEach
	} else {
		src = s.v4Addr
	}
	if !src.IsValid() {
		return
	}
	s.nextPort++
	c := &conn{specIdx: specIdx, name: name, src: src, dst: dst, dport: 443, bytes: bytes, seq: 1,
		needSNI: s.Plan.Specs[specIdx].NoDNS}
	key := connKey{dst: dst, sport: s.nextPort}
	s.conns[key] = c
	s.connOrder = append(s.connOrder, key)
	s.sendTCP(src, dst, s.nextPort, 443, packet.TCPFlagSYN, c.seq, 0, nil)
}

// handleTCP advances client connections and answers scanner probes.
func (s *Stack) handleTCP(p *packet.Packet) {
	t := p.TCP
	key := connKey{dst: p.SrcIP(), sport: t.DstPort}
	if c, ok := s.conns[key]; ok {
		switch {
		case t.HasFlag(packet.TCPFlagSYN | packet.TCPFlagACK):
			// Handshake done: ACK, then TLS hello + application payload.
			// Tiny flows skip the hello (attribution falls back to DNS)
			// unless the destination is only attributable via SNI,
			// keeping the per-family volume budgets faithful.
			c.seq++
			payload := tlssim.ClientHello(c.name, nil)
			if c.bytes >= len(payload) || c.needSNI {
				if c.bytes > len(payload) {
					pad := make([]byte, c.bytes-len(payload))
					for i := range pad {
						pad[i] = 0x17
					}
					payload = append(payload, pad...)
				}
			} else {
				payload = make([]byte, max(16, c.bytes))
				for i := range payload {
					payload[i] = 0x17
				}
			}
			s.sendTCP(c.src, c.dst, key.sport, c.dport, packet.TCPFlagACK, c.seq, t.Seq+1, nil)
			c.lastPayload = payload
			c.payloadStart = c.seq
			c.lastAck = t.Seq + 1
			s.sendPayload(key, c)
			c.state = 1
		case t.HasFlag(packet.TCPFlagRST):
			c.state = 3
		case c.state == 1 && len(t.PayloadData) > 0:
			// Server answered: the exchange succeeded.
			s.markSuccess(c.specIdx)
			s.sendTCP(c.src, c.dst, key.sport, c.dport, packet.TCPFlagFIN|packet.TCPFlagACK, c.seq, t.Seq+uint32(len(t.PayloadData)), nil)
			c.state = 2
		case c.state == 2 && t.HasFlag(packet.TCPFlagFIN):
			c.state = 3
		}
		return
	}
	// Inbound probe (port scanner): SYN to one of our addresses. Replies
	// go straight back to the probing host's MAC.
	if t.HasFlag(packet.TCPFlagSYN) && !t.HasFlag(packet.TCPFlagACK) && s.ownsAddr(p.DstIP()) {
		flags := packet.TCPFlagRST | packet.TCPFlagACK
		seq := uint32(0)
		if s.portOpen(p.DstIP(), t.DstPort, true) {
			flags = packet.TCPFlagSYN | packet.TCPFlagACK
			seq = 1000
		}
		s.sendTCPTo(p.Ethernet.Src, p.DstIP(), p.SrcIP(), t.DstPort, t.SrcPort, flags, seq, t.Seq+1, nil)
	}
}

func (s *Stack) markSuccess(specIdx int) {
	sp := &s.Plan.Specs[specIdx]
	if sp.Essential {
		s.essOK[sp.Name] = true
	}
}

// Functional reports whether the device's primary function worked in this
// experiment: every essential destination exchanged application data.
func (s *Stack) Functional() bool {
	for _, sp := range s.Plan.EssentialSpecs() {
		if !s.essOK[sp.Name] {
			return false
		}
	}
	return true
}

// ownsAddr reports whether a is one of the device's configured addresses.
func (s *Stack) ownsAddr(a netip.Addr) bool {
	if a == s.v4Addr && a.IsValid() {
		return true
	}
	for _, group := range [][]netip.Addr{s.llas, s.ulas, s.guas} {
		for _, own := range group {
			if own == a {
				return true
			}
		}
	}
	return a.IsValid() && a == s.statefulAddr
}

// portOpen consults the per-family open-port sets (§5.4.2).
func (s *Stack) portOpen(local netip.Addr, port uint16, tcp bool) bool {
	var set []uint16
	v6 := local.Is6() && !local.Is4In6()
	switch {
	case tcp && v6:
		set = s.Prof.OpenTCPv6
	case tcp:
		set = s.Prof.OpenTCPv4
	case v6:
		set = s.Prof.OpenUDPv6
	default:
		set = s.Prof.OpenUDPv4
	}
	for _, p := range set {
		if p == port {
			return true
		}
	}
	return false
}

// sendNTP issues the periodic clock sync: over v4 when available, over v6
// for devices with global v6 connectivity.
func (s *Stack) sendNTP() {
	reqBody := make([]byte, 48)
	reqBody[0] = 0x23 // LI=0 VN=4 mode=client
	if s.mode != ModeV6Only && s.v4Addr.IsValid() {
		s.sendUDP(s.v4Addr, cloud.NTPv4, 123, reqBody)
	}
	if s.Prof.V6InternetData && s.hasGUA() && s.mode != ModeV4Only &&
		!(s.Prof.DualOnlyInternetData && s.mode == ModeV6Only) {
		src := s.privacyGUA()
		if s.Prof.EUI64ForNTP && s.eui64GUA().IsValid() {
			src = s.eui64GUA()
			// These stacks resolve the pool name from the same address,
			// which is how the NTP destination becomes attributable (and
			// exposed) in the captures.
			if s.dnsV6.IsValid() {
				s.nextDNSID++
				if q, err := dnsmsg.NewQuery(s.nextDNSID, cloud.NTPDomain, dnsmsg.TypeAAAA).Pack(); err == nil {
					s.sendUDP(src, s.dnsV6, 53, q)
				}
			}
		}
		s.sendUDP(src, cloud.NTPv6, 123, reqBody)
	}
}

// sendStatefulDNS sources one DNS lookup from the IA_NA lease — the only
// observable "use" the four stateful-address devices make of it (§5.2.1).
func (s *Stack) sendStatefulDNS() {
	if !s.statefulAddr.IsValid() || !s.Prof.UsesStatefulAddr || !s.dnsV6.IsValid() {
		return
	}
	ess := s.Plan.EssentialSpecs()
	if len(ess) == 0 {
		return
	}
	s.nextDNSID++
	q := dnsmsg.NewQuery(s.nextDNSID, ess[0].Name, dnsmsg.TypeA)
	wire, err := q.Pack()
	if err != nil {
		return
	}
	s.sendUDP(s.statefulAddr, s.dnsV6, 53, wire)
}

// sendLocalData emits the Matter/HomeKit-style local-network chatter.
func (s *Stack) sendLocalData() {
	if !s.Prof.V6LocalData || !s.assignsAddr() {
		return
	}
	src := netip.Addr{}
	switch {
	case len(s.ulas) > 0:
		src = s.ulas[0]
	case len(s.llas) > 0:
		src = s.llas[0]
	}
	if !src.IsValid() {
		return
	}
	// Announce the device's local service the way Matter/HomeKit stacks
	// do: a DNS-SD record set over mDNS, plus the service's own chatter.
	service := mdns.MatterService
	port := uint16(5540)
	if s.Prof.Category == Gateway {
		service = mdns.HAPService
		port = 80
	}
	ann := &mdns.Announcement{
		Instance: slug(s.Prof.Name),
		Service:  service,
		Port:     port,
		Addr:     src,
		TXT:      []string{"VP=65521+32769", "CM=1"},
	}
	if wire, err := ann.Pack(); err == nil {
		s.sendUDP(src, mdns.GroupV6, mdns.Port, wire)
	}
	s.sendUDP(src, mdns.GroupV6, port, []byte("local-protocol keepalive"))
}

// sendEUI64Probe emits the connectivity check some stacks source from
// their EUI-64 address (a Figure 5 "use").
func (s *Stack) sendEUI64Probe() {
	if !s.Prof.EUI64Probe || s.mode == ModeV4Only {
		return
	}
	a := s.eui64GUA()
	if !a.IsValid() {
		return
	}
	body := []byte{0, 1, 0, byte(s.expSeq), 'p', 'r', 'o', 'b'}
	s.sendICMPv6(a, cloud.DNSv6, packet.ICMPv6TypeEchoRequest, body)
}

// HandleFrame implements netsim.Host.
func (s *Stack) HandleFrame(frame []byte) {
	if s.asleep {
		return
	}
	p := s.dec.Parse(frame)
	if p.Ethernet == nil || p.Err != nil {
		return
	}
	switch {
	case p.ARP != nil:
		s.handleARP(p)
	case p.IPv4 != nil:
		s.handleV4(p)
	case p.IPv6 != nil:
		s.handleV6(p)
	}
}

func (s *Stack) handleARP(p *packet.Packet) {
	if p.ARP.Op == packet.ARPRequest && p.ARP.TargetIP == s.v4Addr && s.v4Addr.IsValid() {
		s.transmit(
			&packet.Ethernet{Dst: p.Ethernet.Src, Src: s.MAC, Type: packet.EtherTypeARP},
			&packet.ARP{Op: packet.ARPReply, SenderMAC: s.MAC, SenderIP: s.v4Addr,
				TargetMAC: p.ARP.SenderMAC, TargetIP: p.ARP.SenderIP})
	}
}

func (s *Stack) handleV4(p *packet.Packet) {
	switch {
	case p.UDP != nil && p.UDP.DstPort == dhcp4.ClientPort:
		s.handleDHCP4(p)
	case p.UDP != nil && p.UDP.SrcPort == 53 && p.IPv4.Dst == s.v4Addr:
		s.handleDNSResponse(p)
	case p.TCP != nil && p.IPv4.Dst == s.v4Addr:
		s.handleTCP(p)
	case p.UDP != nil && p.IPv4.Dst == s.v4Addr && p.UDP.SrcPort == 123:
		// NTP response; nothing to do.
	case p.UDP != nil && p.IPv4.Dst == s.v4Addr:
		s.handleUDPProbe(p)
	case p.ICMPv4 != nil && p.ICMPv4.Type == packet.ICMPv4TypeEchoRequest && p.IPv4.Dst == s.v4Addr:
		s.sendICMPv4(p.IPv4.Src, packet.ICMPv4TypeEchoReply, p.ICMPv4.Body, p.Ethernet.Src)
	}
}

func (s *Stack) handleV6(p *packet.Packet) {
	if !s.ndpActive() {
		return
	}
	dst := p.IPv6.Dst
	mine := s.ownsAddr(dst) || dst.IsMulticast()
	switch {
	case p.ICMPv6 != nil:
		s.handleICMPv6(p)
	case p.UDP != nil && p.UDP.DstPort == dhcp6.ClientPort && mine:
		s.handleDHCP6(p)
	case p.UDP != nil && p.UDP.SrcPort == 53 && s.ownsAddr(dst):
		s.handleDNSResponse(p)
	case p.TCP != nil && s.ownsAddr(dst):
		s.handleTCP(p)
	case p.UDP != nil && s.ownsAddr(dst) && p.UDP.SrcPort == 123:
		// NTP response.
	case p.UDP != nil && s.ownsAddr(dst):
		s.handleUDPProbe(p)
	}
}

func (s *Stack) handleICMPv6(p *packet.Packet) {
	ic := p.ICMPv6
	switch ic.Type {
	case packet.ICMPv6TypeRouterAdvert:
		if ra, err := ndp.ParseRouterAdvert(ic.Body); err == nil {
			s.handleRA(p.Ethernet, ra)
		}
	case packet.ICMPv6TypeNeighborSolicit:
		ns, err := ndp.ParseNeighborSolicit(ic.Body)
		if err != nil || !s.ownsAddr(ns.Target) || s.tentative[ns.Target] {
			return
		}
		// Address resolution for one of our addresses.
		na := &ndp.NeighborAdvert{Solicited: true, Override: true, Target: ns.Target, TargetLinkAddr: s.MAC}
		dst := p.IPv6.Src
		if !dst.IsValid() || addr.Classify(dst) == addr.KindUnspecified {
			dst = addr.AllNodesMulticast
		}
		s.sendICMPv6(ns.Target, dst, packet.ICMPv6TypeNeighborAdvert, na.MarshalBody())
	case packet.ICMPv6TypePacketTooBig:
		s.handlePacketTooBig(ic.Body)
	case packet.ICMPv6TypeEchoRequest:
		// Reply to pings addressed to us (including all-nodes multicast,
		// the scanner's address-harvesting trick), directly to the
		// pinger's link-layer address.
		target := p.IPv6.Dst
		if s.ownsAddr(target) {
			s.sendICMPv6To(p.Ethernet.Src, target, p.IPv6.Src, packet.ICMPv6TypeEchoReply, ic.Body)
		} else if target == addr.AllNodesMulticast && s.assignsAddr() {
			src := s.dhcp6Source()
			if src.IsValid() {
				s.sendICMPv6To(p.Ethernet.Src, src, p.IPv6.Src, packet.ICMPv6TypeEchoReply, ic.Body)
			}
		}
	}
}

func (s *Stack) handleDHCP4(p *packet.Packet) {
	if s.mode == ModeV6Only {
		return
	}
	m, err := dhcp4.Unmarshal(p.UDP.PayloadData)
	if err != nil || m.ClientMAC != s.MAC {
		return
	}
	switch m.Type {
	case dhcp4.Offer:
		s.routerMACv4(p.Ethernet.Src)
		s.sendDHCP4(dhcp4.Request, m.YourIP)
	case dhcp4.ACK:
		s.v4Addr = m.YourIP
		s.dhcp4Acks++
		s.routerMACv4(p.Ethernet.Src)
	}
}

func (s *Stack) routerMACv4(m packet.MAC) {
	if s.routerMAC.IsZero() {
		s.routerMAC = m
	}
}

func (s *Stack) handleDHCP6(p *packet.Packet) {
	m, err := dhcp6.Unmarshal(p.UDP.PayloadData)
	if err != nil {
		return
	}
	switch m.Type {
	case dhcp6.Advertise:
		if m.IANA != nil && len(m.IANA.Addrs) > 0 {
			s.dhcp6ServerID = m.ServerID
			req := &dhcp6.Message{
				Type: dhcp6.Request, TxID: uint32(300 + s.expSeq),
				ClientID: dhcp6.DUIDFromMAC(s.MAC), ServerID: m.ServerID,
				RequestedOptions: []uint16{dhcp6.OptDNSServers},
				IANA:             &dhcp6.IANA{IAID: 1},
			}
			if src := s.dhcp6Source(); src.IsValid() {
				s.sendDHCP6(req, src)
			}
		}
	case dhcp6.Reply:
		s.dhcp6Pending = false
		s.dhcp6Replies++
		if m.IANA != nil && len(m.IANA.Addrs) > 0 {
			s.statefulAddr = m.IANA.Addrs[0].Addr
		}
		if len(m.DNS) > 0 && s.Prof.DNSOverV6 && !s.dnsV6.IsValid() {
			s.dnsV6 = m.DNS[0]
		}
	}
}

// handleUDPProbe answers the scanner's UDP probes: closed ports elicit an
// ICMP port-unreachable, open ports stay silent (nmap's open|filtered).
func (s *Stack) handleUDPProbe(p *packet.Packet) {
	if s.portOpen(p.DstIP(), p.UDP.DstPort, false) {
		return
	}
	if p.IsIPv6() {
		// ICMPv6 destination unreachable, code 4 (port): 4 unused bytes
		// followed by the invoking packet.
		body := append(make([]byte, 4), p.Ethernet.PayloadData...)
		ic := &packet.ICMPv6{Type: packet.ICMPv6TypeDestUnreachable, Code: 4, Body: body, Src: p.IPv6.Dst, Dst: p.IPv6.Src}
		s.transmit(
			&packet.Ethernet{Dst: p.Ethernet.Src, Src: s.MAC, Type: packet.EtherTypeIPv6},
			&packet.IPv6{NextHeader: packet.IPProtocolICMPv6, HopLimit: 64, Src: p.IPv6.Dst, Dst: p.IPv6.Src},
			ic)
		return
	}
	body := append(make([]byte, 4), p.Ethernet.PayloadData...)
	s.transmit(
		&packet.Ethernet{Dst: p.Ethernet.Src, Src: s.MAC, Type: packet.EtherTypeIPv4},
		&packet.IPv4{Protocol: packet.IPProtocolICMPv4, Src: p.IPv4.Dst, Dst: p.IPv4.Src},
		&packet.ICMPv4{Type: 3, Code: 3, Body: body})
}

// --- send helpers ---

// transmit serializes layers into the stack's reusable tx buffer and puts
// the frame on the wire. Serialization failures drop the frame, the same
// policy every call site applied individually.
func (s *Stack) transmit(layers ...packet.SerializableLayer) {
	frame, err := packet.SerializeInto(s.tx, layers...)
	if err == nil {
		s.port.Send(frame)
	}
}

func (s *Stack) etherDstV6(dst netip.Addr) packet.MAC {
	if dst.IsMulticast() {
		return addr.MulticastMAC(dst)
	}
	// Off-link and on-link unicast both go through/are the router in this
	// testbed (the router answers NS for itself; the cloud is behind it).
	if !s.routerMAC.IsZero() {
		return s.routerMAC
	}
	return packet.BroadcastMAC
}

func (s *Stack) sendICMPv6(src, dst netip.Addr, typ uint8, body []byte) {
	s.sendICMPv6To(s.etherDstV6(dst), src, dst, typ, body)
}

func (s *Stack) sendICMPv6To(dstMAC packet.MAC, src, dst netip.Addr, typ uint8, body []byte) {
	hop := uint8(255)
	if typ == packet.ICMPv6TypeEchoRequest || typ == packet.ICMPv6TypeEchoReply {
		hop = 64
	}
	s.transmit(
		&packet.Ethernet{Dst: dstMAC, Src: s.MAC, Type: packet.EtherTypeIPv6},
		&packet.IPv6{NextHeader: packet.IPProtocolICMPv6, HopLimit: hop, Src: src, Dst: dst},
		&packet.ICMPv6{Type: typ, Body: body, Src: src, Dst: dst},
	)
}

func (s *Stack) sendICMPv4(dst netip.Addr, typ uint8, body []byte, dstMAC packet.MAC) {
	s.transmit(
		&packet.Ethernet{Dst: dstMAC, Src: s.MAC, Type: packet.EtherTypeIPv4},
		&packet.IPv4{Protocol: packet.IPProtocolICMPv4, Src: s.v4Addr, Dst: dst},
		&packet.ICMPv4{Type: typ, Body: body},
	)
}

func (s *Stack) sendRS(src netip.Addr) {
	rs := &ndp.RouterSolicit{}
	if addr.Classify(src) != addr.KindUnspecified {
		rs.SourceLinkAddr = s.MAC
	}
	s.sendICMPv6(src, addr.AllRoutersMulticast, packet.ICMPv6TypeRouterSolicit, rs.MarshalBody())
}

func (s *Stack) sendDHCP4(typ uint8, requested netip.Addr) {
	m := &dhcp4.Message{Op: 1, XID: s.dhcp4XID, ClientMAC: s.MAC, Type: typ}
	if requested.IsValid() {
		m.Requested = requested
		m.ServerID = netip.MustParseAddr("192.168.1.1")
	}
	wire, err := m.Marshal()
	if err != nil {
		return
	}
	zero := netip.MustParseAddr("0.0.0.0")
	bcast := netip.MustParseAddr("255.255.255.255")
	s.transmit(
		&packet.Ethernet{Dst: packet.BroadcastMAC, Src: s.MAC, Type: packet.EtherTypeIPv4},
		&packet.IPv4{Protocol: packet.IPProtocolUDP, Src: zero, Dst: bcast},
		&packet.UDP{SrcPort: dhcp4.ClientPort, DstPort: dhcp4.ServerPort, Src: zero, Dst: bcast},
		packet.Raw(wire),
	)
}

func (s *Stack) sendDHCP6(m *dhcp6.Message, src netip.Addr) {
	wire, err := m.Marshal()
	if err != nil {
		return
	}
	// Every client message opens (or keeps open) a transaction awaiting a
	// server reply; RetryConfig retransmits while this stays set.
	s.dhcp6Pending = true
	dst := netip.MustParseAddr(dhcp6.AllRelayAgentsAndServers)
	s.transmit(
		&packet.Ethernet{Dst: addr.MulticastMAC(dst), Src: s.MAC, Type: packet.EtherTypeIPv6},
		&packet.IPv6{NextHeader: packet.IPProtocolUDP, Src: src, Dst: dst},
		&packet.UDP{SrcPort: dhcp6.ClientPort, DstPort: dhcp6.ServerPort, Src: src, Dst: dst},
		packet.Raw(wire),
	)
}

func (s *Stack) sendUDP(src, dst netip.Addr, dport uint16, payload []byte) {
	s.nextPort++
	var ipLayer packet.SerializableLayer
	typ := packet.EtherTypeIPv6
	var dstMAC packet.MAC
	if src.Is4() {
		ipLayer = &packet.IPv4{Protocol: packet.IPProtocolUDP, Src: src, Dst: dst}
		typ = packet.EtherTypeIPv4
		dstMAC = s.routerMAC
		if dstMAC.IsZero() {
			dstMAC = packet.BroadcastMAC
		}
	} else {
		ipLayer = &packet.IPv6{NextHeader: packet.IPProtocolUDP, Src: src, Dst: dst}
		dstMAC = s.etherDstV6(dst)
	}
	sport := s.nextPort
	if dport == 123 {
		sport = 123
	}
	s.transmit(
		&packet.Ethernet{Dst: dstMAC, Src: s.MAC, Type: typ},
		ipLayer,
		&packet.UDP{SrcPort: sport, DstPort: dport, Src: src, Dst: dst},
		packet.Raw(payload),
	)
}

func (s *Stack) sendTCP(src, dst netip.Addr, sport, dport uint16, flags uint8, seq, ack uint32, payload []byte) {
	var dstMAC packet.MAC
	if src.Is4() {
		dstMAC = s.routerMAC
		if dstMAC.IsZero() {
			dstMAC = packet.BroadcastMAC
		}
	} else {
		dstMAC = s.etherDstV6(dst)
	}
	s.sendTCPTo(dstMAC, src, dst, sport, dport, flags, seq, ack, payload)
}

// sendTCPTo emits a TCP segment to an explicit link-layer destination
// (used for answering on-link probes).
func (s *Stack) sendTCPTo(dstMAC packet.MAC, src, dst netip.Addr, sport, dport uint16, flags uint8, seq, ack uint32, payload []byte) {
	var ipLayer packet.SerializableLayer
	typ := packet.EtherTypeIPv6
	if src.Is4() {
		ipLayer = &packet.IPv4{Protocol: packet.IPProtocolTCP, Src: src, Dst: dst}
		typ = packet.EtherTypeIPv4
	} else {
		ipLayer = &packet.IPv6{NextHeader: packet.IPProtocolTCP, Src: src, Dst: dst}
	}
	s.transmit(
		&packet.Ethernet{Dst: dstMAC, Src: s.MAC, Type: typ},
		ipLayer,
		&packet.TCP{SrcPort: sport, DstPort: dport, Seq: seq, Ack: ack, Flags: flags, Src: src, Dst: dst},
		packet.Raw(payload),
	)
}
