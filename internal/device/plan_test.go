package device

import (
	"reflect"
	"strings"
	"testing"

	"v6lab/internal/cloud"
	"v6lab/internal/paper"
)

func buildTestPlans(t *testing.T) []*Plan {
	t.Helper()
	return BuildPlans(Registry())
}

func TestPlanClassTotals(t *testing.T) {
	plans := buildTestPlans(t)
	got := map[Class]paper.Vec{}
	for _, pl := range plans {
		ci := categoryIndex(pl.Dev.Category)
		for _, s := range pl.Specs {
			if s.Essential || s.AliasOnly {
				continue
			}
			v := got[s.Class]
			v[ci]++
			got[s.Class] = v
		}
	}
	for class, want := range classTargets {
		if got[class] != want {
			t.Errorf("class %d: %v, want %v", class, got[class], want)
		}
	}
}

func TestPlanAAAANameTargets(t *testing.T) {
	plans := buildTestPlans(t)
	var req, res, aOnly, v4only paper.Vec
	for _, pl := range plans {
		ci := categoryIndex(pl.Dev.Category)
		for _, s := range pl.Specs {
			if s.QueryAAAA {
				req[ci]++
				if s.HasAAAA {
					res[ci]++
				}
				if s.AAAAViaV4Only {
					v4only[ci]++
				}
			}
			if s.AOnlyV6 {
				aOnly[ci]++
			}
		}
	}
	// Essential specs add a handful of extra AAAA-queried names beyond the
	// Table 6 targets; allow that bounded overshoot.
	for ci := 0; ci < paper.NumCategories; ci++ {
		if req[ci] < paper.Table6.AAAAReqNames[ci] || req[ci] > paper.Table6.AAAAReqNames[ci]+12 {
			t.Errorf("cat %d AAAA req names = %d, want ≈%d", ci, req[ci], paper.Table6.AAAAReqNames[ci])
		}
		if res[ci] < paper.Table6.AAAAResNames[ci] || res[ci] > paper.Table6.AAAAResNames[ci]+8 {
			t.Errorf("cat %d AAAA res names = %d, want ≈%d", ci, res[ci], paper.Table6.AAAAResNames[ci])
		}
	}
	if aOnly != paper.Table6.AOnlyV6Names {
		t.Errorf("A-only-in-v6 names = %v, want %v", aOnly, paper.Table6.AOnlyV6Names)
	}
	// Home Auto caps at 6: the paper's Table 6 asks for 8 v4-only AAAA
	// names but reports only 6 AAAA-queried names in the category, an
	// internal inconsistency we resolve toward the request count.
	wantV4Only := paper.Table6.V4OnlyAAAANames
	wantV4Only[5] = 6
	if v4only != wantV4Only {
		t.Errorf("v4-only AAAA names = %v, want %v", v4only, wantV4Only)
	}
}

func TestPlanEssentials(t *testing.T) {
	for _, pl := range buildTestPlans(t) {
		ess := pl.EssentialSpecs()
		if len(ess) == 0 {
			t.Errorf("%s: no essential domains", pl.Dev.Name)
			continue
		}
		for _, s := range ess {
			if pl.Dev.FunctionalV6Only && !s.HasAAAA {
				t.Errorf("%s: functional device with v4-only essential %s", pl.Dev.Name, s.Name)
			}
			if !pl.Dev.FunctionalV6Only && s.HasAAAA && !s.AOnlyV6 {
				t.Errorf("%s: non-functional device with usable v6 essential %s", pl.Dev.Name, s.Name)
			}
		}
	}
}

func TestPlanEUI64Pins(t *testing.T) {
	for _, pl := range buildTestPlans(t) {
		pin, ok := eui64Pins[pl.Dev.Name]
		if !ok {
			continue
		}
		var first, third, support int
		for _, s := range pl.Specs {
			if !s.ViaEUI64 {
				continue
			}
			switch s.Party {
			case cloud.PartyFirst:
				first++
			case cloud.PartyThird:
				third++
			case cloud.PartySupport:
				support++
			}
		}
		if first != pin.first || third != pin.third || support != pin.support {
			t.Errorf("%s: EUI-64 exposure %d/%d/%d, want %d/%d/%d",
				pl.Dev.Name, first, third, support, pin.first, pin.third, pin.support)
		}
	}
}

func TestPlanTrackersOnFunctionalDevices(t *testing.T) {
	slds := map[string]bool{}
	for _, pl := range buildTestPlans(t) {
		if !pl.Dev.FunctionalV6Only {
			continue
		}
		n := 0
		for _, s := range pl.Specs {
			if s.Tracker {
				n++
				for _, sld := range trackerSLDs {
					if strings.HasSuffix(s.Name, sld) {
						slds[sld] = true
					}
				}
			}
		}
		if n < 2 {
			t.Errorf("%s: only %d tracker domains", pl.Dev.Name, n)
		}
	}
	if len(slds) < 10 {
		t.Errorf("only %d tracker SLDs in use", len(slds))
	}
}

func TestPlanVolumeFractions(t *testing.T) {
	plans := buildTestPlans(t)
	byCat := map[int][]*Plan{}
	for _, pl := range plans {
		ci := categoryIndex(pl.Dev.Category)
		byCat[ci] = append(byCat[ci], pl)
	}
	for ci := 0; ci < paper.NumCategories; ci++ {
		var v6, tot float64
		for _, pl := range byCat[ci] {
			v6 += float64(pl.V6Bytes)
			tot += float64(pl.V6Bytes + pl.V4Bytes)
		}
		want := paper.Table6.V6VolumeFracPct[ci]
		got := 100 * v6 / tot
		if diff := got - want; diff > 0.5 || diff < -0.5 {
			if !(want == 0 && got < 0.1) {
				t.Errorf("cat %d v6 volume fraction = %.2f%%, want %.1f%%", ci, got, want)
			}
		}
	}
}

func TestPlanDeterminism(t *testing.T) {
	a, b := buildTestPlans(t), buildTestPlans(t)
	for i := range a {
		if !reflect.DeepEqual(a[i].Specs, b[i].Specs) {
			t.Fatalf("%s: plans differ between runs", a[i].Dev.Name)
		}
	}
}

func TestPlanUniqueNamesWithinDevice(t *testing.T) {
	for _, pl := range buildTestPlans(t) {
		seen := map[string]bool{}
		for _, s := range pl.Specs {
			if seen[s.Name] {
				t.Errorf("%s: duplicate planned name %s", pl.Dev.Name, s.Name)
			}
			seen[s.Name] = true
		}
	}
}

func TestApportion(t *testing.T) {
	got := apportion(10, []int{1, 1, 1})
	sum := 0
	for _, v := range got {
		sum += v
	}
	if sum != 10 {
		t.Errorf("apportion sum = %d", sum)
	}
	if got2 := apportion(5, nil); len(got2) != 0 {
		t.Error("apportion with no buckets")
	}
	got3 := apportion(7, []int{0, 0})
	if got3[0]+got3[1] != 7 {
		t.Errorf("apportion zero weights = %v", got3)
	}
}
