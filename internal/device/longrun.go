package device

import (
	"net/netip"

	"v6lab/internal/cloud"
	"v6lab/internal/dhcp4"
	"v6lab/internal/dhcp6"
)

// This file holds the long-horizon surface of a device stack: the handful
// of operations the timeline engine triggers as scheduled events (lease
// renewals, RA expiry, renumbering, sleep/wake, recurring workload bursts)
// on top of the single-experiment state machine in stack.go. Everything
// here is plain single-threaded stack manipulation; the determinism of a
// week-long run comes from the engine's event ordering, not from anything
// in these methods.

// SetAsleep puts the device to sleep or wakes it. A sleeping stack drops
// every inbound frame and originates nothing; its addresses and leases
// age silently, which is exactly how battery devices miss RAs and lease
// windows in real homes.
func (s *Stack) SetAsleep(asleep bool) { s.asleep = asleep }

// Asleep reports whether the device is currently sleeping.
func (s *Stack) Asleep() bool { return s.asleep }

// V4Configured reports whether the stack holds a DHCPv4 lease right now.
func (s *Stack) V4Configured() bool { return s.v4Addr.IsValid() }

// StatefulConfigured reports whether the stack holds an IA_NA lease.
func (s *Stack) StatefulConfigured() bool { return s.statefulAddr.IsValid() }

// HasRA reports whether the stack currently has a live default router.
func (s *Stack) HasRA() bool { return s.raSeen != nil }

// HasGUAIn reports whether the stack holds a global address out of the
// given prefix — the timeline engine's re-addressing probe after a
// renumbering.
func (s *Stack) HasGUAIn(p netip.Prefix) bool {
	for _, a := range s.guas {
		if p.Contains(a) {
			return true
		}
	}
	return s.statefulAddr.IsValid() && p.Contains(s.statefulAddr)
}

// DHCP4Acks returns the lifetime count of DHCPv4 ACKs the stack received.
// The counter survives Reset, so a renewal's success is the delta across
// the drain that follows it.
func (s *Stack) DHCP4Acks() uint64 { return s.dhcp4Acks }

// DHCP6Replies returns the lifetime count of DHCPv6 REPLYs received.
func (s *Stack) DHCP6Replies() uint64 { return s.dhcp6Replies }

// RenewV4 runs one DHCPv4 renewal attempt: a unicast-style REQUEST for the
// current lease, or a fresh DISCOVER when the lease already expired (the
// INIT-REBOOT vs INIT split of RFC 2131 §4.3.2).
func (s *Stack) RenewV4() {
	if s.mode == ModeV6Only || s.asleep {
		return
	}
	s.dhcp4XID++
	if s.v4Addr.IsValid() {
		s.sendDHCP4(dhcp4.Request, s.v4Addr)
	} else {
		s.sendDHCP4(dhcp4.Discover, netip.Addr{})
	}
}

// ExpireV4 drops the DHCPv4 lease without network activity: the valid
// lifetime ran out while renewals kept failing (or the device slept
// through the whole lease window).
func (s *Stack) ExpireV4() { s.v4Addr = netip.Addr{} }

// RenewV6 runs one DHCPv6 RENEW for the stack's IA_NA lease. After the
// ISP renumbers, the server's lease table is empty and the REPLY carries
// an address out of the new prefix.
func (s *Stack) RenewV6() {
	if !s.statefulAddr.IsValid() || !s.Prof.StatefulDHCPv6 || s.asleep {
		return
	}
	src := s.dhcp6Source()
	if !src.IsValid() {
		return
	}
	m := &dhcp6.Message{
		Type: dhcp6.Renew, TxID: uint32(400 + s.expSeq),
		ClientID: dhcp6.DUIDFromMAC(s.MAC), ServerID: s.dhcp6ServerID,
		RequestedOptions: []uint16{dhcp6.OptDNSServers},
		IANA: &dhcp6.IANA{IAID: 1, Addrs: []dhcp6.IAAddr{{
			Addr: s.statefulAddr, PreferredLifetime: 3600, ValidLifetime: 7200,
		}}},
	}
	s.sendDHCP6(m, src)
}

// LoseRA expires the default router: the device slept past the RA's
// router lifetime (1800 s) and wakes with v6 connectivity down until the
// next periodic advertisement re-arms it.
func (s *Stack) LoseRA() { s.raSeen = nil }

// SolicitRouter sends a router solicitation, the recovery step a waking
// or renumbered device takes instead of waiting out the periodic RA
// interval.
func (s *Stack) SolicitRouter() {
	if !s.ndpActive() || s.asleep {
		return
	}
	if len(s.llas) > 0 {
		s.sendRS(s.llas[0])
	} else {
		s.sendRS(netip.IPv6Unspecified())
	}
}

// Renumber reacts to the ISP withdrawing the delegated prefix: every
// address out of the old prefix is dropped (its valid lifetime was
// zeroed), the stateful lease carved from it dies with it, and the RA
// state is cleared so the next advertisement re-runs SLAAC against the
// new prefix. The device is unreachable over v6 until that happens —
// the re-addressing outage the timeline report measures.
func (s *Stack) Renumber(old, new netip.Prefix) {
	s.prefixes.GUA = new
	kept := s.guas[:0]
	for _, a := range s.guas {
		if !old.Contains(a) {
			kept = append(kept, a)
		}
	}
	s.guas = kept
	if old.Contains(s.statefulAddr) {
		s.statefulAddr = netip.Addr{}
	}
	if s.dnsV6.IsValid() && old.Contains(s.dnsV6) {
		s.dnsV6 = netip.Addr{}
	}
	s.raSeen = nil
}

// AbortStaleConns kills live connections sourced from a withdrawn prefix
// (their return path is gone) and drops in-flight v6 DNS queries, the
// "live flows cut mid-transfer" effect of flash renumbering. It returns
// how many connections died.
func (s *Stack) AbortStaleConns(old netip.Prefix) int {
	n := 0
	for _, key := range s.connOrder {
		if c := s.conns[key]; c != nil && c.state < 3 && old.Contains(c.src) {
			c.state = 3
			n++
		}
	}
	for id, pq := range s.pendingDNS {
		if pq.overV6 {
			delete(s.pendingDNS, id)
		}
	}
	return n
}

// RunBurst re-runs the device's primary function once: the essential
// destinations are re-contacted (their per-experiment dedup is cleared)
// plus the periodic NTP sync. After the network drains, Functional()
// reports whether the burst succeeded — the per-day functionality signal
// of the timeline report.
func (s *Stack) RunBurst(cl *cloud.Cloud) {
	if s.asleep {
		return
	}
	// Week-long runs accumulate finished connections; prune them so the
	// conn table stays proportional to in-flight work.
	if len(s.conns) > 64 {
		kept := s.connOrder[:0]
		for _, key := range s.connOrder {
			if c := s.conns[key]; c != nil && c.state < 3 {
				kept = append(kept, key)
			} else {
				delete(s.conns, key)
			}
		}
		s.connOrder = kept
	}
	// Byte budgets as RunWorkload computes them, so burst flows look like
	// the bounded-transaction flows the analysis already understands.
	nV4, nV6 := 0, 0
	for i := range s.Plan.Specs {
		v4, v6 := s.familiesFor(&s.Plan.Specs[i])
		if v4 {
			nV4++
		}
		if v6 {
			nV6++
		}
	}
	s.v4ByteEach, s.v6ByteEach = 800, 800
	if s.mode == ModeDual {
		if nV4 > 0 {
			s.v4ByteEach = max(16, s.Plan.V4Bytes/nV4)
		}
		if nV6 > 0 {
			s.v6ByteEach = max(16, s.Plan.V6Bytes/nV6)
		}
	} else if n := nV4 + nV6; n > 0 {
		each := max(16, s.Plan.TotalBytes/n)
		s.v4ByteEach, s.v6ByteEach = each, each
	}
	for i := range s.Plan.Specs {
		sp := &s.Plan.Specs[i]
		if !sp.Essential {
			continue
		}
		delete(s.contacted, sp.Name)
		delete(s.essOK, sp.Name)
		s.startSpec(i, cl)
	}
	s.sendNTP()
}
