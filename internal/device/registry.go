package device

import (
	"bytes"
	"sort"
)

// This file transcribes the paper's device inventory (Table 10) and
// enriches each entry with the extended behaviour flags behind Tables 4-9
// and Figures 3-5. Flag assignments follow the paper's per-category and
// per-manufacturer counts; where the paper's tables disagree with each
// other the choices documented in DESIGN.md §4 apply. Address counts
// (GUACount/ULACount/LLACount) are pinned so the per-category inventories
// of Table 6 hold exactly; DAD-skip flags are pinned so §5.2.1's audit
// (18 devices; 20 GUAs / 7 ULAs / 8 LLAs without DAD; 4 devices never
// probing) holds exactly.
//
// Shorthand used in the comments: F=functional in IPv6-only, N=NDP,
// A=address, G=GUA, D=DNS over IPv6, C=global data communication.

// Registry returns fresh copies of the 93 device profiles in the paper's
// Table 10 order. The copies are deep: slice-typed fields (the open-port
// lists) get their own backing arrays, so concurrent studies never share
// mutable state through their profiles.
func Registry() []*Profile {
	ps := make([]*Profile, len(registry))
	for i := range registry {
		p := registry[i] // copy
		p.OpenTCPv4 = append([]uint16(nil), p.OpenTCPv4...)
		p.OpenTCPv6 = append([]uint16(nil), p.OpenTCPv6...)
		p.OpenUDPv4 = append([]uint16(nil), p.OpenUDPv4...)
		p.OpenUDPv6 = append([]uint16(nil), p.OpenUDPv6...)
		ps[i] = &p
	}
	return ps
}

// VendorOUIs returns the distinct MAC OUI blocks present in the device
// registry, sorted. This is the "vendor MAC database" a hitlist generator
// works from: the same macFor derivation the stacks use, so the list can
// never drift from the simulated hardware. The paper notes the OUI alone
// leaks vendor identity (§5.4.1); here it also collapses the EUI-64
// search space to |OUIs|×2^24 — and with the registry's fixed 0x10,0x20
// device-index suffix convention, to |OUIs|×256 candidates per prefix.
func VendorOUIs() [][3]byte {
	seen := map[[3]byte]bool{}
	for i := range registry {
		m := macFor(&registry[i], 0)
		seen[[3]byte{m[0], m[1], m[2]}] = true
	}
	out := make([][3]byte, 0, len(seen))
	for o := range seen {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool {
		return bytes.Compare(out[i][:], out[j][:]) < 0
	})
	return out
}

// Find returns the profile with the given name from a registry slice, or
// nil when absent.
func Find(ps []*Profile, name string) *Profile {
	for _, p := range ps {
		if p.Name == name {
			return p
		}
	}
	return nil
}

var registry = []Profile{
	// ---------------------------------------------------------- Appliance
	{Name: "Behmor Brewer", Category: Appliance, Manufacturer: "Behmor", OS: "embedded", Year: 2017},
	{Name: "Smarter IKettle", Category: Appliance, Manufacturer: "Smarter", OS: "embedded", Year: 2017},
	{Name: "GE Microwave", Category: Appliance, Manufacturer: "GE", OS: "embedded", Year: 2017,
		// N,A: link-local only, EUI-64 LLA; one of the six devices with
		// IPv4-only open ports (§5.4.2).
		NDP: true, AssignAddr: true, LLA: true,
		OpenTCPv4: []uint16{8080}},
	{Name: "Miele Dishwasher", Category: Appliance, Manufacturer: "Miele", OS: "embedded", Year: 2018,
		// N only: multicasts ND from "::" without configuring an address.
		NDP: true},
	{Name: "Samsung Fridge", Category: Appliance, Manufacturer: "Samsung/SmartThings", OS: "Tizen", Year: 2021,
		// F✗ N A G D C. Tizen stack: stateful DHCPv6 (and uses the lease),
		// EUI-64 GUA used for DNS only (§5.4.1), heavy address rotation,
		// rotating LLAs, and the three IPv6-only open ports of §5.4.2.
		NDP: true, AssignAddr: true, GUA: true, ULA: true, LLA: true,
		DNSOverV6: true, V6InternetData: true, EssentialV4Only: true,
		EUI64: true, EUI64GUA: true, EUI64ForDNS: true, RotatesLLA: true,
		GUACount: 12, ULACount: 4, LLACount: 2,
		StatelessDHCPv6: true, StatefulDHCPv6: true, UsesStatefulAddr: true,
		AAAA: true, AAAAOverV4: true, AAAARespOverV4: true, AOnlyInV6: true,
		V6LocalData: true, DualV6Share: 0.08, DomainWeight: 5,
		OpenTCPv4: []uint16{8001, 8080}, OpenTCPv6: []uint16{8001, 8080, 37993, 46525, 46757}},
	{Name: "Xiaomi Induction", Category: Appliance, Manufacturer: "Xiaomi", OS: "embedded", Year: 2019},
	{Name: "Xiaomi Ricecooker", Category: Appliance, Manufacturer: "Xiaomi", OS: "embedded", Year: 2019},

	// ------------------------------------------------------------- Camera
	{Name: "Amcrest Cam", Category: Camera, Manufacturer: "Amcrest", OS: "embedded", Year: 2018,
		NDP: true, AssignAddr: true, LLA: true,
		OpenTCPv4: []uint16{80, 554}}, // v4-only ports device 2/6
	{Name: "Arlo Q Cam", Category: Camera, Manufacturer: "Arlo", OS: "embedded", Year: 2018,
		AAAA: true, AAAAOverV4: true, AAAARespOverV4: true},
	{Name: "Blink Doorbell", Category: Camera, Manufacturer: "Blink", OS: "embedded", Year: 2021,
		AAAA: true, AAAAOverV4: true},
	{Name: "Blink Security", Category: Camera, Manufacturer: "Amazon", OS: "embedded", Year: 2019,
		NDP: true, AssignAddr: true, LLA: true,
		AAAA: true, AAAAOverV4: true, AAAARespOverV4: true},
	{Name: "D-Link Camera", Category: Camera, Manufacturer: "D-Link", OS: "embedded", Year: 2017},
	{Name: "ICSee Doorbell", Category: Camera, Manufacturer: "Tuya", OS: "embedded", Year: 2022},
	{Name: "Lefun Cam", Category: Camera, Manufacturer: "Lefun", OS: "embedded", Year: 2018,
		NDP: true, AssignAddr: true, LLA: true},
	{Name: "Microseven Cam", Category: Camera, Manufacturer: "Microseven", OS: "embedded", Year: 2018},
	{Name: "Nest Camera", Category: Camera, Manufacturer: "Google", OS: "Linux", Year: 2021,
		// F✗ N A G D C: full IPv6 support, EUI-64 GUA used for Internet
		// data (§5.4.1), >80% of dual-stack volume over v6 (Figure 4),
		// essential domains IPv4-only (§5.1.3).
		NDP: true, AssignAddr: true, GUA: true, ULA: true, LLA: true,
		DNSOverV6: true, V6InternetData: true, EssentialV4Only: true,
		EUI64: true, EUI64GUA: true, EUI64ForDNS: true, EUI64ForData: true,
		GUACount: 38, ULACount: 13,
		AAAA: true, AAAAOverV4: true, AAAARespOverV4: true, AOnlyInV6: true,
		V6LocalData: true, DualV6Share: 0.85, DomainWeight: 3},
	{Name: "Nest Doorbell", Category: Camera, Manufacturer: "Google", OS: "Linux", Year: 2021,
		NDP: true, AssignAddr: true, GUA: true, ULA: true, LLA: true,
		DNSOverV6: true, V6InternetData: true, EssentialV4Only: true,
		EUI64: true, EUI64GUA: true, SkipDADLLA: true,
		GUACount: 36, ULACount: 13,
		AAAA: true, AAAAOverV4: true, AAAARespOverV4: true,
		V6LocalData: true, DualV6Share: 0.10, DomainWeight: 3},
	{Name: "Ring Camera", Category: Camera, Manufacturer: "Ring", OS: "embedded", Year: 2018,
		AAAA: true, AAAAOverV4: true},
	{Name: "Ring Doorbell", Category: Camera, Manufacturer: "Ring", OS: "embedded", Year: 2018},
	{Name: "Ring Wired Cam", Category: Camera, Manufacturer: "Ring", OS: "embedded", Year: 2023},
	{Name: "Ring Indoor Cam", Category: Camera, Manufacturer: "Ring", OS: "embedded", Year: 2023},
	{Name: "TP-Link Camera", Category: Camera, Manufacturer: "TP-Link", OS: "embedded", Year: 2022},
	{Name: "Tuya Camera", Category: Camera, Manufacturer: "Tuya", OS: "embedded", Year: 2022},
	{Name: "Wyze Cam", Category: Camera, Manufacturer: "Wyze", OS: "embedded", Year: 2021,
		AAAA: true, AAAAOverV4: true, AAAARespOverV4: true,
		OpenTCPv4: []uint16{8443}}, // v4-only ports device 3/6
	{Name: "Yi Camera", Category: Camera, Manufacturer: "Yi", OS: "embedded", Year: 2018},

	// ------------------------------------------------------------ TV/Ent.
	{Name: "Nintendo Switch", Category: TV, Manufacturer: "Nintendo", OS: "Horizon", Year: 2021},
	{Name: "Apple TV", Category: TV, Manufacturer: "Apple", OS: "iOS/tvOS", Year: 2021,
		// F✓: full support, privacy extensions, stateful DHCPv6 support,
		// rotating LLAs, HTTPS+SVCB queries (HTTP/3).
		FunctionalV6Only: true,
		NDP:              true, AssignAddr: true, GUA: true, ULA: true, LLA: true,
		DNSOverV6: true, V6InternetData: true,
		RotatesLLA: true, GUACount: 25, ULACount: 4, LLACount: 3,
		StatelessDHCPv6: true, StatefulDHCPv6: true,
		AAAA: true, AOnlyInV6: true, QueriesHTTPS: true, QueriesSVCB: true,
		V6LocalData: true, DualV6Share: 0.55, DomainWeight: 8},
	{Name: "Google TV", Category: TV, Manufacturer: "Google", OS: "Android", Year: 2021,
		// F✓: Android's full IPv6 stack; no DHCPv6 at all (Android).
		FunctionalV6Only: true,
		NDP:              true, AssignAddr: true, GUA: true, ULA: true, LLA: true,
		DNSOverV6: true, V6InternetData: true, SkipDADGUA: true,
		GUACount: 4, ULACount: 2,
		AAAA: true, AAAAOverV4: true, AAAARespOverV4: true, AOnlyInV6: true, QueriesHTTPS: true,
		V6LocalData: true, DualV6Share: 0.65, DomainWeight: 8},
	{Name: "Fire TV", Category: TV, Manufacturer: "Amazon", OS: "FireOS", Year: 2021,
		// F✗: full feature support but api.amazon.com-style essential
		// domains are IPv4-only (§5.1.3); EUI-64 GUA used for data.
		NDP: true, AssignAddr: true, GUA: true, LLA: true,
		DNSOverV6: true, V6InternetData: true, EssentialV4Only: true,
		EUI64: true, EUI64GUA: true, EUI64ForDNS: true, EUI64ForData: true, EUI64ForNTP: true,
		SkipDADLLA: true, GUACount: 2,
		AAAA: true, AAAAOverV4: true, AAAARespOverV4: true, AOnlyInV6: true, QueriesHTTPS: true,
		V6LocalData: true, DualV6Share: 0.40, DomainWeight: 6},
	{Name: "Roku TV", Category: TV, Manufacturer: "Roku", OS: "Roku OS", Year: 2021,
		// No IPv6 at all, but queries AAAA over IPv4 (and gets answers).
		AAAA: true, AAAAOverV4: true, AAAARespOverV4: true, DomainWeight: 3,
		OpenTCPv4: []uint16{8060}}, // v4-only ports device 4/6
	{Name: "Samsung TV", Category: TV, Manufacturer: "Samsung/SmartThings", OS: "Tizen", Year: 2021,
		NDP: true, AssignAddr: true, GUA: true, LLA: true,
		DNSOverV6: true, V6InternetData: true, EssentialV4Only: true,
		EUI64: true, EUI64GUA: true, EUI64Probe: true, RotatesLLA: true,
		GUACount: 19, LLACount: 3,
		StatelessDHCPv6: true, StatefulDHCPv6: true,
		AAAA: true, AAAAOverV4: true, AAAARespOverV4: true, AOnlyInV6: true,
		V6LocalData: true, DualV6Share: 0.12, DomainWeight: 6,
		OpenTCPv4: []uint16{8001, 9197}}, // v4-only ports device 5/6
	{Name: "TiVo Stream", Category: TV, Manufacturer: "Tivo", OS: "Android", Year: 2021,
		FunctionalV6Only: true,
		NDP:              true, AssignAddr: true, GUA: true, LLA: true,
		DNSOverV6: true, V6InternetData: true, NoPMTUD: true,
		GUACount: 3,
		AAAA:     true, AOnlyInV6: true, QueriesHTTPS: true,
		V6LocalData: true, DualV6Share: 0.25, DomainWeight: 6},
	{Name: "Vizio TV", Category: TV, Manufacturer: "Vizio", OS: "SmartCast", Year: 2021,
		// F✗: learns resolvers only via DHCPv6 (fails the RDNSS-only run,
		// §5.2.1); Internet data over v6 only in dual-stack.
		NDP: true, AssignAddr: true, GUA: true, LLA: true,
		DNSOverV6: true, V6InternetData: true, DualOnlyInternetData: true,
		EssentialV4Only: true, EUI64: true, EUI64GUA: true, EUI64Probe: true,
		SkipDADLLA: true, GUACount: 2,
		StatelessDHCPv6: true, RequiresDHCPv6DNS: true,
		AAAA: true, AAAAOverV4: true, AAAARespOverV4: true,
		DualV6Share: 0.08, DomainWeight: 4},

	// ------------------------------------------------------------ Gateway
	{Name: "Aeotec Hub", Category: Gateway, Manufacturer: "Samsung/SmartThings", OS: "Linux", Year: 2021,
		// F✗ N A G D C: EUI-64 GUA used for DNS only (§5.4.1); its v6
		// AAAA queries get no answers, Internet data reaches a
		// vendor-configured literal IPv6 address.
		NDP: true, AssignAddr: true, GUA: true, ULA: true, LLA: true,
		DNSOverV6: true, V6InternetData: true, HardcodedV6Dest: true,
		EssentialV4Only: true, EUI64: true, EUI64GUA: true, EUI64ForDNS: true,
		GUACount: 56, ULACount: 7, LLACount: 2,
		StatelessDHCPv6: true, StatefulDHCPv6: true, UsesStatefulAddr: true,
		AAAA: true, AOnlyInV6: true,
		V6LocalData: true, DualV6Share: 0.01, DomainWeight: 4},
	{Name: "Aqara Hub", Category: Gateway, Manufacturer: "Aqara", OS: "embedded", Year: 2022,
		// One of the four devices that never perform DAD (§5.2.1).
		NDP: true, AssignAddr: true, ULA: true, LLA: true,
		EUI64: true, SkipDADULA: true, SkipDADLLA: true, ULACount: 2,
		V6LocalData: true},
	{Name: "Aqara Hub M2", Category: Gateway, Manufacturer: "Aqara", OS: "embedded", Year: 2022,
		NDP: true, AssignAddr: true, ULA: true, LLA: true,
		EUI64: true, SkipDADULA: true, SkipDADLLA: true, ULACount: 2,
		V6LocalData: true},
	{Name: "Eufy Hub", Category: Gateway, Manufacturer: "Eufy", OS: "embedded", Year: 2022,
		// Skips IPv6 when IPv4 is available (the dual-stack NDP drop of
		// Table 4); queries AAAA over IPv4.
		NDP: true, AssignAddr: true, LLA: true, SkipNDPInDualStack: true,
		AAAA: true, AAAAOverV4: true, AAAARespOverV4: true},
	{Name: "IKEA Gateway", Category: Gateway, Manufacturer: "IKEA", OS: "embedded", Year: 2022,
		// G and C without D: reaches a vendor-configured IPv6 literal.
		NDP: true, AssignAddr: true, GUA: true, LLA: true,
		V6InternetData: true, DualOnlyInternetData: true, HardcodedV6Dest: true, EssentialV4Only: true,
		EUI64: true, EUI64GUA: true, EUI64Probe: true, SkipDADGUA: true, GUACount: 2,
		DualV6Share: 0.01},
	{Name: "Sengled Hub", Category: Gateway, Manufacturer: "Sengled", OS: "embedded", Year: 2018,
		NDP: true, AssignAddr: true, LLA: true},
	{Name: "SmartThings Hub", Category: Gateway, Manufacturer: "Samsung/SmartThings", OS: "Linux", Year: 2021,
		// F✗ N A G D (no C): DNS over v6 with no usable AAAA answers.
		NDP: true, AssignAddr: true, GUA: true, ULA: true, LLA: true,
		DNSOverV6: true, EssentialV4Only: true,
		EUI64: true, EUI64GUA: true, EUI64ForDNS: true,
		GUACount: 56, ULACount: 7,
		StatelessDHCPv6: true, StatefulDHCPv6: true, UsesStatefulAddr: true,
		AAAA: true, AAAAOverV4: true, AOnlyInV6: true,
		V6LocalData: true, DomainWeight: 4},
	{Name: "SwitchBot Hub", Category: Gateway, Manufacturer: "SwitchBot", OS: "embedded", Year: 2022},
	{Name: "Philips Hue Hub", Category: Gateway, Manufacturer: "Signify", OS: "embedded", Year: 2018,
		NDP: true, AssignAddr: true, LLA: true,
		StatelessDHCPv6: true,
		AAAA:            true, AAAAOverV4: true, AAAARespOverV4: true,
		OpenTCPv4: []uint16{80, 443}}, // v4-only ports device 6/6
	{Name: "SwitchBot Hub 2", Category: Gateway, Manufacturer: "SwitchBot", OS: "embedded", Year: 2023,
		NDP: true, AssignAddr: true, LLA: true,
		AAAA: true, AAAAOverV4: true},
	{Name: "ThirdReality Bridge", Category: Gateway, Manufacturer: "ThirdReality", OS: "embedded", Year: 2022,
		// GUA without LLA: one of the devices using only global addresses.
		NDP: true, AssignAddr: true, GUA: true,
		EUI64: true, EUI64GUA: true, EUI64Probe: true, GUACount: 2},
	{Name: "SmartLife Hub", Category: Gateway, Manufacturer: "Tuya", OS: "embedded", Year: 2023,
		// The Matter hub of §5.1.3: a2.tuyaus.com has AAAA records but the
		// device only ever queries it over IPv4.
		NDP: true, AssignAddr: true, GUA: true, ULA: true, LLA: true,
		DNSOverV6: true, V6InternetData: true, HardcodedV6Dest: true,
		EssentialV4Only: true, EUI64: true, EUI64GUA: true, EUI64Probe: true,
		SkipDADGUA: true, SkipDADULA: true,
		GUACount: 3, ULACount: 2,
		AAAA: true, AAAAOverV4: true, AOnlyInV6: true,
		V6LocalData: true, DualV6Share: 0.02, DomainWeight: 3},

	// ------------------------------------------------------------- Health
	{Name: "Blueair Purifier", Category: Health, Manufacturer: "Blueair", OS: "embedded", Year: 2023,
		NDP: true},
	{Name: "Keyco Air", Category: Health, Manufacturer: "Keyco", OS: "embedded", Year: 2023},
	{Name: "ThermoPro Sensor", Category: Health, Manufacturer: "ThermoPro", OS: "embedded", Year: 2023,
		// Configures GUA+ULA (no LLA) only when IPv4 is present; skips DAD.
		NDP: true, AssignAddr: true, GUA: true, ULA: true,
		DualOnlyAddr: true, DualOnlyGUA: true, SkipDADULA: true},
	{Name: "Withings BPM", Category: Health, Manufacturer: "Withings", OS: "embedded", Year: 2023},
	{Name: "Withings Sleep", Category: Health, Manufacturer: "Withings", OS: "embedded", Year: 2023},
	{Name: "Withings Thermo", Category: Health, Manufacturer: "Withings", OS: "embedded", Year: 2023},

	// ---------------------------------------------------------- Home Auto
	{Name: "Amazon Plug", Category: HomeAuto, Manufacturer: "Amazon", OS: "embedded", Year: 2023},
	{Name: "Consciot Matter Bulb", Category: HomeAuto, Manufacturer: "Aidot", OS: "embedded", Year: 2024,
		// Matter stack, addresses only in dual-stack; never performs DAD.
		NDP: true, AssignAddr: true, LLA: true, DualOnlyAddr: true,
		EUI64: true, SkipDADLLA: true},
	{Name: "Gosund Bulb", Category: HomeAuto, Manufacturer: "Gosund", OS: "embedded", Year: 2022,
		NDP: true, AssignAddr: true, GUA: true, LLA: true, DualOnlyGUA: true,
		EUI64: true, EUI64GUA: true},
	{Name: "Govee Strip", Category: HomeAuto, Manufacturer: "Govee", OS: "embedded", Year: 2022},
	{Name: "Govee Matter Strip", Category: HomeAuto, Manufacturer: "Govee", OS: "embedded", Year: 2023,
		// ULA-only (no LLA) Matter device with DHCPv6 support.
		NDP: true, AssignAddr: true, ULA: true, ULACount: 2,
		StatelessDHCPv6: true, StatefulDHCPv6: true},
	{Name: "Meross Dooropener", Category: HomeAuto, Manufacturer: "Meross", OS: "embedded", Year: 2022},
	{Name: "Meross Matter Plug", Category: HomeAuto, Manufacturer: "Meross", OS: "embedded", Year: 2024,
		NDP: true, AssignAddr: true, GUA: true, ULA: true, LLA: true,
		EUI64: true, EUI64GUA: true, EUI64Probe: true, SkipDADGUA: true, SkipDADLLA: true, ULACount: 2,
		StatelessDHCPv6: true, StatefulDHCPv6: true,
		V6LocalData: true},
	{Name: "MagicHome Strip", Category: HomeAuto, Manufacturer: "Tuya", OS: "embedded", Year: 2018},
	{Name: "Meross Plug", Category: HomeAuto, Manufacturer: "Meross", OS: "embedded", Year: 2022,
		NDP: true, AssignAddr: true, LLA: true},
	{Name: "Nest Thermostat", Category: HomeAuto, Manufacturer: "Google", OS: "embedded", Year: 2021,
		NDP: true, AssignAddr: true, LLA: true,
		StatelessDHCPv6: true, StatefulDHCPv6: true,
		AAAA: true, AAAAOverV4: true, AAAARespOverV4: true},
	{Name: "Orein Matter Bulb", Category: HomeAuto, Manufacturer: "Aidot", OS: "embedded", Year: 2024,
		NDP: true, AssignAddr: true, LLA: true,
		EUI64: true, SkipDADLLA: true},
	{Name: "Ring Chime", Category: HomeAuto, Manufacturer: "Ring", OS: "embedded", Year: 2019},
	{Name: "Sengled Bulb", Category: HomeAuto, Manufacturer: "Sengled", OS: "embedded", Year: 2022,
		NDP: true},
	{Name: "SmartLife Remote", Category: HomeAuto, Manufacturer: "Tuya", OS: "embedded", Year: 2023,
		NDP: true, AssignAddr: true, ULA: true, LLA: true, EUI64: true},
	{Name: "Wemo Plug", Category: HomeAuto, Manufacturer: "Belkin", OS: "embedded", Year: 2017},
	{Name: "TP-Link Kasa Bulb", Category: HomeAuto, Manufacturer: "TP-Link", OS: "embedded", Year: 2018},
	{Name: "TP-Link Kasa Plug", Category: HomeAuto, Manufacturer: "TP-Link", OS: "embedded", Year: 2018},
	{Name: "TP-Link Tapo Plug", Category: HomeAuto, Manufacturer: "TP-Link", OS: "embedded", Year: 2023,
		NDP: true, AssignAddr: true, GUA: true, LLA: true,
		EUI64: true, EUI64GUA: true, EUI64Probe: true, GUACount: 2,
		StatelessDHCPv6: true, StatefulDHCPv6: true,
		V6LocalData: true},
	{Name: "Wiz Bulb", Category: HomeAuto, Manufacturer: "Signify", OS: "embedded", Year: 2021,
		NDP: true},
	{Name: "Yeelight Bulb", Category: HomeAuto, Manufacturer: "Yeelight", OS: "embedded", Year: 2022},
	{Name: "Tuya Matter Plug", Category: HomeAuto, Manufacturer: "Tuya", OS: "embedded", Year: 2024,
		// ULA-only (no LLA) Matter device.
		NDP: true, AssignAddr: true, ULA: true, EUI64: true},
	{Name: "Tapo Matter Bulb", Category: HomeAuto, Manufacturer: "TP-Link", OS: "embedded", Year: 2024,
		NDP: true, AssignAddr: true, GUA: true, LLA: true,
		EUI64: true, EUI64GUA: true, SkipDADGUA: true,
		StatelessDHCPv6: true, StatefulDHCPv6: true,
		V6LocalData: true},
	{Name: "Linkind Matter Plug", Category: HomeAuto, Manufacturer: "Aidot", OS: "embedded", Year: 2024,
		NDP: true, AssignAddr: true, LLA: true, DualOnlyAddr: true},
	{Name: "Leviton Matter Plug", Category: HomeAuto, Manufacturer: "Leviton", OS: "embedded", Year: 2024,
		NDP: true, AssignAddr: true, ULA: true, LLA: true,
		StatelessDHCPv6: true, StatefulDHCPv6: true},
	{Name: "August Lock", Category: HomeAuto, Manufacturer: "August", OS: "embedded", Year: 2021},
	{Name: "Cync Matter Plug", Category: HomeAuto, Manufacturer: "GE Cync", OS: "embedded", Year: 2024,
		NDP: true},

	// ------------------------------------------------------------ Speaker
	{Name: "Echo Dot 2nd gen", Category: Speaker, Manufacturer: "Amazon", OS: "FireOS", Year: 2017,
		// G and C only in dual-stack (Table 4's +2 speakers).
		NDP: true, AssignAddr: true, GUA: true, LLA: true,
		V6InternetData: true, DualOnlyGUA: true, DualOnlyInternetData: true,
		EssentialV4Only: true, EUI64: true, EUI64GUA: true, SkipDADGUA: true, GUACount: 2,
		AAAA: true, AAAAOverV4: true, AAAARespOverV4: true,
		DualV6Share: 0.03, DomainWeight: 2},
	{Name: "Echo Dot 3rd gen", Category: Speaker, Manufacturer: "Amazon", OS: "FireOS", Year: 2018,
		NDP: true, AssignAddr: true, LLA: true, EUI64: true,
		AAAA: true, AAAAOverV4: true, AAAARespOverV4: true, DomainWeight: 2},
	{Name: "Echo Dot 4th gen", Category: Speaker, Manufacturer: "Amazon", OS: "FireOS", Year: 2021,
		NDP: true, AssignAddr: true, LLA: true, EUI64: true,
		AAAA: true, AAAAOverV4: true, AAAARespOverV4: true, DomainWeight: 2},
	{Name: "Echo Dot 5th gen", Category: Speaker, Manufacturer: "Amazon", OS: "FireOS", Year: 2023,
		NDP: true, AssignAddr: true, GUA: true, LLA: true,
		V6InternetData: true, DualOnlyGUA: true, DualOnlyInternetData: true,
		EssentialV4Only: true, EUI64: true, EUI64GUA: true, SkipDADGUA: true, GUACount: 2,
		AAAA: true, AAAAOverV4: true, AAAARespOverV4: true,
		DualV6Share: 0.02, DomainWeight: 2},
	{Name: "Echo Flex", Category: Speaker, Manufacturer: "Amazon", OS: "FireOS", Year: 2019,
		// The one speaker that never issues AAAA queries.
		NDP: true, AssignAddr: true, LLA: true, EUI64: true, DomainWeight: 2},
	{Name: "Echo Plus", Category: Speaker, Manufacturer: "Amazon", OS: "FireOS", Year: 2017,
		NDP: true, AssignAddr: true, GUA: true, ULA: true, LLA: true,
		DNSOverV6: true, V6InternetData: true, EssentialV4Only: true,
		EUI64: true, EUI64GUA: true, EUI64ForDNS: true, EUI64ForData: true, EUI64ForNTP: true,
		SkipDADGUA: true, GUACount: 2, ULACount: 3,
		AAAA: true, AAAAOverV4: true, AAAARespOverV4: true, AOnlyInV6: true,
		DualV6Share: 0.04, DomainWeight: 3},
	{Name: "Echo Pop", Category: Speaker, Manufacturer: "Amazon", OS: "FireOS", Year: 2023,
		NDP: true, AssignAddr: true, LLA: true, EUI64: true,
		AAAA: true, AAAAOverV4: true, AAAARespOverV4: true, DomainWeight: 2},
	{Name: "Echo Show 5", Category: Speaker, Manufacturer: "Amazon", OS: "FireOS", Year: 2018,
		NDP: true, AssignAddr: true, GUA: true, LLA: true,
		DNSOverV6: true, V6InternetData: true, EssentialV4Only: true,
		EUI64: true, EUI64GUA: true, EUI64ForDNS: true, EUI64ForData: true, SkipDADGUA: true, GUACount: 2,
		AAAA: true, AAAAOverV4: true, AAAARespOverV4: true, AOnlyInV6: true,
		DualV6Share: 0.45, DomainWeight: 4},
	{Name: "Echo Show 8", Category: Speaker, Manufacturer: "Amazon", OS: "FireOS", Year: 2021,
		NDP: true, AssignAddr: true, GUA: true, LLA: true,
		DNSOverV6: true, V6InternetData: true, EssentialV4Only: true,
		EUI64: true, EUI64GUA: true, EUI64ForDNS: true, EUI64ForData: true, GUACount: 2,
		AAAA: true, AAAAOverV4: true, AAAARespOverV4: true, AOnlyInV6: true,
		DualV6Share: 0.30, DomainWeight: 4},
	{Name: "Echo Spot", Category: Speaker, Manufacturer: "Amazon", OS: "FireOS", Year: 2017,
		// D without C: resolves over v6 but transmits no global v6 data.
		NDP: true, AssignAddr: true, GUA: true, LLA: true,
		DNSOverV6: true, EssentialV4Only: true, EUI64: true, SkipDADGUA: true,
		AAAA: true, AAAAOverV4: true, AAAARespOverV4: true, AOnlyInV6: true,
		DomainWeight: 3},
	{Name: "Meta Portal Mini", Category: Speaker, Manufacturer: "Meta", OS: "Android", Year: 2021,
		FunctionalV6Only: true,
		NDP:              true, AssignAddr: true, GUA: true, ULA: true, LLA: true,
		DNSOverV6: true, V6InternetData: true,
		GUACount: 8, ULACount: 4,
		AAAA: true, AOnlyInV6: true,
		DualV6Share: 0.88, DomainWeight: 3},
	{Name: "Google Home Mini", Category: Speaker, Manufacturer: "Google", OS: "Android", Year: 2018,
		FunctionalV6Only: true,
		NDP:              true, AssignAddr: true, GUA: true, ULA: true, LLA: true,
		DNSOverV6: true, V6InternetData: true, NoPMTUD: true,
		GUACount: 28, ULACount: 10,
		AAAA: true, AAAAOverV4: true, AAAARespOverV4: true, AOnlyInV6: true, QueriesHTTPS: true,
		V6LocalData: true, DualV6Share: 0.83, DomainWeight: 3},
	{Name: "Google Nest Mini", Category: Speaker, Manufacturer: "Google", OS: "Android", Year: 2019,
		FunctionalV6Only: true,
		NDP:              true, AssignAddr: true, GUA: true, ULA: true, LLA: true,
		DNSOverV6: true, V6InternetData: true,
		GUACount: 21, ULACount: 8,
		AAAA: true, AAAAOverV4: true, AAAARespOverV4: true, AOnlyInV6: true,
		V6LocalData: true, DualV6Share: 0.35, DomainWeight: 3},
	{Name: "HomePod Mini", Category: Speaker, Manufacturer: "Apple", OS: "iOS/tvOS", Year: 2021,
		// F✗ despite full support (§5.1.3); stateful DHCPv6 user;
		// rotating LLAs; HTTPS+SVCB.
		NDP: true, AssignAddr: true, GUA: true, ULA: true, LLA: true,
		DNSOverV6: true, V6InternetData: true, EssentialV4Only: true,
		RotatesLLA: true, GUACount: 50, ULACount: 40, LLACount: 4,
		StatelessDHCPv6: true, StatefulDHCPv6: true, UsesStatefulAddr: true,
		AAAA: true, AAAAOverV4: true, AAAARespOverV4: true,
		QueriesHTTPS: true, QueriesSVCB: true,
		V6LocalData: true, DualV6Share: 0.28, DomainWeight: 5},
	{Name: "Nest Hub", Category: Speaker, Manufacturer: "Google", OS: "Fuchsia", Year: 2021,
		// F✓ but <20% of dual-stack volume over v6 (Fuchsia, §5.2.3).
		FunctionalV6Only: true,
		NDP:              true, AssignAddr: true, GUA: true, ULA: true, LLA: true,
		DNSOverV6: true, V6InternetData: true,
		GUACount: 36, ULACount: 20,
		StatelessDHCPv6: true,
		AAAA:            true, AAAAOverV4: true, AAAARespOverV4: true, AOnlyInV6: true,
		V6LocalData: true, DualV6Share: 0.18, DomainWeight: 4},
	{Name: "Nest Hub Max", Category: Speaker, Manufacturer: "Google", OS: "Fuchsia", Year: 2021,
		FunctionalV6Only: true,
		NDP:              true, AssignAddr: true, GUA: true, ULA: true, LLA: true,
		DNSOverV6: true, V6InternetData: true,
		GUACount: 36, ULACount: 20,
		StatelessDHCPv6: true,
		AAAA:            true, AAAAOverV4: true, AAAARespOverV4: true, AOnlyInV6: true,
		V6LocalData: true, DualV6Share: 0.15, DomainWeight: 4},
}
