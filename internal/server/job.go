package server

import (
	"bytes"
	"context"
	"sync"
	"time"

	"v6lab"
	"v6lab/internal/adversary"
	"v6lab/internal/faults"
	"v6lab/internal/fleet"
	"v6lab/internal/pcapio"
	"v6lab/internal/report"
	"v6lab/internal/telemetry"
	"v6lab/internal/timeline"
)

// State is a job's position in its lifecycle.
type State string

// The job states. A job moves queued → running → done|failed|cancelled;
// a cache hit is born done.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Job is one accepted study request. The immutable identity fields are
// set at creation; the mutable state is guarded by mu and read through
// Status.
type Job struct {
	// ID is the server-assigned job identifier ("job-000001").
	ID string
	// Key is the (seed, options-hash) cache key of the canonical spec.
	Key Key
	// Spec is the canonical spec the job runs.
	Spec JobSpec
	// Cached reports whether the job was served from the result cache
	// without running anything.
	Cached bool

	events *broadcaster

	mu       sync.Mutex
	state    State
	err      string
	result   *Result
	created  time.Time
	started  time.Time
	finished time.Time
}

// JobStatus is the wire form of GET /v1/jobs/{id}.
type JobStatus struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"`
	State  State  `json:"state"`
	Cached bool   `json:"cached"`
	Key    Key    `json:"key"`
	// Error carries the failure message for failed/cancelled jobs.
	Error string `json:"error,omitempty"`
	// Artifacts lists the downloadable artifact names once done.
	Artifacts []string `json:"artifacts,omitempty"`
	// Wall-clock timestamps (RFC 3339); zero fields are omitted. Wall
	// time never reaches artifacts — those are deterministic — so it is
	// safe to expose here.
	CreatedAt  string `json:"created_at,omitempty"`
	StartedAt  string `json:"started_at,omitempty"`
	FinishedAt string `json:"finished_at,omitempty"`
}

// Status snapshots the job for the API.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.ID,
		Kind:      j.Spec.Kind,
		State:     j.state,
		Cached:    j.Cached,
		Key:       j.Key,
		Error:     j.err,
		CreatedAt: rfc3339(j.created),
	}
	st.StartedAt = rfc3339(j.started)
	st.FinishedAt = rfc3339(j.finished)
	if j.result != nil {
		st.Artifacts = j.result.Names()
	}
	return st
}

// Result returns the completed result, or nil while the job is not done.
func (j *Job) Result() *Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

func rfc3339(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.Format(time.RFC3339Nano)
}

// runSpec executes a canonical spec from scratch and collects its
// artifacts. Every job gets its own lab and telemetry registry, so
// concurrent jobs share no mutable state; sink receives the live
// progress stream.
func runSpec(ctx context.Context, spec JobSpec, sink telemetry.Sink) (*Result, error) {
	reg := telemetry.NewRegistry()
	opts := []v6lab.Option{
		v6lab.WithSeed(spec.Seed),
		v6lab.WithTelemetry(reg),
	}
	if sink != nil {
		opts = append(opts, v6lab.WithProgress(sink))
	}
	if len(spec.Devices) > 0 {
		opts = append(opts, v6lab.WithDevices(spec.Devices...))
	}
	if spec.Fault != "" {
		p, err := faults.ByName(spec.Fault)
		if err != nil {
			return nil, err
		}
		opts = append(opts, v6lab.WithFaultProfile(p))
	}
	if spec.MaxFramesPerRun > 0 {
		opts = append(opts, v6lab.WithMaxFramesPerRun(spec.MaxFramesPerRun))
	}
	// One knob for every engine: WithWorkers flows to the study's parallel
	// engine and — via part inheritance — to fleet and adversary pools.
	if spec.Workers > 0 {
		opts = append(opts, v6lab.WithWorkers(spec.Workers))
	}
	if spec.Kind == KindStudy || spec.Kind == KindFirewall {
		opts = append(opts, v6lab.WithCapture(v6lab.CaptureFull))
	}
	lab := v6lab.New(opts...)

	var parts []v6lab.RunPart
	switch spec.Kind {
	// Study and firewall jobs serve per-experiment pcap artifacts from the
	// buffered captures, so they pin CaptureFull explicitly (it is also
	// the lab default; the pin documents the dependency). Fleet,
	// resilience, and adversary jobs render aggregates only and keep the
	// streaming CaptureNone defaults of their drivers.
	case KindStudy:
		parts = []v6lab.RunPart{v6lab.Connectivity()}
	case KindFirewall:
		parts = []v6lab.RunPart{v6lab.Connectivity(), v6lab.FirewallComparison(spec.Policies...)}
	case KindFleet:
		parts = []v6lab.RunPart{v6lab.Fleet(0, v6lab.FleetConfig(fleet.Config{
			Homes:           spec.FleetHomes,
			Seed:            spec.FleetSeed,
			MaxFramesPerRun: spec.MaxFramesPerRun,
		}))}
	case KindResilience:
		parts = []v6lab.RunPart{v6lab.Resilience()}
	case KindAdversary:
		parts = []v6lab.RunPart{v6lab.Adversary(0, v6lab.AdversaryConfig(adversary.Config{
			Fleet: fleet.Config{
				Homes:           spec.FleetHomes,
				Seed:            spec.FleetSeed,
				MaxFramesPerRun: spec.MaxFramesPerRun,
			},
			CampaignSeed: spec.CampaignSeed,
		}))}
	case KindTimeline:
		h, err := v6lab.ParseHorizon(spec.Horizon)
		if err != nil {
			return nil, err
		}
		parts = []v6lab.RunPart{v6lab.Timeline(h, v6lab.TimelineConfig(timeline.Config{
			Homes:             spec.FleetHomes,
			Seed:              spec.FleetSeed,
			MaxFramesPerDrain: spec.MaxFramesPerRun,
		}))}
	}
	if err := lab.RunContext(ctx, parts...); err != nil {
		return nil, err
	}
	return collectArtifacts(lab, spec)
}

// collectArtifacts renders a completed lab into the immutable byte
// artifacts a result serves: the full report, one pcap per connectivity
// experiment, the plot-ready CSV series, and the deterministic telemetry
// snapshot in both exposition formats. Everything here is
// byte-deterministic in (seed, canonical options), which is what lets a
// cache hit serve these bytes as if it had run the study.
func collectArtifacts(lab *v6lab.Lab, spec JobSpec) (*Result, error) {
	arts := make(map[string][]byte)
	switch spec.Kind {
	case KindStudy, KindFirewall:
		arts["fullreport"] = []byte(lab.FullReport())
		for _, res := range lab.Study.Results {
			b, err := pcapBytes(res.Capture.Records)
			if err != nil {
				return nil, err
			}
			arts[res.Config.ID+".pcap"] = b
		}
		cdfs := lab.Data.Figure3()
		arts["funnel.csv"] = []byte(report.CSVFunnel(lab.Data.Table3()))
		arts["volume.csv"] = []byte(report.CSVVolumeShares(lab.Data.Figure4()))
		arts["cdf_addrs.csv"] = []byte(report.CSVCDF(cdfs.AddrsPerDevice))
		arts["cdf_queries.csv"] = []byte(report.CSVCDF(cdfs.AAAANamesPerDevice))
	case KindFleet:
		arts["fullreport"] = []byte(lab.Report(v6lab.FleetStudy))
	case KindResilience:
		arts["fullreport"] = []byte(lab.Report(v6lab.ResilienceStudy))
	case KindAdversary:
		arts["fullreport"] = []byte(lab.Report(v6lab.AdversaryStudy))
	case KindTimeline:
		arts["fullreport"] = []byte(lab.Report(v6lab.TimelineStudy))
	}
	if snap, ok := lab.TelemetrySnapshot(); ok {
		arts["telemetry.prom"] = snap.Prometheus()
		j, err := snap.JSON()
		if err != nil {
			return nil, err
		}
		arts["telemetry.json"] = j
	}
	return &Result{Spec: spec, Artifacts: arts}, nil
}

// pcapBytes serializes capture records into an in-memory pcap file.
func pcapBytes(recs []pcapio.Record) ([]byte, error) {
	var buf bytes.Buffer
	w := pcapio.NewWriter(&buf)
	for _, r := range recs {
		if err := w.WriteRecord(r); err != nil {
			return nil, err
		}
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
