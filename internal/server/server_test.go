package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// testSpec is a small, fast study: two devices keep a full run around
// tens of milliseconds.
func testSpec(seed uint64) string {
	return fmt.Sprintf(`{"kind":"study","seed":%d,"devices":["Wyze Cam","Apple TV"]}`, seed)
}

// testServer starts a Server on an httptest listener and tears both down
// with the test.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
		ts.Close()
	})
	return s, ts
}

func postJob(t *testing.T, base, body string) SubmitResponse {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		blob, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /v1/jobs = %d: %s", resp.StatusCode, blob)
	}
	var sub SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	return sub
}

func getStatus(t *testing.T, base, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitState polls the job until it reaches a terminal state.
func waitState(t *testing.T, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, base, id)
		switch st.State {
		case StateDone, StateFailed, StateCancelled:
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in time", id)
	return JobStatus{}
}

func getArtifact(t *testing.T, base, id, name string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/artifacts/" + name)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET artifact %s = %d: %s", name, resp.StatusCode, blob)
	}
	return blob
}

// metricValue scrapes one un-labelled series from /metrics.
func metricValue(t *testing.T, base, name string) uint64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, name+" ") {
			v, err := strconv.ParseUint(strings.TrimPrefix(line, name+" "), 10, 64)
			if err != nil {
				t.Fatalf("parsing metric line %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}

// TestCacheHitServesByteIdenticalArtifactsWithZeroRuns is the acceptance
// path: two identical submissions, the second served from cache —
// byte-identical artifacts, no second experiment run (the jobs-completed
// counter stays at 1).
func TestCacheHitServesByteIdenticalArtifactsWithZeroRuns(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2})

	first := postJob(t, ts.URL, testSpec(1))
	if first.Cached {
		t.Fatal("first submission reported cached: true")
	}
	st := waitState(t, ts.URL, first.ID)
	if st.State != StateDone {
		t.Fatalf("first job ended %s: %s", st.State, st.Error)
	}
	wantArtifacts := []string{"fullreport", "dual-stack.pcap", "funnel.csv", "telemetry.prom", "telemetry.json"}
	for _, name := range wantArtifacts {
		found := false
		for _, have := range st.Artifacts {
			if have == name {
				found = true
			}
		}
		if !found {
			t.Errorf("done job missing artifact %q (have %v)", name, st.Artifacts)
		}
	}

	// The second identical submission (different JSON field order) must
	// be a cache hit, already done.
	second := postJob(t, ts.URL, `{"devices":["Apple TV","Wyze Cam"],"seed":1,"kind":"study"}`)
	if !second.Cached {
		t.Fatal("second identical submission not served from cache")
	}
	if second.State != StateDone {
		t.Fatalf("cached job born %s, want done", second.State)
	}
	if second.ID == first.ID {
		t.Error("cache hit reused the first job ID; wanted a fresh record")
	}

	for _, name := range st.Artifacts {
		a := getArtifact(t, ts.URL, first.ID, name)
		b := getArtifact(t, ts.URL, second.ID, name)
		if !bytes.Equal(a, b) {
			t.Errorf("artifact %q differs between the run and its cache hit (%d vs %d bytes)", name, len(a), len(b))
		}
		if len(a) == 0 {
			t.Errorf("artifact %q is empty", name)
		}
	}

	if got := metricValue(t, ts.URL, "v6lab_server_jobs_completed_total"); got != 1 {
		t.Errorf("jobs_completed_total = %d after a cache hit, want 1 (the hit must run nothing)", got)
	}
	if got := metricValue(t, ts.URL, "v6lab_server_cache_hits_total"); got != 1 {
		t.Errorf("cache_hits_total = %d, want 1", got)
	}
	if got := metricValue(t, ts.URL, "v6lab_server_jobs_accepted_total"); got != 2 {
		t.Errorf("jobs_accepted_total = %d, want 2", got)
	}
}

// TestWorkerCountSharesCacheEntry: submissions differing only in the
// engine worker count are the same experiment (byte-identical output), so
// the second is a cache hit.
func TestWorkerCountSharesCacheEntry(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	first := postJob(t, ts.URL, `{"kind":"study","devices":["Wyze Cam","Apple TV"],"workers":1}`)
	waitState(t, ts.URL, first.ID)
	second := postJob(t, ts.URL, `{"kind":"study","devices":["Wyze Cam","Apple TV"],"workers":4}`)
	if !second.Cached {
		t.Error("worker-count change missed the cache; workers must not split the key")
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	cases := []struct {
		body string
		want int
	}{
		{`{"kind":"espresso"}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
		{`{"kind":"study","devices":["Quantum Toaster"]}`, http.StatusBadRequest},
		{`{"kind":"study","surprise":1}`, http.StatusBadRequest}, // unknown field
		{`{"kind":"fleet"}`, http.StatusBadRequest},              // no homes
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("POST %q = %d, want %d", c.body, resp.StatusCode, c.want)
		}
	}
}

func TestUnknownJobAndArtifact(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	for _, path := range []string{"/v1/jobs/job-999999", "/v1/jobs/job-999999/events", "/v1/jobs/job-999999/artifacts/fullreport"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
	sub := postJob(t, ts.URL, testSpec(1))
	waitState(t, ts.URL, sub.ID)
	resp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/artifacts/no-such-artifact")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown artifact = %d, want 404", resp.StatusCode)
	}
}

// TestCoalescingAttachesToInflightJob: with the single worker pinned by a
// filler job, two submissions of the same new spec share one job record.
func TestCoalescingAttachesToInflightJob(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, QueueDepth: 8})
	// The filler is a full-registry study (around a second of work), so
	// the worker stays pinned while the next submissions land even on a
	// one-core machine.
	filler := postJob(t, ts.URL, `{"kind":"study","seed":100}`)
	target := postJob(t, ts.URL, testSpec(101))
	dup := postJob(t, ts.URL, testSpec(101))
	if !dup.Coalesced {
		t.Errorf("duplicate of a queued job not coalesced: %+v", dup)
	}
	if dup.ID != target.ID {
		t.Errorf("coalesced submission got job %s, want the in-flight %s", dup.ID, target.ID)
	}
	if dup.Cached {
		t.Error("coalesced job reported cached: true before any run completed")
	}
	waitState(t, ts.URL, filler.ID)
	if st := waitState(t, ts.URL, target.ID); st.State != StateDone {
		t.Fatalf("target ended %s: %s", st.State, st.Error)
	}
}

// TestQueueFullRejectsWith503: the queue bounds the backlog; overflow is
// an explicit 503, not an unbounded pileup.
func TestQueueFullRejectsWith503(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1, QueueDepth: 1})
	// A full-registry study pins the worker long enough for the two
	// follow-up submissions to land while it runs.
	running := postJob(t, ts.URL, `{"kind":"study","seed":200}`)
	// Wait until the worker picked the filler up, so the queue is empty.
	waitRunning(t, s, running.ID)
	postJob(t, ts.URL, testSpec(201)) // fills the one queue slot
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(testSpec(202)))
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow submission = %d (%s), want 503", resp.StatusCode, blob)
	}
	if !strings.Contains(string(blob), "queue full") {
		t.Errorf("503 body %q does not name the queue", blob)
	}
}

// waitRunning spins until the job leaves the queued state.
func waitRunning(t *testing.T, s *Server, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		job, ok := s.lookupJob(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if st := job.Status().State; st != StateQueued {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never started", id)
}

// TestEventsStreamReplaysAndTerminates: the SSE stream carries one event
// per completed experiment plus a terminal job event, and a subscriber
// attaching after completion replays the identical history.
func TestEventsStreamReplaysAndTerminates(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	sub := postJob(t, ts.URL, testSpec(1))
	waitState(t, ts.URL, sub.ID)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q, want text/event-stream", ct)
	}
	body, err := io.ReadAll(resp.Body) // the stream ends once the job is done
	if err != nil {
		t.Fatal(err)
	}
	var scopes []string
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev eventJSON
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE line %q: %v", line, err)
		}
		scopes = append(scopes, ev.Scope)
	}
	if len(scopes) < 7 {
		t.Fatalf("got %d events, want at least 6 experiments + 1 job event:\n%s", len(scopes), body)
	}
	if scopes[len(scopes)-1] != "job" {
		t.Errorf("last event scope = %q, want the terminal job event", scopes[len(scopes)-1])
	}
	sawExperiment := false
	for _, sc := range scopes {
		if sc == "experiment" {
			sawExperiment = true
		}
	}
	if !sawExperiment {
		t.Error("no experiment-scope events in the stream")
	}
}

// TestShutdownDrainsInflightAndCancelsQueued: in-flight work completes,
// the backlog is cancelled, and later submissions are rejected.
func TestShutdownDrainsInflightAndCancelsQueued(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// The in-flight job is a full-registry study so shutdown reliably
	// lands while it runs.
	inflight := postJob(t, ts.URL, `{"kind":"study","seed":300}`)
	waitRunning(t, s, inflight.ID)
	queued := postJob(t, ts.URL, testSpec(301))

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
	if st := getStatus(t, ts.URL, inflight.ID); st.State != StateDone {
		t.Errorf("in-flight job ended %s, want done (drain must finish it)", st.State)
	}
	st := getStatus(t, ts.URL, queued.ID)
	if st.State != StateCancelled {
		t.Errorf("queued job ended %s, want cancelled", st.State)
	}
	if len(st.Artifacts) != 0 {
		t.Errorf("cancelled job has artifacts %v; cancellation must leak nothing", st.Artifacts)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(testSpec(302)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submission after shutdown = %d, want 503", resp.StatusCode)
	}
}

// TestShutdownDeadlineCancelsInflight: an expired drain deadline cuts the
// running job loose via context; it ends cancelled with no artifacts.
func TestShutdownDeadlineCancelsInflight(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// The full-registry study takes long enough that shutdown's expired
	// deadline always lands mid-run.
	inflight := postJob(t, ts.URL, `{"kind":"study","seed":400}`)
	waitRunning(t, s, inflight.ID)

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // deadline already expired: no grace
	if err := s.Shutdown(ctx); err != context.Canceled {
		t.Fatalf("Shutdown = %v, want context.Canceled", err)
	}
	st := getStatus(t, ts.URL, inflight.ID)
	if st.State != StateCancelled {
		t.Errorf("in-flight job ended %s, want cancelled", st.State)
	}
	if len(st.Artifacts) != 0 {
		t.Errorf("cancelled job has artifacts %v", st.Artifacts)
	}
	if got := metricValue(t, ts.URL, "v6lab_server_jobs_completed_total"); got != 0 {
		t.Errorf("jobs_completed_total = %d after cancellation, want 0", got)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || string(blob) != "ok\n" {
		t.Errorf("healthz = %d %q", resp.StatusCode, blob)
	}
}

// TestFleetAndResilienceKinds: the other job kinds produce their reports
// end to end, and their cache keys behave.
func TestFleetAndResilienceKinds(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2})
	fleetJob := postJob(t, ts.URL, `{"kind":"fleet","fleet_homes":3,"workers":2}`)
	resJob := postJob(t, ts.URL, `{"kind":"resilience","devices":["Wyze Cam","Apple TV"]}`)
	for _, sub := range []SubmitResponse{fleetJob, resJob} {
		st := waitState(t, ts.URL, sub.ID)
		if st.State != StateDone {
			t.Fatalf("job %s (%s) ended %s: %s", sub.ID, st.Kind, st.State, st.Error)
		}
		rep := getArtifact(t, ts.URL, sub.ID, "fullreport")
		if len(rep) == 0 {
			t.Errorf("%s fullreport is empty", st.Kind)
		}
	}
	// A worker-count-only change to the fleet spec is a cache hit.
	dup := postJob(t, ts.URL, `{"kind":"fleet","fleet_homes":3,"workers":8}`)
	if !dup.Cached {
		t.Error("fleet resubmission with different workers missed the cache")
	}
}
