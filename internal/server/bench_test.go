package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// benchSeed hands out globally unique seeds so cold-cache iterations
// never collide across b.N escalations or sub-benchmarks.
var benchSeed atomic.Uint64

func init() { benchSeed.Store(1 << 20) }

// BenchmarkServerThroughput measures end-to-end studies/sec through the
// HTTP API at 1, 4, and 16 concurrent tenants, cold cache (every request
// a unique seed, so every request runs the study) versus warm cache
// (every request identical, so every request is a hit). ns/op is the
// wall time per completed study; the warm/cold ratio is the caching
// payoff recorded in BENCH_study.json.
func BenchmarkServerThroughput(b *testing.B) {
	for _, tenants := range []int{1, 4, 16} {
		for _, mode := range []string{"cold", "warm"} {
			b.Run(fmt.Sprintf("tenants=%d/%s", tenants, mode), func(b *testing.B) {
				benchThroughput(b, tenants, mode == "warm")
			})
		}
	}
}

func benchThroughput(b *testing.B, tenants int, warm bool) {
	s := New(Config{
		Workers:      runtime.GOMAXPROCS(0),
		QueueDepth:   2 * tenants,
		CacheEntries: 1024,
		JobHistory:   2 * (b.N + tenants + 4),
	})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		s.Shutdown(ctx)
		ts.Close()
	}()

	warmSpec := fmt.Sprintf(`{"kind":"study","seed":%d,"devices":["Wyze Cam","Apple TV"]}`, benchSeed.Add(1))
	if warm {
		// Prime the cache once, outside the timer: every measured
		// request is then a hit.
		if err := benchOneJob(ts.URL, warmSpec); err != nil {
			b.Fatal(err)
		}
	}

	b.ResetTimer()
	var wg sync.WaitGroup
	var next atomic.Int64
	errs := make(chan error, tenants)
	for t := 0; t < tenants; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if next.Add(1) > int64(b.N) {
					return
				}
				spec := warmSpec
				if !warm {
					spec = fmt.Sprintf(`{"kind":"study","seed":%d,"devices":["Wyze Cam","Apple TV"]}`, benchSeed.Add(1))
				}
				if err := benchOneJob(ts.URL, spec); err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	select {
	case err := <-errs:
		b.Fatal(err)
	default:
	}
}

// benchOneJob submits a spec and waits for a terminal state, polling
// status for queued/running jobs; cache hits return done immediately.
func benchOneJob(base, spec string) error {
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		return err
	}
	var sub SubmitResponse
	err = json.NewDecoder(resp.Body).Decode(&sub)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if sub.ID == "" {
		return fmt.Errorf("submission rejected (state %q)", sub.State)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if sub.State == StateDone {
			return nil
		}
		switch sub.State {
		case StateFailed, StateCancelled:
			return fmt.Errorf("job %s ended %s", sub.ID, sub.State)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s did not finish in time", sub.ID)
		}
		time.Sleep(2 * time.Millisecond)
		st, err := benchStatus(base, sub.ID)
		if err != nil {
			return err
		}
		sub.State = st.State
	}
}

func benchStatus(base, id string) (JobStatus, error) {
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		return JobStatus{}, err
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return JobStatus{}, err
	}
	io.Copy(io.Discard, resp.Body)
	return st, nil
}
