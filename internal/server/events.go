package server

import (
	"sync"

	"v6lab/internal/telemetry"
)

// broadcaster fans a job's progress events out to any number of SSE
// subscribers. Events are buffered for the job's lifetime so a
// subscriber that attaches late replays the full history first — the
// stream a client sees is always complete, just possibly time-shifted.
//
// It implements telemetry.Sink, so it plugs straight into
// v6lab.WithProgress and receives one event per completed experiment,
// fleet home, firewall policy, and resilience profile.
type broadcaster struct {
	mu      sync.Mutex
	history []telemetry.Event
	subs    map[chan telemetry.Event]struct{}
	closed  bool
}

func newBroadcaster() *broadcaster {
	return &broadcaster{subs: make(map[chan telemetry.Event]struct{})}
}

// Emit records the event and forwards it to every live subscriber.
// Subscriber channels are buffered; a subscriber that stops draining
// loses events rather than blocking the worker that runs the job.
func (b *broadcaster) Emit(ev telemetry.Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.history = append(b.history, ev)
	for ch := range b.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// Close marks the stream complete: subscribers' channels are closed after
// the last event, and future Subscribe calls replay history and report
// done immediately.
func (b *broadcaster) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for ch := range b.subs {
		close(ch)
		delete(b.subs, ch)
	}
}

// Subscribe returns the events emitted so far and, when the stream is
// still live, a channel carrying the rest (closed when the job finishes).
// done is true when the stream has already completed: the replay is the
// whole story and ch is nil.
func (b *broadcaster) Subscribe() (replay []telemetry.Event, ch chan telemetry.Event, done bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	replay = append([]telemetry.Event(nil), b.history...)
	if b.closed {
		return replay, nil, true
	}
	ch = make(chan telemetry.Event, 256)
	b.subs[ch] = struct{}{}
	return replay, ch, false
}

// Unsubscribe detaches a live subscriber (a no-op after Close).
func (b *broadcaster) Unsubscribe(ch chan telemetry.Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.subs[ch]; ok {
		delete(b.subs, ch)
		close(ch)
	}
}
