// Package server turns the v6lab library into a long-lived multi-tenant
// study service: an HTTP/JSON API that validates job specs, canonicalizes
// them into a stable options hash, and either serves results instantly
// from an LRU cache keyed by (seed, options-hash) or runs them on a shared
// bounded worker pool.
//
// The cache is sound because runs are byte-deterministic: the same seed
// and canonical options produce byte-identical reports, pcaps, CSV series,
// and telemetry snapshots at any worker count (asserted by the byte-identity
// tests in the root package), so a cached result is indistinguishable from
// a fresh run.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"v6lab"
	"v6lab/internal/device"
	"v6lab/internal/faults"
	"v6lab/internal/firewall"
)

// Job kinds accepted by POST /v1/jobs.
const (
	KindStudy      = "study"               // the six Table 2 connectivity experiments + analysis
	KindFirewall   = "firewall-comparison" // connectivity + the WAN-vantage policy comparison
	KindFleet      = "fleet"               // a population of independent homes
	KindResilience = "resilience"          // the impairment-profile grid
	KindAdversary  = "adversary"           // attacker's view of a fleet: discovery, campaign, worm
	KindTimeline   = "timeline"            // long-horizon event-scheduled population run
)

// Kinds lists the accepted job kinds.
var Kinds = []string{KindStudy, KindFirewall, KindFleet, KindResilience, KindAdversary, KindTimeline}

// JobSpec is the wire format of one study request. The zero value of
// every optional field selects the library default, so {"kind":"study"}
// is a complete specification of the paper's single-home study.
//
// Workers is deliberately excluded from the options hash: output is
// byte-identical at any worker count, so two requests differing only in
// Workers are the same experiment and share a cache entry.
type JobSpec struct {
	// Kind selects the study: study | firewall-comparison | fleet |
	// resilience.
	Kind string `json:"kind"`
	// Seed is the impairment/derivation seed (0 means the default 1).
	// It is the first half of the cache key.
	Seed uint64 `json:"seed,omitempty"`
	// Devices restricts the testbed to the named registry devices; empty
	// means the full 93-device registry. Order does not matter: the lab
	// keeps registry order regardless, so canonicalization sorts.
	Devices []string `json:"devices,omitempty"`
	// Fault names an impairment profile (clean | lossy-wifi |
	// clamped-tunnel | flaky-dnsmasq) applied to the whole run; empty
	// means the perfect network.
	Fault string `json:"fault,omitempty"`
	// Policies names the inbound-IPv6 firewall policies for
	// firewall-comparison jobs; empty means all three. Order matters
	// (it is report order), so canonicalization preserves it.
	Policies []string `json:"policies,omitempty"`
	// FleetHomes is the population size for fleet and adversary jobs.
	FleetHomes int `json:"fleet_homes,omitempty"`
	// FleetSeed derives the fleet population (0 means the default 1).
	FleetSeed uint64 `json:"fleet_seed,omitempty"`
	// CampaignSeed drives the adversary's probe ordering and worm draws
	// (0 means the default 1). Adversary jobs only.
	CampaignSeed uint64 `json:"campaign_seed,omitempty"`
	// Horizon is the simulated duration for timeline jobs ("7d", "2w",
	// "36h"). Required for kind timeline, rejected elsewhere; equivalent
	// spellings ("7d", "168h", "1w") canonicalize — and therefore hash —
	// identically.
	Horizon string `json:"horizon,omitempty"`
	// MaxFramesPerRun bounds each experiment's frame deliveries
	// (0 keeps the library default).
	MaxFramesPerRun int `json:"max_frames_per_run,omitempty"`
	// Workers sizes the engine's worker pool (0 means serial for the
	// single-home engines, GOMAXPROCS for fleets). Not part of the
	// options hash: it changes wall time, never bytes.
	Workers int `json:"workers,omitempty"`
}

// Validate checks the spec against the registry and the known kinds,
// profiles, and policies. It does not mutate the spec; Canonicalize does.
func (s JobSpec) Validate() error {
	switch s.Kind {
	case KindStudy, KindFirewall, KindFleet, KindResilience, KindAdversary, KindTimeline:
	default:
		return fmt.Errorf("unknown kind %q (want %s)", s.Kind, strings.Join(Kinds, "|"))
	}
	for _, n := range s.Devices {
		if device.Find(device.Registry(), n) == nil {
			return fmt.Errorf("unknown device %q (see the registry for names)", n)
		}
	}
	if s.Fault != "" {
		if _, err := faults.ByName(s.Fault); err != nil {
			return err
		}
	}
	if len(s.Policies) > 0 && s.Kind != KindFirewall {
		return fmt.Errorf("policies only apply to kind %q", KindFirewall)
	}
	for _, p := range s.Policies {
		if _, err := firewall.ByName(p); err != nil {
			return err
		}
	}
	if s.Kind == KindFleet || s.Kind == KindAdversary || s.Kind == KindTimeline {
		if s.FleetHomes <= 0 {
			return fmt.Errorf("kind %q wants fleet_homes > 0, got %d", s.Kind, s.FleetHomes)
		}
	} else if s.FleetHomes != 0 || s.FleetSeed != 0 {
		return fmt.Errorf("fleet_homes and fleet_seed only apply to kinds %q, %q, and %q", KindFleet, KindAdversary, KindTimeline)
	}
	if s.CampaignSeed != 0 && s.Kind != KindAdversary {
		return fmt.Errorf("campaign_seed only applies to kind %q", KindAdversary)
	}
	if s.Kind == KindTimeline {
		if _, err := v6lab.ParseHorizon(s.Horizon); err != nil {
			return fmt.Errorf("kind %q wants a positive horizon (e.g. 7d, 2w, 36h): %w", KindTimeline, err)
		}
	} else if s.Horizon != "" {
		return fmt.Errorf("horizon only applies to kind %q", KindTimeline)
	}
	if s.MaxFramesPerRun < 0 {
		return fmt.Errorf("max_frames_per_run wants a non-negative bound, got %d", s.MaxFramesPerRun)
	}
	if s.Workers < 0 {
		return fmt.Errorf("workers wants a non-negative count, got %d", s.Workers)
	}
	return nil
}

// Canonicalize returns the spec in canonical form: defaults filled in,
// names normalized, devices sorted into registry order, and the empty
// policy list expanded to the three defaults. Two specs describing the
// same experiment canonicalize identically, so they hash identically —
// anything less would silently split the cache.
func (s JobSpec) Canonicalize() JobSpec {
	c := s
	c.Kind = strings.ToLower(strings.TrimSpace(c.Kind))
	if c.Seed == 0 {
		c.Seed = 1
	}
	c.Devices = canonicalDevices(c.Devices)
	c.Fault = strings.ToLower(strings.TrimSpace(c.Fault))
	if c.Fault == "clean" {
		// A clean profile is the perfect network: the same run as no
		// profile at all (asserted by the byte-identity tests).
		c.Fault = ""
	}
	if c.Kind == KindFirewall {
		if len(c.Policies) == 0 {
			c.Policies = []string{"open", "stateful", "pinhole"}
		} else {
			norm := make([]string, len(c.Policies))
			for i, p := range c.Policies {
				norm[i] = canonicalPolicy(p)
			}
			c.Policies = norm
		}
	}
	if (c.Kind == KindFleet || c.Kind == KindAdversary || c.Kind == KindTimeline) && c.FleetSeed == 0 {
		c.FleetSeed = 1
	}
	if c.Kind == KindAdversary && c.CampaignSeed == 0 {
		c.CampaignSeed = 1
	}
	c.Horizon = canonicalHorizon(c.Horizon)
	return c
}

// canonicalHorizon folds equivalent horizon spellings ("7d", "168h",
// "1w") onto one form so they share a cache entry. Invalid input is kept
// trimmed and lowercased — Canonicalize stays total; Validate rejects it.
func canonicalHorizon(s string) string {
	s = strings.ToLower(strings.TrimSpace(s))
	if s == "" {
		return ""
	}
	h, err := v6lab.ParseHorizon(s)
	if err != nil {
		return s
	}
	return h.String()
}

// canonicalDevices sorts names into registry order and drops duplicates.
// The lab preserves registry order regardless of the order given, so two
// permutations of the same set are the same experiment. An empty or
// full-registry list canonicalizes to nil (the default testbed).
func canonicalDevices(names []string) []string {
	if len(names) == 0 {
		return nil
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var out []string
	for _, p := range device.Registry() {
		if want[p.Name] {
			out = append(out, p.Name)
			delete(want, p.Name)
		}
	}
	// Unknown names (rejected by Validate) are kept, sorted, so that
	// Canonicalize stays total and deterministic even on invalid input.
	if len(want) > 0 {
		var rest []string
		for n := range want {
			rest = append(rest, n)
		}
		sort.Strings(rest)
		out = append(out, rest...)
	}
	if len(out) == len(device.Registry()) {
		return nil
	}
	return out
}

// canonicalPolicy folds firewall.ByName's aliases onto one spelling.
func canonicalPolicy(name string) string {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "stateful", "stateful-default-deny", "deny":
		return "stateful"
	case "open":
		return "open"
	case "pinhole":
		return "pinhole"
	}
	return strings.ToLower(strings.TrimSpace(name))
}

// hashedSpec is the canonical byte layout fed to the options hash: every
// output-affecting field except Seed (the cache key's other half), in
// declaration order, with no omitempty so absent and zero fields encode
// identically. Changing this struct changes every hash — the golden-hash
// test exists to make that loud.
type hashedSpec struct {
	Kind            string   `json:"kind"`
	Devices         []string `json:"devices"`
	Fault           string   `json:"fault"`
	Policies        []string `json:"policies"`
	FleetHomes      int      `json:"fleet_homes"`
	FleetSeed       uint64   `json:"fleet_seed"`
	CampaignSeed    uint64   `json:"campaign_seed"`
	Horizon         string   `json:"horizon"`
	MaxFramesPerRun int      `json:"max_frames_per_run"`
}

// OptionsHash returns the hex SHA-256 of the canonical options — every
// field that affects output bytes except the seed. Workers is excluded
// (byte-identical output at any worker count); Seed is excluded because
// it is the explicit first half of the cache key.
func (s JobSpec) OptionsHash() string {
	c := s.Canonicalize()
	blob, err := json.Marshal(hashedSpec{
		Kind:            c.Kind,
		Devices:         c.Devices,
		Fault:           c.Fault,
		Policies:        c.Policies,
		FleetHomes:      c.FleetHomes,
		FleetSeed:       c.FleetSeed,
		CampaignSeed:    c.CampaignSeed,
		Horizon:         c.Horizon,
		MaxFramesPerRun: c.MaxFramesPerRun,
	})
	if err != nil {
		// Marshalling a struct of strings and ints cannot fail.
		panic("server: marshalling canonical spec: " + err.Error())
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}

// Key is the result-cache key: the seed plus the hash of every other
// output-affecting option. Byte-determinism in exactly (seed, options)
// is what makes this key sound — see DESIGN.md.
type Key struct {
	Seed uint64 `json:"seed"`
	Hash string `json:"options_hash"`
}

// CacheKey returns the (seed, options-hash) key of the canonical spec.
func (s JobSpec) CacheKey() Key {
	c := s.Canonicalize()
	return Key{Seed: c.Seed, Hash: c.OptionsHash()}
}

// String renders the key for logs and job status.
func (k Key) String() string { return fmt.Sprintf("%d/%s", k.Seed, k.Hash[:12]) }
