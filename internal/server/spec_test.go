package server

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"v6lab/internal/device"
)

// goldenStudyHash is the recorded options hash of the canonical default
// study spec ({"kind":"study"}). It is deliberately hardcoded: any change
// to JobSpec's hashed fields, their canonicalization, or the hashedSpec
// layout changes every hash, silently splitting the result cache across
// deployments — this test makes that failure loud instead.
const goldenStudyHash = "3f187b0dd9130eb5e52e31fe326a2d814d6fbe7a29feacc9acb69750ed2dcb43"

func TestOptionsHashGolden(t *testing.T) {
	got := JobSpec{Kind: KindStudy}.OptionsHash()
	if got != goldenStudyHash {
		t.Errorf("default study options hash changed:\n got %s\nwant %s\n"+
			"If the spec layout changed intentionally, update the golden hash — and "+
			"know that every deployed cache key just changed with it.", got, goldenStudyHash)
	}
}

// TestCanonicalJSONRoundTrip: a canonical spec survives a JSON
// round-trip unchanged — encode, decode, re-canonicalize, same struct
// and same hash.
func TestCanonicalJSONRoundTrip(t *testing.T) {
	specs := []JobSpec{
		{Kind: KindStudy},
		{Kind: KindStudy, Seed: 7, Devices: []string{"Apple TV", "Wyze Cam"}, Fault: "lossy-wifi"},
		{Kind: KindFirewall, Policies: []string{"deny", "open"}},
		{Kind: KindFleet, FleetHomes: 20, FleetSeed: 3, Workers: 8},
		{Kind: KindResilience, Seed: 9, MaxFramesPerRun: 500},
		{Kind: KindAdversary, FleetHomes: 12, CampaignSeed: 5},
	}
	for _, spec := range specs {
		c := spec.Canonicalize()
		blob, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		var back JobSpec
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatal(err)
		}
		if got := back.Canonicalize(); !reflect.DeepEqual(got, c) {
			t.Errorf("canonical spec changed across a JSON round-trip:\nbefore %+v\nafter  %+v", c, got)
		}
		if got, want := back.CacheKey(), spec.CacheKey(); got != want {
			t.Errorf("cache key changed across a JSON round-trip: %v vs %v", got, want)
		}
	}
}

// TestOptionsHashFieldOrderIndependence: the same experiment described
// with different JSON field order and different device order hashes
// identically.
func TestOptionsHashFieldOrderIndependence(t *testing.T) {
	docs := []string{
		`{"kind":"study","seed":5,"devices":["Wyze Cam","Apple TV"],"fault":"lossy-wifi"}`,
		`{"fault":"lossy-wifi","devices":["Apple TV","Wyze Cam"],"seed":5,"kind":"study"}`,
	}
	var keys []Key
	for _, doc := range docs {
		var spec JobSpec
		if err := json.Unmarshal([]byte(doc), &spec); err != nil {
			t.Fatal(err)
		}
		if err := spec.Validate(); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, spec.CacheKey())
	}
	if keys[0] != keys[1] {
		t.Errorf("field/device order split the cache key: %v vs %v", keys[0], keys[1])
	}
}

// TestWorkersExcludedFromHash: worker count changes wall time, never
// bytes, so it must not split the cache.
func TestWorkersExcludedFromHash(t *testing.T) {
	a := JobSpec{Kind: KindStudy, Workers: 0}.CacheKey()
	b := JobSpec{Kind: KindStudy, Workers: 8}.CacheKey()
	if a != b {
		t.Errorf("workers split the cache key: %v vs %v", a, b)
	}
}

// TestSeedSplitsKeyNotHash: the seed is the explicit first half of the
// key, not part of the options hash.
func TestSeedSplitsKeyNotHash(t *testing.T) {
	a := JobSpec{Kind: KindResilience, Seed: 1}.CacheKey()
	b := JobSpec{Kind: KindResilience, Seed: 2}.CacheKey()
	if a.Hash != b.Hash {
		t.Errorf("seed leaked into the options hash: %s vs %s", a.Hash, b.Hash)
	}
	if a == b {
		t.Error("different seeds produced the same cache key")
	}
}

func TestCanonicalizeDefaults(t *testing.T) {
	c := JobSpec{Kind: " Study "}.Canonicalize()
	if c.Kind != KindStudy || c.Seed != 1 {
		t.Errorf("defaults not applied: %+v", c)
	}
	// A clean fault profile is the same run as no profile at all.
	if got := (JobSpec{Kind: KindStudy, Fault: "clean"}).CacheKey(); got != (JobSpec{Kind: KindStudy}).CacheKey() {
		t.Error("fault=clean split the cache key from the no-fault spec")
	}
	// Policy aliases fold onto one spelling, and the empty list expands
	// to the three defaults in report order.
	alias := JobSpec{Kind: KindFirewall, Policies: []string{"open", "deny", "pinhole"}}.CacheKey()
	expanded := JobSpec{Kind: KindFirewall}.CacheKey()
	if alias != expanded {
		t.Errorf("policy alias/expansion split the cache key: %v vs %v", alias, expanded)
	}
	// Policy *order* is report order, so it must stay significant.
	reordered := JobSpec{Kind: KindFirewall, Policies: []string{"pinhole", "stateful", "open"}}.CacheKey()
	if reordered == expanded {
		t.Error("policy order must change the key (it changes report bytes)")
	}
	// Fleet seeds default only for fleet jobs.
	if c := (JobSpec{Kind: KindFleet, FleetHomes: 5}).Canonicalize(); c.FleetSeed != 1 {
		t.Errorf("fleet seed default not applied: %+v", c)
	}
	// Adversary jobs default both the fleet seed and the campaign seed.
	if c := (JobSpec{Kind: KindAdversary, FleetHomes: 5}).Canonicalize(); c.FleetSeed != 1 || c.CampaignSeed != 1 {
		t.Errorf("adversary seed defaults not applied: %+v", c)
	}
	// The campaign seed is output-affecting, so it must split the key.
	s3 := JobSpec{Kind: KindAdversary, FleetHomes: 5, CampaignSeed: 3}.CacheKey()
	s1 := JobSpec{Kind: KindAdversary, FleetHomes: 5}.CacheKey()
	if s3 == s1 {
		t.Error("campaign seed must change the cache key (it changes report bytes)")
	}
}

func TestCanonicalDevicesRegistryOrderAndDedup(t *testing.T) {
	reg := device.Registry()
	// A permutation with a duplicate canonicalizes to registry order,
	// deduplicated.
	names := []string{reg[3].Name, reg[0].Name, reg[3].Name}
	got := canonicalDevices(names)
	want := []string{reg[0].Name, reg[3].Name}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("canonicalDevices(%v) = %v, want %v", names, got, want)
	}
	// Listing the whole registry is the default testbed: nil.
	var all []string
	for _, p := range reg {
		all = append(all, p.Name)
	}
	if got := canonicalDevices(all); got != nil {
		t.Errorf("full-registry device list should canonicalize to nil, got %d names", len(got))
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		spec JobSpec
		want string
	}{
		{JobSpec{Kind: "espresso"}, "unknown kind"},
		{JobSpec{Kind: KindStudy, Devices: []string{"Quantum Toaster"}}, "unknown device"},
		{JobSpec{Kind: KindStudy, Fault: "solar-flare"}, "unknown profile"},
		{JobSpec{Kind: KindStudy, Policies: []string{"open"}}, "policies only apply"},
		{JobSpec{Kind: KindFirewall, Policies: []string{"moat"}}, "unknown policy"},
		{JobSpec{Kind: KindFleet}, "fleet_homes > 0"},
		{JobSpec{Kind: KindStudy, FleetHomes: 5}, "only apply to kind"},
		{JobSpec{Kind: KindStudy, MaxFramesPerRun: -1}, "non-negative"},
		{JobSpec{Kind: KindStudy, Workers: -2}, "non-negative"},
		{JobSpec{Kind: KindAdversary}, "fleet_homes > 0"},
		{JobSpec{Kind: KindFleet, FleetHomes: 5, CampaignSeed: 2}, "campaign_seed only applies"},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if err == nil {
			t.Errorf("Validate(%+v) = nil, want error containing %q", c.spec, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Validate(%+v) = %q, want it to contain %q", c.spec, err, c.want)
		}
	}
	valid := []JobSpec{
		{Kind: KindStudy},
		{Kind: KindFirewall, Policies: []string{"stateful-default-deny"}},
		{Kind: KindFleet, FleetHomes: 10, FleetSeed: 2},
		{Kind: KindResilience, Fault: "clamped-tunnel"},
		{Kind: KindAdversary, FleetHomes: 8, CampaignSeed: 4},
	}
	for _, spec := range valid {
		if err := spec.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", spec, err)
		}
	}
}
