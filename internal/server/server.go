package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"v6lab/internal/telemetry"
)

// Config sizes a Server. The zero value of every field selects a default,
// so Config{} is a complete configuration.
type Config struct {
	// Workers bounds the shared job pool; 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the backlog of accepted-but-not-started jobs;
	// a full queue rejects submissions with 503. 0 means 64.
	QueueDepth int
	// CacheEntries bounds the LRU result cache, in completed studies;
	// 0 means 64.
	CacheEntries int
	// JobHistory bounds how many terminal job records stay addressable
	// by ID; the oldest are forgotten beyond it. Results themselves live
	// (and are evicted) in the cache, so forgetting a record only breaks
	// its /v1/jobs/{id} lookups. 0 means 1024.
	JobHistory int
	// Log, when non-nil, receives one line per job transition.
	Log io.Writer
}

// Server is the long-lived study service. Create one with New, mount
// Handler on an http.Server, and stop it with Shutdown.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	cache *resultCache
	queue chan *Job

	// Server-level metrics, exposed on /metrics alongside nothing else:
	// per-job telemetry is deterministic and therefore an artifact, not
	// a live series.
	reg           *telemetry.Registry
	jobsAccepted  *telemetry.Counter
	jobsCompleted *telemetry.Counter
	jobsFailed    *telemetry.Counter
	jobsCancelled *telemetry.Counter
	cacheHits     *telemetry.Counter
	queueDepth    *telemetry.Gauge
	jobLatencyMS  *telemetry.Histogram

	baseCtx context.Context
	cancel  context.CancelFunc
	workers sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job
	inflight map[Key]*Job // queued or running job per key, for coalescing
	terminal []string     // terminal job IDs, oldest first, for pruning
	nextID   int
	draining bool
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 64
	}
	if cfg.JobHistory <= 0 {
		cfg.JobHistory = 1024
	}
	ctx, cancel := context.WithCancel(context.Background())
	reg := telemetry.NewRegistry()
	s := &Server{
		cfg:      cfg,
		mux:      http.NewServeMux(),
		cache:    newResultCache(cfg.CacheEntries),
		queue:    make(chan *Job, cfg.QueueDepth),
		reg:      reg,
		baseCtx:  ctx,
		cancel:   cancel,
		jobs:     make(map[string]*Job),
		inflight: make(map[Key]*Job),
	}
	s.jobsAccepted = reg.Counter("server", "jobs_accepted_total", "Job submissions accepted (including cache hits and coalesced duplicates).")
	s.jobsCompleted = reg.Counter("server", "jobs_completed_total", "Jobs that actually ran an experiment to completion. Cache hits do not count.")
	s.jobsFailed = reg.Counter("server", "jobs_failed_total", "Jobs that ended in an error.")
	s.jobsCancelled = reg.Counter("server", "jobs_cancelled_total", "Jobs cancelled by shutdown.")
	s.cacheHits = reg.Counter("server", "cache_hits_total", "Submissions served instantly from the result cache.")
	s.queueDepth = reg.Gauge("server", "queue_depth", "Accepted jobs waiting for a worker.")
	s.jobLatencyMS = reg.Histogram("server", "job_latency_ms", "Wall-clock latency of completed experiment runs, in milliseconds.",
		[]uint64{1, 5, 10, 50, 100, 500, 1000, 5000, 10000, 60000})

	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/artifacts/{name}", s.handleArtifact)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)

	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.workerLoop()
	}
	return s
}

// Handler returns the HTTP handler serving the API.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown drains the server: new submissions are rejected, queued jobs
// are cancelled, and in-flight jobs run to completion until ctx's
// deadline, after which they are cancelled via context — RunContext
// leaves no partial results, so a cancelled job stores no artifacts.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.mu.Unlock()

	// No submitter can reach the queue once draining is set (handleSubmit
	// checks under mu), so closing it is safe and lets workers exit after
	// the backlog; queued jobs are cancelled rather than run.
	close(s.queue)

	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancel() // cut in-flight jobs loose; they end cancelled
		<-done
		return ctx.Err()
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		fmt.Fprintf(s.cfg.Log, format+"\n", args...)
	}
}

// SubmitResponse is the wire form of POST /v1/jobs.
type SubmitResponse struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	// Cached is true when the result was served from the cache and the
	// job is already done without running anything.
	Cached bool `json:"cached"`
	// Coalesced is true when an identical job was already queued or
	// running and this submission attached to it.
	Coalesced bool `json:"coalesced,omitempty"`
	Key       Key  `json:"key"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "decoding job spec: %v", err)
		return
	}
	if err := spec.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, "invalid job spec: %v", err)
		return
	}
	canonical := spec.Canonicalize()
	key := canonical.CacheKey()
	s.jobsAccepted.Inc()

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if res, ok := s.cache.Get(key); ok {
		job := s.newJobLocked(canonical, key)
		job.Cached = true
		job.mu.Lock()
		job.state = StateDone
		job.result = res
		job.finished = time.Now()
		job.mu.Unlock()
		s.rememberTerminalLocked(job)
		s.mu.Unlock()
		s.cacheHits.Inc()
		job.events.Emit(telemetry.Event{Scope: "job", ID: job.ID, Detail: "served from cache"})
		job.events.Close()
		s.logf("job %s %s key %s: cache hit", job.ID, job.Spec.Kind, key)
		writeJSON(w, http.StatusOK, SubmitResponse{ID: job.ID, State: StateDone, Cached: true, Key: key})
		return
	}
	if running, ok := s.inflight[key]; ok {
		st := running.Status()
		s.mu.Unlock()
		writeJSON(w, http.StatusAccepted, SubmitResponse{ID: running.ID, State: st.State, Coalesced: true, Key: key})
		return
	}
	job := s.newJobLocked(canonical, key)
	s.queueDepth.Add(1)
	select {
	case s.queue <- job:
	default:
		s.queueDepth.Add(-1)
		delete(s.jobs, job.ID)
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "job queue full (%d queued)", s.cfg.QueueDepth)
		return
	}
	s.inflight[key] = job
	s.mu.Unlock()
	s.logf("job %s %s key %s: queued", job.ID, job.Spec.Kind, key)
	writeJSON(w, http.StatusAccepted, SubmitResponse{ID: job.ID, State: StateQueued, Key: key})
}

// newJobLocked allocates a job record; s.mu must be held.
func (s *Server) newJobLocked(spec JobSpec, key Key) *Job {
	s.nextID++
	job := &Job{
		ID:      fmt.Sprintf("job-%06d", s.nextID),
		Key:     key,
		Spec:    spec,
		events:  newBroadcaster(),
		state:   StateQueued,
		created: time.Now(),
	}
	s.jobs[job.ID] = job
	return job
}

// rememberTerminalLocked records a terminal job for bounded retention,
// forgetting the oldest terminal records beyond the history cap. s.mu
// must be held.
func (s *Server) rememberTerminalLocked(job *Job) {
	s.terminal = append(s.terminal, job.ID)
	for len(s.terminal) > s.cfg.JobHistory {
		delete(s.jobs, s.terminal[0])
		s.terminal = s.terminal[1:]
	}
}

func (s *Server) lookupJob(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Server) workerLoop() {
	defer s.workers.Done()
	for job := range s.queue {
		s.queueDepth.Add(-1)
		s.runJob(job)
	}
}

// runJob executes one queued job on a worker. Results only reach the
// cache (and the job record) on full success, so cancellation mid-run
// leaks no partial artifacts.
func (s *Server) runJob(job *Job) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining || s.baseCtx.Err() != nil {
		s.finishJob(job, StateCancelled, "cancelled by shutdown", nil)
		s.jobsCancelled.Inc()
		return
	}

	job.mu.Lock()
	job.state = StateRunning
	job.started = time.Now()
	job.mu.Unlock()
	s.logf("job %s %s key %s: running", job.ID, job.Spec.Kind, job.Key)

	start := time.Now()
	res, err := runSpec(s.baseCtx, job.Spec, job.events)
	switch {
	case err == nil:
		s.cache.Put(job.Key, res)
		s.jobsCompleted.Inc()
		s.jobLatencyMS.Observe(uint64(time.Since(start).Milliseconds()))
		s.finishJob(job, StateDone, "", res)
		s.logf("job %s %s key %s: done in %v", job.ID, job.Spec.Kind, job.Key, time.Since(start).Round(time.Millisecond))
	case s.baseCtx.Err() != nil:
		s.jobsCancelled.Inc()
		s.finishJob(job, StateCancelled, "cancelled by shutdown: "+err.Error(), nil)
	default:
		s.jobsFailed.Inc()
		s.finishJob(job, StateFailed, err.Error(), nil)
		s.logf("job %s %s key %s: failed: %v", job.ID, job.Spec.Kind, job.Key, err)
	}
}

// finishJob moves a job to a terminal state, releases its in-flight slot,
// and completes its event stream.
func (s *Server) finishJob(job *Job, state State, errMsg string, res *Result) {
	job.mu.Lock()
	job.state = state
	job.err = errMsg
	job.result = res
	job.finished = time.Now()
	job.mu.Unlock()

	s.mu.Lock()
	if s.inflight[job.Key] == job {
		delete(s.inflight, job.Key)
	}
	s.rememberTerminalLocked(job)
	s.mu.Unlock()

	detail := string(state)
	if errMsg != "" {
		detail += ": " + errMsg
	}
	job.events.Emit(telemetry.Event{Scope: "job", ID: job.ID, Detail: detail})
	job.events.Close()
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookupJob(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

// eventJSON is the wire form of one SSE progress event.
type eventJSON struct {
	Scope     string `json:"scope"`
	ID        string `json:"id"`
	Detail    string `json:"detail,omitempty"`
	ElapsedMS int64  `json:"elapsed_ms"`
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookupJob(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	flusher, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	writeEvent := func(ev telemetry.Event) bool {
		blob, err := json.Marshal(eventJSON{
			Scope:     ev.Scope,
			ID:        ev.ID,
			Detail:    ev.Detail,
			ElapsedMS: ev.Elapsed.Milliseconds(),
		})
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", blob); err != nil {
			return false
		}
		if canFlush {
			flusher.Flush()
		}
		return true
	}

	replay, live, done := job.events.Subscribe()
	for _, ev := range replay {
		if !writeEvent(ev) {
			if !done {
				job.events.Unsubscribe(live)
			}
			return
		}
	}
	if done {
		return
	}
	defer job.events.Unsubscribe(live)
	for {
		select {
		case ev, ok := <-live:
			if !ok {
				return
			}
			if !writeEvent(ev) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookupJob(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	res := job.Result()
	if res == nil {
		httpError(w, http.StatusConflict, "job %s is %s; artifacts exist only once done", job.ID, job.Status().State)
		return
	}
	name := r.PathValue("name")
	blob, ok := res.Artifacts[name]
	if !ok {
		httpError(w, http.StatusNotFound, "job %s has no artifact %q (have %s)", job.ID, name, strings.Join(res.Names(), ", "))
		return
	}
	w.Header().Set("Content-Type", artifactContentType(name))
	w.Header().Set("Content-Length", fmt.Sprint(len(blob)))
	w.Write(blob)
}

func artifactContentType(name string) string {
	switch {
	case strings.HasSuffix(name, ".pcap"):
		return "application/vnd.tcpdump.pcap"
	case strings.HasSuffix(name, ".json"):
		return "application/json"
	case strings.HasSuffix(name, ".csv"):
		return "text/csv; charset=utf-8"
	default:
		return "text/plain; charset=utf-8"
	}
}

// handleMetrics serves the server-level registry in the Prometheus text
// format, snapshotted at wall-clock now (server metrics are operational,
// not deterministic — the deterministic per-job snapshots are artifacts).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.reg.Snapshot(time.Now())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(snap.Prometheus())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
