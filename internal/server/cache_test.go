package server

import "testing"

func key(seed uint64, hash string) Key { return Key{Seed: seed, Hash: hash} }

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	c.Put(key(1, "a"), &Result{})
	c.Put(key(1, "b"), &Result{})
	// Touch "a" so "b" is the least recently used.
	if _, ok := c.Get(key(1, "a")); !ok {
		t.Fatal("a missing before eviction")
	}
	c.Put(key(1, "c"), &Result{})
	if _, ok := c.Get(key(1, "b")); ok {
		t.Error("b survived eviction; LRU order not honored")
	}
	for _, k := range []Key{key(1, "a"), key(1, "c")} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%v missing after eviction of b", k)
		}
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestCachePutRefreshesExisting(t *testing.T) {
	c := newResultCache(2)
	first := &Result{Artifacts: map[string][]byte{"fullreport": []byte("one")}}
	c.Put(key(1, "a"), first)
	c.Put(key(1, "b"), &Result{})
	// Re-putting "a" must refresh recency, not grow the cache.
	second := &Result{Artifacts: map[string][]byte{"fullreport": []byte("one")}}
	c.Put(key(1, "a"), second)
	if c.Len() != 2 {
		t.Fatalf("Len = %d after refresh, want 2", c.Len())
	}
	c.Put(key(1, "c"), &Result{})
	if _, ok := c.Get(key(1, "a")); !ok {
		t.Error("refreshed entry was evicted before the older one")
	}
	if got, _ := c.Get(key(1, "a")); got != second {
		t.Error("refresh did not replace the stored result")
	}
}

func TestCacheSeedSplitsEntries(t *testing.T) {
	c := newResultCache(4)
	c.Put(key(1, "a"), &Result{})
	if _, ok := c.Get(key(2, "a")); ok {
		t.Error("same hash under a different seed must miss")
	}
}

func TestResultNamesSorted(t *testing.T) {
	r := &Result{Artifacts: map[string][]byte{"z.pcap": nil, "fullreport": nil, "a.csv": nil}}
	names := r.Names()
	want := []string{"a.csv", "fullreport", "z.pcap"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
	if r.Size() != 0 {
		t.Errorf("Size() of empty artifacts = %d", r.Size())
	}
}
