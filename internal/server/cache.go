package server

import (
	"container/list"
	"sort"
	"sync"
)

// Result is one completed job's output: the canonical spec it ran and the
// named artifact bytes (fullreport, per-config pcaps, CSV series, the
// telemetry snapshot). Results are immutable once stored — cache hits
// serve the same byte slices a fresh run produced.
type Result struct {
	// Spec is the canonical spec the result was computed for.
	Spec JobSpec
	// Artifacts maps artifact name to bytes, e.g. "fullreport",
	// "dualstack.pcap", "funnel.csv", "telemetry.prom".
	Artifacts map[string][]byte
}

// Size returns the total artifact bytes, for observability.
func (r *Result) Size() int {
	n := 0
	for _, b := range r.Artifacts {
		n += len(b)
	}
	return n
}

// Names returns the artifact names in sorted order.
func (r *Result) Names() []string {
	names := make([]string, 0, len(r.Artifacts))
	for n := range r.Artifacts {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// resultCache is a mutex-guarded LRU of completed results keyed by
// (seed, options-hash). Entry count, not byte size, bounds it: a study
// result is a few MB dominated by pcaps, and the operator sizes the
// cache in studies, not bytes.
type resultCache struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recently used; values are *cacheEntry
	entries map[Key]*list.Element
}

type cacheEntry struct {
	key Key
	res *Result
}

// newResultCache builds an LRU holding up to max results (min 1).
func newResultCache(max int) *resultCache {
	if max < 1 {
		max = 1
	}
	return &resultCache{
		max:     max,
		order:   list.New(),
		entries: make(map[Key]*list.Element),
	}
}

// Get returns the cached result for key, marking it most recently used.
func (c *resultCache) Get(key Key) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// Put stores res under key, evicting the least recently used entry when
// the cache is full. Storing an existing key refreshes it; determinism
// guarantees the bytes are the same either way.
func (c *resultCache) Put(key Key, res *Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*cacheEntry).res = res
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// Len returns the number of cached results.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
