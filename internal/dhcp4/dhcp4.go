// Package dhcp4 implements the subset of DHCPv4 (RFC 2131) the testbed
// router and devices exchange: DISCOVER/OFFER/REQUEST/ACK with the
// subnet-mask, router, DNS-server, lease-time, requested-IP, server-ID and
// message-type options.
package dhcp4

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"

	"v6lab/internal/packet"
)

// Message types (option 53).
const (
	Discover uint8 = 1
	Offer    uint8 = 2
	Request  uint8 = 3
	ACK      uint8 = 5
	NAK      uint8 = 6
)

// Option codes.
const (
	OptSubnetMask  uint8 = 1
	OptRouter      uint8 = 3
	OptDNSServers  uint8 = 6
	OptRequestedIP uint8 = 50
	OptLeaseTime   uint8 = 51
	OptMessageType uint8 = 53
	OptServerID    uint8 = 54
	OptEnd         uint8 = 255
)

// UDP ports.
const (
	ServerPort uint16 = 67
	ClientPort uint16 = 68
)

var magicCookie = [4]byte{99, 130, 83, 99}

// Message is a DHCPv4 message.
type Message struct {
	Op         uint8 // 1 request, 2 reply
	XID        uint32
	ClientIP   netip.Addr // ciaddr
	YourIP     netip.Addr // yiaddr
	ServerIP   netip.Addr // siaddr
	ClientMAC  packet.MAC
	Type       uint8 // option 53
	SubnetMask netip.Addr
	Router     netip.Addr
	DNS        []netip.Addr
	Requested  netip.Addr
	ServerID   netip.Addr
	LeaseSecs  uint32
}

const fixedLen = 240 // BOOTP header (236) + magic cookie

// addr4OrUnset returns the 4-byte address, or the zero Addr when the field
// is 0.0.0.0 (BOOTP's "unset").
func addr4OrUnset(b []byte) netip.Addr {
	if b[0] == 0 && b[1] == 0 && b[2] == 0 && b[3] == 0 {
		return netip.Addr{}
	}
	return netip.AddrFrom4([4]byte(b))
}

func putAddr4(b []byte, a netip.Addr) {
	if a.Is4() {
		v := a.As4()
		copy(b, v[:])
	}
}

// Marshal encodes the message.
func (m *Message) Marshal() ([]byte, error) {
	if m.Type == 0 {
		return nil, errors.New("dhcp4: message type unset")
	}
	b := make([]byte, fixedLen, fixedLen+64)
	b[0] = m.Op
	b[1] = 1 // htype ethernet
	b[2] = 6 // hlen
	binary.BigEndian.PutUint32(b[4:8], m.XID)
	putAddr4(b[12:16], m.ClientIP)
	putAddr4(b[16:20], m.YourIP)
	putAddr4(b[20:24], m.ServerIP)
	copy(b[28:34], m.ClientMAC[:])
	copy(b[236:240], magicCookie[:])
	b = append(b, OptMessageType, 1, m.Type)
	appendAddr := func(code uint8, a netip.Addr) {
		if a.Is4() {
			v := a.As4()
			b = append(b, code, 4, v[0], v[1], v[2], v[3])
		}
	}
	appendAddr(OptSubnetMask, m.SubnetMask)
	appendAddr(OptRouter, m.Router)
	appendAddr(OptRequestedIP, m.Requested)
	appendAddr(OptServerID, m.ServerID)
	if len(m.DNS) > 0 {
		b = append(b, OptDNSServers, uint8(4*len(m.DNS)))
		for _, d := range m.DNS {
			if !d.Is4() {
				return nil, fmt.Errorf("dhcp4: DNS server %v not IPv4", d)
			}
			v := d.As4()
			b = append(b, v[:]...)
		}
	}
	if m.LeaseSecs != 0 {
		b = append(b, OptLeaseTime, 4)
		b = binary.BigEndian.AppendUint32(b, m.LeaseSecs)
	}
	return append(b, OptEnd), nil
}

// Unmarshal decodes a DHCPv4 message.
func Unmarshal(data []byte) (*Message, error) {
	if len(data) < fixedLen {
		return nil, packet.ErrTruncated
	}
	if [4]byte(data[236:240]) != magicCookie {
		return nil, errors.New("dhcp4: missing magic cookie")
	}
	m := &Message{
		Op:       data[0],
		XID:      binary.BigEndian.Uint32(data[4:8]),
		ClientIP: addr4OrUnset(data[12:16]),
		YourIP:   addr4OrUnset(data[16:20]),
		ServerIP: addr4OrUnset(data[20:24]),
	}
	copy(m.ClientMAC[:], data[28:34])
	opts := data[fixedLen:]
	for len(opts) > 0 {
		code := opts[0]
		if code == OptEnd {
			break
		}
		if code == 0 { // pad
			opts = opts[1:]
			continue
		}
		if len(opts) < 2 || len(opts) < 2+int(opts[1]) {
			return nil, packet.ErrTruncated
		}
		val := opts[2 : 2+opts[1]]
		switch code {
		case OptMessageType:
			if len(val) == 1 {
				m.Type = val[0]
			}
		case OptSubnetMask:
			if len(val) == 4 {
				m.SubnetMask = netip.AddrFrom4([4]byte(val))
			}
		case OptRouter:
			if len(val) >= 4 {
				m.Router = netip.AddrFrom4([4]byte(val[:4]))
			}
		case OptRequestedIP:
			if len(val) == 4 {
				m.Requested = netip.AddrFrom4([4]byte(val))
			}
		case OptServerID:
			if len(val) == 4 {
				m.ServerID = netip.AddrFrom4([4]byte(val))
			}
		case OptDNSServers:
			for p := 0; p+4 <= len(val); p += 4 {
				m.DNS = append(m.DNS, netip.AddrFrom4([4]byte(val[p:p+4])))
			}
		case OptLeaseTime:
			if len(val) == 4 {
				m.LeaseSecs = binary.BigEndian.Uint32(val)
			}
		}
		opts = opts[2+opts[1]:]
	}
	if m.Type == 0 {
		return nil, errors.New("dhcp4: no message type option")
	}
	return m, nil
}
