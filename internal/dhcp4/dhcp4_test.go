package dhcp4

import (
	"net/netip"
	"reflect"
	"testing"

	"v6lab/internal/packet"
)

func TestDiscoverOfferRoundTrip(t *testing.T) {
	mac := packet.MAC{0x02, 0x11, 0x22, 0x33, 0x44, 0x55}
	disc := &Message{Op: 1, XID: 0xdeadbeef, ClientMAC: mac, Type: Discover}
	wire, err := disc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != Discover || got.XID != 0xdeadbeef || got.ClientMAC != mac {
		t.Errorf("discover: %+v", got)
	}

	offer := &Message{
		Op: 2, XID: disc.XID, ClientMAC: mac, Type: Offer,
		YourIP:     netip.MustParseAddr("192.168.1.23"),
		ServerIP:   netip.MustParseAddr("192.168.1.1"),
		ServerID:   netip.MustParseAddr("192.168.1.1"),
		SubnetMask: netip.MustParseAddr("255.255.255.0"),
		Router:     netip.MustParseAddr("192.168.1.1"),
		DNS:        []netip.Addr{netip.MustParseAddr("8.8.8.8"), netip.MustParseAddr("8.8.4.4")},
		LeaseSecs:  3600,
	}
	wire, err = offer.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err = Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, offer) {
		t.Errorf("offer round trip:\n got %+v\nwant %+v", got, offer)
	}
}

func TestRequestCarriesRequestedIP(t *testing.T) {
	req := &Message{
		Op: 1, XID: 7, Type: Request,
		Requested: netip.MustParseAddr("192.168.1.23"),
		ServerID:  netip.MustParseAddr("192.168.1.1"),
	}
	wire, err := req.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Requested != req.Requested || got.ServerID != req.ServerID {
		t.Errorf("request: %+v", got)
	}
}

func TestRejectsMissingCookieAndType(t *testing.T) {
	if _, err := Unmarshal(make([]byte, fixedLen)); err == nil {
		t.Error("want error for missing cookie")
	}
	m := &Message{Op: 1}
	if _, err := m.Marshal(); err == nil {
		t.Error("want error for unset type")
	}
	if _, err := Unmarshal(make([]byte, 10)); err == nil {
		t.Error("want error for truncated message")
	}
}

func TestMarshalRejectsIPv6DNS(t *testing.T) {
	m := &Message{Op: 2, Type: ACK, DNS: []netip.Addr{netip.MustParseAddr("::1")}}
	if _, err := m.Marshal(); err == nil {
		t.Error("want error for IPv6 DNS in DHCPv4")
	}
}

func TestPadOptionSkipped(t *testing.T) {
	m := &Message{Op: 1, XID: 1, Type: Discover}
	wire, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Insert pad bytes before END.
	wire = append(wire[:len(wire)-1], 0, 0, 0, OptEnd)
	if _, err := Unmarshal(wire); err != nil {
		t.Fatal(err)
	}
}
