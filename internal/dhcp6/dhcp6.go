// Package dhcp6 implements the subset of DHCPv6 (RFC 8415) the study
// exercises: stateless information exchange (INFORMATION-REQUEST/REPLY for
// DNS configuration) and the stateful four-message exchange
// (SOLICIT/ADVERTISE/REQUEST/REPLY with IA_NA address assignment).
package dhcp6

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"

	"v6lab/internal/packet"
)

// Message types (RFC 8415 §7.3).
const (
	Solicit     uint8 = 1
	Advertise   uint8 = 2
	Request     uint8 = 3
	Renew       uint8 = 5
	Reply       uint8 = 7
	InfoRequest uint8 = 11
)

// TypeName names a message type for logs and analysis output.
func TypeName(t uint8) string {
	switch t {
	case Solicit:
		return "SOLICIT"
	case Advertise:
		return "ADVERTISE"
	case Request:
		return "REQUEST"
	case Renew:
		return "RENEW"
	case Reply:
		return "REPLY"
	case InfoRequest:
		return "INFORMATION-REQUEST"
	}
	return fmt.Sprintf("TYPE%d", t)
}

// Option codes.
const (
	OptClientID    uint16 = 1
	OptServerID    uint16 = 2
	OptIANA        uint16 = 3
	OptIAAddr      uint16 = 5
	OptORO         uint16 = 6
	OptElapsedTime uint16 = 8
	OptDNSServers  uint16 = 23
)

// UDP ports (RFC 8415 §7.2).
const (
	ServerPort uint16 = 547
	ClientPort uint16 = 546
)

// AllRelayAgentsAndServers is the ff02::1:2 multicast group clients send to.
const AllRelayAgentsAndServers = "ff02::1:2"

// DUID is a DHCP unique identifier. We use DUID-LL (type 3) derived from
// the MAC, which most embedded stacks emit.
type DUID []byte

// DUIDFromMAC builds a DUID-LL for an Ethernet MAC.
func DUIDFromMAC(mac packet.MAC) DUID {
	d := make(DUID, 10)
	binary.BigEndian.PutUint16(d[0:2], 3) // DUID-LL
	binary.BigEndian.PutUint16(d[2:4], 1) // hardware type Ethernet
	copy(d[4:10], mac[:])
	return d
}

// IAAddr is one address binding inside an IA_NA.
type IAAddr struct {
	Addr              netip.Addr
	PreferredLifetime uint32
	ValidLifetime     uint32
}

// IANA is an identity association for non-temporary addresses.
type IANA struct {
	IAID  uint32
	Addrs []IAAddr
}

// Message is a DHCPv6 client/server message.
type Message struct {
	Type     uint8
	TxID     uint32 // 24 bits used
	ClientID DUID
	ServerID DUID
	// RequestedOptions mirrors the ORO option.
	RequestedOptions []uint16
	ElapsedTime      uint16
	IANA             *IANA
	DNS              []netip.Addr
}

// Marshal encodes the message.
func (m *Message) Marshal() ([]byte, error) {
	b := make([]byte, 4, 64)
	b[0] = m.Type
	b[1] = byte(m.TxID >> 16)
	b[2] = byte(m.TxID >> 8)
	b[3] = byte(m.TxID)
	appendOpt := func(code uint16, val []byte) {
		b = binary.BigEndian.AppendUint16(b, code)
		b = binary.BigEndian.AppendUint16(b, uint16(len(val)))
		b = append(b, val...)
	}
	if len(m.ClientID) > 0 {
		appendOpt(OptClientID, m.ClientID)
	}
	if len(m.ServerID) > 0 {
		appendOpt(OptServerID, m.ServerID)
	}
	if len(m.RequestedOptions) > 0 {
		oro := make([]byte, 0, 2*len(m.RequestedOptions))
		for _, o := range m.RequestedOptions {
			oro = binary.BigEndian.AppendUint16(oro, o)
		}
		appendOpt(OptORO, oro)
	}
	if m.ElapsedTime != 0 || m.Type == Solicit || m.Type == Request || m.Type == Renew || m.Type == InfoRequest {
		appendOpt(OptElapsedTime, binary.BigEndian.AppendUint16(nil, m.ElapsedTime))
	}
	if m.IANA != nil {
		ia := make([]byte, 12)
		binary.BigEndian.PutUint32(ia[0:4], m.IANA.IAID)
		// T1/T2 zero: server discretion.
		for _, a := range m.IANA.Addrs {
			if !a.Addr.Is6() || a.Addr.Is4In6() {
				return nil, fmt.Errorf("dhcp6: IA address %v not IPv6", a.Addr)
			}
			sub := make([]byte, 28)
			binary.BigEndian.PutUint16(sub[0:2], OptIAAddr)
			binary.BigEndian.PutUint16(sub[2:4], 24)
			v := a.Addr.As16()
			copy(sub[4:20], v[:])
			binary.BigEndian.PutUint32(sub[20:24], a.PreferredLifetime)
			binary.BigEndian.PutUint32(sub[24:28], a.ValidLifetime)
			ia = append(ia, sub...)
		}
		appendOpt(OptIANA, ia)
	}
	if len(m.DNS) > 0 {
		dns := make([]byte, 0, 16*len(m.DNS))
		for _, d := range m.DNS {
			if !d.Is6() || d.Is4In6() {
				return nil, fmt.Errorf("dhcp6: DNS server %v not IPv6", d)
			}
			v := d.As16()
			dns = append(dns, v[:]...)
		}
		appendOpt(OptDNSServers, dns)
	}
	return b, nil
}

// Unmarshal decodes a DHCPv6 message.
func Unmarshal(data []byte) (*Message, error) {
	if len(data) < 4 {
		return nil, packet.ErrTruncated
	}
	m := &Message{
		Type: data[0],
		TxID: uint32(data[1])<<16 | uint32(data[2])<<8 | uint32(data[3]),
	}
	opts := data[4:]
	for len(opts) > 0 {
		if len(opts) < 4 {
			return nil, packet.ErrTruncated
		}
		code := binary.BigEndian.Uint16(opts[0:2])
		olen := int(binary.BigEndian.Uint16(opts[2:4]))
		if len(opts) < 4+olen {
			return nil, packet.ErrTruncated
		}
		val := opts[4 : 4+olen]
		switch code {
		case OptClientID:
			m.ClientID = append(DUID(nil), val...)
		case OptServerID:
			m.ServerID = append(DUID(nil), val...)
		case OptORO:
			for p := 0; p+2 <= len(val); p += 2 {
				m.RequestedOptions = append(m.RequestedOptions, binary.BigEndian.Uint16(val[p:p+2]))
			}
		case OptElapsedTime:
			if len(val) == 2 {
				m.ElapsedTime = binary.BigEndian.Uint16(val)
			}
		case OptIANA:
			if len(val) < 12 {
				return nil, packet.ErrTruncated
			}
			ia := &IANA{IAID: binary.BigEndian.Uint32(val[0:4])}
			sub := val[12:]
			for len(sub) > 0 {
				if len(sub) < 4 {
					return nil, packet.ErrTruncated
				}
				sc := binary.BigEndian.Uint16(sub[0:2])
				sl := int(binary.BigEndian.Uint16(sub[2:4]))
				if len(sub) < 4+sl {
					return nil, packet.ErrTruncated
				}
				if sc == OptIAAddr && sl >= 24 {
					ia.Addrs = append(ia.Addrs, IAAddr{
						Addr:              netip.AddrFrom16([16]byte(sub[4:20])),
						PreferredLifetime: binary.BigEndian.Uint32(sub[20:24]),
						ValidLifetime:     binary.BigEndian.Uint32(sub[24:28]),
					})
				}
				sub = sub[4+sl:]
			}
			m.IANA = ia
		case OptDNSServers:
			if olen%16 != 0 {
				return nil, errors.New("dhcp6: DNS option length not multiple of 16")
			}
			for p := 0; p < len(val); p += 16 {
				m.DNS = append(m.DNS, netip.AddrFrom16([16]byte(val[p:p+16])))
			}
		}
		opts = opts[4+olen:]
	}
	return m, nil
}

// WantsDNS reports whether the client's ORO asks for DNS servers, the
// signal the analysis uses for "stateless DHCPv6 support" (Table 5).
func (m *Message) WantsDNS() bool {
	for _, o := range m.RequestedOptions {
		if o == OptDNSServers {
			return true
		}
	}
	return false
}
