package dhcp6

import (
	"net/netip"
	"reflect"
	"testing"

	"v6lab/internal/packet"
)

var mac = packet.MAC{0x02, 0x11, 0x22, 0x33, 0x44, 0x55}

func TestInfoRequestRoundTrip(t *testing.T) {
	m := &Message{
		Type:             InfoRequest,
		TxID:             0xabcdef,
		ClientID:         DUIDFromMAC(mac),
		RequestedOptions: []uint16{OptDNSServers},
	}
	wire, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != InfoRequest || got.TxID != 0xabcdef {
		t.Errorf("header: %+v", got)
	}
	if !reflect.DeepEqual(got.ClientID, m.ClientID) {
		t.Errorf("client id: %x", got.ClientID)
	}
	if !got.WantsDNS() {
		t.Error("WantsDNS false")
	}
}

func TestStatefulExchangeRoundTrip(t *testing.T) {
	sol := &Message{
		Type: Solicit, TxID: 1, ClientID: DUIDFromMAC(mac),
		RequestedOptions: []uint16{OptDNSServers},
		IANA:             &IANA{IAID: 42},
	}
	wire, err := sol.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.IANA == nil || got.IANA.IAID != 42 || len(got.IANA.Addrs) != 0 {
		t.Errorf("solicit IA_NA: %+v", got.IANA)
	}

	reply := &Message{
		Type: Reply, TxID: 1,
		ClientID: DUIDFromMAC(mac),
		ServerID: DUIDFromMAC(packet.MAC{0x02, 0xff, 0, 0, 0, 1}),
		IANA: &IANA{IAID: 42, Addrs: []IAAddr{{
			Addr: netip.MustParseAddr("2001:470:8:100::1001"), PreferredLifetime: 3600, ValidLifetime: 7200,
		}}},
		DNS: []netip.Addr{netip.MustParseAddr("2001:4860:4860::8888")},
	}
	wire, err = reply.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err = Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.IANA == nil || len(got.IANA.Addrs) != 1 {
		t.Fatalf("reply IA_NA: %+v", got.IANA)
	}
	a := got.IANA.Addrs[0]
	if a.Addr != netip.MustParseAddr("2001:470:8:100::1001") || a.ValidLifetime != 7200 {
		t.Errorf("IAAddr: %+v", a)
	}
	if len(got.DNS) != 1 || got.DNS[0] != netip.MustParseAddr("2001:4860:4860::8888") {
		t.Errorf("DNS: %v", got.DNS)
	}
}

func TestDUIDFromMAC(t *testing.T) {
	d := DUIDFromMAC(mac)
	if len(d) != 10 || d[1] != 3 || d[3] != 1 {
		t.Errorf("DUID = %x", d)
	}
}

func TestMarshalRejectsIPv4Addresses(t *testing.T) {
	m := &Message{Type: Reply, DNS: []netip.Addr{netip.MustParseAddr("8.8.8.8")}}
	if _, err := m.Marshal(); err == nil {
		t.Error("want error for IPv4 DNS over DHCPv6")
	}
	m = &Message{Type: Reply, IANA: &IANA{Addrs: []IAAddr{{Addr: netip.MustParseAddr("1.2.3.4")}}}}
	if _, err := m.Marshal(); err == nil {
		t.Error("want error for IPv4 IA address")
	}
}

func TestTruncatedRejected(t *testing.T) {
	if _, err := Unmarshal([]byte{1, 2}); err == nil {
		t.Error("short header")
	}
	m := &Message{Type: Solicit, TxID: 5, ClientID: DUIDFromMAC(mac)}
	wire, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 5; cut < len(wire); cut++ {
		if _, err := Unmarshal(wire[:cut]); err == nil {
			// Cuts that land exactly on option boundaries legitimately parse;
			// lopping ElapsedTime off entirely is valid wire format.
			continue
		}
	}
}

func TestTypeName(t *testing.T) {
	if TypeName(Solicit) != "SOLICIT" || TypeName(InfoRequest) != "INFORMATION-REQUEST" || TypeName(99) != "TYPE99" {
		t.Error("TypeName wrong")
	}
}
