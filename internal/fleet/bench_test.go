package fleet

import (
	"fmt"
	"testing"

	"v6lab/internal/experiment"
)

// BenchmarkFleet times a 16-home fleet at increasing worker counts. Homes
// are independent, so on a multi-core runner the wall-clock should fall
// roughly linearly until workers exceed cores; on a single-core host all
// variants converge on the serial time.
func BenchmarkFleet(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			benchFleet(b, Config{Homes: 16, Workers: workers, Seed: 1})
		})
	}
	// The capture-policy rows isolate what buffering costs per home at a
	// fixed worker count: capture=none is the default streaming path (no
	// Capture materialized, frames parsed once at delivery), capture=full
	// the buffered batch path (arena copy per frame plus a replay parse).
	for _, row := range []struct {
		name   string
		policy experiment.CapturePolicy
	}{
		{"capture=none", experiment.CaptureNone},
		{"capture=full", experiment.CaptureFull},
	} {
		b.Run(row.name, func(b *testing.B) {
			benchFleet(b, Config{Homes: 16, Workers: 4, Seed: 1, Capture: row.policy})
		})
	}
}

func benchFleet(b *testing.B, cfg Config) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pop, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(pop.Homes) != cfg.Homes {
			b.Fatalf("got %d homes", len(pop.Homes))
		}
	}
}
