package fleet

import (
	"fmt"
	"testing"
)

// BenchmarkFleet times a 16-home fleet at increasing worker counts. Homes
// are independent, so on a multi-core runner the wall-clock should fall
// roughly linearly until workers exceed cores; on a single-core host all
// variants converge on the serial time.
func BenchmarkFleet(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pop, err := Run(Config{Homes: 16, Workers: workers, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				if len(pop.Homes) != 16 {
					b.Fatalf("got %d homes", len(pop.Homes))
				}
			}
		})
	}
}
