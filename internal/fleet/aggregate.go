package fleet

import (
	"sort"

	"v6lab/internal/experiment"
)

// ConfigAgg accumulates funnel outcomes over every home running one
// Table 2 connectivity config.
type ConfigAgg struct {
	ID    string
	Homes int
	// Device-level funnel sums across the config's homes.
	Devices, NDP, Addr, GUA, AAAAReq, InternetV6, Functional int
}

// PolicyPrevalence accumulates household-level prevalence over every home
// assigned one firewall policy — all homes, not just those with an
// exposure run, so the breakdown covers the whole population.
type PolicyPrevalence struct {
	Policy string
	Homes  int
	// HomesBricked counts homes with >=1 non-functional device;
	// HomesAllOK its complement.
	HomesBricked, HomesAllOK int
	// HomesDADSkip / HomesEUI64 count homes with >=1 device skipping DAD
	// or exposing an EUI-64 GUA.
	HomesDADSkip, HomesEUI64 int
}

// PolicyAgg accumulates inbound-exposure outcomes over every v6-enabled
// home running one firewall policy.
type PolicyAgg struct {
	Policy string
	Homes  int
	// HomesExposed counts homes where at least one device answered a
	// WAN-vantage probe.
	HomesExposed                                    int
	DevicesProbed, DevicesReachable, PortsReachable int
}

// Aggregate is the population-level summary of a fleet run.
type Aggregate struct {
	Homes, Devices   int
	SizeMin, SizeMax int
	FramesCaptured   int
	ByConfig         []ConfigAgg // in Table 2 execution order
	ByPolicy         []PolicyAgg // v6-enabled homes only, by policy name
	// PrevalenceByPolicy breaks the population prevalence down by the
	// firewall policy each home was assigned, sorted by policy name.
	PrevalenceByPolicy []PolicyPrevalence
	// Functionality prevalence.
	DeviceFunctional int
	HomesAllOK       int // every device functional
	HomesBricked     int // >=1 non-functional device
	// Privacy prevalence.
	HomesDADSkip    int // >=1 device configuring addresses without DAD
	DADSkipDevices  int
	DADNeverDevices int
	HomesEUI64      int // >=1 device using an EUI-64 GUA
	EUI64UseDevices int
}

// Aggregate folds the per-home results, visiting homes in index order so
// the output is identical for any worker count.
func (p *Population) Aggregate() Aggregate {
	a := Aggregate{Homes: len(p.Homes)}
	byConfig := map[string]*ConfigAgg{}
	byPolicy := map[string]*PolicyAgg{}
	prevByPolicy := map[string]*PolicyPrevalence{}
	for _, hr := range p.Homes {
		a.Devices += hr.Devices
		a.FramesCaptured += hr.FramesCaptured
		if a.SizeMin == 0 || hr.Devices < a.SizeMin {
			a.SizeMin = hr.Devices
		}
		if hr.Devices > a.SizeMax {
			a.SizeMax = hr.Devices
		}

		ca := byConfig[hr.Spec.ConfigID]
		if ca == nil {
			ca = &ConfigAgg{ID: hr.Spec.ConfigID}
			byConfig[hr.Spec.ConfigID] = ca
		}
		ca.Homes++
		ca.Devices += hr.Devices
		ca.NDP += hr.NDP
		ca.Addr += hr.Addr
		ca.GUA += hr.GUA
		ca.AAAAReq += hr.AAAAReq
		ca.InternetV6 += hr.InternetV6
		ca.Functional += hr.Functional

		pp := prevByPolicy[hr.Spec.Policy]
		if pp == nil {
			pp = &PolicyPrevalence{Policy: hr.Spec.Policy}
			prevByPolicy[hr.Spec.Policy] = pp
		}
		pp.Homes++

		a.DeviceFunctional += hr.Functional
		if hr.Functional == hr.Devices {
			a.HomesAllOK++
			pp.HomesAllOK++
		} else {
			a.HomesBricked++
			pp.HomesBricked++
		}
		a.DADSkipDevices += hr.DADSkipping
		a.DADNeverDevices += hr.DADNever
		if hr.DADSkipping > 0 {
			a.HomesDADSkip++
			pp.HomesDADSkip++
		}
		a.EUI64UseDevices += hr.EUI64Use
		if hr.EUI64Use > 0 {
			a.HomesEUI64++
			pp.HomesEUI64++
		}

		if hr.Exposure != nil {
			pa := byPolicy[hr.Spec.Policy]
			if pa == nil {
				pa = &PolicyAgg{Policy: hr.Spec.Policy}
				byPolicy[hr.Spec.Policy] = pa
			}
			pa.Homes++
			pa.DevicesProbed += hr.Exposure.DevicesProbed
			pa.DevicesReachable += hr.Exposure.DevicesReachable
			pa.PortsReachable += hr.Exposure.PortsReachable
			if hr.Exposure.DevicesReachable > 0 {
				pa.HomesExposed++
			}
		}
	}
	for _, cfg := range experiment.Configs {
		if ca := byConfig[cfg.ID]; ca != nil {
			a.ByConfig = append(a.ByConfig, *ca)
		}
	}
	names := make([]string, 0, len(byPolicy))
	for name := range byPolicy {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a.ByPolicy = append(a.ByPolicy, *byPolicy[name])
	}
	names = names[:0]
	for name := range prevByPolicy {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a.PrevalenceByPolicy = append(a.PrevalenceByPolicy, *prevByPolicy[name])
	}
	return a
}
