// Package fleet scales the single-home testbed to populations: it
// instantiates N independent simulated smart homes — each with its own
// device subset, Table 2 connectivity configuration, and inbound-IPv6
// firewall policy — runs them concurrently on a bounded worker pool, and
// aggregates per-home outcomes into population-level prevalence results.
//
// Every home is derived deterministically from (fleet seed, home index),
// and homes share no mutable state, so a fleet's aggregate is
// byte-identical regardless of worker count: results are merged in home
// index order, never in completion order.
package fleet

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"v6lab/internal/addr"
	"v6lab/internal/analysis"
	"v6lab/internal/device"
	"v6lab/internal/experiment"
	"v6lab/internal/firewall"
	"v6lab/internal/telemetry"
	"v6lab/internal/world"
)

// SizeBand is one bucket of the household-size distribution: homes in the
// band hold between Min and Max devices (inclusive, uniform within).
type SizeBand struct {
	Min, Max int
	Weight   int
}

// Share is one weighted option of a categorical mix (connectivity configs,
// firewall policies).
type Share struct {
	Name   string
	Weight int
}

// Config parameterizes a fleet run. The zero value of every field selects
// a default, so Config{Homes: 100} is a complete specification.
type Config struct {
	// Homes is the population size.
	Homes int
	// Workers bounds the worker pool; 0 means GOMAXPROCS. Prefer setting
	// the worker count once at the lab level (v6lab.WithWorkers), which
	// fleet and adversary parts inherit; this field remains for callers
	// driving the fleet package directly.
	Workers int
	// Seed derives every home's spec; identical seeds reproduce the
	// population exactly. 0 means seed 1.
	Seed uint64
	// Sizes is the household-size distribution; nil means DefaultSizes.
	Sizes []SizeBand
	// Connectivity is the Table 2 config mix by experiment ID; nil means
	// DefaultConnectivity.
	Connectivity []Share
	// Policies is the inbound-IPv6 firewall policy mix ("open",
	// "stateful", "pinhole"); nil means DefaultPolicies.
	Policies []Share
	// MaxFramesPerRun bounds each home experiment's frame deliveries;
	// 0 means the study default.
	MaxFramesPerRun int
	// Capture selects per-home frame buffering. The fleet only needs
	// aggregates, so the default (CaptureDefault) resolves to CaptureNone:
	// each home's frames stream through an analysis Observer at delivery
	// and are never buffered. Set CaptureFull to restore the buffered
	// batch path (e.g. when debugging a home's traffic).
	Capture experiment.CapturePolicy
	// SkipExposure disables the per-home WAN-vantage inbound scan.
	SkipExposure bool
	// RetainWorlds keeps each home's immutable world on its HomeResult, so
	// downstream phases that rebuild homes (the adversary campaign) skip
	// re-deriving plans and re-priming the cloud registry. Off by default:
	// a retained world pins the home's plans and domain registry in memory
	// for the population's lifetime, which a plain 100k-home fleet run has
	// no use for.
	RetainWorlds bool
	// Telemetry, when non-nil, instruments every home's subsystems into
	// the shared registry. All folds are commuting counter additions, so
	// the final snapshot is identical for any worker count.
	Telemetry *telemetry.Registry
	// Progress, when non-nil, receives one event per completed home (in
	// completion order — a live stream, not part of the snapshot).
	Progress telemetry.Sink
}

// DefaultSizes is the default household-size distribution: mostly small
// deployments with a tail of heavily instrumented homes, the shape
// in-the-wild smart-home studies report.
var DefaultSizes = []SizeBand{
	{Min: 3, Max: 6, Weight: 3},
	{Min: 7, Max: 12, Weight: 4},
	{Min: 13, Max: 20, Weight: 2},
	{Min: 21, Max: 35, Weight: 1},
}

// DefaultConnectivity is the default Table 2 config mix: dual-stack
// dominates residential deployments, IPv4-only remains common, and the
// IPv6-only variants form the forward-looking tail.
var DefaultConnectivity = []Share{
	{Name: "ipv4-only", Weight: 25},
	{Name: "dual-stack", Weight: 35},
	{Name: "dual-stack-stateful", Weight: 15},
	{Name: "ipv6-only", Weight: 10},
	{Name: "ipv6-only-rdnss", Weight: 5},
	{Name: "ipv6-only-stateful", Weight: 10},
}

// DefaultPolicies is the default inbound-IPv6 policy mix: most CPE ships
// RFC 6092 default-deny, a substantial minority forwards the routed
// prefix unfiltered (the paper's router; Rye et al. find millions of such
// homes), and a small slice punches static pinholes.
var DefaultPolicies = []Share{
	{Name: "open", Weight: 35},
	{Name: "stateful", Weight: 50},
	{Name: "pinhole", Weight: 15},
}

// withDefaults resolves zero fields.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Sizes == nil {
		c.Sizes = DefaultSizes
	}
	if c.Connectivity == nil {
		c.Connectivity = DefaultConnectivity
	}
	if c.Policies == nil {
		c.Policies = DefaultPolicies
	}
	if c.Capture == experiment.CaptureDefault {
		c.Capture = experiment.CaptureNone
	}
	return c
}

// HomeSpec is one home's deterministic specification.
type HomeSpec struct {
	Index int
	// DeviceIndexes selects the home's devices from the registry, in
	// Table 10 order.
	DeviceIndexes []int
	// Devices holds the selected device names, parallel to DeviceIndexes.
	Devices []string
	// ConfigID is the home's Table 2 connectivity experiment.
	ConfigID string
	// Policy is the home's inbound-IPv6 firewall policy name.
	Policy string
}

// rng is a splitmix64 generator: tiny, deterministic, and safe to
// instantiate per home (no shared state).
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// pickIndex draws an index with probability proportional to its weight.
func (r *rng) pickIndex(weights []int) int {
	total := 0
	for _, w := range weights {
		total += w
	}
	x := r.intn(total)
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// pick draws one option from a weighted mix.
func (r *rng) pick(shares []Share) string {
	weights := make([]int, len(shares))
	for i, s := range shares {
		weights[i] = s.Weight
	}
	return shares[r.pickIndex(weights)].Name
}

// SpecFor derives home i's spec from the fleet seed alone; it never looks
// at other homes, so specs can be produced in any order.
func (c Config) SpecFor(i int) HomeSpec {
	return c.specFor(device.Registry(), i)
}

// SpecForIn is SpecFor against a caller-held registry snapshot, so drivers
// deriving many specs (the timeline engine) reuse one registry copy
// instead of re-deriving it per home.
func (c Config) SpecForIn(registry []*device.Profile, i int) HomeSpec {
	return c.specFor(registry, i)
}

// specFor is SpecFor against a caller-held registry snapshot, so the fleet
// loop derives all N specs from one registry copy instead of N.
func (c Config) specFor(registry []*device.Profile, i int) HomeSpec {
	c = c.withDefaults()
	r := &rng{s: c.Seed ^ (uint64(i)+1)*0x9e3779b97f4a7c15}

	// Household size: pick a band by weight, then uniform within it.
	weights := make([]int, len(c.Sizes))
	for bi, b := range c.Sizes {
		weights[bi] = b.Weight
	}
	band := c.Sizes[r.pickIndex(weights)]
	size := band.Min
	if band.Max > band.Min {
		size += r.intn(band.Max - band.Min + 1)
	}
	if size > len(registry) {
		size = len(registry)
	}

	// Sample the device subset: partial Fisher-Yates over the registry
	// indexes, then restore Table 10 order.
	perm := make([]int, len(registry))
	for j := range perm {
		perm[j] = j
	}
	for j := 0; j < size; j++ {
		k := j + r.intn(len(perm)-j)
		perm[j], perm[k] = perm[k], perm[j]
	}
	idx := append([]int(nil), perm[:size]...)
	sortInts(idx)
	names := make([]string, len(idx))
	for j, di := range idx {
		names[j] = registry[di].Name
	}

	return HomeSpec{
		Index:         i,
		DeviceIndexes: idx,
		Devices:       names,
		ConfigID:      r.pick(c.Connectivity),
		Policy:        r.pick(c.Policies),
	}
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// HomeResult is one home's measured outcome.
type HomeResult struct {
	Spec HomeSpec

	// Funnel outcomes over the home's single connectivity run, counted in
	// devices (the per-home slice of the paper's Table 3 stages).
	Devices    int
	NDP        int
	Addr       int
	GUA        int
	AAAAReq    int
	InternetV6 int
	Functional int

	// DAD compliance (§5.2.1) and EUI-64 exposure (§5.4.1) per home.
	DADSkipping int
	DADNever    int
	EUI64Assign int
	EUI64Use    int

	// FramesCaptured is the home run's analysis frame count (streamed or
	// buffered — the two paths see the same delivered frames).
	FramesCaptured int

	// Elapsed is the simulated time the home's runs consumed.
	Elapsed time.Duration

	// Exposure holds the WAN-vantage inbound scan under the home's
	// policy; nil for IPv4-only homes or when the scan is skipped.
	Exposure *experiment.PolicyExposure

	// Inventory is the home's ground-truth address inventory, snapshotted
	// right after the connectivity run. The adversary subsystem scores
	// its hitlists against it and harvests its Leaked records as seeds.
	Inventory *HomeInventory

	// World is the home's immutable world, retained only under
	// Config.RetainWorlds; nil otherwise.
	World *world.World
}

// runHome builds and runs one fully self-contained home. reg is the fleet
// run's shared registry snapshot (profiles are read-only during runs);
// scratch is the calling worker's recycled run infrastructure.
func runHome(cfg Config, reg []*device.Profile, spec HomeSpec, scratch *experiment.Scratch) (*HomeResult, error) {
	profiles := make([]*device.Profile, len(spec.DeviceIndexes))
	for j, di := range spec.DeviceIndexes {
		profiles[j] = reg[di]
	}
	w := world.Build(profiles)
	st := experiment.NewStudyWith(experiment.StudyOptions{
		World:           w,
		MaxFramesPerRun: cfg.MaxFramesPerRun,
		Capture:         cfg.Capture,
		Observe:         analysis.Streaming(),
		Telemetry:       cfg.Telemetry,
		Scratch:         scratch,
	})
	began := st.Clock.Now()
	ec, ok := experiment.ConfigByID(spec.ConfigID)
	if !ok {
		return nil, fmt.Errorf("unknown connectivity config %q", spec.ConfigID)
	}
	res, err := st.RunExperiment(ec)
	if err != nil {
		return nil, err
	}
	st.Results = append(st.Results, res)
	ds := analysis.FromStudy(st)

	hr := &HomeResult{Spec: spec, Devices: len(profiles), FramesCaptured: res.Frames()}
	obs := ds.Exps[0]
	overV6 := true
	for _, p := range st.Profiles {
		if res.Functional[p.Name] {
			hr.Functional++
		}
		d := obs.Devices[p.Name]
		if d == nil {
			continue
		}
		if d.NDP {
			hr.NDP++
		}
		if len(d.Assigned) > 0 {
			hr.Addr++
		}
		if d.HasAddr(addr.KindGUA) {
			hr.GUA++
		}
		if d.QueriedAAAA(&overV6) {
			hr.AAAAReq++
		}
		if d.InternetV6 {
			hr.InternetV6++
		}
	}
	hr.Inventory = collectInventory(spec, st, obs, ec.Router.IPv6)
	dad := ds.DADAudit()
	hr.DADSkipping = dad.DevicesSkipping
	hr.DADNever = dad.DevicesNeverDAD
	eui := ds.EUI64Exposure()
	hr.EUI64Assign = eui.Assign
	hr.EUI64Use = eui.Use

	if ec.Router.IPv6 && !cfg.SkipExposure {
		pol, err := firewall.ByName(spec.Policy)
		if err != nil {
			return nil, err
		}
		if ph, ok := pol.(firewall.Pinhole); ok && len(ph.Rules) == 0 {
			pol = firewall.Pinhole{Rules: experiment.DefaultPinholes(st.Profiles)}
		}
		rep, err := st.RunFirewallExposureUnder(ec, []firewall.Policy{pol})
		if err != nil {
			return nil, err
		}
		hr.Exposure = &rep.Policies[0]
	}
	st.FoldCloudMetrics()
	hr.Elapsed = st.Clock.Now().Sub(began)
	if cfg.RetainWorlds {
		hr.World = w
	}
	return hr, nil
}

// Population is a completed fleet run: per-home results in home index
// order plus the resolved configuration that produced them.
type Population struct {
	Cfg   Config
	Homes []*HomeResult
}

// Run executes the fleet: Homes independent simulated homes on a bounded
// worker pool. Results are merged in home index order, so the returned
// Population (and anything rendered from it) is byte-identical for any
// worker count.
func Run(cfg Config) (*Population, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation: ctx is checked before each home
// starts, and a cancelled fleet returns ctx.Err() with no Population —
// never a partial one.
func RunContext(ctx context.Context, cfg Config) (*Population, error) {
	cfg = cfg.withDefaults()
	if cfg.Homes <= 0 {
		return nil, fmt.Errorf("fleet: Homes must be positive, got %d", cfg.Homes)
	}
	if cfg.Telemetry != nil {
		// Gauge writes are last-write-wins, so this is set once here, on
		// the single deterministic path before the pool starts — never
		// from worker goroutines.
		cfg.Telemetry.Gauge("fleet", "homes_planned", "Homes scheduled for this fleet run.").Set(int64(cfg.Homes))
	}
	var homesDone *telemetry.Counter
	if cfg.Telemetry != nil {
		homesDone = cfg.Telemetry.Counter("fleet", "homes_completed_total", "Fleet homes simulated to completion.")
	}
	// One registry snapshot for the whole fleet: profiles are read-only
	// during runs, so every home's spec and world derive from the same
	// copy instead of deep-copying the registry twice per home.
	reg := device.Registry()
	results := make([]*HomeResult, cfg.Homes)
	errs := make([]error, cfg.Homes)
	jobs := make(chan int)
	var wg sync.WaitGroup
	workers := cfg.Workers
	if workers > cfg.Homes {
		workers = cfg.Homes
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-worker recycled scratch: each home's switch traffic runs
			// in the same arena, so a long fleet allocates frame storage
			// once per worker, not once per home.
			scratch := experiment.NewScratch()
			for i := range jobs {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				results[i], errs[i] = runHome(cfg, reg, cfg.specFor(reg, i), scratch)
				if hr := results[i]; hr != nil {
					if homesDone != nil {
						homesDone.Inc()
					}
					telemetry.Emit(cfg.Progress, telemetry.Event{
						Scope:   "fleet",
						ID:      fmt.Sprintf("home %d/%d", i+1, cfg.Homes),
						Detail:  fmt.Sprintf("%s, %d devices, %d/%d functional", hr.Spec.ConfigID, hr.Devices, hr.Functional, hr.Devices),
						Elapsed: hr.Elapsed,
					})
				}
			}
		}()
	}
	for i := 0; i < cfg.Homes; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	// A cancelled fleet registers nothing: the ctx error wins over any
	// per-home results already computed.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("fleet: home %d: %w", i, err)
		}
	}
	return &Population{Cfg: cfg, Homes: results}, nil
}
