package fleet

import (
	"net/netip"

	"v6lab/internal/addr"
	"v6lab/internal/analysis"
	"v6lab/internal/experiment"
	"v6lab/internal/packet"
)

// This file exports each home's ground-truth address inventory to the WAN
// vantage. The adversary subsystem consumes it two ways: the full record
// is the answer key its hitlists are scored against, and the Leaked
// subset is what a passive observer (tracker-side logs, DNS AAAA
// harvesting) would hand the attacker as discovery seeds. The leak rules
// are grounded in what the home actually did on the wire during its run —
// not in what the attacker is allowed to know.

// AddrRecord is one global address a device holds, classified by hitlist
// predictability and flagged when the home's own traffic leaked it.
type AddrRecord struct {
	Addr  netip.Addr
	Class addr.IIDClass
	// Leaked marks addresses a WAN-side observer harvests passively:
	// EUI-64 addresses the device used for DNS/data/NTP (the paper's
	// Figure 5 exposures), and the preferred source address of a device
	// that talked to an AAAA-bearing tracker domain over v6.
	Leaked bool
}

// DeviceInventory is one device's WAN-relevant ground truth.
type DeviceInventory struct {
	Name  string
	MAC   packet.MAC
	Addrs []AddrRecord
	// OpenTCPv6 are the ports reachable from the WAN when the firewall
	// lets a probe through; OpenTCPv4 the LAN-only v4 services NAT used
	// to shield — an attacker already inside the home reaches both.
	OpenTCPv6, OpenTCPv4 []uint16
	Functional           bool
}

// HomeInventory is the per-home inventory the adversary subsystem scores
// against: which addresses exist, which are predictable, which leaked,
// and which firewall policy guards them.
type HomeInventory struct {
	Index    int
	ConfigID string
	Policy   string
	// V6 reports whether the home's router offered IPv6 at all; discovery
	// against a v4-only home can only ever come up empty.
	V6      bool
	Devices []DeviceInventory
}

// AddrCount returns the total global addresses across the home's devices.
func (h *HomeInventory) AddrCount() int {
	n := 0
	for _, d := range h.Devices {
		n += len(d.Addrs)
	}
	return n
}

// collectInventory snapshots the home's address ground truth right after
// its connectivity run, while the stacks still hold their assigned
// addresses and before any exposure re-run resets them.
func collectInventory(spec HomeSpec, st *experiment.Study, obs *analysis.ExpObs, v6 bool) *HomeInventory {
	inv := &HomeInventory{
		Index:    spec.Index,
		ConfigID: spec.ConfigID,
		Policy:   spec.Policy,
		V6:       v6,
		Devices:  make([]DeviceInventory, 0, len(st.Stacks)),
	}
	for i, s := range st.Stacks {
		p := st.Profiles[i]
		pl := st.Plans[i]

		// Did this device talk v6 to an AAAA-bearing tracker domain? If
		// so its preferred source address is sitting in tracker logs.
		trackerV6 := false
		if d := obs.Devices[p.Name]; d != nil && d.InternetV6 {
			for _, sp := range pl.Specs {
				if sp.Tracker && sp.HasAAAA {
					trackerV6 = true
					break
				}
			}
		}
		euiLeaks := p.EUI64ForDNS || p.EUI64ForData || p.EUI64ForNTP
		preferred := s.PreferredSourceGUA()

		di := DeviceInventory{
			Name:       p.Name,
			MAC:        s.MAC,
			OpenTCPv6:  append([]uint16(nil), p.OpenTCPv6...),
			OpenTCPv4:  append([]uint16(nil), p.OpenTCPv4...),
			Functional: s.Functional(),
		}
		for _, a := range s.GlobalAddrs() {
			rec := AddrRecord{Addr: a, Class: addr.ClassifyIID(addr.InterfaceID(a))}
			if rec.Class == addr.IIDEUI64 && euiLeaks {
				rec.Leaked = true
			}
			if trackerV6 && a == preferred {
				rec.Leaked = true
			}
			di.Addrs = append(di.Addrs, rec)
		}
		inv.Devices = append(inv.Devices, di)
	}
	return inv
}
