package fleet

import (
	"reflect"
	"strings"
	"testing"

	"v6lab/internal/device"
	"v6lab/internal/experiment"
)

// TestSpecForDeterministic: a spec is a pure function of (seed, index).
func TestSpecForDeterministic(t *testing.T) {
	cfg := Config{Homes: 20, Seed: 42}
	for i := 0; i < 20; i++ {
		a, b := cfg.SpecFor(i), cfg.SpecFor(i)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("home %d: SpecFor not deterministic:\n%+v\n%+v", i, a, b)
		}
	}
	// A different seed must produce a different population.
	other := Config{Homes: 20, Seed: 43}
	same := true
	for i := 0; i < 20; i++ {
		if !reflect.DeepEqual(cfg.SpecFor(i), other.SpecFor(i)) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical 20-home populations")
	}
}

// TestSpecForShape: sizes respect the bands, device indexes are sorted
// unique registry indexes, and config/policy come from the mixes.
func TestSpecForShape(t *testing.T) {
	cfg := Config{Homes: 50, Seed: 7}.withDefaults()
	reg := device.Registry()
	minSize, maxSize := cfg.Sizes[0].Min, cfg.Sizes[0].Max
	for _, b := range cfg.Sizes {
		if b.Min < minSize {
			minSize = b.Min
		}
		if b.Max > maxSize {
			maxSize = b.Max
		}
	}
	policies := map[string]bool{}
	for _, s := range cfg.Policies {
		policies[s.Name] = true
	}
	for i := 0; i < 50; i++ {
		sp := cfg.SpecFor(i)
		if sp.Index != i {
			t.Fatalf("home %d: spec.Index = %d", i, sp.Index)
		}
		n := len(sp.DeviceIndexes)
		if n < minSize || n > maxSize {
			t.Fatalf("home %d: size %d outside bands [%d,%d]", i, n, minSize, maxSize)
		}
		if len(sp.Devices) != n {
			t.Fatalf("home %d: %d names for %d indexes", i, len(sp.Devices), n)
		}
		for j, di := range sp.DeviceIndexes {
			if j > 0 && di <= sp.DeviceIndexes[j-1] {
				t.Fatalf("home %d: device indexes not strictly increasing: %v", i, sp.DeviceIndexes)
			}
			if di < 0 || di >= len(reg) {
				t.Fatalf("home %d: device index %d out of registry range", i, di)
			}
			if sp.Devices[j] != reg[di].Name {
				t.Fatalf("home %d: name %q != registry[%d] = %q", i, sp.Devices[j], di, reg[di].Name)
			}
		}
		if _, ok := experiment.ConfigByID(sp.ConfigID); !ok {
			t.Fatalf("home %d: unknown connectivity config %q", i, sp.ConfigID)
		}
		if !policies[sp.Policy] {
			t.Fatalf("home %d: policy %q not in the mix", i, sp.Policy)
		}
	}
}

func TestRunRejectsNonPositiveHomes(t *testing.T) {
	for _, n := range []int{0, -3} {
		if _, err := Run(Config{Homes: n}); err == nil {
			t.Fatalf("Run(Homes: %d) succeeded, want error", n)
		}
	}
}

// TestRunAggregateSums runs a small fleet on >=4 concurrent workers (the
// -race concurrency check) and verifies the aggregate is an exact fold of
// the per-home results.
func TestRunAggregateSums(t *testing.T) {
	pop, err := Run(Config{Homes: 8, Workers: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(pop.Homes) != 8 {
		t.Fatalf("got %d home results, want 8", len(pop.Homes))
	}
	a := pop.Aggregate()
	var devices, functional, frames, configHomes, policyHomes int
	for i, hr := range pop.Homes {
		if hr.Spec.Index != i {
			t.Fatalf("result %d holds spec for home %d (order lost)", i, hr.Spec.Index)
		}
		devices += hr.Devices
		functional += hr.Functional
		frames += hr.FramesCaptured
		if hr.Functional > hr.Devices {
			t.Fatalf("home %d: %d functional of %d devices", i, hr.Functional, hr.Devices)
		}
	}
	if a.Homes != 8 || a.Devices != devices || a.DeviceFunctional != functional || a.FramesCaptured != frames {
		t.Fatalf("aggregate totals %+v disagree with per-home sums (devs %d func %d frames %d)",
			a, devices, functional, frames)
	}
	if a.HomesAllOK+a.HomesBricked != a.Homes {
		t.Fatalf("HomesAllOK %d + HomesBricked %d != Homes %d", a.HomesAllOK, a.HomesBricked, a.Homes)
	}
	for _, ca := range a.ByConfig {
		configHomes += ca.Homes
		if _, ok := experiment.ConfigByID(ca.ID); !ok {
			t.Fatalf("aggregate holds unknown config %q", ca.ID)
		}
	}
	if configHomes != a.Homes {
		t.Fatalf("ByConfig homes sum to %d, want %d", configHomes, a.Homes)
	}
	for _, pa := range a.ByPolicy {
		policyHomes += pa.Homes
		if pa.HomesExposed > pa.Homes || pa.DevicesReachable > pa.DevicesProbed {
			t.Fatalf("implausible policy aggregate %+v", pa)
		}
	}
	if policyHomes > a.Homes {
		t.Fatalf("ByPolicy homes sum to %d > %d homes", policyHomes, a.Homes)
	}
	// The per-policy prevalence covers every home exactly once, and its
	// columns fold back to the population totals.
	var prevHomes, prevBricked, prevAllOK, prevDADSkip, prevEUI64 int
	for _, pp := range a.PrevalenceByPolicy {
		prevHomes += pp.Homes
		prevBricked += pp.HomesBricked
		prevAllOK += pp.HomesAllOK
		prevDADSkip += pp.HomesDADSkip
		prevEUI64 += pp.HomesEUI64
		if pp.HomesBricked+pp.HomesAllOK != pp.Homes {
			t.Fatalf("policy %q: bricked %d + all-ok %d != homes %d",
				pp.Policy, pp.HomesBricked, pp.HomesAllOK, pp.Homes)
		}
	}
	if prevHomes != a.Homes {
		t.Fatalf("PrevalenceByPolicy homes sum to %d, want %d", prevHomes, a.Homes)
	}
	if prevBricked != a.HomesBricked || prevAllOK != a.HomesAllOK ||
		prevDADSkip != a.HomesDADSkip || prevEUI64 != a.HomesEUI64 {
		t.Fatalf("per-policy prevalence sums (%d/%d/%d/%d) disagree with population totals (%d/%d/%d/%d)",
			prevBricked, prevAllOK, prevDADSkip, prevEUI64,
			a.HomesBricked, a.HomesAllOK, a.HomesDADSkip, a.HomesEUI64)
	}
}

// TestRunWorkerCountInvariance: the same fleet on 1 worker and on 4
// workers produces deeply equal populations — merge order is home index,
// never completion order.
func TestRunWorkerCountInvariance(t *testing.T) {
	serial, err := Run(Config{Homes: 8, Workers: 1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(Config{Homes: 8, Workers: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.Homes {
		if !reflect.DeepEqual(serial.Homes[i], parallel.Homes[i]) {
			t.Fatalf("home %d differs between 1 and 4 workers:\n%+v\n%+v",
				i, serial.Homes[i], parallel.Homes[i])
		}
	}
	if !reflect.DeepEqual(serial.Aggregate(), parallel.Aggregate()) {
		t.Fatal("aggregates differ between 1 and 4 workers")
	}
}

// TestRunHomeOutcomes spot-checks the physics: an IPv4-only home shows no
// IPv6 funnel activity and no exposure scan, a v6-enabled home does.
func TestRunHomeOutcomes(t *testing.T) {
	v4 := Config{Homes: 1, Workers: 1, Seed: 5,
		Connectivity: []Share{{Name: "ipv4-only", Weight: 1}},
	}
	pop, err := Run(v4)
	if err != nil {
		t.Fatal(err)
	}
	hr := pop.Homes[0]
	if hr.NDP != 0 || hr.GUA != 0 || hr.InternetV6 != 0 {
		t.Fatalf("ipv4-only home shows IPv6 funnel activity: %+v", hr)
	}
	if hr.Exposure != nil {
		t.Fatal("ipv4-only home ran a WAN IPv6 exposure scan")
	}
	if hr.Functional != hr.Devices {
		t.Fatalf("ipv4-only home bricked devices: %d/%d functional", hr.Functional, hr.Devices)
	}

	v6 := Config{Homes: 1, Workers: 1, Seed: 5,
		Sizes:        []SizeBand{{Min: 10, Max: 10, Weight: 1}},
		Connectivity: []Share{{Name: "dual-stack", Weight: 1}},
		Policies:     []Share{{Name: "stateful", Weight: 1}},
	}
	pop, err = Run(v6)
	if err != nil {
		t.Fatal(err)
	}
	hr = pop.Homes[0]
	if hr.NDP == 0 {
		t.Fatal("dual-stack home shows no NDP activity")
	}
	if hr.Exposure == nil {
		t.Fatal("dual-stack home skipped the exposure scan")
	}
	if !strings.EqualFold(hr.Exposure.Policy, "stateful") {
		t.Fatalf("exposure ran under policy %q, want stateful", hr.Exposure.Policy)
	}
	if hr.Exposure.DevicesReachable != 0 || hr.Exposure.PortsReachable != 0 {
		t.Fatalf("stateful default-deny let probes through: %+v", hr.Exposure)
	}
}

// TestSkipExposure: SkipExposure suppresses the WAN scan even on
// v6-enabled homes.
func TestSkipExposure(t *testing.T) {
	cfg := Config{Homes: 1, Workers: 1, Seed: 5, SkipExposure: true,
		Connectivity: []Share{{Name: "dual-stack", Weight: 1}},
	}
	pop, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pop.Homes[0].Exposure != nil {
		t.Fatal("SkipExposure home still ran the WAN scan")
	}
}
