package ndp

import (
	"net/netip"
	"reflect"
	"testing"
	"time"

	"v6lab/internal/packet"
)

var testMAC = packet.MAC{0x02, 0x42, 0x00, 0x00, 0x00, 0x07}

func TestRouterAdvertRoundTrip(t *testing.T) {
	ra := &RouterAdvert{
		HopLimit:       64,
		Managed:        true,
		OtherConfig:    true,
		RouterLifetime: 1800 * time.Second,
		MTU:            1500,
		SourceLinkAddr: testMAC,
		Prefixes: []PrefixInfo{
			{
				Prefix: netip.MustParsePrefix("2001:470:8:100::/64"), OnLink: true, AutonomousFlag: true,
				ValidLifetime: 86400 * time.Second, PreferredLifetime: 14400 * time.Second,
			},
			{
				Prefix: netip.MustParsePrefix("fd42:6c61:6221::/64"), OnLink: true, AutonomousFlag: true,
				ValidLifetime: 86400 * time.Second, PreferredLifetime: 86400 * time.Second,
			},
		},
		RDNSS: []RDNSS{{
			Lifetime: 600 * time.Second,
			Servers:  []netip.Addr{netip.MustParseAddr("2001:4860:4860::8888")},
		}},
	}
	got, err := ParseRouterAdvert(ra.MarshalBody())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ra) {
		t.Errorf("RA round trip:\n got %+v\nwant %+v", got, ra)
	}
}

func TestRouterAdvertMinimal(t *testing.T) {
	ra := &RouterAdvert{RouterLifetime: 0}
	got, err := ParseRouterAdvert(ra.MarshalBody())
	if err != nil {
		t.Fatal(err)
	}
	if got.Managed || got.OtherConfig || len(got.Prefixes) != 0 || len(got.RDNSS) != 0 {
		t.Errorf("minimal RA: %+v", got)
	}
}

func TestRouterSolicitRoundTrip(t *testing.T) {
	for _, rs := range []*RouterSolicit{{SourceLinkAddr: testMAC}, {}} {
		got, err := ParseRouterSolicit(rs.MarshalBody())
		if err != nil {
			t.Fatal(err)
		}
		if got.SourceLinkAddr != rs.SourceLinkAddr {
			t.Errorf("RS slla = %v, want %v", got.SourceLinkAddr, rs.SourceLinkAddr)
		}
	}
}

func TestNeighborSolicitRoundTrip(t *testing.T) {
	target := netip.MustParseAddr("fe80::42:ff:fe00:7")
	ns := &NeighborSolicit{Target: target, SourceLinkAddr: testMAC}
	got, err := ParseNeighborSolicit(ns.MarshalBody())
	if err != nil {
		t.Fatal(err)
	}
	if got.Target != target || got.SourceLinkAddr != testMAC {
		t.Errorf("NS: %+v", got)
	}
	// DAD probe: unspecified source means no SLLA option (RFC 4861 §4.3).
	dad := &NeighborSolicit{Target: target}
	got, err = ParseNeighborSolicit(dad.MarshalBody())
	if err != nil {
		t.Fatal(err)
	}
	if !got.SourceLinkAddr.IsZero() {
		t.Error("DAD NS carried SLLA")
	}
}

func TestNeighborAdvertRoundTrip(t *testing.T) {
	na := &NeighborAdvert{
		Router: true, Solicited: true, Override: true,
		Target:         netip.MustParseAddr("2001:470:8:100::1"),
		TargetLinkAddr: testMAC,
	}
	got, err := ParseNeighborAdvert(na.MarshalBody())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, na) {
		t.Errorf("NA: %+v", got)
	}
}

func TestTruncatedBodies(t *testing.T) {
	if _, err := ParseRouterAdvert(make([]byte, 11)); err == nil {
		t.Error("RA: want error")
	}
	if _, err := ParseNeighborSolicit(make([]byte, 19)); err == nil {
		t.Error("NS: want error")
	}
	if _, err := ParseNeighborAdvert(make([]byte, 10)); err == nil {
		t.Error("NA: want error")
	}
	if _, err := ParseRouterSolicit(make([]byte, 3)); err == nil {
		t.Error("RS: want error")
	}
}

func TestZeroLengthOptionRejected(t *testing.T) {
	body := make([]byte, 4)
	body = append(body, OptSourceLinkAddr, 0) // length 0 is illegal
	if _, err := ParseRouterSolicit(body); err == nil {
		t.Error("want error for zero-length option")
	}
}

func TestUnknownOptionSkipped(t *testing.T) {
	body := make([]byte, 4)
	body = append(body, 200, 1, 0, 0, 0, 0, 0, 0) // unknown type, valid length
	rs, err := ParseRouterSolicit(body)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.SourceLinkAddr.IsZero() {
		t.Error("unexpected slla")
	}
}

func TestIsNDPType(t *testing.T) {
	for typ, want := range map[uint8]bool{
		packet.ICMPv6TypeRouterSolicit:   true,
		packet.ICMPv6TypeRouterAdvert:    true,
		packet.ICMPv6TypeNeighborSolicit: true,
		packet.ICMPv6TypeNeighborAdvert:  true,
		packet.ICMPv6TypeEchoRequest:     false,
		packet.ICMPv6TypeMLDv2Report:     false,
	} {
		if IsNDPType(typ) != want {
			t.Errorf("IsNDPType(%d) != %v", typ, want)
		}
	}
}

func TestLifetimeClamping(t *testing.T) {
	ra := &RouterAdvert{RouterLifetime: -5 * time.Second}
	got, err := ParseRouterAdvert(ra.MarshalBody())
	if err != nil {
		t.Fatal(err)
	}
	if got.RouterLifetime != 0 {
		t.Errorf("negative lifetime = %v", got.RouterLifetime)
	}
}
