// Package ndp implements the Neighbor Discovery Protocol messages the
// study's feature analysis keys on (RFC 4861): Router Solicitation and
// Advertisement, Neighbor Solicitation and Advertisement, and the options
// that carry SLAAC prefixes (RFC 4862), RDNSS servers (RFC 8106), and
// link-layer addresses. Messages encode to and decode from the body of a
// packet.ICMPv6 layer.
package ndp

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"time"

	"v6lab/internal/packet"
)

// Option type codes (RFC 4861 §4.6, RFC 8106).
const (
	OptSourceLinkAddr uint8 = 1
	OptTargetLinkAddr uint8 = 2
	OptPrefixInfo     uint8 = 3
	OptMTU            uint8 = 5
	OptRDNSS          uint8 = 25
	OptDNSSL          uint8 = 31
)

// PrefixInfo is the Prefix Information option carried by Router
// Advertisements: the SLAAC trigger.
type PrefixInfo struct {
	Prefix            netip.Prefix
	OnLink            bool
	AutonomousFlag    bool // the A flag: address autoconfiguration allowed
	ValidLifetime     time.Duration
	PreferredLifetime time.Duration
}

// RDNSS is the Recursive DNS Server option (RFC 8106).
type RDNSS struct {
	Lifetime time.Duration
	Servers  []netip.Addr
}

// RouterAdvert is an RA message (type 134).
type RouterAdvert struct {
	HopLimit       uint8
	Managed        bool // M flag: addresses via stateful DHCPv6
	OtherConfig    bool // O flag: other configuration via DHCPv6
	RouterLifetime time.Duration
	Prefixes       []PrefixInfo
	RDNSS          []RDNSS
	MTU            uint32
	SourceLinkAddr packet.MAC
}

// RouterSolicit is an RS message (type 133).
type RouterSolicit struct {
	SourceLinkAddr packet.MAC // zero when omitted (e.g. unspecified source)
}

// NeighborSolicit is an NS message (type 135); with an unspecified IPv6
// source it is a DAD probe.
type NeighborSolicit struct {
	Target         netip.Addr
	SourceLinkAddr packet.MAC
}

// NeighborAdvert is an NA message (type 136).
type NeighborAdvert struct {
	Router         bool
	Solicited      bool
	Override       bool
	Target         netip.Addr
	TargetLinkAddr packet.MAC
}

func appendLinkAddrOpt(b []byte, typ uint8, mac packet.MAC) []byte {
	return append(b, typ, 1, mac[0], mac[1], mac[2], mac[3], mac[4], mac[5])
}

func lifetimeSeconds(d time.Duration) uint32 {
	s := int64(d / time.Second)
	if s < 0 {
		return 0
	}
	if s > 0xffffffff {
		return 0xffffffff
	}
	return uint32(s)
}

// MarshalBody encodes the RA into an ICMPv6 body.
func (ra *RouterAdvert) MarshalBody() []byte {
	b := make([]byte, 12, 64)
	b[0] = ra.HopLimit
	if ra.Managed {
		b[1] |= 0x80
	}
	if ra.OtherConfig {
		b[1] |= 0x40
	}
	binary.BigEndian.PutUint16(b[2:4], uint16(lifetimeSeconds(ra.RouterLifetime)))
	// Reachable time and retrans timer left unspecified (0).
	if !ra.SourceLinkAddr.IsZero() {
		b = appendLinkAddrOpt(b, OptSourceLinkAddr, ra.SourceLinkAddr)
	}
	if ra.MTU != 0 {
		opt := make([]byte, 8)
		opt[0], opt[1] = OptMTU, 1
		binary.BigEndian.PutUint32(opt[4:8], ra.MTU)
		b = append(b, opt...)
	}
	for _, p := range ra.Prefixes {
		opt := make([]byte, 32)
		opt[0], opt[1] = OptPrefixInfo, 4
		opt[2] = uint8(p.Prefix.Bits())
		if p.OnLink {
			opt[3] |= 0x80
		}
		if p.AutonomousFlag {
			opt[3] |= 0x40
		}
		binary.BigEndian.PutUint32(opt[4:8], lifetimeSeconds(p.ValidLifetime))
		binary.BigEndian.PutUint32(opt[8:12], lifetimeSeconds(p.PreferredLifetime))
		a := p.Prefix.Addr().As16()
		copy(opt[16:32], a[:])
		b = append(b, opt...)
	}
	for _, r := range ra.RDNSS {
		opt := make([]byte, 8+16*len(r.Servers))
		opt[0] = OptRDNSS
		opt[1] = uint8(1 + 2*len(r.Servers))
		binary.BigEndian.PutUint32(opt[4:8], lifetimeSeconds(r.Lifetime))
		for i, s := range r.Servers {
			a := s.As16()
			copy(opt[8+16*i:], a[:])
		}
		b = append(b, opt...)
	}
	return b
}

// parseOptions walks the TLV options region, invoking fn per option with
// the full option bytes (type, len, body).
func parseOptions(b []byte, fn func(typ uint8, opt []byte) error) error {
	for len(b) > 0 {
		if len(b) < 2 {
			return packet.ErrTruncated
		}
		olen := int(b[1]) * 8
		if olen == 0 || olen > len(b) {
			return fmt.Errorf("ndp: option type %d length %d invalid", b[0], b[1])
		}
		if err := fn(b[0], b[:olen]); err != nil {
			return err
		}
		b = b[olen:]
	}
	return nil
}

// ParseRouterAdvert decodes an RA from an ICMPv6 body.
func ParseRouterAdvert(body []byte) (*RouterAdvert, error) {
	if len(body) < 12 {
		return nil, packet.ErrTruncated
	}
	ra := &RouterAdvert{
		HopLimit:       body[0],
		Managed:        body[1]&0x80 != 0,
		OtherConfig:    body[1]&0x40 != 0,
		RouterLifetime: time.Duration(binary.BigEndian.Uint16(body[2:4])) * time.Second,
	}
	err := parseOptions(body[12:], func(typ uint8, opt []byte) error {
		switch typ {
		case OptSourceLinkAddr:
			if len(opt) >= 8 {
				copy(ra.SourceLinkAddr[:], opt[2:8])
			}
		case OptMTU:
			if len(opt) >= 8 {
				ra.MTU = binary.BigEndian.Uint32(opt[4:8])
			}
		case OptPrefixInfo:
			if len(opt) < 32 {
				return packet.ErrTruncated
			}
			a := netip.AddrFrom16([16]byte(opt[16:32]))
			bits := int(opt[2])
			if bits > 128 {
				return fmt.Errorf("ndp: prefix length %d", bits)
			}
			ra.Prefixes = append(ra.Prefixes, PrefixInfo{
				Prefix:            netip.PrefixFrom(a, bits),
				OnLink:            opt[3]&0x80 != 0,
				AutonomousFlag:    opt[3]&0x40 != 0,
				ValidLifetime:     time.Duration(binary.BigEndian.Uint32(opt[4:8])) * time.Second,
				PreferredLifetime: time.Duration(binary.BigEndian.Uint32(opt[8:12])) * time.Second,
			})
		case OptRDNSS:
			if len(opt) < 8 || (len(opt)-8)%16 != 0 {
				return packet.ErrTruncated
			}
			r := RDNSS{Lifetime: time.Duration(binary.BigEndian.Uint32(opt[4:8])) * time.Second}
			for p := 8; p < len(opt); p += 16 {
				r.Servers = append(r.Servers, netip.AddrFrom16([16]byte(opt[p:p+16])))
			}
			ra.RDNSS = append(ra.RDNSS, r)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ra, nil
}

// MarshalBody encodes the RS into an ICMPv6 body.
func (rs *RouterSolicit) MarshalBody() []byte {
	b := make([]byte, 4)
	if !rs.SourceLinkAddr.IsZero() {
		b = appendLinkAddrOpt(b, OptSourceLinkAddr, rs.SourceLinkAddr)
	}
	return b
}

// ParseRouterSolicit decodes an RS from an ICMPv6 body.
func ParseRouterSolicit(body []byte) (*RouterSolicit, error) {
	if len(body) < 4 {
		return nil, packet.ErrTruncated
	}
	rs := &RouterSolicit{}
	err := parseOptions(body[4:], func(typ uint8, opt []byte) error {
		if typ == OptSourceLinkAddr && len(opt) >= 8 {
			copy(rs.SourceLinkAddr[:], opt[2:8])
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rs, nil
}

// MarshalBody encodes the NS into an ICMPv6 body.
func (ns *NeighborSolicit) MarshalBody() []byte {
	b := make([]byte, 20)
	a := ns.Target.As16()
	copy(b[4:20], a[:])
	if !ns.SourceLinkAddr.IsZero() {
		b = appendLinkAddrOpt(b, OptSourceLinkAddr, ns.SourceLinkAddr)
	}
	return b
}

// ParseNeighborSolicit decodes an NS from an ICMPv6 body.
func ParseNeighborSolicit(body []byte) (*NeighborSolicit, error) {
	if len(body) < 20 {
		return nil, packet.ErrTruncated
	}
	ns := &NeighborSolicit{Target: netip.AddrFrom16([16]byte(body[4:20]))}
	err := parseOptions(body[20:], func(typ uint8, opt []byte) error {
		if typ == OptSourceLinkAddr && len(opt) >= 8 {
			copy(ns.SourceLinkAddr[:], opt[2:8])
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ns, nil
}

// MarshalBody encodes the NA into an ICMPv6 body.
func (na *NeighborAdvert) MarshalBody() []byte {
	b := make([]byte, 20)
	if na.Router {
		b[0] |= 0x80
	}
	if na.Solicited {
		b[0] |= 0x40
	}
	if na.Override {
		b[0] |= 0x20
	}
	a := na.Target.As16()
	copy(b[4:20], a[:])
	if !na.TargetLinkAddr.IsZero() {
		b = appendLinkAddrOpt(b, OptTargetLinkAddr, na.TargetLinkAddr)
	}
	return b
}

// ParseNeighborAdvert decodes an NA from an ICMPv6 body.
func ParseNeighborAdvert(body []byte) (*NeighborAdvert, error) {
	if len(body) < 20 {
		return nil, packet.ErrTruncated
	}
	na := &NeighborAdvert{
		Router:    body[0]&0x80 != 0,
		Solicited: body[0]&0x40 != 0,
		Override:  body[0]&0x20 != 0,
		Target:    netip.AddrFrom16([16]byte(body[4:20])),
	}
	err := parseOptions(body[20:], func(typ uint8, opt []byte) error {
		if typ == OptTargetLinkAddr && len(opt) >= 8 {
			copy(na.TargetLinkAddr[:], opt[2:8])
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return na, nil
}

// IsNDPType reports whether an ICMPv6 type is one of the four ND messages,
// the predicate behind the paper's "generates NDP traffic" feature (row 2
// of Table 3).
func IsNDPType(t uint8) bool {
	return t >= packet.ICMPv6TypeRouterSolicit && t <= packet.ICMPv6TypeNeighborAdvert
}
