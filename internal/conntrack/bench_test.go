package conntrack

import (
	"testing"
	"time"

	"v6lab/internal/netsim"
	"v6lab/internal/packet"
)

// benchKeys builds n distinct established-flow keys.
func benchKeys(n int) []FlowKey {
	keys := make([]FlowKey, n)
	for i := range keys {
		keys[i] = tcpKey(devAddr, cloudAddr, uint16(1024+i%60000), uint16(443+i/60000))
	}
	return keys
}

// BenchmarkLookupHot measures the firewall fast path: an inbound packet
// matching established state (sweep + reverse lookup + touch).
func BenchmarkLookupHot(b *testing.B) {
	clock := netsim.NewClock(time.Unix(0, 0))
	tb := New(clock, Config{MaxFlows: 1 << 16})
	keys := benchKeys(1024)
	for _, k := range keys {
		tb.Outbound(k, packet.TCPFlagSYN)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tb.Inbound(keys[i%len(keys)].Reverse(), 0) == nil {
			b.Fatal("flow missing")
		}
	}
}

// BenchmarkOutboundChurn measures insert + LRU-evict under a full table,
// the regime a WAN scan pushes the router into.
func BenchmarkOutboundChurn(b *testing.B) {
	clock := netsim.NewClock(time.Unix(0, 0))
	tb := New(clock, Config{MaxFlows: 4096})
	keys := benchKeys(1 << 14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Outbound(keys[i%len(keys)], packet.TCPFlagSYN)
	}
}

// BenchmarkExpirySweep10k measures a wheel sweep expiring 10k flows after
// an idle gap.
func BenchmarkExpirySweep10k(b *testing.B) {
	keys := benchKeys(10_000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		clock := netsim.NewClock(time.Unix(0, 0))
		tb := New(clock, Config{MaxFlows: 1 << 16, NewTimeout: 30 * time.Second})
		for _, k := range keys {
			tb.Outbound(k, packet.TCPFlagSYN)
		}
		clock.Advance(time.Minute)
		b.StartTimer()
		if n := tb.Sweep(); n != len(keys) {
			b.Fatalf("swept %d, want %d", n, len(keys))
		}
	}
}
