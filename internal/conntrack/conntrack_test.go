package conntrack

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"v6lab/internal/netsim"
	"v6lab/internal/packet"
)

var (
	devAddr   = netip.MustParseAddr("2001:470:8:100::10")
	cloudAddr = netip.MustParseAddr("2606:4700:10::1")
	scanAddr  = netip.MustParseAddr("2001:db8::bad")
)

func tcpKey(src, dst netip.Addr, sport, dport uint16) FlowKey {
	return FlowKey{Proto: packet.IPProtocolTCP, Src: src, Dst: dst, SrcPort: sport, DstPort: dport}
}

func udpKey(src, dst netip.Addr, sport, dport uint16) FlowKey {
	return FlowKey{Proto: packet.IPProtocolUDP, Src: src, Dst: dst, SrcPort: sport, DstPort: dport}
}

func newTable(cfg Config) (*netsim.Clock, *Table) {
	clock := netsim.NewClock(time.Date(2024, 4, 5, 9, 0, 0, 0, time.UTC))
	return clock, New(clock, cfg)
}

func TestReverse(t *testing.T) {
	k := tcpKey(devAddr, cloudAddr, 40000, 443)
	r := k.Reverse()
	if r.Src != cloudAddr || r.Dst != devAddr || r.SrcPort != 443 || r.DstPort != 40000 {
		t.Fatalf("reverse: %v", r)
	}
	if r.Reverse() != k {
		t.Fatal("double reverse is not identity")
	}
}

func TestStateTransitions(t *testing.T) {
	tests := []struct {
		name string
		run  func(tb *Table) *Flow
		want State
	}{
		{
			name: "outbound SYN is NEW",
			run: func(tb *Table) *Flow {
				return tb.Outbound(tcpKey(devAddr, cloudAddr, 40000, 443), packet.TCPFlagSYN)
			},
			want: StateNew,
		},
		{
			name: "reply promotes to ESTABLISHED",
			run: func(tb *Table) *Flow {
				k := tcpKey(devAddr, cloudAddr, 40000, 443)
				tb.Outbound(k, packet.TCPFlagSYN)
				return tb.Inbound(k.Reverse(), packet.TCPFlagSYN|packet.TCPFlagACK)
			},
			want: StateEstablished,
		},
		{
			name: "UDP reply promotes to ESTABLISHED",
			run: func(tb *Table) *Flow {
				k := udpKey(devAddr, cloudAddr, 5353, 53)
				tb.Outbound(k, 0)
				return tb.Inbound(k.Reverse(), 0)
			},
			want: StateEstablished,
		},
		{
			name: "ICMPv6 echo pairs without ports",
			run: func(tb *Table) *Flow {
				k := FlowKey{Proto: packet.IPProtocolICMPv6, Src: devAddr, Dst: cloudAddr}
				tb.Outbound(k, 0)
				return tb.Inbound(k.Reverse(), 0)
			},
			want: StateEstablished,
		},
		{
			name: "outbound FIN moves to CLOSING",
			run: func(tb *Table) *Flow {
				k := tcpKey(devAddr, cloudAddr, 40000, 443)
				tb.Outbound(k, packet.TCPFlagSYN)
				tb.Inbound(k.Reverse(), packet.TCPFlagSYN|packet.TCPFlagACK)
				return tb.Outbound(k, packet.TCPFlagFIN|packet.TCPFlagACK)
			},
			want: StateClosing,
		},
		{
			name: "inbound RST moves to CLOSING",
			run: func(tb *Table) *Flow {
				k := tcpKey(devAddr, cloudAddr, 40000, 443)
				tb.Outbound(k, packet.TCPFlagSYN)
				return tb.Inbound(k.Reverse(), packet.TCPFlagRST|packet.TCPFlagACK)
			},
			want: StateClosing,
		},
		{
			name: "UDP ignores TCP flag bits",
			run: func(tb *Table) *Flow {
				k := udpKey(devAddr, cloudAddr, 5353, 53)
				return tb.Outbound(k, packet.TCPFlagRST)
			},
			want: StateNew,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, tb := newTable(Config{})
			f := tc.run(tb)
			if f == nil {
				t.Fatal("no flow")
			}
			if f.State != tc.want {
				t.Fatalf("state = %v, want %v", f.State, tc.want)
			}
		})
	}
}

func TestInboundNeverCreatesState(t *testing.T) {
	_, tb := newTable(Config{})
	if f := tb.Inbound(tcpKey(scanAddr, devAddr, 55555, 8080), packet.TCPFlagSYN); f != nil {
		t.Fatalf("unsolicited inbound matched: %+v", f)
	}
	if tb.Len() != 0 {
		t.Fatalf("inbound inserted state: len=%d", tb.Len())
	}
	st := tb.Stats()
	if st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTrackAdmitsPinholedFlow(t *testing.T) {
	_, tb := newTable(Config{})
	k := tcpKey(scanAddr, devAddr, 55555, 8080)
	tb.Track(k, packet.TCPFlagSYN)
	// The device's SYN-ACK travels outbound; it must match the tracked
	// inbound-originated flow rather than opening a second one.
	f := tb.Outbound(k.Reverse(), packet.TCPFlagSYN|packet.TCPFlagACK)
	if f == nil || f.Key != k {
		t.Fatalf("outbound reply did not match tracked flow: %+v", f)
	}
	if f.State != StateEstablished {
		t.Fatalf("state = %v, want ESTABLISHED", f.State)
	}
	if tb.Len() != 1 {
		t.Fatalf("len = %d, want 1", tb.Len())
	}
}

func TestIdleExpiry(t *testing.T) {
	clock, tb := newTable(Config{NewTimeout: 10 * time.Second, EstablishedTimeout: time.Minute})
	kNew := tcpKey(devAddr, cloudAddr, 40000, 443)
	kEst := tcpKey(devAddr, cloudAddr, 40001, 443)
	tb.Outbound(kNew, packet.TCPFlagSYN)
	tb.Outbound(kEst, packet.TCPFlagSYN)
	tb.Inbound(kEst.Reverse(), packet.TCPFlagSYN|packet.TCPFlagACK)

	clock.Advance(15 * time.Second)
	if n := tb.Sweep(); n != 1 {
		t.Fatalf("swept %d flows, want 1 (the NEW one)", n)
	}
	if tb.Lookup(kNew) != nil {
		t.Fatal("NEW flow survived its timeout")
	}
	if tb.Lookup(kEst) == nil {
		t.Fatal("ESTABLISHED flow expired prematurely")
	}

	clock.Advance(time.Minute)
	tb.Sweep()
	if tb.Lookup(kEst) != nil {
		t.Fatal("ESTABLISHED flow survived its timeout")
	}
	if st := tb.Stats(); st.Expiries != 2 {
		t.Fatalf("expiries = %d, want 2", st.Expiries)
	}
	if tb.Len() != 0 {
		t.Fatalf("len = %d, want 0", tb.Len())
	}
}

func TestTouchRefreshesDeadline(t *testing.T) {
	clock, tb := newTable(Config{NewTimeout: 10 * time.Second})
	k := tcpKey(devAddr, cloudAddr, 40000, 443)
	tb.Outbound(k, packet.TCPFlagSYN)
	// Keep the flow warm past several would-be deadlines.
	for i := 0; i < 5; i++ {
		clock.Advance(8 * time.Second)
		tb.Outbound(k, 0)
	}
	if tb.Lookup(k) == nil {
		t.Fatal("refreshed flow expired")
	}
	if st := tb.Stats(); st.Expiries != 0 {
		t.Fatalf("expiries = %d, want 0", st.Expiries)
	}
}

func TestClosingExpiresFast(t *testing.T) {
	clock, tb := newTable(Config{EstablishedTimeout: time.Hour, ClosingTimeout: 5 * time.Second})
	k := tcpKey(devAddr, cloudAddr, 40000, 443)
	tb.Outbound(k, packet.TCPFlagSYN)
	tb.Inbound(k.Reverse(), packet.TCPFlagSYN|packet.TCPFlagACK)
	tb.Outbound(k, packet.TCPFlagFIN|packet.TCPFlagACK)
	clock.Advance(10 * time.Second)
	tb.Sweep()
	if tb.Lookup(k) != nil {
		t.Fatal("CLOSING flow outlived its short timeout")
	}
}

func TestLRUEviction(t *testing.T) {
	_, tb := newTable(Config{MaxFlows: 3})
	keys := make([]FlowKey, 4)
	for i := range keys {
		keys[i] = tcpKey(devAddr, cloudAddr, uint16(40000+i), 443)
	}
	tb.Outbound(keys[0], packet.TCPFlagSYN)
	tb.Outbound(keys[1], packet.TCPFlagSYN)
	tb.Outbound(keys[2], packet.TCPFlagSYN)
	// Touch key 0 so key 1 becomes least recently used.
	tb.Outbound(keys[0], 0)
	tb.Outbound(keys[3], packet.TCPFlagSYN)
	if tb.Len() != 3 {
		t.Fatalf("len = %d, want 3", tb.Len())
	}
	if tb.Lookup(keys[1]) != nil {
		t.Fatal("LRU flow survived eviction")
	}
	for _, want := range []FlowKey{keys[0], keys[2], keys[3]} {
		if tb.Lookup(want) == nil {
			t.Fatalf("flow %v wrongly evicted", want)
		}
	}
	if st := tb.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

func TestCountersAndLenAcrossChurn(t *testing.T) {
	clock, tb := newTable(Config{MaxFlows: 8, NewTimeout: 5 * time.Second})
	for i := 0; i < 20; i++ {
		tb.Outbound(tcpKey(devAddr, cloudAddr, uint16(40000+i), 443), packet.TCPFlagSYN)
	}
	if tb.Len() != 8 {
		t.Fatalf("len = %d, want cap 8", tb.Len())
	}
	st := tb.Stats()
	if st.Inserts != 20 || st.Evictions != 12 {
		t.Fatalf("stats = %+v", st)
	}
	clock.Advance(time.Minute)
	tb.Sweep()
	if tb.Len() != 0 {
		t.Fatalf("len after sweep = %d, want 0", tb.Len())
	}
	if st := tb.Stats(); st.Expiries != 8 {
		t.Fatalf("expiries = %d, want 8", st.Expiries)
	}
}

func TestWheelHandlesLongIdleGaps(t *testing.T) {
	// Advancing the clock far past a full wheel revolution must still
	// expire everything exactly once, and flows created after the jump
	// must land in fresh buckets.
	clock, tb := newTable(Config{NewTimeout: 2 * time.Second, EstablishedTimeout: 4 * time.Second, ClosingTimeout: time.Second})
	tb.Outbound(udpKey(devAddr, cloudAddr, 123, 123), 0)
	clock.Advance(3 * time.Hour)
	tb.Outbound(udpKey(devAddr, cloudAddr, 124, 123), 0)
	if tb.Len() != 1 {
		t.Fatalf("len = %d, want 1 (old flow expired, new alive)", tb.Len())
	}
	clock.Advance(time.Hour)
	tb.Sweep()
	if tb.Len() != 0 {
		t.Fatalf("len = %d, want 0", tb.Len())
	}
	if st := tb.Stats(); st.Expiries != 2 {
		t.Fatalf("expiries = %d, want 2", st.Expiries)
	}
}

func TestHitMissCounters(t *testing.T) {
	_, tb := newTable(Config{})
	k := tcpKey(devAddr, cloudAddr, 40000, 443)
	tb.Outbound(k, packet.TCPFlagSYN) // miss + insert
	tb.Outbound(k, 0)                 // hit
	tb.Inbound(k.Reverse(), 0)        // hit
	tb.Inbound(tcpKey(scanAddr, devAddr, 1, 2), 0) // miss
	st := tb.Stats()
	if st.Hits != 2 || st.Misses != 2 || st.Inserts != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestKeyOfV6(t *testing.T) {
	ip := &packet.IPv6{Src: devAddr, Dst: cloudAddr}
	if _, _, ok := KeyOfV6(ip, nil, nil, nil); ok {
		t.Fatal("no-transport packet produced a key")
	}
	k, flags, ok := KeyOfV6(ip, &packet.TCP{SrcPort: 1, DstPort: 2, Flags: packet.TCPFlagSYN}, nil, nil)
	if !ok || k.Proto != packet.IPProtocolTCP || flags != packet.TCPFlagSYN || k.SrcPort != 1 || k.DstPort != 2 {
		t.Fatalf("tcp key = %v flags=%d ok=%v", k, flags, ok)
	}
	k, _, ok = KeyOfV6(ip, nil, &packet.UDP{SrcPort: 3, DstPort: 4}, nil)
	if !ok || k.Proto != packet.IPProtocolUDP || k.SrcPort != 3 {
		t.Fatalf("udp key = %v", k)
	}
	k, _, ok = KeyOfV6(ip, nil, nil, &packet.ICMPv6{})
	if !ok || k.Proto != packet.IPProtocolICMPv6 || k.SrcPort != 0 {
		t.Fatalf("icmp key = %v", k)
	}
}

func TestStateStrings(t *testing.T) {
	for s, want := range map[State]string{StateNew: "NEW", StateEstablished: "ESTABLISHED", StateClosing: "CLOSING"} {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", s, got, want)
		}
	}
	k := tcpKey(devAddr, cloudAddr, 1, 2)
	if s := fmt.Sprint(k); s == "" {
		t.Error("empty key string")
	}
}
