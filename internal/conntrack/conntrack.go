// Package conntrack implements a deterministic, clock-driven connection
// tracking table for the testbed router: the state a stateful IPv6
// firewall (RFC 6092) needs to tell return traffic of LAN-originated
// flows apart from unsolicited Internet probes.
//
// Flows are keyed by the 5-tuple in the orientation of the originator
// (the LAN device). Each flow walks a small state machine
// (NEW → ESTABLISHED → CLOSING) driven by TCP flags and reply sightings,
// idles out on per-state timeouts swept by a timer wheel on the simulated
// clock, and is LRU-evicted when the table hits its configured capacity.
// Everything is single-threaded and allocation-light: the wheel and the
// LRU are intrusive doubly-linked lists threaded through the Flow structs
// themselves, so the hot path (lookup + touch) does no allocation at all.
package conntrack

import (
	"fmt"
	"net/netip"
	"time"

	"v6lab/internal/packet"
)

// Clock is the time source the table expires flows against. netsim.Clock
// satisfies it.
type Clock interface {
	Now() time.Time
}

// FlowKey identifies a flow by its 5-tuple, oriented as the packet that
// carried it (Src is the sender). For ICMPv6 the ports are zero and the
// key degenerates to (proto, src, dst), which is enough to pair echo
// requests with their replies in the testbed.
type FlowKey struct {
	Proto            packet.IPProtocol
	Src, Dst         netip.Addr
	SrcPort, DstPort uint16
}

// Reverse returns the key of traffic flowing in the opposite direction.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{Proto: k.Proto, Src: k.Dst, Dst: k.Src, SrcPort: k.DstPort, DstPort: k.SrcPort}
}

// String renders the key for diagnostics.
func (k FlowKey) String() string {
	return fmt.Sprintf("%v [%s]:%d -> [%s]:%d", k.Proto, k.Src, k.SrcPort, k.Dst, k.DstPort)
}

// State is a flow's position in the tracking state machine.
type State uint8

// The tracking states.
const (
	// StateNew: the originator has sent traffic but no reply has been seen.
	StateNew State = iota
	// StateEstablished: traffic has been seen in both directions.
	StateEstablished
	// StateClosing: a FIN or RST was observed; the flow lingers briefly so
	// the final handshake segments still match, then expires.
	StateClosing
)

// String names the state in iptables conntrack vocabulary.
func (s State) String() string {
	switch s {
	case StateNew:
		return "NEW"
	case StateEstablished:
		return "ESTABLISHED"
	case StateClosing:
		return "CLOSING"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Flow is one tracked connection.
type Flow struct {
	Key     FlowKey
	State   State
	Created time.Time
	// LastSeen is the time of the most recent packet in either direction.
	LastSeen time.Time
	// OrigPackets and ReplyPackets count packets per direction.
	OrigPackets, ReplyPackets int

	expiry time.Time
	// Intrusive list links: wheel bucket and LRU order.
	slot                 int // wheel slot index, -1 when unlinked
	wheelPrev, wheelNext *Flow
	lruPrev, lruNext     *Flow
}

// Config sets the table's capacity and timeouts.
type Config struct {
	// MaxFlows caps the table; inserting beyond it evicts the least
	// recently used flow. Zero means DefaultConfig's cap.
	MaxFlows int
	// NewTimeout, EstablishedTimeout, and ClosingTimeout are the per-state
	// idle limits.
	NewTimeout, EstablishedTimeout, ClosingTimeout time.Duration
	// WheelSlot is the timer wheel granularity; expiry is checked to this
	// precision. Zero means one second.
	WheelSlot time.Duration
}

// DefaultConfig mirrors common home-router conntrack defaults, scaled to
// the testbed (nf_conntrack uses 30s/5min-plus for NEW/ESTABLISHED).
func DefaultConfig() Config {
	return Config{
		MaxFlows:           4096,
		NewTimeout:         30 * time.Second,
		EstablishedTimeout: 5 * time.Minute,
		ClosingTimeout:     10 * time.Second,
		WheelSlot:          time.Second,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.MaxFlows <= 0 {
		c.MaxFlows = d.MaxFlows
	}
	if c.NewTimeout <= 0 {
		c.NewTimeout = d.NewTimeout
	}
	if c.EstablishedTimeout <= 0 {
		c.EstablishedTimeout = d.EstablishedTimeout
	}
	if c.ClosingTimeout <= 0 {
		c.ClosingTimeout = d.ClosingTimeout
	}
	if c.WheelSlot <= 0 {
		c.WheelSlot = d.WheelSlot
	}
	return c
}

func (c Config) maxTimeout() time.Duration {
	m := c.NewTimeout
	if c.EstablishedTimeout > m {
		m = c.EstablishedTimeout
	}
	if c.ClosingTimeout > m {
		m = c.ClosingTimeout
	}
	return m
}

// Stats are the table's lifetime counters.
type Stats struct {
	// Hits counts lookups that found existing state (in either
	// orientation); Misses counts lookups that did not.
	Hits, Misses uint64
	// Inserts counts flows created; Evictions counts LRU removals under
	// the capacity cap; Expiries counts idle-timeout removals.
	Inserts, Evictions, Expiries uint64
}

// Table is the connection tracking table.
type Table struct {
	clock Clock
	cfg   Config
	flows map[FlowKey]*Flow
	stats Stats

	// Timer wheel: a circular array of buckets, each an intrusive list of
	// flows whose expiry falls in that slot. cursor/cursorTime track the
	// slot currently "due"; Sweep advances them to the clock.
	wheel      []*Flow
	cursor     int
	cursorTime time.Time

	// LRU list: lruHead is least recently used, lruTail most recent.
	lruHead, lruTail *Flow
}

// New creates a table on the given clock.
func New(clock Clock, cfg Config) *Table {
	cfg = cfg.withDefaults()
	slots := int(cfg.maxTimeout()/cfg.WheelSlot) + 2
	return &Table{
		clock:      clock,
		cfg:        cfg,
		flows:      make(map[FlowKey]*Flow),
		wheel:      make([]*Flow, slots),
		cursorTime: clock.Now().Truncate(cfg.WheelSlot),
	}
}

// Len reports the number of live flows.
func (t *Table) Len() int { return len(t.flows) }

// Stats returns a copy of the lifetime counters.
func (t *Table) Stats() Stats { return t.stats }

// Config returns the effective (defaulted) configuration.
func (t *Table) Config() Config { return t.cfg }

// Outbound records a packet sent by the protected (LAN) side, creating or
// refreshing the flow, and returns it. tcpFlags is zero for non-TCP.
func (t *Table) Outbound(key FlowKey, tcpFlags uint8) *Flow {
	t.Sweep()
	now := t.clock.Now()
	f, ok := t.flows[key]
	if ok {
		t.stats.Hits++
	} else if f, ok = t.flows[key.Reverse()]; ok {
		// The LAN side answering a flow the table already tracks (e.g. a
		// pinholed inbound connection): count as reply direction.
		t.stats.Hits++
		f.ReplyPackets++
		if f.State == StateNew {
			f.State = StateEstablished
		}
		t.transitionTCP(f, tcpFlags)
		t.touch(f, now)
		return f
	} else {
		t.stats.Misses++
		f = t.insert(key, now)
	}
	f.OrigPackets++
	t.transitionTCP(f, tcpFlags)
	t.touch(f, now)
	return f
}

// Inbound matches a packet arriving from the WAN side against tracked
// state. key is in the inbound packet's own orientation; a flow matches
// when the table tracks its reverse (the LAN-originated direction) or,
// for flows originated inbound through a pinhole, the key itself. It
// returns the matching flow, refreshed, or nil — Inbound never creates
// state; admitting unsolicited flows is the firewall policy's decision
// (see Track).
func (t *Table) Inbound(key FlowKey, tcpFlags uint8) *Flow {
	t.Sweep()
	now := t.clock.Now()
	f, ok := t.flows[key.Reverse()]
	if ok {
		f.ReplyPackets++
		if f.State == StateNew {
			f.State = StateEstablished
		}
	} else if f, ok = t.flows[key]; ok {
		f.OrigPackets++
	} else {
		t.stats.Misses++
		return nil
	}
	t.stats.Hits++
	t.transitionTCP(f, tcpFlags)
	t.touch(f, now)
	return f
}

// Track inserts state for a flow admitted by policy (e.g. a pinhole
// accept), so its return traffic and follow-up segments match statefully.
// The key keeps the orientation of the admitted packet.
func (t *Table) Track(key FlowKey, tcpFlags uint8) *Flow {
	t.Sweep()
	now := t.clock.Now()
	f, ok := t.flows[key]
	if !ok {
		f = t.insert(key, now)
	}
	f.OrigPackets++
	t.transitionTCP(f, tcpFlags)
	t.touch(f, now)
	return f
}

// Lookup peeks at a flow by exact key without refreshing it or touching
// the counters. It still sweeps, so expired flows are not returned.
func (t *Table) Lookup(key FlowKey) *Flow {
	t.Sweep()
	return t.flows[key]
}

// Sweep expires every flow whose idle deadline has passed on the clock,
// returning how many were removed. Callers never need to call it
// explicitly — every mutation sweeps first — but tests and metrics may.
func (t *Table) Sweep() int {
	now := t.clock.Now()
	expired := 0
	// Advance the cursor one slot at a time up to the present, emptying
	// each due bucket. Flows are (re)bucketed on every touch, so a flow in
	// a due bucket either is expired or was re-linked elsewhere already.
	for !t.cursorTime.Add(t.cfg.WheelSlot).After(now) {
		for f := t.wheel[t.cursor]; f != nil; {
			next := f.wheelNext
			if !f.expiry.After(now) {
				t.remove(f)
				t.stats.Expiries++
				expired++
			} else {
				// Deadline is in the future but the flow sits in a stale
				// bucket (clock jumped a full wheel revolution): re-link.
				t.unlinkWheel(f)
				t.linkWheel(f)
			}
			f = next
		}
		t.cursor = (t.cursor + 1) % len(t.wheel)
		t.cursorTime = t.cursorTime.Add(t.cfg.WheelSlot)
	}
	return expired
}

// insert creates a flow, evicting the LRU entry when at capacity.
func (t *Table) insert(key FlowKey, now time.Time) *Flow {
	if len(t.flows) >= t.cfg.MaxFlows {
		if victim := t.lruHead; victim != nil {
			t.remove(victim)
			t.stats.Evictions++
		}
	}
	f := &Flow{Key: key, State: StateNew, Created: now, slot: -1}
	t.flows[key] = f
	t.stats.Inserts++
	return f
}

// transitionTCP applies TCP flag semantics: FIN or RST moves the flow to
// CLOSING regardless of direction.
func (t *Table) transitionTCP(f *Flow, tcpFlags uint8) {
	if f.Key.Proto != packet.IPProtocolTCP {
		return
	}
	if tcpFlags&(packet.TCPFlagFIN|packet.TCPFlagRST) != 0 {
		f.State = StateClosing
	}
}

// touch refreshes the flow's idle deadline and LRU position.
func (t *Table) touch(f *Flow, now time.Time) {
	f.LastSeen = now
	var timeout time.Duration
	switch f.State {
	case StateEstablished:
		timeout = t.cfg.EstablishedTimeout
	case StateClosing:
		timeout = t.cfg.ClosingTimeout
	default:
		timeout = t.cfg.NewTimeout
	}
	f.expiry = now.Add(timeout)
	t.unlinkWheel(f)
	t.linkWheel(f)
	t.unlinkLRU(f)
	t.linkLRU(f)
}

// remove deletes a flow from the map, the wheel, and the LRU list.
func (t *Table) remove(f *Flow) {
	delete(t.flows, f.Key)
	t.unlinkWheel(f)
	t.unlinkLRU(f)
}

func (t *Table) linkWheel(f *Flow) {
	ticks := int((f.expiry.Sub(t.cursorTime) + t.cfg.WheelSlot - 1) / t.cfg.WheelSlot)
	if ticks < 0 {
		ticks = 0
	}
	// The wheel spans the maximum timeout, so ticks < len(wheel) always
	// holds for deadlines produced by touch; clamp defensively anyway.
	if ticks >= len(t.wheel) {
		ticks = len(t.wheel) - 1
	}
	slot := (t.cursor + ticks) % len(t.wheel)
	f.slot = slot
	f.wheelPrev = nil
	f.wheelNext = t.wheel[slot]
	if f.wheelNext != nil {
		f.wheelNext.wheelPrev = f
	}
	t.wheel[slot] = f
}

func (t *Table) unlinkWheel(f *Flow) {
	if f.slot < 0 {
		return
	}
	if f.wheelPrev != nil {
		f.wheelPrev.wheelNext = f.wheelNext
	} else {
		t.wheel[f.slot] = f.wheelNext
	}
	if f.wheelNext != nil {
		f.wheelNext.wheelPrev = f.wheelPrev
	}
	f.wheelPrev, f.wheelNext, f.slot = nil, nil, -1
}

func (t *Table) linkLRU(f *Flow) {
	f.lruNext = nil
	f.lruPrev = t.lruTail
	if t.lruTail != nil {
		t.lruTail.lruNext = f
	}
	t.lruTail = f
	if t.lruHead == nil {
		t.lruHead = f
	}
}

func (t *Table) unlinkLRU(f *Flow) {
	if f.lruPrev != nil {
		f.lruPrev.lruNext = f.lruNext
	} else if t.lruHead == f {
		t.lruHead = f.lruNext
	}
	if f.lruNext != nil {
		f.lruNext.lruPrev = f.lruPrev
	} else if t.lruTail == f {
		t.lruTail = f.lruPrev
	}
	f.lruPrev, f.lruNext = nil, nil
}

// KeyOfV6 extracts a FlowKey from a parsed IPv6 packet, in the packet's
// own orientation, plus the TCP flags when present. ok is false for
// packets without a trackable transport (e.g. NDP-less extension chains).
func KeyOfV6(ip *packet.IPv6, tcp *packet.TCP, udp *packet.UDP, icmp *packet.ICMPv6) (key FlowKey, tcpFlags uint8, ok bool) {
	key.Src, key.Dst = ip.Src, ip.Dst
	switch {
	case tcp != nil:
		key.Proto, key.SrcPort, key.DstPort = packet.IPProtocolTCP, tcp.SrcPort, tcp.DstPort
		return key, tcp.Flags, true
	case udp != nil:
		key.Proto, key.SrcPort, key.DstPort = packet.IPProtocolUDP, udp.SrcPort, udp.DstPort
		return key, 0, true
	case icmp != nil:
		key.Proto = packet.IPProtocolICMPv6
		return key, 0, true
	}
	return key, 0, false
}
